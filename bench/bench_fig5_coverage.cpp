// Reproduces Fig. 5 ("Fault coverage plot by AnaFAULT using a tolerance of
// 2V for the amplitude and 0.2us for the time"): the full LIFT fault list
// is simulated through the 400-step transient and the coverage-vs-time
// series is printed.  Paper landmarks: coverage almost 100% after 25% of
// the test time, all faults detected by ~55%.

#include "core/cat.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

using namespace catlift;

namespace {

void print_fig5() {
    const unsigned threads =
        std::max(1u, std::thread::hardware_concurrency());
    core::VcoExperiment e = core::make_vco_experiment(threads);
    const core::CatReport rep =
        core::run_cat(e.sim_circuit, e.device_netlist, e.layout, e.config);
    const anafault::CampaignResult& c = rep.campaign;

    std::printf("== Fig. 5: fault coverage vs time "
                "(tolerance 2V / 0.2us, source: LIFT fault list) ==\n\n");
    std::printf("%s\n", anafault::coverage_plot_ascii(c).c_str());
    std::printf("  time%%   coverage%%\n");
    for (int pct = 0; pct <= 100; pct += 5)
        std::printf("  %3d     %6.1f\n", pct,
                     c.coverage_at(pct / 100.0 * c.tstop));
    std::printf("\n  landmarks:                      this repo   paper\n");
    std::printf("  coverage at 25%% of test time :  %5.1f%%      ~100%%\n",
                c.coverage_at(0.25 * c.tstop));
    std::printf("  coverage at 30%% of test time :  %5.1f%%\n",
                c.coverage_at(0.30 * c.tstop));
    const auto last = c.time_of_last_detection();
    std::printf("  all faults detected by       :  %5.0f%%       ~55%%\n",
                last ? 100.0 * *last / c.tstop : -1.0);
    std::printf("  final fault coverage         :  %5.1f%%       100%%\n",
                c.final_coverage());
    std::printf("  weighted (probability) cov.  :  %5.1f%%\n\n",
                c.weighted_coverage());
}

// Benchmark: one complete serial campaign over the LIFT list (the paper's
// protocol measurement was 3068s on 1994 hardware for the resistor model).
void BM_CampaignSerial(benchmark::State& state) {
    core::VcoExperiment e = core::make_vco_experiment(1);
    const auto lift_res = lift::extract_faults(
        e.layout, e.config.tech, e.config.lift);
    for (auto _ : state) {
        benchmark::DoNotOptimize(anafault::run_campaign(
            e.sim_circuit, lift_res.faults, e.config.campaign));
    }
    state.counters["faults"] =
        static_cast<double>(lift_res.faults.size());
}
BENCHMARK(BM_CampaignSerial)->Unit(benchmark::kMillisecond)->Iterations(1);

// Benchmark: the comparator alone (post-processing phase).
void BM_DetectTime(benchmark::State& state) {
    core::VcoExperiment e = core::make_vco_experiment(1);
    spice::SimOptions so;
    so.uic = true;
    spice::Simulator nom_sim(e.sim_circuit, so);
    const auto nominal = nom_sim.tran();
    netlist::Circuit faulty = e.sim_circuit;
    anafault::inject_short(faulty, "5", "6");
    spice::Simulator bad_sim(faulty, so);
    const auto bad = bad_sim.tran();
    const anafault::DetectionSpec spec = e.config.campaign.detection;
    for (auto _ : state)
        benchmark::DoNotOptimize(anafault::detect_time(nominal, bad, spec));
}
BENCHMARK(BM_DetectTime);

} // namespace

int main(int argc, char** argv) {
    print_fig5();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
