// Reproduces Tab. 1 ("Likely physical failure modes in a digital CMOS
// process and typical failure densities") and benchmarks the critical-area
// machinery built on top of it.

#include "defects/defects.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace catlift;
using namespace catlift::defects;

namespace {

void print_tab1() {
    const DefectStatistics s = DefectStatistics::date95_table1();
    std::printf("== Tab. 1: likely physical failure modes and relative "
                "densities ==\n");
    std::printf("   (normalised to the metal1 short density; absolute "
                "anchor %.1f defect/cm^2)\n\n", s.metal1_short_per_cm2);
    std::printf("  %-12s %-8s %-22s %s\n", "layer(s)", "failure", "symbol",
                "relative density");
    struct Row {
        const char* layer;
        const char* failure;
        const char* symbol;
        layout::Layer l;
        FailureMode m;
        std::optional<layout::Layer> lower;
    };
    const Row rows[] = {
        {"Diffusion", "open", "ad", layout::Layer::NDiff, FailureMode::Open,
         {}},
        {"Diffusion", "short", "bd", layout::Layer::NDiff,
         FailureMode::Short, {}},
        {"Polysilicon", "open", "ap", layout::Layer::Poly, FailureMode::Open,
         {}},
        {"Polysilicon", "short", "bp", layout::Layer::Poly,
         FailureMode::Short, {}},
        {"Metal_1", "open", "am1", layout::Layer::Metal1, FailureMode::Open,
         {}},
        {"Metal_1", "short", "bm1", layout::Layer::Metal1,
         FailureMode::Short, {}},
        {"Metal_2", "open", "am2", layout::Layer::Metal2, FailureMode::Open,
         {}},
        {"Metal_2", "short", "bm2", layout::Layer::Metal2,
         FailureMode::Short, {}},
        {"Al/diff.contacts", "open", "acd", layout::Layer::Contact,
         FailureMode::Open, layout::Layer::NDiff},
        {"m1/poly contacts", "open", "acp", layout::Layer::Contact,
         FailureMode::Open, layout::Layer::Poly},
        {"vias", "open", "acv", layout::Layer::Via, FailureMode::Open, {}},
    };
    for (const Row& r : rows) {
        const Mechanism* m = s.find(r.l, r.m, r.lower);
        std::printf("  %-12s %-8s %-22s %.2f\n", r.layer, r.failure,
                    r.symbol, m ? m->rel_density : -1.0);
    }
    const double beta =
        s.find(layout::Layer::Metal1, FailureMode::Short)->rel_density;
    const double alpha =
        s.find(layout::Layer::Metal1, FailureMode::Open)->rel_density;
    std::printf("\n  beta/alpha (metal1) = %.0f  (paper: \"around 100\", "
                "justifying the importance of bridging faults)\n\n",
                beta / alpha);
}

void BM_BridgeWca(benchmark::State& state) {
    const DefectModel m = DefectModel::date95();
    const double facing = static_cast<double>(state.range(0)) * 1000.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(m.bridge_wca(facing, 3000.0));
}
BENCHMARK(BM_BridgeWca)->Arg(10)->Arg(100)->Arg(1000);

void BM_CutWca(benchmark::State& state) {
    const DefectModel m = DefectModel::date95();
    for (auto _ : state)
        benchmark::DoNotOptimize(m.cut_wca(2000.0, 6000.0));
}
BENCHMARK(BM_CutWca);

void BM_SizePdfSweep(benchmark::State& state) {
    const SizeDistribution d(1000.0);
    for (auto _ : state) {
        double acc = 0;
        for (double x = 100; x < 25000; x += 10) acc += d.pdf(x);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_SizePdfSweep);

} // namespace

int main(int argc, char** argv) {
    print_tab1();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
