// Ablation: observation strategy.  The paper observes one node (V(11))
// with the 2V/0.2us tolerance; this bench quantifies what additional
// observability buys on the same LIFT fault list:
//
//   * output voltage only          (the paper's setup)
//   * output + capacitor node      (one extra probe point)
//   * output + supply current      (IDDQ-style, catches masked shorts)
//   * DC operating-point screen    (static test, no transient at all)

#include "anafault/dc_campaign.h"
#include "circuits/vco.h"
#include "core/cat.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace catlift;

namespace {

void print_ablation() {
    core::VcoExperiment e = core::make_vco_experiment(/*threads=*/4);
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);

    std::printf("== ablation: observation strategy (LIFT list, %zu faults) "
                "==\n\n", lift_res.faults.size());
    std::printf("  %-32s %-10s %s\n", "strategy", "coverage",
                "all detected by");

    auto run_with = [&](const char* tag,
                        std::vector<std::string> nodes,
                        std::vector<std::string> supplies) {
        anafault::CampaignOptions opt = e.config.campaign;
        opt.detection.observed = std::move(nodes);
        opt.detection.observed_supplies = std::move(supplies);
        const auto res =
            anafault::run_campaign(e.sim_circuit, lift_res.faults, opt);
        const auto last = res.time_of_last_detection();
        char cov[16];
        std::snprintf(cov, sizeof cov, "%.1f%%", res.final_coverage());
        std::printf("  %-32s %-10s %5.0f%%\n", tag, cov,
                    last ? 100.0 * *last / res.tstop : 0.0);
    };
    run_with("V(11) only (paper)", {circuits::kVcoOutput}, {});
    run_with("V(11) + V(6) cap node",
             {circuits::kVcoOutput, circuits::kVcoCapNode}, {});
    run_with("V(11) + IDDQ(VDD)", {circuits::kVcoOutput}, {"VDD"});

    // DC screen for comparison (static supply).
    netlist::Circuit dc_ckt = e.sim_circuit;
    dc_ckt.device("VDD").source = netlist::SourceSpec::make_dc(5.0);
    anafault::DcScreenOptions dopt;
    dopt.observed = {circuits::kVcoOutput, "3", "8"};
    dopt.v_tol = 0.5;
    const auto dc = anafault::run_dc_screen(dc_ckt, lift_res.faults, dopt);
    char cov[16];
    std::snprintf(cov, sizeof cov, "%.1f%%", dc.coverage());
    std::printf("  %-32s %-10s %5s\n", "DC operating-point screen", cov,
                "n/a");
    std::printf("\n  the oscillator needs the transient test: static "
                "screens miss every\n  frequency-shift fault, while IDDQ "
                "closes the ideal-supply blind spot.\n\n");
}

void BM_DcScreen(benchmark::State& state) {
    core::VcoExperiment e = core::make_vco_experiment(1);
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    netlist::Circuit dc_ckt = e.sim_circuit;
    dc_ckt.device("VDD").source = netlist::SourceSpec::make_dc(5.0);
    anafault::DcScreenOptions dopt;
    dopt.observed = {circuits::kVcoOutput, "3", "8"};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            anafault::run_dc_screen(dc_ckt, lift_res.faults, dopt));
    state.counters["faults"] = static_cast<double>(lift_res.faults.size());
}
BENCHMARK(BM_DcScreen)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_ablation();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
