// Ablation: the LIFT keep-threshold p_min.  The paper keeps faults with
// probabilities "in the order of 1e-7 down to 1e-9"; this bench sweeps the
// threshold and reports the relevance/effort trade-off: list size, fault
// class mix, and the probability mass the cut discards.

#include "circuits/vco.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "lift/schematic_faults.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace catlift;

namespace {

void print_sweep() {
    circuits::VcoOptions vo;
    vo.with_sources = false;
    const netlist::Circuit sch = circuits::build_vco(vo);
    const layout::Layout lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    const auto tech = layout::Technology::single_poly_double_metal();
    const std::size_t all = lift::all_schematic_faults(sch).size();

    std::printf("== ablation: LIFT keep-threshold p_min ==\n\n");
    std::printf("  %-10s %-7s %-8s %-7s %-7s %-10s %-12s %s\n", "p_min",
                "faults", "bridges", "opens", "stuck", "reduction",
                "kept p-mass", "dropped p-mass");
    for (double p_min : {1e-9, 5e-9, 8e-9, 1.2e-8, 2e-8, 5e-8, 1e-7}) {
        lift::LiftOptions opt;
        opt.p_min = p_min;
        opt.net_blocks = circuits::vco_net_blocks();
        const auto res = lift::extract_faults(lo, tech, opt);
        const auto& fl = res.faults;
        char red[16];
        std::snprintf(red, sizeof red, "%.0f%%",
                      100.0 * (1.0 - double(fl.size()) / double(all)));
        std::printf("  %-10.2g %-7zu %-8zu %-7zu %-7zu %-10s %-12.3g "
                    "%.3g\n",
                    p_min, fl.size(), fl.shorts(),
                    fl.count(lift::FaultKind::LineOpen) +
                        fl.count(lift::FaultKind::SplitNode),
                    fl.count(lift::FaultKind::StuckOpen), red,
                    fl.total_probability(),
                    res.stats.dropped_probability);
    }
    std::printf("\n  default p_min = 1.2e-8: the knee separating "
                "single-contact terminal kills\n  from redundant-junction "
                "kills; the bridge population is stable across the "
                "sweep.\n\n");
}

void BM_ExtractAtThreshold(benchmark::State& state) {
    circuits::VcoOptions vo;
    vo.with_sources = false;
    const netlist::Circuit sch = circuits::build_vco(vo);
    const layout::Layout lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    const auto tech = layout::Technology::single_poly_double_metal();
    lift::LiftOptions opt;
    opt.p_min = 1.0 / static_cast<double>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(lift::extract_faults(lo, tech, opt));
}
BENCHMARK(BM_ExtractAtThreshold)
    ->Arg(1000000000)   // 1e-9
    ->Arg(100000000)    // 1e-8
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_sweep();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
