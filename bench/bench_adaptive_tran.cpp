// Adaptive LTE-controlled time stepping on the paper's VCO campaign, and
// mid-sweep early abort on the OTA AC campaign.
//
// The fixed grid integrates 400 steps per run whether anything happens or
// not; early abort (PR 1) trims the part of a *detected* run after its
// detection instant, and the adaptive kernel trims the quiescent part of
// every run -- nominal, detected-before-abort, and especially undetected
// tails.  This bench measures all four transient configurations on the
// 64-fault VCO campaign, checks the detection verdicts are identical
// across them, runs the OTA AC campaign with and without dB early abort,
// and emits machine-readable BENCH_adaptive_tran.json.

#include "anafault/ac_campaign.h"
#include "circuits/ota.h"
#include "core/cat.h"
#include "lift/extract_faults.h"
#include "obs/obs.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace catlift;

namespace {

struct TranSample {
    std::string label;
    bool adaptive = false;
    bool early_abort = false;
    double wall_s = 0.0;
    std::size_t steps_integrated = 0;
    std::size_t steps_interpolated = 0;
    std::size_t steps_saved = 0;
    std::size_t detected = 0;
    std::string verdicts;  ///< per-fault verdict string, for identity check
};

std::string verdict_string(const anafault::CampaignResult& res) {
    std::string v;
    for (const auto& r : res.results)
        v += r.detect_time ? 'D' : (r.simulated ? 'u' : 'x');
    return v;
}

TranSample run_tran(const core::VcoExperiment& e,
                    const lift::FaultList& faults, bool adaptive,
                    bool early_abort) {
    TranSample s;
    s.label = std::string(adaptive ? "adaptive" : "fixed") +
              (early_abort ? "-abort" : "-noabort");
    s.adaptive = adaptive;
    s.early_abort = early_abort;
    anafault::CampaignOptions opt = e.config.campaign;
    opt.sim.adaptive = adaptive;
    opt.early_abort = early_abort;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = anafault::run_campaign(e.sim_circuit, faults, opt);
    s.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    s.steps_integrated = res.batch.steps_integrated;
    s.steps_interpolated = res.batch.steps_interpolated;
    s.steps_saved = res.batch.steps_saved;
    s.detected = res.detected();
    s.verdicts = verdict_string(res);
    return s;
}

struct AcSample {
    std::string label;
    bool early_abort = false;
    double wall_s = 0.0;
    std::size_t points_saved = 0;
    std::size_t early_aborts = 0;
    std::size_t detected = 0;
};

AcSample run_ac(const netlist::Circuit& ckt, const lift::FaultList& faults,
                bool early_abort) {
    AcSample s;
    s.label = early_abort ? "ac-abort" : "ac-noabort";
    s.early_abort = early_abort;
    anafault::AcCampaignOptions opt;
    opt.observed = {circuits::kOtaOutput};
    opt.sweep.fstart = 1e3;
    opt.sweep.fstop = 1e9;
    opt.early_abort = early_abort;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = anafault::run_ac_campaign(ckt, faults, opt);
    s.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    s.points_saved = res.batch.freq_points_saved;
    s.early_aborts = res.batch.early_aborts;
    s.detected = res.detected();
    return s;
}

} // namespace

int main() {
    std::printf("== adaptive transient kernel: VCO campaign ==\n\n");
    obs::enable_metrics(true);  // phase histograms for the BENCH JSON
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    std::printf("  faults: %zu\n\n", lift_res.faults.size());

    // Unmeasured warmup.
    run_tran(e, lift_res.faults, false, false);

    std::vector<TranSample> tran;
    for (const bool adaptive : {false, true})
        for (const bool abort_on : {false, true})
            tran.push_back(run_tran(e, lift_res.faults, adaptive, abort_on));

    bool verdicts_identical = true;
    for (const TranSample& s : tran)
        if (s.verdicts != tran.front().verdicts) verdicts_identical = false;

    std::printf("  %-18s %10s %12s %14s %12s %9s\n", "config", "wall [s]",
                "integrated", "interpolated", "grid saved", "detected");
    for (const TranSample& s : tran)
        std::printf("  %-18s %10.3f %12zu %14zu %12zu %9zu\n",
                    s.label.c_str(), s.wall_s, s.steps_integrated,
                    s.steps_interpolated, s.steps_saved, s.detected);
    std::printf("\n  verdicts identical across configs: %s\n\n",
                verdicts_identical ? "yes" : "NO");

    std::printf("== AC early abort: OTA campaign ==\n\n");
    circuits::OtaOptions dev_opt;
    dev_opt.with_sources = false;
    const netlist::Circuit ota_dev = circuits::build_ota(dev_opt);
    const layout::Layout ota_lo = layout::generate_cell_layout(ota_dev);
    lift::LiftOptions ota_lopt;
    ota_lopt.net_blocks = circuits::ota_net_blocks();
    const auto ota_faults = lift::extract_faults(
        ota_lo, layout::Technology::single_poly_double_metal(), ota_lopt);
    netlist::Circuit ota = circuits::build_ota();
    ota.device("VDD").source = netlist::SourceSpec::make_dc(5.0);
    ota.device("VIN").source = netlist::SourceSpec::make_dc(2.5);
    ota.device("VIN").source.ac_mag = 1.0;
    std::printf("  faults: %zu\n\n", ota_faults.faults.size());

    std::vector<AcSample> ac;
    for (const bool abort_on : {false, true})
        ac.push_back(run_ac(ota, ota_faults.faults, abort_on));

    std::printf("  %-12s %10s %14s %9s %9s\n", "config", "wall [s]",
                "points saved", "aborts", "detected");
    for (const AcSample& s : ac)
        std::printf("  %-12s %10.3f %14zu %9zu %9zu\n", s.label.c_str(),
                    s.wall_s, s.points_saved, s.early_aborts, s.detected);
    std::printf("\n");

    std::ofstream js("BENCH_adaptive_tran.json");
    js << "{\n  \"bench\": \"adaptive_tran\",\n";
    js << "  \"circuit\": \"vco\",\n";
    js << "  \"faults\": " << lift_res.faults.size() << ",\n";
    js << "  \"verdicts_identical\": "
       << (verdicts_identical ? "true" : "false") << ",\n";
    js << "  \"tran\": [\n";
    for (std::size_t i = 0; i < tran.size(); ++i) {
        const TranSample& s = tran[i];
        js << "    {\"label\": \"" << s.label << "\", \"adaptive\": "
           << (s.adaptive ? "true" : "false") << ", \"early_abort\": "
           << (s.early_abort ? "true" : "false") << ", \"wall_s\": "
           << s.wall_s << ", \"steps_integrated\": " << s.steps_integrated
           << ", \"steps_interpolated\": " << s.steps_interpolated
           << ", \"steps_saved\": " << s.steps_saved
           << ", \"detected\": " << s.detected << "}"
           << (i + 1 < tran.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    js << "  \"ac\": {\"circuit\": \"ota\", \"faults\": "
       << ota_faults.faults.size() << ", \"samples\": [\n";
    for (std::size_t i = 0; i < ac.size(); ++i) {
        const AcSample& s = ac[i];
        js << "    {\"label\": \"" << s.label << "\", \"early_abort\": "
           << (s.early_abort ? "true" : "false") << ", \"wall_s\": "
           << s.wall_s << ", \"freq_points_saved\": " << s.points_saved
           << ", \"early_aborts\": " << s.early_aborts
           << ", \"detected\": " << s.detected << "}"
           << (i + 1 < ac.size() ? "," : "") << "\n";
    }
    js << "  ]},\n";
    js << "  \"metrics\": " << obs::Registry::global().to_json("  ") << "\n";
    js << "}\n";
    std::printf("  wrote BENCH_adaptive_tran.json\n");
    return verdicts_identical ? 0 : 1;
}
