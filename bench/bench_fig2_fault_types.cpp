// Reproduces Fig. 2 ("Fault types supported"): local short, global short,
// local open, split node -- plus the transistor stuck-open of section VI.
// Each type is injected into the VCO and its electrical consequence is
// demonstrated; the injection machinery is benchmarked.

#include "anafault/fault_models.h"
#include "circuits/vco.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace catlift;
using namespace catlift::anafault;

namespace {

spice::Waveforms simulate(netlist::Circuit ckt) {
    spice::SimOptions opt;
    opt.uic = true;
    spice::Simulator sim(ckt, opt);
    return sim.tran();
}

void demo(const char* type, const char* what, netlist::Circuit faulty,
          const spice::Waveforms& nominal) {
    const auto wf = simulate(std::move(faulty));
    const double sw = spice::swing(wf, circuits::kVcoOutput, 2e-6, 4e-6);
    const auto p = spice::estimate_period(wf, circuits::kVcoOutput, 2.5,
                                          1.5e-6, 4e-6);
    const auto pn = spice::estimate_period(nominal, circuits::kVcoOutput,
                                           2.5, 1.5e-6, 4e-6);
    const char* effect =
        sw < 0.5 ? "output constant"
        : (p && pn && std::abs(*p - *pn) / *pn > 0.05)
            ? "oscillation frequency changed"
            : "oscillation nominal-like";
    std::printf("  %-12s %-34s -> %s\n", type, what, effect);
}

void print_fig2() {
    std::printf("== Fig. 2: fault types supported ==\n\n");
    const netlist::Circuit base = circuits::build_vco();
    const auto nominal = simulate(base);

    // Local short: drain-source bridge inside the analogue switch
    // (the paper's example #6: BRI n_ds_short 5->6).
    {
        lift::Fault f;
        f.kind = lift::FaultKind::LocalShort;
        f.net_a = circuits::kVcoChargeRail;
        f.net_b = circuits::kVcoCapNode;
        demo("local short", "BRI 5->6 (M8 drain-source)",
             inject(base, f), nominal);
    }
    // Global short: supply to mirror bias, crossing blocks
    // (the paper's #339-class metal bridge).
    {
        lift::Fault f;
        f.kind = lift::FaultKind::GlobalShort;
        f.net_a = "1";
        f.net_b = "3";
        demo("global short", "BRI 1->3 (VDD to mirror gate)",
             inject(base, f), nominal);
    }
    // Local open: one transistor terminal loses its connection.
    {
        lift::Fault f;
        f.kind = lift::FaultKind::StuckOpen;
        f.victim = {"M7", 0};
        demo("local open", "OPEN M7 drain (discharge sink)",
             inject(base, f), nominal);
    }
    // Split node: node 8 (order 3: M5 drain, M6/M25 diodes, M7 gate)
    // splits into k=1 / n-k: the mirror output gate floats away.
    {
        lift::Fault f;
        f.kind = lift::FaultKind::SplitNode;
        f.net = "8";
        f.group_b = {{"M7", 1}};
        demo("split node", "SPLIT 8: {M7.gate} | {M5,M6,M25}",
             inject(base, f), nominal);
    }
    // Split node of higher order on the capacitor node.
    {
        lift::Fault f;
        f.kind = lift::FaultKind::SplitNode;
        f.net = "6";
        f.group_b = {{"C1", 0}, {"M11", 1}, {"M12", 1}};
        demo("split node", "SPLIT 6: {C1,M11.g,M12.g} | rest",
             inject(base, f), nominal);
    }
    std::printf("\n  both hard-fault simulation models carry every type:\n");
    std::printf("  resistor model: short=0.01 Ohm, open=100 MOhm | "
                "source model: ideal 0V / 0A branches\n\n");
}

void BM_InjectShort(benchmark::State& state) {
    const netlist::Circuit base = circuits::build_vco();
    lift::Fault f;
    f.kind = lift::FaultKind::LocalShort;
    f.net_a = "5";
    f.net_b = "6";
    for (auto _ : state) benchmark::DoNotOptimize(inject(base, f));
}
BENCHMARK(BM_InjectShort);

void BM_InjectSplit(benchmark::State& state) {
    const netlist::Circuit base = circuits::build_vco();
    lift::Fault f;
    f.kind = lift::FaultKind::SplitNode;
    f.net = "6";
    f.group_b = {{"C1", 0}, {"M11", 1}, {"M12", 1}};
    for (auto _ : state) benchmark::DoNotOptimize(inject(base, f));
}
BENCHMARK(BM_InjectSplit);

void BM_InjectStuckOpen(benchmark::State& state) {
    const netlist::Circuit base = circuits::build_vco();
    lift::Fault f;
    f.kind = lift::FaultKind::StuckOpen;
    f.victim = {"M7", 0};
    for (auto _ : state) benchmark::DoNotOptimize(inject(base, f));
}
BENCHMARK(BM_InjectStuckOpen);

} // namespace

int main(int argc, char** argv) {
    print_fig2();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
