// Kernel scaling on the N-stage ring oscillator: dense LU vs the sparse
// incremental kernel vs sparse + modified-Newton bypass, across matrix
// sizes.  The paper's circuits (tens of unknowns) sit where dense LU's
// constant factors win; this bench shows where the O(n^3)-per-iteration
// dense kernel hands over to the pattern-reused sparse refactorization,
// and that the gap widens with N -- the asymptotic claim behind
// ROADMAP's "larger circuits" north star, recorded machine-readably in
// BENCH_kernel_scaling.json.

#include "circuits/ringosc.h"
#include "spice/engine.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace catlift;

namespace {

struct Sample {
    int stages = 0;
    std::size_t unknowns = 0;
    std::string config;
    double wall_s = 0.0;
    std::size_t nr_iterations = 0;
    std::size_t lu_factorizations = 0;
    std::size_t bypass_solves = 0;
    std::size_t sparse_full_factors = 0;
    std::size_t sparse_refactors = 0;
};

Sample run_one(int stages, const char* config, std::size_t sparse_threshold,
               bool bypass) {
    circuits::RingOscOptions ro;
    ro.stages = stages;
    netlist::Circuit ckt = circuits::build_ring_oscillator(ro);
    // Fixed 400-step grid over 1 us for every N: the workload scales in
    // matrix size only, so per-sample differences are pure kernel cost.
    const netlist::TranSpec ts{2.5e-9, 1e-6, 0.0};

    spice::SimOptions opt;
    opt.uic = true;
    opt.sparse_threshold = sparse_threshold;
    opt.bypass = bypass;

    Sample s;
    s.stages = stages;
    s.config = config;
    spice::Simulator sim(ckt, opt);
    s.unknowns = sim.unknowns();
    const auto t0 = std::chrono::steady_clock::now();
    sim.tran(ts);
    s.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    s.nr_iterations = sim.stats().nr_iterations;
    s.lu_factorizations = sim.stats().lu_factorizations;
    s.bypass_solves = sim.stats().bypass_solves;
    s.sparse_full_factors = sim.stats().sparse_full_factors;
    s.sparse_refactors = sim.stats().sparse_refactors;
    return s;
}

} // namespace

int main() {
    std::printf("== kernel scaling: N-stage ring oscillator ==\n\n");

    const std::vector<int> stage_counts = {11, 25, 51, 101, 201};
    std::vector<Sample> samples;

    // Warmup (allocator/page-cache) outside the measurements.
    run_one(stage_counts.front(), "warmup", 1u << 30, false);

    for (int n : stage_counts) {
        samples.push_back(run_one(n, "dense", 1u << 30, false));
        samples.push_back(run_one(n, "sparse", 0, false));
        samples.push_back(run_one(n, "sparse+bypass", 0, true));
    }

    std::printf("  %-6s %-9s %-14s %10s %8s %9s %9s %10s\n", "N", "unknowns",
                "config", "wall [s]", "nr", "factors", "bypass", "refactors");
    double speedup_last = 0.0;
    for (const Sample& s : samples) {
        std::printf("  %-6d %-9zu %-14s %10.3f %8zu %9zu %9zu %10zu\n",
                    s.stages, s.unknowns, s.config.c_str(), s.wall_s,
                    s.nr_iterations, s.lu_factorizations, s.bypass_solves,
                    s.sparse_refactors);
        if (s.config == "dense") speedup_last = s.wall_s;
        if (s.config == "sparse+bypass" && s.wall_s > 0.0)
            std::printf("  %-6s -> sparse+bypass speedup vs dense: %.2fx\n",
                        "", speedup_last / s.wall_s);
    }

    std::ofstream js("BENCH_kernel_scaling.json");
    js << "{\n  \"bench\": \"kernel_scaling\",\n";
    js << "  \"circuit\": \"ring_oscillator\",\n";
    js << "  \"tran_steps\": 400,\n  \"samples\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        js << "    {\"stages\": " << s.stages << ", \"unknowns\": "
           << s.unknowns << ", \"config\": \"" << s.config
           << "\", \"wall_s\": " << s.wall_s << ", \"nr_iterations\": "
           << s.nr_iterations << ", \"lu_factorizations\": "
           << s.lu_factorizations << ", \"bypass_solves\": "
           << s.bypass_solves << ", \"sparse_full_factors\": "
           << s.sparse_full_factors << ", \"sparse_refactors\": "
           << s.sparse_refactors << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::printf("\n  wrote BENCH_kernel_scaling.json\n");
    return 0;
}
