// Kernel scaling: dense LU vs the sparse incremental kernel across matrix
// sizes and orderings, on two workloads:
//
//   * the N-stage ring oscillator (1-D, the historical rows) up to 201
//     stages, and
//   * the 2-D coupled-oscillator grid (circuits/oscgrid.h) up to ~10k
//     unknowns, where fill-reducing orderings earn their keep.
//
// Per size the sparse kernel runs under both first-factorization
// strategies -- the historical dynamic Markowitz ordering and the AMD
// (minimum-degree preorder + Gilbert-Peierls + supernodal refactor) path
// -- with the one-time-analysis vs numeric-refactor time split recorded,
// so BENCH_kernel_scaling.json captures both the asymptotic dense/sparse
// separation and the Markowitz-vs-AMD separation that unlocks 10k
// unknowns.  A campaign section runs the paper's 64-fault VCO campaign
// and the OTA campaign under the campaign-shared symbolic cache and
// records hit rates and verdict-identity flags (tools/bench_guard.py
// fails CI on any drift).
//
// --quick: the CI smoke subset (small sizes only, same row schema, mode
// recorded in the JSON so the guard compares only the rows present).

#include "anafault/campaign.h"
#include "circuits/oscgrid.h"
#include "circuits/ota.h"
#include "circuits/ringosc.h"
#include "circuits/vco.h"
#include "core/cat.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "obs/obs.h"
#include "spice/engine.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

using namespace catlift;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

struct Sample {
    std::string label;
    std::string config;
    std::size_t unknowns = 0;
    double wall_s = 0.0;
    std::size_t nr_iterations = 0;
    std::size_t lu_factorizations = 0;
    std::size_t bypass_solves = 0;
    std::size_t sparse_full_factors = 0;
    std::size_t sparse_refactors = 0;
    std::size_t device_stamp_skips = 0;
    double ordering_s = 0.0;
    double numeric_s = 0.0;
};

struct Config {
    const char* name;
    std::size_t sparse_threshold;
    spice::SparseOrdering ordering;
    bool bypass;
};

constexpr std::size_t kDense = static_cast<std::size_t>(-1);
constexpr Config kDenseCfg = {"dense", kDense, spice::SparseOrdering::Amd,
                              false};
constexpr Config kMarkCfg = {"sparse-mark", 0, spice::SparseOrdering::Markowitz,
                             false};
constexpr Config kAmdCfg = {"sparse-amd", 0, spice::SparseOrdering::Amd,
                            false};
constexpr Config kAmdBypassCfg = {"sparse-amd+bypass", 0,
                                  spice::SparseOrdering::Amd, true};

Sample run_one(const netlist::Circuit& ckt, const std::string& label,
               const Config& cfg, const netlist::TranSpec& ts) {
    spice::SimOptions opt;
    opt.uic = true;
    opt.sparse_threshold = cfg.sparse_threshold;
    opt.ordering = cfg.ordering;
    opt.bypass = cfg.bypass;

    Sample s;
    s.label = label;
    s.config = cfg.name;
    spice::Simulator sim(ckt, opt);
    s.unknowns = sim.unknowns();
    const auto t0 = std::chrono::steady_clock::now();
    sim.tran(ts);
    s.wall_s = seconds_since(t0);
    s.nr_iterations = sim.stats().nr_iterations;
    s.lu_factorizations = sim.stats().lu_factorizations;
    s.bypass_solves = sim.stats().bypass_solves;
    s.sparse_full_factors = sim.stats().sparse_full_factors;
    s.sparse_refactors = sim.stats().sparse_refactors;
    s.device_stamp_skips = sim.stats().device_stamp_skips;
    s.ordering_s = sim.stats().ordering_seconds;
    s.numeric_s = sim.stats().numeric_seconds;
    std::printf("  %-10s %-18s %8zu %10.3f %8zu %9zu %10.4f %10.4f\n",
                s.label.c_str(), s.config.c_str(), s.unknowns, s.wall_s,
                s.nr_iterations, s.sparse_refactors, s.ordering_s,
                s.numeric_s);
    return s;
}

struct CampaignBench {
    std::size_t vco_faults = 0;
    std::size_t vco_scheduled = 0;
    std::size_t vco_cache_hits = 0;
    double vco_cache_hit_rate = 0.0;
    std::size_t vco_detected_cache_on = 0;
    std::size_t vco_detected_cache_off = 0;
    double vco_wall_cache_on_s = 0.0;
    double vco_wall_cache_off_s = 0.0;
    double vco_ordering_cache_on_s = 0.0;
    double vco_ordering_cache_off_s = 0.0;
    bool vco_default_verdicts_identical = false;
    bool ota_cache_verdicts_identical = false;
    bool ota_device_bypass_verdicts_identical = false;
    std::size_t ota_device_stamp_skips = 0;
};

std::set<int> detected_ids(const anafault::CampaignResult& r) {
    std::set<int> ids;
    for (const auto& f : r.results)
        if (f.detect_time) ids.insert(f.fault_id);
    return ids;
}

CampaignBench run_campaign_bench() {
    CampaignBench cb;

    // -- VCO: the paper's 64-fault campaign, sparse kernel forced so the
    // symbolic cache engages.  Cache-on vs cache-off measures the
    // amortization; the verdict sets of the *shipped default*
    // configuration (dense path, per-device bypass at the margin-safe
    // tolerance) are compared bypass-on vs bypass-off for identity.
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    cb.vco_faults = lift_res.faults.size();

    anafault::CampaignOptions sparse_on = e.config.campaign;
    sparse_on.sim.sparse_threshold = 0;
    anafault::CampaignOptions sparse_off = sparse_on;
    sparse_off.share_symbolic = false;

    auto t0 = std::chrono::steady_clock::now();
    const auto r_on =
        anafault::run_campaign(e.sim_circuit, lift_res.faults, sparse_on);
    cb.vco_wall_cache_on_s = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    const auto r_off =
        anafault::run_campaign(e.sim_circuit, lift_res.faults, sparse_off);
    cb.vco_wall_cache_off_s = seconds_since(t0);

    cb.vco_scheduled = r_on.batch.scheduled;
    cb.vco_cache_hits = r_on.batch.symbolic_cache_hits;
    cb.vco_cache_hit_rate =
        cb.vco_scheduled > 0
            ? static_cast<double>(cb.vco_cache_hits) /
                  static_cast<double>(cb.vco_scheduled)
            : 0.0;
    cb.vco_detected_cache_on = r_on.detected();
    cb.vco_detected_cache_off = r_off.detected();
    cb.vco_ordering_cache_on_s = r_on.batch.ordering_seconds;
    cb.vco_ordering_cache_off_s = r_off.batch.ordering_seconds;

    anafault::CampaignOptions def_on = e.config.campaign;  // shipped defaults
    anafault::CampaignOptions def_off = def_on;
    def_off.sim.bypass = false;
    const auto rd_on =
        anafault::run_campaign(e.sim_circuit, lift_res.faults, def_on);
    const auto rd_off =
        anafault::run_campaign(e.sim_circuit, lift_res.faults, def_off);
    cb.vco_default_verdicts_identical =
        detected_ids(rd_on) == detected_ids(rd_off);

    // -- OTA: well-behaved campaign; cache on/off and per-device bypass
    // on/off must both be verdict-identical outright.
    circuits::OtaOptions oo;
    oo.with_sources = false;
    const netlist::Circuit ota_dev = circuits::build_ota(oo);
    const layout::Layout lo = layout::generate_cell_layout(ota_dev);
    lift::LiftOptions lopt;
    lopt.net_blocks = circuits::ota_net_blocks();
    const auto ota_faults = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);
    const netlist::Circuit ota = circuits::build_ota();

    anafault::CampaignOptions ocfg;
    ocfg.detection.observed = {circuits::kOtaOutput};
    ocfg.detection.v_tol = 0.4;
    anafault::CampaignOptions oc_on = ocfg;
    oc_on.sim.sparse_threshold = 0;
    anafault::CampaignOptions oc_off = oc_on;
    oc_off.share_symbolic = false;
    const auto ro_on = anafault::run_campaign(ota, ota_faults.faults, oc_on);
    const auto ro_off = anafault::run_campaign(ota, ota_faults.faults, oc_off);
    cb.ota_cache_verdicts_identical =
        detected_ids(ro_on) == detected_ids(ro_off);

    anafault::CampaignOptions ob_on = ocfg;
    ob_on.sim.device_bypass_tol = 1e-9;
    anafault::CampaignOptions ob_off = ocfg;
    ob_off.sim.bypass = false;
    const auto rb_on = anafault::run_campaign(ota, ota_faults.faults, ob_on);
    const auto rb_off = anafault::run_campaign(ota, ota_faults.faults, ob_off);
    cb.ota_device_bypass_verdicts_identical =
        detected_ids(rb_on) == detected_ids(rb_off);
    cb.ota_device_stamp_skips = rb_on.batch.device_stamp_skips;
    return cb;
}

} // namespace

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    std::printf("== kernel scaling: 1-D ring + 2-D oscillator grid%s ==\n\n",
                quick ? " (quick)" : "");
    obs::enable_metrics(true);  // phase histograms for the BENCH JSON
    std::printf("  %-10s %-18s %8s %10s %8s %9s %10s %10s\n", "label",
                "config", "unknowns", "wall [s]", "nr", "refactors",
                "order [s]", "numeric[s]");

    std::vector<Sample> samples;

    // Warmup (allocator/page-cache) outside the measurements.
    {
        circuits::RingOscOptions ro;
        ro.stages = 11;
        run_one(circuits::build_ring_oscillator(ro), "warmup", kDenseCfg,
                {2.5e-9, 1e-6, 0.0});
    }
    samples.clear();

    // -- 1-D ring: the historical rows, fixed 400-step grid over 1 us.
    const std::vector<int> ring_sizes =
        quick ? std::vector<int>{11, 51, 201}
              : std::vector<int>{11, 25, 51, 101, 201};
    for (int n : ring_sizes) {
        circuits::RingOscOptions ro;
        ro.stages = n;
        const netlist::Circuit ckt = circuits::build_ring_oscillator(ro);
        const netlist::TranSpec ts{2.5e-9, 1e-6, 0.0};
        const std::string label = "ring-" + std::to_string(n);
        samples.push_back(run_one(ckt, label, kDenseCfg, ts));
        samples.push_back(run_one(ckt, label, kMarkCfg, ts));
        samples.push_back(run_one(ckt, label, kAmdCfg, ts));
        samples.push_back(run_one(ckt, label, kAmdBypassCfg, ts));
    }

    // -- 2-D grid: 3-stage cells, rows x rows; the 58x58 grid is the
    // ~10k-unknown row (few steps -- at that size the one-time analysis
    // is what is being measured; the dense kernel is infeasible there and
    // is benched only on the smallest grid).
    const std::vector<int> grid_sizes =
        quick ? std::vector<int>{8, 15} : std::vector<int>{8, 15, 26, 58};
    for (int rows : grid_sizes) {
        circuits::OscGridOptions go;
        go.rows = rows;
        go.cols = rows;
        const netlist::Circuit ckt = circuits::build_oscillator_grid(go);
        const int steps = rows >= 58 ? 10 : 40;
        const netlist::TranSpec ts{2.5e-9, 2.5e-9 * steps, 0.0};
        const std::string label = "grid-" + std::to_string(rows) + "x" +
                                  std::to_string(rows);
        if (rows <= 8) samples.push_back(run_one(ckt, label, kDenseCfg, ts));
        samples.push_back(run_one(ckt, label, kMarkCfg, ts));
        samples.push_back(run_one(ckt, label, kAmdCfg, ts));
        samples.push_back(run_one(ckt, label, kAmdBypassCfg, ts));
    }

    // Headline ratios.
    auto find = [&](const std::string& label,
                    const char* config) -> const Sample* {
        for (const Sample& s : samples)
            if (s.label == label && s.config == config) return &s;
        return nullptr;
    };
    const std::vector<std::string> headline_labels = {
        "ring-201", quick ? "grid-15x15" : "grid-58x58"};
    for (const std::string& label : headline_labels) {
        const Sample* mark = find(label, "sparse-mark");
        const Sample* amd = find(label, "sparse-amd");
        if (mark && amd && amd->wall_s > 0.0)
            std::printf("  %s: amd vs markowitz %.2fx (ordering %.3fs -> "
                        "%.3fs)\n",
                        label.c_str(), mark->wall_s / amd->wall_s,
                        mark->ordering_s, amd->ordering_s);
    }

    // -- Campaign-level: symbolic cache on the paper's circuits.
    std::printf("\n== campaign-shared symbolic kernel ==\n");
    const CampaignBench cb = run_campaign_bench();
    std::printf("  VCO: %zu faults, cache hits %zu/%zu (%.0f%%), detected "
                "on/off %zu/%zu, wall %.2fs/%.2fs\n",
                cb.vco_faults, cb.vco_cache_hits, cb.vco_scheduled,
                100.0 * cb.vco_cache_hit_rate, cb.vco_detected_cache_on,
                cb.vco_detected_cache_off, cb.vco_wall_cache_on_s,
                cb.vco_wall_cache_off_s);
    std::printf("  VCO default-config verdicts (per-device bypass on/off "
                "identical): %s\n",
                cb.vco_default_verdicts_identical ? "yes" : "NO");
    std::printf("  OTA cache verdicts identical: %s, per-device bypass "
                "verdicts identical: %s (skips %zu)\n",
                cb.ota_cache_verdicts_identical ? "yes" : "NO",
                cb.ota_device_bypass_verdicts_identical ? "yes" : "NO",
                cb.ota_device_stamp_skips);

    std::ofstream js("BENCH_kernel_scaling.json");
    js << "{\n  \"bench\": \"kernel_scaling\",\n";
    js << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
    js << "  \"samples\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        js << "    {\"label\": \"" << s.label << "\", \"config\": \""
           << s.config << "\", \"unknowns\": " << s.unknowns
           << ", \"wall_s\": " << s.wall_s << ", \"nr_iterations\": "
           << s.nr_iterations << ", \"lu_factorizations\": "
           << s.lu_factorizations << ", \"bypass_solves\": "
           << s.bypass_solves << ", \"sparse_full_factors\": "
           << s.sparse_full_factors << ", \"sparse_refactors\": "
           << s.sparse_refactors << ", \"device_stamp_skips\": "
           << s.device_stamp_skips << ", \"ordering_s\": " << s.ordering_s
           << ", \"numeric_s\": " << s.numeric_s << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    js << "  \"campaign\": {\n";
    js << "    \"vco_faults\": " << cb.vco_faults << ",\n";
    js << "    \"vco_scheduled\": " << cb.vco_scheduled << ",\n";
    js << "    \"vco_cache_hits\": " << cb.vco_cache_hits << ",\n";
    js << "    \"vco_cache_hit_rate\": " << cb.vco_cache_hit_rate << ",\n";
    js << "    \"vco_detected_cache_on\": " << cb.vco_detected_cache_on
       << ",\n";
    js << "    \"vco_detected_cache_off\": " << cb.vco_detected_cache_off
       << ",\n";
    js << "    \"vco_wall_cache_on_s\": " << cb.vco_wall_cache_on_s << ",\n";
    js << "    \"vco_wall_cache_off_s\": " << cb.vco_wall_cache_off_s
       << ",\n";
    js << "    \"vco_ordering_cache_on_s\": " << cb.vco_ordering_cache_on_s
       << ",\n";
    js << "    \"vco_ordering_cache_off_s\": " << cb.vco_ordering_cache_off_s
       << ",\n";
    js << "    \"vco_default_verdicts_identical\": "
       << (cb.vco_default_verdicts_identical ? "true" : "false") << ",\n";
    js << "    \"ota_cache_verdicts_identical\": "
       << (cb.ota_cache_verdicts_identical ? "true" : "false") << ",\n";
    js << "    \"ota_device_bypass_verdicts_identical\": "
       << (cb.ota_device_bypass_verdicts_identical ? "true" : "false")
       << ",\n";
    js << "    \"ota_device_stamp_skips\": " << cb.ota_device_stamp_skips
       << "\n";
    js << "  },\n";
    js << "  \"metrics\": " << obs::Registry::global().to_json("  ") << "\n";
    js << "}\n";
    std::printf("\n  wrote BENCH_kernel_scaling.json\n");
    return 0;
}
