// Validation: LIFT's analytic critical-area probabilities against the
// original IFA Monte-Carlo methodology ([25], referenced in ch. II).
// Both compute the same physical quantity -- the chance that a random
// spot defect bridges a given net pair -- by different means; the table
// shows the agreement per net pair.

#include "circuits/vco.h"
#include "defects/montecarlo.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace catlift;
using namespace catlift::defects;

namespace {

void print_validation() {
    circuits::VcoOptions o;
    o.with_sources = false;
    const auto sch = circuits::build_vco(o);
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    const auto tech = layout::Technology::single_poly_double_metal();
    const auto ex = extract::extract(lo, tech);

    lift::LiftOptions lopt;
    lopt.net_blocks = circuits::vco_net_blocks();
    const auto analytic = lift::extract_faults(lo, tech, lopt);

    const long n = 20000000;
    long shorts = 0;
    const DefectStatistics stats = DefectStatistics::date95_table1();
    const BridgeCensus census = monte_carlo_bridges(
        ex, stats, SizeDistribution(1000.0), 25000.0, n, 4242, &shorts);

    std::printf("== Monte-Carlo validation of the analytic fault "
                "probabilities ==\n");
    std::printf("   (%ld spot defects sampled, %ld shorts; census vs "
                "LIFT's critical-area integrals)\n\n", n, shorts);
    std::printf("  %-32s %-12s %-8s %s\n", "bridge", "analytic p",
                "MC hits", "hits/p (should be ~constant)");
    int shown = 0;
    double ratio_min = 1e300, ratio_max = 0;
    for (const auto& f : analytic.faults.faults) {
        if (f.kind != lift::FaultKind::LocalShort &&
            f.kind != lift::FaultKind::GlobalShort)
            continue;
        auto it = census.find({std::min(f.net_a, f.net_b),
                               std::max(f.net_a, f.net_b)});
        const long hits = it == census.end() ? 0 : it->second;
        if (++shown <= 12) {
            std::printf("  %-32s %-12.3g %-8ld %.3g\n", f.describe().c_str(),
                        f.probability, hits,
                        hits / f.probability / 1e6);
        }
        if (hits > 100) {
            const double r = hits / f.probability;
            ratio_min = std::min(ratio_min, r);
            ratio_max = std::max(ratio_max, r);
        }
    }
    std::printf("\n  hits/p spread over all pairs with >100 hits: x%.2f\n",
                ratio_max / ratio_min);
    std::printf("  (a small spread confirms the analytic integrals track "
                "the sampled defect physics)\n\n");
}

void BM_MonteCarlo(benchmark::State& state) {
    circuits::VcoOptions o;
    o.with_sources = false;
    const auto sch = circuits::build_vco(o);
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    const auto ex = extract::extract(
        lo, layout::Technology::single_poly_double_metal());
    const DefectStatistics stats = DefectStatistics::date95_table1();
    const long n = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(monte_carlo_bridges(
            ex, stats, SizeDistribution(1000.0), 25000.0, n, 7));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MonteCarlo)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_validation();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
