// Reproduces the section VI runtime comparison: "the source model
// simulations required a simulation time 43% longer than the simulation
// time for the resistor model (4383 sec./3068 sec.)".
//
// Both hard-fault models run the same campaign; the source model's ideal
// 0V branches enlarge the MNA system, which is where the premium comes
// from.  Absolute times differ from 1994 hardware by five orders of
// magnitude; the ratio is the reproduced quantity.

#include "circuits/vco.h"
#include "core/cat.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

using namespace catlift;

namespace {

anafault::CampaignResult run_with_model(anafault::HardFaultModel model) {
    core::VcoExperiment e = core::make_vco_experiment(/*threads=*/1);
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    anafault::CampaignOptions opt = e.config.campaign;
    opt.injection.model = model;
    return anafault::run_campaign(e.sim_circuit, lift_res.faults, opt);
}

void print_ratio() {
    std::printf("== section VI: resistor model vs source model ==\n\n");
    const auto res_r = run_with_model(anafault::HardFaultModel::Resistor);
    const auto res_s = run_with_model(anafault::HardFaultModel::Source);

    std::printf("  coverage plots (paper: \"nearly identical\"):\n");
    std::printf("    time%%      resistor   source\n");
    double max_dev = 0.0;
    for (int pct = 10; pct <= 100; pct += 10) {
        const double cr = res_r.coverage_at(pct / 100.0 * res_r.tstop);
        const double cs = res_s.coverage_at(pct / 100.0 * res_s.tstop);
        max_dev = std::max(max_dev, std::fabs(cr - cs));
        std::printf("    %3d        %5.1f%%     %5.1f%%\n", pct, cr, cs);
    }
    std::printf("    max coverage deviation: %.1f%% points\n\n", max_dev);

    const double t_res = res_r.total_seconds;
    const double t_src = res_s.total_seconds;
    std::printf("  resistor model campaign : %8.3f s kernel time\n", t_res);
    std::printf("  source model campaign   : %8.3f s kernel time\n", t_src);
    std::printf("  source/resistor ratio   : %8.2f   (paper: 4383s/3068s "
                "= 1.43)\n\n",
                t_src / t_res);
    std::printf("  mechanism: per short the resistor model adds one "
                "two-terminal element, the\n  source model one extra MNA "
                "branch equation.  On this kernel's *dense* LU over\n  ~40 "
                "unknowns one extra row costs a few percent; the paper's "
                "sparse 1994 kernel\n  paid 43%%.  The direction (source "
                "model slower) and the coverage equivalence\n  are the "
                "reproduced observations.\n\n");
}

void BM_ResistorModelFault(benchmark::State& state) {
    netlist::Circuit ckt = circuits::build_vco();
    anafault::inject_short(ckt, "5", "6");
    spice::SimOptions so;
    so.uic = true;
    for (auto _ : state) {
        spice::Simulator sim(ckt, so);
        benchmark::DoNotOptimize(sim.tran());
    }
}
BENCHMARK(BM_ResistorModelFault)->Unit(benchmark::kMillisecond);

void BM_SourceModelFault(benchmark::State& state) {
    netlist::Circuit ckt = circuits::build_vco();
    anafault::InjectionOptions src;
    src.model = anafault::HardFaultModel::Source;
    anafault::inject_short(ckt, "5", "6", src);
    spice::SimOptions so;
    so.uic = true;
    for (auto _ : state) {
        spice::Simulator sim(ckt, so);
        benchmark::DoNotOptimize(sim.tran());
    }
}
BENCHMARK(BM_SourceModelFault)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_ratio();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
