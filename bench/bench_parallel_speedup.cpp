// Parallel fault-simulation speedup on the paper's VCO campaign.
//
// The seed loop (the paper's AnaFAULT cycle, follow-up [21] for the
// parallel variant) ran every fault to tstop with no dedup and no reuse.
// The batch engine adds a probability-ordered work-stealing scheduler,
// ERASER-style early abort at the first confirmed detection, and a
// fault-collapsing pre-pass.  This bench measures both across thread
// counts and emits machine-readable BENCH_parallel_speedup.json so the
// perf trajectory is recorded run over run.

#include "core/cat.h"
#include "obs/obs.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace catlift;

namespace {

struct Sample {
    std::string label;
    unsigned threads = 1;
    bool early_abort = false;
    bool collapse = false;
    bool adaptive = false;
    double wall_s = 0.0;
    std::size_t early_aborts = 0;
    std::size_t steps_saved = 0;
    std::size_t collapsed = 0;
};

double run_once(const core::VcoExperiment& e, const lift::FaultList& faults,
                unsigned threads, bool early_abort, bool collapse,
                bool adaptive, bool incremental, Sample& out) {
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = threads;
    opt.early_abort = early_abort;
    opt.collapse = collapse;
    opt.sim.adaptive = adaptive;
    // incremental=false reproduces the seed kernel's full rebuild +
    // factorization on every Newton iteration (the PR-3 stamp-split /
    // zero-allocation baseline).
    opt.sim.incremental = incremental;
    opt.sim.bypass = incremental && opt.sim.bypass;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = anafault::run_campaign(e.sim_circuit, faults, opt);
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    out.early_aborts = res.batch.early_aborts;
    out.steps_saved = res.batch.steps_saved;
    out.collapsed = res.batch.collapsed;
    return out.wall_s;
}

/// Observability overhead on the standard campaign configuration
/// (threads=4, abort+collapse+adaptive+incremental), plus the recorded
/// trace itself for the CI trace checker.
struct ObsSample {
    double wall_off_s = 0.0;
    double wall_traced_s = 0.0;
    double traced_overhead_ratio = 0.0;
    std::size_t trace_events = 0;
    double disabled_event_cost_ns = 0.0;
    double traced_off_overhead_est = 0.0;
    bool verdicts_identical = false;
};

bool same_verdicts(const anafault::CampaignResult& a,
                   const anafault::CampaignResult& b) {
    if (a.results.size() != b.results.size()) return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const auto& x = a.results[i];
        const auto& y = b.results[i];
        if (x.fault_id != y.fault_id || x.simulated != y.simulated ||
            x.detect_time.has_value() != y.detect_time.has_value())
            return false;
        if (x.detect_time && *x.detect_time != *y.detect_time) return false;
    }
    return true;
}

ObsSample measure_obs_overhead(const core::VcoExperiment& e,
                               const lift::FaultList& faults) {
    ObsSample out;
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = 4;

    // Paired off/traced runs of the identical campaign.  The traced run
    // carries the full load: metrics, span tracing and a live event sink
    // (NullSink -- the emit path runs, the payload is discarded).
    const auto t0 = std::chrono::steady_clock::now();
    const auto res_off = anafault::run_campaign(e.sim_circuit, faults, opt);
    out.wall_off_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    obs::Registry::global().reset();
    obs::trace_reset();
    obs::enable_metrics(true);
    obs::enable_tracing(true);
    obs::attach_event_sink(std::make_shared<obs::NullSink>());
    const auto t1 = std::chrono::steady_clock::now();
    const auto res_on = anafault::run_campaign(e.sim_circuit, faults, opt);
    out.wall_traced_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t1)
                            .count();
    obs::enable_tracing(false);
    obs::detach_event_sinks();

    out.traced_overhead_ratio =
        out.wall_off_s > 0.0 ? out.wall_traced_s / out.wall_off_s - 1.0 : 0.0;
    out.trace_events = obs::trace_event_count();
    out.verdicts_identical = same_verdicts(res_off, res_on);

    // The traced-off cost model: every span/event site the traced run
    // crossed costs one disabled-Span check when observation is off.
    // Measure that check directly and scale by the site count.
    constexpr std::size_t kIters = 5'000'000;
    obs::enable_metrics(false);
    const auto t2 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kIters; ++i)
        obs::Span sp(obs::Phase::Solve);
    const double bench_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t2)
                               .count();
    out.disabled_event_cost_ns = 1e9 * bench_s / kIters;
    out.traced_off_overhead_est =
        out.wall_off_s > 0.0
            ? static_cast<double>(out.trace_events) *
                  out.disabled_event_cost_ns * 1e-9 / out.wall_off_s
            : 0.0;
    obs::enable_metrics(true);  // keep metrics live for the JSON snapshot
    return out;
}

} // namespace

int main() {
    std::printf("== batch fault simulation: VCO campaign ==\n\n");
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("  hardware threads: %u\n\n", hw);

    core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    std::printf("  faults: %zu\n\n", lift_res.faults.size());

    std::vector<Sample> samples;

    // Unmeasured warmup so allocator/page-cache effects are not charged
    // to whichever configuration happens to run first.
    {
        Sample warmup;
        run_once(e, lift_res.faults, 1, false, false, false, true, warmup);
    }

    // Seed-equivalent serial loop: threads=1, no collapsing, fixed-grid
    // integration, every run integrated to tstop, and the kernel ablated
    // to the seed's per-iteration full-rebuild work profile
    // (incremental=false) -- so the batch rows measure the scheduler,
    // early abort AND the incremental kernel against the true baseline.
    {
        Sample s;
        s.label = "seed-serial";
        s.threads = 1;
        run_once(e, lift_res.faults, 1, false, false, false, false, s);
        samples.push_back(s);
    }
    const double t_seed = samples[0].wall_s;

    // All thread counts are measured regardless of the host's core count:
    // the acceptance ratio is defined at threads=4, and oversubscription is
    // itself a data point.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (const bool abort_on : {false, true}) {
            Sample s;
            s.label = "batch-t" + std::to_string(n) +
                      (abort_on ? "-abort" : "-noabort");
            s.threads = n;
            s.early_abort = abort_on;
            s.collapse = true;
            s.adaptive = true;  // campaign default: LTE stride control
            run_once(e, lift_res.faults, n, abort_on, true, true, true, s);
            samples.push_back(s);
        }
    }

    std::printf("  %-20s %8s %10s %9s %8s %12s\n", "config", "threads",
                "wall [s]", "speedup", "aborts", "steps saved");
    for (const Sample& s : samples)
        std::printf("  %-20s %8u %10.3f %8.2fx %8zu %12zu\n",
                    s.label.c_str(), s.threads, s.wall_s, t_seed / s.wall_s,
                    s.early_aborts, s.steps_saved);
    std::printf("\n");

    const ObsSample obs_s = measure_obs_overhead(e, lift_res.faults);
    std::printf("  observability: off %.3f s, traced %.3f s (%+.1f%%), "
                "%zu trace events\n",
                obs_s.wall_off_s, obs_s.wall_traced_s,
                100.0 * obs_s.traced_overhead_ratio, obs_s.trace_events);
    std::printf("  disabled span check %.2f ns; traced-off overhead "
                "estimate %.4f%% of campaign (guard <2%%)\n",
                obs_s.disabled_event_cost_ns,
                100.0 * obs_s.traced_off_overhead_est);
    std::printf("  verdicts traced vs untraced: %s\n\n",
                obs_s.verdicts_identical ? "identical" : "DIFFER");
    if (obs::write_chrome_trace_file("TRACE_vco_campaign.json"))
        std::printf("  wrote TRACE_vco_campaign.json\n");

    std::ofstream js("BENCH_parallel_speedup.json");
    js << "{\n  \"bench\": \"parallel_speedup\",\n";
    js << "  \"circuit\": \"vco\",\n";
    js << "  \"faults\": " << lift_res.faults.size() << ",\n";
    js << "  \"hardware_threads\": " << hw << ",\n";
    js << "  \"baseline\": \"seed-serial\",\n  \"samples\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        js << "    {\"label\": \"" << s.label << "\", \"threads\": "
           << s.threads << ", \"early_abort\": "
           << (s.early_abort ? "true" : "false") << ", \"collapse\": "
           << (s.collapse ? "true" : "false") << ", \"adaptive\": "
           << (s.adaptive ? "true" : "false") << ", \"wall_s\": " << s.wall_s
           << ", \"speedup_vs_seed\": " << t_seed / s.wall_s
           << ", \"early_aborts\": " << s.early_aborts
           << ", \"steps_saved\": " << s.steps_saved
           << ", \"collapsed\": " << s.collapsed << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    js << "  \"obs\": {\"wall_off_s\": " << obs_s.wall_off_s
       << ", \"wall_traced_s\": " << obs_s.wall_traced_s
       << ", \"traced_overhead_ratio\": " << obs_s.traced_overhead_ratio
       << ", \"trace_events\": " << obs_s.trace_events
       << ", \"disabled_event_cost_ns\": " << obs_s.disabled_event_cost_ns
       << ", \"traced_off_overhead_est\": " << obs_s.traced_off_overhead_est
       << ", \"verdicts_identical_traced\": "
       << (obs_s.verdicts_identical ? "true" : "false") << "},\n";
    js << "  \"metrics\": " << obs::Registry::global().to_json("  ") << "\n";
    js << "}\n";
    std::printf("  wrote BENCH_parallel_speedup.json\n");
    return 0;
}
