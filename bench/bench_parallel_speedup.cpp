// Ablation for the paper's follow-up [21] ("Recently it was improved for
// parallel execution in a workstation cluster environment"): per-fault
// simulations are independent, so the campaign parallelises trivially.
// Reports wall-clock speedup over thread counts.

#include "core/cat.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

using namespace catlift;

namespace {

double campaign_wall_seconds(unsigned threads) {
    core::VcoExperiment e = core::make_vco_experiment(threads);
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    const auto t0 = std::chrono::steady_clock::now();
    anafault::run_campaign(e.sim_circuit, lift_res.faults,
                           e.config.campaign);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

void print_speedup() {
    std::printf("== parallel fault simulation (after [21]) ==\n\n");
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("  hardware threads: %u\n\n", hw);
    const double t1 = campaign_wall_seconds(1);
    std::printf("  threads  wall [s]  speedup\n");
    std::printf("  %-8u %-9.3f %.2fx\n", 1u, t1, 1.0);
    for (unsigned n : {2u, 4u, 8u}) {
        if (n > 2 * hw) break;
        const double tn = campaign_wall_seconds(n);
        std::printf("  %-8u %-9.3f %.2fx\n", n, tn, t1 / tn);
    }
    std::printf("\n");
}

void BM_CampaignThreads(benchmark::State& state) {
    core::VcoExperiment e =
        core::make_vco_experiment(static_cast<unsigned>(state.range(0)));
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    for (auto _ : state) {
        benchmark::DoNotOptimize(anafault::run_campaign(
            e.sim_circuit, lift_res.faults, e.config.campaign));
    }
}
BENCHMARK(BM_CampaignThreads)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

int main(int argc, char** argv) {
    print_speedup();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
