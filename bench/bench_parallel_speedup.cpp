// Parallel fault-simulation speedup on the paper's VCO campaign.
//
// The seed loop (the paper's AnaFAULT cycle, follow-up [21] for the
// parallel variant) ran every fault to tstop with no dedup and no reuse.
// The batch engine adds a probability-ordered work-stealing scheduler,
// ERASER-style early abort at the first confirmed detection, and a
// fault-collapsing pre-pass.  This bench measures both across thread
// counts and emits machine-readable BENCH_parallel_speedup.json so the
// perf trajectory is recorded run over run.

#include "core/cat.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace catlift;

namespace {

struct Sample {
    std::string label;
    unsigned threads = 1;
    bool early_abort = false;
    bool collapse = false;
    bool adaptive = false;
    double wall_s = 0.0;
    std::size_t early_aborts = 0;
    std::size_t steps_saved = 0;
    std::size_t collapsed = 0;
};

double run_once(const core::VcoExperiment& e, const lift::FaultList& faults,
                unsigned threads, bool early_abort, bool collapse,
                bool adaptive, bool incremental, Sample& out) {
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = threads;
    opt.early_abort = early_abort;
    opt.collapse = collapse;
    opt.sim.adaptive = adaptive;
    // incremental=false reproduces the seed kernel's full rebuild +
    // factorization on every Newton iteration (the PR-3 stamp-split /
    // zero-allocation baseline).
    opt.sim.incremental = incremental;
    opt.sim.bypass = incremental && opt.sim.bypass;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = anafault::run_campaign(e.sim_circuit, faults, opt);
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    out.early_aborts = res.batch.early_aborts;
    out.steps_saved = res.batch.steps_saved;
    out.collapsed = res.batch.collapsed;
    return out.wall_s;
}

} // namespace

int main() {
    std::printf("== batch fault simulation: VCO campaign ==\n\n");
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("  hardware threads: %u\n\n", hw);

    core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    std::printf("  faults: %zu\n\n", lift_res.faults.size());

    std::vector<Sample> samples;

    // Unmeasured warmup so allocator/page-cache effects are not charged
    // to whichever configuration happens to run first.
    {
        Sample warmup;
        run_once(e, lift_res.faults, 1, false, false, false, true, warmup);
    }

    // Seed-equivalent serial loop: threads=1, no collapsing, fixed-grid
    // integration, every run integrated to tstop, and the kernel ablated
    // to the seed's per-iteration full-rebuild work profile
    // (incremental=false) -- so the batch rows measure the scheduler,
    // early abort AND the incremental kernel against the true baseline.
    {
        Sample s;
        s.label = "seed-serial";
        s.threads = 1;
        run_once(e, lift_res.faults, 1, false, false, false, false, s);
        samples.push_back(s);
    }
    const double t_seed = samples[0].wall_s;

    // All thread counts are measured regardless of the host's core count:
    // the acceptance ratio is defined at threads=4, and oversubscription is
    // itself a data point.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (const bool abort_on : {false, true}) {
            Sample s;
            s.label = "batch-t" + std::to_string(n) +
                      (abort_on ? "-abort" : "-noabort");
            s.threads = n;
            s.early_abort = abort_on;
            s.collapse = true;
            s.adaptive = true;  // campaign default: LTE stride control
            run_once(e, lift_res.faults, n, abort_on, true, true, true, s);
            samples.push_back(s);
        }
    }

    std::printf("  %-20s %8s %10s %9s %8s %12s\n", "config", "threads",
                "wall [s]", "speedup", "aborts", "steps saved");
    for (const Sample& s : samples)
        std::printf("  %-20s %8u %10.3f %8.2fx %8zu %12zu\n",
                    s.label.c_str(), s.threads, s.wall_s, t_seed / s.wall_s,
                    s.early_aborts, s.steps_saved);
    std::printf("\n");

    std::ofstream js("BENCH_parallel_speedup.json");
    js << "{\n  \"bench\": \"parallel_speedup\",\n";
    js << "  \"circuit\": \"vco\",\n";
    js << "  \"faults\": " << lift_res.faults.size() << ",\n";
    js << "  \"hardware_threads\": " << hw << ",\n";
    js << "  \"baseline\": \"seed-serial\",\n  \"samples\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        js << "    {\"label\": \"" << s.label << "\", \"threads\": "
           << s.threads << ", \"early_abort\": "
           << (s.early_abort ? "true" : "false") << ", \"collapse\": "
           << (s.collapse ? "true" : "false") << ", \"adaptive\": "
           << (s.adaptive ? "true" : "false") << ", \"wall_s\": " << s.wall_s
           << ", \"speedup_vs_seed\": " << t_seed / s.wall_s
           << ", \"early_aborts\": " << s.early_aborts
           << ", \"steps_saved\": " << s.steps_saved
           << ", \"collapsed\": " << s.collapsed << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::printf("  wrote BENCH_parallel_speedup.json\n");
    return 0;
}
