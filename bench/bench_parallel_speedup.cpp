// Parallel fault-simulation speedup on the paper's VCO campaign.
//
// The seed loop (the paper's AnaFAULT cycle, follow-up [21] for the
// parallel variant) ran every fault to tstop with no dedup and no reuse.
// The batch engine adds a probability-ordered work-stealing scheduler,
// ERASER-style early abort at the first confirmed detection, and a
// fault-collapsing pre-pass.  This bench measures both across thread
// counts and emits machine-readable BENCH_parallel_speedup.json so the
// perf trajectory is recorded run over run.

#include "anafault/worker.h"
#include "batch/fabric.h"
#include "batch/shard.h"
#include "core/cat.h"
#include "obs/obs.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

using namespace catlift;

namespace {

struct Sample {
    std::string label;
    unsigned threads = 1;
    bool early_abort = false;
    bool collapse = false;
    bool adaptive = false;
    double wall_s = 0.0;
    std::size_t early_aborts = 0;
    std::size_t steps_saved = 0;
    std::size_t collapsed = 0;
};

double run_once(const core::VcoExperiment& e, const lift::FaultList& faults,
                unsigned threads, bool early_abort, bool collapse,
                bool adaptive, bool incremental, Sample& out) {
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = threads;
    opt.early_abort = early_abort;
    opt.collapse = collapse;
    opt.sim.adaptive = adaptive;
    // incremental=false reproduces the seed kernel's full rebuild +
    // factorization on every Newton iteration (the PR-3 stamp-split /
    // zero-allocation baseline).
    opt.sim.incremental = incremental;
    opt.sim.bypass = incremental && opt.sim.bypass;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = anafault::run_campaign(e.sim_circuit, faults, opt);
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    out.early_aborts = res.batch.early_aborts;
    out.steps_saved = res.batch.steps_saved;
    out.collapsed = res.batch.collapsed;
    return out.wall_s;
}

/// Observability overhead on the standard campaign configuration
/// (threads=4, abort+collapse+adaptive+incremental), plus the recorded
/// trace itself for the CI trace checker.
struct ObsSample {
    double wall_off_s = 0.0;
    double wall_traced_s = 0.0;
    double traced_overhead_ratio = 0.0;
    std::size_t trace_events = 0;
    double disabled_event_cost_ns = 0.0;
    double traced_off_overhead_est = 0.0;
    bool verdicts_identical = false;
};

bool same_verdicts(const anafault::CampaignResult& a,
                   const anafault::CampaignResult& b) {
    if (a.results.size() != b.results.size()) return false;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const auto& x = a.results[i];
        const auto& y = b.results[i];
        if (x.fault_id != y.fault_id || x.simulated != y.simulated ||
            x.detect_time.has_value() != y.detect_time.has_value())
            return false;
        if (x.detect_time && *x.detect_time != *y.detect_time) return false;
    }
    return true;
}

ObsSample measure_obs_overhead(const core::VcoExperiment& e,
                               const lift::FaultList& faults) {
    ObsSample out;
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = 4;

    // Paired off/traced runs of the identical campaign.  The traced run
    // carries the full load: metrics, span tracing and a live event sink
    // (NullSink -- the emit path runs, the payload is discarded).
    const auto t0 = std::chrono::steady_clock::now();
    const auto res_off = anafault::run_campaign(e.sim_circuit, faults, opt);
    out.wall_off_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    obs::Registry::global().reset();
    obs::trace_reset();
    obs::enable_metrics(true);
    obs::enable_tracing(true);
    obs::attach_event_sink(std::make_shared<obs::NullSink>());
    const auto t1 = std::chrono::steady_clock::now();
    const auto res_on = anafault::run_campaign(e.sim_circuit, faults, opt);
    out.wall_traced_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t1)
                            .count();
    obs::enable_tracing(false);
    obs::detach_event_sinks();

    out.traced_overhead_ratio =
        out.wall_off_s > 0.0 ? out.wall_traced_s / out.wall_off_s - 1.0 : 0.0;
    out.trace_events = obs::trace_event_count();
    out.verdicts_identical = same_verdicts(res_off, res_on);

    // The traced-off cost model: every span/event site the traced run
    // crossed costs one disabled-Span check when observation is off.
    // Measure that check directly and scale by the site count.
    constexpr std::size_t kIters = 5'000'000;
    obs::enable_metrics(false);
    const auto t2 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kIters; ++i)
        obs::Span sp(obs::Phase::Solve);
    const double bench_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t2)
                               .count();
    out.disabled_event_cost_ns = 1e9 * bench_s / kIters;
    out.traced_off_overhead_est =
        out.wall_off_s > 0.0
            ? static_cast<double>(out.trace_events) *
                  out.disabled_event_cost_ns * 1e-9 / out.wall_off_s
            : 0.0;
    obs::enable_metrics(true);  // keep metrics live for the JSON snapshot
    return out;
}

// ---------------------------------------------------------------------------
// Multi-process fabric overhead (batch/fabric.h)

/// Supervision cost of the crash-isolated fabric on a kill-free run.
/// Both sides of the overhead ratio time the *whole* job -- experiment
/// construction, layout fault extraction, nominal + campaign -- once:
/// direct runs it in-process, fabric w1 runs it in one supervised worker
/// process, so the difference is exactly what the fabric adds (spawn,
/// heartbeats, the supervision poll loop, the shard merge).
struct FabricSample {
    double wall_direct_s = 0.0;  ///< single process, threads=1, store on
    double wall_w1_s = 0.0;      ///< 1 supervised worker + merge
    double wall_w2_s = 0.0;
    double wall_w4_s = 0.0;
    double supervision_overhead = 0.0;  ///< wall_w1 / wall_direct - 1
    std::size_t spawns = 0;             ///< across all fabric runs
    std::size_t deaths = 0;             ///< must stay 0 (nothing injected)
    bool verdicts_identical = false;    ///< merged store vs direct run
};

std::string bench_self_exe(const char* argv0) {
#if defined(__linux__)
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return argv0;
}

double now_minus(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/// `bench_parallel_speedup --fabric-worker <shard> <lo> <hi> <fd>`:
/// one supervised worker of the fabric row below (self-exec'd).
int run_fabric_worker(char** argv) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const lift::LiftResult lifted =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = 1;
    anafault::WorkerOptions w;
    w.shard = argv[2];
    w.id_lo = std::atoi(argv[3]);
    w.id_hi = std::atoi(argv[4]);
    w.heartbeat_fd = std::atoi(argv[5]);
    anafault::run_worker_campaign(e.sim_circuit, lifted.faults, opt, w);
    return 0;
}

FabricSample measure_fabric(const char* argv0) {
    FabricSample out;
    const std::string direct_store = "BENCH_fabric_direct.store";
    const std::string fab_base = "BENCH_fabric.store";
    const std::string exe = bench_self_exe(argv0);
    auto cleanup = [&] {
        std::error_code ec;
        std::filesystem::remove(direct_store, ec);
        std::filesystem::remove(fab_base, ec);
        for (const std::string& s : batch::list_shards(fab_base))
            std::filesystem::remove(s, ec);
    };

    // Direct single-process reference (min of 2 reps).
    anafault::CampaignResult direct;
    out.wall_direct_s = 1e30;
    for (int rep = 0; rep < 2; ++rep) {
        cleanup();
        const auto t0 = std::chrono::steady_clock::now();
        const core::VcoExperiment e = core::make_vco_experiment();
        const auto lifted =
            lift::extract_faults(e.layout, e.config.tech, e.config.lift);
        anafault::CampaignOptions opt = e.config.campaign;
        opt.threads = 1;
        opt.result_store = direct_store;
        direct = anafault::run_campaign(e.sim_circuit, lifted.faults, opt);
        out.wall_direct_s = std::min(out.wall_direct_s, now_minus(t0));
    }

    // The fabric needs the manifest and fault ids up front; this
    // (deliberately untimed) setup is the supervisor's own startup cost
    // in anafaultc too, where it is shared with the in-process path.
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lifted =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = 1;
    const std::uint64_t manifest =
        anafault::campaign_manifest(e.sim_circuit, lifted.faults, opt);
    std::vector<int> ids;
    for (const lift::Fault& f : lifted.faults.faults) ids.push_back(f.id);

    batch::WorkerCommand cmd = [&](const batch::WorkerSlot& s) {
        return std::vector<std::string>{
            exe, "--fabric-worker", s.shard, std::to_string(s.range.lo),
            std::to_string(s.range.hi), std::to_string(s.heartbeat_fd)};
    };
    batch::PoisonRecord poison = [&](int id, int deaths,
                                     const std::string& log) {
        return anafault::quarantine_record(lifted.faults, id, deaths, log);
    };
    anafault::CampaignResult merged;
    auto fabric_once = [&](unsigned workers) {
        cleanup();
        batch::FabricOptions fo;
        fo.workers = workers;
        fo.worker_timeout_s = 120.0;
        const auto t0 = std::chrono::steady_clock::now();
        const batch::FabricReport rep =
            batch::run_fabric(ids, manifest, fab_base, cmd, poison, fo);
        batch::merge_shards(fab_base, manifest,
                            batch::list_shards(fab_base));
        const double wall = now_minus(t0);
        out.spawns += rep.spawns;
        out.deaths += rep.deaths + rep.timeouts + rep.spawn_failures;
        merged = anafault::load_campaign_result(e.sim_circuit, lifted.faults,
                                                opt, fab_base);
        return wall;
    };

    out.wall_w1_s = 1e30;
    for (int rep = 0; rep < 2; ++rep)
        out.wall_w1_s = std::min(out.wall_w1_s, fabric_once(1));
    out.verdicts_identical = same_verdicts(direct, merged);
    out.wall_w2_s = fabric_once(2);
    out.wall_w4_s = fabric_once(4);
    out.verdicts_identical =
        out.verdicts_identical && same_verdicts(direct, merged);
    out.supervision_overhead =
        out.wall_direct_s > 0.0 ? out.wall_w1_s / out.wall_direct_s - 1.0
                                : 0.0;
    cleanup();
    return out;
}

} // namespace

int main(int argc, char** argv) {
    if (argc >= 6 && std::string(argv[1]) == "--fabric-worker")
        return run_fabric_worker(argv);
    std::printf("== batch fault simulation: VCO campaign ==\n\n");
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("  hardware threads: %u\n\n", hw);

    core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    std::printf("  faults: %zu\n\n", lift_res.faults.size());

    std::vector<Sample> samples;

    // Unmeasured warmup so allocator/page-cache effects are not charged
    // to whichever configuration happens to run first.
    {
        Sample warmup;
        run_once(e, lift_res.faults, 1, false, false, false, true, warmup);
    }

    // Seed-equivalent serial loop: threads=1, no collapsing, fixed-grid
    // integration, every run integrated to tstop, and the kernel ablated
    // to the seed's per-iteration full-rebuild work profile
    // (incremental=false) -- so the batch rows measure the scheduler,
    // early abort AND the incremental kernel against the true baseline.
    {
        Sample s;
        s.label = "seed-serial";
        s.threads = 1;
        run_once(e, lift_res.faults, 1, false, false, false, false, s);
        samples.push_back(s);
    }
    const double t_seed = samples[0].wall_s;

    // All thread counts are measured regardless of the host's core count:
    // the acceptance ratio is defined at threads=4, and oversubscription is
    // itself a data point.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (const bool abort_on : {false, true}) {
            Sample s;
            s.label = "batch-t" + std::to_string(n) +
                      (abort_on ? "-abort" : "-noabort");
            s.threads = n;
            s.early_abort = abort_on;
            s.collapse = true;
            s.adaptive = true;  // campaign default: LTE stride control
            run_once(e, lift_res.faults, n, abort_on, true, true, true, s);
            samples.push_back(s);
        }
    }

    std::printf("  %-20s %8s %10s %9s %8s %12s\n", "config", "threads",
                "wall [s]", "speedup", "aborts", "steps saved");
    for (const Sample& s : samples)
        std::printf("  %-20s %8u %10.3f %8.2fx %8zu %12zu\n",
                    s.label.c_str(), s.threads, s.wall_s, t_seed / s.wall_s,
                    s.early_aborts, s.steps_saved);
    std::printf("\n");

    const ObsSample obs_s = measure_obs_overhead(e, lift_res.faults);
    std::printf("  observability: off %.3f s, traced %.3f s (%+.1f%%), "
                "%zu trace events\n",
                obs_s.wall_off_s, obs_s.wall_traced_s,
                100.0 * obs_s.traced_overhead_ratio, obs_s.trace_events);
    std::printf("  disabled span check %.2f ns; traced-off overhead "
                "estimate %.4f%% of campaign (guard <2%%)\n",
                obs_s.disabled_event_cost_ns,
                100.0 * obs_s.traced_off_overhead_est);
    std::printf("  verdicts traced vs untraced: %s\n\n",
                obs_s.verdicts_identical ? "identical" : "DIFFER");
    if (obs::write_chrome_trace_file("TRACE_vco_campaign.json"))
        std::printf("  wrote TRACE_vco_campaign.json\n");

    const FabricSample fab = measure_fabric(argv[0]);
    std::printf("\n  fabric: direct %.3f s | w1 %.3f s (supervision "
                "%+.1f%%) | w2 %.3f s | w4 %.3f s\n",
                fab.wall_direct_s, fab.wall_w1_s,
                100.0 * fab.supervision_overhead, fab.wall_w2_s,
                fab.wall_w4_s);
    std::printf("  fabric: %zu spawns, %zu deaths (guard: 0), merged "
                "verdicts vs direct: %s\n\n",
                fab.spawns, fab.deaths,
                fab.verdicts_identical ? "identical" : "DIFFER");

    std::ofstream js("BENCH_parallel_speedup.json");
    js << "{\n  \"bench\": \"parallel_speedup\",\n";
    js << "  \"circuit\": \"vco\",\n";
    js << "  \"faults\": " << lift_res.faults.size() << ",\n";
    js << "  \"hardware_threads\": " << hw << ",\n";
    js << "  \"baseline\": \"seed-serial\",\n  \"samples\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& s = samples[i];
        js << "    {\"label\": \"" << s.label << "\", \"threads\": "
           << s.threads << ", \"early_abort\": "
           << (s.early_abort ? "true" : "false") << ", \"collapse\": "
           << (s.collapse ? "true" : "false") << ", \"adaptive\": "
           << (s.adaptive ? "true" : "false") << ", \"wall_s\": " << s.wall_s
           << ", \"speedup_vs_seed\": " << t_seed / s.wall_s
           << ", \"early_aborts\": " << s.early_aborts
           << ", \"steps_saved\": " << s.steps_saved
           << ", \"collapsed\": " << s.collapsed << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    js << "  ],\n";
    js << "  \"obs\": {\"wall_off_s\": " << obs_s.wall_off_s
       << ", \"wall_traced_s\": " << obs_s.wall_traced_s
       << ", \"traced_overhead_ratio\": " << obs_s.traced_overhead_ratio
       << ", \"trace_events\": " << obs_s.trace_events
       << ", \"disabled_event_cost_ns\": " << obs_s.disabled_event_cost_ns
       << ", \"traced_off_overhead_est\": " << obs_s.traced_off_overhead_est
       << ", \"verdicts_identical_traced\": "
       << (obs_s.verdicts_identical ? "true" : "false") << "},\n";
    js << "  \"fabric\": {\"wall_direct_s\": " << fab.wall_direct_s
       << ", \"wall_w1_s\": " << fab.wall_w1_s
       << ", \"wall_w2_s\": " << fab.wall_w2_s
       << ", \"wall_w4_s\": " << fab.wall_w4_s
       << ", \"supervision_overhead\": " << fab.supervision_overhead
       << ", \"spawns\": " << fab.spawns
       << ", \"deaths\": " << fab.deaths
       << ", \"verdicts_identical_fabric\": "
       << (fab.verdicts_identical ? "true" : "false") << "},\n";
    js << "  \"metrics\": " << obs::Registry::global().to_json("  ") << "\n";
    js << "}\n";
    std::printf("  wrote BENCH_parallel_speedup.json\n");
    return 0;
}
