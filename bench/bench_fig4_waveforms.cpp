// Reproduces Fig. 4 ("Three examples for faults extracted by LIFT and
// simulated with AnaFAULT"): the fault-free V(11) oscillation, a bridging
// fault that changes the oscillation frequency (the paper's #6 BRI
// n_ds_short 5->6), and a bridging fault that freezes the output (the
// paper's #339 BRI metal1_short class).  Benchmarks the 400-step kernel
// transient that produces each trace.

#include "anafault/fault_models.h"
#include "circuits/vco.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace catlift;

namespace {

spice::Waveforms simulate(netlist::Circuit ckt) {
    spice::SimOptions opt;
    opt.uic = true;
    spice::Simulator sim(ckt, opt);
    return sim.tran();  // the paper's 400-step 4us grid (.tran card)
}

void show(const char* title, const spice::Waveforms& wf) {
    const auto period = spice::estimate_period(wf, circuits::kVcoOutput,
                                               2.5, 1e-6, 4e-6);
    std::printf("-- %s --\n", title);
    if (period)
        std::printf("   oscillating, period %.0f ns\n", *period * 1e9);
    else
        std::printf("   not oscillating (constant output)\n");
    std::printf("%s\n",
                spice::ascii_plot(wf, circuits::kVcoOutput, 76, 12).c_str());
}

void print_fig4() {
    std::printf("== Fig. 4: V(11) waveforms, 400-step transient over 4us "
                "==\n\n");
    show("fault-free", simulate(circuits::build_vco()));

    {
        netlist::Circuit c = circuits::build_vco();
        anafault::inject_short(c, circuits::kVcoChargeRail,
                               circuits::kVcoCapNode);
        show("#6-class BRI 5->6 (changes the oscillation frequency)",
             simulate(std::move(c)));
    }
    {
        netlist::Circuit c = circuits::build_vco();
        anafault::inject_short(c, "1", "3");
        show("#339-class BRI 1->3 (constant high output)",
             simulate(std::move(c)));
    }
    {
        netlist::Circuit c = circuits::build_vco();
        anafault::inject_short(c, circuits::kVcoSchmittDrain, "0");
        show("BRI 9->0 (constant low output)", simulate(std::move(c)));
    }
    std::printf("note: at first glance the frequency-shifted oscillation "
                "would be attributed to a soft\nrather than a hard fault "
                "(paper, section VI)\n\n");
}

void BM_Transient400Steps(benchmark::State& state) {
    const netlist::Circuit ckt = circuits::build_vco();
    spice::SimOptions opt;
    opt.uic = true;
    for (auto _ : state) {
        spice::Simulator sim(ckt, opt);
        benchmark::DoNotOptimize(sim.tran());
    }
}
BENCHMARK(BM_Transient400Steps)->Unit(benchmark::kMillisecond);

void BM_TransientFaulty(benchmark::State& state) {
    netlist::Circuit ckt = circuits::build_vco();
    anafault::inject_short(ckt, "5", "6");
    spice::SimOptions opt;
    opt.uic = true;
    for (auto _ : state) {
        spice::Simulator sim(ckt, opt);
        benchmark::DoNotOptimize(sim.tran());
    }
}
BENCHMARK(BM_TransientFaulty)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig4();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
