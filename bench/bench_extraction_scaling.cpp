// Scaling: the LIFT pipeline over growing layouts.  The paper's VCO is
// one macro; a production fault extractor must stay near-linear in layout
// size.  Inverter chains scale the generator, the extractor and the fault
// enumeration together.

#include "circuits/vco.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace catlift;

namespace {

void print_scaling() {
    std::printf("== LIFT scaling over inverter-chain layouts ==\n\n");
    std::printf("  %-8s %-8s %-8s %-10s %-8s %s\n", "stages", "shapes",
                "nets", "sites", "faults", "lift [ms]");
    const auto tech = layout::Technology::single_poly_double_metal();
    for (int n : {4, 8, 16, 32, 64}) {
        const auto ckt = circuits::build_inverter_chain(n, false);
        const auto lo = layout::generate_cell_layout(ckt);
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = lift::extract_faults(lo, tech, lift::LiftOptions{});
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::printf("  %-8d %-8zu %-8zu %-10zu %-8zu %.1f\n", n, lo.size(),
                    res.extraction.net_names.size(),
                    res.stats.bridge_sites + res.stats.open_sites +
                        res.stats.cut_sites,
                    res.faults.size(), ms);
    }
    std::printf("\n");
}

void BM_LiftChain(benchmark::State& state) {
    const auto ckt =
        circuits::build_inverter_chain(static_cast<int>(state.range(0)),
                                       false);
    const auto lo = layout::generate_cell_layout(ckt);
    const auto tech = layout::Technology::single_poly_double_metal();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            lift::extract_faults(lo, tech, lift::LiftOptions{}));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LiftChain)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

} // namespace

int main(int argc, char** argv) {
    print_scaling();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
