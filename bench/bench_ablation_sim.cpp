// Ablation: kernel simulator design choices.  The paper fixes a 400-step
// transient; this bench quantifies what the integration method and the
// step count buy -- period accuracy of the VCO against a fine-step
// reference, and the cost of each choice.

#include "circuits/vco.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

using namespace catlift;

namespace {

double period_with(spice::Method method, double tstep) {
    netlist::Circuit ckt = circuits::build_vco();
    spice::SimOptions opt;
    opt.uic = true;
    opt.method = method;
    spice::Simulator sim(ckt, opt);
    const auto wf = sim.tran(netlist::TranSpec{tstep, 4e-6, 0.0});
    return spice::estimate_period(wf, circuits::kVcoOutput, 2.5, 1e-6, 4e-6)
        .value_or(0.0);
}

void print_ablation() {
    std::printf("== ablation: integration method and step size ==\n\n");
    const double ref = period_with(spice::Method::Trapezoidal, 1e-9);
    std::printf("  reference period (TRAP, 1 ns steps): %.1f ns\n\n",
                ref * 1e9);
    std::printf("  %-8s %-10s %-12s %s\n", "method", "steps", "period[ns]",
                "error vs ref");
    struct Cfg {
        const char* name;
        spice::Method m;
        double tstep;
    };
    const Cfg cfgs[] = {
        {"TRAP", spice::Method::Trapezoidal, 1e-8},
        {"TRAP", spice::Method::Trapezoidal, 4e-8},
        {"BE", spice::Method::BackwardEuler, 1e-8},
        {"BE", spice::Method::BackwardEuler, 4e-8},
    };
    for (const Cfg& c : cfgs) {
        const double p = period_with(c.m, c.tstep);
        std::printf("  %-8s %-10.0f %-12.1f %+.1f%%\n", c.name,
                    4e-6 / c.tstep, p * 1e9, 100.0 * (p - ref) / ref);
    }
    std::printf("\n  the paper's 400-step grid (10 ns) reproduces the "
                "oscillation within a few percent;\n  gate capacitances "
                "keep the regenerative Schmitt transitions well-posed.\n\n");
}

void BM_StepSize(benchmark::State& state) {
    const double tstep = 4e-6 / static_cast<double>(state.range(0));
    netlist::Circuit ckt = circuits::build_vco();
    spice::SimOptions opt;
    opt.uic = true;
    for (auto _ : state) {
        spice::Simulator sim(ckt, opt);
        benchmark::DoNotOptimize(sim.tran(netlist::TranSpec{tstep, 4e-6, 0.0}));
    }
}
BENCHMARK(BM_StepSize)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_MethodTrapVsBe(benchmark::State& state) {
    netlist::Circuit ckt = circuits::build_vco();
    spice::SimOptions opt;
    opt.uic = true;
    opt.method = state.range(0) ? spice::Method::Trapezoidal
                                : spice::Method::BackwardEuler;
    for (auto _ : state) {
        spice::Simulator sim(ckt, opt);
        benchmark::DoNotOptimize(sim.tran());
    }
}
BENCHMARK(BM_MethodTrapVsBe)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_ablation();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
