// Incremental cross-revision campaign on the paper's VCO.
//
// The workflow the paper implies is iterative: revise the layout, re-run
// LIFT, re-run the campaign.  A cold re-run pays the kernel for all ~64
// faults again; the incremental engine diffs the two fault lists, carries
// the verdicts of signature-identical faults out of the baseline result
// store, and simulates only the added/changed remainder.  This bench
// applies the canonical deterministic layout revision (widen the
// charge-rail track, slide a contact, flip two terminals' contact
// redundancy), checks the merged verdicts are identical to a cold full
// campaign on the revision, and emits BENCH_incremental_campaign.json.

#include "anafault/incremental.h"
#include "core/cat.h"
#include "layout/revise.h"
#include "lift/extract_faults.h"
#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace catlift;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::string verdict_string(const anafault::CampaignResult& res) {
    std::string v;
    for (const auto& r : res.results)
        v += r.detect_time ? 'D' : (r.simulated ? 'u' : 'x');
    return v;
}

} // namespace

int main() {
    std::printf("== incremental cross-revision campaign: VCO ==\n\n");
    obs::enable_metrics(true);  // phase histograms for the BENCH JSON
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto base_lift =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);

    const layout::Layout revised =
        layout::revise_layout(e.layout, layout::vco_revision_spec());
    const auto rev_lift =
        lift::extract_faults(revised, e.config.tech, e.config.lift);

    const auto diff = lift::diff_faultlists(base_lift.faults, rev_lift.faults);
    std::printf("  baseline faults: %zu   revision faults: %zu\n",
                base_lift.faults.size(), rev_lift.faults.size());
    std::printf("  diff: %zu carried, %zu changed, %zu added, %zu removed\n\n",
                diff.carried.size(), diff.probability_changed.size(),
                diff.only_b.size(), diff.only_a.size());

    const std::string baseline_store = "BENCH_incremental_baseline.store";
    const std::string merged_store = "BENCH_incremental_merged.store";
    std::filesystem::remove(baseline_store);

    // Baseline campaign (revision N): one cold run writing the store the
    // incremental run will carry from.  Doubles as the warmup.
    anafault::CampaignOptions copt = e.config.campaign;
    copt.result_store = baseline_store;
    const auto base_res =
        anafault::run_campaign(e.sim_circuit, base_lift.faults, copt);
    std::printf("  baseline campaign: %zu/%zu detected\n",
                base_res.detected(), base_res.results.size());

    // Cold full campaign on revision N+1 (what today's flow pays).
    anafault::CampaignOptions cold_opt = e.config.campaign;
    double cold_wall = 1e300;
    anafault::CampaignResult cold_res;
    for (int rep = 0; rep < 2; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        cold_res =
            anafault::run_campaign(e.sim_circuit, rev_lift.faults, cold_opt);
        cold_wall = std::min(cold_wall, seconds_since(t0));
    }

    // Incremental run on the same revision.
    anafault::IncrementalOptions iopt;
    iopt.campaign = e.config.campaign;
    iopt.campaign.result_store = merged_store;
    iopt.baseline_store = baseline_store;
    double inc_wall = 1e300;
    anafault::IncrementalResult inc_res;
    for (int rep = 0; rep < 2; ++rep) {
        std::filesystem::remove(merged_store);
        const auto t0 = std::chrono::steady_clock::now();
        inc_res = anafault::run_incremental_campaign(
            e.sim_circuit, base_lift.faults, rev_lift.faults, iopt);
        inc_wall = std::min(inc_wall, seconds_since(t0));
    }
    std::printf("  %s", anafault::incremental_summary(inc_res).c_str());

    const bool verdicts_identical =
        verdict_string(cold_res) == verdict_string(inc_res.campaign);
    const double speedup = inc_wall > 0 ? cold_wall / inc_wall : 0.0;
    const double carried_fraction =
        rev_lift.faults.size() > 0
            ? static_cast<double>(inc_res.inc.carried) /
                  static_cast<double>(rev_lift.faults.size())
            : 0.0;

    std::printf("\n  %-16s %10s %10s\n", "config", "wall [s]", "detected");
    std::printf("  %-16s %10.3f %10zu\n", "cold-revision", cold_wall,
                cold_res.detected());
    std::printf("  %-16s %10.3f %10zu\n", "incremental", inc_wall,
                inc_res.campaign.detected());
    std::printf("\n  verdicts identical to cold run: %s\n",
                verdicts_identical ? "yes" : "NO");
    std::printf("  carried fraction: %.0f%%   speedup vs cold: %.2fx\n\n",
                100.0 * carried_fraction, speedup);

    std::ofstream js("BENCH_incremental_campaign.json");
    js << "{\n  \"bench\": \"incremental_campaign\",\n";
    js << "  \"circuit\": \"vco\",\n";
    js << "  \"baseline_faults\": " << base_lift.faults.size() << ",\n";
    js << "  \"revision_faults\": " << rev_lift.faults.size() << ",\n";
    js << "  \"carried\": " << inc_res.inc.carried << ",\n";
    js << "  \"resimulated\": " << inc_res.inc.resimulated << ",\n";
    js << "  \"added\": " << inc_res.inc.added << ",\n";
    js << "  \"removed\": " << inc_res.inc.removed << ",\n";
    js << "  \"probability_changed\": " << inc_res.inc.probability_changed
       << ",\n";
    js << "  \"detected\": " << inc_res.campaign.detected() << ",\n";
    js << "  \"verdicts_identical\": "
       << (verdicts_identical ? "true" : "false") << ",\n";
    js << "  \"carried_fraction\": " << carried_fraction << ",\n";
    js << "  \"cold_wall_s\": " << cold_wall << ",\n";
    js << "  \"incremental_wall_s\": " << inc_wall << ",\n";
    js << "  \"speedup_vs_cold\": " << speedup << ",\n";
    js << "  \"metrics\": " << obs::Registry::global().to_json("  ") << "\n";
    js << "}\n";
    std::printf("  wrote BENCH_incremental_campaign.json\n");

    std::filesystem::remove(baseline_store);
    std::filesystem::remove(merged_store);
    return verdicts_identical ? 0 : 1;
}
