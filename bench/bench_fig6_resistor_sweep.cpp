// Reproduces Fig. 6 ("Three different values for the resistor shorting
// M11"): the value of the shorting resistor at the drain of Schmitt
// transistor M11 dials the same fault site from invisible to catastrophic.
//
// Paper (their drive strengths): 1 kOhm barely visible, 41/21 Ohm clearly
// visible, 1 Ohm stops the oscillation after one cycle.  This VCO is built
// from weaker (uA-scale) devices, so the same three severity classes occur
// at proportionally larger resistances -- the *message* of Fig. 6 ("the
// circuit itself strongly influences the optimal resistor value") is the
// reproduced quantity.  See EXPERIMENTS.md for the mapping.

#include "circuits/vco.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

using namespace catlift;

namespace {

spice::Waveforms run_with_r(double r_ohm) {
    netlist::Circuit ckt = circuits::build_vco();
    if (r_ohm > 0)
        ckt.add_resistor("RSHORT", circuits::kVcoSchmittDrain, "0", r_ohm);
    spice::SimOptions opt;
    opt.uic = true;
    spice::Simulator sim(ckt, opt);
    return sim.tran();
}

void print_fig6() {
    std::printf("== Fig. 6: shorting-resistor value sweep at the drain of "
                "M11 ==\n\n");
    const auto nominal = run_with_r(0);
    const auto pn = spice::estimate_period(nominal, circuits::kVcoOutput,
                                           2.5, 1.5e-6, 4e-6);
    std::printf("  fault-free period: %.0f ns\n\n", pn.value_or(0) * 1e9);
    std::printf("  %-10s %-12s %-10s %s\n", "R [Ohm]", "period [ns]",
                "swing [V]", "verdict");
    for (double r : {1e6, 3e5, 1e5, 3e4, 1e4, 3e3, 1e3, 41.0, 21.0, 1.0}) {
        const auto wf = run_with_r(r);
        const auto p = spice::estimate_period(wf, circuits::kVcoOutput, 2.5,
                                              1.5e-6, 4e-6);
        const double sw =
            spice::swing(wf, circuits::kVcoOutput, 2e-6, 4e-6);
        const char* verdict =
            sw < 0.5 ? "oscillation stops"
            : (p && pn && std::fabs(*p - *pn) / *pn < 0.05)
                ? "only slightly affected"
                : "visibly changed";
        if (p)
            std::printf("  %-10g %-12.0f %-10.2f %s\n", r, *p * 1e9, sw,
                        verdict);
        else
            std::printf("  %-10g %-12s %-10.2f %s\n", r, "-", sw, verdict);
    }
    std::printf("\n  severity classes (paper -> this repo):\n");
    std::printf("    slightly affected : 1 kOhm   -> ~1 MOhm\n");
    std::printf("    visibly changed   : 41/21 Ohm -> ~100k..10 kOhm\n");
    std::printf("    oscillation stops : 1 Ohm    -> <= ~3 kOhm\n\n");

    const auto dead = run_with_r(1.0);
    std::printf("  R = 1 Ohm waveform (oscillation stops after the first "
                "cycle):\n%s\n",
                spice::ascii_plot(dead, circuits::kVcoOutput, 76, 10)
                    .c_str());
}

void BM_SweepPoint(benchmark::State& state) {
    const double r = static_cast<double>(state.range(0));
    for (auto _ : state) benchmark::DoNotOptimize(run_with_r(r));
}
BENCHMARK(BM_SweepPoint)
    ->Arg(1000000)
    ->Arg(30000)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig6();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
