// Reproduces Fig. 1: "Analogue fault simulation from concept and schematic
// to layout.  The arrows width represents the size of the fault lists."
// -- the fault-list funnel: all schematic faults -> L2RFM -> GLRFM (LIFT),
// plus the section VI breakdown (bridging / line opens / stuck-opens).
// Benchmarks each fault-list generation step.

#include "circuits/vco.h"
#include "core/cat.h"
#include "layout/cellgen.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace catlift;

namespace {

netlist::Circuit device_netlist() {
    circuits::VcoOptions o;
    o.with_sources = false;
    return circuits::build_vco(o);
}

void print_funnel() {
    const netlist::Circuit sch = device_netlist();
    const layout::Layout lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());

    const lift::FaultList all = lift::all_schematic_faults(sch);
    const lift::FaultList l2 = lift::l2rfm_faults(sch);
    lift::LiftOptions lopt;
    lopt.net_blocks = circuits::vco_net_blocks();
    const lift::LiftResult glrfm = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);
    const lift::FaultList& fl = glrfm.faults;

    std::printf("== Fig. 1: fault-list funnel (arrow widths) ==\n\n");
    auto bar = [](std::size_t n) {
        std::string s(n / 2, '#');
        return s;
    };
    std::printf("  all faults (schematic) : %3zu  %s\n", all.size(),
                bar(all.size()).c_str());
    std::printf("    opens %zu + shorts %zu  (paper: 79 + 73 = 152)\n",
                all.opens(), all.shorts());
    std::printf("  L2RFM (pre-layout)     : %3zu  %s\n", l2.size(),
                bar(l2.size()).c_str());
    std::printf("  GLRFM / LIFT (layout)  : %3zu  %s\n", fl.size(),
                bar(fl.size()).c_str());
    std::printf("\n== section VI breakdown ==\n");
    std::printf("  %-34s %-12s %s\n", " ", "this repo", "paper");
    std::printf("  %-34s %-12zu %s\n", "extracted failures", fl.size(), "70");
    std::printf("  %-34s %-12zu %s\n", "bridging faults", fl.shorts(), "55");
    std::printf("  %-34s %-12zu %s\n", "line opens / split nodes",
                fl.count(lift::FaultKind::LineOpen) +
                    fl.count(lift::FaultKind::SplitNode),
                "8");
    std::printf("  %-34s %-12zu %s\n", "transistor stuck open",
                fl.count(lift::FaultKind::StuckOpen), "7");
    char red[16];
    std::snprintf(red, sizeof red, "%.0f%%",
                  100.0 * (1.0 - double(fl.size()) / double(all.size())));
    std::printf("  %-34s %-12s %s\n", "reduction vs schematic list", red,
                "53%");
    std::printf("\n  raw sites: %zu bridge, %zu line-span, %zu cut cluster\n",
                glrfm.stats.bridge_sites, glrfm.stats.open_sites,
                glrfm.stats.cut_sites);
    std::printf("  below keep-threshold: %zu faults (%.3g total "
                "probability)\n\n",
                glrfm.stats.dropped, glrfm.stats.dropped_probability);
}

void BM_AllSchematicFaults(benchmark::State& state) {
    const netlist::Circuit sch = device_netlist();
    for (auto _ : state)
        benchmark::DoNotOptimize(lift::all_schematic_faults(sch));
}
BENCHMARK(BM_AllSchematicFaults);

void BM_L2rfm(benchmark::State& state) {
    const netlist::Circuit sch = device_netlist();
    for (auto _ : state)
        benchmark::DoNotOptimize(lift::l2rfm_faults(sch));
}
BENCHMARK(BM_L2rfm);

void BM_LayoutSynthesis(benchmark::State& state) {
    const netlist::Circuit sch = device_netlist();
    for (auto _ : state)
        benchmark::DoNotOptimize(layout::generate_cell_layout(
            sch, layout::vco_cellgen_options()));
}
BENCHMARK(BM_LayoutSynthesis);

void BM_GlrfmExtraction(benchmark::State& state) {
    const netlist::Circuit sch = device_netlist();
    const layout::Layout lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    lift::LiftOptions lopt;
    lopt.net_blocks = circuits::vco_net_blocks();
    for (auto _ : state)
        benchmark::DoNotOptimize(lift::extract_faults(
            lo, layout::Technology::single_poly_double_metal(), lopt));
}
BENCHMARK(BM_GlrfmExtraction)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_funnel();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
