// Transient analysis tests: RC charging against the closed form, method
// comparison, ring oscillator, charge conservation.

#include "netlist/parser.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::netlist;
using namespace catlift::spice;

namespace {

Circuit rc_step(double r, double c) {
    Circuit ckt;
    ckt.title = "rc step";
    ckt.add_vsource("V1", "in", "0",
                    SourceSpec::make_pulse(0, 5, 0, 1e-9, 1e-9, 1, 2));
    ckt.add_resistor("R1", "in", "out", r);
    ckt.add_capacitor("C1", "out", "0", c);
    return ckt;
}

void add_inverter(Circuit& c, const std::string& tag, const std::string& in,
                  const std::string& out) {
    c.add_mosfet("MP" + tag, out, in, "vdd", "vdd", "pm", 20e-6, 2e-6);
    c.add_mosfet("MN" + tag, out, in, "0", "0", "nm", 10e-6, 2e-6);
}

void add_models(Circuit& c) {
    MosModel n;
    n.name = "nm";
    n.is_nmos = true;
    n.vto = 0.8;
    n.kp = 50e-6;
    n.lambda = 0.02;
    c.add_model(n);
    MosModel p;
    p.name = "pm";
    p.is_nmos = false;
    p.vto = -0.8;
    p.kp = 20e-6;
    p.lambda = 0.02;
    c.add_model(p);
}

} // namespace

TEST(Tran, RcChargingMatchesClosedForm) {
    // tau = 1k * 1n = 1us; simulate 5us.
    Circuit ckt = rc_step(1e3, 1e-9);
    SimOptions opt;
    opt.uic = true;
    opt.cmin = 0.0;
    Simulator sim(ckt, opt);
    TranSpec ts{1e-8, 5e-6, 0.0};
    auto wf = sim.tran(ts);
    for (double t : {0.5e-6, 1e-6, 2e-6, 4e-6}) {
        const double expect = 5.0 * (1.0 - std::exp(-t / 1e-6));
        EXPECT_NEAR(wf.at("out", t), expect, 0.03) << "t=" << t;
    }
}

TEST(Tran, BackwardEulerAlsoConverges) {
    Circuit ckt = rc_step(1e3, 1e-9);
    SimOptions opt;
    opt.uic = true;
    opt.method = Method::BackwardEuler;
    Simulator sim(ckt, opt);
    auto wf = sim.tran(TranSpec{1e-8, 3e-6, 0.0});
    const double expect = 5.0 * (1.0 - std::exp(-3.0));
    EXPECT_NEAR(wf.at("out", 3e-6), expect, 0.05);
}

TEST(Tran, TrapezoidalBeatsBackwardEulerOnAccuracy) {
    // With a coarse step, TRAP (O(h^2)) must land closer to the closed form
    // than BE (O(h)).
    const double t_obs = 1e-6;
    const double expect = 5.0 * (1.0 - std::exp(-1.0));
    auto run = [&](Method m) {
        Circuit ckt = rc_step(1e3, 1e-9);
        SimOptions opt;
        opt.uic = true;
        opt.cmin = 0.0;
        opt.method = m;
        Simulator sim(ckt, opt);
        auto wf = sim.tran(TranSpec{1e-7, 2e-6, 0.0});  // 10 pts per tau
        return std::fabs(wf.at("out", t_obs) - expect);
    };
    EXPECT_LT(run(Method::Trapezoidal), run(Method::BackwardEuler));
}

TEST(Tran, CapacitorInitialCondition) {
    Circuit ckt;
    ckt.add_resistor("R1", "out", "0", 1e3);
    ckt.add_capacitor("C1", "out", "0", 1e-9, /*ic=*/3.0);
    SimOptions opt;
    opt.uic = true;
    opt.cmin = 0.0;
    Simulator sim(ckt, opt);
    auto wf = sim.tran(TranSpec{1e-8, 2e-6, 0.0});
    // Discharge from 3V with tau=1us.
    EXPECT_NEAR(wf.at("out", 1e-6), 3.0 * std::exp(-1.0), 0.05);
}

TEST(Tran, SinSourceReproduced) {
    Circuit ckt;
    SourceSpec s;
    s.kind = SourceSpec::Kind::Sin;
    s.vo = 0;
    s.va = 2;
    s.freq = 1e6;
    ckt.add_vsource("V1", "a", "0", s);
    ckt.add_resistor("R1", "a", "0", 1e3);
    Simulator sim(ckt);
    auto wf = sim.tran(TranSpec{1e-8, 2e-6, 0.0});
    EXPECT_NEAR(wf.at("a", 0.25e-6), 2.0, 1e-3);
    EXPECT_NEAR(wf.at("a", 0.75e-6), -2.0, 1e-3);
}

TEST(Tran, InverterSwitchesWithPulse) {
    Circuit c;
    add_models(c);
    c.add_vsource("Vdd", "vdd", "0", SourceSpec::make_dc(5));
    c.add_vsource("Vin", "in", "0",
                  SourceSpec::make_pulse(0, 5, 100e-9, 10e-9, 10e-9, 400e-9,
                                         1e-6));
    add_inverter(c, "1", "in", "out");
    c.add_capacitor("CL", "out", "0", 50e-15);
    Simulator sim(c);
    auto wf = sim.tran(TranSpec{2e-9, 1e-6, 0.0});
    EXPECT_GT(wf.at("out", 50e-9), 4.5);   // input low -> out high
    EXPECT_LT(wf.at("out", 300e-9), 0.5);  // input high -> out low
    EXPECT_GT(wf.at("out", 700e-9), 4.5);  // input low again
}

TEST(Tran, RingOscillatorOscillates) {
    // 3-stage ring: the canonical regenerative-transient smoke test.
    Circuit c;
    add_models(c);
    c.add_vsource("Vdd", "vdd", "0",
                  SourceSpec::make_pulse(0, 5, 0, 20e-9, 20e-9, 1, 2));
    add_inverter(c, "1", "n1", "n2");
    add_inverter(c, "2", "n2", "n3");
    add_inverter(c, "3", "n3", "n1");
    c.add_capacitor("C1", "n1", "0", 20e-15);
    c.add_capacitor("C2", "n2", "0", 20e-15);
    c.add_capacitor("C3", "n3", "0", 20e-15);
    SimOptions opt;
    opt.uic = true;
    Simulator sim(c, opt);
    auto wf = sim.tran(TranSpec{1e-9, 2e-6, 0.0});
    // Must show multiple rail-to-rail transitions in the back half.
    auto edges = crossings(wf, "n1", 2.5, +1);
    int late_edges = 0;
    for (double t : edges)
        if (t > 1e-6) ++late_edges;
    EXPECT_GE(late_edges, 3) << "ring oscillator failed to oscillate";
    EXPECT_GT(swing(wf, "n1", 1e-6, 2e-6), 4.0);
}

TEST(Tran, FixedGridPointCount) {
    Circuit ckt = rc_step(1e3, 1e-9);
    SimOptions opt;
    opt.uic = true;
    Simulator sim(ckt, opt);
    // The paper's experiment: 400-step transient over 4us.
    auto wf = sim.tran(TranSpec{1e-8, 4e-6, 0.0});
    EXPECT_EQ(wf.points(), 401u);  // t=0 plus 400 steps
    EXPECT_DOUBLE_EQ(wf.time().front(), 0.0);
    EXPECT_NEAR(wf.time().back(), 4e-6, 1e-15);
}

TEST(Tran, OpenFaultNodeStaysFinite) {
    // A 100 MOhm "open" (the paper's resistor model) leaves a nearly
    // floating node: cmin+gmin must keep everything finite.
    Circuit ckt;
    ckt.add_vsource("V1", "in", "0", SourceSpec::make_dc(5));
    ckt.add_resistor("Ropen", "in", "out", 100e6);
    ckt.add_capacitor("C1", "out", "0", 1e-12);
    Simulator sim(ckt);
    auto wf = sim.tran(TranSpec{1e-8, 1e-6, 0.0});
    for (double v : wf.trace("out")) EXPECT_TRUE(std::isfinite(v));
}

TEST(Tran, RequiresTranCard) {
    Circuit ckt = rc_step(1e3, 1e-9);
    Simulator sim(ckt);
    EXPECT_THROW(sim.tran(), catlift::Error);
    ckt.tran = TranSpec{1e-8, 1e-6, 0.0};
    Simulator sim2(ckt);
    EXPECT_NO_THROW(sim2.tran());
}

TEST(Tran, BadSpecRejected) {
    Circuit ckt = rc_step(1e3, 1e-9);
    Simulator sim(ckt);
    EXPECT_THROW(sim.tran(TranSpec{0.0, 1e-6, 0.0}), catlift::Error);
    EXPECT_THROW(sim.tran(TranSpec{1e-8, 0.0, 0.0}), catlift::Error);
}
