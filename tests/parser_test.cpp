// SPICE deck parser + writer round-trip tests.

#include "netlist/parser.h"
#include "netlist/writer.h"

#include <gtest/gtest.h>

using namespace catlift::netlist;

TEST(Parser, MinimalRc) {
    const char* deck =
        "rc lowpass\n"
        "V1 in 0 DC 5\n"
        "R1 in out 1k\n"
        "C1 out 0 1n\n"
        ".tran 10n 4u\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    EXPECT_EQ(c.title, "rc lowpass");
    EXPECT_EQ(c.devices.size(), 3u);
    EXPECT_DOUBLE_EQ(c.device("R1").value, 1000.0);
    EXPECT_DOUBLE_EQ(c.device("C1").value, 1e-9);
    ASSERT_TRUE(c.tran.has_value());
    EXPECT_DOUBLE_EQ(c.tran->tstep, 1e-8);
    EXPECT_DOUBLE_EQ(c.tran->tstop, 4e-6);
}

TEST(Parser, CommentsAndContinuations) {
    const char* deck =
        "title\n"
        "* a comment card\n"
        "R1 a b\n"
        "+ 2k   ; in-line comment\n"
        "C1 a 0 1p $ another\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    EXPECT_DOUBLE_EQ(c.device("R1").value, 2000.0);
    EXPECT_DOUBLE_EQ(c.device("C1").value, 1e-12);
}

TEST(Parser, PulseSource) {
    const char* deck =
        "t\n"
        "Vdd 1 0 PULSE(0 5 0 50n 50n 1 2)\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    const auto& s = c.device("Vdd").source;
    EXPECT_EQ(s.kind, SourceSpec::Kind::Pulse);
    EXPECT_DOUBLE_EQ(s.v2, 5.0);
    EXPECT_DOUBLE_EQ(s.tr, 50e-9);
}

TEST(Parser, PwlAndSinSources) {
    const char* deck =
        "t\n"
        "V1 a 0 PWL(0 0 1u 5 2u 0)\n"
        "I1 b 0 SIN(0 1m 1meg)\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    EXPECT_EQ(c.device("V1").source.pwl.size(), 3u);
    EXPECT_EQ(c.device("I1").source.kind, SourceSpec::Kind::Sin);
    EXPECT_DOUBLE_EQ(c.device("I1").source.va, 1e-3);
    EXPECT_DOUBLE_EQ(c.device("I1").source.freq, 1e6);
}

TEST(Parser, MosfetAndModel) {
    const char* deck =
        "inv\n"
        "M1 out in 0 0 nmos1 W=10u L=2u\n"
        "M2 out in vdd vdd pmos1 W=20u L=2u\n"
        ".model nmos1 NMOS (VTO=0.8 KP=50u LAMBDA=0.02)\n"
        ".model pmos1 PMOS (VTO=-0.8 KP=20u LAMBDA=0.02)\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    const Device& m1 = c.device("M1");
    EXPECT_EQ(m1.kind, DeviceKind::Mosfet);
    EXPECT_DOUBLE_EQ(m1.w, 10e-6);
    EXPECT_DOUBLE_EQ(m1.l, 2e-6);
    EXPECT_TRUE(c.models.at("nmos1").is_nmos);
    EXPECT_FALSE(c.models.at("pmos1").is_nmos);
    EXPECT_DOUBLE_EQ(c.models.at("pmos1").vto, -0.8);
}

TEST(Parser, GroundAliases) {
    const char* deck =
        "t\n"
        "R1 a GND 1k\n"
        "R2 a gnd 2k\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    EXPECT_EQ(c.device("R1").nodes[1], "0");
    EXPECT_EQ(c.device("R2").nodes[1], "0");
}

TEST(Parser, MissingModelIsError) {
    const char* deck =
        "t\n"
        "M1 d g s 0 nosuch W=1u L=1u\n"
        ".end\n";
    EXPECT_THROW(parse_spice(deck), catlift::Error);
}

TEST(Parser, ErrorsCarryLineNumbers) {
    const char* deck =
        "t\n"
        "R1 a b 1k\n"
        "Q1 c b e bjt\n"
        ".end\n";
    try {
        parse_spice(deck);
        FAIL() << "expected parse error";
    } catch (const catlift::Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Parser, BadCards) {
    EXPECT_THROW(parse_spice("t\nR1 a b\n.end\n"), catlift::Error);
    EXPECT_THROW(parse_spice("t\nC1 a 0 -1p\n.end\n"), catlift::Error);
    EXPECT_THROW(parse_spice("t\n.bogus\n.end\n"), catlift::Error);
    EXPECT_THROW(parse_spice("t\nV1 a 0 PWL(1u 5 0 0)\n.end\n"),
                 catlift::Error);
}

TEST(Parser, AcCard) {
    const char* deck =
        "t\n"
        "V1 in 0 DC 0 AC 1\n"
        "R1 in out 1k\n"
        "C1 out 0 1n\n"
        ".ac dec 20 1k 100meg\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    ASSERT_TRUE(c.ac.has_value());
    EXPECT_EQ(c.ac->points_per_decade, 20);
    EXPECT_DOUBLE_EQ(c.ac->fstart, 1e3);
    EXPECT_DOUBLE_EQ(c.ac->fstop, 1e8);
    // Round-trips through the writer.
    Circuit back = parse_spice(write_spice(c));
    ASSERT_TRUE(back.ac.has_value());
    EXPECT_EQ(back.ac->points_per_decade, 20);
    EXPECT_THROW(parse_spice("t\n.ac lin 5 1 10\n.end\n"), catlift::Error);
    EXPECT_THROW(parse_spice("t\n.ac dec 5 10k 1k\n.end\n"),
                 catlift::Error);
}

TEST(Writer, RoundTripSemantics) {
    const char* deck =
        "vco deck\n"
        "Vdd 1 0 PULSE(0 5 0 50n 50n 1 2)\n"
        "Vc 2 0 DC 2.5\n"
        "M1 3 2 4 0 nm W=10u L=2u\n"
        "M2 4 4 0 0 nm W=10u L=2u\n"
        "C1 6 0 2p IC=0\n"
        "R1 5 6 100meg\n"
        "I1 7 0 DC 1u\n"
        ".model nm NMOS (VTO=0.8 KP=50u LAMBDA=0.02 TOX=20n)\n"
        ".tran 10n 4u\n"
        ".end\n";
    Circuit a = parse_spice(deck);
    const std::string text = write_spice(a);
    Circuit b = parse_spice(text);

    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        const Device& da = a.devices[i];
        const Device& db = b.device(da.name);
        EXPECT_EQ(da.kind, db.kind) << da.name;
        EXPECT_EQ(da.nodes, db.nodes) << da.name;
        EXPECT_NEAR(da.value, db.value, 1e-18) << da.name;
        EXPECT_EQ(da.model, db.model) << da.name;
        EXPECT_NEAR(da.w, db.w, 1e-12);
        EXPECT_NEAR(da.l, db.l, 1e-12);
    }
    ASSERT_TRUE(b.tran.has_value());
    EXPECT_DOUBLE_EQ(b.tran->tstop, 4e-6);
    EXPECT_EQ(b.models.count("nm"), 1u);
    // Source waveforms survive.
    EXPECT_DOUBLE_EQ(b.device("Vdd").source.value_at(25e-9), 2.5);
}

TEST(Writer, DoubleRoundTripIsStable) {
    const char* deck =
        "t\n"
        "V1 a 0 SIN(0 1 1meg 0 0)\n"
        "R1 a b 4.7k\n"
        "C1 b 0 10p\n"
        ".tran 1n 1u\n"
        ".end\n";
    const std::string once = write_spice(parse_spice(deck));
    const std::string twice = write_spice(parse_spice(once));
    EXPECT_EQ(once, twice);
}
