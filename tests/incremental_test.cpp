// Incremental cross-revision campaign engine: fault-list diff edge cases,
// the deterministic layout-revision perturber, carry-over safety (manifest
// guard) and the headline guarantee -- incremental verdicts on a revision
// are identical to a cold full campaign on that revision.

#include "anafault/incremental.h"
#include "batch/result_store.h"
#include "core/cat.h"
#include "layout/revise.h"
#include "lift/extract_faults.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

using namespace catlift;
using namespace catlift::anafault;
using netlist::Circuit;
using netlist::SourceSpec;
using netlist::TranSpec;

namespace {

lift::Fault make_short(int id, const std::string& a, const std::string& b,
                       double prob, const std::string& mech = "m1_short") {
    lift::Fault f;
    f.id = id;
    f.kind = lift::FaultKind::LocalShort;
    f.mechanism = mech;
    f.probability = prob;
    f.net_a = a;
    f.net_b = b;
    return f;
}

lift::Fault make_term_open(int id, const std::string& dev, int term,
                           const std::string& net, double prob) {
    lift::Fault f;
    f.id = id;
    f.kind = lift::FaultKind::LineOpen;
    f.mechanism = "cut";
    f.probability = prob;
    f.net = net;
    f.group_b = {lift::TerminalRef{dev, term}};
    return f;
}

/// Same divider fixture as batch_test: cheap, clearly detectable faults.
Circuit divider_fixture() {
    Circuit c;
    c.title = "divider";
    c.add_vsource("V1", "in", "0",
                  SourceSpec::make_pulse(0, 5, 0, 1e-9, 1e-9, 1e-6, 2e-6));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_resistor("R2", "out", "0", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-10);
    c.tran = TranSpec{1e-8, 4e-6, 0.0};
    return c;
}

lift::FaultList divider_baseline() {
    lift::FaultList fl;
    fl.circuit = "divider";
    fl.faults.push_back(make_short(1, "out", "0", 4e-3));
    fl.faults.push_back(make_short(2, "in", "out", 3e-3));
    fl.faults.push_back(make_short(3, "in", "0", 2e-3));
    fl.faults.push_back(make_term_open(4, "R2", 0, "out", 1.5e-3));
    fl.faults.push_back(make_term_open(5, "C1", 1, "0", 1e-3));
    fl.faults.push_back(make_term_open(6, "R1", 0, "in", 0.5e-3));
    return fl;
}

/// The revision exercises all four diff classes against divider_baseline:
/// #6 removed, #2's probability moved 50% (resimulated), #1's moved 2.5%
/// (carried), #7 is new (resimulated), #3/#4/#5 untouched (carried).
lift::FaultList divider_revision() {
    lift::FaultList fl;
    fl.circuit = "divider";
    fl.faults.push_back(make_short(1, "out", "0", 4.1e-3));
    fl.faults.push_back(make_short(2, "in", "out", 4.5e-3));
    fl.faults.push_back(make_short(3, "in", "0", 2e-3));
    fl.faults.push_back(make_term_open(4, "R2", 0, "out", 1.5e-3));
    fl.faults.push_back(make_term_open(5, "C1", 1, "0", 1e-3));
    fl.faults.push_back(make_term_open(7, "R1", 1, "out", 0.8e-3));
    return fl;
}

CampaignOptions divider_options() {
    CampaignOptions opt;
    opt.detection.observed = {"out"};
    return opt;
}

std::string temp_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("catlift_incr_" + tag + ".store"))
        .string();
}

void expect_same_verdicts(const CampaignResult& a, const CampaignResult& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        SCOPED_TRACE("fault index " + std::to_string(i));
        EXPECT_EQ(a.results[i].fault_id, b.results[i].fault_id);
        EXPECT_EQ(a.results[i].description, b.results[i].description);
        EXPECT_EQ(a.results[i].probability, b.results[i].probability);
        EXPECT_EQ(a.results[i].simulated, b.results[i].simulated);
        ASSERT_EQ(a.results[i].detect_time.has_value(),
                  b.results[i].detect_time.has_value());
        if (a.results[i].detect_time) {
            // Byte-identical verdicts, not merely close ones.
            EXPECT_EQ(*a.results[i].detect_time, *b.results[i].detect_time);
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// diff_faultlists edge cases -- the incremental engine's foundation.

TEST(FaultListDiff, EmptyLists) {
    const lift::FaultList none;
    const lift::FaultList some = divider_baseline();

    const auto both_empty = lift::diff_faultlists(none, none);
    EXPECT_TRUE(both_empty.only_a.empty());
    EXPECT_TRUE(both_empty.only_b.empty());
    EXPECT_TRUE(both_empty.probability_changed.empty());
    EXPECT_TRUE(both_empty.carried.empty());

    const auto a_empty = lift::diff_faultlists(none, some);
    EXPECT_TRUE(a_empty.only_a.empty());
    EXPECT_EQ(a_empty.only_b.size(), some.size());
    EXPECT_TRUE(a_empty.carried.empty());

    const auto b_empty = lift::diff_faultlists(some, none);
    EXPECT_EQ(b_empty.only_a.size(), some.size());
    EXPECT_TRUE(b_empty.only_b.empty());
    EXPECT_TRUE(b_empty.carried.empty());
}

TEST(FaultListDiff, RelTolBoundaryIsInclusive) {
    // A move of *exactly* rel_tol is still "carried": the comparison is
    // strictly-greater, pinned here because the incremental engine's
    // carry/resimulate split rides on it.  Binary-exact values (tol 2^-4,
    // probabilities 1 and 1-2^-4) so "exactly at the boundary" is not at
    // the mercy of decimal rounding.
    lift::FaultList a, b;
    a.faults.push_back(make_short(1, "x", "y", 1.0));
    b.faults.push_back(make_short(1, "x", "y", 0.9375));
    const auto at_tol = lift::diff_faultlists(a, b, 0.0625);
    EXPECT_TRUE(at_tol.probability_changed.empty());
    ASSERT_EQ(at_tol.carried.size(), 1u);
    EXPECT_EQ(at_tol.carried[0].first.probability, 1.0);
    EXPECT_EQ(at_tol.carried[0].second.probability, 0.9375);

    b.faults[0].probability = 0.9374;  // just beyond
    const auto beyond = lift::diff_faultlists(a, b, 0.0625);
    ASSERT_EQ(beyond.probability_changed.size(), 1u);
    EXPECT_TRUE(beyond.carried.empty());

    // The default 5% band, clear of the representability boundary.
    b.faults[0].probability = 0.952;
    EXPECT_EQ(lift::diff_faultlists(a, b).carried.size(), 1u);
    b.faults[0].probability = 0.948;
    EXPECT_EQ(lift::diff_faultlists(a, b).probability_changed.size(), 1u);
}

TEST(FaultListDiff, SignatureIgnoresMechanismIdAndNetOrder) {
    lift::FaultList a, b;
    a.faults.push_back(make_short(1, "n5", "n6", 1e-3, "metal1_short"));
    b.faults.push_back(make_short(9, "n6", "n5", 1e-3, "poly_short"));
    const auto d = lift::diff_faultlists(a, b);
    EXPECT_TRUE(d.only_a.empty());
    EXPECT_TRUE(d.only_b.empty());
    ASSERT_EQ(d.carried.size(), 1u);
}

TEST(FaultListDiff, DuplicateSignaturesWithinOneListLastWins) {
    // Two same-signature faults in b: every matching a-fault pairs with
    // the *last* b occurrence (deterministic; extracted lists never
    // contain duplicates, but hand-written ones may).
    lift::FaultList a, b;
    a.faults.push_back(make_short(1, "x", "y", 1.0));
    b.faults.push_back(make_short(1, "x", "y", 0.2, "first"));
    b.faults.push_back(make_short(2, "y", "x", 1.0, "last"));
    const auto d = lift::diff_faultlists(a, b);
    EXPECT_TRUE(d.only_a.empty());
    EXPECT_TRUE(d.only_b.empty());  // both b faults share the matched key
    ASSERT_EQ(d.carried.size(), 1u);
    EXPECT_EQ(d.carried[0].second.mechanism, "last");

    // Duplicates in a: each a occurrence is classified independently.
    lift::FaultList a2;
    a2.faults.push_back(make_short(1, "x", "y", 1.0, "one"));
    a2.faults.push_back(make_short(2, "x", "y", 1.0, "two"));
    const auto d2 = lift::diff_faultlists(a2, b);
    EXPECT_EQ(d2.carried.size(), 2u);
}

// ---------------------------------------------------------------------------
// Layout-revision perturber.

TEST(ReviseLayout, DeterministicAndShapePreserving) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const layout::RevisionSpec spec = layout::vco_revision_spec();
    const layout::Layout r1 = layout::revise_layout(e.layout, spec);
    const layout::Layout r2 = layout::revise_layout(e.layout, spec);
    EXPECT_EQ(layout::write_layout(r1), layout::write_layout(r2));
    EXPECT_NE(layout::write_layout(r1), layout::write_layout(e.layout));
    // make_redundant adds one cut, make_single removes one.
    EXPECT_EQ(r1.size(), e.layout.size());
}

TEST(ReviseLayout, RejectsUnknownTargets) {
    const core::VcoExperiment e = core::make_vco_experiment();
    layout::RevisionSpec bad_net;
    bad_net.widen_tracks = {{"no_such_net", 1000}};
    EXPECT_THROW(layout::revise_layout(e.layout, bad_net), Error);

    layout::RevisionSpec bad_term;
    bad_term.shift_contacts = {{"M99:d", 300}};
    EXPECT_THROW(layout::revise_layout(e.layout, bad_term), Error);

    // make_redundant needs a single cut (M5:d already has a pair);
    // make_single needs a pair (M11:g has a single cut).
    layout::RevisionSpec already_pair;
    already_pair.make_redundant = {"M5:d"};
    EXPECT_THROW(layout::revise_layout(e.layout, already_pair), Error);
    layout::RevisionSpec already_single;
    already_single.make_single = {"M11:g"};
    EXPECT_THROW(layout::revise_layout(e.layout, already_single), Error);
}

TEST(ReviseLayout, VcoRevisionProducesAllFourDiffClasses) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto base =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    const auto rev = lift::extract_faults(
        layout::revise_layout(e.layout, layout::vco_revision_spec()),
        e.config.tech, e.config.lift);
    const auto d = lift::diff_faultlists(base.faults, rev.faults);
    EXPECT_GE(d.only_a.size(), 1u);                // removed stuck-open
    EXPECT_GE(d.only_b.size(), 1u);                // added stuck-open
    EXPECT_GE(d.probability_changed.size(), 1u);   // widened-track bridges
    // The revision is a perturbation, not a redesign: most faults carry.
    EXPECT_GE(d.carried.size() * 2, rev.faults.size());
}

// ---------------------------------------------------------------------------
// Incremental engine on the divider fixture.

TEST(Incremental, CarriesUnchangedAndResimulatesRemainder) {
    const Circuit c = divider_fixture();
    const auto base = divider_baseline();
    const auto rev = divider_revision();
    const std::string bpath = temp_path("div_base");
    std::filesystem::remove(bpath);

    CampaignOptions copt = divider_options();
    copt.result_store = bpath;
    const auto base_res = run_campaign(c, base, copt);
    ASSERT_EQ(base_res.results.size(), base.size());

    IncrementalOptions iopt;
    iopt.campaign = divider_options();
    iopt.baseline_store = bpath;
    const auto inc = run_incremental_campaign(c, base, rev, iopt);

    EXPECT_TRUE(inc.inc.baseline_manifest_matched);
    EXPECT_EQ(inc.inc.carried, 4u);        // #1 (2.5% move), #3, #4, #5
    EXPECT_EQ(inc.inc.resimulated, 2u);    // #2 (50% move), #7 (new)
    EXPECT_EQ(inc.inc.added, 1u);
    EXPECT_EQ(inc.inc.removed, 1u);
    EXPECT_EQ(inc.inc.probability_changed, 1u);
    // Only the remainder reached the kernel.
    EXPECT_EQ(inc.campaign.batch.scheduled, 2u);

    // The merged result is byte-identical (in verdicts) to a cold full
    // campaign on the revision.
    const auto cold = run_campaign(c, rev, divider_options());
    expect_same_verdicts(cold, inc.campaign);

    // Provenance: carried flags exactly on the carried slots, and the
    // carried identity fields are the *revision's*.
    for (const auto& r : inc.campaign.results) {
        const bool expect_carried =
            r.fault_id == 1 || r.fault_id == 3 || r.fault_id == 4 ||
            r.fault_id == 5;
        EXPECT_EQ(r.carried, expect_carried) << "fault " << r.fault_id;
    }
    EXPECT_EQ(inc.campaign.results[0].probability, 4.1e-3);

    std::filesystem::remove(bpath);
}

TEST(Incremental, KnobChangeBlocksCarrying) {
    const Circuit c = divider_fixture();
    const auto base = divider_baseline();
    const auto rev = divider_revision();
    const std::string bpath = temp_path("div_knob");
    std::filesystem::remove(bpath);

    CampaignOptions copt = divider_options();
    copt.result_store = bpath;
    run_campaign(c, base, copt);

    // A solver knob differing from the one the baseline store was written
    // under changes waveforms -> nothing may carry.
    IncrementalOptions iopt;
    iopt.campaign = divider_options();
    iopt.campaign.sim.reltol = 1e-4;
    iopt.baseline_store = bpath;
    const auto inc = run_incremental_campaign(c, base, rev, iopt);
    EXPECT_FALSE(inc.inc.baseline_manifest_matched);
    EXPECT_FALSE(inc.inc.carry_block_reason.empty());
    EXPECT_EQ(inc.inc.carried, 0u);
    EXPECT_EQ(inc.inc.resimulated, rev.size());

    // Verdicts still equal a cold run under the *new* knobs.
    CampaignOptions cold_opt = divider_options();
    cold_opt.sim.reltol = 1e-4;
    const auto cold = run_campaign(c, rev, cold_opt);
    expect_same_verdicts(cold, inc.campaign);
    std::filesystem::remove(bpath);
}

TEST(Incremental, MissingBaselineStoreResimulatesEverything) {
    const Circuit c = divider_fixture();
    const auto base = divider_baseline();
    const auto rev = divider_revision();

    IncrementalOptions iopt;
    iopt.campaign = divider_options();
    iopt.baseline_store = temp_path("does_not_exist");
    std::filesystem::remove(iopt.baseline_store);
    const auto inc = run_incremental_campaign(c, base, rev, iopt);
    EXPECT_EQ(inc.inc.carried, 0u);
    EXPECT_EQ(inc.inc.resimulated, rev.size());
    const auto cold = run_campaign(c, rev, divider_options());
    expect_same_verdicts(cold, inc.campaign);
}

TEST(Incremental, MergedStoreResumesAndSeedsTheNextRevision) {
    const Circuit c = divider_fixture();
    const auto base = divider_baseline();
    const auto rev = divider_revision();
    const std::string bpath = temp_path("div_chain_base");
    const std::string mpath = temp_path("div_chain_merged");
    std::filesystem::remove(bpath);
    std::filesystem::remove(mpath);

    CampaignOptions copt = divider_options();
    copt.result_store = bpath;
    run_campaign(c, base, copt);

    IncrementalOptions iopt;
    iopt.campaign = divider_options();
    iopt.campaign.result_store = mpath;
    iopt.baseline_store = bpath;
    const auto inc = run_incremental_campaign(c, base, rev, iopt);
    EXPECT_EQ(inc.campaign.batch.scheduled, 2u);

    // The merged store holds the *full* revision campaign: a warm re-run
    // resumes every fault and schedules no kernel work.
    IncrementalOptions warm = iopt;
    warm.campaign.resume = true;
    const auto rerun = run_incremental_campaign(c, base, rev, warm);
    EXPECT_EQ(rerun.campaign.batch.scheduled, 0u);
    expect_same_verdicts(inc.campaign, rerun.campaign);

    // And it serves as the baseline of the next revision: rev -> rev2
    // drops fault #7, everything else carries straight from the merge.
    lift::FaultList rev2 = rev;
    rev2.faults.pop_back();
    IncrementalOptions next;
    next.campaign = divider_options();
    next.baseline_store = mpath;
    const auto inc2 = run_incremental_campaign(c, rev, rev2, next);
    EXPECT_TRUE(inc2.inc.baseline_manifest_matched);
    EXPECT_EQ(inc2.inc.carried, rev2.size());
    EXPECT_EQ(inc2.inc.resimulated, 0u);
    EXPECT_EQ(inc2.inc.removed, 1u);
    const auto cold2 = run_campaign(c, rev2, divider_options());
    expect_same_verdicts(cold2, inc2.campaign);

    std::filesystem::remove(bpath);
    std::filesystem::remove(mpath);
}

TEST(Incremental, CrashedMergedStoreLosesAtMostOneRecord) {
    const Circuit c = divider_fixture();
    const auto base = divider_baseline();
    const auto rev = divider_revision();
    const std::string bpath = temp_path("div_crash_base");
    const std::string mpath = temp_path("div_crash_merged");
    std::filesystem::remove(bpath);
    std::filesystem::remove(mpath);

    CampaignOptions copt = divider_options();
    copt.result_store = bpath;
    run_campaign(c, base, copt);

    IncrementalOptions iopt;
    iopt.campaign = divider_options();
    iopt.campaign.result_store = mpath;
    iopt.baseline_store = bpath;
    const auto inc = run_incremental_campaign(c, base, rev, iopt);

    // Tear the merged log mid-record, as a kill -9 would.
    std::filesystem::resize_file(mpath,
                                 std::filesystem::file_size(mpath) - 5);
    IncrementalOptions resume = iopt;
    resume.campaign.resume = true;
    const auto rerun = run_incremental_campaign(c, base, rev, resume);
    expect_same_verdicts(inc.campaign, rerun.campaign);
    // At most the torn record's fault was re-simulated.
    EXPECT_LE(rerun.campaign.batch.scheduled, 1u);

    std::filesystem::remove(bpath);
    std::filesystem::remove(mpath);
}

TEST(Incremental, ResumeWithoutMergedStoreIsRejected) {
    const Circuit c = divider_fixture();
    IncrementalOptions iopt;
    iopt.campaign = divider_options();
    iopt.campaign.resume = true;  // no result_store path
    EXPECT_THROW(run_incremental_campaign(c, divider_baseline(),
                                          divider_revision(), iopt),
                 Error);
}

// ---------------------------------------------------------------------------
// Acceptance: the VCO revision carries at least half the faults and the
// merged verdicts are identical to a cold full campaign on the revision.

TEST(Incremental, VcoRevisionCarriesHalfAndMatchesColdRun) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto base =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    const auto rev = lift::extract_faults(
        layout::revise_layout(e.layout, layout::vco_revision_spec()),
        e.config.tech, e.config.lift);

    const std::string bpath = temp_path("vco_base");
    const std::string mpath = temp_path("vco_merged");
    std::filesystem::remove(bpath);
    std::filesystem::remove(mpath);
    CampaignOptions copt = e.config.campaign;
    copt.result_store = bpath;
    run_campaign(e.sim_circuit, base.faults, copt);

    IncrementalOptions iopt;
    iopt.campaign = e.config.campaign;
    iopt.campaign.result_store = mpath;
    iopt.baseline_store = bpath;
    const auto inc =
        run_incremental_campaign(e.sim_circuit, base.faults, rev.faults, iopt);

    EXPECT_TRUE(inc.inc.baseline_manifest_matched);
    EXPECT_GE(inc.inc.carried * 2, rev.faults.size());
    EXPECT_EQ(inc.inc.carried + inc.inc.resimulated, rev.faults.size());
    EXPECT_EQ(inc.campaign.batch.scheduled, inc.inc.resimulated);

    const auto cold = run_campaign(e.sim_circuit, rev.faults,
                                   e.config.campaign);
    expect_same_verdicts(cold, inc.campaign);

    // The on-disk merged store holds every revision fault's verdict,
    // identical to the cold run's, under the revision campaign manifest.
    const auto snap = batch::load_store(mpath);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->manifest, campaign_manifest(e.sim_circuit, rev.faults,
                                                e.config.campaign));
    ASSERT_EQ(snap->records.size(), rev.faults.size());
    std::map<int, const batch::FaultSimResult*> by_id;
    for (const auto& r : snap->records) by_id.emplace(r.fault_id, &r);
    for (const auto& c : cold.results) {
        const auto it = by_id.find(c.fault_id);
        ASSERT_NE(it, by_id.end()) << "fault " << c.fault_id;
        EXPECT_EQ(it->second->detect_time, c.detect_time);
        EXPECT_EQ(it->second->simulated, c.simulated);
    }
    std::filesystem::remove(bpath);
    std::filesystem::remove(mpath);
}
