// Circuit model: builders, invariants, transformations used by AnaFAULT.

#include "netlist/netlist.h"

#include <gtest/gtest.h>

using namespace catlift::netlist;

namespace {

Circuit simple_rc() {
    Circuit c;
    c.title = "rc";
    c.add_vsource("V1", "in", "0", SourceSpec::make_dc(5.0));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-9);
    return c;
}

} // namespace

TEST(Netlist, CanonNode) {
    EXPECT_EQ(canon_node("GND"), "0");
    EXPECT_EQ(canon_node("gnd"), "0");
    EXPECT_EQ(canon_node("0"), "0");
    EXPECT_EQ(canon_node("OUT"), "out");
}

TEST(Netlist, AddAndQuery) {
    Circuit c = simple_rc();
    EXPECT_EQ(c.devices.size(), 3u);
    EXPECT_TRUE(c.has_device("R1"));
    EXPECT_EQ(c.device("R1").value, 1e3);
    EXPECT_EQ(c.count(DeviceKind::Resistor), 1u);
    const auto nodes = c.node_names();
    EXPECT_EQ(nodes.size(), 3u);  // 0, in, out
}

TEST(Netlist, DuplicateDeviceRejected) {
    Circuit c = simple_rc();
    EXPECT_THROW(c.add_resistor("R1", "a", "b", 1.0), catlift::Error);
}

TEST(Netlist, NonPositiveValuesRejected) {
    Circuit c;
    EXPECT_THROW(c.add_resistor("R1", "a", "b", 0.0), catlift::Error);
    EXPECT_THROW(c.add_resistor("R2", "a", "b", -5.0), catlift::Error);
    EXPECT_THROW(c.add_capacitor("C1", "a", "b", 0.0), catlift::Error);
}

TEST(Netlist, MosfetNeedsModelAtValidate) {
    Circuit c;
    c.add_mosfet("M1", "d", "g", "s", "0", "nm", 10e-6, 2e-6);
    EXPECT_THROW(c.validate(), catlift::Error);
    MosModel m;
    m.name = "nm";
    c.add_model(m);
    EXPECT_NO_THROW(c.validate());
    EXPECT_TRUE(c.model_of(c.device("M1")).is_nmos);
}

TEST(Netlist, RenameNodeGlobal) {
    Circuit c = simple_rc();
    c.rename_node("out", "merged");
    EXPECT_EQ(c.device("R1").nodes[1], "merged");
    EXPECT_EQ(c.device("C1").nodes[0], "merged");
}

TEST(Netlist, RenameNodeOnSelectedTerminals) {
    Circuit c = simple_rc();
    // Split node "out": move only the capacitor terminal to out_b.
    c.rename_node_on({{"C1", 0}}, "out_b");
    EXPECT_EQ(c.device("R1").nodes[1], "out");
    EXPECT_EQ(c.device("C1").nodes[0], "out_b");
}

TEST(Netlist, RemoveDevice) {
    Circuit c = simple_rc();
    c.remove_device("C1");
    EXPECT_FALSE(c.has_device("C1"));
    EXPECT_THROW(c.remove_device("C1"), catlift::Error);
}

TEST(Netlist, FreshNames) {
    Circuit c = simple_rc();
    const std::string n = c.fresh_node("out");
    EXPECT_EQ(n, "out1");
    const std::string d = c.fresh_device("R");
    EXPECT_EQ(d, "R2");
}

TEST(SourceSpecTest, DcValue) {
    EXPECT_DOUBLE_EQ(SourceSpec::make_dc(3.0).dc_value(), 3.0);
    auto p = SourceSpec::make_pulse(0, 5, 0, 50e-9, 50e-9, 1, 2);
    EXPECT_DOUBLE_EQ(p.dc_value(), 0.0);
}

TEST(SourceSpecTest, PulseShape) {
    // PULSE(0 5 10n 10n 10n 100n 200n)
    auto p = SourceSpec::make_pulse(0, 5, 10e-9, 10e-9, 10e-9, 100e-9, 200e-9);
    EXPECT_DOUBLE_EQ(p.value_at(0.0), 0.0);            // before delay
    EXPECT_DOUBLE_EQ(p.value_at(15e-9), 2.5);          // mid rise
    EXPECT_DOUBLE_EQ(p.value_at(50e-9), 5.0);          // plateau
    EXPECT_NEAR(p.value_at(125e-9), 2.5, 1e-9);        // mid fall
    EXPECT_DOUBLE_EQ(p.value_at(180e-9), 0.0);         // low
    EXPECT_NEAR(p.value_at(215e-9), 2.5, 1e-9);        // periodic repeat
}

TEST(SourceSpecTest, PwlInterpolation) {
    SourceSpec s;
    s.kind = SourceSpec::Kind::Pwl;
    s.pwl = {{0.0, 0.0}, {1e-6, 2.0}, {3e-6, 2.0}};
    EXPECT_DOUBLE_EQ(s.value_at(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(s.value_at(0.5e-6), 1.0);
    EXPECT_DOUBLE_EQ(s.value_at(2e-6), 2.0);
    EXPECT_DOUBLE_EQ(s.value_at(9e-6), 2.0);
}

TEST(SourceSpecTest, SinShape) {
    SourceSpec s;
    s.kind = SourceSpec::Kind::Sin;
    s.vo = 1.0;
    s.va = 2.0;
    s.freq = 1e6;
    EXPECT_DOUBLE_EQ(s.value_at(0.0), 1.0);
    EXPECT_NEAR(s.value_at(0.25e-6), 3.0, 1e-9);   // peak
    EXPECT_NEAR(s.value_at(0.75e-6), -1.0, 1e-9);  // trough
}

TEST(MosModelTest, CoxFromTox) {
    MosModel m;
    m.tox = 20e-9;
    // eps_ox / tox = 3.9*8.854e-12/20e-9 ~ 1.73e-3 F/m^2
    EXPECT_NEAR(m.cox_per_area(), 1.726e-3, 1e-5);
    m.tox = 0;
    EXPECT_THROW(m.cox_per_area(), catlift::Error);
}
