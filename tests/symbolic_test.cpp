// Campaign-shared symbolic kernel tests: verdict identity of the shared
// symbolic cache (exact on the well-behaved OTA campaign, robust-margin on
// the autonomous VCO -- see tests/kernel_test.cpp's header for why the
// VCO's margin-rider faults flip under ANY pivot-order change), the
// >= 90% cache hit-rate acceptance bar, the per-device bypass (verdict
// identity on OTA, bitwise-neutral replay at the campaign default
// device_bypass_tol = 0), ordering patching for injected unknowns,
// per-analysis SimStats windows, and the AC/DC campaign result stores +
// incremental cross-revision runners.

#include "anafault/campaign.h"
#include "anafault/incremental.h"
#include "circuits/ota.h"
#include "circuits/vco.h"
#include "core/cat.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

using namespace catlift;
using namespace catlift::circuits;
using spice::SimOptions;
using spice::Simulator;

namespace {

constexpr std::size_t kForceSparse = 0;

std::set<int> detected_ids(const anafault::CampaignResult& r) {
    std::set<int> ids;
    for (const auto& f : r.results)
        if (f.detect_time) ids.insert(f.fault_id);
    return ids;
}

std::set<int> detected_ids(const anafault::AcCampaignResult& r) {
    std::set<int> ids;
    for (const auto& f : r.results)
        if (f.detected) ids.insert(f.fault_id);
    return ids;
}

std::set<int> detected_ids(const anafault::DcScreenResult& r) {
    std::set<int> ids;
    for (const auto& f : r.results)
        if (f.detected) ids.insert(f.fault_id);
    return ids;
}

struct OtaCampaignFixture {
    netlist::Circuit ckt;
    lift::FaultList faults;
    anafault::CampaignOptions opt;
};

OtaCampaignFixture ota_fixture() {
    OtaOptions o;
    o.with_sources = false;
    const netlist::Circuit dev = build_ota(o);
    const layout::Layout lo = layout::generate_cell_layout(dev);
    lift::LiftOptions lopt;
    lopt.net_blocks = ota_net_blocks();
    const auto lift_res = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);
    OtaCampaignFixture f;
    f.ckt = build_ota();
    f.faults = lift_res.faults;
    f.opt.detection.observed = {kOtaOutput};
    f.opt.detection.v_tol = 0.4;
    return f;
}

std::string tmp_store(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

// RC lowpass with an AC-active source: the AC campaign fixture.
netlist::Circuit rc_lowpass() {
    netlist::Circuit c;
    c.title = "rc lowpass";
    netlist::SourceSpec vin = netlist::SourceSpec::make_dc(2.5);
    vin.ac_mag = 1.0;
    c.add_vsource("V1", "in", "0", vin);
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-9);
    return c;
}

lift::Fault make_short(int id, const std::string& a, const std::string& b,
                       double prob = 1e-8) {
    lift::Fault f;
    f.id = id;
    f.kind = lift::FaultKind::LocalShort;
    f.mechanism = "m";
    f.probability = prob;
    f.net_a = a;
    f.net_b = b;
    return f;
}

lift::Fault make_open(int id, const std::string& net,
                      const std::string& device, double prob = 1e-8) {
    lift::Fault f;
    f.id = id;
    f.kind = lift::FaultKind::LineOpen;
    f.mechanism = "m";
    f.probability = prob;
    f.net = net;
    f.group_b = {{device, 0}};
    return f;
}

// 10V divider: the DC screen fixture.
netlist::Circuit divider() {
    netlist::Circuit c;
    c.title = "divider";
    c.add_vsource("V1", "in", "0", netlist::SourceSpec::make_dc(10.0));
    c.add_resistor("R1", "in", "mid", 1e3);
    c.add_resistor("R2", "mid", "0", 1e3);
    return c;
}

} // namespace

// ---------------------------------------------------------------------------
// Symbolic cache: verdict identity and hit rate

TEST(Symbolic, OtaCampaignCacheVerdictIdentityAndFullHitRate) {
    const OtaCampaignFixture f = ota_fixture();
    anafault::CampaignOptions on = f.opt;
    on.sim.sparse_threshold = kForceSparse;
    anafault::CampaignOptions off = on;
    off.share_symbolic = false;

    const auto r_on = anafault::run_campaign(f.ckt, f.faults, on);
    const auto r_off = anafault::run_campaign(f.ckt, f.faults, off);
    EXPECT_EQ(r_on.failed(), 0u);
    EXPECT_EQ(detected_ids(r_on), detected_ids(r_off));
    EXPECT_FALSE(detected_ids(r_on).empty());
    // Every scheduled kernel adopted the nominal ordering; none with the
    // cache off.
    EXPECT_GT(r_on.batch.scheduled, 0u);
    EXPECT_EQ(r_on.batch.symbolic_cache_hits, r_on.batch.scheduled);
    EXPECT_EQ(r_off.batch.symbolic_cache_hits, 0u);
}

TEST(Symbolic, VcoCampaignCacheHitRateAndRobustVerdictIdentity) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);

    anafault::CampaignOptions on = e.config.campaign;
    on.sim.sparse_threshold = kForceSparse;
    anafault::CampaignOptions off = on;
    off.share_symbolic = false;

    const auto r_on = anafault::run_campaign(e.sim_circuit, lift_res.faults, on);
    const auto r_off =
        anafault::run_campaign(e.sim_circuit, lift_res.faults, off);
    EXPECT_EQ(r_on.failed(), 0u);

    // The acceptance bar: >= 90% of the campaign's kernel builds adopt the
    // shared analysis (here: all of them).
    ASSERT_GT(r_on.batch.scheduled, 0u);
    EXPECT_GE(10 * r_on.batch.symbolic_cache_hits,
              9 * r_on.batch.scheduled);

    // Verdict identity wherever the margin is physically robust: a fault
    // whose verdict differs between the two orderings must be a
    // margin-rider under the seed-faithful dense reference (accumulated
    // mismatch within [t_tol/5, 5*t_tol]) -- the set the kernel_test
    // header documents as kernel-arithmetic-dependent by physics.
    const auto ids_on = detected_ids(r_on);
    const auto ids_off = detected_ids(r_off);
    std::set<int> differing;
    for (int id : ids_on)
        if (!ids_off.count(id)) differing.insert(id);
    for (int id : ids_off)
        if (!ids_on.count(id)) differing.insert(id);
    // The overwhelming majority must agree outright.
    EXPECT_LE(differing.size(), lift_res.faults.size() / 10);

    if (!differing.empty()) {
        const netlist::TranSpec ts = *e.sim_circuit.tran;
        const double t_tol = e.config.campaign.detection.t_tol;
        SimOptions dense = e.config.campaign.sim;
        dense.sparse_threshold = static_cast<std::size_t>(-1);
        Simulator nd(e.sim_circuit, dense);
        const auto nominal = nd.tran(ts);
        for (const lift::Fault& f : lift_res.faults.faults) {
            if (!differing.count(f.id)) continue;
            const auto faulty =
                anafault::inject(e.sim_circuit, f, e.config.campaign.injection);
            Simulator sim(faulty, dense);
            const auto wf = sim.tran(ts);
            const auto& t = nominal.time();
            const auto& vn = nominal.trace(kVcoOutput);
            const auto& vf = wf.trace(kVcoOutput);
            double acc = 0.0;
            for (std::size_t i = 1; i < t.size(); ++i)
                if (std::fabs(vn[i] - vf[i]) >
                    e.config.campaign.detection.v_tol)
                    acc += t[i] - t[i - 1];
            EXPECT_GT(acc, t_tol / 5.0)
                << "robustly undetected fault flipped by the cache: "
                << f.describe();
            EXPECT_LT(acc, 5.0 * t_tol)
                << "robustly detected fault flipped by the cache: "
                << f.describe();
        }
    }
}

TEST(Symbolic, CachePatchesInjectedUnknownsToTheEnd) {
    // An open fault splits a net: the faulty circuit carries a fresh
    // "flt*" node the nominal ordering has never seen.  The patched order
    // appends it; the kernel must factor and integrate correctly.
    const OtaCampaignFixture f = ota_fixture();
    SimOptions so;
    so.uic = true;
    so.sparse_threshold = kForceSparse;
    Simulator nominal(f.ckt, so);
    const auto wf_nom = nominal.tran();
    const auto cache = nominal.symbolic_cache();
    ASSERT_TRUE(cache != nullptr);
    EXPECT_EQ(cache->rank.size(), nominal.unknowns());

    // A terminal open adds a fresh "flt*" unknown through the split.
    netlist::Circuit faulty = f.ckt;
    std::string mos_name;
    for (const netlist::Device& d : faulty.devices)
        if (d.kind == netlist::DeviceKind::Mosfet) {
            mos_name = d.name;
            break;
        }
    ASSERT_FALSE(mos_name.empty());
    anafault::inject_terminal_open(faulty, lift::TerminalRef{mos_name, 0},
                                   f.opt.injection);

    SimOptions cached = so;
    cached.symbolic_cache = cache;
    Simulator sc(faulty, cached);
    EXPECT_GT(sc.unknowns(), nominal.unknowns());
    const auto wf_c = sc.tran();
    EXPECT_EQ(sc.stats().symbolic_cache_hits, 1u);

    Simulator su(faulty, so);  // no cache: its own minimum degree
    const auto wf_u = su.tran();
    EXPECT_EQ(su.stats().symbolic_cache_hits, 0u);

    // Same circuit, same grid; the orderings differ only in rounding.
    ASSERT_EQ(wf_c.points(), wf_u.points());
    const auto& a = wf_c.trace(kOtaOutput);
    const auto& b = wf_u.trace(kOtaOutput);
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    EXPECT_LT(worst, 1e-3);
}

TEST(Symbolic, CacheIsNullOnTheDensePath) {
    const OtaCampaignFixture f = ota_fixture();
    SimOptions so;
    so.uic = true;
    so.sparse_threshold = static_cast<std::size_t>(-1);
    Simulator sim(f.ckt, so);
    sim.tran();
    EXPECT_TRUE(sim.symbolic_cache() == nullptr);
}

// ---------------------------------------------------------------------------
// Per-device bypass

TEST(Symbolic, OtaCampaignPerDeviceBypassVerdictIdentity) {
    // Satellite (b): per-device bypass (device_bypass_tol large enough to
    // actually skip evaluations) vs full stamping, on the well-behaved
    // OTA tran campaign -- verdicts must be identical.
    const OtaCampaignFixture f = ota_fixture();
    anafault::CampaignOptions on = f.opt;
    on.sim.bypass = true;
    on.sim.device_bypass_tol = 1e-9;
    anafault::CampaignOptions off = f.opt;
    off.sim.bypass = false;

    const auto r_on = anafault::run_campaign(f.ckt, f.faults, on);
    const auto r_off = anafault::run_campaign(f.ckt, f.faults, off);
    EXPECT_EQ(r_on.failed(), 0u);
    EXPECT_EQ(detected_ids(r_on), detected_ids(r_off));
    EXPECT_GT(r_on.batch.device_stamp_skips, 0u);
    EXPECT_EQ(r_off.batch.device_stamp_skips, 0u);
}

TEST(Symbolic, DeviceReplayAtZeroToleranceMatchesLegacyBypassContract) {
    // The campaign default (device_bypass_tol = 0) replays a device only
    // when its terminals are bitwise unchanged -- the replayed stamp then
    // equals a fresh evaluation bit for bit, so the per-device machinery
    // adds NO perturbation beyond the whole-solve factorization bypass
    // the kernel has always had.  The waveform bound that pinned the
    // legacy bypass must therefore keep holding unchanged.
    const netlist::Circuit ckt = build_ota();
    SimOptions on;
    on.uic = true;
    on.bypass = true;
    on.device_bypass_tol = 0.0;
    SimOptions off = on;
    off.bypass = false;

    Simulator sa(ckt, on);
    const auto wa = sa.tran();
    Simulator sb(ckt, off);
    const auto wb = sb.tran();
    EXPECT_GT(sa.stats().bypass_solves, 0u);
    ASSERT_EQ(wa.points(), wb.points());
    const auto& a = wa.trace(kOtaOutput);
    const auto& b = wb.trace(kOtaOutput);
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    EXPECT_LT(worst, 1e-3);
}

// ---------------------------------------------------------------------------
// Per-analysis stats windows

TEST(Symbolic, AnalysisStatsIsolateTranThenAc) {
    OtaOptions o;
    netlist::Circuit ckt = build_ota(o);
    ckt.device("VDD").source = netlist::SourceSpec::make_dc(5.0);
    netlist::SourceSpec vin = netlist::SourceSpec::make_dc(2.5);
    vin.ac_mag = 1.0;
    ckt.device("VIN").source = vin;

    SimOptions so;
    so.sparse_threshold = kForceSparse;
    Simulator sim(ckt, so);

    sim.tran();
    const spice::SimStats tran_window = sim.analysis_stats();
    EXPECT_GT(tran_window.tran_steps, 0u);
    EXPECT_EQ(tran_window.ac_points, 0u);
    EXPECT_GT(tran_window.sparse_refactors, 0u);

    spice::AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e9;
    sim.ac(spec);
    const spice::SimStats ac_window = sim.analysis_stats();
    EXPECT_GT(ac_window.ac_points, 0u);
    EXPECT_EQ(ac_window.tran_steps, 0u);
    EXPECT_LT(ac_window.sparse_refactors, sim.stats().sparse_refactors);
    // The cumulative counters keep accumulating across both analyses.
    EXPECT_GT(sim.stats().tran_steps, 0u);
    EXPECT_GT(sim.stats().ac_points, 0u);
}

// ---------------------------------------------------------------------------
// AC campaign store + incremental runner

TEST(Symbolic, AcCampaignStoreRoundTripAndResume) {
    const netlist::Circuit ckt = rc_lowpass();
    lift::FaultList fl;
    fl.faults.push_back(make_short(1, "out", "0"));
    fl.faults.push_back(make_open(2, "out", "C1"));

    anafault::AcCampaignOptions opt;
    opt.observed = {"out"};
    opt.sweep.fstart = 1e3;
    opt.sweep.fstop = 1e8;
    opt.result_store = tmp_store("symbolic_ac_store.bin");
    const auto cold = anafault::run_ac_campaign(ckt, fl, opt);
    EXPECT_EQ(cold.batch.resumed, 0u);
    EXPECT_GT(cold.batch.scheduled, 0u);

    opt.resume = true;
    const auto warm = anafault::run_ac_campaign(ckt, fl, opt);
    EXPECT_EQ(warm.batch.resumed, 2u);
    EXPECT_EQ(warm.batch.scheduled, 0u);
    EXPECT_EQ(detected_ids(warm), detected_ids(cold));
    ASSERT_EQ(warm.results.size(), cold.results.size());
    for (std::size_t i = 0; i < warm.results.size(); ++i) {
        EXPECT_EQ(warm.results[i].detected, cold.results[i].detected);
        EXPECT_NEAR(warm.results[i].max_deviation_db,
                    cold.results[i].max_deviation_db, 1e-12);
        if (cold.results[i].detect_freq) {
            EXPECT_DOUBLE_EQ(*warm.results[i].detect_freq,
                             *cold.results[i].detect_freq);
        }
    }
    std::filesystem::remove(opt.result_store);
}

TEST(Symbolic, IncrementalAcCampaignCarriesUnchangedSignatures) {
    const netlist::Circuit ckt = rc_lowpass();
    lift::FaultList baseline;
    baseline.faults.push_back(make_short(1, "out", "0"));
    baseline.faults.push_back(make_open(2, "out", "C1"));

    anafault::AcCampaignOptions copt;
    copt.observed = {"out"};
    copt.sweep.fstart = 1e3;
    copt.sweep.fstop = 1e8;
    copt.result_store = tmp_store("symbolic_ac_baseline.bin");
    const auto base_run = anafault::run_ac_campaign(ckt, baseline, copt);
    ASSERT_EQ(base_run.results.size(), 2u);

    // Revision: fault 1 unchanged, fault 2's probability moved 10x, one
    // added short.
    lift::FaultList revision;
    revision.faults.push_back(make_short(1, "out", "0"));
    revision.faults.push_back(make_open(2, "out", "C1", 1e-7));
    revision.faults.push_back(make_short(3, "in", "out"));

    anafault::IncrementalAcOptions iopt;
    iopt.campaign = copt;
    iopt.campaign.result_store = tmp_store("symbolic_ac_merged.bin");
    iopt.baseline_store = copt.result_store;
    const auto inc =
        anafault::run_incremental_ac_campaign(ckt, baseline, revision, iopt);
    EXPECT_TRUE(inc.inc.baseline_manifest_matched);
    EXPECT_EQ(inc.inc.carried, 1u);
    EXPECT_EQ(inc.inc.resimulated, 2u);
    EXPECT_EQ(inc.inc.added, 1u);
    EXPECT_EQ(inc.inc.probability_changed, 1u);
    ASSERT_EQ(inc.campaign.results.size(), 3u);
    EXPECT_TRUE(inc.campaign.results[0].carried);
    EXPECT_FALSE(inc.campaign.results[1].carried);

    // Verdicts identical to a cold full campaign on the revision.
    anafault::AcCampaignOptions cold_opt = copt;
    cold_opt.result_store.clear();
    const auto cold = anafault::run_ac_campaign(ckt, revision, cold_opt);
    EXPECT_EQ(detected_ids(inc.campaign), detected_ids(cold));

    std::filesystem::remove(copt.result_store);
    std::filesystem::remove(iopt.campaign.result_store);
}

// ---------------------------------------------------------------------------
// DC screen store + incremental runner

TEST(Symbolic, DcScreenStoreRoundTripAndIncrementalCarry) {
    const netlist::Circuit ckt = divider();
    lift::FaultList baseline;
    baseline.faults.push_back(make_short(1, "mid", "0"));
    baseline.faults.push_back(make_open(2, "mid", "R2"));

    anafault::DcScreenOptions copt;
    copt.observed = {"mid"};
    copt.result_store = tmp_store("symbolic_dc_baseline.bin");
    const auto base_run = anafault::run_dc_screen(ckt, baseline, copt);
    EXPECT_EQ(base_run.coverage(), 100.0);
    EXPECT_EQ(base_run.batch.resumed, 0u);

    // Resume round trip.
    anafault::DcScreenOptions ropt = copt;
    ropt.resume = true;
    const auto warm = anafault::run_dc_screen(ckt, baseline, ropt);
    EXPECT_EQ(warm.batch.resumed, 2u);
    EXPECT_EQ(warm.batch.scheduled, 0u);
    EXPECT_EQ(detected_ids(warm), detected_ids(base_run));
    for (const auto& r : warm.results) {
        EXPECT_TRUE(r.converged);
        EXPECT_EQ(r.strategy, "stored");
    }

    // Incremental: one carried, one changed, one added.
    lift::FaultList revision;
    revision.faults.push_back(make_short(1, "mid", "0"));
    revision.faults.push_back(make_open(2, "mid", "R2", 1e-7));
    revision.faults.push_back(make_short(3, "in", "mid"));

    anafault::IncrementalDcOptions iopt;
    iopt.campaign = copt;
    iopt.campaign.result_store = tmp_store("symbolic_dc_merged.bin");
    iopt.baseline_store = copt.result_store;
    const auto inc =
        anafault::run_incremental_dc_screen(ckt, baseline, revision, iopt);
    EXPECT_TRUE(inc.inc.baseline_manifest_matched);
    EXPECT_EQ(inc.inc.carried, 1u);
    EXPECT_EQ(inc.inc.resimulated, 2u);
    ASSERT_EQ(inc.campaign.results.size(), 3u);
    EXPECT_TRUE(inc.campaign.results[0].carried);

    anafault::DcScreenOptions cold_opt = copt;
    cold_opt.result_store.clear();
    const auto cold = anafault::run_dc_screen(ckt, revision, cold_opt);
    EXPECT_EQ(detected_ids(inc.campaign), detected_ids(cold));

    // A foreign baseline store (different knobs) blocks carrying.
    anafault::IncrementalDcOptions foreign = iopt;
    foreign.campaign.v_tol = 1.0;  // different manifest
    const auto blocked =
        anafault::run_incremental_dc_screen(ckt, baseline, revision, foreign);
    EXPECT_FALSE(blocked.inc.baseline_manifest_matched);
    EXPECT_EQ(blocked.inc.carried, 0u);
    EXPECT_EQ(blocked.inc.resimulated, 3u);

    std::filesystem::remove(copt.result_store);
    std::filesystem::remove(iopt.campaign.result_store);
}

// ---------------------------------------------------------------------------
// Record round trips

TEST(Symbolic, AcAndDcRecordRoundTrips) {
    anafault::AcFaultResult a;
    a.fault_id = 7;
    a.description = "short x|y";
    a.probability = 3e-9;
    a.simulated = true;
    a.detected = true;
    a.detect_freq = 1.5e6;
    a.max_deviation_db = 12.5;
    a.points_saved = 17;
    a.sim_seconds = 0.25;
    a.nr_iterations = 42;
    a.symbolic_cache_hits = 1;
    a.ordering_seconds = 0.003;
    a.numeric_seconds = 0.01;
    const auto ar = anafault::ac_from_record(anafault::ac_to_record(a));
    EXPECT_EQ(ar.fault_id, a.fault_id);
    EXPECT_EQ(ar.description, a.description);
    EXPECT_TRUE(ar.detected);
    EXPECT_DOUBLE_EQ(*ar.detect_freq, 1.5e6);
    EXPECT_DOUBLE_EQ(ar.max_deviation_db, 12.5);
    EXPECT_EQ(ar.points_saved, 17u);
    EXPECT_EQ(ar.nr_iterations, 42u);
    EXPECT_EQ(ar.symbolic_cache_hits, 1u);

    anafault::DcFaultResult d;
    d.fault_id = 9;
    d.description = "open r2";
    d.probability = 2e-9;
    d.converged = true;
    d.detected = true;
    d.max_deviation = 4.75;
    d.nr_iterations = 11;
    const auto dr = anafault::dc_from_record(anafault::dc_to_record(d));
    EXPECT_EQ(dr.fault_id, 9);
    EXPECT_TRUE(dr.converged);
    EXPECT_TRUE(dr.detected);
    EXPECT_DOUBLE_EQ(dr.max_deviation, 4.75);
    EXPECT_EQ(dr.nr_iterations, 11);
    EXPECT_EQ(dr.strategy, "stored");

    // Undetected stays undetected through the round trip.
    d.detected = false;
    EXPECT_FALSE(anafault::dc_from_record(anafault::dc_to_record(d)).detected);
}
