// AnaFAULT tests: fault injection (both hard-fault models), the detection
// comparator, parametric faults, and a small end-to-end campaign.

#include "anafault/campaign.h"
#include "anafault/comparator.h"
#include "anafault/fault_models.h"
#include "anafault/report.h"
#include "circuits/vco.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::anafault;
using namespace catlift::netlist;

namespace {

Circuit rc_fixture() {
    Circuit c;
    c.title = "rc";
    c.add_vsource("V1", "in", "0",
                  SourceSpec::make_pulse(0, 5, 0, 1e-9, 1e-9, 1, 2));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-9);
    c.tran = TranSpec{1e-8, 4e-6, 0.0};
    return c;
}

spice::Waveforms ramp_wave(const std::string& node, double slope,
                           double tstop = 4e-6, double dt = 1e-8,
                           double offset = 0.0) {
    spice::Waveforms wf;
    wf.add_trace(node);
    for (double t = 0; t <= tstop + dt / 2; t += dt)
        wf.append(t, {offset + slope * t});
    return wf;
}

} // namespace

// ---------------------------------------------------------------------------
// Injection

TEST(Inject, ShortResistorModel) {
    Circuit c = rc_fixture();
    inject_short(c, "in", "out");
    const Device& d = c.device("FLT1");
    EXPECT_EQ(d.kind, DeviceKind::Resistor);
    EXPECT_DOUBLE_EQ(d.value, 0.01);  // paper: 0.01 Ohm
}

TEST(Inject, ShortSourceModelAddsBranch) {
    Circuit c1 = rc_fixture();
    Circuit c2 = rc_fixture();
    InjectionOptions src;
    src.model = HardFaultModel::Source;
    inject_short(c1, "in", "out");        // resistor model
    inject_short(c2, "in", "out", src);   // source model
    spice::Simulator s1(c1), s2(c2);
    // The ideal 0V source costs one extra MNA unknown -- the mechanism
    // behind the paper's 43% runtime observation.
    EXPECT_EQ(s2.unknowns(), s1.unknowns() + 1);
}

TEST(Inject, ShortSameNetRejected) {
    Circuit c = rc_fixture();
    EXPECT_THROW(inject_short(c, "in", "in"), Error);
    EXPECT_THROW(inject_short(c, "gnd", "0"), Error);  // aliases
}

TEST(Inject, TerminalOpenRewiresDevice) {
    Circuit c = rc_fixture();
    inject_terminal_open(c, {"C1", 0});
    const Device& cap = c.device("C1");
    EXPECT_NE(cap.nodes[0], "out");
    const Device& open_el = c.device("FLT1");
    EXPECT_EQ(open_el.kind, DeviceKind::Resistor);
    EXPECT_DOUBLE_EQ(open_el.value, 100e6);  // paper: 100 MOhm
    // The open element ties old and new node.
    EXPECT_TRUE((open_el.nodes[0] == "out" && open_el.nodes[1] == cap.nodes[0]) ||
                (open_el.nodes[1] == "out" && open_el.nodes[0] == cap.nodes[0]));
}

TEST(Inject, OpenSourceModelUsesCurrentSource) {
    Circuit c = rc_fixture();
    InjectionOptions src;
    src.model = HardFaultModel::Source;
    inject_terminal_open(c, {"C1", 0}, src);
    EXPECT_EQ(c.device("FLT1").kind, DeviceKind::ISource);
    EXPECT_DOUBLE_EQ(c.device("FLT1").source.dc, 0.0);
}

TEST(Inject, SplitNodeMovesGroup) {
    Circuit c = circuits::build_vco();
    // Split node 8 (NMOS mirror gate): move M7's gate away.
    const std::string nn = inject_split(c, "8", {{"M7", 1}});
    EXPECT_EQ(c.device("M7").gate(), nn);
    EXPECT_EQ(c.device("M6").gate(), "8");  // untouched side
}

TEST(Inject, SplitValidatesMembership) {
    Circuit c = circuits::build_vco();
    // M7's gate is on net 8, not on net 5.
    EXPECT_THROW(inject_split(c, "5", {{"M7", 1}}), Error);
    EXPECT_THROW(inject_split(c, "8", {}), Error);
}

TEST(Inject, DispatchCoversAllKinds) {
    using lift::Fault;
    using lift::FaultKind;
    Circuit base = circuits::build_vco();
    Fault bridge;
    bridge.kind = FaultKind::GlobalShort;
    bridge.net_a = "1";
    bridge.net_b = "3";
    EXPECT_EQ(inject(base, bridge).devices.size(), base.devices.size() + 1);

    Fault stuck;
    stuck.kind = FaultKind::StuckOpen;
    stuck.victim = {"M7", 0};
    Circuit c2 = inject(base, stuck);
    EXPECT_NE(c2.device("M7").drain(), base.device("M7").drain());

    Fault split;
    split.kind = FaultKind::SplitNode;
    split.net = "8";
    split.group_b = {{"M7", 1}, {"M6", 0}};
    Circuit c3 = inject(base, split);
    EXPECT_EQ(c3.device("M7").gate(), c3.device("M6").drain());
    EXPECT_NE(c3.device("M7").gate(), "8");
}

// ---------------------------------------------------------------------------
// Parametric faults

TEST(Parametric, ScalesValues) {
    Circuit c = rc_fixture();
    Circuit f = inject_parametric(c, {"R1", "value", 2.0});
    EXPECT_DOUBLE_EQ(f.device("R1").value, 2e3);
    Circuit m = circuits::build_vco();
    Circuit fm = inject_parametric(m, {"M7", "w", 0.5});
    EXPECT_DOUBLE_EQ(fm.device("M7").w, 20e-6);
}

TEST(Parametric, RejectsBadTargets) {
    Circuit c = rc_fixture();
    EXPECT_THROW(inject_parametric(c, {"R1", "w", 2.0}), Error);
    EXPECT_THROW(inject_parametric(c, {"V1", "value", 2.0}), Error);
    EXPECT_THROW(inject_parametric(c, {"R1", "value", -1.0}), Error);
    EXPECT_THROW(inject_parametric(c, {"nosuch", "value", 2.0}), Error);
}

TEST(Parametric, MonteCarloDeterministicAndPositive) {
    Circuit c = circuits::build_vco();
    auto a = monte_carlo_faults(c, 50, 0.2, 42);
    auto b = monte_carlo_faults(c, 50, 0.2, 42);
    ASSERT_EQ(a.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].device, b[i].device);
        EXPECT_DOUBLE_EQ(a[i].factor, b[i].factor);
        EXPECT_GT(a[i].factor, 0.0);
    }
    // A different seed gives a different draw.
    auto c2 = monte_carlo_faults(c, 50, 0.2, 43);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].factor != c2[i].factor;
    EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// Comparator

TEST(Comparator, IdenticalWaveformsNeverDetect) {
    auto w = ramp_wave("11", 1e6);
    DetectionSpec spec;
    EXPECT_FALSE(detect_time(w, w, spec).has_value());
}

TEST(Comparator, ConstantOffsetDetectsAfterTimeTolerance) {
    auto nom = ramp_wave("11", 0.0);
    auto bad = ramp_wave("11", 0.0, 4e-6, 1e-8, 3.0);  // 3 V offset
    DetectionSpec spec;  // 2 V, 0.2 us
    auto t = detect_time(nom, bad, spec);
    ASSERT_TRUE(t.has_value());
    // Mismatch from t=0; accumulated time crosses 0.2us just after 0.2us.
    EXPECT_NEAR(*t, 0.2e-6, 0.02e-6);
}

TEST(Comparator, SmallOffsetTolerated) {
    auto nom = ramp_wave("11", 0.0);
    auto ok = ramp_wave("11", 0.0, 4e-6, 1e-8, 1.5);  // below 2 V tolerance
    EXPECT_FALSE(detect_time(nom, ok, DetectionSpec{}).has_value());
}

TEST(Comparator, BriefGlitchBelowTimeToleranceIgnored) {
    auto nom = ramp_wave("11", 0.0);
    spice::Waveforms glitchy;
    glitchy.add_trace("11");
    for (double t = 0; t <= 4e-6 + 5e-9; t += 1e-8) {
        // 0.1 us burst of 5 V at t ~ 1 us: shorter than the 0.2 us budget.
        const double v = (t >= 1e-6 && t < 1.1e-6) ? 5.0 : 0.0;
        glitchy.append(t, {v});
    }
    EXPECT_FALSE(detect_time(nom, glitchy, DetectionSpec{}).has_value());
}

TEST(Comparator, RepeatedGlitchesAccumulate) {
    auto nom = ramp_wave("11", 0.0);
    spice::Waveforms glitchy;
    glitchy.add_trace("11");
    for (double t = 0; t <= 4e-6 + 5e-9; t += 1e-8) {
        // 0.1 us burst every 1 us: the 0.2 us budget is exceeded by the
        // last sample of the second burst (t ~ 1.1 us).
        const double phase = std::fmod(t, 1e-6);
        glitchy.append(t, {phase < 0.1e-6 ? 5.0 : 0.0});
    }
    auto t = detect_time(nom, glitchy, DetectionSpec{});
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 1.1e-6, 0.1e-6);
}

TEST(Comparator, EarliestNodeWins) {
    spice::Waveforms nom;
    nom.add_trace("a");
    nom.add_trace("b");
    spice::Waveforms bad;
    bad.add_trace("a");
    bad.add_trace("b");
    for (double t = 0; t <= 4e-6 + 5e-9; t += 1e-8) {
        nom.append(t, {0.0, 0.0});
        // "b" deviates from t=0, "a" only from 2 us.
        bad.append(t, {t > 2e-6 ? 5.0 : 0.0, 5.0});
    }
    DetectionSpec spec;
    spec.observed = {"a", "b"};
    auto t = detect_time(nom, bad, spec);
    ASSERT_TRUE(t.has_value());
    EXPECT_LT(*t, 0.3e-6);
}

TEST(Comparator, MissingNodeRejected) {
    auto nom = ramp_wave("11", 0.0);
    auto bad = ramp_wave("12", 0.0);
    DetectionSpec spec;
    EXPECT_THROW(detect_time_on(nom, bad, "11", spec), Error);
}

TEST(Comparator, SupplyCurrentObservationCatchesMaskedShorts) {
    // A VDD-GND bridge keeps every node voltage nominal (ideal source)
    // but draws huge current: only the IDDQ observation sees it.
    Circuit nom_c = circuits::build_vco();
    Circuit bad_c = circuits::build_vco();
    inject_short(bad_c, "1", "0");
    spice::SimOptions so;
    so.uic = true;
    spice::Simulator sn(nom_c, so), sb(bad_c, so);
    auto nom = sn.tran();
    auto bad = sb.tran();

    DetectionSpec volt_only;
    volt_only.observed = {circuits::kVcoOutput};
    // Voltage-only: at best a late numerical artefact; at worst nothing.
    auto tv = detect_time(nom, bad, volt_only);
    DetectionSpec with_iddq = volt_only;
    with_iddq.observed_supplies = {"VDD"};
    auto ti = detect_time(nom, bad, with_iddq);
    ASSERT_TRUE(ti.has_value());
    EXPECT_LT(*ti, 0.5e-6);  // caught almost immediately
    if (tv) {
        EXPECT_LT(*ti, *tv);
    }
}

// ---------------------------------------------------------------------------
// Campaign on a small fixture

TEST(Campaign, RcShortAndOpenDetected) {
    Circuit c = rc_fixture();
    lift::FaultList fl;
    fl.circuit = "rc";
    lift::Fault shrt;
    shrt.id = 1;
    shrt.kind = lift::FaultKind::LocalShort;
    shrt.mechanism = "m";
    shrt.probability = 1e-7;
    shrt.net_a = "out";
    shrt.net_b = "0";
    fl.faults.push_back(shrt);
    lift::Fault open;
    open.id = 2;
    open.kind = lift::FaultKind::LineOpen;
    open.mechanism = "m";
    open.probability = 1e-8;
    open.net = "out";
    open.group_b = {{"C1", 0}};
    fl.faults.push_back(open);

    CampaignOptions opt;
    opt.detection.observed = {"out"};
    auto res = run_campaign(c, fl, opt);
    ASSERT_EQ(res.results.size(), 2u);
    EXPECT_EQ(res.failed(), 0u);
    // Short to ground: output stuck at 0 vs charging to 5 -> detected.
    EXPECT_TRUE(res.results[0].detect_time.has_value());
    // Capacitor open: output follows the source immediately instead of
    // the RC ramp; the deviation lives only during the charging transient
    // (~3 tau = 3 us) -- still more than 0.2 us of mismatch.
    EXPECT_TRUE(res.results[1].detect_time.has_value());
    EXPECT_DOUBLE_EQ(res.final_coverage(), 100.0);
}

TEST(Campaign, CoverageCurveMonotonic) {
    Circuit c = rc_fixture();
    lift::FaultList fl;
    for (int i = 0; i < 3; ++i) {
        lift::Fault f;
        f.id = i + 1;
        f.kind = lift::FaultKind::LocalShort;
        f.mechanism = "m";
        f.probability = 1e-8;
        f.net_a = i == 0 ? "out" : "in";
        f.net_b = "0";
        if (i == 2) {
            f.net_a = "in";
            f.net_b = "out";
        }
        fl.faults.push_back(f);
    }
    CampaignOptions opt;
    opt.detection.observed = {"out"};
    auto res = run_campaign(c, fl, opt);
    auto curve = res.coverage_curve(50);
    ASSERT_EQ(curve.size(), 51u);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
    EXPECT_NEAR(curve.back().first, 4e-6, 1e-12);
}

TEST(Campaign, ParallelMatchesSerial) {
    Circuit c = rc_fixture();
    lift::FaultList fl;
    for (int i = 0; i < 6; ++i) {
        lift::Fault f;
        f.id = i + 1;
        f.kind = lift::FaultKind::LocalShort;
        f.mechanism = "m";
        f.probability = 1e-8;
        f.net_a = (i % 2) ? "in" : "out";
        f.net_b = (i % 3) ? "0" : ((i % 2) ? "out" : "in");
        if (f.net_a == f.net_b) f.net_b = "0";
        fl.faults.push_back(f);
    }
    CampaignOptions serial;
    serial.detection.observed = {"out"};
    CampaignOptions parallel = serial;
    parallel.threads = 4;
    auto rs = run_campaign(c, fl, serial);
    auto rp = run_campaign(c, fl, parallel);
    ASSERT_EQ(rs.results.size(), rp.results.size());
    for (std::size_t i = 0; i < rs.results.size(); ++i) {
        EXPECT_EQ(rs.results[i].detect_time.has_value(),
                  rp.results[i].detect_time.has_value());
        if (rs.results[i].detect_time) {
            EXPECT_NEAR(*rs.results[i].detect_time,
                        *rp.results[i].detect_time, 1e-12);
        }
    }
}

TEST(Campaign, ParametricCampaignRuns) {
    Circuit c = rc_fixture();
    std::vector<ParametricFault> faults = {
        {"R1", "value", 10.0},   // tau x10: grossly out of tolerance
        {"R1", "value", 1.01},   // 1%: well within tolerance
    };
    CampaignOptions opt;
    opt.detection.observed = {"out"};
    auto res = run_parametric_campaign(c, faults, opt);
    ASSERT_EQ(res.results.size(), 2u);
    EXPECT_TRUE(res.results[0].detect_time.has_value());
    EXPECT_FALSE(res.results[1].detect_time.has_value());
}

TEST(Campaign, RequiresTranSpec) {
    Circuit c = rc_fixture();
    c.tran.reset();
    lift::FaultList fl;
    EXPECT_THROW(run_campaign(c, fl, CampaignOptions{}), Error);
    CampaignOptions opt;
    opt.tran = TranSpec{1e-8, 1e-6, 0.0};
    EXPECT_NO_THROW(run_campaign(c, fl, opt));
}

TEST(Report, TableAndSummaryContainKeyFacts) {
    Circuit c = rc_fixture();
    lift::FaultList fl;
    lift::Fault f;
    f.id = 1;
    f.kind = lift::FaultKind::LocalShort;
    f.mechanism = "metal1_short";
    f.probability = 3e-8;
    f.net_a = "out";
    f.net_b = "0";
    fl.faults.push_back(f);
    CampaignOptions opt;
    opt.detection.observed = {"out"};
    auto res = run_campaign(c, fl, opt);

    const std::string table = campaign_table(res);
    EXPECT_NE(table.find("metal1_short"), std::string::npos);
    EXPECT_NE(table.find("yes"), std::string::npos);
    const std::string summary = campaign_summary(res);
    EXPECT_NE(summary.find("fault coverage: 100.0%"), std::string::npos);
    const std::string plot = coverage_plot_ascii(res);
    EXPECT_NE(plot.find('*'), std::string::npos);
    const std::string csv = coverage_csv(res, 10);
    EXPECT_NE(csv.find("time_s,time_pct,coverage_pct"), std::string::npos);
}
