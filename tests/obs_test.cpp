// Observability subsystem tests: metrics registry (sharded counters,
// log-bucket histograms, JSON snapshot), span tracing with Chrome-trace
// export, the campaign event bus, and the end-to-end contracts -- every
// fault simulation is one closed span whose args sum to the registry
// totals, tracing never changes a verdict, and a resumed campaign splits
// `resumed` from `carried_from_store`.

#include "anafault/campaign.h"
#include "batch/result_store.h"
#include "circuits/ota.h"
#include "core/cat.h"
#include "lift/extract_faults.h"
#include "obs/obs.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

using namespace catlift;

namespace {

/// Every test leaves the process-global obs state as it found it: off,
/// empty, no sinks.
struct ObsGuard {
    ObsGuard() { clear(); }
    ~ObsGuard() { clear(); }
    static void clear() {
        obs::enable_metrics(false);
        obs::enable_tracing(false);
        obs::detach_event_sinks();
        obs::Registry::global().reset();
        obs::trace_reset();
    }
};

std::string temp_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("catlift_obs_" + tag + ".store"))
        .string();
}

const obs::TraceArg* find_arg(const obs::TraceEvent& ev, const char* key) {
    for (const obs::TraceArg& a : ev.args)
        if (std::string(a.key) == key) return &a;
    return nullptr;
}

} // namespace

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsMetrics, CounterAggregatesAcrossThreads) {
    ObsGuard g;
    obs::Counter c;
    std::vector<std::thread> ts;
    constexpr int kThreads = 8, kAdds = 10000;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i) c.add(1);
        });
    for (auto& t : ts) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, HistogramBucketsAndPercentiles) {
    ObsGuard g;
    obs::Histogram h;
    for (int i = 0; i < 99; ++i) h.record(1e-3);
    h.record(1.0);  // the single outlier is the exact max
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_NEAR(s.sum, 99 * 1e-3 + 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.max, 1.0);
    // p50/p95 fall in the 1e-3 bucket (log buckets: within ~60%).
    EXPECT_NEAR(s.p50(), 1e-3, 0.6e-3);
    EXPECT_NEAR(s.p95(), 1e-3, 0.6e-3);
    // The top percentile clamps to the exact max, not a bucket edge.
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 1.0);
}

TEST(ObsMetrics, HistogramUnderOverflow) {
    ObsGuard g;
    obs::Histogram h;
    h.record(0.0);     // below kHistMin -> underflow bucket
    h.record(1e30);    // above the top decade -> overflow bucket
    h.record(-5.0);    // negative clamps to underflow
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.max, 1e30);
}

TEST(ObsMetrics, RegistryJsonAndReset) {
    ObsGuard g;
    obs::Registry& reg = obs::Registry::global();
    obs::Counter& c = reg.counter("test.counter");
    c.add(7);
    reg.gauge("test.gauge").set(2.5);
    reg.histogram("test.hist").record(0.25);
    const std::string js = reg.to_json();
    EXPECT_NE(js.find("\"test.counter\": 7"), std::string::npos);
    EXPECT_NE(js.find("\"test.gauge\""), std::string::npos);
    EXPECT_NE(js.find("\"test.hist\""), std::string::npos);
    reg.reset();
    // References stay valid after reset; values are zeroed in place.
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(reg.histogram("test.hist").snapshot().count, 0u);
}

// ---------------------------------------------------------------------------
// Spans and trace export

TEST(ObsTrace, SpanOffIsInert) {
    ObsGuard g;
    {
        obs::Span sp(obs::Phase::Solve);
        sp.arg("k", std::int64_t{1});
    }
    EXPECT_EQ(obs::trace_event_count(), 0u);
    EXPECT_EQ(obs::phase_histogram(obs::Phase::Solve).snapshot().count, 0u);
}

TEST(ObsTrace, SpanRecordsHistogramAndEvent) {
    ObsGuard g;
    obs::enable_metrics(true);
    obs::enable_tracing(true);
    obs::set_lane_name("test-lane");
    {
        obs::Span sp(obs::Phase::Factor);
        sp.set_phase(obs::Phase::Refactor);  // re-classification sticks
        sp.arg("unknowns", std::int64_t{42});
    }
    EXPECT_EQ(obs::trace_event_count(), 1u);
    EXPECT_EQ(obs::phase_histogram(obs::Phase::Refactor).snapshot().count,
              1u);
    EXPECT_EQ(obs::phase_histogram(obs::Phase::Factor).snapshot().count, 0u);
    const auto evs = obs::trace_snapshot();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_STREQ(evs[0].name, "refactor");
    const obs::TraceArg* a = find_arg(evs[0], "unknowns");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->i, 42);
}

TEST(ObsTrace, SpanEndIsIdempotent) {
    ObsGuard g;
    obs::enable_tracing(true);
    obs::Span sp(obs::Phase::Solve);
    sp.end();
    sp.end();  // second end and the destructor must both be no-ops
    EXPECT_EQ(obs::trace_event_count(), 1u);
}

TEST(ObsTrace, ChromeExportIsWellFormed) {
    ObsGuard g;
    obs::enable_tracing(true);
    obs::set_lane_name("main");
    for (int i = 0; i < 3; ++i) obs::Span sp(obs::Phase::Newton);
    std::ostringstream os;
    obs::write_chrome_trace(os);
    const std::string js = os.str();
    EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(js.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(js.find("\"name\":\"newton\""), std::string::npos);
}

TEST(ObsTrace, JsonEscape) {
    EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

// ---------------------------------------------------------------------------
// Event bus

TEST(ObsEvents, DisabledWithoutSinksCaptureWhenAttached) {
    ObsGuard g;
    EXPECT_FALSE(obs::events_enabled());
    auto cap = std::make_shared<obs::CaptureSink>();
    obs::attach_event_sink(cap);
    EXPECT_TRUE(obs::events_enabled());
    obs::emit_event("test_event", {obs::arg("n", std::int64_t{3})});
    EXPECT_EQ(cap->count_of("test_event"), 1u);
    const auto evs = cap->take();
    ASSERT_EQ(evs.size(), 1u);
    ASSERT_EQ(evs[0].fields.size(), 1u);
    EXPECT_EQ(evs[0].fields[0].i, 3);
    obs::detach_event_sinks();
    EXPECT_FALSE(obs::events_enabled());
}

TEST(ObsEvents, JsonlSinkWritesOneObjectPerLine) {
    ObsGuard g;
    const std::string path = temp_path("events") + ".jsonl";
    {
        auto sink = std::make_shared<obs::JsonlSink>(path);
        ASSERT_TRUE(sink->good());
        obs::attach_event_sink(sink);
        obs::emit_event("ev_a", {obs::arg("x", 1.5)});
        obs::emit_event("ev_b", {obs::arg("s", std::string("q\"q"))});
        obs::detach_event_sinks();
    }
    std::ifstream in(path);
    std::string l1, l2;
    ASSERT_TRUE(std::getline(in, l1));
    ASSERT_TRUE(std::getline(in, l2));
    EXPECT_NE(l1.find("\"ev\":\"ev_a\""), std::string::npos);
    EXPECT_NE(l1.find("\"x\":1.5"), std::string::npos);
    EXPECT_NE(l2.find("\"s\":\"q\\\"q\""), std::string::npos);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Per-analysis stats windows on a single simulator (tran -> AC -> tran)

TEST(ObsWindows, AnalysisStatsTranAcTranOnOneSimulator) {
    circuits::OtaOptions o;
    netlist::Circuit ckt = circuits::build_ota(o);
    ckt.device("VDD").source = netlist::SourceSpec::make_dc(5.0);
    netlist::SourceSpec vin = netlist::SourceSpec::make_dc(2.5);
    vin.ac_mag = 1.0;
    ckt.device("VIN").source = vin;

    spice::Simulator sim(ckt);
    sim.tran();
    const spice::SimStats w1 = sim.analysis_stats();
    EXPECT_GT(w1.tran_steps, 0u);
    EXPECT_EQ(w1.ac_points, 0u);

    spice::AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e9;
    sim.ac(spec);
    const spice::SimStats w2 = sim.analysis_stats();
    EXPECT_GT(w2.ac_points, 0u);
    EXPECT_EQ(w2.tran_steps, 0u);

    // The third window must again be tran-only: the AC window closed.
    sim.tran();
    const spice::SimStats w3 = sim.analysis_stats();
    EXPECT_GT(w3.tran_steps, 0u);
    EXPECT_EQ(w3.ac_points, 0u);
    EXPECT_EQ(w3.tran_steps, w1.tran_steps);  // same analysis, same work

    // Cumulative counters hold the union of all three windows.
    EXPECT_EQ(sim.stats().tran_steps, w1.tran_steps + w3.tran_steps);
    EXPECT_EQ(sim.stats().ac_points, w2.ac_points);
}

// ---------------------------------------------------------------------------
// Traced campaign end to end

namespace {

struct TracedCampaign {
    anafault::CampaignResult res;
    std::vector<obs::TraceEvent> fault_spans;
    std::shared_ptr<obs::CaptureSink> events;
};

TracedCampaign run_traced_vco(unsigned threads) {
    TracedCampaign out;
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = threads;

    obs::enable_metrics(true);
    obs::enable_tracing(true);
    out.events = std::make_shared<obs::CaptureSink>();
    obs::attach_event_sink(out.events);
    out.res = anafault::run_campaign(e.sim_circuit, lift_res.faults, opt);
    obs::enable_tracing(false);
    obs::detach_event_sinks();

    for (const obs::TraceEvent& ev : obs::trace_snapshot())
        if (std::string(ev.name) == "fault") out.fault_spans.push_back(ev);
    return out;
}

} // namespace

TEST(ObsCampaign, EveryScheduledFaultIsOneClosedSpanWithArgs) {
    ObsGuard g;
    const TracedCampaign t = run_traced_vco(2);
    EXPECT_EQ(t.fault_spans.size(), t.res.batch.scheduled);
    for (const obs::TraceEvent& ev : t.fault_spans) {
        EXPECT_GT(ev.dur_ns, 0u);
        const obs::TraceArg* verdict = find_arg(ev, "verdict");
        ASSERT_NE(verdict, nullptr);
        EXPECT_TRUE(verdict->s == "detected" || verdict->s == "undetected" ||
                    verdict->s == "failed");
        const obs::TraceArg* sig = find_arg(ev, "signature");
        ASSERT_NE(sig, nullptr);
        EXPECT_FALSE(sig->s.empty());
        EXPECT_NE(find_arg(ev, "fault_id"), nullptr);
    }
}

TEST(ObsCampaign, RegistryTotalsEqualSumOfSpanArgsMultiThread) {
    ObsGuard g;
    const TracedCampaign t = run_traced_vco(4);
    ASSERT_GT(t.fault_spans.size(), 0u);

    // Sum each per-fault arg across all spans and compare with the
    // registry counter the publisher incremented with the same values:
    // nothing lost, nothing double-counted, even with 4 workers.
    const std::map<std::string, std::string> arg_to_counter = {
        {"nr_iterations", "campaign.nr_iterations"},
        {"steps_integrated", "campaign.steps_integrated"},
        {"steps_saved", "campaign.steps_saved"},
        {"bypass_solves", "campaign.bypass_solves"},
        {"device_stamp_skips", "campaign.device_stamp_skips"},
        {"symbolic_cache_hits", "campaign.symbolic_cache_hits"},
    };
    obs::Registry& reg = obs::Registry::global();
    for (const auto& [arg_key, counter_name] : arg_to_counter) {
        std::uint64_t sum = 0;
        for (const obs::TraceEvent& ev : t.fault_spans) {
            const obs::TraceArg* a = find_arg(ev, arg_key.c_str());
            ASSERT_NE(a, nullptr) << arg_key;
            sum += static_cast<std::uint64_t>(a->i);
        }
        EXPECT_EQ(reg.counter(counter_name).value(), sum) << counter_name;
    }
    EXPECT_EQ(reg.counter("campaign.retired").value(),
              t.fault_spans.size());
    EXPECT_EQ(reg.counter("scheduler.jobs").value(), t.res.batch.classes);

    // The event stream saw every retirement: one fault_retired per fault
    // in the full (fanned-out) result set, plus start/end markers.
    EXPECT_EQ(t.events->count_of("fault_retired"), t.res.results.size());
    EXPECT_EQ(t.events->count_of("campaign_start"), 1u);
    EXPECT_EQ(t.events->count_of("campaign_end"), 1u);
}

TEST(ObsCampaign, TracingNeverChangesVerdicts) {
    ObsGuard g;
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    anafault::CampaignOptions opt = e.config.campaign;

    const auto off = anafault::run_campaign(e.sim_circuit, lift_res.faults,
                                            opt);
    obs::enable_metrics(true);
    obs::enable_tracing(true);
    obs::attach_event_sink(std::make_shared<obs::NullSink>());
    const auto on = anafault::run_campaign(e.sim_circuit, lift_res.faults,
                                           opt);
    ObsGuard::clear();

    ASSERT_EQ(off.results.size(), on.results.size());
    for (std::size_t i = 0; i < off.results.size(); ++i) {
        EXPECT_EQ(off.results[i].fault_id, on.results[i].fault_id);
        EXPECT_EQ(off.results[i].simulated, on.results[i].simulated);
        ASSERT_EQ(off.results[i].detect_time.has_value(),
                  on.results[i].detect_time.has_value());
        if (off.results[i].detect_time)
            EXPECT_EQ(*off.results[i].detect_time,
                      *on.results[i].detect_time);
    }
}

// ---------------------------------------------------------------------------
// Resume split: resumed vs carried_from_store

TEST(ObsCampaign, ResumeSplitsCarriedFromStore) {
    ObsGuard g;
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    anafault::CampaignOptions opt = e.config.campaign;
    opt.result_store = temp_path("resume_split");
    std::filesystem::remove(opt.result_store);

    // Cold run fills the store with carried=false records.
    const auto cold = anafault::run_campaign(e.sim_circuit, lift_res.faults,
                                             opt);
    EXPECT_EQ(cold.batch.resumed, 0u);
    EXPECT_EQ(cold.batch.carried_from_store, 0u);

    // Plain resume: every store record counts as `resumed`.
    opt.resume = true;
    const auto warm = anafault::run_campaign(e.sim_circuit, lift_res.faults,
                                             opt);
    EXPECT_EQ(warm.batch.resumed, cold.batch.scheduled);
    EXPECT_EQ(warm.batch.carried_from_store, 0u);
    EXPECT_EQ(warm.batch.scheduled, 0u);

    // Rewrite the store with every record flagged carried (as the
    // cross-revision engine's seed does): the same resume now reports
    // them under carried_from_store, not resumed.
    const auto snap = batch::load_store(opt.result_store);
    ASSERT_TRUE(snap.has_value());
    const std::string carried_path = temp_path("resume_split_carried");
    std::filesystem::remove(carried_path);
    {
        batch::ResultStore store(
            carried_path,
            anafault::campaign_manifest(e.sim_circuit, lift_res.faults, opt));
        for (batch::FaultSimResult r : snap->records) {
            r.carried = true;
            store.append(r);
        }
    }
    opt.result_store = carried_path;
    const auto carried = anafault::run_campaign(e.sim_circuit,
                                                lift_res.faults, opt);
    EXPECT_EQ(carried.batch.carried_from_store, cold.batch.scheduled);
    EXPECT_EQ(carried.batch.resumed, 0u);
    EXPECT_EQ(carried.batch.scheduled, 0u);

    // Verdicts are identical however the records were loaded.
    ASSERT_EQ(carried.results.size(), cold.results.size());
    for (std::size_t i = 0; i < cold.results.size(); ++i)
        EXPECT_EQ(cold.results[i].detect_time.has_value(),
                  carried.results[i].detect_time.has_value());

    std::filesystem::remove(temp_path("resume_split"));
    std::filesystem::remove(carried_path);
}
