// Multi-process campaign fabric tests: fault-range partitioning, store
// shard naming and merge (idempotent, torn-tolerant, strict about
// manifest identity), the worker-side heartbeat channel, and the
// supervision loop itself -- run-to-completion, respawn after a death,
// heartbeat-timeout SIGKILL, poison-fault conviction, per-range
// abandonment, and the `fabric.heartbeat` / `worker.spawn` failpoints.
// Supervisor tests drive /bin/sh one-liners as workers; the real
// campaign-runner integration is crash_resume_smoke's `fabric` mode.

#include "batch/fabric.h"
#include "batch/result_store.h"
#include "batch/shard.h"
#include "geom/base.h"
#include "robust/failpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace catlift;
using batch::FaultRange;
using batch::FaultSimResult;

namespace {

std::string temp_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("catlift_fabric_" + tag + ".store"))
        .string();
}

void remove_with_shards(const std::string& base) {
    std::error_code ec;
    std::filesystem::remove(base, ec);
    for (const std::string& s : batch::list_shards(base))
        std::filesystem::remove(s, ec);
}

FaultSimResult make_result(int id) {
    FaultSimResult r;
    r.fault_id = id;
    r.description = "#" + std::to_string(id);
    r.probability = 1e-3 * id;
    r.simulated = true;
    r.detect_time = 1e-6 * id;
    r.metric = 0.5 * id;
    return r;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Every test arms and disarms its own failpoints; the global table must
/// never leak into the next test.
class FabricFailpoints : public ::testing::Test {
protected:
    void SetUp() override { robust::disarm_all(); }
    void TearDown() override { robust::disarm_all(); }
};

} // namespace

// ---------------------------------------------------------------------------
// Fault-range partitioning

TEST(PartitionFaultRanges, NearEqualContiguousCover) {
    std::vector<int> ids(10);
    std::iota(ids.begin(), ids.end(), 1);  // 1..10
    const std::vector<FaultRange> r = batch::partition_fault_ranges(ids, 4);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0].count, 3u);  // 10 = 3 + 3 + 2 + 2
    EXPECT_EQ(r[1].count, 3u);
    EXPECT_EQ(r[2].count, 2u);
    EXPECT_EQ(r[3].count, 2u);
    EXPECT_EQ(r.front().lo, 1);
    EXPECT_EQ(r.back().hi, 10);
    for (std::size_t k = 1; k < r.size(); ++k)
        EXPECT_LT(r[k - 1].hi, r[k].lo);  // disjoint, ascending
}

TEST(PartitionFaultRanges, FewerIdsThanWorkers) {
    const std::vector<FaultRange> r =
        batch::partition_fault_ranges({7, 3, 9}, 8);
    ASSERT_EQ(r.size(), 3u);  // never more ranges than ids
    EXPECT_EQ(r[0].lo, 3);    // input order does not matter
    EXPECT_EQ(r[2].hi, 9);
    EXPECT_TRUE(batch::partition_fault_ranges({}, 4).empty());
    EXPECT_THROW(batch::partition_fault_ranges({1}, 0), Error);
}

// ---------------------------------------------------------------------------
// Shard naming and discovery

TEST(Shards, PathAndListing) {
    const std::string base = temp_path("list");
    remove_with_shards(base);
    EXPECT_EQ(batch::shard_path(base, 2), base + ".shard-2");
    EXPECT_TRUE(batch::list_shards(base).empty());

    // Create out of order, plus decoys that must not match.
    for (const char* suffix : {".shard-10", ".shard-0", ".shard-2"})
        std::ofstream(base + suffix) << "x";
    std::ofstream(base + ".shard-x") << "x";
    std::ofstream(base + ".merge-tmp") << "x";
    const std::vector<std::string> got = batch::list_shards(base);
    ASSERT_EQ(got.size(), 3u);  // numeric order, not lexicographic
    EXPECT_EQ(got[0], base + ".shard-0");
    EXPECT_EQ(got[1], base + ".shard-2");
    EXPECT_EQ(got[2], base + ".shard-10");
    remove_with_shards(base);
    std::filesystem::remove(base + ".shard-x");
    std::filesystem::remove(base + ".merge-tmp");
}

// ---------------------------------------------------------------------------
// Shard merge

TEST(MergeShards, DedupesSortsAndIsIdempotent) {
    const std::string base = temp_path("merge");
    remove_with_shards(base);
    const std::uint64_t manifest = 0xABCDu;
    {
        batch::ResultStore s0(batch::shard_path(base, 0), manifest);
        s0.append(make_result(3));
        s0.append(make_result(1));
        batch::ResultStore s1(batch::shard_path(base, 1), manifest);
        s1.append(make_result(2));
        s1.append(make_result(3));  // duplicate of shard 0's record
    }
    const auto rep =
        batch::merge_shards(base, manifest, batch::list_shards(base));
    EXPECT_EQ(rep.shards_merged, 2u);
    EXPECT_EQ(rep.records_in, 4u);
    EXPECT_EQ(rep.records_kept, 3u);
    EXPECT_EQ(rep.duplicates, 1u);
    EXPECT_TRUE(rep.changed);

    batch::ResultStore canon(base, manifest);
    ASSERT_EQ(canon.loaded().size(), 3u);
    for (int i = 0; i < 3; ++i)  // sorted by fault id
        EXPECT_EQ(canon.loaded()[i].fault_id, i + 1);

    // Re-merging the same inputs is a byte-identical no-op.
    const std::string before = read_file(base);
    const auto rep2 =
        batch::merge_shards(base, manifest, batch::list_shards(base));
    EXPECT_FALSE(rep2.changed);
    EXPECT_EQ(rep2.records_kept, 3u);
    EXPECT_EQ(read_file(base), before);
    remove_with_shards(base);
}

TEST(MergeShards, ToleratesTornShardTail) {
    const std::string base = temp_path("torn");
    remove_with_shards(base);
    const std::uint64_t manifest = 0x17u;
    const std::string shard = batch::shard_path(base, 0);
    {
        batch::ResultStore s(shard, manifest);
        s.append(make_result(1));
        s.append(make_result(2));
    }
    // Tear the tail of the second record, as a worker SIGKILLed
    // mid-append leaves it.
    std::filesystem::resize_file(shard,
                                 std::filesystem::file_size(shard) - 4);
    const auto rep = batch::merge_shards(base, manifest, {shard});
    EXPECT_EQ(rep.records_kept, 1u);
    batch::ResultStore canon(base, manifest);
    ASSERT_EQ(canon.loaded().size(), 1u);
    EXPECT_EQ(canon.loaded()[0].fault_id, 1);
    remove_with_shards(base);
}

TEST(MergeShards, RejectsForeignManifestShard) {
    const std::string base = temp_path("foreign");
    remove_with_shards(base);
    const std::string shard = batch::shard_path(base, 0);
    {
        batch::ResultStore s(shard, 0x1111u);
        s.append(make_result(1));
    }
    EXPECT_THROW(batch::merge_shards(base, 0x2222u, {shard}), Error);
    EXPECT_FALSE(std::filesystem::exists(base));  // nothing written
    remove_with_shards(base);
}

TEST(MergeShards, ExistingCanonicalRecordWins) {
    const std::string base = temp_path("firstwins");
    remove_with_shards(base);
    const std::uint64_t manifest = 0x33u;
    {
        batch::ResultStore canon(base, manifest);
        canon.append(make_result(1));  // detect_time 1e-6
        batch::ResultStore s(batch::shard_path(base, 0), manifest);
        FaultSimResult later = make_result(1);
        later.detect_time = 9e-6;  // a re-simulation must not displace it
        s.append(later);
    }
    const auto rep =
        batch::merge_shards(base, manifest, batch::list_shards(base));
    EXPECT_EQ(rep.duplicates, 1u);
    batch::ResultStore canon(base, manifest);
    ASSERT_EQ(canon.loaded().size(), 1u);
    EXPECT_EQ(canon.loaded()[0].detect_time, 1e-6);
    remove_with_shards(base);
}

// ---------------------------------------------------------------------------
// Heartbeat channel and supervision loop (POSIX)

#if defined(__unix__) || defined(__APPLE__)

TEST(Heartbeat, EmitterWritesAtomic8ByteFrames) {
    int fds[2] = {-1, -1};
    ASSERT_EQ(::pipe(fds), 0);
    {
        // Interval long enough that the ticker never fires during the test;
        // the constructor's initial Alive beat plus the two explicit calls
        // are the whole stream.
        batch::HeartbeatEmitter hb(fds[1], 60.0);
        hb.fault_started(7);
        hb.fault_retired(7);
    }
    ::close(fds[1]);
    std::int32_t frames[16][2];
    const ssize_t n = ::read(fds[0], frames, sizeof frames);
    ::close(fds[0]);
    ASSERT_EQ(n, 24);  // 3 frames x 8 bytes, no partials
    EXPECT_EQ(frames[0][0], 0);   // Alive
    EXPECT_EQ(frames[0][1], -1);
    EXPECT_EQ(frames[1][0], 1);   // FaultStarted
    EXPECT_EQ(frames[1][1], 7);
    EXPECT_EQ(frames[2][0], 2);   // FaultRetired
    EXPECT_EQ(frames[2][1], 7);
}

namespace {

std::vector<int> some_ids() { return {1, 2, 3, 4, 5, 6}; }

batch::PoisonRecord plain_poison() {
    return [](int fault_id, int deaths, const std::string& retry_log) {
        FaultSimResult r;
        r.fault_id = fault_id;
        r.simulated = false;
        r.quarantined = true;
        r.attempts = static_cast<std::uint32_t>(deaths);
        r.error = "poison";
        r.retry_log = retry_log;
        return r;
    };
}

/// A WorkerCommand running `scripts[min(spawn_index, last)]` under
/// /bin/sh, for every slot.  Shell workers inherit fd 3 = the heartbeat
/// pipe, so `printf '...' >&3` writes beats.
batch::WorkerCommand sh_workers(std::vector<std::string> scripts) {
    return [scripts = std::move(scripts)](const batch::WorkerSlot& s) {
        const std::size_t i = std::min<std::size_t>(
            static_cast<std::size_t>(s.spawn_index), scripts.size() - 1);
        return std::vector<std::string>{"/bin/sh", "-c", scripts[i]};
    };
}

batch::FabricOptions fast_options(unsigned workers) {
    batch::FabricOptions fo;
    fo.workers = workers;
    fo.worker_timeout_s = 30.0;
    fo.backoff_base_s = 0.01;
    return fo;
}

// FaultStarted beat for fault 5, as shell bytes: int32 kind=1, id=5 LE.
const char* kStartFault5 = "printf '\\001\\000\\000\\000\\005\\000\\000\\000' >&3";

} // namespace

TEST(Fabric, RunsCleanWorkersToCompletion) {
    const std::string base = temp_path("clean");
    remove_with_shards(base);
    const auto rep = batch::run_fabric(some_ids(), 1u, base,
                                       sh_workers({"exit 0"}),
                                       plain_poison(), fast_options(2));
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.slots.size(), 2u);
    EXPECT_EQ(rep.spawns, 2u);
    EXPECT_EQ(rep.deaths, 0u);
    EXPECT_EQ(rep.poisoned, 0u);
    remove_with_shards(base);
}

TEST(Fabric, RespawnsAfterWorkerDeath) {
    const std::string base = temp_path("respawn");
    remove_with_shards(base);
    const auto rep = batch::run_fabric(some_ids(), 1u, base,
                                       sh_workers({"exit 1", "exit 0"}),
                                       plain_poison(), fast_options(2));
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.deaths, 2u);   // each slot's first spawn exits 1
    EXPECT_EQ(rep.spawns, 4u);   // ... and is respawned once
    EXPECT_EQ(rep.poisoned, 0u);
    remove_with_shards(base);
}

TEST(Fabric, SigkillsSilentWorkerOnHeartbeatTimeout) {
    const std::string base = temp_path("timeout");
    remove_with_shards(base);
    batch::FabricOptions fo = fast_options(1);
    fo.worker_timeout_s = 0.3;
    const auto rep = batch::run_fabric(some_ids(), 1u, base,
                                       sh_workers({"sleep 5", "exit 0"}),
                                       plain_poison(), fo);
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.timeouts, 1u);
    EXPECT_EQ(rep.deaths, 1u);
    EXPECT_EQ(rep.spawns, 2u);
    remove_with_shards(base);
}

TEST(Fabric, ConvictsFaultInFlightAtTwoConsecutiveDeaths) {
    const std::string base = temp_path("poison");
    remove_with_shards(base);
    const std::uint64_t manifest = 0x77u;
    const std::string die_on_5 = std::string(kStartFault5) + "; exit 1";
    const auto rep = batch::run_fabric(
        some_ids(), manifest, base,
        sh_workers({die_on_5, die_on_5, "exit 0"}), plain_poison(),
        fast_options(1));
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.deaths, 2u);
    ASSERT_EQ(rep.poisoned, 1u);
    ASSERT_EQ(rep.slots[0].poisoned.size(), 1u);
    EXPECT_EQ(rep.slots[0].poisoned[0], 5);

    // The conviction is durable: a `quarantined` record for fault 5 in the
    // slot's shard, under the campaign manifest, retry_log naming the
    // fault -- so the respawned worker's resume pass skips it.
    batch::ResultStore shard(batch::shard_path(base, 0), manifest);
    ASSERT_EQ(shard.loaded().size(), 1u);
    const FaultSimResult& q = shard.loaded()[0];
    EXPECT_EQ(q.fault_id, 5);
    EXPECT_TRUE(q.quarantined);
    EXPECT_FALSE(q.simulated);
    EXPECT_EQ(q.attempts, 2u);
    EXPECT_NE(q.retry_log.find("fault 5"), std::string::npos);
    remove_with_shards(base);
}

TEST(Fabric, DifferentCandidatesNeverConvict) {
    const std::string base = temp_path("nopoison");
    remove_with_shards(base);
    // First death with fault 5 in flight, second with fault 2: no fault
    // is in flight at two *consecutive* deaths, so nothing is quarantined.
    const char* start2 = "printf '\\001\\000\\000\\000\\002\\000\\000\\000' >&3";
    const auto rep = batch::run_fabric(
        some_ids(), 1u, base,
        sh_workers({std::string(kStartFault5) + "; exit 1",
                    std::string(start2) + "; exit 1", "exit 0"}),
        plain_poison(), fast_options(1));
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.deaths, 2u);
    EXPECT_EQ(rep.poisoned, 0u);
    EXPECT_FALSE(std::filesystem::exists(batch::shard_path(base, 0)));
    remove_with_shards(base);
}

TEST(Fabric, AbandonsRangeAfterMaxDeaths) {
    const std::string base = temp_path("abandon");
    remove_with_shards(base);
    batch::FabricOptions fo = fast_options(1);
    fo.max_deaths_per_range = 2;
    const auto rep = batch::run_fabric(some_ids(), 1u, base,
                                       sh_workers({"exit 1"}),
                                       plain_poison(), fo);
    EXPECT_FALSE(rep.completed);
    EXPECT_FALSE(rep.slots[0].completed);
    EXPECT_EQ(rep.deaths, 3u);  // the death *exceeding* max abandons
    remove_with_shards(base);
}

TEST_F(FabricFailpoints, TornHeartbeatsDriveTheTimeoutPath) {
    const std::string base = temp_path("fptorn");
    remove_with_shards(base);
    // The worker beats diligently, but every beat is lost in transit:
    // from the supervisor's seat that is indistinguishable from a wedged
    // worker, and the timeout SIGKILL must fire.
    robust::arm("fabric.heartbeat=torn");
    batch::FabricOptions fo = fast_options(1);
    fo.worker_timeout_s = 0.3;
    const std::string beat_loop =
        "while :; do printf '\\000\\000\\000\\000\\377\\377\\377\\377' >&3; "
        "sleep 0.05; done";
    const auto rep = batch::run_fabric(some_ids(), 1u, base,
                                       sh_workers({beat_loop, "exit 0"}),
                                       plain_poison(), fo);
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.timeouts, 1u);
    EXPECT_EQ(rep.deaths, 1u);
    remove_with_shards(base);
}

TEST_F(FabricFailpoints, SpawnFailureBacksOffAndRetries) {
    const std::string base = temp_path("fpspawn");
    remove_with_shards(base);
    robust::arm("worker.spawn=error@1+1");  // only the first launch fails
    const auto rep = batch::run_fabric(some_ids(), 1u, base,
                                       sh_workers({"exit 0"}),
                                       plain_poison(), fast_options(1));
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.spawn_failures, 1u);
    EXPECT_EQ(rep.spawns, 1u);
    EXPECT_EQ(rep.deaths, 0u);
    remove_with_shards(base);
}

#endif  // POSIX
