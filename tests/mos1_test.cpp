// MOS level-1 model evaluation: regions, symmetry, PMOS reflection,
// derivative consistency.

#include "spice/mos1.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift::spice;
using catlift::netlist::MosModel;

namespace {

MosModel nmos() {
    MosModel m;
    m.name = "nm";
    m.is_nmos = true;
    m.vto = 0.8;
    m.kp = 50e-6;
    m.lambda = 0.02;
    return m;
}

MosModel pmos() {
    MosModel m = nmos();
    m.name = "pm";
    m.is_nmos = false;
    m.vto = -0.8;
    m.kp = 20e-6;
    return m;
}

constexpr double W = 10e-6, L = 2e-6;

} // namespace

TEST(Mos1, CutoffBelowThreshold) {
    const auto p = mos1_eval_normalized(nmos(), W, L, 0.5, 3.0);
    EXPECT_EQ(p.region, 0);
    EXPECT_DOUBLE_EQ(p.id, 0.0);
    EXPECT_DOUBLE_EQ(p.gm, 0.0);
}

TEST(Mos1, SaturationCurrentMatchesHandCalc) {
    // id = 0.5*kp*(W/L)*(vgs-vt)^2*(1+lambda*vds)
    const double vgs = 2.0, vds = 3.0;
    const auto p = mos1_eval_normalized(nmos(), W, L, vgs, vds);
    EXPECT_EQ(p.region, 2);
    const double expect =
        0.5 * 50e-6 * (W / L) * (vgs - 0.8) * (vgs - 0.8) * (1 + 0.02 * vds);
    EXPECT_NEAR(p.id, expect, 1e-12);
}

TEST(Mos1, TriodeCurrentMatchesHandCalc) {
    const double vgs = 3.0, vds = 0.5;  // vov = 2.2 > vds
    const auto p = mos1_eval_normalized(nmos(), W, L, vgs, vds);
    EXPECT_EQ(p.region, 1);
    const double expect = 50e-6 * (W / L) * ((vgs - 0.8) * vds - 0.5 * vds * vds) *
                          (1 + 0.02 * vds);
    EXPECT_NEAR(p.id, expect, 1e-12);
}

TEST(Mos1, ContinuousAcrossTriodeSatBoundary) {
    const double vgs = 2.0;
    const double vov = vgs - 0.8;
    const auto lo = mos1_eval_normalized(nmos(), W, L, vgs, vov - 1e-9);
    const auto hi = mos1_eval_normalized(nmos(), W, L, vgs, vov + 1e-9);
    EXPECT_NEAR(lo.id, hi.id, 1e-9 * std::max(1.0, lo.id));
    EXPECT_NEAR(lo.gm, hi.gm, 1e-6);
}

TEST(Mos1, RejectsNegativeVds) {
    EXPECT_THROW(mos1_eval_normalized(nmos(), W, L, 1.0, -0.1),
                 catlift::Error);
}

TEST(Mos1, TerminalSymmetryUnderSwap) {
    // Swapping drain and source voltages must exactly negate the terminal
    // drain current.
    const double i_fwd = mos1_drain_current(nmos(), W, L, 3.0, 2.5, 0.0);
    const double i_rev = mos1_drain_current(nmos(), W, L, 0.0, 2.5, 3.0);
    EXPECT_NEAR(i_fwd, -i_rev, 1e-15);
    EXPECT_GT(i_fwd, 0.0);
}

TEST(Mos1, PmosMirrorsNmos) {
    // A PMOS with source at 5V, gate at 3V, drain at 0V conducts with
    // current flowing out of the drain terminal (negative drain current by
    // the into-drain convention).
    const double i = mos1_drain_current(pmos(), W, L, 0.0, 3.0, 5.0);
    EXPECT_LT(i, 0.0);
    // Magnitude equals the reflected NMOS current scaled by kp ratio.
    MosModel n = nmos();
    n.kp = 20e-6;
    const double i_n = mos1_drain_current(n, W, L, 5.0, 2.0, 0.0);
    EXPECT_NEAR(-i, i_n, 1e-12);
}

TEST(Mos1, PmosOffWhenGateHigh) {
    const double i = mos1_drain_current(pmos(), W, L, 0.0, 5.0, 5.0);
    EXPECT_DOUBLE_EQ(i, 0.0);
}

TEST(Mos1, GateCapsScaleWithGeometry) {
    MosModel m = nmos();
    const auto c1 = mos1_caps(m, 10e-6, 2e-6);
    const auto c2 = mos1_caps(m, 20e-6, 2e-6);
    EXPECT_GT(c1.cgs, 0.0);
    EXPECT_NEAR(c2.cgs / c1.cgs, 2.0, 1e-6);  // ~linear in W
    EXPECT_DOUBLE_EQ(c1.cgs, c1.cgd);         // constant split
}

// Property sweep: gm and gds must match finite differences of id across a
// grid of bias points (derivative consistency is what Newton-Raphson needs).
struct Bias {
    double vgs;
    double vds;
};

class Mos1Derivatives : public ::testing::TestWithParam<Bias> {};

TEST_P(Mos1Derivatives, MatchFiniteDifference) {
    const auto [vgs, vds] = GetParam();
    const MosModel m = nmos();
    const double h = 1e-7;
    const auto p = mos1_eval_normalized(m, W, L, vgs, vds);
    const auto pg = mos1_eval_normalized(m, W, L, vgs + h, vds);
    const auto pd = mos1_eval_normalized(m, W, L, vgs, vds + h);
    const double gm_fd = (pg.id - p.id) / h;
    const double gds_fd = (pd.id - p.id) / h;
    EXPECT_NEAR(p.gm, gm_fd, 1e-3 * std::max(1e-9, std::fabs(gm_fd)) + 1e-9);
    EXPECT_NEAR(p.gds, gds_fd, 1e-3 * std::max(1e-9, std::fabs(gds_fd)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, Mos1Derivatives,
    ::testing::Values(Bias{1.0, 0.1}, Bias{1.5, 0.2}, Bias{2.0, 0.5},
                      Bias{2.5, 1.0}, Bias{3.0, 2.0}, Bias{2.0, 5.0},
                      Bias{5.0, 0.05}, Bias{1.2, 3.0}, Bias{4.0, 4.0}));
