// Extension features: DC fault screen, stimulus refinement (the paper's
// stated future work), and the layout renderer.

#include "anafault/dc_campaign.h"
#include "anafault/stimulus.h"
#include "circuits/vco.h"
#include "layout/cellgen.h"
#include "layout/render.h"
#include "lift/extract_faults.h"

#include <gtest/gtest.h>

using namespace catlift;
using namespace catlift::anafault;

namespace {

netlist::Circuit divider_fixture() {
    netlist::Circuit c;
    c.title = "divider";
    c.add_vsource("V1", "in", "0", netlist::SourceSpec::make_dc(10.0));
    c.add_resistor("R1", "in", "mid", 1e3);
    c.add_resistor("R2", "mid", "0", 1e3);
    c.tran = netlist::TranSpec{1e-8, 1e-6, 0.0};
    return c;
}

lift::FaultList divider_faults() {
    lift::FaultList fl;
    lift::Fault s;  // mid shorted to ground: 5V -> 0V, detectable in DC
    s.id = 1;
    s.kind = lift::FaultKind::LocalShort;
    s.mechanism = "m";
    s.probability = 1e-8;
    s.net_a = "mid";
    s.net_b = "0";
    fl.faults.push_back(s);
    lift::Fault o;  // R2 open: mid floats to ~10V
    o.id = 2;
    o.kind = lift::FaultKind::LineOpen;
    o.mechanism = "m";
    o.probability = 1e-8;
    o.net = "mid";
    o.group_b = {{"R2", 0}};
    fl.faults.push_back(o);
    return fl;
}

} // namespace

// ---------------------------------------------------------------------------
// DC screen

TEST(DcScreen, DetectsStaticDeviations) {
    DcScreenOptions opt;
    opt.observed = {"mid"};
    auto res = run_dc_screen(divider_fixture(), divider_faults(), opt);
    ASSERT_EQ(res.results.size(), 2u);
    EXPECT_NEAR(res.nominal_op.at("mid"), 5.0, 1e-6);
    EXPECT_TRUE(res.results[0].detected);  // 5V -> 0V
    EXPECT_TRUE(res.results[1].detected);  // 5V -> ~10V
    EXPECT_DOUBLE_EQ(res.coverage(), 100.0);
    EXPECT_TRUE(res.undetected_ids().empty());
}

TEST(DcScreen, ToleranceGatesDetection) {
    DcScreenOptions opt;
    opt.observed = {"mid"};
    opt.v_tol = 20.0;  // nothing exceeds 20 V
    auto res = run_dc_screen(divider_fixture(), divider_faults(), opt);
    EXPECT_DOUBLE_EQ(res.coverage(), 0.0);
    EXPECT_EQ(res.undetected_ids().size(), 2u);
}

TEST(DcScreen, MissingObservedNodeRejected) {
    DcScreenOptions opt;
    opt.observed = {"nosuch"};
    EXPECT_THROW(run_dc_screen(divider_fixture(), divider_faults(), opt),
                 Error);
}

TEST(DcScreen, VcoStaticFaultsVsDynamicFaults) {
    // On the VCO: a supply-to-bias bridge shifts the operating point (DC
    // detectable), while the frequency-shift bridge 5-6 looks DC-clean --
    // the motivation for transient fault simulation.
    lift::FaultList fl;
    lift::Fault kill;
    kill.id = 1;
    kill.kind = lift::FaultKind::GlobalShort;
    kill.mechanism = "m";
    kill.probability = 1e-8;
    kill.net_a = "1";
    kill.net_b = "3";
    fl.faults.push_back(kill);
    lift::Fault freq;
    freq.id = 2;
    freq.kind = lift::FaultKind::LocalShort;
    freq.mechanism = "m";
    freq.probability = 1e-8;
    freq.net_a = "5";
    freq.net_b = "6";
    fl.faults.push_back(freq);

    // DC analysis evaluates sources at their DC values; the VCO deck uses
    // a PULSE supply (activation at t=0), so power it statically first.
    netlist::Circuit ckt = circuits::build_vco();
    ckt.device("VDD").source = netlist::SourceSpec::make_dc(5.0);

    DcScreenOptions opt;
    opt.observed = {"3"};  // the mirror bias node
    opt.v_tol = 0.5;       // bias shifts are sub-supply-sized
    auto res = run_dc_screen(ckt, fl, opt);
    ASSERT_EQ(res.results.size(), 2u);
    EXPECT_TRUE(res.results[0].detected) << "bias shift is static";
    EXPECT_FALSE(res.results[1].detected) << "frequency shift is dynamic";
}

// ---------------------------------------------------------------------------
// Stimulus refinement

TEST(Stimulus, CandidatesAreWellFormed) {
    const auto cands = vco_stimulus_candidates();
    ASSERT_EQ(cands.size(), 4u);
    for (const auto& c : cands) {
        EXPECT_EQ(c.source, "VCTRL");
        EXPECT_GT(c.tran.tstop, 0.0);
        EXPECT_FALSE(c.name.empty());
    }
}

TEST(Stimulus, RefinementPicksCoverageThenTime) {
    // Small synthetic refinement on the divider: two "stimuli" differing
    // only in test length; equal coverage -> the shorter test wins.
    netlist::Circuit c = divider_fixture();
    std::vector<StimulusCandidate> cands;
    for (double tstop : {2e-6, 1e-6}) {
        StimulusCandidate s;
        s.name = "dc10-" + std::to_string(tstop);
        s.source = "V1";
        s.spec = netlist::SourceSpec::make_dc(10.0);
        s.tran = netlist::TranSpec{1e-8, tstop, 0.0};
        cands.push_back(std::move(s));
    }
    CampaignOptions opt;
    opt.detection.observed = {"mid"};
    const auto res = refine_stimulus(c, divider_faults(), cands, opt);
    ASSERT_EQ(res.entries.size(), 2u);
    EXPECT_DOUBLE_EQ(res.entries[0].coverage, res.entries[1].coverage);
    EXPECT_EQ(res.best, 1u);  // shorter test, same coverage
    EXPECT_LE(res.winner().test_time, 1e-6);
}

TEST(Stimulus, RefinementPrefersHigherCoverage) {
    // A stimulus that is off (0 V) cannot detect anything; a live one can.
    netlist::Circuit c = divider_fixture();
    std::vector<StimulusCandidate> cands;
    StimulusCandidate dead;
    dead.name = "off";
    dead.source = "V1";
    dead.spec = netlist::SourceSpec::make_dc(0.0);
    dead.tran = netlist::TranSpec{1e-8, 1e-6, 0.0};
    cands.push_back(dead);
    StimulusCandidate live;
    live.name = "on";
    live.source = "V1";
    live.spec = netlist::SourceSpec::make_dc(10.0);
    live.tran = netlist::TranSpec{1e-8, 1e-6, 0.0};
    cands.push_back(live);

    CampaignOptions opt;
    opt.detection.observed = {"mid"};
    const auto res = refine_stimulus(c, divider_faults(), cands, opt);
    EXPECT_EQ(res.best, 1u);
    EXPECT_GT(res.winner().coverage,
              res.entries[0].coverage);
}

TEST(Stimulus, EmptyCandidateListRejected) {
    EXPECT_THROW(refine_stimulus(divider_fixture(), divider_faults(), {},
                                 CampaignOptions{}),
                 Error);
}

// ---------------------------------------------------------------------------
// Layout renderer

TEST(Render, VcoLayoutRenders) {
    circuits::VcoOptions o;
    o.with_sources = false;
    const auto lo = layout::generate_cell_layout(
        circuits::build_vco(o), layout::vco_cellgen_options());
    const std::string art = layout::ascii_render(lo);
    EXPECT_NE(art.find('='), std::string::npos);  // metal2 tracks
    EXPECT_NE(art.find('n'), std::string::npos);  // NMOS diffusion
    EXPECT_NE(art.find('p'), std::string::npos);  // PMOS diffusion
    EXPECT_NE(art.find('C'), std::string::npos);  // capacitor module
    EXPECT_NE(art.find("legend"), std::string::npos);
    // Roughly the right amount of output.
    EXPECT_GT(art.size(), 800u);
}

TEST(Render, OptionsRespected) {
    layout::Layout lo;
    lo.name = "one";
    lo.add(layout::Layer::Metal1, geom::Rect::um(0, 0, 50, 10));
    layout::RenderOptions opt;
    opt.width = 40;
    opt.legend = false;
    const std::string art = layout::ascii_render(lo, opt);
    EXPECT_EQ(art.find("legend"), std::string::npos);
    EXPECT_THROW(layout::ascii_render(lo, {2, false}), Error);
}
