// The 26-transistor VCO demonstrator: structure, oscillation, control
// characteristic and the paper's fault behaviour classes.

#include "circuits/vco.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <gtest/gtest.h>

using namespace catlift;
using namespace catlift::circuits;
using namespace catlift::netlist;
using namespace catlift::spice;

namespace {

Waveforms simulate(Circuit ckt) {
    SimOptions opt;
    opt.uic = true;
    Simulator sim(ckt, opt);
    return sim.tran();
}

int late_edges(const Waveforms& wf, double after = 2e-6) {
    int n = 0;
    for (double t : crossings(wf, kVcoOutput, 2.5, +1))
        if (t > after) ++n;
    return n;
}

} // namespace

TEST(Vco, StructureMatchesPaperArithmetic) {
    Circuit c = build_vco();
    // 26 transistors, 1 capacitor.
    EXPECT_EQ(c.count(DeviceKind::Mosfet), 26u);
    EXPECT_EQ(c.count(DeviceKind::Capacitor), 1u);
    // Exactly 6 diode-connected (designed gate-drain short) devices.
    int diodes = 0;
    for (const Device& d : c.devices)
        if (d.kind == DeviceKind::Mosfet && d.drain() == d.gate()) ++diodes;
    EXPECT_EQ(diodes, 6);
    c.validate();
}

TEST(Vco, NetlistWithoutSourcesForLvs) {
    VcoOptions opt;
    opt.with_sources = false;
    Circuit c = build_vco(opt);
    EXPECT_EQ(c.count(DeviceKind::VSource), 0u);
    EXPECT_EQ(c.devices.size(), 27u);  // 26 M + 1 C
}

TEST(Vco, OscillatesFaultFree) {
    auto wf = simulate(build_vco());
    EXPECT_EQ(wf.points(), 401u);  // the paper's 400-step grid
    // Rail-to-rail square wave at the output.
    EXPECT_GT(swing(wf, kVcoOutput, 1e-6, 4e-6), 4.5);
    auto period = estimate_period(wf, kVcoOutput, 2.5, 1e-6, 4e-6);
    ASSERT_TRUE(period.has_value());
    EXPECT_GT(*period, 0.2e-6);
    EXPECT_LT(*period, 1.2e-6);
    // The capacitor node ramps inside the Schmitt hysteresis band.
    EXPECT_GT(swing(wf, kVcoCapNode, 1e-6, 4e-6), 0.8);
    EXPECT_LT(wf.max_of(kVcoCapNode), 4.5);
}

TEST(Vco, FrequencyFollowsControlVoltage) {
    // It is a VCO: more control voltage -> more charge current -> higher
    // frequency.
    auto period_at = [&](double vc) {
        VcoOptions o;
        o.vctrl = vc;
        auto wf = simulate(build_vco(o));
        auto p = estimate_period(wf, kVcoOutput, 2.5, 1e-6, 4e-6);
        EXPECT_TRUE(p.has_value()) << "vctrl=" << vc;
        return p.value_or(1.0);
    };
    const double slow = period_at(2.2);
    const double fast = period_at(3.0);
    EXPECT_LT(fast, slow * 0.8);
}

TEST(Vco, BridgeChargeRailToCapChangesFrequency) {
    // The paper's #6 BRI n_ds_short 5->6: oscillation continues at a
    // different frequency (Fig. 4 middle trace).
    auto nominal = simulate(build_vco());
    auto pn = estimate_period(nominal, kVcoOutput, 2.5, 1e-6, 4e-6);

    Circuit faulty = build_vco();
    faulty.add_resistor("RSHORT", kVcoChargeRail, kVcoCapNode, 0.01);
    auto wf = simulate(std::move(faulty));
    EXPECT_GT(swing(wf, kVcoOutput, 1e-6, 4e-6), 4.5) << "still oscillates";
    auto pf = estimate_period(wf, kVcoOutput, 2.5, 1e-6, 4e-6);
    ASSERT_TRUE(pn.has_value());
    ASSERT_TRUE(pf.has_value());
    // Frequency visibly changed (>15%).
    EXPECT_GT(std::abs(*pf - *pn) / *pn, 0.15);
}

TEST(Vco, BridgeSupplyToMirrorGateKillsOscillation) {
    // The paper's #339-type metal1 bridge: constant output (Fig. 4 bottom).
    Circuit faulty = build_vco();
    faulty.add_resistor("RSHORT", "1", "3", 0.01);
    auto wf = simulate(std::move(faulty));
    EXPECT_LT(swing(wf, kVcoOutput, 2e-6, 4e-6), 0.5);
    EXPECT_EQ(late_edges(wf), 0);
}

TEST(Vco, BridgeSchmittOutputToGroundKillsOscillation) {
    Circuit faulty = build_vco();
    faulty.add_resistor("RSHORT", kVcoSchmittDrain, "0", 0.01);
    auto wf = simulate(std::move(faulty));
    EXPECT_LT(swing(wf, kVcoOutput, 2e-6, 4e-6), 0.5);
}

TEST(Vco, Fig6ResistorSeverityClasses) {
    // Fig. 6 phenomenon: the chosen shorting-resistor value dials the fault
    // from invisible to catastrophic at the same location (drain of M11).
    auto nominal = simulate(build_vco());
    const auto pn = estimate_period(nominal, kVcoOutput, 2.5, 1.5e-6, 4e-6);
    ASSERT_TRUE(pn.has_value());

    auto run_r = [&](double r) {
        Circuit c = build_vco();
        c.add_resistor("RSHORT", kVcoSchmittDrain, "0", r);
        return simulate(std::move(c));
    };

    // Large R: only slightly affected.
    {
        auto wf = run_r(1e6);
        auto p = estimate_period(wf, kVcoOutput, 2.5, 1.5e-6, 4e-6);
        ASSERT_TRUE(p.has_value());
        EXPECT_LT(std::abs(*p - *pn) / *pn, 0.05);
    }
    // Mid R: visible frequency shift, oscillation alive.
    {
        auto wf = run_r(3e4);
        auto p = estimate_period(wf, kVcoOutput, 2.5, 1.5e-6, 4e-6);
        ASSERT_TRUE(p.has_value());
        EXPECT_GT(std::abs(*p - *pn) / *pn, 0.15);
        EXPECT_GT(swing(wf, kVcoOutput, 2e-6, 4e-6), 4.0);
    }
    // Small R: oscillation stops.
    {
        auto wf = run_r(1.0);
        EXPECT_LT(swing(wf, kVcoOutput, 2e-6, 4e-6), 0.5);
        EXPECT_EQ(late_edges(wf), 0);
    }
}

TEST(Vco, SchmittFixtureShowsHysteresis) {
    Circuit c = build_schmitt_fixture();
    SimOptions opt;
    opt.uic = true;
    Simulator sim(c, opt);
    auto wf = sim.tran();
    // Input rises 0..5V over 0..2us, falls back over 2..4us.  Find the
    // output transitions: falling output on the way up (inverting), rising
    // output on the way down.
    auto in_window = [](const std::vector<double>& ts, double lo, double hi) {
        for (double t : ts)
            if (t > lo && t < hi) return t;
        return -1.0;
    };
    // Ignore the supply-activation edge near t=0: the up-ramp transition
    // lies in (0.2us, 2us), the down-ramp transition in (2us, 4us).
    const double t_up = in_window(crossings(wf, "out", 2.5, -1), 0.2e-6, 2e-6);
    const double t_dn = in_window(crossings(wf, "out", 2.5, +1), 2e-6, 4e-6);
    ASSERT_GT(t_up, 0.0);
    ASSERT_GT(t_dn, 0.0);
    const double vdd = 5.0;
    const double vt_hi = vdd * t_up / 2e-6;         // input voltage then
    const double vt_lo = vdd * (4e-6 - t_dn) / 2e-6;
    EXPECT_GT(vt_hi, 2.5);   // upper threshold above midpoint
    EXPECT_LT(vt_lo, 2.5);   // lower threshold below midpoint
    EXPECT_GT(vt_hi - vt_lo, 0.6) << "hysteresis window too small";
}

TEST(Vco, InverterFixtureInverts) {
    Circuit c = build_inverter();
    Simulator sim(c);
    auto op = sim.dc_op();
    ASSERT_TRUE(op.converged);
    EXPECT_GT(op.voltages.at("out"), 4.5);
}
