// Dense LU solver tests.

#include "spice/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

using catlift::spice::LuSolver;
using catlift::spice::Matrix;

TEST(Matrix, SolveIdentity) {
    Matrix a(3);
    for (std::size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
    LuSolver lu;
    ASSERT_TRUE(lu.factor(a));
    auto x = lu.solve({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(x[0], 1.0);
    EXPECT_DOUBLE_EQ(x[1], 2.0);
    EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Matrix, SolveKnownSystem) {
    // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
    Matrix a(2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    LuSolver lu;
    ASSERT_TRUE(lu.factor(a));
    auto x = lu.solve({5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, PivotingHandlesZeroDiagonal) {
    // Leading zero on the diagonal forces a row swap.
    Matrix a(2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    LuSolver lu;
    ASSERT_TRUE(lu.factor(a));
    auto x = lu.solve({3.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SingularDetected) {
    Matrix a(2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    LuSolver lu;
    EXPECT_FALSE(lu.factor(a));
}

TEST(Matrix, SolveWithoutFactorThrows) {
    LuSolver lu;
    EXPECT_THROW(lu.solve({1.0}), catlift::Error);
}

TEST(Matrix, ResidualSmallOnRandomSystems) {
    // Property: ||Ax - b|| is tiny for a batch of pseudo-random systems.
    std::uint64_t s = 12345;
    auto rnd = [&]() {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(static_cast<std::int64_t>(s >> 11)) /
               static_cast<double>(1ll << 52) - 1.0;
    };
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 8;
        Matrix a(n);
        std::vector<double> b(n);
        for (std::size_t i = 0; i < n; ++i) {
            b[i] = rnd() * 10;
            for (std::size_t j = 0; j < n; ++j) a(i, j) = rnd();
            a(i, i) += 4.0;  // diagonally dominant -> well conditioned
        }
        LuSolver lu;
        ASSERT_TRUE(lu.factor(a));
        const auto x = lu.solve(b);
        for (std::size_t i = 0; i < n; ++i) {
            double r = -b[i];
            for (std::size_t j = 0; j < n; ++j) r += a(i, j) * x[j];
            EXPECT_LT(std::fabs(r), 1e-10);
        }
    }
}
