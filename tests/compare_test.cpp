// LVS-core tests: structural netlist comparison under renaming, symmetry
// and perturbation.

#include "netlist/compare.h"
#include "netlist/parser.h"

#include <gtest/gtest.h>

using namespace catlift::netlist;

namespace {

Circuit inverter(const std::string& out, const std::string& in,
                 const std::string& vdd) {
    Circuit c;
    MosModel n;
    n.name = "nm";
    n.is_nmos = true;
    MosModel p;
    p.name = "pm";
    p.is_nmos = false;
    p.vto = -0.8;
    p.kp = 20e-6;
    c.add_model(n);
    c.add_model(p);
    c.add_vsource("Vdd", vdd, "0", SourceSpec::make_dc(5));
    c.add_mosfet("M1", out, in, "0", "0", "nm", 10e-6, 2e-6);
    c.add_mosfet("M2", out, in, vdd, vdd, "pm", 20e-6, 2e-6);
    return c;
}

} // namespace

TEST(Compare, IdenticalCircuitsMatch) {
    Circuit a = inverter("out", "in", "vdd");
    auto r = compare_netlists(a, a);
    EXPECT_TRUE(r.equivalent) << (r.diffs.empty() ? "" : r.diffs[0]);
}

TEST(Compare, NetRenamingIsInvisible) {
    Circuit a = inverter("out", "in", "vdd");
    Circuit b = inverter("n17", "n3", "pwr");
    auto r = compare_netlists(a, b);
    EXPECT_TRUE(r.equivalent);
    // The discovered correspondence should map the unique nets.
    EXPECT_EQ(r.net_map.at("out"), "n17");
    EXPECT_EQ(r.net_map.at("in"), "n3");
    EXPECT_EQ(r.net_map.at("vdd"), "pwr");
}

TEST(Compare, DrainSourceSwapIsEquivalent) {
    Circuit a = inverter("out", "in", "vdd");
    Circuit b = inverter("out", "in", "vdd");
    // Swap drain/source terminal order on the NMOS: electrically identical.
    auto& m1 = b.device("M1");
    std::swap(m1.nodes[Device::kDrain], m1.nodes[Device::kSource]);
    auto r = compare_netlists(a, b);
    EXPECT_TRUE(r.equivalent);
}

TEST(Compare, SizeChangeIsCaught) {
    Circuit a = inverter("out", "in", "vdd");
    Circuit b = inverter("out", "in", "vdd");
    b.device("M1").w = 40e-6;  // 4x wider
    auto r = compare_netlists(a, b);
    EXPECT_FALSE(r.equivalent);
    EXPECT_FALSE(r.diffs.empty());
}

TEST(Compare, MissingDeviceIsCaught) {
    Circuit a = inverter("out", "in", "vdd");
    Circuit b = inverter("out", "in", "vdd");
    b.remove_device("M2");
    auto r = compare_netlists(a, b);
    EXPECT_FALSE(r.equivalent);
}

TEST(Compare, RewiredTerminalIsCaught) {
    Circuit a = inverter("out", "in", "vdd");
    Circuit b = inverter("out", "in", "vdd");
    // Gate of M1 moved to vdd: structural change.
    b.device("M1").nodes[Device::kGate] = "vdd";
    auto r = compare_netlists(a, b);
    EXPECT_FALSE(r.equivalent);
}

TEST(Compare, ValueToleranceAcceptsSnapToGrid) {
    Circuit a = inverter("out", "in", "vdd");
    Circuit b = inverter("out", "in", "vdd");
    b.device("M1").w = 10.0001e-6;  // 10 ppm off: grid snapping noise
    auto r = compare_netlists(a, b, /*value_rel_tol=*/1e-2);
    EXPECT_TRUE(r.equivalent);
}

TEST(Compare, ParallelUnitsMatchAsMultiset) {
    // Two parallel diode-connected masters (the VCO uses this idiom).
    auto build = [](const char* n1, const char* n2) {
        Circuit c;
        MosModel n;
        n.name = "nm";
        c.add_model(n);
        c.add_isource("Ib", "b", "0", SourceSpec::make_dc(10e-6));
        c.add_mosfet(n1, "b", "b", "0", "0", "nm", 10e-6, 2e-6);
        c.add_mosfet(n2, "b", "b", "0", "0", "nm", 10e-6, 2e-6);
        return c;
    };
    auto r = compare_netlists(build("M1", "M2"), build("MA", "MB"));
    EXPECT_TRUE(r.equivalent);
}

TEST(Compare, DifferentTopologySameCounts) {
    // Same device inventory, different wiring: must NOT match.
    Circuit a;
    Circuit b;
    for (Circuit* c : {&a, &b}) {
        MosModel n;
        n.name = "nm";
        c->add_model(n);
    }
    // a: two stacked NMOS; b: two parallel NMOS.
    a.add_mosfet("M1", "x", "g", "m", "0", "nm", 10e-6, 2e-6);
    a.add_mosfet("M2", "m", "g", "0", "0", "nm", 10e-6, 2e-6);
    b.add_mosfet("M1", "x", "g", "0", "0", "nm", 10e-6, 2e-6);
    b.add_mosfet("M2", "x", "g", "0", "0", "nm", 10e-6, 2e-6);
    auto r = compare_netlists(a, b);
    EXPECT_FALSE(r.equivalent);
}
