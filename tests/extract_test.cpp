// xt::Extraction tests: hand-built micro-layouts with known netlists, then the
// full generated VCO layout (DRC clean, LVS clean).

#include "circuits/vco.h"
#include "extract/extractor.h"
#include "layout/cellgen.h"
#include "layout/drc.h"

#include <gtest/gtest.h>

using namespace catlift;
namespace xt = catlift::extract;
using namespace catlift::layout;
using geom::Rect;

namespace {

const Technology kTech = Technology::single_poly_double_metal();

/// Hand-drawn single NMOS with labelled terminals:
///   diffusion strip crossed by a vertical poly gate, metal1 pads+contacts.
Layout one_nmos(double w_um = 10.0) {
    Layout lo;
    lo.name = "one_nmos";
    // Diffusion: source | channel | drain.
    lo.add(Layer::NDiff, Rect::um(0, 0, 8, w_um), "M1:s");
    lo.add(Layer::NDiff, Rect::um(8, 0, 10, w_um), "M1:chan");
    lo.add(Layer::NDiff, Rect::um(10, 0, 18, w_um), "M1:d");
    // Vertical poly gate with overhang.
    lo.add(Layer::Poly, Rect::um(8, -2, 10, w_um + 2), "M1:g");
    // Contacts + metal1 pads.
    lo.add(Layer::Contact, Rect::um(2, 1, 4, 3), "M1:s");
    lo.add(Layer::Metal1, Rect::um(1, 0.5, 5, 3.5), "M1:s");
    lo.add(Layer::Contact, Rect::um(13, 1, 15, 3), "M1:d");
    lo.add(Layer::Metal1, Rect::um(12, 0.5, 16, 3.5), "M1:d");
    // Gate pad above.
    lo.add(Layer::Poly, Rect::um(7, w_um + 2, 11, w_um + 6), "M1:g");
    lo.add(Layer::Contact, Rect::um(8, w_um + 3, 10, w_um + 5), "M1:g");
    lo.add(Layer::Metal1, Rect::um(7.5, w_um + 2.5, 10.5, w_um + 5.5),
           "M1:g");
    lo.add_label(Layer::Metal1, {geom::from_um(2), geom::from_um(2)}, "s");
    lo.add_label(Layer::Metal1, {geom::from_um(14), geom::from_um(2)}, "d");
    lo.add_label(Layer::Metal1,
                 {geom::from_um(9), geom::from_um(w_um + 4)}, "g");
    return lo;
}

} // namespace

TEST(Extract, SingleNmosRecognised) {
    xt::Extraction ex = xt::extract(one_nmos(), kTech);
    ASSERT_EQ(ex.mosfets.size(), 1u);
    const xt::ExtractedMos& m = ex.mosfets[0];
    EXPECT_EQ(m.name, "M1");
    EXPECT_TRUE(m.is_nmos);
    EXPECT_NEAR(m.w, 10e-6, 1e-9);
    EXPECT_NEAR(m.l, 2e-6, 1e-9);
    EXPECT_EQ(ex.net_name(m.net_gate), "g");
    EXPECT_EQ(ex.net_name(m.net_source), "s");
    EXPECT_EQ(ex.net_name(m.net_drain), "d");
}

TEST(Extract, ChannelBreaksDiffusionConnectivity) {
    xt::Extraction ex = xt::extract(one_nmos(), kTech);
    // Source and drain are distinct nets even though the drawn diffusion
    // rectangles abut the channel rectangle.
    const xt::ExtractedMos& m = ex.mosfets[0];
    EXPECT_NE(m.net_source, m.net_drain);
    EXPECT_NE(m.net_gate, m.net_source);
}

TEST(Extract, ExtractedWTracksGeometry) {
    for (double w : {4.0, 12.0, 37.5}) {
        xt::Extraction ex = xt::extract(one_nmos(w), kTech);
        ASSERT_EQ(ex.mosfets.size(), 1u);
        EXPECT_NEAR(ex.mosfets[0].w, w * 1e-6, 1e-9) << w;
    }
}

TEST(Extract, ConflictingLabelsRejected) {
    Layout lo = one_nmos();
    lo.add_label(Layer::Metal1, {geom::from_um(3), geom::from_um(1)},
                 "other");  // same pad as label "s"
    EXPECT_THROW(xt::extract(lo, kTech), Error);
}

TEST(Extract, DanglingLabelRejected) {
    Layout lo = one_nmos();
    lo.add_label(Layer::Metal2, {geom::from_um(500), geom::from_um(500)},
                 "nowhere");
    EXPECT_THROW(xt::extract(lo, kTech), Error);
}

TEST(Extract, FloatingContactRejected) {
    Layout lo = one_nmos();
    lo.add(Layer::Contact, Rect::um(100, 100, 102, 102), "stray");
    EXPECT_THROW(xt::extract(lo, kTech), Error);
}

TEST(Extract, CutClustersGroupRedundantContacts) {
    Layout lo = one_nmos();
    // Add a second (redundant) source contact under the same pad.
    lo.add(Layer::Contact, Rect::um(2, 5, 4, 7), "M1:s");
    // Grow the pad so it covers both.
    lo.add(Layer::Metal1, Rect::um(1, 3.5, 5, 7.5), "M1:s");
    xt::Extraction ex = xt::extract(lo, kTech);
    // Find the source cut cluster: it must contain two cuts.
    bool found = false;
    for (const xt::CutCluster& cc : ex.cuts) {
        if (cc.owner == "M1:s" && cc.layer == Layer::Contact) {
            EXPECT_EQ(cc.cuts.size(), 2u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Extract, ViaJoinsMetal1AndMetal2) {
    Layout lo;
    lo.name = "via";
    lo.add(Layer::Metal1, Rect::um(0, 0, 4, 20), "a");
    lo.add(Layer::Metal2, Rect::um(-10, 8, 10, 12), "a");
    lo.add(Layer::Via, Rect::um(1, 9, 3, 11), "a");
    lo.add_label(Layer::Metal1, {geom::from_um(1), geom::from_um(1)}, "x");
    xt::Extraction ex = xt::extract(lo, kTech);
    // One net spanning both layers.
    EXPECT_EQ(ex.net_names.size(), 1u);
    EXPECT_EQ(ex.net_names[0], "x");
}

// ---------------------------------------------------------------------------
// Generated VCO layout: the end-to-end substrate of the paper's experiment.

class VcoLayout : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        circuits::VcoOptions vopt;
        vopt.with_sources = false;
        schematic_ = new netlist::Circuit(circuits::build_vco(vopt));
        layout_ = new Layout(
            generate_cell_layout(*schematic_, vco_cellgen_options()));
    }
    static void TearDownTestSuite() {
        delete schematic_;
        delete layout_;
        schematic_ = nullptr;
        layout_ = nullptr;
    }
    static netlist::Circuit* schematic_;
    static Layout* layout_;
};

netlist::Circuit* VcoLayout::schematic_ = nullptr;
Layout* VcoLayout::layout_ = nullptr;

TEST_F(VcoLayout, GeneratorEmitsAllDevices) {
    // 26 channels + gates.
    int channels = 0;
    for (const Shape& s : layout_->shapes)
        if (s.owner.find(":chan") != std::string::npos) ++channels;
    EXPECT_EQ(channels, 26);
    EXPECT_EQ(layout_->on_layer(Layer::CapMark).size(), 1u);
}

TEST_F(VcoLayout, DrcClean) {
    auto v = run_drc(*layout_, kTech);
    for (const auto& viol : v) ADD_FAILURE() << viol.describe();
    EXPECT_TRUE(v.empty());
}

TEST_F(VcoLayout, ExtractionRecoversAllDevices) {
    xt::Extraction ex = xt::extract(*layout_, kTech);
    EXPECT_EQ(ex.mosfets.size(), 26u);
    ASSERT_EQ(ex.caps.size(), 1u);
    EXPECT_NEAR(ex.caps[0].value, 2e-12, 0.05e-12);
}

TEST_F(VcoLayout, ExtractedNetsCarrySchematicNames) {
    xt::Extraction ex = xt::extract(*layout_, kTech);
    for (const char* n : {"0", "1", "2", "5", "6", "9", "11", "15"})
        EXPECT_NO_THROW(ex.net_id(n)) << n;
}

TEST_F(VcoLayout, LvsClean) {
    auto r = xt::lvs(*layout_, kTech, *schematic_);
    for (const auto& d : r.diffs) ADD_FAILURE() << d;
    EXPECT_TRUE(r.equivalent);
}

TEST_F(VcoLayout, LvsCatchesSabotage) {
    // Damage the layout: delete one via pair's stub -> net split; LVS must
    // complain.  (Remove every shape owned by M11's drain route.)
    Layout damaged = *layout_;
    damaged.shapes.erase(
        std::remove_if(damaged.shapes.begin(), damaged.shapes.end(),
                       [](const Shape& s) { return s.owner == "M11:d"; }),
        damaged.shapes.end());
    bool caught = false;
    try {
        auto r = xt::lvs(damaged, kTech, *schematic_);
        caught = !r.equivalent;
    } catch (const Error&) {
        caught = true;  // extraction itself may reject the orphan gate
    }
    EXPECT_TRUE(caught);
}

TEST_F(VcoLayout, LayoutFileRoundTrip) {
    const std::string text = write_layout(*layout_);
    Layout back = read_layout_text(text);
    EXPECT_EQ(back.shapes.size(), layout_->shapes.size());
    xt::Extraction ex = xt::extract(back, kTech);
    EXPECT_EQ(ex.mosfets.size(), 26u);
}
