// Second-round utilities: rectangle subtraction, DC sweeps, fault-list
// diffing, per-class campaign reports and the inverter-chain fixture.

#include "anafault/campaign.h"
#include "anafault/report.h"
#include "circuits/vco.h"
#include "geom/rect.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <gtest/gtest.h>

using namespace catlift;

// ---------------------------------------------------------------------------
// geom::subtract

TEST(RectSubtract, DisjointKeepsOriginal) {
    const geom::Rect a(0, 0, 10, 10), b(20, 20, 30, 30);
    const auto parts = geom::subtract(a, b);
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], a);
}

TEST(RectSubtract, FullCoverLeavesNothing) {
    const geom::Rect a(2, 2, 8, 8), b(0, 0, 10, 10);
    EXPECT_TRUE(geom::subtract(a, b).empty());
}

TEST(RectSubtract, MiddleCutProducesFourParts) {
    const geom::Rect a(0, 0, 10, 10), hole(4, 4, 6, 6);
    const auto parts = geom::subtract(a, hole);
    EXPECT_EQ(parts.size(), 4u);
    double area = 0;
    for (const auto& p : parts) {
        area += p.area();
        EXPECT_FALSE(p.overlaps(hole));
        for (const auto& q : parts) {
            if (&p != &q) {
                EXPECT_FALSE(p.overlaps(q));
            }
        }
    }
    EXPECT_DOUBLE_EQ(area, 100.0 - 4.0);
}

TEST(RectSubtract, StripeCutSplitsInTwo) {
    // Vertical stripe through the middle: the extractor's channel cut.
    const geom::Rect diff(0, 0, 18, 10), gate(8, 0, 10, 10);
    const auto parts = geom::subtract(diff, gate);
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_FALSE(parts[0].touches(parts[1]) &&
                 parts[0].overlaps(parts[1]));
    EXPECT_DOUBLE_EQ(parts[0].area() + parts[1].area(), 160.0);
}

// ---------------------------------------------------------------------------
// spice::dc_sweep

TEST(DcSweep, InverterTransferCurve) {
    const netlist::Circuit inv = circuits::build_inverter();
    std::vector<double> levels;
    for (double v = 0.0; v <= 5.0; v += 0.25) levels.push_back(v);
    const auto sweep = spice::dc_sweep(inv, "VIN", levels);
    ASSERT_EQ(sweep.size(), levels.size());
    double prev = 6.0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        ASSERT_TRUE(sweep[i].converged) << levels[i];
        const double out = sweep[i].voltages.at("out");
        EXPECT_LE(out, prev + 1e-6);  // monotone falling
        prev = out;
    }
    EXPECT_GT(sweep.front().voltages.at("out"), 4.9);
    EXPECT_LT(sweep.back().voltages.at("out"), 0.2);
}

TEST(DcSweep, Validation) {
    const netlist::Circuit inv = circuits::build_inverter();
    EXPECT_THROW(spice::dc_sweep(inv, "VIN", {}), Error);
    EXPECT_THROW(spice::dc_sweep(inv, "MN", {1.0}), Error);
    EXPECT_THROW(spice::dc_sweep(inv, "nosuch", {1.0}), Error);
}

// ---------------------------------------------------------------------------
// lift::diff_faultlists

TEST(FaultListDiff, DetectsAddedRemovedAndShifted) {
    lift::FaultList a, b;
    auto bridge = [](const char* na, const char* nb, double p) {
        lift::Fault f;
        f.kind = lift::FaultKind::LocalShort;
        f.mechanism = "m";
        f.net_a = na;
        f.net_b = nb;
        f.probability = p;
        return f;
    };
    a.faults = {bridge("1", "2", 1e-8), bridge("2", "3", 2e-8),
                bridge("3", "4", 3e-8)};
    b.faults = {bridge("2", "1", 1e-8),      // same pair, swapped order
                bridge("2", "3", 4e-8),      // probability doubled
                bridge("5", "6", 9e-9)};     // new pair
    const auto d = lift::diff_faultlists(a, b);
    ASSERT_EQ(d.only_a.size(), 1u);
    EXPECT_EQ(d.only_a[0].net_a, "3");
    ASSERT_EQ(d.only_b.size(), 1u);
    EXPECT_EQ(d.only_b[0].net_a, "5");
    ASSERT_EQ(d.probability_changed.size(), 1u);
    EXPECT_EQ(d.probability_changed[0].first.net_a, "2");
}

TEST(FaultListDiff, ThresholdSweepIsMonotoneSubset) {
    // The GLRFM list at a stricter threshold must be a subset of the
    // looser list (no new faults, no probability changes).
    circuits::VcoOptions o;
    o.with_sources = false;
    const auto sch = circuits::build_vco(o);
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    const auto tech = layout::Technology::single_poly_double_metal();
    lift::LiftOptions loose, strict;
    loose.p_min = 5e-9;
    strict.p_min = 5e-8;
    const auto fl_loose = lift::extract_faults(lo, tech, loose).faults;
    const auto fl_strict = lift::extract_faults(lo, tech, strict).faults;
    const auto d = lift::diff_faultlists(fl_strict, fl_loose);
    EXPECT_TRUE(d.only_a.empty());          // strict adds nothing
    EXPECT_FALSE(d.only_b.empty());         // loose keeps more
    EXPECT_TRUE(d.probability_changed.empty());
}

// ---------------------------------------------------------------------------
// report::class_breakdown

TEST(ClassBreakdown, CountsPerKind) {
    netlist::Circuit c;
    c.add_vsource("V1", "in", "0",
                  netlist::SourceSpec::make_pulse(0, 5, 0, 1e-9, 1e-9, 1, 2));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-9);
    c.tran = netlist::TranSpec{1e-8, 4e-6, 0.0};

    lift::FaultList fl;
    lift::Fault s;
    s.id = 1;
    s.kind = lift::FaultKind::LocalShort;
    s.mechanism = "m";
    s.probability = 1e-8;
    s.net_a = "out";
    s.net_b = "0";
    fl.faults.push_back(s);
    lift::Fault o;
    o.id = 2;
    o.kind = lift::FaultKind::LineOpen;
    o.mechanism = "m";
    o.probability = 1e-8;
    o.net = "out";
    o.group_b = {{"C1", 0}};
    fl.faults.push_back(o);

    anafault::CampaignOptions opt;
    opt.detection.observed = {"out"};
    const auto res = anafault::run_campaign(c, fl, opt);
    const std::string table = anafault::class_breakdown(res, fl);
    EXPECT_NE(table.find("local_short"), std::string::npos);
    EXPECT_NE(table.find("line_open"), std::string::npos);
    EXPECT_NE(table.find("us"), std::string::npos);

    lift::FaultList wrong;
    EXPECT_THROW(anafault::class_breakdown(res, wrong), Error);
}

// ---------------------------------------------------------------------------
// inverter chain fixture

TEST(InverterChain, PropagatesAndInverts) {
    // A 5-stage chain: odd number -> output inverted relative to input.
    netlist::Circuit c = circuits::build_inverter_chain(5);
    spice::SimOptions opt;
    opt.uic = true;
    spice::Simulator sim(c, opt);
    const auto wf = sim.tran();
    // Input high during [110ns, 500ns]; after 5 gate delays the end of the
    // chain is LOW there.
    EXPECT_LT(wf.at("c5", 400e-9), 0.5);
    EXPECT_GT(wf.at("c5", 50e-9), 4.5);  // input low -> output high
}

TEST(InverterChain, ScalesThroughTheFullPipeline) {
    const auto ckt = circuits::build_inverter_chain(12, false);
    const auto lo = layout::generate_cell_layout(ckt);
    const auto res = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(),
        lift::LiftOptions{});
    EXPECT_EQ(res.extraction.mosfets.size(), 24u);
    EXPECT_GT(res.faults.size(), 20u);
}

TEST(InverterChain, Validation) {
    EXPECT_THROW(circuits::build_inverter_chain(0), Error);
}
