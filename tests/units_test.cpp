// SPICE numeric literal parsing and formatting.

#include "netlist/units.h"

#include "geom/base.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

using catlift::netlist::format_value;
using catlift::netlist::is_value;
using catlift::netlist::parse_value;

TEST(Units, PlainNumbers) {
    EXPECT_DOUBLE_EQ(parse_value("5"), 5.0);
    EXPECT_DOUBLE_EQ(parse_value("-3.25"), -3.25);
    EXPECT_DOUBLE_EQ(parse_value("1e-8"), 1e-8);
    EXPECT_DOUBLE_EQ(parse_value("2.5E6"), 2.5e6);
}

TEST(Units, EngineeringSuffixes) {
    EXPECT_DOUBLE_EQ(parse_value("2p"), 2e-12);
    EXPECT_DOUBLE_EQ(parse_value("4.7k"), 4700.0);
    EXPECT_DOUBLE_EQ(parse_value("10u"), 10e-6);
    EXPECT_DOUBLE_EQ(parse_value("1n"), 1e-9);
    EXPECT_DOUBLE_EQ(parse_value("100f"), 100e-15);
    EXPECT_DOUBLE_EQ(parse_value("3m"), 3e-3);
    EXPECT_DOUBLE_EQ(parse_value("2g"), 2e9);
    EXPECT_DOUBLE_EQ(parse_value("1t"), 1e12);
}

TEST(Units, MegIsNotMilli) {
    EXPECT_DOUBLE_EQ(parse_value("1meg"), 1e6);
    EXPECT_DOUBLE_EQ(parse_value("1MEG"), 1e6);
    EXPECT_DOUBLE_EQ(parse_value("1m"), 1e-3);
    EXPECT_DOUBLE_EQ(parse_value("100MEG"), 1e8);
}

TEST(Units, TrailingUnitLettersIgnored) {
    EXPECT_DOUBLE_EQ(parse_value("10uF"), 10e-6);
    EXPECT_DOUBLE_EQ(parse_value("5V"), 5.0);
    EXPECT_DOUBLE_EQ(parse_value("0.01ohm"), 0.01);
}

TEST(Units, Rejections) {
    EXPECT_THROW(parse_value(""), catlift::Error);
    EXPECT_THROW(parse_value("abc"), catlift::Error);
    EXPECT_FALSE(is_value("zzz"));
    EXPECT_TRUE(is_value("1k"));
}

TEST(Units, RejectsNonFiniteAndHexLiterals) {
    // strtod is more liberal than a SPICE value field; none of these may
    // sneak into a netlist as a number.
    EXPECT_THROW(parse_value("inf"), catlift::Error);
    EXPECT_THROW(parse_value("-inf"), catlift::Error);
    EXPECT_THROW(parse_value("infinity"), catlift::Error);
    EXPECT_THROW(parse_value("nan"), catlift::Error);
    EXPECT_THROW(parse_value("NaN"), catlift::Error);
    EXPECT_THROW(parse_value("0x10"), catlift::Error);
    EXPECT_THROW(parse_value("0X1p4"), catlift::Error);
    EXPECT_THROW(parse_value("1e999"), catlift::Error);  // overflows to inf
    // A finite mantissa pushed over the range by the multiplier.
    EXPECT_THROW(parse_value("2e305meg"), catlift::Error);
    EXPECT_THROW(parse_value("-3e306k"), catlift::Error);
    EXPECT_FALSE(is_value("2e305meg"));
}

TEST(Units, RejectsGarbageSuffixes) {
    // Alphabetic garbage after the number used to be treated as a neutral
    // unit annotation; only known unit letters (and multiplier + letters)
    // qualify.
    EXPECT_THROW(parse_value("10x5"), catlift::Error);
    EXPECT_THROW(parse_value("3q"), catlift::Error);
    EXPECT_THROW(parse_value("10k9"), catlift::Error);  // digit after mult
    EXPECT_THROW(parse_value("5v2"), catlift::Error);   // digit in unit tail
    EXPECT_THROW(parse_value("2z"), catlift::Error);
    // Garbage hiding behind a multiplier letter is no better.
    EXPECT_THROW(parse_value("3mq"), catlift::Error);
    EXPECT_THROW(parse_value("10kx"), catlift::Error);
    EXPECT_THROW(parse_value("4.7kq"), catlift::Error);
    EXPECT_FALSE(is_value("10x5"));
    // The legitimate forms keep working.
    EXPECT_DOUBLE_EQ(parse_value("10uF"), 10e-6);
    EXPECT_DOUBLE_EQ(parse_value("5Hz"), 5.0);
    EXPECT_DOUBLE_EQ(parse_value("2A"), 2.0);
    EXPECT_DOUBLE_EQ(parse_value("1s"), 1.0);
    EXPECT_DOUBLE_EQ(parse_value("1mohm"), 1e-3);
    EXPECT_DOUBLE_EQ(parse_value("2.2kHz"), 2200.0);
    EXPECT_DOUBLE_EQ(parse_value("2um"), 2e-6);  // W/L meter notation
    EXPECT_DOUBLE_EQ(parse_value("3mm"), 3e-3);
}

TEST(Units, FormatRoundTrip) {
    for (double v : {1e-15, 2e-12, 3.3e-9, 4.7e-6, 1e-3, 0.5, 1.0, 42.0,
                     4700.0, 1e6, 2.5e9, 1e12}) {
        const std::string s = format_value(v);
        EXPECT_NEAR(parse_value(s), v, std::abs(v) * 1e-9) << s;
    }
    EXPECT_EQ(format_value(0.0), "0");
}

TEST(Units, FormatRoundTripIsBitExact) {
    // format_value used to write at the default 6-digit precision, so a
    // written netlist was not numerically identical to its source.  Now
    // write -> parse must reproduce the exact double, including values
    // with full mantissas.
    for (double v : {1.0 / 3.0, 3.141592653589793e-9, 2.2250738585072014e-3,
                     1.0000000000000002, 6.62607015e-34, 1.7976931348623157e308,
                     4.9406564584124654e-324, -7.123456789012345e-7}) {
        const std::string s = format_value(v);
        EXPECT_EQ(parse_value(s), v) << s;
    }
    // Deterministic fuzz over the full double range (xorshift64*).
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    auto next = [&]() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545F4914F6CDD1Dull;
    };
    int tested = 0;
    while (tested < 2000) {
        double v;
        const std::uint64_t bits = next();
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&v, &bits, sizeof v);
        if (!std::isfinite(v)) continue;
        ++tested;
        const std::string s = format_value(v);
        EXPECT_EQ(parse_value(s), v) << s;
    }
}

TEST(Units, FormatNegative) {
    EXPECT_EQ(parse_value(format_value(-2e-12)), -2e-12);
    // Negative zero keeps its sign bit through the round-trip.
    EXPECT_EQ(format_value(-0.0), "-0");
    EXPECT_TRUE(std::signbit(parse_value(format_value(-0.0))));
    EXPECT_FALSE(std::signbit(parse_value(format_value(0.0))));
}
