// SPICE numeric literal parsing and formatting.

#include "netlist/units.h"

#include "geom/base.h"

#include <gtest/gtest.h>

using catlift::netlist::format_value;
using catlift::netlist::is_value;
using catlift::netlist::parse_value;

TEST(Units, PlainNumbers) {
    EXPECT_DOUBLE_EQ(parse_value("5"), 5.0);
    EXPECT_DOUBLE_EQ(parse_value("-3.25"), -3.25);
    EXPECT_DOUBLE_EQ(parse_value("1e-8"), 1e-8);
    EXPECT_DOUBLE_EQ(parse_value("2.5E6"), 2.5e6);
}

TEST(Units, EngineeringSuffixes) {
    EXPECT_DOUBLE_EQ(parse_value("2p"), 2e-12);
    EXPECT_DOUBLE_EQ(parse_value("4.7k"), 4700.0);
    EXPECT_DOUBLE_EQ(parse_value("10u"), 10e-6);
    EXPECT_DOUBLE_EQ(parse_value("1n"), 1e-9);
    EXPECT_DOUBLE_EQ(parse_value("100f"), 100e-15);
    EXPECT_DOUBLE_EQ(parse_value("3m"), 3e-3);
    EXPECT_DOUBLE_EQ(parse_value("2g"), 2e9);
    EXPECT_DOUBLE_EQ(parse_value("1t"), 1e12);
}

TEST(Units, MegIsNotMilli) {
    EXPECT_DOUBLE_EQ(parse_value("1meg"), 1e6);
    EXPECT_DOUBLE_EQ(parse_value("1MEG"), 1e6);
    EXPECT_DOUBLE_EQ(parse_value("1m"), 1e-3);
    EXPECT_DOUBLE_EQ(parse_value("100MEG"), 1e8);
}

TEST(Units, TrailingUnitLettersIgnored) {
    EXPECT_DOUBLE_EQ(parse_value("10uF"), 10e-6);
    EXPECT_DOUBLE_EQ(parse_value("5V"), 5.0);
    EXPECT_DOUBLE_EQ(parse_value("0.01ohm"), 0.01);
}

TEST(Units, Rejections) {
    EXPECT_THROW(parse_value(""), catlift::Error);
    EXPECT_THROW(parse_value("abc"), catlift::Error);
    EXPECT_FALSE(is_value("zzz"));
    EXPECT_TRUE(is_value("1k"));
}

TEST(Units, FormatRoundTrip) {
    for (double v : {1e-15, 2e-12, 3.3e-9, 4.7e-6, 1e-3, 0.5, 1.0, 42.0,
                     4700.0, 1e6, 2.5e9, 1e12}) {
        const std::string s = format_value(v);
        EXPECT_NEAR(parse_value(s), v, std::abs(v) * 1e-9) << s;
    }
    EXPECT_EQ(format_value(0.0), "0");
}

TEST(Units, FormatNegative) {
    EXPECT_NEAR(parse_value(format_value(-2e-12)), -2e-12, 1e-21);
}
