// End-to-end CAT pipeline test: the paper's full flow on the VCO --
// layout synthesis, LIFT, LVS, funnel, AnaFAULT campaign.

#include "circuits/vco.h"
#include "core/cat.h"

#include <gtest/gtest.h>

using namespace catlift;
using namespace catlift::core;

class CatPipeline : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        VcoExperiment e = make_vco_experiment(/*threads=*/8);
        report_ = new CatReport(
            run_cat(e.sim_circuit, e.device_netlist, e.layout, e.config));
    }
    static void TearDownTestSuite() {
        delete report_;
        report_ = nullptr;
    }
    static CatReport* report_;
};

CatReport* CatPipeline::report_ = nullptr;

TEST_F(CatPipeline, FunnelShrinksAtEachStage) {
    const FaultFunnel& f = report_->funnel;
    EXPECT_EQ(f.all_faults, 152u);  // ch. VI: 79 opens + 73 shorts
    EXPECT_LT(f.l2rfm, f.all_faults);
    EXPECT_LT(f.glrfm, f.l2rfm);
    // Paper: 53% reduction; the generated layout lands in the same regime.
    EXPECT_GT(f.reduction_vs_all(), 40.0);
    EXPECT_LT(f.reduction_vs_all(), 70.0);
}

TEST_F(CatPipeline, LvsCleanByConstruction) {
    EXPECT_TRUE(report_->lvs.equivalent);
}

TEST_F(CatPipeline, FullCoverageWithPaperTolerances) {
    // Fig. 5: every fault detected within the 4 us window with the
    // 2V / 0.2us tolerances.
    EXPECT_EQ(report_->campaign.failed(), 0u);
    EXPECT_DOUBLE_EQ(report_->campaign.final_coverage(), 100.0);
}

TEST_F(CatPipeline, CoverageNearlyCompleteByMidTest) {
    // Paper: almost 100% after 25% of the test time, complete by ~55%.
    // Our reproduction: >90% by 30%, complete within the run.
    const auto& c = report_->campaign;
    EXPECT_GT(c.coverage_at(0.30 * c.tstop), 85.0);
    ASSERT_TRUE(c.time_of_last_detection().has_value());
    EXPECT_LT(*c.time_of_last_detection(), c.tstop);
}

TEST_F(CatPipeline, WeightedCoverageIsProbabilityMass) {
    EXPECT_NEAR(report_->campaign.weighted_coverage(), 100.0, 1e-9);
}

TEST_F(CatPipeline, SummaryMentionsEveryStage) {
    const std::string s = cat_summary(*report_);
    EXPECT_NE(s.find("all schematic faults : 152"), std::string::npos);
    EXPECT_NE(s.find("GLRFM"), std::string::npos);
    EXPECT_NE(s.find("lvs: clean"), std::string::npos);
    EXPECT_NE(s.find("fault coverage"), std::string::npos);
}

TEST_F(CatPipeline, ExperimentPartsConsistent) {
    VcoExperiment e = make_vco_experiment();
    EXPECT_EQ(e.sim_circuit.count(netlist::DeviceKind::Mosfet), 26u);
    EXPECT_EQ(e.device_netlist.count(netlist::DeviceKind::VSource), 0u);
    EXPECT_GT(e.layout.size(), 500u);
    EXPECT_EQ(e.config.campaign.detection.observed[0],
              std::string(circuits::kVcoOutput));
}
