// Fault dictionary and diagnosis: the campaign's per-fault responses used
// in reverse to name the fault behind an observed failing response.

#include "anafault/diagnosis.h"
#include "circuits/vco.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

using namespace catlift;
using namespace catlift::anafault;

namespace {

/// A compact fault list for the VCO: distinct behaviour classes.
lift::FaultList small_vco_list() {
    lift::FaultList fl;
    auto bridge = [&](int id, const char* a, const char* b) {
        lift::Fault f;
        f.id = id;
        f.kind = lift::FaultKind::LocalShort;
        f.mechanism = "m";
        f.probability = 1e-8;
        f.net_a = a;
        f.net_b = b;
        fl.faults.push_back(f);
    };
    bridge(1, "5", "6");   // frequency shift
    bridge(2, "1", "3");   // stuck high
    bridge(3, "9", "0");   // stuck low
    lift::Fault so;
    so.id = 4;
    so.kind = lift::FaultKind::StuckOpen;
    so.mechanism = "m";
    so.probability = 1e-8;
    so.victim = {"M7", 0};  // discharge sink open
    fl.faults.push_back(so);
    return fl;
}

DictionaryOptions vco_opts() {
    DictionaryOptions opt;
    opt.observed = {circuits::kVcoOutput};
    return opt;
}

} // namespace

TEST(Diagnosis, DictionaryBuildsOneEntryPerFault) {
    const auto dict = FaultDictionary::build(circuits::build_vco(),
                                             small_vco_list(), vco_opts());
    EXPECT_EQ(dict.size(), 4u);
    for (const auto& e : dict.entries())
        EXPECT_EQ(e.signature.size(), 24u);  // default sampling
}

TEST(Diagnosis, NamesTheInjectedFault) {
    const netlist::Circuit base = circuits::build_vco();
    const lift::FaultList fl = small_vco_list();
    const auto dict = FaultDictionary::build(base, fl, vco_opts());

    // Simulate each fault "as the failing device" and diagnose it.
    spice::SimOptions so;
    so.uic = true;
    for (const lift::Fault& f : fl.faults) {
        const netlist::Circuit failing = inject(base, f);
        spice::Simulator sim(failing, so);
        const auto wf = sim.tran();
        const auto matches = dict.diagnose(wf, 2);
        ASSERT_FALSE(matches.empty()) << f.describe();
        EXPECT_EQ(matches[0].entry->fault.id, f.id)
            << "diagnosed " << matches[0].entry->fault.describe()
            << " instead of " << f.describe();
        EXPECT_LT(matches[0].distance, 0.2) << f.describe();
    }
}

TEST(Diagnosis, HealthyDeviceIsCloseToNominal) {
    const netlist::Circuit base = circuits::build_vco();
    const auto dict =
        FaultDictionary::build(base, small_vco_list(), vco_opts());
    spice::SimOptions so;
    so.uic = true;
    spice::Simulator sim(base, so);
    const auto wf = sim.tran();
    EXPECT_LT(dict.distance_to_nominal(wf), 1e-6);
    // And far from every dictionary fault.
    const auto matches = dict.diagnose(wf, 1);
    ASSERT_FALSE(matches.empty());
    EXPECT_GT(matches[0].distance, 0.5);
}

TEST(Diagnosis, RankedByDistance) {
    const auto dict = FaultDictionary::build(circuits::build_vco(),
                                             small_vco_list(), vco_opts());
    // Diagnose the stuck-high response: 1-3 must beat 9-0 (opposite rail).
    const netlist::Circuit failing =
        inject(circuits::build_vco(), small_vco_list().faults[1]);
    spice::SimOptions so;
    so.uic = true;
    spice::Simulator sim(failing, so);
    const auto matches = dict.diagnose(sim.tran(), 4);
    ASSERT_EQ(matches.size(), 4u);
    for (std::size_t i = 1; i < matches.size(); ++i)
        EXPECT_GE(matches[i].distance, matches[i - 1].distance);
    EXPECT_EQ(matches[0].entry->fault.net_b, "3");
}

TEST(Diagnosis, FullLiftListDiagnosesKillFaults) {
    // End to end with the real GLRFM list: a stuck-output device is
    // attributed to *a* stuck-output bridge (several are electrically
    // near-identical; the winner must itself be a kill fault).
    circuits::VcoOptions vo;
    vo.with_sources = false;
    const auto sch = circuits::build_vco(vo);
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    lift::LiftOptions lopt;
    lopt.net_blocks = circuits::vco_net_blocks();
    auto lift_res = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);
    // Keep the 24 most likely faults to bound the build time.
    lift_res.faults.faults.resize(
        std::min<std::size_t>(lift_res.faults.faults.size(), 24));

    const netlist::Circuit base = circuits::build_vco();
    const auto dict =
        FaultDictionary::build(base, lift_res.faults, vco_opts());
    ASSERT_GT(dict.size(), 10u);

    // The failing device: bridge 1->3 (stuck high), which is in the list.
    netlist::Circuit failing = base;
    inject_short(failing, "1", "3");
    spice::SimOptions so;
    so.uic = true;
    spice::Simulator sim(failing, so);
    const auto matches = dict.diagnose(sim.tran(), 3);
    ASSERT_FALSE(matches.empty());
    EXPECT_LT(matches[0].distance, 0.1);
}

TEST(Diagnosis, Validation) {
    DictionaryOptions bad = vco_opts();
    bad.samples = 1;
    EXPECT_THROW(FaultDictionary::build(circuits::build_vco(),
                                        small_vco_list(), bad),
                 Error);
    DictionaryOptions no_nodes = vco_opts();
    no_nodes.observed.clear();
    EXPECT_THROW(FaultDictionary::build(circuits::build_vco(),
                                        small_vco_list(), no_nodes),
                 Error);
    netlist::Circuit no_tran = circuits::build_vco();
    no_tran.tran.reset();
    EXPECT_THROW(FaultDictionary::build(no_tran, small_vco_list(),
                                        vco_opts()),
                 Error);
}
