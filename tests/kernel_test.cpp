// Incremental-kernel tests: verdict identity of the modified-Newton
// bypass on the paper's full VCO campaign, kernel equivalence (dense vs
// sparse vs bypass) on the OTA campaigns and on non-oscillating fixtures,
// the complex sparse AC path, and the OTA/VCO golden behaviours re-run
// under sparse+bypass.
//
// One physical caveat shapes these tests: the VCO is an *autonomous
// oscillator* integrated at reltol=1e-3, so its phase is kernel-dependent
// -- any change in solver arithmetic (dense vs sparse rounding) shifts
// the switching instants by tolerance-level amounts that accumulate over
// hundreds of cycles.  Faults detectable only through accumulated phase
// wobble (a 100-ohm bridge between two ideal-source-clamped nets leaves
// every voltage nominal) therefore sit at the detection margin under ANY
// kernel change.  The dense path is bitwise-faithful to the seed and is
// the verdict reference; for sparse the tests assert identity for every
// fault with a *robust* margin (accumulated mismatch beyond 5x t_tol or
// below t_tol/5 under the reference kernel) -- which is every fault whose
// verdict is physically meaningful rather than a coin flip of the
// truncation error.

#include "anafault/campaign.h"
#include "anafault/comparator.h"
#include "anafault/fault_models.h"
#include "circuits/ota.h"
#include "circuits/ringosc.h"
#include "circuits/vco.h"
#include "core/cat.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace catlift;
using namespace catlift::circuits;
using spice::SimOptions;
using spice::Simulator;

namespace {

constexpr std::size_t kForceDense = static_cast<std::size_t>(-1);
constexpr std::size_t kForceSparse = 0;

SimOptions kernel_options(std::size_t sparse_threshold, bool bypass) {
    SimOptions o;
    o.sparse_threshold = sparse_threshold;
    o.bypass = bypass;
    return o;
}

std::set<int> detected_ids(const anafault::CampaignResult& r) {
    std::set<int> ids;
    for (const auto& f : r.results)
        if (f.detect_time) ids.insert(f.fault_id);
    return ids;
}

struct OtaCampaignFixture {
    netlist::Circuit ckt;
    lift::FaultList faults;
    anafault::CampaignOptions opt;
};

OtaCampaignFixture ota_fixture() {
    OtaOptions o;
    o.with_sources = false;
    const netlist::Circuit dev = build_ota(o);
    const layout::Layout lo = layout::generate_cell_layout(dev);
    lift::LiftOptions lopt;
    lopt.net_blocks = ota_net_blocks();
    const auto lift_res = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);
    OtaCampaignFixture f;
    f.ckt = build_ota();
    f.faults = lift_res.faults;
    f.opt.detection.observed = {kOtaOutput};
    f.opt.detection.v_tol = 0.4;
    return f;
}

} // namespace

// ---------------------------------------------------------------------------
// Bypass: verdict identity on the paper's full VCO campaign

TEST(Kernel, VcoCampaignBypassVerdictIdentity) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);

    anafault::CampaignOptions on = e.config.campaign;
    on.sim.bypass = true;  // campaign default, pinned explicitly
    anafault::CampaignOptions off = on;
    off.sim.bypass = false;

    const auto r_on = anafault::run_campaign(e.sim_circuit, lift_res.faults, on);
    const auto r_off =
        anafault::run_campaign(e.sim_circuit, lift_res.faults, off);
    EXPECT_EQ(r_on.failed(), 0u);
    EXPECT_EQ(detected_ids(r_on), detected_ids(r_off));
    // The campaign default must keep the paper's 100% coverage.
    EXPECT_DOUBLE_EQ(r_on.final_coverage(), 100.0);
}

// ---------------------------------------------------------------------------
// Sparse: verdict identity wherever the margin is physically robust

TEST(Kernel, VcoCampaignSparseRobustVerdictIdentity) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    const anafault::CampaignOptions& copt = e.config.campaign;
    const netlist::TranSpec ts = *e.sim_circuit.tran;
    const double t_tol = copt.detection.t_tol;

    auto accumulated_mismatch = [&](const netlist::Circuit& faulty,
                                    const spice::Waveforms& nominal,
                                    std::size_t threshold) {
        SimOptions so = copt.sim;
        so.sparse_threshold = threshold;
        Simulator sim(faulty, so);
        const auto wf = sim.tran(ts);
        const auto& t = nominal.time();
        const auto& vn = nominal.trace(kVcoOutput);
        const auto& vf = wf.trace(kVcoOutput);
        double acc = 0.0;
        for (std::size_t i = 1; i < t.size(); ++i)
            if (std::fabs(vn[i] - vf[i]) > copt.detection.v_tol)
                acc += t[i] - t[i - 1];
        return acc;
    };

    SimOptions nom_dense = copt.sim;
    nom_dense.sparse_threshold = kForceDense;
    Simulator nd(e.sim_circuit, nom_dense);
    const auto nominal_dense = nd.tran(ts);
    SimOptions nom_sparse = copt.sim;
    nom_sparse.sparse_threshold = kForceSparse;
    Simulator ns(e.sim_circuit, nom_sparse);
    const auto nominal_sparse = ns.tran(ts);

    std::size_t robust = 0;
    for (const auto& f : lift_res.faults.faults) {
        const auto faulty = anafault::inject(e.sim_circuit, f, copt.injection);
        const double acc_d =
            accumulated_mismatch(faulty, nominal_dense, kForceDense);
        if (acc_d > 5.0 * t_tol) {
            const double acc_s =
                accumulated_mismatch(faulty, nominal_sparse, kForceSparse);
            EXPECT_GT(acc_s, t_tol)
                << "robustly detected fault lost under sparse: "
                << f.describe();
            ++robust;
        } else if (acc_d < t_tol / 5.0) {
            const double acc_s =
                accumulated_mismatch(faulty, nominal_sparse, kForceSparse);
            EXPECT_LT(acc_s, t_tol)
                << "robustly undetected fault gained under sparse: "
                << f.describe();
            ++robust;
        }
        // Faults between the bands ride the truncation-error margin of an
        // autonomous oscillator; their verdict is kernel-arithmetic-
        // dependent by physics (see file header).
    }
    // The robust set must dominate the campaign, or this test is vacuous.
    EXPECT_GE(robust, lift_res.faults.size() * 3 / 4);
}

TEST(Kernel, OtaTranCampaignVerdictIdenticalAcrossKernels) {
    const OtaCampaignFixture f = ota_fixture();
    anafault::CampaignOptions opt = f.opt;

    opt.sim = kernel_options(kForceDense, false);
    const auto dense = anafault::run_campaign(f.ckt, f.faults, opt);
    EXPECT_EQ(dense.failed(), 0u);
    const auto ref = detected_ids(dense);
    EXPECT_FALSE(ref.empty());

    for (const bool bypass : {false, true}) {
        for (const std::size_t thr : {kForceDense, kForceSparse}) {
            if (thr == kForceDense && !bypass) continue;  // the reference
            opt.sim = kernel_options(thr, bypass);
            const auto r = anafault::run_campaign(f.ckt, f.faults, opt);
            SCOPED_TRACE((thr == kForceSparse ? "sparse" : "dense") +
                         std::string(bypass ? "+bypass" : ""));
            EXPECT_EQ(detected_ids(r), ref);
            EXPECT_EQ(r.failed(), 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel equivalence on non-oscillating circuits

TEST(Kernel, InverterChainTransientEquivalentDenseSparse) {
    // 40 stages -> 42 unknowns: above the default threshold, well-behaved
    // (a settling chain, no autonomous phase).  The kernels must agree to
    // far better than any detection tolerance.
    const netlist::Circuit ckt = build_inverter_chain(40);

    SimOptions dense = kernel_options(kForceDense, false);
    Simulator sd(ckt, dense);
    const auto wd = sd.tran();

    SimOptions sparse = kernel_options(kForceSparse, false);
    Simulator ss(ckt, sparse);
    const auto ws = ss.tran();

    ASSERT_EQ(wd.points(), ws.points());
    for (int stage : {1, 20, 40}) {
        const std::string node = "c" + std::to_string(stage);
        const auto& a = wd.trace(node);
        const auto& b = ws.trace(node);
        double worst = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            worst = std::max(worst, std::fabs(a[i] - b[i]));
        EXPECT_LT(worst, 0.05) << node;
    }
    // The sparse kernel must actually have run incrementally: one
    // Markowitz analysis per (pattern, stepsize regime), everything else
    // pattern-reused refactors.
    EXPECT_GT(ss.stats().sparse_refactors, 0u);
    EXPECT_GT(ss.stats().sparse_refactors, ss.stats().sparse_full_factors);
}

TEST(Kernel, BypassFiresOnQuiescentTailAndMatchesFullNewton) {
    // After the pulse settles the chain is quiescent: the bypass must
    // collapse those solves to triangular substitutions without moving
    // the waveform beyond its tolerance.
    const netlist::Circuit ckt = build_inverter_chain(12);

    Simulator full(ckt, kernel_options(kForceDense, false));
    const auto wf_full = full.tran();
    EXPECT_EQ(full.stats().bypass_solves, 0u);

    Simulator byp(ckt, kernel_options(kForceDense, true));
    const auto wf_byp = byp.tran();
    EXPECT_GT(byp.stats().bypass_solves, 100u);
    EXPECT_LT(byp.stats().lu_factorizations, full.stats().lu_factorizations);

    const std::string out = "c12";
    const auto& a = wf_full.trace(out);
    const auto& b = wf_byp.trace(out);
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    EXPECT_LT(worst, 1e-3);
}

TEST(Kernel, DcSweepEquivalentDenseSparse) {
    const netlist::Circuit ckt = build_inverter_chain(20);
    std::vector<double> levels;
    for (double v = 0.0; v <= 5.0; v += 0.5) levels.push_back(v);

    const auto rd = spice::dc_sweep(ckt, "VIN", levels,
                                    kernel_options(kForceDense, false));
    const auto rs = spice::dc_sweep(ckt, "VIN", levels,
                                    kernel_options(kForceSparse, false));
    ASSERT_EQ(rd.size(), rs.size());
    for (std::size_t i = 0; i < rd.size(); ++i) {
        ASSERT_TRUE(rd[i].converged);
        ASSERT_TRUE(rs[i].converged);
        for (const auto& [node, v] : rd[i].voltages)
            EXPECT_NEAR(rs[i].voltages.at(node), v, 1e-6)
                << "level " << levels[i] << " node " << node;
    }
}

// ---------------------------------------------------------------------------
// Complex sparse AC path

TEST(Kernel, OtaAcSweepSparseMatchesDense) {
    OtaOptions o;
    netlist::Circuit ckt = build_ota(o);
    ckt.device("VDD").source = netlist::SourceSpec::make_dc(5.0);
    netlist::SourceSpec vin = netlist::SourceSpec::make_dc(2.5);
    vin.ac_mag = 1.0;
    ckt.device("VIN").source = vin;

    spice::AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e9;

    Simulator sd(ckt, kernel_options(kForceDense, false));
    const auto rd = sd.ac(spec);
    Simulator ss(ckt, kernel_options(kForceSparse, false));
    const auto rs = ss.ac(spec);

    ASSERT_EQ(rd.points(), rs.points());
    for (std::size_t i = 0; i < rd.points(); ++i)
        EXPECT_NEAR(rs.mag_db("out", i), rd.mag_db("out", i), 1e-6);
    // Every point after the first reuses the complex pattern.
    EXPECT_GT(ss.stats().sparse_refactors, rd.points() - 5);
    const auto cd = rd.corner_frequency("out");
    const auto cs = rs.corner_frequency("out");
    ASSERT_TRUE(cd.has_value());
    ASSERT_TRUE(cs.has_value());
    EXPECT_NEAR(*cs / *cd, 1.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Golden behaviours re-run under sparse+bypass

TEST(Kernel, VcoGoldenUnderSparseBypass) {
    SimOptions so = kernel_options(kForceSparse, true);
    so.uic = true;

    auto period_at = [&](double vctrl) {
        VcoOptions vo;
        vo.vctrl = vctrl;
        Simulator sim(build_vco(vo), so);
        const auto wf = sim.tran();
        return spice::estimate_period(wf, kVcoOutput, 2.5, 1e-6, 4e-6);
    };

    VcoOptions vo;
    Simulator sim(build_vco(vo), so);
    const auto wf = sim.tran();
    EXPECT_GT(spice::swing(wf, kVcoOutput, 1e-6, 4e-6), 4.5);
    const auto period =
        spice::estimate_period(wf, kVcoOutput, 2.5, 1e-6, 4e-6);
    ASSERT_TRUE(period.has_value());
    EXPECT_GT(*period, 0.2e-6);
    EXPECT_LT(*period, 1.2e-6);

    const auto slow = period_at(2.2);
    const auto fast = period_at(3.0);
    ASSERT_TRUE(slow.has_value());
    ASSERT_TRUE(fast.has_value());
    EXPECT_LT(*fast, *slow * 0.8);
}

TEST(Kernel, OtaGoldenUnderSparseBypass) {
    SimOptions so = kernel_options(kForceSparse, true);
    so.uic = true;
    Simulator sim(build_ota(), so);
    const auto wf = sim.tran();
    double max_err = 0.0;
    for (double t = 1e-6; t < 4e-6; t += 1e-8)
        max_err = std::max(max_err,
                           std::fabs(wf.at("out", t) - wf.at("inp", t)));
    EXPECT_LT(max_err, 0.1);
    EXPECT_NEAR(spice::swing(wf, "out", 1e-6, 4e-6), 1.0, 0.1);
}

TEST(Kernel, SingularSystemFailsGracefullyWithBypassOn) {
    // Two ideal sources fighting over one node: the MNA matrix is
    // singular at every candidate point.  Every kernel configuration
    // must report non-convergence, not trip over a bypass that points at
    // a failed factorization (the factorization is only marked reusable
    // after it succeeds).
    netlist::Circuit c;
    c.title = "vsource conflict";
    c.add_vsource("V1", "a", "0", netlist::SourceSpec::make_dc(5.0));
    c.add_vsource("V2", "a", "0", netlist::SourceSpec::make_dc(3.0));
    c.add_resistor("R1", "a", "0", 1e3);
    for (const std::size_t thr : {kForceDense, kForceSparse}) {
        Simulator sim(c, kernel_options(thr, true));
        const auto r = sim.dc_op();
        SCOPED_TRACE(thr == kForceSparse ? "sparse" : "dense");
        EXPECT_FALSE(r.converged);
        // Retrying on the same simulator must stay graceful too (this is
        // the dv-ladder / sweep-retry shape that used to hit a stale
        // bypass).
        EXPECT_FALSE(sim.dc_op().converged);
    }
}

TEST(Kernel, RingOscillatorRunsOnBothKernels) {
    for (const std::size_t thr : {kForceDense, kForceSparse}) {
        RingOscOptions ro;
        ro.stages = 25;
        SimOptions so = kernel_options(thr, true);
        so.uic = true;
        Simulator sim(build_ring_oscillator(ro), so);
        const auto wf = sim.tran();
        SCOPED_TRACE(thr == kForceSparse ? "sparse" : "dense");
        EXPECT_GT(spice::swing(wf, ring_node(0), 0.4e-6, 1e-6), 4.0);
    }
}
