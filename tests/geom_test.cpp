// Unit and property tests for the geometry substrate.

#include "geom/rect.h"
#include "geom/region.h"
#include "geom/spatial_index.h"

#include <gtest/gtest.h>

namespace g = catlift::geom;

TEST(Units, MicronRoundTrip) {
    EXPECT_EQ(g::from_um(1.0), 1000);
    EXPECT_EQ(g::from_um(-2.5), -2500);
    EXPECT_DOUBLE_EQ(g::to_um(1500), 1.5);
    EXPECT_DOUBLE_EQ(g::to_um(g::from_um(3.25)), 3.25);
}

TEST(Rect, NormalisesCorners) {
    const g::Rect r(10, 20, -5, 4);
    EXPECT_EQ(r.lo.x, -5);
    EXPECT_EQ(r.lo.y, 4);
    EXPECT_EQ(r.hi.x, 10);
    EXPECT_EQ(r.hi.y, 20);
    EXPECT_EQ(r.width(), 15);
    EXPECT_EQ(r.height(), 16);
}

TEST(Rect, AreaAndEmpty) {
    EXPECT_DOUBLE_EQ(g::Rect(0, 0, 10, 5).area(), 50.0);
    EXPECT_TRUE(g::Rect(0, 0, 0, 5).empty());
    EXPECT_FALSE(g::Rect(0, 0, 1, 1).empty());
}

TEST(Rect, ContainsPointIncludesBoundary) {
    const g::Rect r(0, 0, 10, 10);
    EXPECT_TRUE(r.contains(g::Point{0, 0}));
    EXPECT_TRUE(r.contains(g::Point{10, 10}));
    EXPECT_TRUE(r.contains(g::Point{5, 5}));
    EXPECT_FALSE(r.contains(g::Point{11, 5}));
}

TEST(Rect, OverlapVsTouch) {
    const g::Rect a(0, 0, 10, 10);
    const g::Rect edge(10, 0, 20, 10);   // shares an edge
    const g::Rect inside(5, 5, 15, 15);  // true overlap
    const g::Rect away(20, 20, 30, 30);
    EXPECT_TRUE(a.touches(edge));
    EXPECT_FALSE(a.overlaps(edge));
    EXPECT_TRUE(a.overlaps(inside));
    EXPECT_FALSE(a.touches(away));
}

TEST(Rect, IntersectionBasics) {
    const g::Rect a(0, 0, 10, 10), b(5, 5, 20, 20);
    auto i = g::intersection(a, b);
    ASSERT_TRUE(i.has_value());
    EXPECT_EQ(*i, g::Rect(5, 5, 10, 10));
    EXPECT_FALSE(g::intersection(a, g::Rect(11, 11, 12, 12)).has_value());
}

TEST(Rect, SeparationAndGaps) {
    const g::Rect a(0, 0, 10, 10);
    const g::Rect right(15, 0, 25, 10);
    EXPECT_EQ(g::separation(a, right), 5);
    EXPECT_EQ(g::axis_gaps(a, right).x, 5);
    EXPECT_EQ(g::axis_gaps(a, right).y, 0);
    const g::Rect diag(14, 13, 20, 20);
    EXPECT_EQ(g::axis_gaps(a, diag).x, 4);
    EXPECT_EQ(g::axis_gaps(a, diag).y, 3);
    EXPECT_EQ(g::separation(a, diag), 4);
    EXPECT_EQ(g::separation(a, g::Rect(5, 5, 6, 6)), 0);  // contained
}

TEST(Rect, FacingOverlapLengths) {
    const g::Rect a(0, 0, 10, 2);
    const g::Rect b(4, 5, 20, 7);  // above, overlapping x in [4,10]
    EXPECT_EQ(g::x_overlap(a, b), 6);
    EXPECT_EQ(g::y_overlap(a, b), 0);
}

TEST(Rect, ExpandedShrinksToDegenerate) {
    const g::Rect a(0, 0, 4, 4);
    const g::Rect s = a.expanded(-3);
    EXPECT_EQ(s.width(), 0);
    EXPECT_EQ(s.height(), 0);
    const g::Rect e = a.expanded(2);
    EXPECT_EQ(e, g::Rect(-2, -2, 6, 6));
}

TEST(Region, UnionAreaDisjoint) {
    g::Region r;
    r.add(g::Rect(0, 0, 10, 10));
    r.add(g::Rect(20, 0, 30, 10));
    EXPECT_DOUBLE_EQ(r.union_area(), 200.0);
}

TEST(Region, UnionAreaOverlappingNotDoubleCounted) {
    g::Region r;
    r.add(g::Rect(0, 0, 10, 10));
    r.add(g::Rect(5, 0, 15, 10));
    EXPECT_DOUBLE_EQ(r.union_area(), 150.0);
}

TEST(Region, UnionAreaNested) {
    g::Region r;
    r.add(g::Rect(0, 0, 100, 100));
    r.add(g::Rect(10, 10, 20, 20));
    EXPECT_DOUBLE_EQ(r.union_area(), 10000.0);
}

TEST(Region, DisjointDecompositionPreservesArea) {
    g::Region r;
    r.add(g::Rect(0, 0, 10, 10));
    r.add(g::Rect(5, 5, 15, 15));
    r.add(g::Rect(-3, 2, 2, 7));
    const auto parts = r.disjoint();
    double sum = 0;
    for (const auto& p : parts) sum += p.area();
    EXPECT_DOUBLE_EQ(sum, r.union_area());
    // Parts must be pairwise non-overlapping.
    for (std::size_t i = 0; i < parts.size(); ++i)
        for (std::size_t j = i + 1; j < parts.size(); ++j)
            EXPECT_FALSE(parts[i].overlaps(parts[j]));
}

TEST(Region, BBoxAndContains) {
    g::Region r;
    r.add(g::Rect(0, 0, 10, 10));
    r.add(g::Rect(50, 50, 60, 60));
    EXPECT_EQ(r.bbox(), g::Rect(0, 0, 60, 60));
    EXPECT_TRUE(r.contains(g::Point{55, 55}));
    EXPECT_FALSE(r.contains(g::Point{30, 30}));
}

TEST(SpatialIndex, FindsNeighboursAcrossCells) {
    g::SpatialIndex idx(100);
    idx.insert(0, g::Rect(0, 0, 10, 10));
    idx.insert(1, g::Rect(250, 0, 260, 10));
    idx.insert(2, g::Rect(15, 0, 20, 10));
    auto near = idx.neighbours(g::Rect(0, 0, 10, 10), 6);
    EXPECT_EQ(near.size(), 2u);  // self + id 2
    near = idx.neighbours(g::Rect(0, 0, 10, 10), 300);
    EXPECT_EQ(near.size(), 3u);
}

TEST(SpatialIndex, NegativeCoordinates) {
    g::SpatialIndex idx(64);
    idx.insert(7, g::Rect(-200, -200, -150, -150));
    auto hit = idx.query(g::Rect(-210, -210, -140, -140));
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0], 7u);
    EXPECT_TRUE(idx.query(g::Rect(100, 100, 120, 120)).empty());
}

TEST(SpatialIndex, RejectsBadCell) {
    EXPECT_THROW(g::SpatialIndex(0), catlift::Error);
}

// Property sweep: separation() is symmetric and consistent with expansion:
// two rects are within distance d iff expanding one by d makes them touch.
class SeparationProperty : public ::testing::TestWithParam<int> {};

TEST_P(SeparationProperty, ExpansionConsistency) {
    const int seed = GetParam();
    // Tiny deterministic LCG so the sweep is reproducible.
    std::uint64_t s = static_cast<std::uint64_t>(seed) * 6364136223846793005ull + 1;
    auto next = [&]() {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<g::Coord>((s >> 33) % 2001) - 1000;
    };
    for (int k = 0; k < 50; ++k) {
        const g::Rect a(next(), next(), next(), next());
        const g::Rect b(next(), next(), next(), next());
        const g::Coord d = g::separation(a, b);
        EXPECT_EQ(d, g::separation(b, a));
        if (d > 0) {
            EXPECT_TRUE(a.expanded(d).touches(b));
            EXPECT_FALSE(a.expanded(d - 1).touches(b));
        } else {
            EXPECT_TRUE(a.touches(b));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));
