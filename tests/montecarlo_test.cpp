// Monte-Carlo defect injection: sampler statistics and cross-validation of
// LIFT's analytic bridge probabilities against empirical defect sampling
// (the original IFA methodology of [25] as an oracle).

#include "circuits/vco.h"
#include "defects/montecarlo.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::defects;

namespace {

extract::Extraction vco_extraction() {
    circuits::VcoOptions o;
    o.with_sources = false;
    const auto sch = circuits::build_vco(o);
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    return extract::extract(lo,
                            layout::Technology::single_poly_double_metal());
}

} // namespace

TEST(Sampler, SizeDistributionMatchesPdf) {
    const SizeDistribution dist(1000.0);
    DefectSampler s(DefectStatistics::date95_table1(), dist, 25000.0, 7);
    // Empirical CDF at a few checkpoints vs the analytic CDF.
    const int n = 50000;
    int below_x0 = 0, below_2x0 = 0, below_4x0 = 0;
    for (int i = 0; i < n; ++i) {
        const double x = s.sample_size();
        EXPECT_GT(x, 0.0);
        EXPECT_LE(x, 25000.0 * 1.001);
        below_x0 += x <= 1000.0;
        below_2x0 += x <= 2000.0;
        below_4x0 += x <= 4000.0;
    }
    const double cap = dist.cdf(25000.0);
    EXPECT_NEAR(below_x0 / double(n), dist.cdf(1000.0) / cap, 0.01);
    EXPECT_NEAR(below_2x0 / double(n), dist.cdf(2000.0) / cap, 0.01);
    EXPECT_NEAR(below_4x0 / double(n), dist.cdf(4000.0) / cap, 0.01);
}

TEST(Sampler, MechanismSelectionFollowsDensities) {
    const DefectStatistics stats = DefectStatistics::date95_table1();
    DefectSampler s(stats, SizeDistribution(1000.0), 25000.0, 11);
    const geom::Rect chip = geom::Rect::um(0, 0, 100, 100);
    double total = 0.0, shorts_density = 0.0;
    for (const Mechanism& m : stats.mechanisms) {
        total += m.rel_density;
        if (m.mode == FailureMode::Short) shorts_density += m.rel_density;
    }
    const int n = 40000;
    int shorts = 0;
    for (int i = 0; i < n; ++i)
        shorts += s.sample(chip).mode == FailureMode::Short;
    EXPECT_NEAR(shorts / double(n), shorts_density / total, 0.01);
}

TEST(Sampler, Deterministic) {
    const DefectStatistics stats = DefectStatistics::date95_table1();
    DefectSampler a(stats, SizeDistribution(1000.0), 25000.0, 5);
    DefectSampler b(stats, SizeDistribution(1000.0), 25000.0, 5);
    const geom::Rect chip = geom::Rect::um(0, 0, 50, 50);
    for (int i = 0; i < 100; ++i) {
        const auto da = a.sample(chip);
        const auto db = b.sample(chip);
        EXPECT_EQ(da.layer, db.layer);
        EXPECT_EQ(da.square, db.square);
    }
}

TEST(MonteCarloBridges, ValidatesAnalyticRanking) {
    // The empirical bridge census must agree with LIFT's analytic bridge
    // probabilities: every heavy analytic pair is hit, and hit counts
    // correlate with the analytic p_j (same physics, two computations).
    const auto ex = vco_extraction();
    const DefectStatistics stats = DefectStatistics::date95_table1();
    long shorts = 0;
    const BridgeCensus census = monte_carlo_bridges(
        ex, stats, SizeDistribution(1000.0), 25000.0, 8000000, 1234, &shorts);
    ASSERT_GT(shorts, 2000000L);
    ASSERT_GT(census.size(), 10u);

    // Analytic list for comparison.
    circuits::VcoOptions o;
    o.with_sources = false;
    const auto sch = circuits::build_vco(o);
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    lift::LiftOptions lopt;
    lopt.net_blocks = circuits::vco_net_blocks();
    const auto analytic = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);

    // Top-5 analytic bridges must all appear in the census with solid
    // counts; the heaviest analytic pair must out-hit the lightest kept
    // bridge by a clear margin.
    long heaviest = 0, lightest = -1;
    int top_rank = 0;
    for (const auto& f : analytic.faults.faults) {
        if (f.kind != lift::FaultKind::LocalShort &&
            f.kind != lift::FaultKind::GlobalShort)
            continue;
        ++top_rank;
        auto it = census.find({std::min(f.net_a, f.net_b),
                               std::max(f.net_a, f.net_b)});
        if (top_rank <= 5) {
            ASSERT_NE(it, census.end()) << f.describe();
            EXPECT_GT(it->second, 100) << f.describe();
            heaviest = std::max(heaviest, it->second);
        }
        if (top_rank >= 50) {  // a light tail pair
            lightest = it == census.end() ? 0 : it->second;
            break;
        }
    }
    ASSERT_GE(lightest, 0);
    EXPECT_GT(heaviest, 4 * std::max(lightest, 1L));
}

TEST(MonteCarloBridges, CensusProportionalToProbability) {
    // Quantitative check on two specific pairs: the count ratio matches
    // the analytic probability ratio within Monte-Carlo noise.
    const auto ex = vco_extraction();
    const DefectStatistics stats = DefectStatistics::date95_table1();
    const BridgeCensus census = monte_carlo_bridges(
        ex, stats, SizeDistribution(1000.0), 25000.0, 10000000, 99);

    circuits::VcoOptions o;
    o.with_sources = false;
    const auto sch = circuits::build_vco(o);
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    lift::LiftOptions lopt;
    const auto analytic = lift::extract_faults(
        lo, layout::Technology::single_poly_double_metal(), lopt);

    // Pick the two heaviest analytic bridges and compare ratios.
    const lift::Fault* f1 = nullptr;
    const lift::Fault* f2 = nullptr;
    for (const auto& f : analytic.faults.faults) {
        if (f.kind != lift::FaultKind::LocalShort &&
            f.kind != lift::FaultKind::GlobalShort)
            continue;
        if (!f1) {
            f1 = &f;
        } else if (!f2) {
            f2 = &f;
            break;
        }
    }
    ASSERT_TRUE(f1 && f2);
    auto count_of = [&](const lift::Fault& f) {
        auto it = census.find({std::min(f.net_a, f.net_b),
                               std::max(f.net_a, f.net_b)});
        return it == census.end() ? 0L : it->second;
    };
    const double c1 = static_cast<double>(count_of(*f1));
    const double c2 = static_cast<double>(count_of(*f2));
    ASSERT_GT(c1, 100.0);
    ASSERT_GT(c2, 100.0);
    const double analytic_ratio = f1->probability / f2->probability;
    const double mc_ratio = c1 / c2;
    EXPECT_NEAR(mc_ratio / analytic_ratio, 1.0, 0.35)
        << f1->describe() << " vs " << f2->describe();
}
