// Batch fault-simulation engine tests: work-stealing scheduler, fault
// collapsing, early-abort streaming detection, the append-only result
// store, and the campaign-level guarantees (thread-count determinism,
// crash resume).

#include "anafault/campaign.h"
#include "anafault/comparator.h"
#include "batch/collapse.h"
#include "batch/result_store.h"
#include "batch/scheduler.h"
#include "core/cat.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

using namespace catlift;
using namespace catlift::anafault;
using netlist::Circuit;
using netlist::SourceSpec;
using netlist::TranSpec;

namespace {

/// Pulsed voltage divider: cheap to simulate, faults on it are clearly
/// detectable (or clearly not) at node "out".
Circuit divider_fixture() {
    Circuit c;
    c.title = "divider";
    c.add_vsource("V1", "in", "0",
                  SourceSpec::make_pulse(0, 5, 0, 1e-9, 1e-9, 1e-6, 2e-6));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_resistor("R2", "out", "0", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-10);
    c.tran = TranSpec{1e-8, 4e-6, 0.0};
    return c;
}

lift::Fault make_short(int id, const std::string& a, const std::string& b,
                       double prob, const std::string& mech = "m1_short") {
    lift::Fault f;
    f.id = id;
    f.kind = lift::FaultKind::LocalShort;
    f.mechanism = mech;
    f.probability = prob;
    f.net_a = a;
    f.net_b = b;
    return f;
}

lift::Fault make_term_open(int id, const std::string& dev, int term,
                           const std::string& net, double prob) {
    lift::Fault f;
    f.id = id;
    f.kind = lift::FaultKind::LineOpen;
    f.mechanism = "cut";
    f.probability = prob;
    f.net = net;
    f.group_b = {lift::TerminalRef{dev, term}};
    return f;
}

/// Mixed fault list with two pairs of electrically equivalent faults.
lift::FaultList divider_faults() {
    lift::FaultList fl;
    fl.circuit = "divider";
    fl.faults.push_back(make_short(1, "out", "0", 4e-3));
    fl.faults.push_back(make_short(2, "in", "out", 3e-3));
    // Same net pair as #1, different mechanism and net order: one class.
    fl.faults.push_back(make_short(3, "0", "out", 2e-3, "m2_short"));
    fl.faults.push_back(make_term_open(4, "R2", 0, "out", 1.5e-3));
    // Stuck-open on the same terminal as #4: one class.
    {
        lift::Fault f;
        f.id = 5;
        f.kind = lift::FaultKind::StuckOpen;
        f.mechanism = "contact";
        f.probability = 1e-3;
        f.victim = lift::TerminalRef{"R2", 0};
        fl.faults.push_back(f);
    }
    // Benign: bridging the two terminals of the already-conducting V1.
    fl.faults.push_back(make_short(6, "in", "0", 0.5e-3));
    return fl;
}

CampaignOptions divider_options() {
    CampaignOptions opt;
    opt.detection.observed = {"out"};
    return opt;
}

std::string temp_store_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("catlift_batch_" + tag + ".store"))
        .string();
}

void expect_same_results(const CampaignResult& a, const CampaignResult& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        SCOPED_TRACE("fault index " + std::to_string(i));
        EXPECT_EQ(a.results[i].fault_id, b.results[i].fault_id);
        EXPECT_EQ(a.results[i].description, b.results[i].description);
        EXPECT_EQ(a.results[i].probability, b.results[i].probability);
        EXPECT_EQ(a.results[i].simulated, b.results[i].simulated);
        ASSERT_EQ(a.results[i].detect_time.has_value(),
                  b.results[i].detect_time.has_value());
        if (a.results[i].detect_time) {
            // Byte-identical verdicts, not merely close ones.
            EXPECT_EQ(*a.results[i].detect_time, *b.results[i].detect_time);
        }
    }
    EXPECT_EQ(a.detected(), b.detected());
    EXPECT_EQ(a.final_coverage(), b.final_coverage());
    EXPECT_EQ(a.weighted_coverage(), b.weighted_coverage());
}

} // namespace

// ---------------------------------------------------------------------------
// Scheduler

TEST(Scheduler, ExecutesEveryJobExactlyOnce) {
    const std::size_t n = 200;
    std::vector<batch::Job> jobs;
    for (std::size_t i = 0; i < n; ++i)
        jobs.push_back(batch::Job{i, static_cast<double>(i % 7)});
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    const batch::Scheduler sched(4);
    const auto stats = sched.run(jobs, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(stats.executed, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
}

TEST(Scheduler, SerialRunsHighestPriorityFirst) {
    std::vector<batch::Job> jobs = {
        {0, 0.1}, {1, 0.9}, {2, 0.5}, {3, 0.9}};
    std::vector<std::size_t> order;
    const batch::Scheduler sched(1);
    sched.run(jobs, [&](std::size_t i) { order.push_back(i); });
    // Descending priority; the stable sort keeps 1 before 3.
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(Scheduler, PropagatesWorkerException) {
    std::vector<batch::Job> jobs = {{0, 1.0}, {1, 0.5}};
    const batch::Scheduler sched(2);
    EXPECT_THROW(sched.run(jobs,
                           [&](std::size_t i) {
                               if (i == 1) throw Error("boom");
                           }),
                 Error);
}

TEST(Scheduler, RecordAndContinueDrainsQueueOnError) {
    const std::size_t n = 50;
    std::vector<batch::Job> jobs;
    for (std::size_t i = 0; i < n; ++i) jobs.push_back(batch::Job{i, 1.0});
    std::vector<std::atomic<int>> hits(n);
    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        for (auto& h : hits) h = 0;
        const batch::Scheduler sched(threads);
        const auto stats = sched.run(
            jobs,
            [&](std::size_t i) {
                ++hits[i];
                if (i % 10 == 3) throw Error("boom " + std::to_string(i));
            },
            batch::ErrorPolicy::RecordAndContinue);
        // Every job ran exactly once -- the five throwers were recorded,
        // not allowed to cancel the rest of the queue.
        EXPECT_EQ(stats.executed, n);
        EXPECT_EQ(stats.failed_jobs, 5u);
        EXPECT_FALSE(stats.first_error.empty());
        for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
    }
}

// ---------------------------------------------------------------------------
// Collapse

TEST(Collapse, ShortsKeyOnSortedNetPair) {
    const auto a = batch::effect_signature(make_short(1, "n5", "n6", 1e-3));
    const auto b =
        batch::effect_signature(make_short(2, "n6", "n5", 2e-3, "poly"));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, batch::effect_signature(make_short(3, "n5", "n7", 1e-3)));
}

TEST(Collapse, StuckOpenAndSingleTerminalLineOpenCollapse) {
    lift::Fault stuck;
    stuck.kind = lift::FaultKind::StuckOpen;
    stuck.victim = lift::TerminalRef{"M3", 0};
    const auto line = make_term_open(2, "M3", 0, "n9", 1e-3);
    EXPECT_EQ(batch::effect_signature(stuck), batch::effect_signature(line));
}

TEST(Collapse, SplitSignatureIgnoresTerminalOrder) {
    lift::Fault a;
    a.kind = lift::FaultKind::SplitNode;
    a.net = "n1";
    a.group_b = {{"M1", 2}, {"M2", 0}};
    lift::Fault b = a;
    b.group_b = {{"M2", 0}, {"M1", 2}};
    EXPECT_EQ(batch::effect_signature(a), batch::effect_signature(b));
}

TEST(Collapse, GroupsEquivalentFaults) {
    const auto fl = divider_faults();
    const auto classes = batch::collapse(fl.faults);
    ASSERT_EQ(classes.size(), 4u);  // 6 faults, two merged pairs
    // Class of fault #1 also holds fault #3 (same net pair).
    EXPECT_EQ(classes[0].members, (std::vector<std::size_t>{0, 2}));
    // Class of fault #4 also holds the stuck-open #5 (same terminal).
    EXPECT_EQ(classes[2].members, (std::vector<std::size_t>{3, 4}));
}

// ---------------------------------------------------------------------------
// Streaming detection and early abort

TEST(StreamingDetector, MatchesPostHocComparator) {
    // Nominal: flat 2.5 V.  Faulty: drifts away from t = 1 us on.
    spice::Waveforms nominal, faulty;
    nominal.add_trace("out");
    faulty.add_trace("out");
    const double dt = 1e-8;
    for (double t = 0; t <= 4e-6 + dt / 2; t += dt)
        nominal.append(t, {2.5});

    DetectionSpec spec;
    spec.observed = {"out"};
    StreamingDetector det(nominal, spec);
    std::optional<double> streamed;
    for (double t = 0; t <= 4e-6 + dt / 2; t += dt) {
        faulty.append(t, {t < 1e-6 ? 2.5 : 7.0});
        if (det.feed(faulty) && !streamed) streamed = det.detect_time();
    }
    const auto post_hoc = detect_time(nominal, faulty, spec);
    ASSERT_TRUE(post_hoc.has_value());
    ASSERT_TRUE(streamed.has_value());
    EXPECT_EQ(*streamed, *post_hoc);
}

TEST(StreamingDetector, NoDetectionStaysClean) {
    spice::Waveforms nominal, faulty;
    nominal.add_trace("out");
    faulty.add_trace("out");
    for (double t = 0; t <= 1e-6; t += 1e-8) {
        nominal.append(t, {2.5});
        faulty.append(t, {2.6});  // within the 2 V tolerance
    }
    DetectionSpec spec;
    spec.observed = {"out"};
    StreamingDetector det(nominal, spec);
    EXPECT_FALSE(det.feed(faulty));
    EXPECT_FALSE(det.detect_time().has_value());
}

TEST(Engine, StepObserverStopsTransient) {
    Circuit c = divider_fixture();
    spice::SimOptions sopt;
    sopt.uic = true;
    spice::Simulator sim(c, sopt);
    const TranSpec ts{1e-8, 4e-6, 0.0};
    const auto wf = sim.tran(
        ts, [](double t, const spice::Waveforms&) { return t < 1e-6; });
    // Stopped at the sample where the observer said no: 1 us of 4 us.
    EXPECT_NEAR(wf.time().back(), 1e-6, 1e-12);
    EXPECT_EQ(sim.stats().steps_saved, 300u);
    EXPECT_EQ(wf.points(), 101u);
}

TEST(Campaign, EarlyAbortKeepsVerdictsAndSavesSteps) {
    const Circuit c = divider_fixture();
    const auto fl = divider_faults();
    CampaignOptions full = divider_options();
    full.early_abort = false;
    CampaignOptions abort_opt = divider_options();
    abort_opt.early_abort = true;

    const auto r_full = run_campaign(c, fl, full);
    const auto r_abort = run_campaign(c, fl, abort_opt);
    expect_same_results(r_full, r_abort);

    EXPECT_EQ(r_full.batch.early_aborts, 0u);
    EXPECT_EQ(r_full.batch.steps_saved, 0u);
    EXPECT_GT(r_abort.batch.early_aborts, 0u);
    EXPECT_GT(r_abort.batch.steps_saved, 0u);
    // The detectable faults fire early in the 4 us window; most of the
    // integration should have been skipped.
    EXPECT_GT(r_abort.batch.steps_saved, 100u);
}

TEST(Campaign, CollapseSimulatesEachClassOnce) {
    const Circuit c = divider_fixture();
    const auto fl = divider_faults();
    const auto res = run_campaign(c, fl, divider_options());

    EXPECT_EQ(res.batch.classes, 4u);
    EXPECT_EQ(res.batch.collapsed, 2u);
    EXPECT_EQ(res.batch.scheduled, 4u);

    // Fault #3 shares the verdict of #1 but keeps its own identity, and
    // its kernel cost is attributed to the representative alone.
    const auto& rep = res.results[0];
    const auto& dup = res.results[2];
    ASSERT_TRUE(rep.detect_time.has_value());
    ASSERT_TRUE(dup.detect_time.has_value());
    EXPECT_EQ(*rep.detect_time, *dup.detect_time);
    EXPECT_EQ(dup.fault_id, 3);
    EXPECT_EQ(dup.probability, 2e-3);
    EXPECT_EQ(dup.sim_seconds, 0.0);
    EXPECT_GT(rep.sim_seconds, 0.0);

    const auto no_collapse = [&] {
        CampaignOptions opt = divider_options();
        opt.collapse = false;
        return run_campaign(c, fl, opt);
    }();
    EXPECT_EQ(no_collapse.batch.collapsed, 0u);
    EXPECT_EQ(no_collapse.batch.scheduled, 6u);
    expect_same_results(res, no_collapse);
}

// ---------------------------------------------------------------------------
// Determinism (acceptance: byte-identical verdicts at 1, 2 and 8 threads)

TEST(Campaign, DeterministicAcrossThreadCounts) {
    const Circuit c = divider_fixture();
    const auto fl = divider_faults();
    CampaignOptions opt = divider_options();

    opt.threads = 1;
    const auto r1 = run_campaign(c, fl, opt);
    for (const unsigned t : {2u, 8u}) {
        opt.threads = t;
        const auto rt = run_campaign(c, fl, opt);
        SCOPED_TRACE("threads=" + std::to_string(t));
        expect_same_results(r1, rt);
    }
}

TEST(Campaign, VcoDeterministicAcrossThreadCounts) {
    // The paper's VCO campaign end to end: layout-extracted fault list,
    // early abort and collapsing on.  Verdicts and coverage must be
    // byte-identical at every thread count.
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    CampaignOptions opt = e.config.campaign;

    opt.threads = 1;
    const auto r1 = run_campaign(e.sim_circuit, lift_res.faults, opt);
    EXPECT_GT(r1.detected(), 0u);
    for (const unsigned t : {2u, 8u}) {
        opt.threads = t;
        const auto rt = run_campaign(e.sim_circuit, lift_res.faults, opt);
        SCOPED_TRACE("threads=" + std::to_string(t));
        expect_same_results(r1, rt);
    }
}

// ---------------------------------------------------------------------------
// Result store

TEST(ResultStore, RoundTripsRecords) {
    const std::string path = temp_store_path("roundtrip");
    std::filesystem::remove(path);
    FaultSimResult r;
    r.fault_id = 7;
    r.description = "#7 BRI 5->6";
    r.probability = 1.25e-3;
    r.simulated = true;
    r.detect_time = 1.5e-6;
    r.sim_seconds = 0.25;
    r.nr_iterations = 1234;
    r.matrix_size = 17;
    r.steps_saved = 42;
    r.carried = true;  // cross-revision provenance survives the round-trip
    FaultSimResult failed;
    failed.fault_id = 8;
    failed.description = "#8 OPEN";
    failed.simulated = false;
    failed.error = "transient failed to converge at t=0.000001";
    {
        batch::ResultStore store(path, 0xABCDu);
        EXPECT_TRUE(store.loaded().empty());
        store.append(r);
        store.append(failed);
    }
    batch::ResultStore store(path, 0xABCDu);
    ASSERT_EQ(store.loaded().size(), 2u);
    const auto& a = store.loaded()[0];
    EXPECT_EQ(a.fault_id, 7);
    EXPECT_EQ(a.description, r.description);
    EXPECT_EQ(a.probability, r.probability);
    ASSERT_TRUE(a.detect_time.has_value());
    EXPECT_EQ(*a.detect_time, 1.5e-6);
    EXPECT_EQ(a.nr_iterations, 1234u);
    EXPECT_EQ(a.matrix_size, 17u);
    EXPECT_EQ(a.steps_saved, 42u);
    EXPECT_TRUE(a.carried);
    const auto& b = store.loaded()[1];
    EXPECT_FALSE(b.simulated);
    EXPECT_FALSE(b.carried);
    EXPECT_FALSE(b.detect_time.has_value());
    EXPECT_EQ(b.error, failed.error);
    std::filesystem::remove(path);
}

TEST(ResultStore, ManifestMismatchRestartsTheFile) {
    const std::string path = temp_store_path("manifest");
    std::filesystem::remove(path);
    {
        batch::ResultStore store(path, 1);
        FaultSimResult r;
        r.fault_id = 1;
        store.append(r);
    }
    batch::ResultStore other(path, 2);
    EXPECT_TRUE(other.loaded().empty());
    std::filesystem::remove(path);
}

TEST(ResultStore, TruncatedTailLosesAtMostOneRecord) {
    const std::string path = temp_store_path("trunc");
    std::filesystem::remove(path);
    {
        batch::ResultStore store(path, 9);
        for (int i = 1; i <= 3; ++i) {
            FaultSimResult r;
            r.fault_id = i;
            r.description = "fault " + std::to_string(i);
            store.append(r);
        }
    }
    // Chop bytes off the last record, as a kill -9 mid-write would.
    std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
    {
        batch::ResultStore store(path, 9);
        ASSERT_EQ(store.loaded().size(), 2u);
        EXPECT_EQ(store.loaded()[1].fault_id, 2);
        // The trimmed store accepts appends again.
        FaultSimResult r;
        r.fault_id = 4;
        store.append(r);
    }
    batch::ResultStore store(path, 9);
    ASSERT_EQ(store.loaded().size(), 3u);
    EXPECT_EQ(store.loaded()[2].fault_id, 4);
    std::filesystem::remove(path);
}

TEST(ResultStore, TruncationAtEveryByteOffsetOfTheFinalRecord) {
    // A record torn anywhere mid-write -- length field, payload, checksum,
    // even inside the header -- must cost at most that record: the loader
    // never crashes, never double-counts, and the trimmed store accepts
    // appends again.  Exhaustive over every byte offset of the last record.
    const std::string path = temp_store_path("torn");
    std::filesystem::remove(path);
    std::vector<std::uintmax_t> size_after;  // after header, then per record
    {
        batch::ResultStore store(path, 0xFEEDu);
        size_after.push_back(std::filesystem::file_size(path));
        for (int i = 1; i <= 3; ++i) {
            FaultSimResult r;
            r.fault_id = i;
            r.description = "fault " + std::to_string(i);
            r.error = i == 2 ? "solver diverged" : "";
            r.detect_time = 1e-6 * i;
            store.append(r);
            size_after.push_back(std::filesystem::file_size(path));
        }
    }
    // Keep the intact image; restore + truncate per offset.
    std::string full;
    {
        std::ifstream in(path, std::ios::binary);
        full.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_EQ(full.size(), size_after.back());

    for (std::uintmax_t off = 0; off < full.size(); ++off) {
        {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out.write(full.data(), static_cast<std::streamsize>(off));
        }
        // How many records are complete within `off` bytes?
        std::size_t want = 0;
        while (want + 1 < size_after.size() && size_after[want + 1] <= off)
            ++want;
        const bool header_intact = off >= size_after.front();

        batch::ResultStore store(path, 0xFEEDu);
        SCOPED_TRACE("offset " + std::to_string(off));
        ASSERT_EQ(store.loaded().size(), header_intact ? want : 0u);
        for (std::size_t k = 0; k < store.loaded().size(); ++k)
            EXPECT_EQ(store.loaded()[k].fault_id, static_cast<int>(k) + 1);

        // The trimmed store accepts a new record and reloads cleanly.
        FaultSimResult r;
        r.fault_id = 99;
        store.append(r);
        batch::ResultStore reopened(path, 0xFEEDu);
        ASSERT_EQ(reopened.loaded().size(),
                  (header_intact ? want : 0u) + 1u);
        EXPECT_EQ(reopened.loaded().back().fault_id, 99);
    }
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Crash-resume (acceptance: a killed campaign completes without
// re-simulating finished faults)

TEST(Campaign, ResumesAfterTruncatedStore) {
    const Circuit c = divider_fixture();
    const auto fl = divider_faults();
    const std::string path = temp_store_path("resume");
    std::filesystem::remove(path);

    CampaignOptions opt = divider_options();
    opt.result_store = path;
    const auto reference = run_campaign(c, fl, opt);
    EXPECT_EQ(reference.batch.resumed, 0u);

    // Simulate a crash mid-write: drop the tail of the log.
    const auto full_size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full_size - full_size / 3);

    CampaignOptions resume_opt = opt;
    resume_opt.resume = true;
    const auto resumed = run_campaign(c, fl, resume_opt);
    expect_same_results(reference, resumed);
    EXPECT_GT(resumed.batch.resumed, 0u);
    // Finished faults were not re-simulated: fewer kernel runs than
    // equivalence classes.
    EXPECT_LT(resumed.batch.scheduled, resumed.batch.classes);

    // A third run over the now-complete store simulates nothing at all.
    const auto warm = run_campaign(c, fl, resume_opt);
    expect_same_results(reference, warm);
    EXPECT_EQ(warm.batch.scheduled, 0u);
    EXPECT_EQ(warm.batch.resumed, fl.size());
    std::filesystem::remove(path);
}

TEST(Campaign, FreshRunIgnoresStaleStore) {
    const Circuit c = divider_fixture();
    const auto fl = divider_faults();
    const std::string path = temp_store_path("stale");
    std::filesystem::remove(path);

    CampaignOptions opt = divider_options();
    opt.result_store = path;
    run_campaign(c, fl, opt);

    // Different tolerance -> different manifest -> nothing resumes.
    CampaignOptions changed = opt;
    changed.resume = true;
    changed.detection.v_tol = 0.5;
    const auto res = run_campaign(c, fl, changed);
    EXPECT_EQ(res.batch.resumed, 0u);
    EXPECT_EQ(res.batch.scheduled, res.batch.classes);

    // Solver knobs are part of the manifest too: different numerics mean
    // different waveforms, so the store must restart.
    CampaignOptions numerics = opt;
    numerics.resume = true;
    numerics.sim.reltol = 1e-4;
    const auto res2 = run_campaign(c, fl, numerics);
    EXPECT_EQ(res2.batch.resumed, 0u);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// The VCO campaign's "collapsed: 0" (BENCH_parallel_speedup.json)
//
// Investigated: the layout extractor already merges every bridge between
// the same net pair (across layers) into one fault, so the 64-fault VCO
// list genuinely contains 64 distinct electrical effects -- collapsing
// has nothing to fold, and "collapsed: 0" is correct behaviour, not a
// signature-canonicalization bug.  The first test pins that property of
// the extraction; the second proves collapse *does* fire on this very
// campaign the moment two equivalent faults exist.

TEST(Collapse, VcoCampaignFaultsAreAllDistinctEffects) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    std::set<std::string> sigs;
    for (const auto& f : lift_res.faults.faults)
        sigs.insert(batch::effect_signature(f));
    EXPECT_EQ(sigs.size(), lift_res.faults.size());
    EXPECT_EQ(batch::collapse(lift_res.faults.faults).size(),
              lift_res.faults.size());
}

TEST(Campaign, VcoConstructedEquivalentFaultsCollapse) {
    // Clone one extracted bridge as a different-layer mechanism between
    // the same nets: electrically identical, so the campaign must
    // simulate the class once and fan the verdict out.
    const core::VcoExperiment e = core::make_vco_experiment();
    auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    lift::FaultList faults = lift_res.faults;
    ASSERT_FALSE(faults.faults.empty());
    lift::Fault dup = faults.faults.front();
    dup.id = 9001;
    dup.mechanism = "metal1_short";  // same nets, different layer/mechanism
    faults.faults.push_back(dup);

    const auto res = run_campaign(e.sim_circuit, faults, e.config.campaign);
    EXPECT_EQ(res.batch.collapsed, 1u);
    EXPECT_EQ(res.batch.classes, faults.size() - 1);
    EXPECT_EQ(res.batch.scheduled, faults.size() - 1);

    const auto& rep = res.results.front();
    const auto& fan = res.results.back();
    EXPECT_EQ(fan.fault_id, 9001);
    EXPECT_EQ(rep.detect_time.has_value(), fan.detect_time.has_value());
    if (rep.detect_time) {
        EXPECT_EQ(*rep.detect_time, *fan.detect_time);
    }
    // Kernel cost stays attributed to the representative alone.
    EXPECT_EQ(fan.sim_seconds, 0.0);
}
