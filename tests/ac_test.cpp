// AC small-signal analysis: closed-form RC responses, MOS amplifier gain,
// AC fault campaign, and AC deck parsing.

#include "anafault/ac_campaign.h"
#include "circuits/ota.h"
#include "circuits/vco.h"
#include "netlist/parser.h"
#include "netlist/writer.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::netlist;
using namespace catlift::spice;

namespace {

Circuit rc_lowpass(double r = 1e3, double c = 1e-9) {
    Circuit ckt;
    ckt.title = "rc lowpass";
    SourceSpec src = SourceSpec::make_dc(0.0);
    src.ac_mag = 1.0;
    ckt.add_vsource("V1", "in", "0", src);
    ckt.add_resistor("R1", "in", "out", r);
    ckt.add_capacitor("C1", "out", "0", c);
    return ckt;
}

} // namespace

TEST(Ac, RcLowpassMatchesClosedForm) {
    // f3dB = 1/(2 pi R C) = 159.2 kHz for 1k / 1n.
    Simulator sim(rc_lowpass(), SimOptions{});
    AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e8;
    spec.points_per_decade = 20;
    const AcResult res = sim.ac(spec);

    // Passband: 0 dB.
    EXPECT_NEAR(res.mag_db_at("out", 1e3), 0.0, 0.05);
    // At the corner: -3 dB.
    const double f3 = 1.0 / (2 * M_PI * 1e3 * 1e-9);
    EXPECT_NEAR(res.mag_db_at("out", f3), -3.01, 0.2);
    // One decade above: -20 dB.
    EXPECT_NEAR(res.mag_db_at("out", 10 * f3), -20.0, 0.5);
    // Corner-frequency estimator agrees.
    const auto corner = res.corner_frequency("out");
    ASSERT_TRUE(corner.has_value());
    EXPECT_NEAR(*corner, f3, f3 * 0.05);
}

TEST(Ac, PhaseOfRcLowpass) {
    Simulator sim(rc_lowpass(), SimOptions{});
    AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e8;
    spec.points_per_decade = 40;
    const AcResult res = sim.ac(spec);
    const double f3 = 1.0 / (2 * M_PI * 1e3 * 1e-9);
    // Find the sweep point nearest the corner: phase ~ -45 deg.
    std::size_t best = 0;
    for (std::size_t i = 0; i < res.points(); ++i)
        if (std::fabs(res.freq()[i] - f3) <
            std::fabs(res.freq()[best] - f3))
            best = i;
    EXPECT_NEAR(res.phase_deg("out", best), -45.0, 4.0);
}

TEST(Ac, HighpassHasNoLowFrequencyResponse) {
    Circuit ckt;
    SourceSpec src = SourceSpec::make_dc(0.0);
    src.ac_mag = 1.0;
    ckt.add_vsource("V1", "in", "0", src);
    ckt.add_capacitor("C1", "in", "out", 1e-9);
    ckt.add_resistor("R1", "out", "0", 1e3);
    Simulator sim(ckt, SimOptions{});
    AcSpec spec;
    spec.fstart = 1e2;
    spec.fstop = 1e8;
    const AcResult res = sim.ac(spec);
    EXPECT_LT(res.mag_db_at("out", 1e2), -40.0);   // blocked at LF
    EXPECT_NEAR(res.mag_db_at("out", 1e8), 0.0, 0.1);  // passes at HF
}

TEST(Ac, CommonSourceAmplifierGain) {
    // NMOS common-source stage with resistive load: |gain| = gm*RL (RL
    // small enough that lambda barely matters).
    Circuit ckt;
    ckt.add_model(circuits::standard_nmos());
    ckt.add_vsource("VDD", "vdd", "0", SourceSpec::make_dc(5.0));
    SourceSpec vin = SourceSpec::make_dc(1.5);
    vin.ac_mag = 1.0;
    ckt.add_vsource("VIN", "g", "0", vin);
    ckt.add_resistor("RL", "vdd", "d", 10e3);
    ckt.add_mosfet("M1", "d", "g", "0", "0", "nm", 10e-6, 2e-6);
    Simulator sim(ckt, SimOptions{});
    // Expected small-signal gain at the OP.
    auto op = sim.dc_op();
    ASSERT_TRUE(op.converged);
    const double id = (5.0 - op.voltages.at("d")) / 10e3;
    const double gm = std::sqrt(2.0 * 50e-6 * (10.0 / 2.0) * id);
    const double gain_db = 20.0 * std::log10(gm * 10e3);

    AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e6;
    const AcResult res = sim.ac(spec);
    EXPECT_NEAR(res.mag_db_at("d", 1e3), gain_db, 1.0);
}

TEST(Ac, OtaFollowerBandwidth) {
    // The follower is flat at ~0 dB and rolls off at gm/(2 pi CL)-ish.
    circuits::OtaOptions o;
    netlist::Circuit ckt = circuits::build_ota(o);
    // Static supply + AC drive for small-signal analysis.
    ckt.device("VDD").source = SourceSpec::make_dc(5.0);
    SourceSpec vin = SourceSpec::make_dc(2.5);
    vin.ac_mag = 1.0;
    ckt.device("VIN").source = vin;
    Simulator sim(ckt, SimOptions{});
    AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e9;
    const AcResult res = sim.ac(spec);
    EXPECT_NEAR(res.mag_db_at("out", 1e3), 0.0, 1.0);
    const auto corner = res.corner_frequency("out");
    ASSERT_TRUE(corner.has_value());
    EXPECT_GT(*corner, 1e6);
    EXPECT_LT(*corner, 1e9);
}

TEST(Ac, RunsFromDeckCard) {
    const char* deck =
        "rc with ac card\n"
        "V1 in 0 DC 0 AC 1\n"
        "R1 in out 1k\n"
        "C1 out 0 1n\n"
        ".ac dec 10 1k 100meg\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    Simulator sim(c, SimOptions{});
    const AcResult res = sim.ac();  // uses the .ac card
    EXPECT_NEAR(res.mag_db_at("out", 1e3), 0.0, 0.1);
    EXPECT_LT(res.mag_db_at("out", 1e8), -40.0);
    Circuit no_card = parse_spice("t\nR1 a 0 1k\n.end\n");
    Simulator sim2(no_card, SimOptions{});
    EXPECT_THROW(sim2.ac(), Error);
}

TEST(Ac, BadSpecsRejected) {
    Simulator sim(rc_lowpass(), SimOptions{});
    AcSpec bad;
    bad.fstart = 0.0;
    EXPECT_THROW(sim.ac(bad), Error);
    bad.fstart = 1e6;
    bad.fstop = 1e3;
    EXPECT_THROW(sim.ac(bad), Error);
}

TEST(Ac, DeckRoundTripCarriesAcMagnitude) {
    const char* deck =
        "t\n"
        "V1 in 0 DC 2.5 AC 1\n"
        "R1 in out 1k\n"
        "C1 out 0 1n\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    EXPECT_DOUBLE_EQ(c.device("V1").source.ac_mag, 1.0);
    EXPECT_DOUBLE_EQ(c.device("V1").source.dc, 2.5);
    const Circuit back = parse_spice(write_spice(c));
    EXPECT_DOUBLE_EQ(back.device("V1").source.ac_mag, 1.0);
}

// ---------------------------------------------------------------------------
// AC fault campaign on the RC filter and the OTA.

TEST(AcCampaign, RcFaultsShiftTheCorner) {
    Circuit ckt = rc_lowpass();
    lift::FaultList fl;
    lift::Fault s;  // capacitor short: output follows input -> flat response
    s.id = 1;
    s.kind = lift::FaultKind::LocalShort;
    s.mechanism = "m";
    s.probability = 1e-8;
    s.net_a = "out";
    s.net_b = "0";
    fl.faults.push_back(s);
    lift::Fault o;  // capacitor open: lowpass becomes all-pass
    o.id = 2;
    o.kind = lift::FaultKind::LineOpen;
    o.mechanism = "m";
    o.probability = 1e-8;
    o.net = "out";
    o.group_b = {{"C1", 0}};
    fl.faults.push_back(o);

    anafault::AcCampaignOptions opt;
    opt.observed = {"out"};
    opt.sweep.fstart = 1e3;
    opt.sweep.fstop = 1e8;
    const auto res = anafault::run_ac_campaign(ckt, fl, opt);
    ASSERT_EQ(res.results.size(), 2u);
    EXPECT_TRUE(res.results[0].detected);  // shorted output: huge deviation
    EXPECT_TRUE(res.results[1].detected);  // open cap: passband extends
    EXPECT_DOUBLE_EQ(res.coverage(), 100.0);
    for (const auto& r : res.results)
        EXPECT_GT(r.max_deviation_db, 3.0) << r.description;
}

TEST(AcCampaign, ToleranceGates) {
    Circuit ckt = rc_lowpass();
    lift::FaultList fl;
    lift::Fault o;
    o.id = 1;
    o.kind = lift::FaultKind::LineOpen;
    o.mechanism = "m";
    o.probability = 1e-8;
    o.net = "out";
    o.group_b = {{"C1", 0}};
    fl.faults.push_back(o);
    anafault::AcCampaignOptions opt;
    opt.observed = {"out"};
    opt.db_tol = 1000.0;  // nothing can exceed this
    const auto res = anafault::run_ac_campaign(ckt, fl, opt);
    EXPECT_DOUBLE_EQ(res.coverage(), 0.0);
}
