// Second demonstrator: the 7-T OTA buffer through the complete CAT flow
// (simulation, layout synthesis, LVS, LIFT, campaign).  Linear circuits
// exercise different fault behaviour than the oscillator: gain/offset
// errors instead of frequency changes.

#include "anafault/campaign.h"
#include "circuits/ota.h"
#include "extract/extractor.h"
#include "layout/cellgen.h"
#include "layout/drc.h"
#include "lift/extract_faults.h"
#include "lift/schematic_faults.h"
#include "spice/engine.h"
#include "spice/measure.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::circuits;

namespace {

const layout::Technology kTech =
    layout::Technology::single_poly_double_metal();

spice::Waveforms simulate(netlist::Circuit ckt) {
    spice::SimOptions opt;
    opt.uic = true;
    spice::Simulator sim(ckt, opt);
    return sim.tran();
}

} // namespace

TEST(Ota, FollowsItsInput) {
    auto wf = simulate(build_ota());
    // After bias settling the follower tracks the 1 MHz sine closely.
    double max_err = 0.0;
    for (double t = 1e-6; t < 4e-6; t += 1e-8)
        max_err = std::max(max_err,
                           std::fabs(wf.at("out", t) - wf.at("inp", t)));
    EXPECT_LT(max_err, 0.1);
    EXPECT_NEAR(swing(wf, "out", 1e-6, 4e-6), 1.0, 0.1);  // 0.5 V amplitude
}

TEST(Ota, GainErrorScalesWithAmplitude) {
    OtaOptions big;
    big.sine_amp = 1.5;  // drive harder: follower error grows
    auto wf = simulate(build_ota(big));
    EXPECT_GT(swing(wf, "out", 1e-6, 4e-6), 2.0);
}

TEST(Ota, LayoutDrcCleanAndLvsClean) {
    OtaOptions o;
    o.with_sources = false;
    const netlist::Circuit dev = build_ota(o);
    const layout::Layout lo = layout::generate_cell_layout(dev);
    const auto drc = layout::run_drc(lo, kTech);
    for (const auto& v : drc) ADD_FAILURE() << v.describe();
    auto r = extract::lvs(lo, kTech, dev);
    for (const auto& d : r.diffs) ADD_FAILURE() << d;
    EXPECT_TRUE(r.equivalent);
}

TEST(Ota, SchematicFaultArithmetic) {
    OtaOptions o;
    o.with_sources = false;
    const auto fl = lift::all_schematic_faults(build_ota(o));
    // 7 transistors x 3 + 1 capacitor open = 22 opens.
    EXPECT_EQ(fl.opens(), 22u);
    // 7 x 3 pairs - 3 designed diode shorts (M3, M6, M7) - M2's designed
    // gate-drain connection through the follower feedback + 1 cap short.
    EXPECT_EQ(fl.shorts(), 7u * 3u - 4u + 1u);
}

TEST(Ota, LiftExtractsRankedFaults) {
    OtaOptions o;
    o.with_sources = false;
    const netlist::Circuit dev = build_ota(o);
    const layout::Layout lo = layout::generate_cell_layout(dev);
    lift::LiftOptions opt;
    opt.net_blocks = ota_net_blocks();
    const auto res = lift::extract_faults(lo, kTech, opt);
    EXPECT_GT(res.faults.size(), 10u);
    EXPECT_GT(res.faults.shorts(), res.faults.size() / 2);  // bridges rule
    for (const auto& f : res.faults.faults)
        EXPECT_GT(f.probability, 0.0) << f.describe();
}

TEST(Ota, CampaignDetectsMostFaults) {
    // Full pipeline: LIFT list -> AnaFAULT with a sine stimulus and a
    // tighter amplitude tolerance (the buffer only swings 1 Vpp).
    OtaOptions o;
    o.with_sources = false;
    const netlist::Circuit dev = build_ota(o);
    const layout::Layout lo = layout::generate_cell_layout(dev);
    lift::LiftOptions lopt;
    lopt.net_blocks = ota_net_blocks();
    const auto lift_res = lift::extract_faults(lo, kTech, lopt);

    anafault::CampaignOptions copt;
    copt.threads = 4;
    copt.detection.observed = {kOtaOutput};
    copt.detection.v_tol = 0.4;
    const auto res =
        anafault::run_campaign(build_ota(), lift_res.faults, copt);
    EXPECT_EQ(res.failed(), 0u);
    EXPECT_GT(res.final_coverage(), 70.0);
    // The coverage curve is monotone and ends at the final value.
    const auto curve = res.coverage_curve(20);
    EXPECT_DOUBLE_EQ(curve.back().second, res.final_coverage());
}
