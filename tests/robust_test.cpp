// Failure-containment tests: the deterministic failpoint framework,
// typed per-fault execution budgets, the retry/degradation ladder, the
// quarantined verdict's persistence and cross-revision carry, torn-write
// resume, and the offline store repair command.

#include "anafault/campaign.h"
#include "anafault/incremental.h"
#include "anafault/retry.h"
#include "batch/result_store.h"
#include "robust/failpoint.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <string>
#include <type_traits>

using namespace catlift;
using namespace catlift::anafault;
using netlist::Circuit;
using netlist::SourceSpec;
using netlist::TranSpec;

namespace {

/// Pulsed voltage divider (same fixture as batch_test): cheap to
/// simulate, faults on it clearly detectable at node "out".
Circuit divider_fixture() {
    Circuit c;
    c.title = "divider";
    c.add_vsource("V1", "in", "0",
                  SourceSpec::make_pulse(0, 5, 0, 1e-9, 1e-9, 1e-6, 2e-6));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_resistor("R2", "out", "0", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-10);
    c.tran = TranSpec{1e-8, 4e-6, 0.0};
    return c;
}

lift::Fault make_short(int id, const std::string& a, const std::string& b,
                       double prob) {
    lift::Fault f;
    f.id = id;
    f.kind = lift::FaultKind::LocalShort;
    f.mechanism = "m1_short";
    f.probability = prob;
    f.net_a = a;
    f.net_b = b;
    return f;
}

lift::FaultList one_fault_list() {
    lift::FaultList fl;
    fl.circuit = "divider";
    fl.faults.push_back(make_short(1, "out", "0", 4e-3));
    return fl;
}

CampaignOptions divider_options() {
    CampaignOptions opt;
    opt.detection.observed = {"out"};
    return opt;
}

std::string temp_store_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("catlift_robust_" + tag + ".store"))
        .string();
}

std::uint64_t hits_of(const std::string& name) {
    for (const robust::FailpointStatus& s : robust::status())
        if (s.name == name) return s.hits;
    return 0;
}

std::uint64_t fired_of(const std::string& name) {
    for (const robust::FailpointStatus& s : robust::status())
        if (s.name == name) return s.fired;
    return 0;
}

/// Every test arms and disarms its own failpoints; the global table must
/// never leak into the next test.
class Failpoints : public ::testing::Test {
protected:
    void SetUp() override { robust::disarm_all(); }
    void TearDown() override { robust::disarm_all(); }
};

} // namespace

// ---------------------------------------------------------------------------
// Failpoint framework

TEST_F(Failpoints, DisarmedSiteIsANoOp) {
    EXPECT_FALSE(robust::armed());
    EXPECT_FALSE(robust::hit("anything").has_value());
}

TEST_F(Failpoints, GenericActionsThrowTheDocumentedTypes) {
    robust::arm("a=error; b=throw, c=oor");
    EXPECT_TRUE(robust::armed());
    EXPECT_THROW(robust::hit("a"), Error);
    EXPECT_THROW(robust::hit("b"), std::runtime_error);
    EXPECT_THROW(robust::hit("c"), std::out_of_range);
    // An armed table never fires sites it does not name.
    EXPECT_FALSE(robust::hit("d").has_value());
    EXPECT_EQ(robust::total_fired(), 3u);
}

TEST_F(Failpoints, SignalActionsReturnToTheSite) {
    robust::arm("s=torn");
    const auto fp = robust::hit("s");
    ASSERT_TRUE(fp.has_value());
    EXPECT_EQ(fp->action, robust::FailAction::Torn);
    robust::arm("k=singular");
    ASSERT_TRUE(robust::hit("k").has_value());
    EXPECT_EQ(robust::hit("k")->action, robust::FailAction::Singular);
}

TEST_F(Failpoints, HitWindowGatesFiring) {
    robust::arm("w=error@2+1");
    EXPECT_FALSE(robust::hit("w").has_value());  // hit 1: before the window
    EXPECT_THROW(robust::hit("w"), Error);       // hit 2: fires
    EXPECT_FALSE(robust::hit("w").has_value());  // hit 3: window closed
    EXPECT_EQ(hits_of("w"), 3u);
    EXPECT_EQ(fired_of("w"), 1u);
}

TEST_F(Failpoints, SleepActionCarriesItsParameter) {
    robust::arm("z=sleep:1");
    // Sleeps 1 ms inside hit() and fires without throwing.
    EXPECT_FALSE(robust::hit("z").has_value());
    EXPECT_EQ(fired_of("z"), 1u);
}

TEST_F(Failpoints, RearmingReplacesAndDisarmResets) {
    robust::arm("x=error");
    EXPECT_THROW(robust::hit("x"), Error);
    robust::arm("x=torn");  // replace: same name, new action, counters reset
    EXPECT_EQ(robust::hit("x")->action, robust::FailAction::Torn);
    robust::disarm_all();
    EXPECT_FALSE(robust::armed());
    EXPECT_TRUE(robust::status().empty());
}

TEST_F(Failpoints, MalformedSpecsThrow) {
    EXPECT_THROW(robust::arm("no-equals-sign"), Error);
    EXPECT_THROW(robust::arm("x=unknown_action"), Error);
    EXPECT_THROW(robust::arm("x=error@zero"), Error);
    EXPECT_THROW(robust::arm("x=error@0"), Error);  // hit index is 1-based
}

// ---------------------------------------------------------------------------
// Execution budgets

static_assert(std::is_base_of_v<Error, spice::BudgetExceeded>,
              "BudgetExceeded must stay an Error so existing per-fault "
              "catches contain it");

TEST(Budget, NrIterationBudgetThrowsTyped) {
    const Circuit c = divider_fixture();
    spice::SimOptions so;
    so.max_nr_total = 1;
    spice::Simulator sim(c, so);
    EXPECT_THROW(sim.dc_op(), spice::BudgetExceeded);
}

TEST(Budget, TranStepBudgetThrowsTyped) {
    const Circuit c = divider_fixture();
    spice::SimOptions so;
    so.max_tran_steps = 3;
    spice::Simulator sim(c, so);
    try {
        sim.tran();
        FAIL() << "transient ran to tstop despite a 3-step budget";
    } catch (const spice::BudgetExceeded& e) {
        EXPECT_NE(std::string(e.what()).find("step budget"),
                  std::string::npos);
    }
}

TEST(Budget, WallDeadlineThrowsTyped) {
    const Circuit c = divider_fixture();
    spice::SimOptions so;
    so.max_wall_seconds = 1e-12;
    spice::Simulator sim(c, so);
    EXPECT_THROW(sim.tran(), spice::BudgetExceeded);
}

TEST(Budget, UnlimitedByDefault) {
    const Circuit c = divider_fixture();
    spice::Simulator sim(c, {});
    EXPECT_NO_THROW(sim.tran());
}

// ---------------------------------------------------------------------------
// Retry/degradation ladder

TEST(RetryLadder, EscalatesInDocumentedOrder) {
    spice::SimOptions base;
    base.bypass = true;
    base.adaptive = true;
    const double g0 = base.gmin;

    const spice::SimOptions a1 = degrade_sim(base, 1);
    EXPECT_FALSE(a1.bypass);
    EXPECT_EQ(a1.device_bypass_tol, 0.0);
    EXPECT_TRUE(a1.adaptive);

    const spice::SimOptions a2 = degrade_sim(base, 2);
    EXPECT_FALSE(a2.bypass);
    EXPECT_FALSE(a2.adaptive);
    EXPECT_EQ(a2.sparse_threshold, base.sparse_threshold);

    const spice::SimOptions a3 = degrade_sim(base, 3);
    EXPECT_EQ(a3.sparse_threshold, std::numeric_limits<std::size_t>::max());
    EXPECT_EQ(a3.symbolic_cache, nullptr);
    EXPECT_EQ(a3.gmin, g0);

    const spice::SimOptions a4 = degrade_sim(base, 4);
    EXPECT_DOUBLE_EQ(a4.gmin, g0 * 10.0);
    const spice::SimOptions a5 = degrade_sim(base, 5);
    EXPECT_DOUBLE_EQ(a5.gmin, g0 * 100.0);

    EXPECT_EQ(attempt_label(0), "base");
    EXPECT_EQ(attempt_label(1), "no-bypass");
    EXPECT_EQ(attempt_label(2), "fixed-grid");
    EXPECT_EQ(attempt_label(3), "dense");
    EXPECT_EQ(attempt_label(4), "gmin-x10");
    EXPECT_EQ(attempt_label(5), "gmin-x100");
}

namespace {

/// Newton solves the campaign's *nominal* simulation performs -- used to
/// open failpoint windows on the faulty attempts only.  Counted with a
/// never-firing window so arming does not perturb the run.
std::uint64_t nominal_newton_hits(const Circuit& c,
                                  const CampaignOptions& opt) {
    robust::disarm_all();
    robust::arm("kernel.newton=error@1000000000");
    const lift::FaultList empty{/*circuit=*/"divider", /*faults=*/{}};
    run_campaign(c, empty, opt);
    const std::uint64_t h = hits_of("kernel.newton");
    robust::disarm_all();
    return h;
}

} // namespace

TEST_F(Failpoints, LadderExhaustionQuarantinesTheFault) {
    const Circuit c = divider_fixture();
    const lift::FaultList fl = one_fault_list();
    CampaignOptions opt = divider_options();
    opt.max_retries = 2;

    const std::uint64_t h = nominal_newton_hits(c, opt);
    ASSERT_GT(h, 0u);
    // Every Newton solve after the nominal run -- i.e. every attempt of
    // the one fault -- throws at entry.
    robust::arm("kernel.newton=error@" + std::to_string(h + 1));

    const CampaignResult res = run_campaign(c, fl, opt);
    ASSERT_EQ(res.results.size(), 1u);
    const FaultSimResult& r = res.results[0];
    EXPECT_FALSE(r.simulated);
    EXPECT_TRUE(r.quarantined);
    EXPECT_EQ(r.attempts, 3u);  // base + 2 retries
    // The retry log records the ladder's escalation order.
    const auto p_base = r.retry_log.find("[base]");
    const auto p_nb = r.retry_log.find("[no-bypass]");
    const auto p_fg = r.retry_log.find("[fixed-grid]");
    ASSERT_NE(p_base, std::string::npos) << r.retry_log;
    ASSERT_NE(p_nb, std::string::npos) << r.retry_log;
    ASSERT_NE(p_fg, std::string::npos) << r.retry_log;
    EXPECT_LT(p_base, p_nb);
    EXPECT_LT(p_nb, p_fg);

    EXPECT_EQ(res.quarantined(), 1u);
    EXPECT_EQ(res.failed(), 0u);
    EXPECT_EQ(res.retries(), 2u);
    EXPECT_EQ(res.batch.retries, 2u);
    EXPECT_EQ(res.batch.quarantined, 1u);
    EXPECT_EQ(res.batch.job_errors, 0u);  // contained per fault, not per job
}

TEST_F(Failpoints, InjectedOutOfRangeIsContainedAsFailed) {
    // The satellite regression: std::out_of_range escaping a per-fault
    // `catch (const Error&)` used to kill the whole campaign.  With
    // retries off it must retire the fault `failed`, not `quarantined`,
    // and the campaign must complete.
    const Circuit c = divider_fixture();
    const lift::FaultList fl = one_fault_list();
    CampaignOptions opt = divider_options();
    opt.max_retries = 0;

    const std::uint64_t h = nominal_newton_hits(c, opt);
    robust::arm("kernel.newton=oor@" + std::to_string(h + 1));

    const CampaignResult res = run_campaign(c, fl, opt);
    ASSERT_EQ(res.results.size(), 1u);
    EXPECT_FALSE(res.results[0].simulated);
    EXPECT_FALSE(res.results[0].quarantined);
    EXPECT_EQ(res.results[0].attempts, 1u);
    EXPECT_NE(res.results[0].error.find("out_of_range"), std::string::npos);
    EXPECT_EQ(res.failed(), 1u);
    EXPECT_EQ(res.quarantined(), 0u);
}

// ---------------------------------------------------------------------------
// Quarantine persistence and cross-revision carry

TEST(Quarantine, RoundTripsThroughTheStore) {
    const std::string path = temp_store_path("quarantine_rt");
    std::filesystem::remove(path);
    batch::FaultSimResult q;
    q.fault_id = 3;
    q.description = "#3 BRI out->0";
    q.probability = 1e-3;
    q.simulated = false;
    q.error = "budget: NR iteration budget of 500 exhausted";
    q.attempts = 5;
    q.quarantined = true;
    q.retry_log = "attempt 1 [base]: boom; attempt 2 [no-bypass]: boom";
    {
        batch::ResultStore store(path, 0x51u);
        store.append(q);
    }
    batch::ResultStore store(path, 0x51u);
    ASSERT_EQ(store.loaded().size(), 1u);
    const batch::FaultSimResult& r = store.loaded()[0];
    EXPECT_FALSE(r.simulated);
    EXPECT_TRUE(r.quarantined);
    EXPECT_EQ(r.attempts, 5u);
    EXPECT_EQ(r.retry_log, q.retry_log);
    EXPECT_EQ(r.error, q.error);
    std::filesystem::remove(path);
}

TEST(Quarantine, CarriesAcrossRevisions) {
    const Circuit c = divider_fixture();
    const lift::FaultList fl = one_fault_list();
    const CampaignOptions opt = divider_options();

    // A baseline store whose single record is a quarantined verdict,
    // bound to the exact manifest the incremental engine will expect.
    const std::string bpath = temp_store_path("quarantine_carry");
    std::filesystem::remove(bpath);
    {
        batch::ResultStore store(bpath, campaign_manifest(c, fl, opt));
        batch::FaultSimResult q;
        q.fault_id = fl.faults[0].id;
        q.description = fl.faults[0].describe();
        q.probability = fl.faults[0].probability;
        q.simulated = false;
        q.error = "boom";
        q.attempts = 5;
        q.quarantined = true;
        q.retry_log = "attempt 1 [base]: boom";
        store.append(q);
    }

    IncrementalOptions iopt;
    iopt.campaign = opt;
    iopt.baseline_store = bpath;
    const IncrementalResult inc = run_incremental_campaign(c, fl, fl, iopt);
    EXPECT_EQ(inc.inc.carried, 1u);
    EXPECT_EQ(inc.inc.resimulated, 0u);
    ASSERT_EQ(inc.campaign.results.size(), 1u);
    const FaultSimResult& r = inc.campaign.results[0];
    EXPECT_TRUE(r.quarantined);
    EXPECT_TRUE(r.carried);
    EXPECT_EQ(r.attempts, 5u);
    EXPECT_EQ(inc.campaign.quarantined(), 1u);
    EXPECT_EQ(inc.campaign.batch.scheduled, 0u);  // nothing resimulated
    std::filesystem::remove(bpath);
}

// ---------------------------------------------------------------------------
// Torn writes, durability, repair

TEST_F(Failpoints, TornAppendIsContainedAndResumeRecovers) {
    const Circuit c = divider_fixture();
    lift::FaultList fl;
    fl.circuit = "divider";
    fl.faults.push_back(make_short(1, "out", "0", 4e-3));
    fl.faults.push_back(make_short(2, "in", "out", 3e-3));
    fl.faults.push_back(make_short(3, "in", "0", 2e-3));
    CampaignOptions opt = divider_options();
    opt.threads = 1;  // deterministic append (and failpoint) order

    const CampaignResult ref = run_campaign(c, fl, opt);

    // Tear the second append mid-record: the fault's verdict must survive
    // in memory (campaign completes, identical verdicts), only the store
    // suffers -- and everything after the tear is garbage on disk.
    const std::string path = temp_store_path("torn");
    std::filesystem::remove(path);
    robust::arm("store.append=torn@2+1");
    opt.result_store = path;
    const CampaignResult torn = run_campaign(c, fl, opt);
    EXPECT_EQ(torn.batch.store_errors, 1u);
    ASSERT_EQ(torn.results.size(), ref.results.size());
    for (std::size_t i = 0; i < ref.results.size(); ++i) {
        EXPECT_EQ(torn.results[i].simulated, ref.results[i].simulated);
        EXPECT_EQ(torn.results[i].detect_time, ref.results[i].detect_time);
    }

    // Resume from the torn store: the loader trims at the tear, resumes
    // the one intact record and re-simulates the rest; verdicts are
    // byte-identical to the uninterrupted reference.
    robust::disarm_all();
    opt.resume = true;
    const CampaignResult resumed = run_campaign(c, fl, opt);
    EXPECT_EQ(resumed.batch.resumed, 1u);
    ASSERT_EQ(resumed.results.size(), ref.results.size());
    for (std::size_t i = 0; i < ref.results.size(); ++i) {
        EXPECT_EQ(resumed.results[i].fault_id, ref.results[i].fault_id);
        EXPECT_EQ(resumed.results[i].simulated, ref.results[i].simulated);
        EXPECT_EQ(resumed.results[i].detect_time,
                  ref.results[i].detect_time);
    }
    std::filesystem::remove(path);
}

TEST(StoreDurability, FsyncModeRoundTrips) {
    const std::string path = temp_store_path("fsync");
    std::filesystem::remove(path);
    batch::FaultSimResult r;
    r.fault_id = 1;
    r.simulated = true;
    r.detect_time = 2e-6;
    {
        batch::ResultStore store(path, 7u, batch::Durability::Fsync);
        store.append(r);
    }
    batch::ResultStore store(path, 7u, batch::Durability::Fsync);
    ASSERT_EQ(store.loaded().size(), 1u);
    EXPECT_EQ(store.loaded()[0].fault_id, 1);
    std::filesystem::remove(path);
}

TEST(RepairStore, TrimsToLastGoodRecordAndReports) {
    const std::string path = temp_store_path("repair");
    std::filesystem::remove(path);
    batch::FaultSimResult r;
    r.fault_id = 1;
    r.simulated = true;
    {
        batch::ResultStore store(path, 0x99u);
        store.append(r);
        r.fault_id = 2;
        store.append(r);
    }
    const auto full = std::filesystem::file_size(path);
    // Tear the tail of the second record.
    std::filesystem::resize_file(path, full - 4);

    const batch::RepairReport rep = batch::repair_store(path);
    EXPECT_TRUE(rep.header_ok);
    EXPECT_EQ(rep.records_kept, 1u);
    EXPECT_EQ(rep.bytes_total, static_cast<std::size_t>(full - 4));
    EXPECT_LT(rep.bytes_kept, rep.bytes_total);
    EXPECT_EQ(std::filesystem::file_size(path), rep.bytes_kept);

    // A second repair is a no-op; the repaired store opens cleanly.
    const batch::RepairReport rep2 = batch::repair_store(path);
    EXPECT_EQ(rep2.records_kept, 1u);
    EXPECT_EQ(rep2.bytes_kept, rep2.bytes_total);
    batch::ResultStore store(path, 0x99u);
    ASSERT_EQ(store.loaded().size(), 1u);
    EXPECT_EQ(store.loaded()[0].fault_id, 1);

    EXPECT_THROW(batch::repair_store(path + ".does-not-exist"), Error);
    std::filesystem::remove(path);
}
