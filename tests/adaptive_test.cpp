// Adaptive LTE-controlled transient kernel and the per-analysis observer
// protocol: golden-waveform regression against the fixed grid (VCO and
// OTA decks), campaign verdict determinism with and without adaptive
// stepping, AC mid-sweep early abort, and warm-started DC solves.

#include "anafault/ac_campaign.h"
#include "anafault/campaign.h"
#include "anafault/comparator.h"
#include "anafault/dc_campaign.h"
#include "circuits/ota.h"
#include "circuits/vco.h"
#include "core/cat.h"
#include "lift/extract_faults.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::netlist;
using namespace catlift::spice;

namespace {

Circuit rc_step(double r, double c) {
    Circuit ckt;
    ckt.title = "rc step";
    ckt.add_vsource("V1", "in", "0",
                    SourceSpec::make_pulse(0, 5, 0, 1e-9, 1e-9, 1, 2));
    ckt.add_resistor("R1", "in", "out", r);
    ckt.add_capacitor("C1", "out", "0", c);
    return ckt;
}

Circuit rc_lowpass() {
    Circuit ckt;
    ckt.title = "rc lowpass";
    SourceSpec src = SourceSpec::make_dc(0.0);
    src.ac_mag = 1.0;
    ckt.add_vsource("V1", "in", "0", src);
    ckt.add_resistor("R1", "in", "out", 1e3);
    ckt.add_capacitor("C1", "out", "0", 1e-9);
    return ckt;
}

lift::Fault cap_short_fault() {
    lift::Fault f;
    f.id = 1;
    f.kind = lift::FaultKind::LocalShort;
    f.mechanism = "m1_short";
    f.probability = 1e-3;
    f.net_a = "out";
    f.net_b = "0";
    return f;
}

/// Max |a - b| over one trace, sampled on a's own time axis.
double max_trace_deviation(const Waveforms& a, const Waveforms& b,
                           const std::string& node) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.points(); ++i)
        worst = std::max(worst, std::fabs(a.trace(node)[i] -
                                          b.at(node, a.time()[i])));
    return worst;
}

} // namespace

// ---------------------------------------------------------------------------
// Adaptive transient kernel

TEST(AdaptiveTran, RcMatchesClosedFormWithFarFewerSolves) {
    Circuit ckt = rc_step(1e3, 1e-9);
    SimOptions opt;
    opt.uic = true;
    opt.cmin = 0.0;
    opt.adaptive = true;
    Simulator sim(ckt, opt);
    const TranSpec ts{1e-8, 5e-6, 0.0};  // 500 grid steps, tau = 1 us
    const auto wf = sim.tran(ts);

    // Accuracy against the closed form, same tolerance as the fixed grid.
    for (double t : {0.5e-6, 1e-6, 2e-6, 4e-6}) {
        const double expect = 5.0 * (1.0 - std::exp(-t / 1e-6));
        EXPECT_NEAR(wf.at("out", t), expect, 0.03) << "t=" << t;
    }
    // The waveform still carries every grid sample...
    EXPECT_EQ(wf.points(), 501u);
    EXPECT_NEAR(wf.time().back(), 5e-6, 1e-15);
    // ...but the settled tail was integrated in strides, not per sample.
    EXPECT_LT(sim.stats().tran_steps, 500u);
    EXPECT_GT(sim.stats().grid_points_interpolated, 100u);
    EXPECT_EQ(sim.stats().tran_steps + sim.stats().grid_points_interpolated,
              500u);
}

TEST(AdaptiveTran, AgreesWithFixedGridOnRc) {
    const TranSpec ts{1e-8, 5e-6, 0.0};
    auto run = [&](bool adaptive) {
        SimOptions opt;
        opt.uic = true;
        opt.cmin = 0.0;
        opt.adaptive = adaptive;
        Simulator sim(rc_step(1e3, 1e-9), opt);
        return sim.tran(ts);
    };
    const auto fixed = run(false);
    const auto adaptive = run(true);
    ASSERT_EQ(fixed.points(), adaptive.points());
    EXPECT_LT(max_trace_deviation(fixed, adaptive, "out"), 0.05);
}

TEST(AdaptiveTran, ObserverAbortsAtInterpolatedSamplesToo) {
    // Same shape as the fixed-grid observer test: stop at t >= 1us of a
    // 4us / 400-step run.  The adaptive kernel fires the observer at every
    // grid sample (solved or interpolated), so the accounting is identical.
    Circuit ckt = rc_step(1e3, 1e-9);
    SimOptions opt;
    opt.uic = true;
    opt.adaptive = true;
    Simulator sim(ckt, opt);
    const auto wf = sim.tran(TranSpec{1e-8, 4e-6, 0.0},
                             [](double t, const Waveforms&) {
                                 return t < 1e-6 - 1e-15;
                             });
    EXPECT_NEAR(wf.time().back(), 1e-6, 1e-12);
    EXPECT_EQ(wf.points(), 101u);
    EXPECT_EQ(sim.stats().steps_saved, 300u);
}

TEST(AdaptiveTran, PulseAfterQuiescenceIsNotSteppedOver) {
    // Regression: a stride grown across a quiescent stretch samples the
    // sources only at its endpoint, so a pulse inside the stride would be
    // silently integrated away unless the kernel refuses strides that
    // cross a source nonlinearity.  5 V pulse at 2.5 us on a 4 us grid,
    // preceded by 250 grid steps of nothing.
    auto run = [&](bool adaptive) {
        Circuit ckt;
        ckt.add_vsource("V1", "in", "0",
                        SourceSpec::make_pulse(0, 5, 2.5e-6, 1e-9, 1e-9,
                                               0.2e-6, 10e-6));
        ckt.add_resistor("R1", "in", "out", 1e3);
        ckt.add_capacitor("C1", "out", "0", 1e-11);  // tau = 10 ns
        SimOptions opt;
        opt.uic = true;
        opt.cmin = 0.0;
        opt.adaptive = adaptive;
        Simulator sim(ckt, opt);
        return sim.tran(TranSpec{1e-8, 4e-6, 0.0});
    };
    const auto fixed = run(false);
    const auto adaptive = run(true);
    EXPECT_GT(fixed.max_of("out"), 4.5);
    EXPECT_GT(adaptive.max_of("out"), 4.5);  // the pulse must survive
    EXPECT_LT(max_trace_deviation(fixed, adaptive, "out"), 0.1);
}

TEST(AdaptiveTran, FixedGridModeIsUntouchedByDefault) {
    Circuit ckt = rc_step(1e3, 1e-9);
    SimOptions opt;
    opt.uic = true;
    Simulator sim(ckt, opt);  // adaptive defaults to off on the raw kernel
    const auto wf = sim.tran(TranSpec{1e-8, 4e-6, 0.0});
    EXPECT_EQ(wf.points(), 401u);
    EXPECT_EQ(sim.stats().grid_points_interpolated, 0u);
    EXPECT_GE(sim.stats().tran_steps, 400u);
}

TEST(AdaptiveTran, VcoGoldenWithinDetectionTolerance) {
    // The paper's 26-T VCO, 400-step run: the adaptive waveform must agree
    // with the fixed grid within the paper's own detection tolerance (2 V
    // amplitude / 0.2 us time on node 11) -- i.e. the comparator that
    // decides fault verdicts cannot tell the two nominal runs apart.
    auto run = [&](bool adaptive) {
        SimOptions opt;
        opt.uic = true;
        opt.adaptive = adaptive;
        Simulator sim(circuits::build_vco(), opt);
        return sim.tran();
    };
    const auto fixed = run(false);
    const auto adaptive = run(true);
    ASSERT_EQ(fixed.points(), adaptive.points());
    anafault::DetectionSpec spec;
    spec.observed = {circuits::kVcoOutput};
    EXPECT_FALSE(anafault::detect_time(fixed, adaptive, spec).has_value());
    EXPECT_FALSE(anafault::detect_time(adaptive, fixed, spec).has_value());
}

TEST(AdaptiveTran, OtaGoldenAgainstFixedGrid) {
    auto run = [&](bool adaptive, SimStats& stats) {
        SimOptions opt;
        opt.adaptive = adaptive;
        Simulator sim(circuits::build_ota(), opt);
        const auto wf = sim.tran();
        stats = sim.stats();
        return wf;
    };
    SimStats sf, sa;
    const auto fixed = run(false, sf);
    const auto adaptive = run(true, sa);
    ASSERT_EQ(fixed.points(), adaptive.points());
    EXPECT_LT(max_trace_deviation(fixed, adaptive, circuits::kOtaOutput),
              0.2);
    // The follower tracks a smooth sine: the LTE controller must find
    // stride headroom somewhere in the run.
    EXPECT_LT(sa.tran_steps, sf.tran_steps);
}

// ---------------------------------------------------------------------------
// Campaign determinism: adaptive on/off must not change verdicts

TEST(AdaptiveCampaign, VcoVerdictsIdenticalWithAndWithoutAdaptive) {
    const core::VcoExperiment e = core::make_vco_experiment();
    const auto lift_res =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);

    anafault::CampaignOptions adaptive = e.config.campaign;
    adaptive.threads = 2;
    ASSERT_TRUE(adaptive.sim.adaptive);  // campaign default
    anafault::CampaignOptions fixed = adaptive;
    fixed.sim.adaptive = false;

    const auto ra = run_campaign(e.sim_circuit, lift_res.faults, adaptive);
    const auto rf = run_campaign(e.sim_circuit, lift_res.faults, fixed);

    ASSERT_EQ(ra.results.size(), rf.results.size());
    EXPECT_GT(ra.detected(), 0u);
    for (std::size_t i = 0; i < ra.results.size(); ++i) {
        SCOPED_TRACE("fault index " + std::to_string(i));
        EXPECT_EQ(ra.results[i].simulated, rf.results[i].simulated);
        ASSERT_EQ(ra.results[i].detect_time.has_value(),
                  rf.results[i].detect_time.has_value());
        if (ra.results[i].detect_time) {
            // Detection instants may shift by the waveform difference the
            // LTE tolerance admits, but must stay within the paper's own
            // time tolerance of each other.
            EXPECT_NEAR(*ra.results[i].detect_time,
                        *rf.results[i].detect_time, 0.2e-6);
        }
    }
    EXPECT_EQ(ra.detected(), rf.detected());
    EXPECT_EQ(ra.final_coverage(), rf.final_coverage());
    // The whole point: same verdicts, far fewer companion steps solved.
    EXPECT_LT(ra.batch.steps_integrated, rf.batch.steps_integrated);
    EXPECT_GT(ra.batch.steps_interpolated, 0u);
    EXPECT_EQ(rf.batch.steps_interpolated, 0u);
}

// ---------------------------------------------------------------------------
// AC per-point observer + mid-sweep early abort

TEST(AcObserver, StopsSweepAndCountsSkippedPoints) {
    Simulator sim(rc_lowpass(), SimOptions{});
    AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e8;
    spec.points_per_decade = 10;  // 5 decades -> 51 points
    int seen = 0;
    const auto res = sim.ac(spec, [&](double, const AcResult&) {
        return ++seen < 5;
    });
    EXPECT_EQ(res.points(), 5u);
    EXPECT_EQ(sim.stats().ac_points, 5u);
    EXPECT_EQ(sim.stats().ac_points_saved, 46u);
}

TEST(AcObserver, EmptyObserverSweepsEverything) {
    Simulator sim(rc_lowpass(), SimOptions{});
    AcSpec spec;
    spec.fstart = 1e3;
    spec.fstop = 1e8;
    spec.points_per_decade = 10;
    const auto res = sim.ac(spec, AcPointObserver{});
    EXPECT_EQ(res.points(), 51u);
    EXPECT_EQ(sim.stats().ac_points_saved, 0u);
}

TEST(AcCampaign, EarlyAbortKeepsVerdictsAndSkipsPoints) {
    lift::FaultList fl;
    fl.faults.push_back(cap_short_fault());

    anafault::AcCampaignOptions opt;
    opt.observed = {"out"};
    opt.sweep.fstart = 1e3;
    opt.sweep.fstop = 1e8;
    anafault::AcCampaignOptions full = opt;
    full.early_abort = false;

    const auto r_abort = anafault::run_ac_campaign(rc_lowpass(), fl, opt);
    const auto r_full = anafault::run_ac_campaign(rc_lowpass(), fl, full);

    ASSERT_EQ(r_abort.results.size(), 1u);
    ASSERT_EQ(r_full.results.size(), 1u);
    EXPECT_TRUE(r_abort.results[0].detected);
    EXPECT_TRUE(r_full.results[0].detected);
    ASSERT_TRUE(r_abort.results[0].detect_freq.has_value());
    ASSERT_TRUE(r_full.results[0].detect_freq.has_value());
    // First-violation frequency is identical; only the tail is skipped.
    EXPECT_DOUBLE_EQ(*r_abort.results[0].detect_freq,
                     *r_full.results[0].detect_freq);
    EXPECT_GT(r_abort.results[0].points_saved, 0u);
    EXPECT_GT(r_abort.batch.freq_points_saved, 0u);
    EXPECT_EQ(r_abort.batch.early_aborts, 1u);
    EXPECT_EQ(r_full.batch.freq_points_saved, 0u);
    EXPECT_EQ(r_full.batch.early_aborts, 0u);
}

// ---------------------------------------------------------------------------
// Warm-started DC sweeps and screens

TEST(DcSweep, WarmStartMatchesFreshSolvesAndSavesIterations) {
    const Circuit inv = circuits::build_inverter();
    std::vector<double> levels;
    for (double v = 0.0; v <= 5.0; v += 0.25) levels.push_back(v);

    SimStats stats;
    const auto sweep = dc_sweep(inv, "VIN", levels, SimOptions{}, {}, &stats);
    ASSERT_EQ(sweep.size(), levels.size());

    // Reference: a fresh cold solve per level (the pre-refactor shape).
    for (std::size_t i = 0; i < levels.size(); ++i) {
        ASSERT_TRUE(sweep[i].converged) << levels[i];
        Circuit c = inv;
        c.device("VIN").source = SourceSpec::make_dc(levels[i]);
        Simulator cold(c, SimOptions{});
        const auto ref = cold.dc_op();
        ASSERT_TRUE(ref.converged);
        // Warm and cold paths stop at the same NR tolerance, not at the
        // same bit pattern; agreement to well under a millivolt is the
        // solver's own convergence envelope.
        for (const auto& [node, v] : ref.voltages)
            EXPECT_NEAR(sweep[i].voltages.at(node), v, 1e-3)
                << "level " << levels[i] << " node " << node;
    }
    EXPECT_GT(stats.warm_start_solves, 0u);
    EXPECT_GT(stats.nr_saved_warm, 0u);
}

TEST(DcSweep, ObserverTruncatesTheSweep) {
    const Circuit inv = circuits::build_inverter();
    std::vector<double> levels;
    for (double v = 0.0; v <= 5.0; v += 0.25) levels.push_back(v);
    std::size_t calls = 0;
    const auto sweep = dc_sweep(inv, "VIN", levels, SimOptions{},
                                [&](double, const DcResult&) {
                                    return ++calls < 6;
                                });
    EXPECT_EQ(sweep.size(), 6u);  // the rejected level is still returned
    EXPECT_EQ(calls, 6u);
}

TEST(DcScreen, WarmStartKeepsVerdicts) {
    // Pulsed divider from the batch tests: faults with clear DC signatures.
    Circuit c;
    c.add_vsource("V1", "in", "0", SourceSpec::make_dc(5.0));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_resistor("R2", "out", "0", 1e3);

    lift::FaultList fl;
    fl.faults.push_back(cap_short_fault());  // out-0 short: out collapses
    {
        lift::Fault f;
        f.id = 2;
        f.kind = lift::FaultKind::LineOpen;
        f.mechanism = "cut";
        f.probability = 1e-3;
        f.net = "out";
        f.group_b = {lift::TerminalRef{"R2", 0}};
        fl.faults.push_back(f);  // R2 open: out rises toward in
    }

    anafault::DcScreenOptions warm;
    warm.observed = {"out"};
    warm.v_tol = 1.0;
    anafault::DcScreenOptions cold = warm;
    cold.warm_start = false;

    const auto rw = anafault::run_dc_screen(c, fl, warm);
    const auto rc = anafault::run_dc_screen(c, fl, cold);
    ASSERT_EQ(rw.results.size(), rc.results.size());
    for (std::size_t i = 0; i < rw.results.size(); ++i) {
        EXPECT_EQ(rw.results[i].detected, rc.results[i].detected) << i;
        EXPECT_EQ(rw.results[i].converged, rc.results[i].converged) << i;
        EXPECT_NEAR(rw.results[i].max_deviation, rc.results[i].max_deviation,
                    1e-6)
            << i;
    }
    EXPECT_GT(rw.batch.warm_start_solves, 0u);
    EXPECT_EQ(rc.batch.warm_start_solves, 0u);
}
