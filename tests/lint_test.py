"""Seeded-violation tests for tools/catlift_lint.py.

Each case copies the lint-relevant slice of the real repo into a
fixture tree, injects one contract violation (an unhashed SimOptions
field, a store-record change without a kVersion bump, a narrowed
per-fault catch, ...) and asserts the linter fails with exactly the
expected rule id -- pinning both that every rule fires and that the
rules don't bleed into each other.  The pristine tree must stay clean.

Run via ctest (`ctest -R lint_test`) or directly:
    python3 -m unittest discover -s tests -p lint_test.py
"""

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import catlift_lint  # noqa: E402


class PristineTreeTest(unittest.TestCase):
    def test_repo_is_clean(self):
        findings = catlift_lint.run_lint(REPO)
        self.assertEqual(
            [], [str(f) for f in findings],
            "the committed tree must lint clean; fix the finding or "
            "add a documented exemption")


class SeededViolationTest(unittest.TestCase):
    """One test per scenario: the violation fires its rule and no other."""


def _make_case(rule_id, name, mutator):
    def test(self):
        with tempfile.TemporaryDirectory(prefix="catlift_lint_") as tmp:
            fixture = catlift_lint.make_fixture(REPO, Path(tmp))
            mutator(fixture)
            findings = catlift_lint.run_lint(fixture)
            fired = sorted({f.rule for f in findings})
            self.assertIn(
                rule_id, fired,
                f"seeding '{name}' must trip {rule_id}; "
                f"findings: {[str(f) for f in findings]}")
            self.assertEqual(
                [rule_id], fired,
                f"seeding '{name}' must trip only {rule_id}")
    return test


for _rule, _name, _mutator in catlift_lint.SCENARIOS:
    _slug = _name.replace(" ", "_").replace("-", "_").replace("(", "").replace(
        ")", "")
    setattr(SeededViolationTest, f"test_{_rule}_{_slug}",
            _make_case(_rule, _name, _mutator))


class CliTest(unittest.TestCase):
    """The linter's command-line contract, as CI invokes it."""

    def run_lint(self, *args):
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "catlift_lint.py"), *args],
            capture_output=True, text=True)

    def test_clean_tree_exits_zero(self):
        proc = self.run_lint("--root", str(REPO))
        self.assertEqual(0, proc.returncode, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    def test_violation_exits_nonzero_with_rule_id(self):
        with tempfile.TemporaryDirectory(prefix="catlift_lint_") as tmp:
            fixture = catlift_lint.make_fixture(REPO, Path(tmp))
            catlift_lint.SCENARIOS[0][2](fixture)  # unhashed SimOptions field
            proc = self.run_lint("--root", str(fixture))
            self.assertEqual(1, proc.returncode)
            self.assertIn("CL001", proc.stdout)

    def test_self_test_passes(self):
        proc = self.run_lint("--self-test", "--root", str(REPO))
        self.assertEqual(0, proc.returncode, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
