// Defect statistics, size distribution and critical-area kernels, checked
// against closed forms.

#include "defects/defects.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::defects;
using layout::Layer;

TEST(Table1, MatchesPaperValues) {
    const DefectStatistics s = DefectStatistics::date95_table1();
    auto rel = [&](Layer l, FailureMode m,
                   std::optional<Layer> lower = std::nullopt) {
        const Mechanism* mech = s.find(l, m, lower);
        EXPECT_NE(mech, nullptr);
        return mech ? mech->rel_density : -1.0;
    };
    EXPECT_DOUBLE_EQ(rel(Layer::NDiff, FailureMode::Open), 0.01);
    EXPECT_DOUBLE_EQ(rel(Layer::NDiff, FailureMode::Short), 1.00);
    EXPECT_DOUBLE_EQ(rel(Layer::Poly, FailureMode::Open), 0.25);
    EXPECT_DOUBLE_EQ(rel(Layer::Poly, FailureMode::Short), 1.25);
    EXPECT_DOUBLE_EQ(rel(Layer::Metal1, FailureMode::Open), 0.01);
    EXPECT_DOUBLE_EQ(rel(Layer::Metal1, FailureMode::Short), 1.0);
    EXPECT_DOUBLE_EQ(rel(Layer::Metal2, FailureMode::Open), 0.02);
    EXPECT_DOUBLE_EQ(rel(Layer::Metal2, FailureMode::Short), 1.50);
    EXPECT_DOUBLE_EQ(
        rel(Layer::Contact, FailureMode::Open, Layer::NDiff), 0.66);
    EXPECT_DOUBLE_EQ(
        rel(Layer::Contact, FailureMode::Open, Layer::Poly), 0.67);
    EXPECT_DOUBLE_EQ(rel(Layer::Via, FailureMode::Open), 0.8);
}

TEST(Table1, ShortsDominateOpens) {
    // The paper: "the beta/alpha ratio is around 100" for metalisation.
    const DefectStatistics s = DefectStatistics::date95_table1();
    const double beta = s.find(Layer::Metal1, FailureMode::Short)->rel_density;
    const double alpha = s.find(Layer::Metal1, FailureMode::Open)->rel_density;
    EXPECT_DOUBLE_EQ(beta / alpha, 100.0);
}

TEST(Table1, AbsoluteAnchor) {
    const DefectStatistics s = DefectStatistics::date95_table1();
    const Mechanism* m1s = s.find(Layer::Metal1, FailureMode::Short);
    EXPECT_DOUBLE_EQ(s.density_per_cm2(*m1s), 1.0);  // 1 defect/cm^2
    const Mechanism* m2s = s.find(Layer::Metal2, FailureMode::Short);
    EXPECT_DOUBLE_EQ(s.density_per_cm2(*m2s), 1.5);
}

TEST(SizeDist, NormalisedAndContinuous) {
    const SizeDistribution d(1000.0);
    // Continuity at the knee.
    EXPECT_NEAR(d.pdf(999.999), d.pdf(1000.001), 1e-8);
    // CDF limits.
    EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
    EXPECT_NEAR(d.cdf(1000.0), 0.5, 1e-12);  // half the mass below the peak
    EXPECT_NEAR(d.cdf(1e9), 1.0, 1e-6);
    EXPECT_NEAR(d.survival(2000.0), 0.125, 1e-12);  // x0^2/(2 x^2)
}

TEST(SizeDist, PdfMatchesCdfDerivative) {
    const SizeDistribution d(1000.0);
    for (double x : {200.0, 800.0, 1500.0, 4000.0, 20000.0}) {
        const double h = 1e-3;
        const double fd = (d.cdf(x + h) - d.cdf(x - h)) / (2 * h);
        EXPECT_NEAR(d.pdf(x), fd, 1e-6) << x;
    }
}

TEST(SizeDist, RejectsBadPeak) {
    EXPECT_THROW(SizeDistribution(0.0), Error);
    EXPECT_THROW(SizeDistribution(-5.0), Error);
}

TEST(CriticalArea, BridgeMatchesClosedForm) {
    // For s >= x0 and xmax -> infinity:
    //   WCA = Lf * integral_s^inf (x-s) x0^2/x^3 dx = Lf * x0^2 / (2 s).
    // With the finite xmax the closed form gains the tail correction
    //   Lf * x0^2 * (1/(2s) - 1/xmax + s/(2 xmax^2)).
    const double x0 = 1000.0, xmax = 25000.0;
    DefectModel m(DefectStatistics::date95_table1(), SizeDistribution(x0),
                  xmax);
    const double Lf = 50000.0, s = 3000.0;
    const double closed =
        Lf * x0 * x0 * (1.0 / (2 * s) - 1.0 / xmax + s / (2 * xmax * xmax));
    EXPECT_NEAR(m.bridge_wca(Lf, s), closed, closed * 1e-3);
}

TEST(CriticalArea, OpenUsesSameKernel) {
    DefectModel m = DefectModel::date95();
    // Same functional form as the bridge kernel.
    EXPECT_NEAR(m.open_wca(50000.0, 3000.0), m.bridge_wca(50000.0, 3000.0),
                1e-6);
}

TEST(CriticalArea, MonotonicInGeometry) {
    DefectModel m = DefectModel::date95();
    // Longer facing -> bigger; wider spacing -> smaller.
    EXPECT_GT(m.bridge_wca(60000, 3000), m.bridge_wca(30000, 3000));
    EXPECT_LT(m.bridge_wca(30000, 6000), m.bridge_wca(30000, 3000));
    // Bigger cluster -> smaller open probability (needs a larger defect).
    EXPECT_LT(m.cut_wca(2000, 10000), m.cut_wca(2000, 6000));
    EXPECT_LT(m.cut_wca(2000, 6000), m.cut_wca(2000, 2000));
}

TEST(CriticalArea, ZeroBeyondMaxDefect) {
    DefectModel m = DefectModel::date95();
    EXPECT_DOUBLE_EQ(m.bridge_wca(50000, 26000), 0.0);
    EXPECT_DOUBLE_EQ(m.cut_wca(26000, 2000), 0.0);
}

TEST(CriticalArea, ProbabilityInPaperRange) {
    // A typical adjacent-track bridge: 300 um facing, 3 um spacing, metal2
    // -> p in the 1e-7 range; a single 2x2 contact -> high 1e-9 range.
    // "In practice, pj is in the order of 1e-7 down to 1e-9" (ch. IV).
    DefectModel m = DefectModel::date95();
    const auto& st = m.stats();
    const double p_bri = m.bridge_probability(
        *st.find(Layer::Metal2, FailureMode::Short), 300000.0, 3000.0);
    EXPECT_GT(p_bri, 1e-8);
    EXPECT_LT(p_bri, 1e-6);
    const double p_cut = m.cut_probability(
        *st.find(Layer::Contact, FailureMode::Open, Layer::NDiff), 2000.0,
        2000.0);
    EXPECT_GT(p_cut, 1e-9);
    EXPECT_LT(p_cut, 1e-7);
}

TEST(CriticalArea, RejectsBadGeometry) {
    DefectModel m = DefectModel::date95();
    EXPECT_THROW(m.bridge_wca(1000, 0), Error);
    EXPECT_THROW(m.open_wca(1000, -5), Error);
    EXPECT_THROW(m.cut_wca(0, 10), Error);
}

// Property sweep: WCA computed by the Simpson integrator must match the
// analytic piecewise closed form across a spacing grid.
class BridgeClosedForm : public ::testing::TestWithParam<double> {};

TEST_P(BridgeClosedForm, AgreesWithAnalytic) {
    const double s = GetParam();
    const double x0 = 1000.0, xmax = 25000.0, Lf = 10000.0;
    DefectModel m(DefectStatistics::date95_table1(), SizeDistribution(x0),
                  xmax);
    // Analytic for s >= x0 (tail only).
    if (s >= x0) {
        const double closed =
            Lf * x0 * x0 *
            (1.0 / (2 * s) - 1.0 / xmax + s / (2 * xmax * xmax));
        EXPECT_NEAR(m.bridge_wca(Lf, s), closed, closed * 2e-3) << s;
    } else {
        // Below the peak the integral gains the linear-part contribution;
        // verify against a fine trapezoid reference.
        const SizeDistribution d(x0);
        double ref = 0.0;
        const int n = 200000;
        for (int i = 0; i < n; ++i) {
            const double x = s + (xmax - s) * (i + 0.5) / n;
            ref += Lf * (x - s) * d.pdf(x) * (xmax - s) / n;
        }
        EXPECT_NEAR(m.bridge_wca(Lf, s), ref, ref * 5e-3) << s;
    }
}

INSTANTIATE_TEST_SUITE_P(SpacingGrid, BridgeClosedForm,
                         ::testing::Values(250.0, 500.0, 900.0, 1000.0,
                                           1500.0, 2000.0, 3000.0, 6000.0,
                                           12000.0, 20000.0));
