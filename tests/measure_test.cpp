// Waveform container and measurement utilities.

#include "spice/measure.h"
#include "spice/waveform.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift::spice;

namespace {

// Build a sampled sine waveform.
Waveforms sine(double freq, double amp, double tstop, double dt) {
    Waveforms wf;
    wf.add_trace("v");
    for (double t = 0; t <= tstop + dt / 2; t += dt)
        wf.append(t, {amp * std::sin(2 * M_PI * freq * t)});
    return wf;
}

} // namespace

TEST(Waveform, AppendAndInterpolate) {
    Waveforms wf;
    wf.add_trace("a");
    wf.append(0.0, {0.0});
    wf.append(1.0, {10.0});
    EXPECT_DOUBLE_EQ(wf.at("a", 0.5), 5.0);
    EXPECT_DOUBLE_EQ(wf.at("a", -1.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(wf.at("a", 99.0), 10.0);  // clamped
}

TEST(Waveform, MonotonicTimeEnforced) {
    Waveforms wf;
    wf.add_trace("a");
    wf.append(1.0, {0.0});
    EXPECT_THROW(wf.append(0.5, {0.0}), catlift::Error);
}

TEST(Waveform, DuplicateTraceRejected) {
    Waveforms wf;
    wf.add_trace("a");
    EXPECT_THROW(wf.add_trace("a"), catlift::Error);
}

TEST(Waveform, MinMaxAndCsv) {
    Waveforms wf;
    wf.add_trace("x");
    wf.append(0, {1.0});
    wf.append(1, {-2.0});
    wf.append(2, {3.0});
    EXPECT_DOUBLE_EQ(wf.min_of("x"), -2.0);
    EXPECT_DOUBLE_EQ(wf.max_of("x"), 3.0);
    const std::string csv = wf.to_csv();
    EXPECT_NE(csv.find("time,x"), std::string::npos);
    EXPECT_NE(csv.find("1,-2"), std::string::npos);
}

TEST(Measure, CrossingsOfSine) {
    auto wf = sine(1e6, 1.0, 3e-6, 1e-9);
    auto rising = crossings(wf, "v", 0.0, +1);
    // Rising zero crossings at ~0(excl first sample), 1us, 2us, 3us.
    ASSERT_GE(rising.size(), 2u);
    EXPECT_NEAR(rising[0], 1e-6, 2e-9);
    EXPECT_NEAR(rising[1], 2e-6, 2e-9);
    auto falling = crossings(wf, "v", 0.0, -1);
    ASSERT_GE(falling.size(), 2u);
    EXPECT_NEAR(falling[0], 0.5e-6, 2e-9);
}

TEST(Measure, PeriodEstimate) {
    auto wf = sine(2e6, 1.0, 5e-6, 0.5e-9);
    auto p = estimate_period(wf, "v", 0.0, 0.0, 5e-6);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(*p, 0.5e-6, 2e-9);
}

TEST(Measure, PeriodNeedsEnoughEdges) {
    auto wf = sine(1e6, 1.0, 1.2e-6, 1e-9);  // barely more than one cycle
    EXPECT_FALSE(estimate_period(wf, "v", 0.0, 0.0, 1.2e-6).has_value());
}

TEST(Measure, SwingOverWindow) {
    auto wf = sine(1e6, 2.0, 2e-6, 1e-9);
    EXPECT_NEAR(swing(wf, "v", 0.0, 2e-6), 4.0, 0.01);
    // A quiet window right at the zero crossing has much smaller swing.
    EXPECT_LT(swing(wf, "v", 0.0, 0.05e-6), 1.0);
}

TEST(Measure, MaxAbsDiffDetectsDeviation) {
    auto a = sine(1e6, 1.0, 2e-6, 1e-9);
    auto b = sine(1e6, 1.5, 2e-6, 1e-9);  // 50% taller
    EXPECT_NEAR(max_abs_diff(a, b, "v", 0.0, 2e-6), 0.5, 0.01);
    EXPECT_NEAR(max_abs_diff(a, a, "v", 0.0, 2e-6), 0.0, 1e-12);
}

TEST(Measure, AsciiPlotHasShape) {
    auto wf = sine(1e6, 1.0, 2e-6, 2e-9);
    const std::string plot = ascii_plot(wf, "v", 40, 8);
    EXPECT_FALSE(plot.empty());
    EXPECT_NE(plot.find('*'), std::string::npos);
    EXPECT_NE(plot.find("[v]"), std::string::npos);
}
