// Cross-cutting property tests: randomised round-trips, conservation laws
// and invariances that single-example tests cannot establish.

#include "anafault/comparator.h"
#include "anafault/fault_models.h"
#include "circuits/vco.h"
#include "defects/defects.h"
#include "netlist/compare.h"
#include "netlist/parser.h"
#include "netlist/writer.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::netlist;

namespace {

/// Deterministic PRNG (xorshift64*) for reproducible random circuits.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed ? seed : 1) {}
    std::uint64_t next() {
        s_ ^= s_ >> 12;
        s_ ^= s_ << 25;
        s_ ^= s_ >> 27;
        return s_ * 0x2545F4914F6CDD1Dull;
    }
    double uniform() {  // (0, 1)
        return (static_cast<double>(next() >> 11) + 0.5) / 9007199254740992.0;
    }
    int pick(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }

private:
    std::uint64_t s_;
};

/// Random connected R/C/M circuit over a small node set, always containing
/// one supply and one grounded resistor (well-posed for DC).
Circuit random_circuit(std::uint64_t seed) {
    Rng rng(seed);
    Circuit c;
    c.title = "fuzz" + std::to_string(seed);
    c.add_model(circuits::standard_nmos());
    c.add_model(circuits::standard_pmos());
    const int n_nodes = 3 + rng.pick(4);
    auto node = [&](int i) { return "n" + std::to_string(i); };
    c.add_vsource("V1", node(0), "0", SourceSpec::make_dc(5.0));
    c.add_resistor("R0", node(0), node(1), 1e3 * (1 + rng.pick(9)));
    c.add_resistor("Rg", node(1), "0", 1e3 * (1 + rng.pick(9)));
    const int extras = 2 + rng.pick(5);
    for (int i = 0; i < extras; ++i) {
        const int a = rng.pick(n_nodes), b = rng.pick(n_nodes);
        const std::string na = node(a);
        const std::string nb = (b == a) ? "0" : node(b);
        switch (rng.pick(3)) {
            case 0:
                c.add_resistor("R" + std::to_string(i + 1), na, nb,
                               100.0 * (1 + rng.pick(100)));
                break;
            case 1:
                c.add_capacitor("C" + std::to_string(i + 1), na, nb,
                                1e-12 * (1 + rng.pick(100)));
                break;
            case 2:
                c.add_mosfet("M" + std::to_string(i + 1), na,
                             node(rng.pick(n_nodes)), nb, "0", "nm",
                             (1 + rng.pick(40)) * 1e-6, 2e-6);
                break;
        }
    }
    return c;
}

} // namespace

// ---------------------------------------------------------------------------
// Netlist round-trip under fuzzing

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, DeckRoundTripIsEquivalent) {
    const Circuit a = random_circuit(GetParam());
    const Circuit b = parse_spice(write_spice(a));
    const auto r = compare_netlists(a, b, 1e-6);
    EXPECT_TRUE(r.equivalent) << (r.diffs.empty() ? "?" : r.diffs[0]);
    // And the second round-trip is textually stable.
    EXPECT_EQ(write_spice(b), write_spice(parse_spice(write_spice(b))));
}

TEST_P(NetlistFuzz, WrittenDeckIsNumericallyIdentical) {
    // A written deck must parse back to the *exact* doubles it was built
    // from -- the old 6-digit default precision silently rounded values on
    // the way out, so campaign manifests (hashes of the written deck)
    // could collide across distinct numerics.  Full-mantissa values:
    Rng rng(GetParam() * 0x9E3779B9u + 7);
    Circuit a;
    a.title = "exact";
    a.add_model(circuits::standard_nmos());
    auto awkward = [&](double lo_exp, double hi_exp) {
        const double e = lo_exp + (hi_exp - lo_exp) * rng.uniform();
        return rng.uniform() * std::pow(10.0, e);
    };
    a.add_vsource("V1", "n0", "0", SourceSpec::make_dc(awkward(-1, 1)));
    for (int i = 0; i < 8; ++i)
        a.add_resistor("R" + std::to_string(i), "n" + std::to_string(i),
                       "n" + std::to_string(i + 1), awkward(1, 7));
    for (int i = 0; i < 8; ++i)
        a.add_capacitor("C" + std::to_string(i), "n" + std::to_string(i),
                        "0", awkward(-14, -9));
    a.add_mosfet("M1", "n1", "n2", "0", "0", "nm", awkward(-6, -4),
                 2e-6);
    a.tran = TranSpec{awkward(-9, -7), awkward(-6, -4), 0.0};

    const Circuit b = parse_spice(write_spice(a));
    ASSERT_EQ(b.devices.size(), a.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        SCOPED_TRACE(a.devices[i].name);
        EXPECT_EQ(b.devices[i].value, a.devices[i].value);
        EXPECT_EQ(b.devices[i].w, a.devices[i].w);
        EXPECT_EQ(b.devices[i].l, a.devices[i].l);
        EXPECT_EQ(b.devices[i].source.dc, a.devices[i].source.dc);
    }
    ASSERT_TRUE(b.tran.has_value());
    EXPECT_EQ(b.tran->tstep, a.tran->tstep);
    EXPECT_EQ(b.tran->tstop, a.tran->tstop);
}

TEST_P(NetlistFuzz, DcOpIsReproducible) {
    const Circuit a = random_circuit(GetParam());
    spice::Simulator s1(a), s2(a);
    const auto r1 = s1.dc_op();
    const auto r2 = s2.dc_op();
    ASSERT_EQ(r1.converged, r2.converged);
    if (!r1.converged) return;
    for (const auto& [node, v] : r1.voltages)
        EXPECT_NEAR(v, r2.voltages.at(node), 1e-9) << node;
}

TEST_P(NetlistFuzz, SupplyCurrentMatchesLoad) {
    // KCL at the source: the V1 branch current equals the total current
    // drawn by the network; verify against an independent calculation on
    // a pure divider subset (the first two resistors are always present).
    const Circuit a = random_circuit(GetParam());
    spice::Simulator sim(a);
    const auto op = sim.dc_op();
    if (!op.converged) GTEST_SKIP() << "no DC solution for this sample";
    // Every node voltage must be finite and within the supply range
    // (passive network + NMOS only, all sources <= 5V).
    for (const auto& [node, v] : op.voltages) {
        EXPECT_TRUE(std::isfinite(v)) << node;
        EXPECT_GT(v, -1.0) << node;
        EXPECT_LT(v, 6.0) << node;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 11, 13, 17, 19,
                                           23, 42, 99, 123, 2024));

// ---------------------------------------------------------------------------
// Injection properties

class InjectFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InjectFuzz, InjectionPreservesDeviceCountInvariant) {
    // A short adds exactly one element; an open adds one element and moves
    // one terminal; a split adds one element and moves k terminals.  The
    // original circuit is never mutated.
    const Circuit base = circuits::build_vco();
    Rng rng(GetParam());
    const auto nodes = base.node_names();
    // Random short between two distinct nets.
    std::string a = nodes[static_cast<std::size_t>(rng.pick(
        static_cast<int>(nodes.size())))];
    std::string b;
    do {
        b = nodes[static_cast<std::size_t>(
            rng.pick(static_cast<int>(nodes.size())))];
    } while (b == a);
    lift::Fault f;
    f.kind = lift::FaultKind::LocalShort;
    f.net_a = a;
    f.net_b = b;
    const Circuit faulty = anafault::inject(base, f);
    EXPECT_EQ(faulty.devices.size(), base.devices.size() + 1);
    EXPECT_EQ(base.devices.size(),
              circuits::build_vco().devices.size());  // base untouched
    // The injected element bridges exactly the two requested nets.
    const Device& flt = faulty.device("FLT1");
    EXPECT_TRUE((flt.nodes[0] == a && flt.nodes[1] == b) ||
                (flt.nodes[0] == b && flt.nodes[1] == a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectFuzz,
                         ::testing::Values(3, 5, 8, 21, 34, 55, 89));

// ---------------------------------------------------------------------------
// Comparator properties

class ComparatorProperty : public ::testing::TestWithParam<double> {};

TEST_P(ComparatorProperty, DetectionMonotoneInTolerance) {
    // Raising v_tol can only delay (or remove) detection.
    const double offset = GetParam();
    spice::Waveforms nom, bad;
    nom.add_trace("x");
    bad.add_trace("x");
    for (double t = 0; t <= 4e-6 + 5e-9; t += 1e-8) {
        nom.append(t, {0.0});
        bad.append(t, {offset * std::sin(2 * M_PI * 1e6 * t)});
    }
    std::optional<double> prev;
    bool prev_set = false;
    for (double vtol : {0.5, 1.0, 2.0, 3.0, 4.0}) {
        anafault::DetectionSpec spec;
        spec.observed = {"x"};
        spec.v_tol = vtol;
        const auto t = anafault::detect_time(nom, bad, spec);
        if (prev_set) {
            if (!prev) {
                EXPECT_FALSE(t.has_value());
            } else if (t) {
                EXPECT_GE(*t, *prev - 1e-12);
            }
        }
        prev = t;
        prev_set = true;
    }
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, ComparatorProperty,
                         ::testing::Values(1.0, 2.5, 3.5, 5.0));

// ---------------------------------------------------------------------------
// Critical-area properties

class WcaLinearity : public ::testing::TestWithParam<double> {};

TEST_P(WcaLinearity, BridgeWcaLinearInFacingLength) {
    const double s = GetParam();
    defects::DefectModel m = defects::DefectModel::date95();
    const double w1 = m.bridge_wca(10000.0, s);
    const double w2 = m.bridge_wca(20000.0, s);
    const double w4 = m.bridge_wca(40000.0, s);
    EXPECT_NEAR(w2 / w1, 2.0, 1e-6);
    EXPECT_NEAR(w4 / w1, 4.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Spacings, WcaLinearity,
                         ::testing::Values(2000.0, 3000.0, 5500.0, 12000.0));

TEST(ScaleInvariance, WcaIsDimensionallyAnArea) {
    // Scaling every length (site geometry, x0, xmax) by lambda scales the
    // weighted critical area by lambda^2 -- WCA is an area integral, so
    // processes related by pure shrink/grow have proportionally scaled
    // fault probabilities and thresholds transfer by scaling.
    using namespace defects;
    const DefectStatistics stats = DefectStatistics::date95_table1();
    DefectModel m1(stats, SizeDistribution(1000.0), 100000.0);
    DefectModel m2(stats, SizeDistribution(2000.0), 200000.0);
    for (double s : {3000.0, 6000.0, 12000.0}) {
        const double r =
            m2.bridge_wca(2 * 10000.0, 2 * s) / m1.bridge_wca(10000.0, s);
        EXPECT_NEAR(r, 4.0, 0.05) << s;  // lambda^2 with lambda = 2
        const double rc =
            m2.cut_wca(2 * 2000.0, 2 * 6000.0) / m1.cut_wca(2000.0, 6000.0);
        EXPECT_NEAR(rc, 4.0, 0.05) << s;
    }
}
