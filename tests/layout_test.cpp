// Layout database, text format, technology and DRC tests.

#include "layout/drc.h"
#include "layout/layout.h"

#include <gtest/gtest.h>

using namespace catlift;
using namespace catlift::layout;
using geom::Rect;

TEST(Tech, LayerNamesRoundTrip) {
    for (std::size_t i = 0; i < kLayerCount; ++i) {
        const Layer l = static_cast<Layer>(i);
        EXPECT_EQ(layer_from_name(layer_name(l)), l);
    }
    EXPECT_THROW(layer_from_name("bogus"), Error);
}

TEST(Tech, ConductingAndCutClassification) {
    EXPECT_TRUE(is_conducting(Layer::Metal1));
    EXPECT_TRUE(is_conducting(Layer::Poly));
    EXPECT_TRUE(is_conducting(Layer::NDiff));
    EXPECT_FALSE(is_conducting(Layer::Contact));
    EXPECT_FALSE(is_conducting(Layer::NWell));
    EXPECT_FALSE(is_conducting(Layer::CapMark));
    EXPECT_TRUE(is_cut(Layer::Contact));
    EXPECT_TRUE(is_cut(Layer::Via));
    EXPECT_FALSE(is_cut(Layer::Metal2));
}

TEST(Tech, PaperProcessRules) {
    const Technology t = Technology::single_poly_double_metal();
    EXPECT_EQ(t.rule(Layer::Poly).min_width, 2000);
    EXPECT_EQ(t.rule(Layer::Metal2).min_spacing, 3000);
    EXPECT_GT(t.cap_per_area, 0.0);
}

TEST(LayoutDb, AddAndQuery) {
    Layout lo;
    lo.name = "t";
    lo.add(Layer::Metal1, Rect::um(0, 0, 10, 2), "rail:0");
    lo.add(Layer::Metal2, Rect::um(0, 5, 10, 8));
    lo.add_label(Layer::Metal1, {geom::from_um(1), geom::from_um(1)}, "gnd");
    EXPECT_EQ(lo.size(), 2u);
    EXPECT_EQ(lo.on_layer(Layer::Metal1).size(), 1u);
    EXPECT_EQ(lo.bbox(), Rect::um(0, 0, 10, 8));
    EXPECT_THROW(lo.add(Layer::Metal1, Rect::um(0, 0, 0, 5)), Error);
    EXPECT_THROW(lo.add_label(Layer::Metal1, {0, 0}, ""), Error);
}

TEST(LayoutDb, LayerAreaIsUnionArea) {
    Layout lo;
    lo.add(Layer::Metal1, Rect::um(0, 0, 10, 10));
    lo.add(Layer::Metal1, Rect::um(5, 0, 15, 10));  // overlaps
    EXPECT_DOUBLE_EQ(geom::to_um2(lo.layer_area(Layer::Metal1)), 150.0);
}

TEST(LayoutIo, RoundTrip) {
    Layout lo;
    lo.name = "cell_a";
    lo.add(Layer::Poly, Rect::um(1, 2, 3, 20), "M1:g");
    lo.add(Layer::Metal1, Rect::um(-5, 0, 40, 4), "rail:0");
    lo.add_label(Layer::Metal1, {geom::from_um(0), geom::from_um(2)}, "0");
    const std::string text = write_layout(lo);
    const Layout back = read_layout_text(text);
    EXPECT_EQ(back.name, "cell_a");
    ASSERT_EQ(back.shapes.size(), 2u);
    EXPECT_EQ(back.shapes[0].layer, Layer::Poly);
    EXPECT_EQ(back.shapes[0].rect, lo.shapes[0].rect);
    EXPECT_EQ(back.shapes[0].owner, "M1:g");
    ASSERT_EQ(back.labels.size(), 1u);
    EXPECT_EQ(back.labels[0].text, "0");
    // Byte-stable on the second pass.
    EXPECT_EQ(write_layout(back), text);
}

TEST(LayoutIo, Rejections) {
    EXPECT_THROW(read_layout_text("rect metal1 0 0 1 1\n"), Error);  // no header
    EXPECT_THROW(read_layout_text("layout x\nunits um\nend\n"), Error);
    EXPECT_THROW(read_layout_text("layout x\nrect bogus 0 0 1 1\nend\n"),
                 Error);
    EXPECT_THROW(read_layout_text("layout x\n"), Error);  // no end
    EXPECT_THROW(read_layout_text("layout x\nfrob 1\nend\n"), Error);
}

TEST(Drc, WidthViolation) {
    const Technology t = Technology::single_poly_double_metal();
    Layout lo;
    lo.add(Layer::Metal1, Rect::um(0, 0, 1, 50));  // 1um < 2um min width
    auto v = run_drc(lo, t);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, DrcViolation::Kind::Width);
    EXPECT_NE(v[0].describe().find("metal1 width"), std::string::npos);
}

TEST(Drc, SpacingViolation) {
    const Technology t = Technology::single_poly_double_metal();
    Layout lo;
    lo.add(Layer::Metal2, Rect::um(0, 0, 10, 3), "a");
    lo.add(Layer::Metal2, Rect::um(0, 4, 10, 7), "b");  // 1um < 3um spacing
    auto v = run_drc(lo, t);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, DrcViolation::Kind::Spacing);
}

TEST(Drc, TouchingShapesAreOneRegion) {
    const Technology t = Technology::single_poly_double_metal();
    Layout lo;
    lo.add(Layer::Metal1, Rect::um(0, 0, 10, 3));
    lo.add(Layer::Metal1, Rect::um(10, 0, 20, 3));  // abutting: fine
    EXPECT_TRUE(run_drc(lo, t).empty());
}

TEST(Drc, SameOwnerExemption) {
    const Technology t = Technology::single_poly_double_metal();
    Layout lo;
    // Contact pairs sit 2um apart by design; same owner exempts them only
    // if the option says so.
    lo.add(Layer::Contact, Rect::um(0, 0, 2, 2), "M1:s");
    lo.add(Layer::Contact, Rect::um(0, 3, 2, 5), "M1:s");  // 1um apart
    EXPECT_TRUE(run_drc(lo, t).empty());
    DrcOptions strict;
    strict.exempt_same_owner = false;
    EXPECT_EQ(run_drc(lo, t, strict).size(), 1u);
}
