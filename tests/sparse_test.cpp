// SparseLu tests: randomized equivalence against the dense BasicLu
// reference (real and complex), pattern-reused refactorization, pivoting
// on structurally zero diagonals (the MNA voltage-source branch shape),
// singular detection on both the full-factor and refactor paths, the
// in-place dense solve overload, and the Amd path (minimum-degree
// preordering + Gilbert-Peierls factorization + supernodal refactor)
// against both the dense reference and the Markowitz path.

#include "spice/matrix.h"
#include "spice/sparse.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

using catlift::spice::BasicLu;
using catlift::spice::BasicMatrix;
using catlift::spice::SparseLu;
using catlift::spice::SparseOrdering;

namespace {

// Deterministic xorshift-style generator (no <random> dependency drift).
struct Rng {
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    double uniform() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return static_cast<double>(s >> 11) /
               static_cast<double>(1ull << 53);
    }
    double signed_uniform() { return 2.0 * uniform() - 1.0; }
};

/// Random sparse pattern with a guaranteed diagonal (well-posed) plus
/// `extra` off-diagonal entries; duplicates included on purpose to
/// exercise slot dedup.
std::vector<std::pair<int, int>> random_pattern(Rng& rng, int n, int extra) {
    std::vector<std::pair<int, int>> entries;
    for (int i = 0; i < n; ++i) entries.push_back({i, i});
    for (int e = 0; e < extra; ++e) {
        const int r = static_cast<int>(rng.uniform() * n);
        const int c = static_cast<int>(rng.uniform() * n);
        entries.push_back({std::min(r, n - 1), std::min(c, n - 1)});
    }
    return entries;
}

} // namespace

TEST(SparseLu, MatchesDenseOnRandomSystems) {
    Rng rng;
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 4 + trial % 13;
        auto entries = random_pattern(rng, n, 3 * n);
        SparseLu<double> slu;
        const auto slots = slu.analyze(static_cast<std::size_t>(n), entries);
        ASSERT_EQ(slots.size(), entries.size());

        std::vector<double> vals(slu.nnz(), 0.0);
        BasicMatrix<double> a(static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const double v = rng.signed_uniform();
            const auto [r, c] = entries[e];
            vals[static_cast<std::size_t>(slots[e])] += v;
            a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
        }
        // Diagonal dominance => well-conditioned reference.
        for (int i = 0; i < n; ++i) {
            vals[static_cast<std::size_t>(slots[static_cast<std::size_t>(
                i)])] += 4.0;
            a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 4.0;
        }

        std::vector<double> b(static_cast<std::size_t>(n));
        for (auto& v : b) v = 10.0 * rng.signed_uniform();

        ASSERT_TRUE(slu.factor(vals));
        BasicLu<double> dlu;
        ASSERT_TRUE(dlu.factor(a));
        const auto xd = dlu.solve(b);
        const auto xs = slu.solve_copy(b);
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(xs[static_cast<std::size_t>(i)],
                        xd[static_cast<std::size_t>(i)], 1e-9)
                << "trial " << trial << " i " << i;
    }
}

TEST(SparseLu, RefactorReusesPatternAndMatchesDense) {
    Rng rng;
    const int n = 12;
    auto entries = random_pattern(rng, n, 4 * n);
    SparseLu<double> slu;
    const auto slots = slu.analyze(static_cast<std::size_t>(n), entries);

    for (int round = 0; round < 10; ++round) {
        std::vector<double> vals(slu.nnz(), 0.0);
        BasicMatrix<double> a(static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const double v = rng.signed_uniform();
            const auto [r, c] = entries[e];
            vals[static_cast<std::size_t>(slots[e])] += v;
            a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
        }
        for (int i = 0; i < n; ++i) {
            vals[static_cast<std::size_t>(slots[static_cast<std::size_t>(
                i)])] += 5.0;
            a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 5.0;
        }
        ASSERT_TRUE(slu.factor(vals));
        std::vector<double> b(static_cast<std::size_t>(n));
        for (auto& v : b) v = rng.signed_uniform();
        BasicLu<double> dlu;
        ASSERT_TRUE(dlu.factor(a));
        const auto xd = dlu.solve(b);
        const auto xs = slu.solve_copy(b);
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(xs[static_cast<std::size_t>(i)],
                        xd[static_cast<std::size_t>(i)], 1e-9);
    }
    // One full factorization, every later one a pattern-reused refactor.
    EXPECT_EQ(slu.full_factors(), 1u);
    EXPECT_EQ(slu.refactors(), 9u);
}

TEST(SparseLu, ComplexMatchesDense) {
    Rng rng;
    using C = std::complex<double>;
    for (int trial = 0; trial < 10; ++trial) {
        const int n = 6 + trial;
        auto entries = random_pattern(rng, n, 3 * n);
        SparseLu<C> slu;
        const auto slots = slu.analyze(static_cast<std::size_t>(n), entries);
        std::vector<C> vals(slu.nnz(), C{});
        BasicMatrix<C> a(static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const C v(rng.signed_uniform(), rng.signed_uniform());
            const auto [r, c] = entries[e];
            vals[static_cast<std::size_t>(slots[e])] += v;
            a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
        }
        for (int i = 0; i < n; ++i) {
            vals[static_cast<std::size_t>(slots[static_cast<std::size_t>(
                i)])] += C(5.0, 1.0);
            a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) +=
                C(5.0, 1.0);
        }
        std::vector<C> b(static_cast<std::size_t>(n));
        for (auto& v : b) v = C(rng.signed_uniform(), rng.signed_uniform());
        ASSERT_TRUE(slu.factor(vals));
        BasicLu<C> dlu;
        ASSERT_TRUE(dlu.factor(a));
        const auto xd = dlu.solve(b);
        const auto xs = slu.solve_copy(b);
        for (int i = 0; i < n; ++i)
            EXPECT_LT(std::abs(xs[static_cast<std::size_t>(i)] -
                               xd[static_cast<std::size_t>(i)]),
                      1e-9);
    }
}

TEST(SparseLu, PivotsAcrossZeroDiagonal) {
    // The MNA voltage-source shape: a structurally zero diagonal on the
    // branch row.  [g 1; 1 0] x = [0; v] -> x = [v, -g v].
    SparseLu<double> slu;
    const auto slots = slu.analyze(
        2, {{0, 0}, {0, 1}, {1, 0}});
    std::vector<double> vals(slu.nnz(), 0.0);
    vals[static_cast<std::size_t>(slots[0])] = 1e-3;  // g
    vals[static_cast<std::size_t>(slots[1])] = 1.0;
    vals[static_cast<std::size_t>(slots[2])] = 1.0;
    ASSERT_TRUE(slu.factor(vals));
    const auto x = slu.solve_copy({0.0, 5.0});
    EXPECT_NEAR(x[0], 5.0, 1e-12);
    EXPECT_NEAR(x[1], -5e-3, 1e-12);
}

TEST(SparseLu, SingularDetectedFullAndRefactor) {
    SparseLu<double> slu;
    const auto slots =
        slu.analyze(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
    // Rank-1 matrix: full factorization must reject it.
    std::vector<double> vals(slu.nnz(), 0.0);
    vals[static_cast<std::size_t>(slots[0])] = 1.0;
    vals[static_cast<std::size_t>(slots[1])] = 2.0;
    vals[static_cast<std::size_t>(slots[2])] = 2.0;
    vals[static_cast<std::size_t>(slots[3])] = 4.0;
    EXPECT_FALSE(slu.factor(vals));

    // A good matrix factors; the same pattern degraded to singular must be
    // rejected on the refactor path too (and not poison later factors).
    vals = {1.0, 2.0, 2.0, 5.0};
    ASSERT_TRUE(slu.factor(vals));
    vals = {1.0, 2.0, 2.0, 4.0};
    EXPECT_FALSE(slu.factor(vals));
    vals = {3.0, 1.0, 1.0, 2.0};
    ASSERT_TRUE(slu.factor(vals));
    const auto x = slu.solve_copy({5.0, 5.0});
    EXPECT_NEAR(3.0 * x[0] + 1.0 * x[1], 5.0, 1e-12);
    EXPECT_NEAR(1.0 * x[0] + 2.0 * x[1], 5.0, 1e-12);
}

TEST(SparseLu, PivotFloorRespected) {
    // Values above the floor factor fine; dropping the whole matrix under
    // the floor must fail rather than divide by ~0.
    SparseLu<double> slu;
    const auto slots = slu.analyze(2, {{0, 0}, {1, 1}});
    std::vector<double> vals(slu.nnz(), 0.0);
    vals[static_cast<std::size_t>(slots[0])] = 1e-12;
    vals[static_cast<std::size_t>(slots[1])] = 1e-12;
    EXPECT_TRUE(slu.factor(vals, 1e-15));
    EXPECT_FALSE(slu.factor(vals, 1e-9));
}

// ---------------------------------------------------------------------------
// Amd path: minimum-degree preordering + Gilbert-Peierls factorization

TEST(SparseLuAmd, MatchesMarkowitzAndDenseOnRandomSystems) {
    Rng rng;
    for (int trial = 0; trial < 25; ++trial) {
        const int n = 4 + (trial * 5) % 40;
        auto entries = random_pattern(rng, n, 3 * n);
        SparseLu<double> amd, mark;
        amd.set_ordering(SparseOrdering::Amd);
        const auto slots = amd.analyze(static_cast<std::size_t>(n), entries);
        const auto mslots =
            mark.analyze(static_cast<std::size_t>(n), entries);
        ASSERT_EQ(slots, mslots);  // slot assignment is ordering-independent

        std::vector<double> vals(amd.nnz(), 0.0);
        BasicMatrix<double> a(static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const double v = rng.signed_uniform();
            const auto [r, c] = entries[e];
            vals[static_cast<std::size_t>(slots[e])] += v;
            a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
        }
        for (int i = 0; i < n; ++i) {
            vals[static_cast<std::size_t>(slots[static_cast<std::size_t>(
                i)])] += 4.0;
            a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 4.0;
        }
        std::vector<double> b(static_cast<std::size_t>(n));
        for (auto& v : b) v = 10.0 * rng.signed_uniform();

        ASSERT_TRUE(amd.factor(vals));
        ASSERT_TRUE(mark.factor(vals));
        BasicLu<double> dlu;
        ASSERT_TRUE(dlu.factor(a));
        const auto xd = dlu.solve(b);
        const auto xa = amd.solve_copy(b);
        const auto xm = mark.solve_copy(b);
        for (int i = 0; i < n; ++i) {
            EXPECT_NEAR(xa[static_cast<std::size_t>(i)],
                        xd[static_cast<std::size_t>(i)], 1e-9)
                << "amd trial " << trial << " i " << i;
            EXPECT_NEAR(xm[static_cast<std::size_t>(i)],
                        xd[static_cast<std::size_t>(i)], 1e-9)
                << "markowitz trial " << trial << " i " << i;
        }
    }
}

TEST(SparseLuAmd, RefactorReusesPatternAndFallsBackOnPivotFloor) {
    Rng rng;
    const int n = 20;
    auto entries = random_pattern(rng, n, 4 * n);
    SparseLu<double> slu;
    slu.set_ordering(SparseOrdering::Amd);
    const auto slots = slu.analyze(static_cast<std::size_t>(n), entries);

    for (int round = 0; round < 8; ++round) {
        std::vector<double> vals(slu.nnz(), 0.0);
        BasicMatrix<double> a(static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const double v = rng.signed_uniform();
            const auto [r, c] = entries[e];
            vals[static_cast<std::size_t>(slots[e])] += v;
            a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
        }
        for (int i = 0; i < n; ++i) {
            vals[static_cast<std::size_t>(slots[static_cast<std::size_t>(
                i)])] += 5.0;
            a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 5.0;
        }
        ASSERT_TRUE(slu.factor(vals));
        std::vector<double> b(static_cast<std::size_t>(n));
        for (auto& v : b) v = rng.signed_uniform();
        BasicLu<double> dlu;
        ASSERT_TRUE(dlu.factor(a));
        const auto xd = dlu.solve(b);
        const auto xs = slu.solve_copy(b);
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(xs[static_cast<std::size_t>(i)],
                        xd[static_cast<std::size_t>(i)], 1e-9);
    }
    EXPECT_EQ(slu.full_factors(), 1u);
    EXPECT_EQ(slu.refactors(), 7u);
    EXPECT_GT(slu.supernodes(), 0u);
    EXPECT_GT(slu.ordering_seconds(), 0.0);

    // Values drifting so far that a recorded pivot collapses must fall
    // back to a fresh full factorization (which re-pivots), not fail or
    // divide by ~0.  [g 1; 1 0] with g = 1 records the diagonal pivot;
    // dropping g to 1e-14 kills that pivot but the matrix stays sound.
    SparseLu<double> vs;
    vs.set_ordering(SparseOrdering::Amd);
    const auto vslots = vs.analyze(2, {{0, 0}, {0, 1}, {1, 0}});
    vs.set_preorder({0, 1});  // eliminate column 0 first: g is the pivot
    std::vector<double> vvals(vs.nnz(), 0.0);
    vvals[static_cast<std::size_t>(vslots[0])] = 1.0;
    vvals[static_cast<std::size_t>(vslots[1])] = 1.0;
    vvals[static_cast<std::size_t>(vslots[2])] = 1.0;
    ASSERT_TRUE(vs.factor(vvals, 1e-12));
    vvals[static_cast<std::size_t>(vslots[0])] = 1e-14;
    ASSERT_TRUE(vs.factor(vvals, 1e-12));
    EXPECT_EQ(vs.full_factors(), 2u);  // refactor refused, full re-pivoted
    const auto x2 = vs.solve_copy({1.0, 5.0});
    EXPECT_NEAR(1e-14 * x2[0] + x2[1], 1.0, 1e-9);
    EXPECT_NEAR(x2[0], 5.0, 1e-9);
}

TEST(SparseLuAmd, PivotsAcrossZeroDiagonal) {
    // The MNA voltage-source shape under the ordered path: row pivoting
    // inside Gilbert-Peierls must handle the structurally zero diagonal.
    SparseLu<double> slu;
    slu.set_ordering(SparseOrdering::Amd);
    const auto slots = slu.analyze(2, {{0, 0}, {0, 1}, {1, 0}});
    std::vector<double> vals(slu.nnz(), 0.0);
    vals[static_cast<std::size_t>(slots[0])] = 1e-3;  // g
    vals[static_cast<std::size_t>(slots[1])] = 1.0;
    vals[static_cast<std::size_t>(slots[2])] = 1.0;
    ASSERT_TRUE(slu.factor(vals));
    const auto x = slu.solve_copy({0.0, 5.0});
    EXPECT_NEAR(x[0], 5.0, 1e-12);
    EXPECT_NEAR(x[1], -5e-3, 1e-12);
}

TEST(SparseLuAmd, SingularRejectedOnBothOrderings) {
    for (const SparseOrdering ord :
         {SparseOrdering::Amd, SparseOrdering::Markowitz}) {
        SparseLu<double> slu;
        slu.set_ordering(ord);
        const auto slots = slu.analyze(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
        std::vector<double> vals(slu.nnz(), 0.0);
        vals[static_cast<std::size_t>(slots[0])] = 1.0;
        vals[static_cast<std::size_t>(slots[1])] = 2.0;
        vals[static_cast<std::size_t>(slots[2])] = 2.0;
        vals[static_cast<std::size_t>(slots[3])] = 4.0;
        EXPECT_FALSE(slu.factor(vals));
        // Below the pivot floor on every entry is singular too.
        vals = {1e-12, 0.0, 0.0, 1e-12};
        EXPECT_FALSE(slu.factor(vals, 1e-9));
        // And a sound matrix still factors afterwards.
        vals = {3.0, 1.0, 1.0, 2.0};
        ASSERT_TRUE(slu.factor(vals));
        const auto x = slu.solve_copy({5.0, 5.0});
        EXPECT_NEAR(3.0 * x[0] + 1.0 * x[1], 5.0, 1e-12);
        EXPECT_NEAR(1.0 * x[0] + 2.0 * x[1], 5.0, 1e-12);
    }
}

TEST(SparseLuAmd, PreorderAdoptedAsColumnOrder) {
    Rng rng;
    const int n = 10;
    auto entries = random_pattern(rng, n, 3 * n);
    SparseLu<double> slu;
    slu.set_ordering(SparseOrdering::Amd);
    const auto slots = slu.analyze(static_cast<std::size_t>(n), entries);
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        order[static_cast<std::size_t>(i)] = n - 1 - i;  // reverse order
    slu.set_preorder(order);

    std::vector<double> vals(slu.nnz(), 0.0);
    for (std::size_t e = 0; e < entries.size(); ++e)
        vals[static_cast<std::size_t>(slots[e])] += rng.signed_uniform();
    for (int i = 0; i < n; ++i)
        vals[static_cast<std::size_t>(slots[static_cast<std::size_t>(i)])] +=
            5.0;
    ASSERT_TRUE(slu.factor(vals));
    EXPECT_EQ(slu.column_order(), order);

    // A non-permutation is rejected loudly.
    std::vector<int> bad = order;
    bad[0] = bad[1];
    EXPECT_THROW(slu.set_preorder(bad), catlift::Error);
    EXPECT_THROW(slu.set_preorder(std::vector<int>{0, 1}), catlift::Error);
}

TEST(SparseLuAmd, SupernodalRefactorMatchesDenseOnBandedSystem) {
    // A banded system produces long runs of nested L patterns -- the
    // supernodal replay's dense inner loops do real work here.  Ten value
    // rounds through the same pattern must all match the dense reference.
    Rng rng;
    const int n = 40;
    std::vector<std::pair<int, int>> entries;
    std::vector<std::size_t> diag_entry(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        for (int j = std::max(0, i - 3); j <= std::min(n - 1, i + 3); ++j) {
            if (i == j) diag_entry[static_cast<std::size_t>(i)] = entries.size();
            entries.push_back({i, j});
        }
    SparseLu<double> slu;
    slu.set_ordering(SparseOrdering::Amd);
    const auto slots = slu.analyze(static_cast<std::size_t>(n), entries);

    for (int round = 0; round < 10; ++round) {
        std::vector<double> vals(slu.nnz(), 0.0);
        BasicMatrix<double> a(static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const double v = rng.signed_uniform();
            const auto [r, c] = entries[e];
            vals[static_cast<std::size_t>(slots[e])] += v;
            a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
        }
        for (int i = 0; i < n; ++i) {
            vals[static_cast<std::size_t>(
                slots[diag_entry[static_cast<std::size_t>(i)]])] += 8.0;
            a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 8.0;
        }
        ASSERT_TRUE(slu.factor(vals));
        std::vector<double> b(static_cast<std::size_t>(n));
        for (auto& v : b) v = rng.signed_uniform();
        BasicLu<double> dlu;
        ASSERT_TRUE(dlu.factor(a));
        const auto xd = dlu.solve(b);
        const auto xs = slu.solve_copy(b);
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(xs[static_cast<std::size_t>(i)],
                        xd[static_cast<std::size_t>(i)], 1e-8)
                << "round " << round;
    }
    EXPECT_EQ(slu.full_factors(), 1u);
    EXPECT_EQ(slu.refactors(), 9u);
    // The band must actually have merged into multi-column supernodes.
    EXPECT_LT(slu.supernodes(), static_cast<std::size_t>(n));
}

TEST(SparseLuAmd, ComplexMatchesDense) {
    Rng rng;
    using C = std::complex<double>;
    for (int trial = 0; trial < 10; ++trial) {
        const int n = 6 + 2 * trial;
        auto entries = random_pattern(rng, n, 3 * n);
        SparseLu<C> slu;
        slu.set_ordering(SparseOrdering::Amd);
        const auto slots = slu.analyze(static_cast<std::size_t>(n), entries);
        std::vector<C> vals(slu.nnz(), C{});
        BasicMatrix<C> a(static_cast<std::size_t>(n));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const C v(rng.signed_uniform(), rng.signed_uniform());
            const auto [r, c] = entries[e];
            vals[static_cast<std::size_t>(slots[e])] += v;
            a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
        }
        for (int i = 0; i < n; ++i) {
            vals[static_cast<std::size_t>(slots[static_cast<std::size_t>(
                i)])] += C(5.0, 1.0);
            a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) +=
                C(5.0, 1.0);
        }
        std::vector<C> b(static_cast<std::size_t>(n));
        for (auto& v : b) v = C(rng.signed_uniform(), rng.signed_uniform());
        ASSERT_TRUE(slu.factor(vals));
        BasicLu<C> dlu;
        ASSERT_TRUE(dlu.factor(a));
        const auto xd = dlu.solve(b);
        const auto xs = slu.solve_copy(b);
        for (int i = 0; i < n; ++i)
            EXPECT_LT(std::abs(xs[static_cast<std::size_t>(i)] -
                               xd[static_cast<std::size_t>(i)]),
                      1e-9);
    }
}

TEST(DenseLu, InPlaceSolveMatchesReturningOverload) {
    BasicMatrix<double> a(3);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    a(1, 2) = 1;
    a(2, 2) = 4;
    BasicLu<double> lu;
    ASSERT_TRUE(lu.factor(a));
    const std::vector<double> b = {5.0, 10.0, 8.0};
    const auto x1 = lu.solve(b);
    std::vector<double> x2;
    lu.solve(b, x2);
    ASSERT_EQ(x2.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(x1[static_cast<std::size_t>(i)],
                         x2[static_cast<std::size_t>(i)]);
}
