// DC operating-point tests: linear networks with exact solutions, nonlinear
// MOS circuits, convergence fallbacks.

#include "netlist/parser.h"
#include "spice/engine.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace catlift;
using namespace catlift::netlist;
using namespace catlift::spice;

namespace {

MosModel nmos_model() {
    MosModel m;
    m.name = "nm";
    m.is_nmos = true;
    m.vto = 0.8;
    m.kp = 50e-6;
    m.lambda = 0.02;
    return m;
}

MosModel pmos_model() {
    MosModel m;
    m.name = "pm";
    m.is_nmos = false;
    m.vto = -0.8;
    m.kp = 20e-6;
    m.lambda = 0.02;
    return m;
}

} // namespace

TEST(DcOp, VoltageDivider) {
    Circuit c;
    c.add_vsource("V1", "in", "0", SourceSpec::make_dc(10.0));
    c.add_resistor("R1", "in", "mid", 1e3);
    c.add_resistor("R2", "mid", "0", 3e3);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.voltages.at("mid"), 7.5, 1e-6);
    EXPECT_NEAR(r.voltages.at("in"), 10.0, 1e-9);
}

TEST(DcOp, CurrentSourceIntoResistor) {
    Circuit c;
    c.add_isource("I1", "0", "x", SourceSpec::make_dc(1e-3));
    c.add_resistor("R1", "x", "0", 2e3);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    // 1 mA pushed into x through 2k -> 2 V.
    EXPECT_NEAR(r.voltages.at("x"), 2.0, 1e-6);
}

TEST(DcOp, SeriesVsourcesAndPolarity) {
    Circuit c;
    c.add_vsource("V1", "a", "0", SourceSpec::make_dc(3.0));
    c.add_vsource("V2", "b", "a", SourceSpec::make_dc(2.0));
    c.add_resistor("R1", "b", "0", 1e3);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.voltages.at("b"), 5.0, 1e-9);
}

TEST(DcOp, CapacitorIsOpenInDc) {
    Circuit c;
    c.add_vsource("V1", "in", "0", SourceSpec::make_dc(5.0));
    c.add_resistor("R1", "in", "out", 1e3);
    c.add_capacitor("C1", "out", "0", 1e-9);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.voltages.at("out"), 5.0, 1e-3);  // gmin leak only
}

TEST(DcOp, FloatingNodeHeldByGmin) {
    Circuit c;
    c.add_vsource("V1", "a", "0", SourceSpec::make_dc(5.0));
    c.add_resistor("R1", "a", "b", 1e3);
    // Node "float" touches only a capacitor: gmin must keep it solvable.
    c.add_resistor("R2", "b", "0", 1e3);
    c.add_capacitor("C1", "float", "b", 1e-12);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(r.voltages.count("float"));
}

TEST(DcOp, DiodeConnectedNmos) {
    // I = 10uA into a diode-connected NMOS: vgs ~ vt + sqrt(2 I / beta).
    Circuit c;
    c.add_model(nmos_model());
    c.add_isource("I1", "0", "d", SourceSpec::make_dc(10e-6));
    c.add_mosfet("M1", "d", "d", "0", "0", "nm", 10e-6, 2e-6);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    const double beta = 50e-6 * 5.0;
    const double vgs_pred = 0.8 + std::sqrt(2 * 10e-6 / beta);
    EXPECT_NEAR(r.voltages.at("d"), vgs_pred, 0.02);  // lambda shifts slightly
}

TEST(DcOp, CmosInverterBalancedPoint) {
    Circuit c;
    c.add_model(nmos_model());
    c.add_model(pmos_model());
    c.add_vsource("Vdd", "vdd", "0", SourceSpec::make_dc(5.0));
    c.add_vsource("Vin", "in", "0", SourceSpec::make_dc(0.0));
    c.add_mosfet("MN", "out", "in", "0", "0", "nm", 10e-6, 2e-6);
    c.add_mosfet("MP", "out", "in", "vdd", "vdd", "pm", 25e-6, 2e-6);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    // Input low -> output high.
    EXPECT_GT(r.voltages.at("out"), 4.9);
}

TEST(DcOp, CmosInverterTransferMonotonic) {
    // Sweep the input; the output must fall monotonically.
    double prev_out = 6.0;
    for (double vin = 0.0; vin <= 5.0; vin += 0.5) {
        Circuit c;
        c.add_model(nmos_model());
        c.add_model(pmos_model());
        c.add_vsource("Vdd", "vdd", "0", SourceSpec::make_dc(5.0));
        c.add_vsource("Vin", "in", "0", SourceSpec::make_dc(vin));
        c.add_mosfet("MN", "out", "in", "0", "0", "nm", 10e-6, 2e-6);
        c.add_mosfet("MP", "out", "in", "vdd", "vdd", "pm", 25e-6, 2e-6);
        Simulator sim(c);
        auto r = sim.dc_op();
        ASSERT_TRUE(r.converged) << "vin=" << vin;
        const double out = r.voltages.at("out");
        EXPECT_LE(out, prev_out + 1e-6) << "vin=" << vin;
        prev_out = out;
    }
}

TEST(DcOp, NmosCurrentMirrorRatio) {
    Circuit c;
    c.add_model(nmos_model());
    c.add_vsource("Vdd", "vdd", "0", SourceSpec::make_dc(5.0));
    c.add_isource("Iref", "vdd", "g", SourceSpec::make_dc(20e-6));
    c.add_mosfet("M1", "g", "g", "0", "0", "nm", 10e-6, 2e-6);
    c.add_mosfet("M2", "out", "g", "0", "0", "nm", 20e-6, 2e-6);  // 2x
    c.add_resistor("RL", "vdd", "out", 10e3);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    // Output current ~ 40uA -> drop 0.4V across 10k.
    EXPECT_NEAR(r.voltages.at("out"), 5.0 - 0.4, 0.1);
}

TEST(DcOp, StatsExposeMatrixSize) {
    Circuit c;
    c.add_vsource("V1", "a", "0", SourceSpec::make_dc(1.0));
    c.add_resistor("R1", "a", "b", 1e3);
    c.add_resistor("R2", "b", "0", 1e3);
    Simulator sim(c);
    // 2 nodes + 1 branch.
    EXPECT_EQ(sim.unknowns(), 3u);
    EXPECT_EQ(sim.stats().matrix_size, 3u);
}

TEST(DcOp, ParsedDeckEndToEnd) {
    const char* deck =
        "divider\n"
        "V1 in 0 DC 9\n"
        "R1 in out 2k\n"
        "R2 out 0 1k\n"
        ".end\n";
    Circuit c = parse_spice(deck);
    Simulator sim(c);
    auto r = sim.dc_op();
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.voltages.at("out"), 3.0, 1e-6);
}
