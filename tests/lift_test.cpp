// LIFT tests: fault descriptors and IO, schematic fault enumeration,
// L2RFM, and the full GLRFM extraction on the generated VCO layout.

#include "circuits/vco.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "lift/schematic_faults.h"

#include <gtest/gtest.h>

#include <set>

using namespace catlift;
using namespace catlift::lift;

namespace {

netlist::Circuit vco_schematic() {
    circuits::VcoOptions o;
    o.with_sources = false;
    return circuits::build_vco(o);
}

} // namespace

TEST(FaultModel, DescribeMatchesPaperStyle) {
    Fault f;
    f.id = 6;
    f.kind = FaultKind::LocalShort;
    f.mechanism = "n_ds_short";
    f.net_a = "5";
    f.net_b = "6";
    EXPECT_EQ(f.describe(), "#6 BRI n_ds_short 5->6");
}

TEST(FaultModel, RankSortsByProbability) {
    FaultList fl;
    for (double p : {1e-9, 5e-7, 3e-8}) {
        Fault f;
        f.kind = FaultKind::LocalShort;
        f.probability = p;
        f.net_a = "a";
        f.net_b = "b";
        fl.faults.push_back(f);
    }
    fl.rank();
    EXPECT_DOUBLE_EQ(fl.faults[0].probability, 5e-7);
    EXPECT_EQ(fl.faults[0].id, 1);
    EXPECT_EQ(fl.faults[2].id, 3);
    EXPECT_NEAR(fl.total_probability(), 5.31e-7, 1e-9);
}

TEST(FaultModel, FaultListRoundTrip) {
    FaultList fl;
    fl.circuit = "vco";
    Fault b;
    b.id = 1;
    b.kind = FaultKind::GlobalShort;
    b.mechanism = "metal1_short";
    b.probability = 3.4e-8;
    b.net_a = "1";
    b.net_b = "5";
    fl.faults.push_back(b);
    Fault o;
    o.id = 2;
    o.kind = FaultKind::SplitNode;
    o.mechanism = "metal2_open";
    o.probability = 6e-9;
    o.net = "8";
    o.group_b = {{"M6", 0}, {"M7", 1}};
    fl.faults.push_back(o);
    Fault s;
    s.id = 3;
    s.kind = FaultKind::StuckOpen;
    s.mechanism = "contact_diff_open";
    s.probability = 8e-9;
    s.victim = {"M7", 0};
    fl.faults.push_back(s);

    const FaultList back = read_faultlist_text(write_faultlist(fl));
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back.circuit, "vco");
    EXPECT_EQ(back.faults[0].kind, FaultKind::GlobalShort);
    EXPECT_EQ(back.faults[0].net_b, "5");
    EXPECT_NEAR(back.faults[0].probability, 3.4e-8, 1e-12);
    ASSERT_EQ(back.faults[1].group_b.size(), 2u);
    EXPECT_EQ(back.faults[1].group_b[1], (TerminalRef{"M7", 1}));
    EXPECT_EQ(back.faults[2].victim.device, "M7");
}

TEST(FaultModel, BadFaultListRejected) {
    EXPECT_THROW(read_faultlist_text("fault 1\nend\n"), Error);
    EXPECT_THROW(read_faultlist_text("faultlist x\nbogus\nend\n"), Error);
    EXPECT_THROW(
        read_faultlist_text("faultlist x\nfault 1 local_short m 1e-9 short a\nend\n"),
        Error);
    EXPECT_THROW(read_faultlist_text("faultlist x\n"), Error);
}

// ---------------------------------------------------------------------------
// Schematic fault enumeration (ch. VI arithmetic).

TEST(SchematicFaults, VcoCountsMatchPaper) {
    const FaultList fl = all_schematic_faults(vco_schematic());
    // "From the schematic 78 possible single open faults can be assumed on
    // the transistors and one open fault on the capacitor ... the number
    // of shorts is 73, including the short on the capacitor."
    EXPECT_EQ(fl.opens(), 79u);
    EXPECT_EQ(fl.shorts(), 73u);
    EXPECT_EQ(fl.size(), 152u);
}

TEST(SchematicFaults, DesignedShortsExcluded) {
    // The six diode-connected devices contribute no gate-drain short.
    const FaultList fl = all_schematic_faults(vco_schematic());
    for (const Fault& f : fl.faults) {
        if (f.kind != FaultKind::LocalShort) continue;
        EXPECT_NE(f.net_a, f.net_b) << f.describe();
    }
    // 26 transistors x 3 pairs - 6 designed + 1 capacitor short = 73.
    EXPECT_EQ(fl.shorts(), 26u * 3u - 6u + 1u);
}

TEST(SchematicFaults, SourcesAreNotFaultSites) {
    netlist::Circuit c = vco_schematic();
    const std::size_t before = all_schematic_faults(c).size();
    c.add_vsource("VX", "2", "0", netlist::SourceSpec::make_dc(1.0));
    EXPECT_EQ(all_schematic_faults(c).size(), before);
}

TEST(L2rfm, SitsBetweenFullListAndGlrfm) {
    const netlist::Circuit sch = vco_schematic();
    const FaultList full = all_schematic_faults(sch);
    const FaultList l2 = l2rfm_faults(sch);
    EXPECT_LT(l2.size(), full.size());
    EXPECT_GT(l2.size(), 20u);
    // Weighted and ranked.
    EXPECT_GT(l2.faults.front().probability, l2.faults.back().probability);
}

TEST(L2rfm, ThresholdShrinksList) {
    const netlist::Circuit sch = vco_schematic();
    L2rfmOptions strict;
    strict.p_min = 1e-7;
    EXPECT_LT(l2rfm_faults(sch, strict).size(), l2rfm_faults(sch).size());
}

// ---------------------------------------------------------------------------
// GLRFM on the generated VCO layout.

class Glrfm : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        const netlist::Circuit sch = vco_schematic();
        const auto lo = layout::generate_cell_layout(
            sch, layout::vco_cellgen_options());
        LiftOptions opt;
        opt.net_blocks = circuits::vco_net_blocks();
        res_ = new LiftResult(extract_faults(
            lo, layout::Technology::single_poly_double_metal(), opt));
    }
    static void TearDownTestSuite() {
        delete res_;
        res_ = nullptr;
    }
    static LiftResult* res_;
};

LiftResult* Glrfm::res_ = nullptr;

TEST_F(Glrfm, SignificantReductionVsSchematic) {
    // Paper: 152 -> 70, a 53% reduction.  The generated layout lands in
    // the same regime.
    const std::size_t full = all_schematic_faults(vco_schematic()).size();
    const double reduction =
        1.0 - static_cast<double>(res_->faults.size()) /
                  static_cast<double>(full);
    EXPECT_GT(reduction, 0.40);
    EXPECT_LT(reduction, 0.70);
}

TEST_F(Glrfm, BridgingFaultsDominate) {
    // Paper: 55 of 70 extracted failures are bridges.
    const FaultList& fl = res_->faults;
    EXPECT_GT(fl.shorts(), fl.size() / 2);
}

TEST_F(Glrfm, StuckOpenCountTracksContactRedundancy) {
    // Seven terminals are drawn with single contacts; the stuck-open count
    // must be in that region (cross-row supply stubs can add a couple).
    const std::size_t n = res_->faults.count(FaultKind::StuckOpen);
    EXPECT_GE(n, 5u);
    EXPECT_LE(n, 12u);
}

TEST_F(Glrfm, ProbabilitiesInPaperRange) {
    for (const Fault& f : res_->faults.faults) {
        EXPECT_LT(f.probability, 1e-6) << f.describe();
        EXPECT_GT(f.probability, 1e-9) << f.describe();
    }
}

TEST_F(Glrfm, PaperExemplarFaultsPresent) {
    // The #6-class bridge (5->6, charge rail to capacitor) and the
    // #339-class supply bridge (1->3) must be extracted: the track order
    // places them adjacent, as the paper's layout did.
    auto has_bridge = [&](const std::string& a, const std::string& b) {
        for (const Fault& f : res_->faults.faults)
            if ((f.kind == FaultKind::LocalShort ||
                 f.kind == FaultKind::GlobalShort) &&
                ((f.net_a == a && f.net_b == b) ||
                 (f.net_a == b && f.net_b == a)))
                return true;
        return false;
    };
    EXPECT_TRUE(has_bridge("5", "6"));
    EXPECT_TRUE(has_bridge("1", "3"));
    EXPECT_TRUE(has_bridge("0", "9"));
}

TEST_F(Glrfm, DrainSourceBridgesExtracted) {
    // The n_ds_short class: source/drain diffusions face each other across
    // every gate; diffusion bridges must appear for switch transistors.
    bool any_diff = false;
    for (const Fault& f : res_->faults.faults)
        if (f.mechanism == "diff_short") any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST_F(Glrfm, RankedDescending) {
    const auto& fs = res_->faults.faults;
    for (std::size_t i = 1; i < fs.size(); ++i)
        EXPECT_LE(fs[i].probability, fs[i - 1].probability);
    EXPECT_EQ(fs.front().id, 1);
}

TEST_F(Glrfm, MergedFaultsAreUnique) {
    std::set<std::string> seen;
    for (const Fault& f : res_->faults.faults) {
        std::string key = f.describe().substr(f.describe().find(' ') + 1);
        EXPECT_TRUE(seen.insert(key).second) << "duplicate: " << key;
    }
}

TEST_F(Glrfm, StatisticsAreConsistent) {
    const LiftStats& st = res_->stats;
    EXPECT_GT(st.bridge_sites, res_->faults.shorts());  // merging happened
    EXPECT_GT(st.cut_sites, 0u);
    EXPECT_GT(st.open_sites, 0u);
    EXPECT_GT(st.dropped, 0u);
    EXPECT_GT(st.dropped_probability, 0.0);
}

TEST_F(Glrfm, ThresholdMonotonicity) {
    // Property: raising p_min can only shrink the list.
    const netlist::Circuit sch = vco_schematic();
    const auto lo =
        layout::generate_cell_layout(sch, layout::vco_cellgen_options());
    std::size_t prev = SIZE_MAX;
    for (double p : {5e-9, 1.2e-8, 5e-8}) {
        LiftOptions opt;
        opt.p_min = p;
        auto r = extract_faults(
            lo, layout::Technology::single_poly_double_metal(), opt);
        EXPECT_LE(r.faults.size(), prev);
        prev = r.faults.size();
    }
}
