// Concurrency stress tests: real read-during-write interleavings for
// ThreadSanitizer (the `tsan` CI job runs this suite and fails on any
// reported race) and for the annotated-lock contracts in
// core/thread_annotations.h.  Each test pairs concurrent writers with
// live readers -- the pattern campaigns actually exhibit when a metrics
// poller or progress sink observes a running campaign -- because a
// writer-only or reader-only test lets TSan's happens-before analysis
// vacuously pass.

#include "anafault/campaign.h"
#include "batch/scheduler.h"
#include "core/cat.h"
#include "lift/extract_faults.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace catlift;

namespace {

/// RAII: full observability on (metrics + tracing + a live capture
/// sink), restored to off and wiped on exit so tests stay independent.
struct ObsAllOn {
    std::shared_ptr<obs::CaptureSink> sink =
        std::make_shared<obs::CaptureSink>();
    ObsAllOn() {
        obs::Registry::global().reset();
        obs::trace_reset();
        obs::enable_metrics(true);
        obs::enable_tracing(true);
        obs::attach_event_sink(sink);
    }
    ~ObsAllOn() {
        obs::detach_event_sinks();
        obs::enable_tracing(false);
        obs::enable_metrics(false);
        obs::trace_reset();
        obs::Registry::global().reset();
    }
};

// ---------------------------------------------------------------------------
// The ISSUE's end-to-end case: the 4-worker 64-fault VCO campaign with
// every observability channel live, while reader threads snapshot the
// registry, the trace lanes and the event buffer mid-campaign.  This is
// the exact write set (sharded metric shards, per-lane trace vectors,
// capture-sink buffer, scheduler deques, result aggregation) the
// thread-safety annotations claim to protect.

TEST(ConcurrencyTest, VcoCampaignFourWorkersWithLiveReaders) {
    const core::VcoExperiment e = core::make_vco_experiment(4);
    const lift::LiftResult lifted =
        lift::extract_faults(e.layout, e.config.tech, e.config.lift);
    ASSERT_EQ(lifted.faults.size(), 64u);

    ObsAllOn obs_on;

    std::atomic<bool> done{false};
    std::atomic<std::size_t> reads{0};
    std::vector<std::thread> readers;
    // Registry aggregation-on-read and trace snapshotting race against
    // the campaign's writers by design; TSan arbitrates.
    readers.emplace_back([&] {
        while (!done.load(std::memory_order_acquire)) {
            const std::string js = obs::Registry::global().to_json();
            ASSERT_FALSE(js.empty());
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });
    readers.emplace_back([&] {
        while (!done.load(std::memory_order_acquire)) {
            (void)obs::trace_event_count();
            (void)obs_on.sink->count_of("fault_retired");
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });

    anafault::CampaignOptions opt = e.config.campaign;
    opt.threads = 4;
    const anafault::CampaignResult res =
        anafault::run_campaign(e.sim_circuit, lifted.faults, opt);
    done.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    EXPECT_EQ(res.results.size(), 64u);
    EXPECT_GT(res.detected(), 0u);
    EXPECT_GT(reads.load(), 0u);
    EXPECT_GT(obs::trace_event_count(), 0u);
    EXPECT_EQ(obs_on.sink->count_of("campaign_end"), 1u);

    // Determinism across worker counts: the 4-worker verdicts must be
    // the serial campaign's verdicts, fault for fault.
    anafault::CampaignOptions serial = e.config.campaign;
    serial.threads = 1;
    const anafault::CampaignResult ref =
        anafault::run_campaign(e.sim_circuit, lifted.faults, serial);
    ASSERT_EQ(ref.results.size(), res.results.size());
    for (std::size_t i = 0; i < ref.results.size(); ++i) {
        EXPECT_EQ(ref.results[i].fault_id, res.results[i].fault_id);
        EXPECT_EQ(ref.results[i].detect_time.has_value(),
                  res.results[i].detect_time.has_value());
    }
}

// ---------------------------------------------------------------------------
// Registry: sharded counters/histograms hammered by writers while a
// reader aggregates and a late registrant inserts new names (the map
// mutation the registry mutex guards).

TEST(ConcurrencyTest, RegistryAggregationDuringConcurrentWrites) {
    obs::Registry reg;
    constexpr int kWriters = 4;
    constexpr int kOps = 20000;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            while (!go.load(std::memory_order_acquire)) {}
            obs::Counter& c = reg.counter("stress.ops");
            obs::Histogram& h = reg.histogram("stress.lat");
            for (int i = 0; i < kOps; ++i) {
                c.add(1);
                h.record(1e-6 * (w + 1));
                if (i % 4096 == 0)
                    reg.counter("stress.late." + std::to_string(w)).add(1);
            }
        });
    }
    std::thread reader([&] {
        while (!go.load(std::memory_order_acquire)) {}
        for (int i = 0; i < 200; ++i) {
            (void)reg.to_json();
            (void)reg.counter("stress.ops").value();
        }
    });
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    reader.join();
    EXPECT_EQ(reg.counter("stress.ops").value(),
              static_cast<std::uint64_t>(kWriters) * kOps);
    const auto snap = reg.histogram("stress.lat").snapshot();
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kWriters) * kOps);
}

// ---------------------------------------------------------------------------
// Event bus: emitters racing sink attach/detach, with a sink that is
// itself read concurrently.  Delivery is serialized by the bus mutex;
// the test pins that an event is never lost once attach returns and
// never delivered after detach returns.

TEST(ConcurrencyTest, EventBusEmitDuringAttachDetach) {
    auto sink = std::make_shared<obs::CaptureSink>();
    std::atomic<bool> done{false};
    std::vector<std::thread> emitters;
    for (int w = 0; w < 3; ++w) {
        emitters.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                if (obs::events_enabled())
                    obs::emit_event("stress_tick",
                                    {obs::arg("n", std::int64_t{1})});
            }
        });
    }
    for (int cycle = 0; cycle < 50; ++cycle) {
        obs::attach_event_sink(sink);
        (void)sink->count_of("stress_tick");
        obs::detach_event_sinks();
        (void)sink->take();
    }
    done.store(true, std::memory_order_release);
    for (std::thread& t : emitters) t.join();
    EXPECT_FALSE(obs::events_enabled());
}

// ---------------------------------------------------------------------------
// Trace lanes: per-thread writers appending spans while snapshots,
// counts and a Chrome-trace export run concurrently.

TEST(ConcurrencyTest, TraceLanesSnapshotDuringWrites) {
    obs::trace_reset();
    obs::enable_tracing(true);
    constexpr int kWriters = 3;
    constexpr int kSpansPerWriter = 2000;  // bounded: spans, not wall time
    std::atomic<int> writers_left{kWriters};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            obs::set_lane_name("stress-" + std::to_string(w));
            for (int i = 0; i < kSpansPerWriter; ++i) {
                obs::Span span(obs::Phase::Solve);
                span.arg("w", static_cast<std::int64_t>(w));
            }
            writers_left.fetch_sub(1, std::memory_order_release);
        });
    }
    // Snapshot concurrently for as long as the writers are appending.
    while (writers_left.load(std::memory_order_acquire) > 0) {
        (void)obs::trace_event_count();
        std::ostringstream os;
        obs::write_chrome_trace(os);
        ASSERT_NE(os.str().find("traceEvents"), std::string::npos);
    }
    for (std::thread& t : writers) t.join();
    obs::enable_tracing(false);
    EXPECT_EQ(obs::trace_event_count(),
              static_cast<std::size_t>(kWriters) * kSpansPerWriter);
    obs::trace_reset();
}

// ---------------------------------------------------------------------------
// Failpoint registry: workers evaluating hit() while the harness arms
// and disarms specs -- the pattern of a failpoint campaign driving a
// live scheduler.

TEST(ConcurrencyTest, FailpointHitDuringArmDisarm) {
    constexpr int kWorkers = 3;
    constexpr int kHitsPerWorker = 20000;  // bounded: calls, not wall time
    std::atomic<int> workers_left{kWorkers};
    std::atomic<std::size_t> survived{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&] {
            for (int i = 0; i < kHitsPerWorker; ++i) {
                try {
                    robust::hit("kernel.factor");
                    survived.fetch_add(1, std::memory_order_relaxed);
                } catch (const std::exception&) {
                    // an armed error action fired; that's the point
                }
            }
            workers_left.fetch_sub(1, std::memory_order_release);
        });
    }
    // Arm/disarm against the live workers until they finish.
    while (workers_left.load(std::memory_order_acquire) > 0) {
        robust::arm("kernel.factor=error@1+3");
        (void)robust::status();
        (void)robust::total_fired();
        robust::disarm_all();
    }
    for (std::thread& t : workers) t.join();
    robust::disarm_all();
    EXPECT_GT(survived.load(), 0u);
}

// ---------------------------------------------------------------------------
// Scheduler error bookkeeping: concurrent failing jobs under
// ContinueCampaign must publish exactly one first_error and count every
// failure (the err_mu-guarded state the annotations cover).

TEST(ConcurrencyTest, SchedulerFirstErrorPublication) {
    constexpr std::size_t kJobs = 200;
    std::atomic<std::size_t> ran{0};
    std::vector<batch::Job> jobs(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i)
        jobs[i] = batch::Job{i, static_cast<double>(i)};
    const batch::Scheduler sched(4);
    const batch::SchedulerStats stats = sched.run(
        std::move(jobs),
        [&](std::size_t idx) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (idx % 3 == 0)
                throw std::runtime_error("job " + std::to_string(idx));
        },
        batch::ErrorPolicy::RecordAndContinue);
    EXPECT_EQ(ran.load(), kJobs);
    EXPECT_EQ(stats.executed, kJobs);
    EXPECT_EQ(stats.failed_jobs, (kJobs + 2) / 3);
    EXPECT_FALSE(stats.first_error.empty());
}

} // namespace
