// catlift/core/thread_annotations.h
//
// Clang thread-safety-analysis vocabulary for the campaign's concurrent
// subsystems, plus annotated std::mutex wrappers the analysis can reason
// about.  Under clang, `-Wthread-safety -Werror` (the CI job
// `clang-thread-safety`) statically proves that every CATLIFT_GUARDED_BY
// field is only touched with its mutex held and that every
// CATLIFT_REQUIRES contract is met at each call site; under any other
// compiler every macro expands to nothing and the wrappers degrade to
// plain std::mutex / std::lock_guard, so the annotations are free.
//
// Why wrappers instead of annotating std::mutex directly: libstdc++'s
// std::mutex carries no capability attributes, so clang cannot treat it
// as a lockable object.  catlift::Mutex is std::mutex with the
// capability attributes attached; catlift::MutexLock is the annotated
// scoped guard.  Both are drop-in (same API subset, zero overhead).
//
// Annotation conventions for this repo (docs/static-analysis.md):
//  * Every field written by more than one thread is either a std::atomic
//    or CATLIFT_GUARDED_BY its Mutex -- no third category.
//  * Private helpers called with a lock already held are marked
//    CATLIFT_REQUIRES(mu) instead of re-locking.
//  * A deliberately unanalyzed function (e.g. lock juggling the analysis
//    cannot follow) carries CATLIFT_NO_THREAD_SAFETY_ANALYSIS and a
//    comment saying why.

#pragma once

#include <mutex>

// clang implements the analysis; gcc and MSVC parse nothing of it.
#if defined(__clang__)
#define CATLIFT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CATLIFT_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Type attribute: this class is a lockable capability ("mutex").
#define CATLIFT_CAPABILITY(x) CATLIFT_THREAD_ANNOTATION(capability(x))
/// Type attribute: RAII object that holds a capability for its lifetime.
#define CATLIFT_SCOPED_CAPABILITY CATLIFT_THREAD_ANNOTATION(scoped_lockable)
/// Field attribute: reads/writes require holding `x`.
#define CATLIFT_GUARDED_BY(x) CATLIFT_THREAD_ANNOTATION(guarded_by(x))
/// Field attribute: the pointed-to data (not the pointer) requires `x`.
#define CATLIFT_PT_GUARDED_BY(x) CATLIFT_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function attribute: caller must hold the listed capabilities.
#define CATLIFT_REQUIRES(...) \
    CATLIFT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function attribute: acquires the listed capabilities.
#define CATLIFT_ACQUIRE(...) \
    CATLIFT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function attribute: releases the listed capabilities.
#define CATLIFT_RELEASE(...) \
    CATLIFT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function attribute: acquires the capability iff it returns `r`.
#define CATLIFT_TRY_ACQUIRE(r, ...) \
    CATLIFT_THREAD_ANNOTATION(try_acquire_capability(r, __VA_ARGS__))
/// Function attribute: caller must NOT hold the listed capabilities
/// (deadlock prevention for functions that will acquire them).
#define CATLIFT_EXCLUDES(...) \
    CATLIFT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function attribute: opt this function out of the analysis.
#define CATLIFT_NO_THREAD_SAFETY_ANALYSIS \
    CATLIFT_THREAD_ANNOTATION(no_thread_safety_analysis)
/// Function attribute: returns a reference to the given capability.
#define CATLIFT_RETURN_CAPABILITY(x) \
    CATLIFT_THREAD_ANNOTATION(lock_returned(x))

namespace catlift {

/// std::mutex with capability attributes: the lockable object the
/// analysis tracks.  Same cost, same semantics.
class CATLIFT_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() CATLIFT_ACQUIRE() { mu_.lock(); }
    void unlock() CATLIFT_RELEASE() { mu_.unlock(); }
    bool try_lock() CATLIFT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    std::mutex mu_;
};

/// Annotated scoped guard: std::lock_guard<catlift::Mutex> with the
/// scoped-capability attributes so the analysis knows the critical
/// section's extent.
class CATLIFT_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) CATLIFT_ACQUIRE(mu) : mu_(mu) {
        mu_.lock();
    }
    ~MutexLock() CATLIFT_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mu_;
};

}  // namespace catlift
