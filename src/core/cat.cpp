#include "core/cat.h"

#include "circuits/vco.h"

#include <sstream>

namespace catlift::core {

CatReport run_cat(const netlist::Circuit& sim_circuit,
                  const netlist::Circuit& device_schematic,
                  const layout::Layout& layout, const CatConfig& cfg) {
    CatReport rep;

    // Fig. 1 funnel: the three fault-list generations.
    rep.schematic_faults = lift::all_schematic_faults(device_schematic);
    rep.l2rfm_faults = lift::l2rfm_faults(device_schematic, cfg.l2rfm);
    rep.lift = lift::extract_faults(layout, cfg.tech, cfg.lift);
    rep.funnel.all_faults = rep.schematic_faults.size();
    rep.funnel.l2rfm = rep.l2rfm_faults.size();
    rep.funnel.glrfm = rep.lift.faults.size();

    // LVS: the extraction that produced the fault list must match the
    // schematic, otherwise the fault mapping is meaningless.
    if (cfg.run_lvs) {
        rep.lvs = netlist::compare_netlists(device_schematic,
                                            rep.lift.extraction.circuit,
                                            1e-2);
        require(rep.lvs.equivalent,
                "run_cat: extracted netlist does not match the schematic (" +
                    (rep.lvs.diffs.empty() ? std::string("?")
                                           : rep.lvs.diffs.front()) +
                    ")");
    }

    // AnaFAULT campaign on the realistic fault list.
    rep.campaign = anafault::run_campaign(sim_circuit, rep.lift.faults,
                                          cfg.campaign);
    return rep;
}

std::string cat_summary(const CatReport& rep) {
    std::ostringstream os;
    os << "fault list funnel (Fig. 1):\n";
    os << "  all schematic faults : " << rep.funnel.all_faults << "\n";
    os << "  L2RFM (pre-layout)   : " << rep.funnel.l2rfm << "\n";
    os << "  GLRFM (LIFT, layout) : " << rep.funnel.glrfm << "  ("
       << static_cast<int>(rep.funnel.reduction_vs_all() + 0.5)
       << "% reduction)\n";
    const lift::FaultList& fl = rep.lift.faults;
    os << "  breakdown: " << fl.shorts() << " bridging, "
       << fl.count(lift::FaultKind::LineOpen) +
              fl.count(lift::FaultKind::SplitNode)
       << " line opens/splits, " << fl.count(lift::FaultKind::StuckOpen)
       << " transistor stuck-open\n";
    os << "lvs: " << (rep.lvs.equivalent ? "clean" : "MISMATCH") << "\n\n";
    os << anafault::campaign_summary(rep.campaign);
    return os.str();
}

VcoExperiment make_vco_experiment(unsigned threads) {
    VcoExperiment e;
    e.sim_circuit = circuits::build_vco();

    circuits::VcoOptions dev_opt;
    dev_opt.with_sources = false;
    e.device_netlist = circuits::build_vco(dev_opt);

    e.layout = layout::generate_cell_layout(e.device_netlist,
                                            layout::vco_cellgen_options());

    e.config.lift.net_blocks = circuits::vco_net_blocks();
    e.config.campaign.threads = threads;
    e.config.campaign.detection.observed = {circuits::kVcoOutput};
    return e;
}

} // namespace catlift::core
