// catlift/core/cat.h
//
// The paper's primary contribution: a Computer-Aided Test system that
// *links* the realistic fault extraction tool LIFT with the automatic
// analogue fault simulator AnaFAULT (Fig. 1).  This module is the glue:
//
//   schematic ----------------------------+
//       |                                 |
//   layout synthesis / final layout       |
//       |                                 |
//   LIFT: circuit + fault extraction -> weighted fault list
//       |            (LVS against the schematic on the way)
//       v                                 v
//   AnaFAULT: nominal + per-fault simulation -> coverage report
//
// It also produces the Fig. 1 funnel statistics (all schematic faults ->
// L2RFM -> GLRFM) so the fault-list reduction can be reported.

#pragma once

#include "anafault/campaign.h"
#include "anafault/report.h"
#include "extract/extractor.h"
#include "layout/cellgen.h"
#include "lift/extract_faults.h"
#include "lift/schematic_faults.h"
#include "netlist/netlist.h"

#include <string>

namespace catlift::core {

struct CatConfig {
    layout::Technology tech = layout::Technology::single_poly_double_metal();
    lift::LiftOptions lift;
    lift::L2rfmOptions l2rfm;
    anafault::CampaignOptions campaign;
    bool run_lvs = true;  ///< verify extraction against the schematic
};

/// Fault-list funnel of Fig. 1 (arrow widths).
struct FaultFunnel {
    std::size_t all_faults = 0;   ///< complete schematic list
    std::size_t l2rfm = 0;        ///< pre-layout realistic mapping
    std::size_t glrfm = 0;        ///< LIFT (layout) realistic mapping

    double reduction_vs_all() const {
        return all_faults == 0
                   ? 0.0
                   : 100.0 * (1.0 - static_cast<double>(glrfm) /
                                        static_cast<double>(all_faults));
    }
};

/// Everything the CAT run produces.
struct CatReport {
    lift::FaultList schematic_faults;
    lift::FaultList l2rfm_faults;
    lift::LiftResult lift;
    netlist::CompareResult lvs;
    FaultFunnel funnel;
    anafault::CampaignResult campaign;
};

/// Run the complete flow: LIFT on the layout, funnel statistics, LVS, then
/// the AnaFAULT campaign on the simulatable circuit (schematic including
/// its stimulus sources and .tran card).
///
/// `sim_circuit` and `layout` must agree on net and device names (the
/// layout labels carry them); this is checked by the LVS step.
CatReport run_cat(const netlist::Circuit& sim_circuit,
                  const netlist::Circuit& device_schematic,
                  const layout::Layout& layout, const CatConfig& cfg = {});

/// Render the funnel + campaign headline numbers as a text block.
std::string cat_summary(const CatReport& report);

// ---------------------------------------------------------------------------
// Canned VCO experiment (section VI of the paper): builds the schematic,
// synthesises the layout, and returns everything needed by the benches.

struct VcoExperiment {
    netlist::Circuit sim_circuit;     ///< 26-T VCO with sources + .tran
    netlist::Circuit device_netlist;  ///< devices only (LVS golden)
    layout::Layout layout;
    CatConfig config;
};

/// Assemble the canonical VCO experiment (threads: campaign parallelism).
VcoExperiment make_vco_experiment(unsigned threads = 1);

} // namespace catlift::core
