// catlift/circuits/ringosc.h
//
// Parameterizable N-stage CMOS ring oscillator: the kernel-scaling
// workload.  The paper's circuits top out at tens of unknowns, where
// dense LU is unbeatable; the ring grows the MNA system arbitrarily
// (one node per stage plus supply) while staying electrically
// interesting -- every stage switches, so the Newton iteration count per
// step stays realistic rather than collapsing to a linear-network
// best case.  bench_kernel_scaling sweeps N to expose the asymptotic
// separation between the dense and sparse kernels.
//
// Stage widths carry a small deterministic perturbation so the ring
// breaks out of its metastable symmetric mode without needing a kick
// source, and each stage sees an explicit load capacitor so the
// oscillation period is set by design rather than by parasitic gate
// capacitance alone.

#pragma once

#include "netlist/netlist.h"

#include <string>

namespace catlift::circuits {

struct RingOscOptions {
    int stages = 11;            ///< inverter count; must be odd and >= 3
    double vdd = 5.0;           ///< supply [V]
    double cload = 30e-15;      ///< per-stage load capacitor [F]
    double supply_ramp = 20e-9; ///< VDD activation ramp [s]
    bool with_sources = true;   ///< include the VDD source + .tran card
};

/// Build the N-stage ring.  Stage i drives node "r<i+1 mod N>" from node
/// "r<i>"; the supply node is "vdd".  With `with_sources` the deck carries
/// a ramped VDD and a .tran card sized to a few oscillation periods.
netlist::Circuit build_ring_oscillator(const RingOscOptions& opt = {});

/// Name of the i-th ring node ("r0" .. "r<N-1>").
std::string ring_node(int i);

} // namespace catlift::circuits
