#include "circuits/ringosc.h"

#include "circuits/vco.h"

#include <cmath>

namespace catlift::circuits {

using netlist::Circuit;
using netlist::SourceSpec;

std::string ring_node(int i) { return "r" + std::to_string(i); }

Circuit build_ring_oscillator(const RingOscOptions& opt) {
    require(opt.stages >= 3 && opt.stages % 2 == 1,
            "build_ring_oscillator: stages must be odd and >= 3");
    Circuit c;
    c.title = "ring oscillator x" + std::to_string(opt.stages);
    c.add_model(standard_nmos());
    c.add_model(standard_pmos());

    constexpr double L = 2e-6;
    for (int i = 0; i < opt.stages; ++i) {
        const std::string in = ring_node(i);
        const std::string out = ring_node((i + 1) % opt.stages);
        // Deterministic width spread breaks the symmetric (common-mode)
        // metastable solution so the travelling-wave oscillation starts on
        // its own.  The period-11 pattern is coprime with every practical
        // stage count, so no ring degenerates into replicated copies of a
        // smaller one.
        const double spread =
            1.0 + 0.008 * static_cast<double>((i * 37) % 11 - 5);
        c.add_mosfet("MP" + std::to_string(i + 1), out, in, "vdd", "vdd",
                     "pm", 20e-6 * spread, L);
        c.add_mosfet("MN" + std::to_string(i + 1), out, in, "0", "0", "nm",
                     10e-6 * spread, L);
        c.add_capacitor("CL" + std::to_string(i + 1), out, "0", opt.cload);
    }

    if (opt.with_sources) {
        // Supply activation at t=0, as in the paper's VCO experiment.
        c.add_vsource("VDD", "vdd", "0",
                      SourceSpec::make_pulse(0.0, opt.vdd, 0.0,
                                             opt.supply_ramp, opt.supply_ramp,
                                             1.0, 2.0));
        // A few periods of a mid-sized ring; benches override per N.
        c.tran = netlist::TranSpec{2.5e-9, 1e-6, 0.0};
        c.save_nodes = {ring_node(0)};
    }
    return c;
}

} // namespace catlift::circuits
