// catlift/circuits/oscgrid.h
//
// Parameterizable 2-D grid of coupled CMOS ring oscillators: the
// 10k-unknown kernel workload.  The 1-D ring (ringosc.h) grows the MNA
// system linearly but its matrix stays tridiagonal-ish; real layouts
// couple in two dimensions, which is what makes fill-reducing orderings
// earn their keep (a banded ordering of a 2-D grid fills O(n^1.5), a
// minimum-degree one stays near O(n log n)).  Each grid cell is a small
// ring oscillator; nearest-neighbour cells are coupled through resistors
// between their stage-0 nodes, so the whole array is one electrically
// connected sheet of interacting oscillators -- every stage switches,
// keeping the Newton iteration count per step realistic.
//
// Like the 1-D ring, cell widths carry a small deterministic per-cell
// perturbation so the array breaks out of its metastable symmetric mode
// by itself, and every stage sees an explicit load capacitor.

#pragma once

#include "netlist/netlist.h"

#include <string>

namespace catlift::circuits {

struct OscGridOptions {
    int rows = 8;               ///< grid rows; >= 1
    int cols = 8;               ///< grid columns; >= 1
    int stages = 3;             ///< ring stages per cell; odd and >= 3
    double vdd = 5.0;           ///< supply [V]
    double cload = 15e-15;      ///< per-stage load capacitor [F]
    double r_couple = 50e3;     ///< nearest-neighbour coupling resistor [Ohm]
    double supply_ramp = 20e-9; ///< VDD activation ramp [s]
    bool with_sources = true;   ///< include the VDD source + .tran card
};

/// Build the rows x cols grid.  Cell (r, c)'s ring runs on nodes
/// grid_node(r, c, 0..stages-1); stage s drives stage (s+1) mod stages.
/// Unknown count = rows*cols*stages + 2 (vdd node + VDD branch) with
/// sources included.
netlist::Circuit build_oscillator_grid(const OscGridOptions& opt = {});

/// Name of stage `s` of cell (r, c): "g<r>_<c>_<s>".
std::string grid_node(int r, int c, int s);

} // namespace catlift::circuits
