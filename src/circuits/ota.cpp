#include "circuits/ota.h"

#include "circuits/vco.h"

namespace catlift::circuits {

using netlist::Circuit;
using netlist::SourceSpec;

Circuit build_ota(const OtaOptions& opt) {
    Circuit c;
    c.title = "ota 7T unity-gain buffer";
    c.add_model(standard_nmos());
    c.add_model(standard_pmos());

    constexpr double L = 2e-6;
    // Differential pair.
    c.add_mosfet("M1", "m", "inp", "t", "0", "nm", 20e-6, L);
    c.add_mosfet("M2", "out", "out", "t", "0", "nm", 20e-6, L);
    // PMOS mirror load.
    c.add_mosfet("M3", "m", "m", "1", "1", "pm", 20e-6, L);
    c.add_mosfet("M4", "out", "m", "1", "1", "pm", 20e-6, L);
    // Tail current source with a diode-divider bias.
    c.add_mosfet("M5", "t", "b", "0", "0", "nm", 10e-6, L);
    c.add_mosfet("M6", "b", "b", "1", "1", "pm", 4e-6, L);
    c.add_mosfet("M7", "b", "b", "0", "0", "nm", 4e-6, L);
    c.add_capacitor("CL", "out", "0", opt.cl);

    if (opt.with_sources) {
        c.add_vsource("VDD", "1", "0",
                      SourceSpec::make_pulse(0.0, opt.vdd, 0.0, 50e-9,
                                             50e-9, 1.0, 2.0));
        SourceSpec sine;
        sine.kind = SourceSpec::Kind::Sin;
        sine.vo = opt.vdd / 2.0;
        sine.va = opt.sine_amp;
        sine.freq = opt.sine_freq;
        sine.sin_td = 0.2e-6;  // let the bias settle first
        c.add_vsource("VIN", "inp", "0", sine);
        c.tran = netlist::TranSpec{1e-8, 4e-6, 0.0};
        c.save_nodes = {kOtaOutput};
    }
    return c;
}

std::map<std::string, std::string> ota_net_blocks() {
    return {
        {"0", "supply"}, {"1", "supply"},
        {"inp", "input"},
        {"m", "mirror"}, {"out", "output"},
        {"t", "tail"},   {"b", "bias"},
    };
}

} // namespace catlift::circuits
