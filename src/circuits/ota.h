// catlift/circuits/ota.h
//
// Second demonstrator: a 7-transistor OTA in unity-gain (buffer)
// configuration.  The paper notes "the tool has been used for the fault
// simulation of various circuits"; this fixture exercises the complete
// CAT flow -- layout synthesis, LIFT, AnaFAULT -- on a *linear* analogue
// block where faults manifest as gain/offset errors rather than
// oscillation changes, complementing the VCO.
//
// Topology: NMOS differential pair (M1 input, M2 diode-feedback from the
// output), PMOS mirror load (M3 diode master, M4 output), NMOS tail
// source M5 biased by the diode divider M6 (PMOS) / M7 (NMOS), load
// capacitor on "out".  The inverting input is tied to the output
// (unity-gain follower); the stimulus drives "inp" with a sine around
// mid-supply.

#pragma once

#include "netlist/netlist.h"

#include <map>
#include <string>

namespace catlift::circuits {

struct OtaOptions {
    double vdd = 5.0;
    double cl = 1e-12;           ///< load capacitor [F]
    double sine_amp = 0.5;       ///< stimulus amplitude [V]
    double sine_freq = 1e6;      ///< stimulus frequency [Hz]
    bool with_sources = true;
};

/// Build the OTA follower.  Output node: "out"; input: "inp".
netlist::Circuit build_ota(const OtaOptions& opt = {});

inline constexpr const char* kOtaOutput = "out";
inline constexpr const char* kOtaInput = "inp";

/// Net -> functional block map for LIFT's global-short classification.
std::map<std::string, std::string> ota_net_blocks();

} // namespace catlift::circuits
