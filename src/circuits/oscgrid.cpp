#include "circuits/oscgrid.h"

#include "circuits/vco.h"

namespace catlift::circuits {

using netlist::Circuit;
using netlist::SourceSpec;

std::string grid_node(int r, int c, int s) {
    std::string n = "g";
    n += std::to_string(r);
    n += '_';
    n += std::to_string(c);
    n += '_';
    n += std::to_string(s);
    return n;
}

Circuit build_oscillator_grid(const OscGridOptions& opt) {
    require(opt.rows >= 1 && opt.cols >= 1,
            "build_oscillator_grid: grid must be at least 1x1");
    require(opt.stages >= 3 && opt.stages % 2 == 1,
            "build_oscillator_grid: stages must be odd and >= 3");
    Circuit ckt;
    ckt.title = "coupled oscillator grid " + std::to_string(opt.rows) + "x" +
                std::to_string(opt.cols) + " x" + std::to_string(opt.stages);
    ckt.add_model(standard_nmos());
    ckt.add_model(standard_pmos());

    constexpr double L = 2e-6;
    for (int r = 0; r < opt.rows; ++r) {
        for (int c = 0; c < opt.cols; ++c) {
            const int cell = r * opt.cols + c;
            const std::string id = std::to_string(r) + "_" + std::to_string(c);
            for (int s = 0; s < opt.stages; ++s) {
                const std::string in = grid_node(r, c, s);
                const std::string out = grid_node(r, c, (s + 1) % opt.stages);
                // Deterministic per-(cell, stage) width spread breaks the
                // array's symmetric metastable mode; period-11 pattern as
                // in the 1-D ring.
                const double spread =
                    1.0 + 0.008 * static_cast<double>(
                                      ((cell * 7 + s) * 37) % 11 - 5);
                const std::string sfx = id + "_" + std::to_string(s);
                ckt.add_mosfet("MP" + sfx, out, in, "vdd", "vdd", "pm",
                               20e-6 * spread, L);
                ckt.add_mosfet("MN" + sfx, out, in, "0", "0", "nm",
                               10e-6 * spread, L);
                ckt.add_capacitor("CL" + sfx, out, "0", opt.cload);
            }
            // Nearest-neighbour coupling between stage-0 nodes: east and
            // south, so every interior cell couples to four neighbours.
            if (c + 1 < opt.cols)
                ckt.add_resistor("RE" + id, grid_node(r, c, 0),
                                 grid_node(r, c + 1, 0), opt.r_couple);
            if (r + 1 < opt.rows)
                ckt.add_resistor("RS" + id, grid_node(r, c, 0),
                                 grid_node(r + 1, c, 0), opt.r_couple);
        }
    }

    if (opt.with_sources) {
        // Supply activation at t=0, as in the paper's VCO experiment.
        ckt.add_vsource("VDD", "vdd", "0",
                        SourceSpec::make_pulse(0.0, opt.vdd, 0.0,
                                               opt.supply_ramp,
                                               opt.supply_ramp, 1.0, 2.0));
        ckt.tran = netlist::TranSpec{2.5e-9, 1e-6, 0.0};
        ckt.save_nodes = {grid_node(0, 0, 0)};
    }
    return ckt;
}

} // namespace catlift::circuits
