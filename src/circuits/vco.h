// catlift/circuits/vco.h
//
// The paper's demonstrator: a voltage-controlled relaxation oscillator in
// single-poly double-metal CMOS, built from exactly 26 transistors and one
// timing capacitor (paper, Fig. 3 and section VI).
//
// Block structure (paper nomenclature):
//   * V-to-I conversion   -- input device M1 with a degeneration diode pair
//     (M2||M26), PMOS mirror master pair (M3||M24), charge source M4,
//     second branch M5 into the NMOS mirror master pair (M6||M25) and the
//     discharge sink M7.
//   * Analogue switch     -- transmission gates M8/M9 (charge) and M10/M23
//     (discharge) steering the capacitor node.
//   * Schmitt trigger     -- the classic 6-T CMOS Schmitt M11..M16; M11 is
//     the grounded-source NMOS whose drain is the Fig. 6 short target.
//   * Control/output      -- inverters M17/M18 (phi), M19/M20 (phi_b) and
//     the output buffer M21/M22 driving node 11 (the observed output).
//
// The fault-count arithmetic of section VI holds exactly:
//   26 x 3 + 1 = 79 single opens (78 transistor opens + capacitor open),
//   26 x 3 - 6 + 1 = 73 shorts (6 designed gate-drain shorts on the
//   diode-connected devices M2, M26, M3, M24, M6, M25).
//
// Node numbering follows the paper where it is known: "11" is the output
// the waveforms of Fig. 4/6 observe, "6" is the capacitor node, "5" the
// charge rail (the #6 bridge 5-6 analogue), "1" is VDD, "2" the control
// voltage input.

#pragma once

#include "netlist/netlist.h"

#include <map>
#include <string>

namespace catlift::circuits {

struct VcoOptions {
    double vdd = 5.0;          ///< supply [V]
    double vctrl = 2.5;        ///< control voltage, held constant (paper)
    double cap = 2e-12;        ///< timing capacitor [F]
    double supply_ramp = 50e-9;///< VDD activation ramp [s]
    bool with_sources = true;  ///< include VDD/VCTRL sources
};

/// Build the 26-transistor VCO schematic.  With `with_sources` the deck is
/// directly simulatable; without, it is the pure device netlist used for
/// LVS against the extracted layout.
netlist::Circuit build_vco(const VcoOptions& opt = {});

/// Observed output node of the VCO (paper: V(11)).
inline constexpr const char* kVcoOutput = "11";
/// Timing capacitor node.
inline constexpr const char* kVcoCapNode = "6";
/// Charge rail (the paper's example bridge #6 is 5->6).
inline constexpr const char* kVcoChargeRail = "5";
/// Drain of Schmitt transistor M11 (the Fig. 6 shorting-resistor target).
/// M11 is the Schmitt output NMOS, so this is the Schmitt output node.
inline constexpr const char* kVcoSchmittDrain = "9";

/// Functional block of each net, used by LIFT to classify global shorts
/// (bridges between different blocks / supplies) vs local ones.
std::map<std::string, std::string> vco_net_blocks();

/// The standard NMOS/PMOS level-1 models used by every circuit in this
/// repository (5V single-poly double-metal CMOS flavour).
netlist::MosModel standard_nmos();
netlist::MosModel standard_pmos();

/// A plain CMOS inverter fixture (for tests and examples).
netlist::Circuit build_inverter(double vdd = 5.0);

/// An N-stage CMOS inverter chain ("c0" -> "c1" -> ... -> "cN"), used to
/// scale the layout generator / extraction / LIFT pipeline in benches.
/// Without sources the netlist is cellgen-ready (L = 2 um everywhere).
netlist::Circuit build_inverter_chain(int stages, bool with_sources = true);

/// A stand-alone 6-T CMOS Schmitt trigger driven by a triangular source,
/// used to characterise the hysteresis thresholds.
netlist::Circuit build_schmitt_fixture(double vdd = 5.0);

} // namespace catlift::circuits
