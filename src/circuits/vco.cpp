#include "circuits/vco.h"

namespace catlift::circuits {

using netlist::Circuit;
using netlist::MosModel;
using netlist::SourceSpec;

MosModel standard_nmos() {
    MosModel m;
    m.name = "nm";
    m.is_nmos = true;
    m.vto = 0.8;
    m.kp = 50e-6;
    m.lambda = 0.02;
    m.tox = 20e-9;
    m.cgso = 0.3e-9;
    m.cgdo = 0.3e-9;
    return m;
}

MosModel standard_pmos() {
    MosModel m = standard_nmos();
    m.name = "pm";
    m.is_nmos = false;
    m.vto = -0.8;
    m.kp = 20e-6;
    return m;
}

Circuit build_vco(const VcoOptions& opt) {
    Circuit c;
    c.title = "vco 26T single-poly double-metal cmos";
    c.add_model(standard_nmos());
    c.add_model(standard_pmos());

    constexpr double L = 2e-6;
    auto nmos = [&](const char* name, const char* d, const char* g,
                    const char* s, double w) {
        c.add_mosfet(name, d, g, s, "0", "nm", w, L);
    };
    auto pmos = [&](const char* name, const char* d, const char* g,
                    const char* s, double w) {
        c.add_mosfet(name, d, g, s, "1", "pm", w, L);
    };

    // --- V-to-I conversion -------------------------------------------------
    nmos("M1", "3", "2", "4", 2e-6);    // input transconductor
    nmos("M2", "4", "4", "0", 10e-6);   // degeneration diode (unit A)
    nmos("M26", "4", "4", "0", 10e-6);  // degeneration diode (unit B)
    pmos("M3", "3", "3", "1", 10e-6);   // PMOS mirror master (unit A)
    pmos("M24", "3", "3", "1", 10e-6);  // PMOS mirror master (unit B)
    pmos("M4", "5", "3", "1", 20e-6);   // charge current source -> rail 5
    pmos("M5", "8", "3", "1", 20e-6);   // branch into NMOS mirror
    nmos("M6", "8", "8", "0", 10e-6);   // NMOS mirror master (unit A)
    nmos("M25", "8", "8", "0", 10e-6);  // NMOS mirror master (unit B)
    nmos("M7", "7", "8", "0", 40e-6);   // discharge sink (2x: asymmetric)

    // --- Analogue switch (two transmission gates) --------------------------
    nmos("M8", "5", "12", "6", 20e-6);   // charge TG, N side
    pmos("M9", "5", "10", "6", 40e-6);   // charge TG, P side
    nmos("M10", "6", "10", "7", 20e-6);  // discharge TG, N side
    pmos("M23", "6", "12", "7", 40e-6);  // discharge TG, P side

    // --- Schmitt trigger (input 6, output 9) --------------------------------
    nmos("M11", "9", "6", "15", 10e-6); // N2: output NMOS (drain 9 is the
                                        // Fig. 6 shorting-resistor target)
    nmos("M12", "15", "6", "0", 10e-6); // N1 (grounded source)
    nmos("M13", "1", "9", "15", 18e-6); // N3 feedback (to VDD)
    pmos("M14", "14", "6", "1", 25e-6);  // P1
    pmos("M15", "9", "6", "14", 25e-6);  // P2
    pmos("M16", "0", "9", "14", 45e-6);  // P3 feedback (to GND)

    // --- Control inverters and output buffer --------------------------------
    pmos("M17", "10", "9", "1", 20e-6);  // INV1: 9 -> 10 (phi)
    nmos("M18", "10", "9", "0", 10e-6);
    pmos("M19", "12", "10", "1", 20e-6); // INV2: 10 -> 12 (phi_b)
    nmos("M20", "12", "10", "0", 10e-6);
    pmos("M21", "11", "10", "1", 40e-6); // output buffer: 10 -> 11
    nmos("M22", "11", "10", "0", 20e-6);

    // --- Timing capacitor ----------------------------------------------------
    c.add_capacitor("C1", "6", "0", opt.cap);

    if (opt.with_sources) {
        // Supply activation at t=0 (the paper starts the transient with the
        // activation of the supply voltage; no explicit stimulus needed).
        c.add_vsource("VDD", "1", "0",
                      SourceSpec::make_pulse(0.0, opt.vdd, 0.0,
                                             opt.supply_ramp, opt.supply_ramp,
                                             1.0, 2.0));
        c.add_vsource("VCTRL", "2", "0", SourceSpec::make_dc(opt.vctrl));
        c.tran = netlist::TranSpec{1e-8, 4e-6, 0.0};  // the 400-step run
        c.save_nodes = {kVcoOutput, kVcoCapNode};
    }
    return c;
}

std::map<std::string, std::string> vco_net_blocks() {
    return {
        {"0", "supply"}, {"1", "supply"},
        {"2", "v2i"},    {"3", "v2i"},   {"4", "v2i"}, {"8", "v2i"},
        {"5", "switch"}, {"6", "switch"}, {"7", "switch"},
        {"9", "schmitt"}, {"14", "schmitt"}, {"15", "schmitt"},
        {"10", "buffer"}, {"11", "buffer"}, {"12", "buffer"},
    };
}

Circuit build_inverter(double vdd) {
    Circuit c;
    c.title = "cmos inverter";
    c.add_model(standard_nmos());
    c.add_model(standard_pmos());
    c.add_vsource("VDD", "vdd", "0", SourceSpec::make_dc(vdd));
    c.add_vsource("VIN", "in", "0", SourceSpec::make_dc(0.0));
    c.add_mosfet("MP", "out", "in", "vdd", "vdd", "pm", 20e-6, 2e-6);
    c.add_mosfet("MN", "out", "in", "0", "0", "nm", 10e-6, 2e-6);
    c.add_capacitor("CL", "out", "0", 50e-15);
    return c;
}

Circuit build_inverter_chain(int stages, bool with_sources) {
    require(stages >= 1, "build_inverter_chain: need at least one stage");
    Circuit c;
    c.title = "inverter chain x" + std::to_string(stages);
    c.add_model(standard_nmos());
    c.add_model(standard_pmos());
    for (int i = 0; i < stages; ++i) {
        const std::string in = "c" + std::to_string(i);
        const std::string out = "c" + std::to_string(i + 1);
        c.add_mosfet("MP" + std::to_string(i + 1), out, in, "1", "1", "pm",
                     20e-6, 2e-6);
        c.add_mosfet("MN" + std::to_string(i + 1), out, in, "0", "0", "nm",
                     10e-6, 2e-6);
    }
    if (with_sources) {
        c.add_vsource("VDD", "1", "0", SourceSpec::make_dc(5.0));
        c.add_vsource("VIN", "c0", "0",
                      SourceSpec::make_pulse(0, 5, 100e-9, 10e-9, 10e-9,
                                             400e-9, 1e-6));
        c.tran = netlist::TranSpec{2e-9, 1e-6, 0.0};
    }
    return c;
}

Circuit build_schmitt_fixture(double vdd) {
    Circuit c;
    c.title = "schmitt trigger fixture";
    c.add_model(standard_nmos());
    c.add_model(standard_pmos());
    c.add_vsource("VDD", "vdd", "0", SourceSpec::make_dc(vdd));
    // Slow triangle spanning the rails: up in 2us, down in 2us.
    netlist::SourceSpec tri;
    tri.kind = netlist::SourceSpec::Kind::Pwl;
    tri.pwl = {{0.0, 0.0}, {2e-6, vdd}, {4e-6, 0.0}};
    c.add_vsource("VIN", "in", "0", tri);
    c.add_mosfet("MN1", "x2", "in", "0", "0", "nm", 10e-6, 2e-6);
    c.add_mosfet("MN2", "out", "in", "x2", "0", "nm", 10e-6, 2e-6);
    c.add_mosfet("MN3", "vdd", "out", "x2", "0", "nm", 18e-6, 2e-6);
    c.add_mosfet("MP1", "x1", "in", "vdd", "vdd", "pm", 25e-6, 2e-6);
    c.add_mosfet("MP2", "out", "in", "x1", "vdd", "pm", 25e-6, 2e-6);
    c.add_mosfet("MP3", "0", "out", "x1", "vdd", "pm", 45e-6, 2e-6);
    c.add_capacitor("CL", "out", "0", 20e-15);
    c.tran = netlist::TranSpec{2e-9, 4e-6, 0.0};
    return c;
}

} // namespace catlift::circuits
