// catlift/layout/render.h
//
// Terminal rendering of a layout: a scaled plan view with one character
// per layer (cuts and devices drawn over routing).  Good enough to eyeball
// the synthesised cell rows, the routing channel and the capacitor module
// in a README or an example run.

#pragma once

#include "layout/layout.h"

#include <string>

namespace catlift::layout {

struct RenderOptions {
    int width = 100;    ///< output columns
    bool legend = true; ///< append the layer/character legend
};

/// Render the layout into ASCII (rows scaled to keep the aspect ratio).
std::string ascii_render(const Layout& lo, const RenderOptions& opt = {});

} // namespace catlift::layout
