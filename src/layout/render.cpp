#include "layout/render.h"

#include <algorithm>
#include <sstream>

namespace catlift::layout {

namespace {

/// Character and draw priority per layer (higher priority wins a cell).
struct Glyph {
    char ch;
    int priority;
};

Glyph glyph(Layer l) {
    switch (l) {
        case Layer::NWell: return {'~', 0};
        case Layer::NDiff: return {'n', 2};
        case Layer::PDiff: return {'p', 2};
        case Layer::Poly: return {'I', 3};
        case Layer::Metal1: return {'-', 1};
        case Layer::Metal2: return {'=', 4};
        case Layer::Contact: return {'+', 5};
        case Layer::Via: return {'x', 5};
        case Layer::CapMark: return {'C', 6};
    }
    return {'?', 0};
}

} // namespace

std::string ascii_render(const Layout& lo, const RenderOptions& opt) {
    require(opt.width > 4, "ascii_render: width too small");
    if (lo.shapes.empty()) return "(empty layout)\n";

    const geom::Rect bb = lo.bbox();
    const double w = static_cast<double>(bb.width());
    const double h = static_cast<double>(bb.height());
    const int cols = opt.width;
    // Terminal cells are ~2x taller than wide; halve the row count.
    const int rows = std::max(
        4, static_cast<int>(h / w * cols / 2.2 + 0.5));

    std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                  std::string(static_cast<std::size_t>(cols),
                                              ' '));
    std::vector<std::vector<int>> prio(
        static_cast<std::size_t>(rows),
        std::vector<int>(static_cast<std::size_t>(cols), -1));

    auto to_col = [&](geom::Coord x) {
        return std::clamp(static_cast<int>((static_cast<double>(x - bb.lo.x) /
                                            w) * (cols - 1) + 0.5),
                          0, cols - 1);
    };
    auto to_row = [&](geom::Coord y) {
        // y grows upward; rows grow downward.
        return std::clamp(
            rows - 1 - static_cast<int>((static_cast<double>(y - bb.lo.y) /
                                         h) * (rows - 1) + 0.5),
            0, rows - 1);
    };

    for (const Shape& s : lo.shapes) {
        const Glyph g = glyph(s.layer);
        const int c0 = to_col(s.rect.lo.x), c1 = to_col(s.rect.hi.x);
        const int r0 = to_row(s.rect.hi.y), r1 = to_row(s.rect.lo.y);
        for (int r = r0; r <= r1; ++r) {
            for (int c = c0; c <= c1; ++c) {
                auto& p = prio[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(c)];
                if (g.priority > p) {
                    p = g.priority;
                    grid[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(c)] = g.ch;
                }
            }
        }
    }

    std::ostringstream os;
    os << "layout '" << lo.name << "'  " << geom::to_um(bb.width()) << " x "
       << geom::to_um(bb.height()) << " um, " << lo.shapes.size()
       << " shapes\n";
    for (const std::string& row : grid) os << "  " << row << "\n";
    if (opt.legend) {
        os << "  legend: n/p diffusion  I poly  - metal1  = metal2  "
              "+ contact  x via  C capacitor  ~ well\n";
    }
    return os.str();
}

} // namespace catlift::layout
