#include "layout/tech.h"

namespace catlift::layout {

const char* layer_name(Layer l) {
    switch (l) {
        case Layer::NWell: return "nwell";
        case Layer::NDiff: return "ndiff";
        case Layer::PDiff: return "pdiff";
        case Layer::Poly: return "poly";
        case Layer::Contact: return "contact";
        case Layer::Metal1: return "metal1";
        case Layer::Via: return "via";
        case Layer::Metal2: return "metal2";
        case Layer::CapMark: return "capmark";
    }
    return "?";
}

Layer layer_from_name(const std::string& name) {
    for (std::size_t i = 0; i < kLayerCount; ++i) {
        const Layer l = static_cast<Layer>(i);
        if (name == layer_name(l)) return l;
    }
    throw Error("unknown layer name: " + name);
}

bool is_conducting(Layer l) {
    switch (l) {
        case Layer::NDiff:
        case Layer::PDiff:
        case Layer::Poly:
        case Layer::Metal1:
        case Layer::Metal2: return true;
        default: return false;
    }
}

bool is_cut(Layer l) { return l == Layer::Contact || l == Layer::Via; }

Technology Technology::single_poly_double_metal() {
    Technology t;
    t.name = "spdm-5v";
    t.lambda = 1000;  // 1 um
    const geom::Coord um = 1000;
    t.rule(Layer::NWell) = {6 * um, 6 * um};
    t.rule(Layer::NDiff) = {2 * um, 3 * um};
    t.rule(Layer::PDiff) = {2 * um, 3 * um};
    t.rule(Layer::Poly) = {2 * um, 2 * um};
    t.rule(Layer::Contact) = {2 * um, 2 * um};
    t.rule(Layer::Metal1) = {2 * um, 2 * um};
    t.rule(Layer::Via) = {2 * um, 2 * um};
    t.rule(Layer::Metal2) = {3 * um, 3 * um};
    t.rule(Layer::CapMark) = {4 * um, 4 * um};
    t.cap_per_area = 1e-3;  // 1 fF/um^2
    return t;
}

} // namespace catlift::layout
