// catlift/layout/revise.h
//
// Deterministic layout-revision perturber.  Real design iterations nudge
// geometry -- a wire is widened to cut its resistance, a contact slides to
// clear a DRC flag, a terminal gains or loses a redundant cut -- and every
// such edit shifts the extracted fault list a little while leaving most of
// it untouched.  This module applies exactly those edit classes to a
// generated layout so tests and benches can exercise realistic
// cross-revision fault-list diffs (carried / probability-changed / added /
// removed) without a second hand-drawn layout.
//
// All edits are deterministic functions of the input layout and the spec:
// revising the same layout twice yields byte-identical output.

#pragma once

#include "layout/layout.h"

#include <string>
#include <utility>
#include <vector>

namespace catlift::layout {

/// One batch of revision edits, applied in the field order below.
struct RevisionSpec {
    /// Widen the metal2 routing track of a net upward (toward the next
    /// track) by delta nm: its spacing to the neighbour above shrinks, so
    /// the bridge probability of that net pair grows, and the track's own
    /// short-axis width grows, shrinking its open probabilities.  Shapes
    /// matched by owner "route:<net>".
    std::vector<std::pair<std::string, geom::Coord>> widen_tracks;
    /// Slide the contact cuts of a device terminal ("M7:d") horizontally
    /// by dx nm (within the landing pad).  Cluster size and connectivity
    /// are unchanged, so the fault list is too -- the carried class.
    std::vector<std::pair<std::string, geom::Coord>> shift_contacts;
    /// Give a single-contact terminal a second stacked cut (the cellgen
    /// redundant-pair geometry): the cut cluster can no longer be killed
    /// by a small spot defect, removing its stuck-open fault.
    std::vector<std::string> make_redundant;
    /// Drop all but the lowest cut of a terminal's contact stack: a
    /// redundant terminal becomes single-contact, adding a stuck-open
    /// fault the baseline list did not have.
    std::vector<std::string> make_single;
};

/// Apply the spec to a copy of `lo`.  Throws catlift::Error when an edit
/// matches no shape (a typo'd net or terminal tag must not silently
/// produce an unrevised layout).
Layout revise_layout(const Layout& lo, const RevisionSpec& spec);

/// The canonical VCO revision used by tests and benches: widen the charge
/// rail's track (net "5"), slide M7's single drain contact, make M11's
/// gate contact redundant (removes its stuck-open), and strip M13's gate
/// contact pair to a single cut (adds a stuck-open).
RevisionSpec vco_revision_spec();

} // namespace catlift::layout
