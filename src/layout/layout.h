// catlift/layout/layout.h
//
// Flat mask-level layout database: rectangles on layers, plus net labels
// and shape provenance.  Provenance (`owner`) records which schematic
// device/terminal a shape implements -- the hook that lets LIFT map a
// geometric failure site back to an electrical fault on the schematic,
// mirroring the paper's simultaneous circuit + fault extraction.

#pragma once

#include "geom/rect.h"
#include "layout/tech.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace catlift::layout {

/// One mask rectangle.
struct Shape {
    Layer layer = Layer::Metal1;
    geom::Rect rect;
    /// Provenance tag, e.g. "M11:d" (device:terminal), "route:6" (net
    /// routing), "rail:0".  Free-form; empty when unknown.
    std::string owner;
};

/// Net-name annotation: a point on a conducting layer.
struct Label {
    Layer layer = Layer::Metal1;
    geom::Point at;
    std::string text;
};

/// A flat layout cell.
class Layout {
public:
    std::string name;
    std::vector<Shape> shapes;
    std::vector<Label> labels;

    /// Add a rectangle; degenerate rects are rejected.
    Shape& add(Layer layer, const geom::Rect& r, std::string owner = {});

    /// Add a net label.
    void add_label(Layer layer, geom::Point at, std::string text);

    /// All shapes on one layer (indices into `shapes`).
    std::vector<std::size_t> on_layer(Layer l) const;

    geom::Rect bbox() const;

    /// Total drawn area of a layer (union area, no double counting) in nm^2.
    double layer_area(Layer l) const;

    std::size_t size() const { return shapes.size(); }
};

/// Plain-text layout interchange format:
///
///   layout <name>
///   units nm
///   rect <layer> <x0> <y0> <x1> <y1> [owner]
///   label <layer> <x> <y> <text>
///   end
///
/// The format round-trips exactly (integer nm coordinates).
void write_layout(std::ostream& os, const Layout& lo);
std::string write_layout(const Layout& lo);
Layout read_layout(std::istream& is);
Layout read_layout_text(const std::string& text);
void write_layout_file(const std::string& path, const Layout& lo);
Layout read_layout_file(const std::string& path);

} // namespace catlift::layout
