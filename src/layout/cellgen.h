// catlift/layout/cellgen.h
//
// Standard-cell-style layout synthesis.  Produces a fabricated-looking,
// DRC-clean layout for a flat MOS netlist:
//
//     VDD rail (metal1) ─────────────────────────────────
//       [ PMOS row: one column per device, vertical poly gates ]
//       [ routing channel: one horizontal metal2 track per net,
//         vertical metal1 stubs from the terminals, double vias ]
//       [ NMOS row ]                       [ capacitor module ]
//     GND rail (metal1) ─────────────────────────────────
//
// The generator stands in for the paper's fabricated VCO layout (which is
// not available); what LIFT extracts from it -- bridge adjacencies, line
// runs, contact redundancy -- is controlled by the same geometric knobs a
// real layout has:
//
//  * the metal2 track order decides which nets become bridge candidates
//    (adjacent tracks face each other over the full channel length);
//  * `single_contact_terminals` decides which transistor terminals can be
//    killed by a single contact-open defect (the paper's "transistor stuck
//    open" fault class); every other junction gets redundant double
//    contacts/vias;
//  * drain/source diffusions face each other across every gate, producing
//    the paper's "n_ds_short" bridge class.

#pragma once

#include "layout/layout.h"
#include "netlist/netlist.h"

#include <string>
#include <vector>

namespace catlift::layout {

struct CellgenOptions {
    Technology tech = Technology::single_poly_double_metal();

    /// Supply net names (get metal1 rails + their own channel tracks).
    std::string vdd_net = "1";
    std::string gnd_net = "0";

    /// Routed-net order, bottom track first.  Nets not listed are appended
    /// in name order.  Adjacent entries become the strongest bridge pairs.
    std::vector<std::string> track_order;

    /// Terminals drawn with a single (non-redundant) contact, tagged
    /// "Mname:d" / "Mname:g" / "Mname:s".  Everything else gets two.
    std::vector<std::string> single_contact_terminals;
};

/// Generate the layout for a circuit of MOSFETs and capacitors (sources are
/// ignored; they live off-chip).  Throws catlift::Error on unsupported
/// content.
Layout generate_cell_layout(const netlist::Circuit& ckt,
                            const CellgenOptions& opt = {});

/// The canonical options used for the paper's VCO reproduction: track order
/// placing the paper's exemplar bridge pairs adjacent (5-6, 1-3, 9-0) and
/// seven single-contact terminals (the seven stuck-open faults of ch. VI).
CellgenOptions vco_cellgen_options();

} // namespace catlift::layout
