#include "layout/layout.h"

#include "geom/region.h"

#include <fstream>
#include <sstream>

namespace catlift::layout {

Shape& Layout::add(Layer layer, const geom::Rect& r, std::string owner) {
    require(!r.empty(), "Layout::add: degenerate rectangle on " +
                            std::string(layer_name(layer)));
    shapes.push_back(Shape{layer, r, std::move(owner)});
    return shapes.back();
}

void Layout::add_label(Layer layer, geom::Point at, std::string text) {
    require(!text.empty(), "Layout::add_label: empty label text");
    labels.push_back(Label{layer, at, std::move(text)});
}

std::vector<std::size_t> Layout::on_layer(Layer l) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < shapes.size(); ++i)
        if (shapes[i].layer == l) out.push_back(i);
    return out;
}

geom::Rect Layout::bbox() const {
    if (shapes.empty()) return {};
    geom::Rect b = shapes.front().rect;
    for (const Shape& s : shapes) b = b.united(s.rect);
    return b;
}

double Layout::layer_area(Layer l) const {
    geom::Region reg;
    for (const Shape& s : shapes)
        if (s.layer == l) reg.add(s.rect);
    return reg.union_area();
}

void write_layout(std::ostream& os, const Layout& lo) {
    os << "layout " << (lo.name.empty() ? "unnamed" : lo.name) << "\n";
    os << "units nm\n";
    for (const Shape& s : lo.shapes) {
        os << "rect " << layer_name(s.layer) << ' ' << s.rect.lo.x << ' '
           << s.rect.lo.y << ' ' << s.rect.hi.x << ' ' << s.rect.hi.y;
        if (!s.owner.empty()) os << ' ' << s.owner;
        os << "\n";
    }
    for (const Label& l : lo.labels) {
        os << "label " << layer_name(l.layer) << ' ' << l.at.x << ' '
           << l.at.y << ' ' << l.text << "\n";
    }
    os << "end\n";
}

std::string write_layout(const Layout& lo) {
    std::ostringstream os;
    write_layout(os, lo);
    return os.str();
}

Layout read_layout(std::istream& is) {
    Layout lo;
    std::string line;
    int line_no = 0;
    bool saw_header = false, saw_end = false;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        auto fail = [&](const std::string& msg) {
            throw Error("layout parse error (line " + std::to_string(line_no) +
                        "): " + msg);
        };
        if (kw == "layout") {
            ls >> lo.name;
            saw_header = true;
        } else if (kw == "units") {
            std::string u;
            ls >> u;
            if (u != "nm") fail("only nm units supported, got " + u);
        } else if (kw == "rect") {
            std::string lname, owner;
            geom::Coord x0, y0, x1, y1;
            if (!(ls >> lname >> x0 >> y0 >> x1 >> y1))
                fail("rect needs layer + 4 coordinates");
            ls >> owner;  // optional
            lo.add(layer_from_name(lname), geom::Rect(x0, y0, x1, y1), owner);
        } else if (kw == "label") {
            std::string lname, text;
            geom::Coord x, y;
            if (!(ls >> lname >> x >> y >> text))
                fail("label needs layer, point and text");
            lo.add_label(layer_from_name(lname), geom::Point{x, y}, text);
        } else if (kw == "end") {
            saw_end = true;
            break;
        } else {
            fail("unknown keyword " + kw);
        }
    }
    require(saw_header, "layout stream missing 'layout' header");
    require(saw_end, "layout stream missing 'end'");
    return lo;
}

Layout read_layout_text(const std::string& text) {
    std::istringstream is(text);
    return read_layout(is);
}

void write_layout_file(const std::string& path, const Layout& lo) {
    std::ofstream f(path);
    require(f.good(), "cannot open for write: " + path);
    write_layout(f, lo);
    require(f.good(), "write failed: " + path);
}

Layout read_layout_file(const std::string& path) {
    std::ifstream f(path);
    require(f.good(), "cannot open layout file: " + path);
    return read_layout(f);
}

} // namespace catlift::layout
