#include "layout/revise.h"

#include <algorithm>

namespace catlift::layout {

using geom::Coord;
using geom::Rect;

namespace {

/// Vertical centre distance of the stacked redundant-contact pair emitted
/// by cellgen (emit_contacts): the second cut sits 8 um above the first.
constexpr Coord kContactStackOffset = 8 * 1000;

std::vector<std::size_t> shapes_with(const Layout& lo, Layer layer,
                                     const std::string& owner) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < lo.shapes.size(); ++i)
        if (lo.shapes[i].layer == layer && lo.shapes[i].owner == owner)
            out.push_back(i);
    return out;
}

} // namespace

Layout revise_layout(const Layout& lo, const RevisionSpec& spec) {
    Layout out = lo;

    for (const auto& [net, delta] : spec.widen_tracks) {
        require(delta > 0, "revise: widen delta must be positive (net " +
                               net + ")");
        const auto ids = shapes_with(out, Layer::Metal2, "route:" + net);
        require(!ids.empty(), "revise: no routing track for net " + net);
        for (std::size_t i : ids) out.shapes[i].rect.hi.y += delta;
    }

    for (const auto& [owner, dx] : spec.shift_contacts) {
        const auto ids = shapes_with(out, Layer::Contact, owner);
        require(!ids.empty(), "revise: no contacts for terminal " + owner);
        for (std::size_t i : ids) {
            out.shapes[i].rect.lo.x += dx;
            out.shapes[i].rect.hi.x += dx;
        }
    }

    for (const std::string& owner : spec.make_redundant) {
        const auto ids = shapes_with(out, Layer::Contact, owner);
        require(ids.size() == 1,
                "revise: make_redundant needs exactly one contact for " +
                    owner);
        Rect second = out.shapes[ids[0]].rect;
        second.lo.y += kContactStackOffset;
        second.hi.y += kContactStackOffset;
        out.add(Layer::Contact, second, owner);
    }

    for (const std::string& owner : spec.make_single) {
        auto ids = shapes_with(out, Layer::Contact, owner);
        require(ids.size() >= 2,
                "revise: make_single needs a redundant contact pair for " +
                    owner);
        // Keep the lowest cut (the one inside every pad variant), drop the
        // rest back to front so indices stay valid.
        std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
            return out.shapes[a].rect.lo.y < out.shapes[b].rect.lo.y;
        });
        std::sort(ids.begin() + 1, ids.end(), std::greater<>());
        for (std::size_t k = 1; k < ids.size(); ++k)
            out.shapes.erase(out.shapes.begin() +
                             static_cast<std::ptrdiff_t>(ids[k]));
    }

    return out;
}

RevisionSpec vco_revision_spec() {
    RevisionSpec spec;
    // Widen the charge-rail track: its spacing to the neighbouring track
    // above (net "7") shrinks 7 um -> 5 um, so the 5-7 bridge probability
    // and net 5's own open probabilities move well beyond the 5% diff
    // tolerance, while the 5-6 pair below is untouched.
    spec.widen_tracks = {{"5", 2000}};
    // Slide M7's single drain contact sideways inside its landing pad: a
    // pure carried-class edit (cluster size and all span projections along
    // the vertical routing axes are unchanged).
    spec.shift_contacts = {{"M7:d", 300}};
    // M11's gate gains a second cut (its stuck-open drops below the keep
    // threshold -> removed); M13's gate pair is stripped to one cut (a new
    // stuck-open enters the list -> added; a poly contact, whose defect
    // density keeps a single-cut kill above the threshold -- diffusion
    // contacts would fall below it).
    spec.make_redundant = {"M11:g"};
    spec.make_single = {"M13:g"};
    return spec;
}

} // namespace catlift::layout
