// catlift/layout/tech.h
//
// Process description for the single-poly double-metal CMOS technology the
// paper's VCO was fabricated in: the layer stack, lambda design rules, and
// the inter-layer connectivity (which cut layer stitches which conductors).

#pragma once

#include "geom/base.h"

#include <array>
#include <string>
#include <vector>

namespace catlift::layout {

/// Mask layers.  NDiff/PDiff are the post-implant active areas; CapMark is
/// a recognition layer for the (poly-insulator-metal1) capacitor module.
enum class Layer : std::uint8_t {
    NWell = 0,
    NDiff,
    PDiff,
    Poly,
    Contact,  ///< metal1 <-> poly or diffusion
    Metal1,
    Via,      ///< metal1 <-> metal2
    Metal2,
    CapMark,
};

inline constexpr std::size_t kLayerCount = 9;

const char* layer_name(Layer l);

/// Parse a layer name; throws on unknown names.
Layer layer_from_name(const std::string& name);

/// True for layers that carry signal current (participate in connectivity
/// and in the short/open defect mechanisms).
bool is_conducting(Layer l);

/// True for cut layers (Contact, Via).
bool is_cut(Layer l);

/// Width/spacing design rule for one layer (database units, nm).
struct LayerRule {
    geom::Coord min_width = 0;
    geom::Coord min_spacing = 0;
};

/// Technology = layer rules + derived electrical constants.
class Technology {
public:
    std::string name;
    geom::Coord lambda = 1000;  ///< 1 um in nm

    /// Capacitance of the CapMark capacitor module [F/m^2].
    double cap_per_area = 1e-3;  // 1 fF/um^2

    const LayerRule& rule(Layer l) const {
        return rules_[static_cast<std::size_t>(l)];
    }
    LayerRule& rule(Layer l) { return rules_[static_cast<std::size_t>(l)]; }

    /// The paper's process: single poly, double metal, lambda = 1 um.
    static Technology single_poly_double_metal();

private:
    std::array<LayerRule, kLayerCount> rules_{};
};

} // namespace catlift::layout
