// catlift/layout/drc.h
//
// Minimal design-rule checker: per-layer minimum width and minimum spacing.
// Geometrical design rules "are determined in such a way that in the target
// process line acceptable yields are obtained" (paper, ch. IV) -- the defect
// statistics of Tab. 1 presuppose a rule-clean layout, so the generator's
// output is DRC-checked in the test suite before LIFT consumes it.

#pragma once

#include "layout/layout.h"

#include <string>
#include <vector>

namespace catlift::layout {

struct DrcViolation {
    enum class Kind { Width, Spacing } kind;
    Layer layer;
    std::size_t shape_a;  ///< index into Layout::shapes
    std::size_t shape_b;  ///< second shape for spacing (== shape_a for width)
    geom::Coord actual;
    geom::Coord required;
    std::string describe() const;
};

struct DrcOptions {
    /// Spacing checks ignore pairs that touch (they merge into one region);
    /// same-owner shapes may sit arbitrarily close (e.g. contact pairs), so
    /// owners listed here are exempted from mutual spacing.
    bool exempt_same_owner = true;
};

/// Run width + spacing checks on all layers.
std::vector<DrcViolation> run_drc(const Layout& lo, const Technology& tech,
                                  const DrcOptions& opt = {});

} // namespace catlift::layout
