#include "layout/cellgen.h"

#include <algorithm>
#include <map>
#include <set>

namespace catlift::layout {

using geom::Coord;
using geom::Rect;
using netlist::Circuit;
using netlist::Device;
using netlist::DeviceKind;

namespace {

constexpr Coord U = 1000;  // 1 um in nm

/// Geometry constants of the cell template (all in nm).
struct Template {
    Coord col_pitch = 33 * U;     // device column pitch
    Coord lane_s = 2 * U;         // source stub centre (from column origin)
    Coord lane_g = 13 * U;        // gate stub centre
    Coord lane_d = 24 * U;        // drain stub centre
    // The PMOS row is shifted half a lane pitch so its channel-crossing
    // stubs interleave with the NMOS ones at 5.5 um centre distance
    // (landing 2 + stub 1.5 + spacing 2).
    Coord pmos_xoff = 16500;
    Coord stub_half = 1500;       // metal1 stub half-width (3 um wide)
    Coord hammer_half = 2 * U;    // via landing half-width (4 um wide)
    Coord track_pitch = 10 * U;   // metal2 track pitch
    Coord track_width = 3 * U;
    Coord rail_width = 4 * U;
    Coord margin = 12 * U;        // left margin before first column
};

struct GenState {
    const Circuit* ckt;
    const CellgenOptions* opt;
    Template t;
    Layout out;

    std::map<std::string, int> track_of;  // net -> track index
    Coord ch_base = 0;                    // channel bottom y
    Coord nmos_base = 0;                  // NMOS island base y
    Coord pmos_base = 0;                  // PMOS island base y
    Coord gnd_rail_y = 0;                 // rail bottom
    Coord vdd_rail_y = 0;
    Coord x_left = 0, x_right = 0;        // rail extent

    Coord track_y(int i) const {
        return ch_base + static_cast<Coord>(i) * t.track_pitch;
    }
    /// Junction x-positions already emitted per track (same net): close
    /// junctions are bridged so their landings merge into one region.
    std::map<int, std::vector<Coord>> junctions;
    bool single_contact(const std::string& dev, char term) const {
        const std::string tag = dev + ":" + term;
        return std::find(opt->single_contact_terminals.begin(),
                         opt->single_contact_terminals.end(),
                         tag) != opt->single_contact_terminals.end();
    }
};

/// Emit 1 or 2 contact cuts (2x2 um) centred on x `cx`, starting at y `y0`,
/// stacked vertically with 2 um spacing.
void emit_contacts(GenState& g, Coord cx, Coord y0, bool redundant,
                   const std::string& owner) {
    g.out.add(Layer::Contact, Rect(cx - U, y0, cx + U, y0 + 2 * U), owner);
    if (redundant)
        g.out.add(Layer::Contact, Rect(cx - U, y0 + 8 * U, cx + U, y0 + 10 * U),
                  owner);
}

/// Emit the via pair (or single via) plus landing pads connecting a metal1
/// stub at centre `cx` to the metal2 track `ti`.  Redundant junctions use
/// two vias stacked vertically inside a widened track junction -- so a
/// single spot defect must span the whole 2-via cluster to open the net.
void emit_track_via(GenState& g, Coord cx, int ti, bool redundant,
                    const std::string& owner) {
    const Coord ty = g.track_y(ti);
    const Coord hh = g.t.hammer_half;
    // Junctions on one track belong to one net; when two land closer than
    // the landing + spacing rules allow, bridge them so the regions merge.
    for (Coord x_prev : g.junctions[ti]) {
        const Coord dx = std::abs(x_prev - cx);
        if (dx == 0 || dx >= 8 * U) continue;
        const Coord b0 = std::min(x_prev, cx);
        const Coord b1 = std::max(x_prev, cx);
        g.out.add(Layer::Metal1, Rect(b0, ty - 2500, b1, ty + 5500), owner);
        g.out.add(Layer::Metal2, Rect(b0, ty - 2 * U, b1, ty + 5 * U), owner);
    }
    g.junctions[ti].push_back(cx);
    if (redundant) {
        // Metal1 landing spanning both vias.
        g.out.add(Layer::Metal1,
                  Rect(cx - hh, ty - 2500, cx + hh, ty + 5500), owner);
        // Widened metal2 junction on the track.
        g.out.add(Layer::Metal2, Rect(cx - hh, ty - 2 * U, cx + hh, ty + 5 * U),
                  owner);
        g.out.add(Layer::Via, Rect(cx - U, ty - 1500, cx + U, ty + 500),
                  owner);
        g.out.add(Layer::Via, Rect(cx - U, ty + 2500, cx + U, ty + 4500),
                  owner);
    } else {
        g.out.add(Layer::Metal1,
                  Rect(cx - hh, ty - 500, cx + hh, ty + g.t.track_width + 500),
                  owner);
        g.out.add(Layer::Via,
                  Rect(cx - U, ty + 500, cx + U, ty + 2500), owner);
    }
}

/// Route one terminal (metal1 stub from pad y-range to its net).
/// `pad_lo..pad_hi` is the y extent of the terminal's metal1 pad.
/// Returns nothing; emits the stub (+ via) shapes.
void route_terminal(GenState& g, const std::string& net, Coord cx,
                    Coord pad_lo, Coord pad_hi, bool from_nmos_row,
                    const std::string& owner) {
    const Coord sh = g.t.stub_half;
    if (from_nmos_row && net == g.opt->gnd_net) {
        // Straight drop onto the GND rail below.
        g.out.add(Layer::Metal1,
                  Rect(cx - sh, g.gnd_rail_y + U, cx + sh, pad_hi), owner);
        return;
    }
    if (!from_nmos_row && net == g.opt->vdd_net) {
        // Straight rise onto the VDD rail above.
        g.out.add(Layer::Metal1,
                  Rect(cx - sh, pad_lo, cx + sh, g.vdd_rail_y + 3 * U), owner);
        return;
    }
    auto it = g.track_of.find(net);
    require(it != g.track_of.end(), "cellgen: no track for net " + net);
    const int ti = it->second;
    const Coord ty = g.track_y(ti);
    if (from_nmos_row) {
        // Stub upward into the channel, across its track.
        g.out.add(Layer::Metal1,
                  Rect(cx - sh, pad_lo, cx + sh, ty + g.t.track_width + 500),
                  owner);
    } else {
        // Stub downward from the PMOS row.
        g.out.add(Layer::Metal1,
                  Rect(cx - sh, ty - 500, cx + sh, pad_hi), owner);
    }
    emit_track_via(g, cx, ti, /*redundant=*/true, owner);
}

/// Emit one transistor column.  `x0` is the column origin; `base` the
/// island base y; NMOS islands grow upward with the gate pad above, PMOS
/// likewise upward with the gate pad below.
void emit_mosfet(GenState& g, const Device& d, Coord x0, bool is_nmos) {
    const Layer diff = is_nmos ? Layer::NDiff : Layer::PDiff;
    const Coord base = is_nmos ? g.nmos_base : g.pmos_base;
    const Coord W = static_cast<Coord>(d.w * 1e9 + 0.5);  // m -> nm
    const Coord Lg = static_cast<Coord>(d.l * 1e9 + 0.5);
    require(Lg == 2 * U, "cellgen: template supports L=2um only, got " +
                             d.name);
    const Coord pad_h = std::max<Coord>(W, 12 * U);

    // Diffusion: source | channel | drain (source on the left).  The gate
    // strip is centred on the gate lane; contacts sit on the s/d lanes.
    const Coord xs0 = x0, xs1 = x0 + g.t.lane_g - U;
    const Coord xc0 = xs1, xc1 = xc0 + Lg;
    const Coord xd0 = xc1, xd1 = x0 + g.t.lane_d + 2 * U;
    g.out.add(diff, Rect(xs0, base, xs1, base + pad_h), d.name + ":s");
    g.out.add(diff, Rect(xc0, base, xc1, base + W), d.name + ":chan");
    g.out.add(diff, Rect(xd0, base, xd1, base + pad_h), d.name + ":d");

    // Poly gate strip with 2 um overhang beyond the channel, reaching the
    // gate pad (above the island for NMOS, below for PMOS).
    const Coord gp_y = is_nmos ? base + pad_h + 2 * U : base - 14 * U;
    const Coord poly_lo = is_nmos ? base - 2 * U : gp_y;
    // The strip spans the full pad height on both rows so the source/drain
    // spacing across the gate is poly-covered everywhere (narrow devices
    // have pads taller than their channel).
    const Coord poly_hi = is_nmos ? gp_y + 12 * U : base + pad_h + 2 * U;
    g.out.add(Layer::Poly, Rect(xc0, poly_lo, xc1, poly_hi), d.name + ":g");
    // Gate pad (poly, 4 um wide, 8 um tall for the stacked contact pair).
    const Coord gcx = x0 + g.t.lane_g;
    g.out.add(Layer::Poly, Rect(gcx - 2 * U, gp_y, gcx + 2 * U, gp_y + 12 * U),
              d.name + ":g");

    // Terminal contacts (source/drain into diffusion, gate into poly pad).
    const Coord scx = x0 + g.t.lane_s;
    const Coord dcx = x0 + g.t.lane_d;
    emit_contacts(g, scx, base + U, !g.single_contact(d.name, 's'),
                  d.name + ":s");
    emit_contacts(g, dcx, base + U, !g.single_contact(d.name, 'd'),
                  d.name + ":d");
    emit_contacts(g, gcx, gp_y + U, !g.single_contact(d.name, 'g'),
                  d.name + ":g");

    // Metal1 terminal pads over the contacts.
    const Coord sh = g.t.stub_half;
    g.out.add(Layer::Metal1,
              Rect(scx - sh, base + 500, scx + sh, base + 11500), d.name + ":s");
    g.out.add(Layer::Metal1,
              Rect(dcx - sh, base + 500, dcx + sh, base + 11500), d.name + ":d");
    g.out.add(Layer::Metal1,
              Rect(gcx - sh, gp_y + 500, gcx + sh, gp_y + 11500), d.name + ":g");

    // Route the three terminals to their nets.  Diode-connected devices
    // (the designed gate-drain shorts of the paper's VCO) are wired with a
    // local metal1 strap from the drain pad to the gate pad, and only the
    // gate is taken to the routing track -- the idiom real layouts use, and
    // it keeps the track junctions of one column on distinct tracks.
    const bool diode =
        d.nodes[Device::kDrain] == d.nodes[Device::kGate];
    route_terminal(g, d.nodes[Device::kSource], scx, base + 500, base + 11500,
                   is_nmos, d.name + ":s");
    if (diode) {
        const Coord y0 = std::min(base + 500, gp_y + 500);
        const Coord y1 = std::max(base + 11500, gp_y + 11500);
        // Vertical limb on the drain lane, horizontal limb at gate-pad level.
        g.out.add(Layer::Metal1, Rect(dcx - sh, y0, dcx + sh, y1),
                  d.name + ":d");
        g.out.add(Layer::Metal1, Rect(gcx - sh, gp_y + 4500, dcx + sh,
                                      gp_y + 7500),
                  d.name + ":d");
    } else {
        route_terminal(g, d.nodes[Device::kDrain], dcx, base + 500,
                       base + 11500, is_nmos, d.name + ":d");
    }
    route_terminal(g, d.nodes[Device::kGate], gcx, gp_y + 500, gp_y + 11500,
                   is_nmos, d.name + ":g");
}

/// Emit the capacitor module: poly bottom plate (net n1), metal1 top plate
/// (net n2, dropped to the GND rail or routed), CapMark recognition box.
void emit_capacitor(GenState& g, const Device& d, Coord x0) {
    // Plate overlap sized for the value: C = A * cap_per_area.
    const double area_m2 = d.value / g.opt->tech.cap_per_area;  // m^2
    const double area_um2 = area_m2 * 1e12;
    const Coord w = 50 * U;
    const Coord h = static_cast<Coord>(area_um2 / 50.0 * U + 0.5);
    require(h > 0 && h < 200 * U, "cellgen: capacitor too large: " + d.name);
    const Coord base = g.nmos_base;

    // Bottom plate (poly) with a tab sticking out on the left for contacts.
    g.out.add(Layer::Poly, Rect(x0 - 6 * U, base, x0 + w, base + h),
              d.name + ":bot");
    // Top plate (metal1) exactly over the marker region.
    g.out.add(Layer::Metal1, Rect(x0, base, x0 + w, base + h), d.name + ":top");
    // Recognition box == plate overlap.
    g.out.add(Layer::CapMark, Rect(x0, base, x0 + w, base + h), d.name);

    // Bottom-plate contacts on the tab + stub to the net track.
    const Coord bcx = x0 - 4 * U;
    emit_contacts(g, bcx, base + U, /*redundant=*/true, d.name + ":bot");
    g.out.add(Layer::Metal1,
              Rect(bcx - g.t.stub_half, base + 500, bcx + g.t.stub_half,
                   base + 11500),
              d.name + ":bot");
    route_terminal(g, d.nodes[0], bcx, base + 500, base + 11500,
                   /*from_nmos_row=*/true, d.name + ":bot");

    // Top plate: drop to the GND rail (net n2 must be gnd in this template)
    // or route through a stub on the right edge of the plate.
    const Coord tcx = x0 + w - 2 * U;
    route_terminal(g, d.nodes[1], tcx, base, base + h,
                   /*from_nmos_row=*/true, d.name + ":top");
}

} // namespace

Layout generate_cell_layout(const Circuit& ckt, const CellgenOptions& opt) {
    GenState g;
    g.ckt = &ckt;
    g.opt = &opt;
    g.out.name = ckt.title.empty() ? "cell" : ckt.title;

    // Partition devices.
    std::vector<const Device*> nmos, pmos, caps;
    for (const Device& d : ckt.devices) {
        switch (d.kind) {
            case DeviceKind::Mosfet:
                (ckt.model_of(d).is_nmos ? nmos : pmos).push_back(&d);
                break;
            case DeviceKind::Capacitor: caps.push_back(&d); break;
            case DeviceKind::VSource:
            case DeviceKind::ISource:
                break;  // off-chip
            case DeviceKind::Resistor:
                throw Error("cellgen: resistors unsupported in this template");
        }
    }
    require(!nmos.empty() || !pmos.empty(), "cellgen: no transistors");

    // Routed nets: every net except pure rail connections, but the supplies
    // always get a track (opposite-row terminals need them).
    std::set<std::string> nets;
    for (const Device* d : nmos)
        for (int t : {Device::kDrain, Device::kGate, Device::kSource})
            nets.insert(d->nodes[static_cast<std::size_t>(t)]);
    for (const Device* d : pmos)
        for (int t : {Device::kDrain, Device::kGate, Device::kSource})
            nets.insert(d->nodes[static_cast<std::size_t>(t)]);
    for (const Device* d : caps) {
        nets.insert(d->nodes[0]);
        nets.insert(d->nodes[1]);
    }
    nets.insert(opt.vdd_net);
    nets.insert(opt.gnd_net);

    // Track assignment: user-specified order first, remainder sorted.
    int next = 0;
    for (const std::string& n : opt.track_order) {
        if (nets.count(n) && !g.track_of.count(n)) g.track_of[n] = next++;
    }
    for (const std::string& n : nets)
        if (!g.track_of.count(n)) g.track_of[n] = next++;
    const int n_tracks = next;

    // Vertical floorplan.
    auto tallest = [](const std::vector<const Device*>& v) {
        Coord m = 12 * U;
        for (const Device* d : v)
            m = std::max(m, static_cast<Coord>(d->w * 1e9 + 0.5));
        return m;
    };
    const Coord nmos_h = tallest(nmos);
    g.gnd_rail_y = -14 * U;
    g.nmos_base = 0;
    // NMOS tops: island pad_h + gate pad (2+8) above.
    g.ch_base = std::max<Coord>(nmos_h, 12 * U) + 16 * U + 8 * U;
    const Coord ch_top =
        g.ch_base + static_cast<Coord>(n_tracks) * g.t.track_pitch;
    g.pmos_base = ch_top + 18 * U;  // room for the PMOS gate pads below
    const Coord pmos_h = tallest(pmos);
    g.vdd_rail_y = g.pmos_base + std::max<Coord>(pmos_h, 12 * U) + 16 * U;

    // Horizontal extents.
    const std::size_t ncols = std::max(nmos.size(), pmos.size());
    g.x_left = -g.t.margin;
    Coord x_cap = static_cast<Coord>(ncols) * g.t.col_pitch + 22 * U;
    Coord x_end = x_cap;
    for (std::size_t i = 0; i < caps.size(); ++i) x_end += 70 * U;
    g.x_right = x_end + 6 * U;

    // Rails.
    g.out.add(Layer::Metal1,
              Rect(g.x_left, g.gnd_rail_y, g.x_right,
                   g.gnd_rail_y + g.t.rail_width),
              "rail:" + opt.gnd_net);
    g.out.add(Layer::Metal1,
              Rect(g.x_left, g.vdd_rail_y, g.x_right,
                   g.vdd_rail_y + g.t.rail_width),
              "rail:" + opt.vdd_net);
    // N-well blanket under the PMOS row.
    g.out.add(Layer::NWell,
              Rect(g.x_left, g.pmos_base - 12 * U, g.x_right,
                   g.vdd_rail_y + 6 * U),
              "well");

    // Tracks.
    for (const auto& [net, ti] : g.track_of) {
        const Coord ty = g.track_y(ti);
        g.out.add(Layer::Metal2, Rect(g.x_left + 2 * U, ty, x_end - 2 * U,
                                      ty + g.t.track_width),
                  "route:" + net);
        g.out.add_label(Layer::Metal2,
                        geom::Point{g.x_left + 3 * U, ty + g.t.track_width / 2},
                        net);
    }
    // Rail labels + rail-to-track links at the left edge.
    g.out.add_label(Layer::Metal1,
                    geom::Point{g.x_left + U, g.gnd_rail_y + 2 * U},
                    opt.gnd_net);
    g.out.add_label(Layer::Metal1,
                    geom::Point{g.x_left + U, g.vdd_rail_y + 2 * U},
                    opt.vdd_net);
    {
        // GND rail up to the gnd track.
        const Coord cx = g.x_left + 6 * U;
        const int ti = g.track_of.at(opt.gnd_net);
        g.out.add(Layer::Metal1,
                  Rect(cx - g.t.stub_half, g.gnd_rail_y + U,
                       cx + g.t.stub_half, g.track_y(ti) + 3 * U + 500),
                  "link:" + opt.gnd_net);
        emit_track_via(g, cx, ti, true, "link:" + opt.gnd_net);
    }
    {
        // VDD rail down to the vdd track, on the right edge past the
        // capacitor module (clear of every device column).
        const Coord cxv = x_end - 8 * U;
        const int ti = g.track_of.at(opt.vdd_net);
        g.out.add(Layer::Metal1,
                  Rect(cxv - g.t.stub_half, g.track_y(ti) - 500,
                       cxv + g.t.stub_half, g.vdd_rail_y + 3 * U),
                  "link:" + opt.vdd_net);
        emit_track_via(g, cxv, ti, true, "link:" + opt.vdd_net);
    }

    // Device columns (PMOS row half-pitch shifted; see Template::pmos_xoff).
    for (std::size_t i = 0; i < nmos.size(); ++i)
        emit_mosfet(g, *nmos[i], static_cast<Coord>(i) * g.t.col_pitch, true);
    for (std::size_t i = 0; i < pmos.size(); ++i)
        emit_mosfet(g, *pmos[i],
                    static_cast<Coord>(i) * g.t.col_pitch + g.t.pmos_xoff,
                    false);

    // Capacitors on the right.
    Coord xc = x_cap;
    for (const Device* d : caps) {
        emit_capacitor(g, *d, xc);
        xc += 70 * U;
    }

    return g.out;
}

CellgenOptions vco_cellgen_options() {
    CellgenOptions opt;
    // Track order tuned twice over: (a) the paper's exemplar bridge pairs
    // face each other -- 0|9 (output-stage kill), 6|5 (the #6-class bridge
    // between cap node and charge rail), 1|3 (the #339-class mirror-bias
    // kill); (b) nets used only by the NMOS row sit on low tracks and
    // PMOS-only nets on high tracks, which keeps the channel-crossing
    // stubs short (as a human router would).
    opt.track_order = {"0", "9", "15", "4", "2",  "8",  "1", "3",
                       "6", "5", "7",  "12", "10", "11", "14"};
    // Seven single-contact terminals -> the seven transistor stuck-open
    // faults of section VI.
    opt.single_contact_terminals = {"M7:d",  "M8:s",  "M10:d", "M11:g",
                                    "M14:g", "M17:g", "M22:d"};
    return opt;
}

} // namespace catlift::layout
