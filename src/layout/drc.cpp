#include "layout/drc.h"

#include "geom/region.h"
#include "geom/spatial_index.h"

#include <algorithm>
#include <optional>
#include <sstream>

namespace catlift::layout {

std::string DrcViolation::describe() const {
    std::ostringstream os;
    os << layer_name(layer) << ' '
       << (kind == Kind::Width ? "width" : "spacing") << ' '
       << geom::to_um(actual) << "um < " << geom::to_um(required) << "um"
       << " (shape " << shape_a;
    if (shape_b != shape_a) os << " vs " << shape_b;
    os << ')';
    return os.str();
}

std::vector<DrcViolation> run_drc(const Layout& lo, const Technology& tech,
                                  const DrcOptions& opt) {
    std::vector<DrcViolation> out;

    for (std::size_t li = 0; li < kLayerCount; ++li) {
        const Layer layer = static_cast<Layer>(li);
        const LayerRule& rule = tech.rule(layer);
        if (rule.min_width == 0 && rule.min_spacing == 0) continue;
        const auto ids = lo.on_layer(layer);
        if (ids.empty()) continue;

        // Width: the short side of each drawn rect.
        if (rule.min_width > 0) {
            for (std::size_t id : ids) {
                const geom::Rect& r = lo.shapes[id].rect;
                const geom::Coord w = std::min(r.width(), r.height());
                if (w < rule.min_width)
                    out.push_back({DrcViolation::Kind::Width, layer, id, id, w,
                                   rule.min_width});
            }
        }

        // Spacing: non-touching pairs closer than the rule.
        if (rule.min_spacing > 0) {
            // The axis-aligned shadow gap between two facing rects, or
            // nullopt for purely diagonal pairs.
            auto gap_between = [](const geom::Rect& a, const geom::Rect& b)
                -> std::optional<geom::Rect> {
                if (a.hi.x <= b.lo.x || b.hi.x <= a.lo.x) {
                    const geom::Coord x0 = std::min(a.hi.x, b.hi.x);
                    const geom::Coord x1 = std::max(a.lo.x, b.lo.x);
                    const geom::Coord y0 = std::max(a.lo.y, b.lo.y);
                    const geom::Coord y1 = std::min(a.hi.y, b.hi.y);
                    if (y1 <= y0) return std::nullopt;  // diagonal
                    return geom::Rect(x0, y0, x1, y1);
                }
                const geom::Coord y0 = std::min(a.hi.y, b.hi.y);
                const geom::Coord y1 = std::max(a.lo.y, b.lo.y);
                const geom::Coord x0 = std::max(a.lo.x, b.lo.x);
                const geom::Coord x1 = std::min(a.hi.x, b.hi.x);
                if (x1 <= x0) return std::nullopt;
                return geom::Rect(x0, y0, x1, y1);
            };
            // A close pair is legal when the space between the shapes is
            // not actually empty: covered by other shapes of the same layer
            // (merged region, e.g. a bridging strap), or -- for diffusion --
            // covered by poly (the transistor gate sets that spacing).
            const bool is_diff =
                layer == Layer::NDiff || layer == Layer::PDiff;
            auto gap_is_filled = [&](const geom::Rect& a, const geom::Rect& b,
                                     std::size_t ia, std::size_t ib) {
                const auto gap = gap_between(a, b);
                if (!gap) return false;
                geom::Region cover;
                for (std::size_t k = 0; k < lo.shapes.size(); ++k) {
                    const Shape& s = lo.shapes[k];
                    const bool same_layer = s.layer == layer && k != ia &&
                                            k != ib;
                    const bool gate_cover = is_diff && s.layer == Layer::Poly;
                    if (!same_layer && !gate_cover) continue;
                    if (auto ov = geom::intersection(s.rect, *gap))
                        cover.add(*ov);
                }
                return cover.union_area() >= gap->area() - 0.5;
            };

            geom::SpatialIndex idx(
                std::max<geom::Coord>(rule.min_spacing * 4, 1000));
            for (std::size_t id : ids) idx.insert(id, lo.shapes[id].rect);
            for (std::size_t id : ids) {
                const Shape& a = lo.shapes[id];
                for (std::size_t jd :
                     idx.neighbours(a.rect, rule.min_spacing)) {
                    if (jd <= id) continue;  // each pair once
                    const Shape& b = lo.shapes[jd];
                    if (a.rect.touches(b.rect)) continue;  // merged region
                    if (opt.exempt_same_owner && !a.owner.empty() &&
                        a.owner == b.owner)
                        continue;
                    const geom::Coord sep = geom::separation(a.rect, b.rect);
                    if (sep >= rule.min_spacing) continue;
                    if (gap_is_filled(a.rect, b.rect, id, jd)) continue;
                    out.push_back({DrcViolation::Kind::Spacing, layer, id, jd,
                                   sep, rule.min_spacing});
                }
            }
        }
    }
    return out;
}

} // namespace catlift::layout
