#include "anafault/stimulus.h"

#include <algorithm>

namespace catlift::anafault {

using netlist::Circuit;
using netlist::SourceSpec;
using netlist::TranSpec;

RefinementResult refine_stimulus(const Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const std::vector<StimulusCandidate>& cands,
                                 const CampaignOptions& opt) {
    require(!cands.empty(), "refine_stimulus: no candidates");
    RefinementResult res;

    for (const StimulusCandidate& cand : cands) {
        Circuit variant = ckt;
        variant.device(cand.source).source = cand.spec;
        variant.tran = cand.tran;

        CampaignOptions copt = opt;
        copt.tran = cand.tran;
        const CampaignResult cr = run_campaign(variant, faults, copt);

        RefinementEntry e;
        e.candidate = cand;
        e.coverage = cr.final_coverage();
        e.weighted_coverage = cr.weighted_coverage();
        e.last_detection = cr.time_of_last_detection().value_or(
            cand.tran.tstop);
        e.test_time = std::min(cand.tran.tstop,
                               e.last_detection + copt.detection.t_tol);
        res.entries.push_back(std::move(e));
    }

    res.best = 0;
    for (std::size_t i = 1; i < res.entries.size(); ++i) {
        const RefinementEntry& a = res.entries[res.best];
        const RefinementEntry& b = res.entries[i];
        const bool better =
            b.coverage > a.coverage + 1e-9 ||
            (std::abs(b.coverage - a.coverage) <= 1e-9 &&
             (b.test_time < a.test_time - 1e-12 ||
              (std::abs(b.test_time - a.test_time) <= 1e-12 &&
               b.candidate.tran.tstop < a.candidate.tran.tstop)));
        if (better) res.best = i;
    }
    return res;
}

std::vector<StimulusCandidate> vco_stimulus_candidates(
    const std::string& source) {
    std::vector<StimulusCandidate> out;
    for (double level : {2.2, 2.5, 3.0}) {
        StimulusCandidate c;
        c.name = "vctrl=" + std::to_string(level).substr(0, 3) + "V";
        c.source = source;
        c.spec = SourceSpec::make_dc(level);
        c.tran = TranSpec{1e-8, 4e-6, 0.0};
        out.push_back(std::move(c));
    }
    // Two-level step: both oscillation frequencies in one (shorter) test.
    {
        StimulusCandidate c;
        c.name = "step 2.5V->3.0V";
        c.source = source;
        c.spec.kind = SourceSpec::Kind::Pwl;
        c.spec.pwl = {{0.0, 2.5}, {1.5e-6, 2.5}, {1.6e-6, 3.0}, {3e-6, 3.0}};
        c.tran = TranSpec{1e-8, 3e-6, 0.0};
        out.push_back(std::move(c));
    }
    return out;
}

} // namespace catlift::anafault
