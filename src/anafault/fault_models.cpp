#include "anafault/fault_models.h"

#include <cmath>

namespace catlift::anafault {

using lift::Fault;
using lift::FaultKind;
using lift::TerminalRef;
using netlist::Circuit;
using netlist::Device;
using netlist::DeviceKind;
using netlist::SourceSpec;

const char* to_string(HardFaultModel m) {
    return m == HardFaultModel::Resistor ? "resistor" : "source";
}

void inject_short(Circuit& ckt, const std::string& net_a,
                  const std::string& net_b, const InjectionOptions& opt) {
    require(netlist::canon_node(net_a) != netlist::canon_node(net_b),
            "inject_short: nets are identical: " + net_a);
    const std::string name = ckt.fresh_device(kInjectPrefix);
    if (opt.model == HardFaultModel::Resistor) {
        ckt.add_resistor(name, net_a, net_b, opt.short_resistance);
    } else {
        // Ideal short: 0 V source (adds one MNA branch).
        ckt.add_vsource(name, net_a, net_b, SourceSpec::make_dc(0.0));
    }
}

namespace {

/// Tie `node_new` back to `node_old` through the open element.
void add_open_element(Circuit& ckt, const std::string& node_old,
                      const std::string& node_new,
                      const InjectionOptions& opt) {
    const std::string name = ckt.fresh_device(kInjectPrefix);
    if (opt.model == HardFaultModel::Resistor) {
        ckt.add_resistor(name, node_old, node_new, opt.open_resistance);
    } else {
        // Ideal open: 0 A source (keeps the node in the matrix without a
        // conductance path; gmin holds the floating side).
        ckt.add_isource(name, node_old, node_new, SourceSpec::make_dc(0.0));
    }
}

} // namespace

void inject_terminal_open(Circuit& ckt, const TerminalRef& t,
                          const InjectionOptions& opt) {
    Device& d = ckt.device(t.device);
    require(t.terminal >= 0 &&
                static_cast<std::size_t>(t.terminal) < d.nodes.size(),
            "inject_terminal_open: bad terminal on " + t.device);
    const std::string old_node = d.nodes[static_cast<std::size_t>(t.terminal)];
    const std::string new_node = ckt.fresh_node("flt");
    d.nodes[static_cast<std::size_t>(t.terminal)] = new_node;
    add_open_element(ckt, old_node, new_node, opt);
}

std::string inject_split(Circuit& ckt, const std::string& net,
                         const std::vector<TerminalRef>& group_b,
                         const InjectionOptions& opt) {
    require(!group_b.empty(), "inject_split: empty terminal group");
    const std::string node = netlist::canon_node(net);
    const std::string new_node = ckt.fresh_node("flt");
    std::vector<std::pair<std::string, int>> terms;
    for (const TerminalRef& t : group_b) {
        const Device& d = ckt.device(t.device);
        require(t.terminal >= 0 &&
                    static_cast<std::size_t>(t.terminal) < d.nodes.size(),
                "inject_split: bad terminal on " + t.device);
        require(d.nodes[static_cast<std::size_t>(t.terminal)] == node,
                "inject_split: terminal " + t.device + ":" +
                    std::to_string(t.terminal) + " is not on net " + net);
        terms.emplace_back(t.device, t.terminal);
    }
    ckt.rename_node_on(terms, new_node);
    add_open_element(ckt, node, new_node, opt);
    return new_node;
}

Circuit inject(const Circuit& ckt, const Fault& f,
               const InjectionOptions& opt) {
    Circuit out = ckt;
    switch (f.kind) {
        case FaultKind::LocalShort:
        case FaultKind::GlobalShort:
            inject_short(out, f.net_a, f.net_b, opt);
            break;
        case FaultKind::StuckOpen:
            inject_terminal_open(out, f.victim, opt);
            break;
        case FaultKind::LineOpen:
        case FaultKind::SplitNode:
            if (f.group_b.size() == 1)
                inject_terminal_open(out, f.group_b[0], opt);
            else
                inject_split(out, f.net, f.group_b, opt);
            break;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Parametric faults

std::string ParametricFault::describe() const {
    char buf[96];
    std::snprintf(buf, sizeof buf, "PAR %s.%s x%.3g", device.c_str(),
                  param.c_str(), factor);
    return buf;
}

Circuit inject_parametric(const Circuit& ckt, const ParametricFault& f) {
    Circuit out = ckt;
    Device& d = out.device(f.device);
    require(f.factor > 0, "inject_parametric: factor must be positive");
    if (f.param == "value") {
        require(d.kind == DeviceKind::Resistor ||
                    d.kind == DeviceKind::Capacitor,
                "parametric 'value' needs an R or C: " + f.device);
        d.value *= f.factor;
    } else if (f.param == "w") {
        require(d.kind == DeviceKind::Mosfet,
                "parametric 'w' needs a MOSFET: " + f.device);
        d.w *= f.factor;
    } else if (f.param == "l") {
        require(d.kind == DeviceKind::Mosfet,
                "parametric 'l' needs a MOSFET: " + f.device);
        d.l *= f.factor;
    } else {
        throw Error("inject_parametric: unknown parameter " + f.param);
    }
    return out;
}

std::vector<ParametricFault> monte_carlo_faults(const Circuit& ckt,
                                                unsigned n, double sigma,
                                                std::uint64_t seed) {
    // Candidate (device, param) sites.
    std::vector<std::pair<std::string, std::string>> sites;
    for (const Device& d : ckt.devices) {
        switch (d.kind) {
            case DeviceKind::Resistor:
            case DeviceKind::Capacitor:
                sites.emplace_back(d.name, "value");
                break;
            case DeviceKind::Mosfet:
                sites.emplace_back(d.name, "w");
                sites.emplace_back(d.name, "l");
                break;
            default: break;
        }
    }
    require(!sites.empty(), "monte_carlo_faults: no parametric sites");

    // xorshift64* PRNG; Box-Muller for the gaussian deviate.
    std::uint64_t s = seed ? seed : 0x9E3779B97F4A7C15ull;
    auto next_u = [&]() {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545F4914F6CDD1Dull;
    };
    auto uniform = [&]() {
        return (static_cast<double>(next_u() >> 11) + 0.5) / 9007199254740992.0;
    };

    std::vector<ParametricFault> out;
    out.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        const auto& [dev, param] = sites[next_u() % sites.size()];
        const double u1 = uniform(), u2 = uniform();
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(2.0 * M_PI * u2);
        ParametricFault f;
        f.device = dev;
        f.param = param;
        f.factor = std::exp(sigma * z);  // log-normal around 1
        out.push_back(std::move(f));
    }
    return out;
}

} // namespace catlift::anafault
