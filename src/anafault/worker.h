// catlift/anafault/worker.h
//
// Campaign-layer entry points of the multi-process fabric
// (batch/fabric.h).  A worker process is the ordinary campaign runner
// pointed at a fault-id *subrange* and a store *shard* bound -- via
// CampaignOptions::manifest_override -- to the full campaign's manifest,
// exactly the mechanism the incremental engine already uses to run a
// subset campaign against a full store.  The supervisor then folds the
// shards back together (batch::merge_shards) and reassembles the final
// CampaignResult straight from the canonical store, so the parent never
// re-runs the nominal simulation.

#pragma once

#include "anafault/campaign.h"
#include "batch/fabric.h"

#include <string>

namespace catlift::anafault {

/// What makes a worker-process campaign different from a plain one.
struct WorkerOptions {
    int id_lo = 0;   ///< inclusive fault-id range this worker owns
    int id_hi = 0;
    std::string shard;              ///< this worker's store shard
    int heartbeat_fd = -1;          ///< supervision pipe fd (<0: none)
    double heartbeat_interval_s = 0.05;
};

/// Run the campaign for the faults of `full` with ids in [id_lo, id_hi],
/// appending into `w.shard` under the *full* campaign's manifest, with
/// resume on (a respawned worker skips everything its predecessor -- or
/// the supervisor's quarantine pass -- already retired).  When
/// `w.heartbeat_fd` is set, a batch::HeartbeatSink reports every fault
/// start/retirement to the supervisor for the poison-fault detector.
CampaignResult run_worker_campaign(const netlist::Circuit& ckt,
                                   const lift::FaultList& full,
                                   const CampaignOptions& opt,
                                   const WorkerOptions& w);

/// Assemble a CampaignResult for (ckt, faults, opt) from the canonical
/// merged store at `store_path` without simulating anything: every fault
/// must already have a record (a fault missing from the store comes back
/// `failed` with a diagnostic error).  nominal/nominal_seconds stay
/// empty/zero -- the workers ran the nominal sim; the parent only
/// aggregates.  Throws catlift::Error when the store is unreadable or
/// bound to a different manifest.
CampaignResult load_campaign_result(const netlist::Circuit& ckt,
                                    const lift::FaultList& faults,
                                    const CampaignOptions& opt,
                                    const std::string& store_path);

/// The `quarantined` verdict the supervisor appends for a convicted
/// poison fault: identity (description, probability) from the fault
/// list, PR 8's containment fields (attempts = worker deaths, the
/// accumulated death log as retry_log) for everything else.
batch::FaultSimResult quarantine_record(const lift::FaultList& faults,
                                        int fault_id, int attempts,
                                        const std::string& retry_log);

} // namespace catlift::anafault
