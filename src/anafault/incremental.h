// catlift/anafault/incremental.h
//
// Incremental cross-revision campaign engine.  The paper's workflow is
// iterative: a layout is revised, LIFT re-extracts the fault list, and the
// campaign is re-run -- yet most faults of the new revision have exactly
// the electrical signature they had before, so their verdicts are already
// known.  This layer diffs the two fault lists (lift::diff_faultlists),
// carries verdicts for signature-identical faults straight out of the
// baseline result store, and simulates only the added / probability-changed
// remainder, emitting a merged store that is byte-equivalent (in verdicts)
// to a cold full campaign on the revision -- and that serves as the
// baseline store of the *next* revision.
//
// All three campaign runners dispatch through the same diff + store
// machinery: run_incremental_campaign drives the transient runner,
// run_incremental_ac_campaign the AC sweep, run_incremental_dc_screen the
// DC screen (each bound to its own manifest hash, so a transient store can
// never feed an AC carry).
//
// Carry-over safety: a baseline verdict is only reused when the baseline
// store's manifest reproduces the baseline campaign's manifest hash --
// i.e. the store was written by this exact circuit, fault list, analysis
// axis and numeric/kernel knob set.  Any mismatch (edited deck, different
// tolerances, another kernel configuration, foreign/older store) disables
// carrying entirely and the full revision list is resimulated.

#pragma once

#include "anafault/ac_campaign.h"
#include "anafault/campaign.h"
#include "anafault/dc_campaign.h"

#include <cstddef>
#include <string>

namespace catlift::anafault {

struct IncrementalOptions {
    /// Campaign configuration for the revision.  `result_store` names the
    /// *merged* store to emit ("" keeps the merge in memory only);
    /// `resume` additionally reuses records a previous -- possibly
    /// crashed -- incremental run already wrote into the merged store.
    CampaignOptions campaign;
    /// Result store of the baseline campaign (read-only; never modified).
    std::string baseline_store;
    /// Relative probability tolerance of the fault-list diff: a fault
    /// whose probability moved by more than this fraction is resimulated
    /// even though its electrical signature is unchanged.
    double rel_tol = 0.05;
};

/// AC / DC variants: the same diff + store machinery with the analysis'
/// own campaign options and manifest.
struct IncrementalAcOptions {
    AcCampaignOptions campaign;
    std::string baseline_store;
    double rel_tol = 0.05;
};
struct IncrementalDcOptions {
    DcScreenOptions campaign;
    std::string baseline_store;
    double rel_tol = 0.05;
};

/// Per-class provenance counters of one incremental run.
struct IncrementalStats {
    std::size_t carried = 0;      ///< verdicts reused from the baseline
    /// Revision faults the carry pass could not cover -- run as the
    /// subset campaign (a resume against an already-complete merged
    /// store may satisfy them without kernel work: campaign.batch's
    /// scheduled/resumed counters report that split).
    std::size_t resimulated = 0;
    std::size_t added = 0;        ///< signatures new in the revision
    std::size_t removed = 0;      ///< baseline signatures gone in the revision
    std::size_t probability_changed = 0;  ///< same signature, probability
                                          ///< moved beyond rel_tol
    /// True when the baseline store's manifest matched the baseline
    /// campaign (the precondition for carrying anything).
    bool baseline_manifest_matched = false;
    /// Why carrying was disabled ("" when it was allowed).
    std::string carry_block_reason;
};

struct IncrementalResult {
    /// Merged outcome in revision fault-list order; verdicts identical to
    /// a cold full campaign on the revision.  total_seconds / batch
    /// counters cover only the kernel work this run actually performed.
    CampaignResult campaign;
    IncrementalStats inc;
};
struct IncrementalAcResult {
    AcCampaignResult campaign;
    IncrementalStats inc;
};
struct IncrementalDcResult {
    DcScreenResult campaign;
    IncrementalStats inc;
};

/// Run the revision campaign incrementally against a baseline.
/// `baseline` must be the fault list the baseline store was written for.
/// The nominal analysis always runs, even when every fault carries: the
/// merged result keeps the full contract (nominal waveforms / sweep /
/// operating point, coverage) of a cold run, and one nominal per revision
/// is the irreducible sanity baseline.  Throws catlift::Error on
/// inconsistent configuration (e.g. resume requested without a merged
/// store path).
IncrementalResult run_incremental_campaign(const netlist::Circuit& ckt,
                                           const lift::FaultList& baseline,
                                           const lift::FaultList& revision,
                                           const IncrementalOptions& opt);

/// The AC campaign run incrementally against a baseline AC store.
IncrementalAcResult run_incremental_ac_campaign(
    const netlist::Circuit& ckt, const lift::FaultList& baseline,
    const lift::FaultList& revision, const IncrementalAcOptions& opt);

/// The DC screen run incrementally against a baseline DC store.
IncrementalDcResult run_incremental_dc_screen(const netlist::Circuit& ckt,
                                              const lift::FaultList& baseline,
                                              const lift::FaultList& revision,
                                              const IncrementalDcOptions& opt);

/// One-line counter summary ("carried 52/64, resimulated 12, ...").
std::string incremental_summary(const IncrementalResult& res);
std::string incremental_summary(const IncrementalStats& inc,
                                std::size_t total);

} // namespace catlift::anafault
