#include "anafault/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace catlift::anafault {

std::string campaign_table(const CampaignResult& res) {
    std::ostringstream os;
    os << "  id  fault                                        p          "
          "detected   t_detect\n";
    os << "  --------------------------------------------------------------"
          "--------------\n";
    char buf[160];
    for (const FaultSimResult& r : res.results) {
        const char* status = !r.simulated
                                 ? (r.quarantined ? "QUARANT" : "SIMFAIL")
                             : r.detect_time ? "yes"
                                             : "no";
        if (r.detect_time) {
            std::snprintf(buf, sizeof buf,
                          "  %-3d %-44s %-10.3g %-10s %.3g us\n", r.fault_id,
                          r.description.c_str(), r.probability, status,
                          *r.detect_time * 1e6);
        } else {
            std::snprintf(buf, sizeof buf, "  %-3d %-44s %-10.3g %-10s -\n",
                          r.fault_id, r.description.c_str(), r.probability,
                          status);
        }
        os << buf;
    }
    return os.str();
}

std::string campaign_summary(const CampaignResult& res) {
    std::ostringstream os;
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "faults: %zu  detected: %zu  undetected: %zu  simfail: %zu"
                  "  quarantined: %zu\n",
                  res.results.size(), res.detected(), res.undetected(),
                  res.failed(), res.quarantined());
    os << buf;
    std::snprintf(buf, sizeof buf,
                  "fault coverage: %.1f%%  weighted coverage: %.1f%%\n",
                  res.final_coverage(), res.weighted_coverage());
    os << buf;
    if (auto last = res.time_of_last_detection()) {
        std::snprintf(buf, sizeof buf,
                      "all detectable faults found after %.2f us "
                      "(%.0f%% of test time)\n",
                      *last * 1e6, 100.0 * *last / res.tstop);
        os << buf;
    }
    std::snprintf(buf, sizeof buf,
                  "kernel time: nominal %.3fs, faults %.3fs total\n",
                  res.nominal_seconds, res.total_seconds);
    os << buf;
    std::snprintf(buf, sizeof buf,
                  "batch: %u thread%s, %zu classes (%zu collapsed), "
                  "%zu simulated, %zu resumed\n",
                  res.batch.threads, res.batch.threads == 1 ? "" : "s",
                  res.batch.classes, res.batch.collapsed,
                  res.batch.scheduled, res.batch.resumed);
    os << buf;
    if (res.batch.retries > 0 || res.batch.quarantined > 0 ||
        res.batch.job_errors > 0 || res.batch.store_errors > 0) {
        std::snprintf(buf, sizeof buf,
                      "containment: %zu retries, %zu quarantined, "
                      "%zu job errors, %zu store errors\n",
                      res.batch.retries, res.batch.quarantined,
                      res.batch.job_errors, res.batch.store_errors);
        os << buf;
    }
    if (res.batch.early_aborts > 0) {
        std::snprintf(buf, sizeof buf,
                      "early abort: %zu runs stopped at detection, "
                      "%zu grid steps saved\n",
                      res.batch.early_aborts, res.batch.steps_saved);
        os << buf;
    }
    if (res.batch.steps_interpolated > 0) {
        std::snprintf(buf, sizeof buf,
                      "adaptive stepping: %zu steps integrated, "
                      "%zu grid samples interpolated\n",
                      res.batch.steps_integrated,
                      res.batch.steps_interpolated);
        os << buf;
    }
    return os.str();
}

std::string coverage_plot_ascii(const CampaignResult& res, int width,
                                int height) {
    std::ostringstream os;
    const auto curve = res.coverage_curve(static_cast<std::size_t>(width));
    std::vector<std::string> grid(
        static_cast<std::size_t>(height),
        std::string(static_cast<std::size_t>(width + 1), ' '));
    for (int c = 0; c <= width; ++c) {
        const double cov = curve[static_cast<std::size_t>(c)].second;
        int r = static_cast<int>(cov / 100.0 * (height - 1) + 0.5);
        r = std::clamp(r, 0, height - 1);
        grid[static_cast<std::size_t>(height - 1 - r)]
            [static_cast<std::size_t>(c)] = '*';
    }
    os << "  fault coverage (%) vs time (% of " << res.tstop * 1e6
       << " us)\n";
    for (int r = 0; r < height; ++r) {
        const int pct = (height - 1 - r) * 100 / (height - 1);
        char margin[16];
        std::snprintf(margin, sizeof margin, "  %3d |", pct);
        os << margin << grid[static_cast<std::size_t>(r)] << "\n";
    }
    os << "      +";
    for (int c = 0; c <= width; ++c) os << '-';
    os << "\n       0%";
    for (int c = 0; c < width - 8; ++c) os << ' ';
    os << "100%\n";
    return os.str();
}

std::string coverage_csv(const CampaignResult& res, std::size_t points) {
    std::ostringstream os;
    os << "time_s,time_pct,coverage_pct\n";
    for (const auto& [t, cov] : res.coverage_curve(points))
        os << t << ',' << 100.0 * t / res.tstop << ',' << cov << '\n';
    return os.str();
}

std::string class_breakdown(const CampaignResult& res,
                            const lift::FaultList& faults) {
    require(res.results.size() == faults.size(),
            "class_breakdown: campaign and fault list sizes differ");
    struct Acc {
        std::size_t total = 0, detected = 0;
        double t_sum = 0.0;
    };
    std::map<lift::FaultKind, Acc> acc;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        Acc& a = acc[faults.faults[i].kind];
        ++a.total;
        if (res.results[i].detect_time) {
            ++a.detected;
            a.t_sum += *res.results[i].detect_time;
        }
    }
    std::ostringstream os;
    os << "  class          total  detected  mean t_detect\n";
    char buf[96];
    for (const auto& [kind, a] : acc) {
        if (a.detected > 0) {
            std::snprintf(buf, sizeof buf, "  %-13s %-6zu %-9zu %.2f us\n",
                          lift::to_string(kind), a.total, a.detected,
                          a.t_sum / static_cast<double>(a.detected) * 1e6);
        } else {
            std::snprintf(buf, sizeof buf, "  %-13s %-6zu %-9zu -\n",
                          lift::to_string(kind), a.total, a.detected);
        }
        os << buf;
    }
    return os.str();
}

} // namespace catlift::anafault
