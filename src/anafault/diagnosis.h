// catlift/anafault/diagnosis.h
//
// Fault dictionary and diagnosis.  The fault-simulation cycle produces one
// response per fault; storing their signatures turns the campaign into a
// diagnosis instrument (the classic dictionary approach of analogue fault
// diagnosis, Bandler/Salama [3], and the AC/DC fault recognition of [6],
// both referenced by the paper's state-of-the-art chapter): given a
// measured response from a failing device, rank the dictionary faults by
// signature distance to name the likely physical cause -- and through
// LIFT's provenance, the likely layout location.

#pragma once

#include "anafault/fault_models.h"
#include "lift/fault.h"
#include "netlist/netlist.h"
#include "spice/engine.h"

#include <string>
#include <vector>

namespace catlift::anafault {

struct DictionaryOptions {
    InjectionOptions injection;
    spice::SimOptions sim;
    std::optional<netlist::TranSpec> tran;
    std::vector<std::string> observed = {"11"};
    /// Signature resolution: waveform samples per observed node.
    std::size_t samples = 24;

    DictionaryOptions() { sim.uic = true; }
};

/// One dictionary row: the fault and its response signature.
struct DictionaryEntry {
    lift::Fault fault;
    std::vector<double> signature;
};

struct DiagnosisMatch {
    const DictionaryEntry* entry = nullptr;
    double distance = 0.0;  ///< RMS signature distance [V]
};

/// The fault dictionary: signatures of every fault plus the fault-free
/// response, with a nearest-neighbour diagnosis query.
class FaultDictionary {
public:
    /// Simulate every fault and record its signature.  Faults whose kernel
    /// run fails are skipped (diagnosis cannot name what cannot be
    /// simulated).
    static FaultDictionary build(const netlist::Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const DictionaryOptions& opt = {});

    std::size_t size() const { return entries_.size(); }
    const std::vector<DictionaryEntry>& entries() const { return entries_; }

    /// Signature of an arbitrary response using this dictionary's sampling
    /// grid (the observed nodes and sample times used at build()).
    std::vector<double> signature_of(const spice::Waveforms& wf) const;

    /// Rank dictionary faults by distance to an observed response.
    std::vector<DiagnosisMatch> diagnose(const spice::Waveforms& observed,
                                         std::size_t top_k = 5) const;

    /// Distance of the observed response to the fault-free signature; a
    /// small value means the device under diagnosis looks healthy.
    double distance_to_nominal(const spice::Waveforms& observed) const;

private:
    std::vector<DictionaryEntry> entries_;
    std::vector<double> nominal_signature_;
    std::vector<std::string> observed_;
    std::vector<double> sample_times_;
};

} // namespace catlift::anafault
