#include "anafault/ac_campaign.h"

#include "anafault/comparator.h"
#include "batch/collapse.h"
#include "batch/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace catlift::anafault {

using netlist::Circuit;

std::size_t AcCampaignResult::detected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const AcFaultResult& r) { return r.detected; }));
}

double AcCampaignResult::coverage() const {
    if (results.empty()) return 0.0;
    return 100.0 * static_cast<double>(detected()) /
           static_cast<double>(results.size());
}

AcCampaignResult run_ac_campaign(const Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const AcCampaignOptions& opt) {
    AcCampaignResult res;
    {
        spice::Simulator sim(ckt, opt.sim);
        res.nominal = sim.ac(opt.sweep);
    }
    for (const std::string& node : opt.observed)
        require(res.nominal.has(node),
                "ac campaign: observed node missing: " + node);

    const std::size_t n_faults = faults.size();
    res.results.resize(n_faults);
    res.batch.threads = std::max(1u, opt.threads);

    const std::vector<batch::CollapsedClass> classes =
        opt.collapse ? batch::collapse(faults.faults)
                     : batch::singleton_classes(n_faults);
    const std::vector<batch::Job> jobs = batch::class_jobs(
        classes,
        [&](std::size_t m) { return faults.faults[m].probability; });

    const std::vector<char> is_rep =
        batch::representative_mask(classes, n_faults);
    std::atomic<std::size_t> points_saved{0}, aborted{0};
    const batch::SchedulerStats sstats = batch::run_classes(
        batch::Scheduler(opt.threads), classes, jobs, res.results,
        [&](std::size_t rep) {
            const lift::Fault& f = faults.faults[rep];
            AcFaultResult r;
            try {
                const Circuit faulty = inject(ckt, f, opt.injection);
                AcStreamingDetector detector(res.nominal, opt.observed,
                                             opt.db_tol);
                spice::Simulator sim(faulty, opt.sim);
                const spice::AcPointObserver observer =
                    [&](double, const spice::AcResult& partial) {
                        return !(detector.feed(partial) && opt.early_abort);
                    };
                sim.ac(opt.sweep, observer);
                r.simulated = true;
                r.detected = detector.detected();
                r.detect_freq = detector.detect_freq();
                r.max_deviation_db = detector.max_deviation_db();
                r.points_saved = sim.stats().ac_points_saved;
                if (r.points_saved > 0) {
                    aborted.fetch_add(1, std::memory_order_relaxed);
                    points_saved.fetch_add(r.points_saved,
                                           std::memory_order_relaxed);
                }
            } catch (const Error& e) {
                r.simulated = false;
                r.error = e.what();
            }
            return r;
        },
        [&](const AcFaultResult& verdict, std::size_t m) {
            AcFaultResult copy = verdict;
            copy.fault_id = faults.faults[m].id;
            copy.description = faults.faults[m].describe();
            // Kernel savings stay attributed to the class representative.
            if (!is_rep[m]) copy.points_saved = 0;
            return copy;
        });
    res.batch.classes = classes.size();
    res.batch.collapsed = n_faults - classes.size();
    res.batch.scheduled = sstats.executed;
    res.batch.steals = sstats.steals;
    res.batch.early_aborts = aborted.load();
    res.batch.freq_points_saved = points_saved.load();
    return res;
}

} // namespace catlift::anafault
