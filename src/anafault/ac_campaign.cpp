#include "anafault/ac_campaign.h"

#include "batch/collapse.h"
#include "batch/scheduler.h"

#include <algorithm>
#include <cmath>

namespace catlift::anafault {

using netlist::Circuit;

std::size_t AcCampaignResult::detected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const AcFaultResult& r) { return r.detected; }));
}

double AcCampaignResult::coverage() const {
    if (results.empty()) return 0.0;
    return 100.0 * static_cast<double>(detected()) /
           static_cast<double>(results.size());
}

AcCampaignResult run_ac_campaign(const Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const AcCampaignOptions& opt) {
    AcCampaignResult res;
    {
        spice::Simulator sim(ckt, opt.sim);
        res.nominal = sim.ac(opt.sweep);
    }
    for (const std::string& node : opt.observed)
        require(res.nominal.has(node),
                "ac campaign: observed node missing: " + node);

    const std::size_t n_faults = faults.size();
    res.results.resize(n_faults);

    const std::vector<batch::CollapsedClass> classes =
        opt.collapse ? batch::collapse(faults.faults)
                     : batch::singleton_classes(n_faults);
    const std::vector<batch::Job> jobs = batch::class_jobs(
        classes,
        [&](std::size_t m) { return faults.faults[m].probability; });

    batch::run_classes(
        batch::Scheduler(opt.threads), classes, jobs, res.results,
        [&](std::size_t rep) {
            const lift::Fault& f = faults.faults[rep];
            AcFaultResult r;
            try {
                const Circuit faulty = inject(ckt, f, opt.injection);
                spice::Simulator sim(faulty, opt.sim);
                const spice::AcResult ac = sim.ac(opt.sweep);
                r.simulated = true;
                for (std::size_t i = 0; i < res.nominal.points(); ++i) {
                    const double freq = res.nominal.freq()[i];
                    for (const std::string& node : opt.observed) {
                        if (!ac.has(node)) continue;
                        const double dev =
                            std::fabs(ac.mag_db(node, i) -
                                      res.nominal.mag_db(node, i));
                        r.max_deviation_db = std::max(r.max_deviation_db, dev);
                        if (dev > opt.db_tol && !r.detect_freq)
                            r.detect_freq = freq;
                    }
                }
                r.detected = r.detect_freq.has_value();
            } catch (const Error& e) {
                r.simulated = false;
                r.error = e.what();
            }
            return r;
        },
        [&](const AcFaultResult& verdict, std::size_t m) {
            AcFaultResult copy = verdict;
            copy.fault_id = faults.faults[m].id;
            copy.description = faults.faults[m].describe();
            return copy;
        });
    return res;
}

} // namespace catlift::anafault
