#include "anafault/ac_campaign.h"

#include "anafault/campaign.h"
#include "anafault/comparator.h"
#include "batch/collapse.h"
#include "batch/scheduler.h"
#include "netlist/writer.h"
#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>

namespace catlift::anafault {

using netlist::Circuit;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

const char* ac_verdict(const AcFaultResult& r) {
    if (r.detected) return "detected";
    if (r.simulated) return "undetected";
    return r.quarantined ? "quarantined" : "failed";
}

/// AC counterpart of the transient runner's publish_fault_obs: span args
/// mirror the registry increments exactly.
void publish_ac_fault_obs(obs::Span& sp, const AcFaultResult& r,
                          const std::string& signature) {
    const unsigned mask = obs::enabled_mask();
    const bool ev = obs::events_enabled();
    if (mask == 0 && !ev) {
        sp.end();
        return;
    }
    const auto i64 = [](auto v) { return static_cast<std::int64_t>(v); };
    if (mask & obs::kTracingBit) {
        sp.arg("fault_id", i64(r.fault_id));
        sp.arg("signature", signature);
        sp.arg("verdict", std::string(ac_verdict(r)));
        if (r.detect_freq) sp.arg("detect_freq_hz", *r.detect_freq);
        sp.arg("max_deviation_db", r.max_deviation_db);
        sp.arg("freq_points_saved", i64(r.points_saved));
        sp.arg("nr_iterations", i64(r.nr_iterations));
        sp.arg("symbolic_cache_hits", i64(r.symbolic_cache_hits));
        sp.arg("sim_seconds", r.sim_seconds);
        sp.arg("attempts", i64(r.attempts));
    }
    sp.end();
    if (mask & obs::kMetricsBit) {
        obs::Registry& reg = obs::Registry::global();
        reg.counter("campaign.retired").add(1);
        if (r.detected) reg.counter("campaign.detected").add(1);
        reg.counter("campaign.nr_iterations").add(r.nr_iterations);
        reg.counter("campaign.freq_points_saved").add(r.points_saved);
        reg.counter("campaign.symbolic_cache_hits")
            .add(r.symbolic_cache_hits);
    }
    if (ev)
        obs::emit_event(
            "fault_retired",
            {obs::arg("fault_id", i64(r.fault_id)),
             obs::arg("verdict", std::string(ac_verdict(r))),
             obs::arg("sim_seconds", r.sim_seconds)});
}

/// AC twin of the transient runner's simulate_with_retries: run one
/// faulty sweep through the retry/degradation ladder (anafault/retry.h)
/// until an attempt simulates or the ladder is exhausted (-> quarantined).
/// `base_sim` is the campaign's effective fault SimOptions (it carries the
/// shared symbolic cache, which the dense rung then drops).
AcFaultResult sweep_with_retries(const Circuit& faulty,
                                 const spice::AcResult& nominal,
                                 const spice::SimOptions& base_sim,
                                 const AcCampaignOptions& opt, int fault_id,
                                 std::atomic<std::size_t>& retries) {
    const int attempts_allowed = 1 + std::max(0, opt.max_retries);
    AcFaultResult r;
    std::string retry_log;
    for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
        const spice::SimOptions asim =
            attempt == 0 ? base_sim : degrade_sim(base_sim, attempt);
        if (attempt > 0) {
            retries.fetch_add(1, std::memory_order_relaxed);
            if (obs::metrics_enabled())
                obs::Registry::global().counter("campaign.retries").add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_retry",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(fault_id)),
                     obs::arg("attempt",
                              static_cast<std::int64_t>(attempt)),
                     obs::arg("config", attempt_label(attempt)),
                     obs::arg("error", r.error)});
        }
        r.simulated = false;
        r.error.clear();
        try {
            AcStreamingDetector detector(nominal, opt.observed, opt.db_tol);
            spice::Simulator sim(faulty, asim);
            const spice::AcPointObserver observer =
                [&](double, const spice::AcResult& partial) {
                    return !(detector.feed(partial) && opt.early_abort);
                };
            sim.ac(opt.sweep, observer);
            r.simulated = true;
            r.detected = detector.detected();
            r.detect_freq = detector.detect_freq();
            r.max_deviation_db = detector.max_deviation_db();
            r.points_saved = sim.stats().ac_points_saved;
            r.nr_iterations = sim.stats().nr_iterations;
            r.symbolic_cache_hits = sim.stats().symbolic_cache_hits;
            r.ordering_seconds = sim.stats().ordering_seconds;
            r.numeric_seconds = sim.stats().numeric_seconds;
        } catch (const std::exception& e) {
            r.error = e.what();
        }
        r.attempts = static_cast<std::uint32_t>(attempt + 1);
        if (r.simulated) break;
        log_attempt(retry_log, attempt, r.error);
    }
    r.retry_log = std::move(retry_log);
    if (!r.simulated && opt.max_retries > 0) {
        r.quarantined = true;
        if (obs::metrics_enabled())
            obs::Registry::global().counter("campaign.quarantined").add(1);
        if (obs::events_enabled())
            obs::emit_event(
                "fault_quarantined",
                {obs::arg("fault_id", static_cast<std::int64_t>(fault_id)),
                 obs::arg("attempts",
                          static_cast<std::int64_t>(r.attempts)),
                 obs::arg("error", r.error)});
    }
    return r;
}

} // namespace

std::size_t AcCampaignResult::detected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const AcFaultResult& r) { return r.detected; }));
}

double AcCampaignResult::coverage() const {
    if (results.empty()) return 0.0;
    return 100.0 * static_cast<double>(detected()) /
           static_cast<double>(results.size());
}

std::size_t AcCampaignResult::failed() const {
    return static_cast<std::size_t>(std::count_if(
        results.begin(), results.end(), [](const AcFaultResult& r) {
            return !r.simulated && !r.quarantined;
        }));
}

std::size_t AcCampaignResult::quarantined() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const AcFaultResult& r) { return r.quarantined; }));
}

std::uint64_t ac_campaign_manifest(const Circuit& ckt,
                                   const lift::FaultList& faults,
                                   const AcCampaignOptions& opt) {
    std::uint64_t h =
        chain_fault_manifest(batch::fnv1a(netlist::write_spice(ckt)), faults);
    std::string o = "ac";
    const auto field = [&o](const std::string& v) {
        o += '|';
        o += v;
    };
    field(to_string(opt.injection.model));
    field(manifest_double(opt.injection.short_resistance));
    field(manifest_double(opt.injection.open_resistance));
    field(manifest_double(opt.sweep.fstart));
    field(manifest_double(opt.sweep.fstop));
    field(std::to_string(opt.sweep.points_per_decade));
    field(manifest_double(opt.db_tol));
    for (const std::string& n : opt.observed) field(n);
    o += sim_knob_signature(opt.sim);
    o += opt.share_symbolic ? "|sharesym" : "|nosharesym";
    o += opt.collapse ? "|collapse" : "|nocollapse";
    o += opt.early_abort ? "|abort" : "|noabort";
    // The retry ladder can converge a fault the base config fails, so a
    // store written under a different retry depth is foreign.
    o += "|retries:" + std::to_string(opt.max_retries);
    return batch::fnv1a(o, h);
}

batch::FaultSimResult ac_to_record(const AcFaultResult& r) {
    batch::FaultSimResult rec;
    rec.fault_id = r.fault_id;
    rec.description = r.description;
    rec.probability = r.probability;
    rec.simulated = r.simulated;
    rec.error = r.error;
    if (r.detected) rec.detect_time = r.detect_freq.value_or(0.0);
    rec.metric = r.max_deviation_db;
    rec.steps_saved = r.points_saved;
    rec.sim_seconds = r.sim_seconds;
    rec.nr_iterations = r.nr_iterations;
    rec.symbolic_cache_hits = r.symbolic_cache_hits;
    rec.ordering_seconds = r.ordering_seconds;
    rec.numeric_seconds = r.numeric_seconds;
    rec.carried = r.carried;
    rec.attempts = r.attempts;
    rec.quarantined = r.quarantined;
    rec.retry_log = r.retry_log;
    return rec;
}

AcFaultResult ac_from_record(const batch::FaultSimResult& rec) {
    AcFaultResult r;
    r.fault_id = rec.fault_id;
    r.description = rec.description;
    r.probability = rec.probability;
    r.simulated = rec.simulated;
    r.error = rec.error;
    r.detected = rec.detect_time.has_value();
    if (rec.detect_time) r.detect_freq = rec.detect_time;
    r.max_deviation_db = rec.metric;
    r.points_saved = rec.steps_saved;
    r.sim_seconds = rec.sim_seconds;
    r.nr_iterations = rec.nr_iterations;
    r.symbolic_cache_hits = rec.symbolic_cache_hits;
    r.ordering_seconds = rec.ordering_seconds;
    r.numeric_seconds = rec.numeric_seconds;
    r.carried = rec.carried;
    r.attempts = rec.attempts;
    r.quarantined = rec.quarantined;
    r.retry_log = rec.retry_log;
    return r;
}

AcCampaignResult run_ac_campaign(const Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const AcCampaignOptions& opt) {
    AcCampaignResult res;
    if (obs::events_enabled())
        obs::emit_event(
            "campaign_start",
            {obs::arg("analysis", std::string("ac")),
             obs::arg("faults", static_cast<std::int64_t>(faults.size())),
             obs::arg("threads", static_cast<std::int64_t>(
                                     std::max(1u, opt.threads)))});
    spice::SimOptions fault_sim = opt.sim;
    {
        obs::Span nsp(obs::Phase::Nominal);
        spice::Simulator sim(ckt, opt.sim);
        res.nominal = sim.ac(opt.sweep);
        res.batch.ordering_seconds = sim.stats().ordering_seconds;
        res.batch.numeric_seconds = sim.stats().numeric_seconds;
        // The nominal sweep's kernel carries the campaign-shared symbolic
        // analysis (null on the dense path).
        if (opt.share_symbolic) fault_sim.symbolic_cache = sim.symbolic_cache();
    }
    for (const std::string& node : opt.observed)
        require(res.nominal.has(node),
                "ac campaign: observed node missing: " + node);

    const std::size_t n_faults = faults.size();
    res.results.resize(n_faults);
    res.batch.threads = std::max(1u, opt.threads);
    std::vector<char> done(n_faults, 0);

    // Result store: records of a previous run of this exact campaign.
    std::unique_ptr<batch::ResultStore> store;
    if (!opt.result_store.empty()) {
        const std::uint64_t manifest =
            opt.manifest_override ? *opt.manifest_override
                                  : ac_campaign_manifest(ckt, faults, opt);
        if (!opt.resume) {
            std::error_code ec;
            std::filesystem::remove(opt.result_store, ec);
        }
        store = std::make_unique<batch::ResultStore>(
            opt.result_store, manifest, opt.store_durability);
        std::map<int, std::size_t> by_id;
        for (std::size_t i = 0; i < n_faults; ++i)
            by_id[faults.faults[i].id] = i;
        for (const batch::FaultSimResult& rec : store->loaded()) {
            const auto it = by_id.find(rec.fault_id);
            if (it == by_id.end() || done[it->second]) continue;
            res.results[it->second] = ac_from_record(rec);
            done[it->second] = 1;
            // Same provenance split as the transient runner: carried
            // records are not prior-run work of this campaign.
            if (rec.carried)
                ++res.batch.carried_from_store;
            else
                ++res.batch.resumed;
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_resumed",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(rec.fault_id)),
                     obs::arg("carried",
                              static_cast<std::int64_t>(rec.carried))});
        }
    }
    const std::vector<char> resumed_here = done;

    const std::vector<batch::CollapsedClass> classes =
        opt.collapse ? batch::collapse(faults.faults)
                     : batch::singleton_classes(n_faults);
    res.batch.classes = classes.size();
    std::vector<batch::Job> jobs = batch::class_jobs(
        classes,
        [&](std::size_t m) { return faults.faults[m].probability; });
    std::erase_if(jobs, [&](const batch::Job& j) {
        const auto& members = classes[j.index].members;
        return std::all_of(members.begin(), members.end(),
                           [&](std::size_t m) { return done[m] != 0; });
    });

    std::atomic<std::size_t> kernel_runs{0};
    std::atomic<std::size_t> retries{0};
    std::atomic<std::size_t> store_errors{0};
    // Contained store append: an I/O failure must not fail the fault --
    // its verdict is already computed and stays in memory; a later resume
    // re-simulates it.  Counted and published, never rethrown.
    auto safe_append = [&](const AcFaultResult& r) {
        if (!store) return;
        try {
            store->append(ac_to_record(r));
        } catch (const std::exception& e) {
            store_errors.fetch_add(1, std::memory_order_relaxed);
            if (obs::metrics_enabled())
                obs::Registry::global()
                    .counter("store.append_errors")
                    .add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "store_error",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(r.fault_id)),
                     obs::arg("error", std::string(e.what()))});
        }
    };
    auto run_class = [&](std::size_t c) {
        const std::vector<std::size_t>& members = classes[c].members;
        const AcFaultResult* verdict = nullptr;
        for (std::size_t m : members)
            if (done[m]) {
                verdict = &res.results[m];
                break;
            }
        if (!verdict) {
            const std::size_t rep =
                *std::find_if(members.begin(), members.end(),
                              [&](std::size_t m) { return !done[m]; });
            const lift::Fault& f = faults.faults[rep];
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_started",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(f.id))});
            obs::Span sp(obs::Phase::FaultSim);
            AcFaultResult r;
            const auto t0 = std::chrono::steady_clock::now();
            try {
                const Circuit faulty = inject(ckt, f, opt.injection);
                kernel_runs.fetch_add(1, std::memory_order_relaxed);
                r = sweep_with_retries(faulty, res.nominal, fault_sim, opt,
                                       f.id, retries);
            } catch (const std::exception& e) {
                // Injection failure (or any exception the ladder did not
                // already contain): injection is deterministic, so the
                // retry ladder has nothing to offer -- retire `failed`.
                r.simulated = false;
                r.error = e.what();
            }
            r.fault_id = f.id;
            r.description = f.describe();
            r.probability = f.probability;
            r.sim_seconds = seconds_since(t0);
            res.results[rep] = std::move(r);
            done[rep] = 1;
            safe_append(res.results[rep]);
            publish_ac_fault_obs(sp, res.results[rep],
                                 batch::effect_signature(f));
            verdict = &res.results[rep];
        }
        for (std::size_t m : members) {
            if (done[m]) continue;
            AcFaultResult copy = *verdict;
            copy.fault_id = faults.faults[m].id;
            copy.description = faults.faults[m].describe();
            copy.probability = faults.faults[m].probability;
            // Kernel savings -- and retry cost -- stay attributed to the
            // class representative; the verdict (quarantined included)
            // fans out.
            copy.points_saved = 0;
            copy.sim_seconds = 0.0;
            copy.nr_iterations = 0;
            copy.symbolic_cache_hits = 0;
            copy.ordering_seconds = 0.0;
            copy.numeric_seconds = 0.0;
            copy.attempts = 1;
            copy.retry_log.clear();
            res.results[m] = std::move(copy);
            done[m] = 1;
            safe_append(res.results[m]);
            if (obs::metrics_enabled())
                obs::Registry::global()
                    .counter("campaign.fanned_out")
                    .add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_retired",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(
                                  faults.faults[m].id)),
                     obs::arg("verdict",
                              std::string(ac_verdict(res.results[m]))),
                     obs::arg("via", std::string("collapse"))});
        }
    };

    const batch::Scheduler scheduler(opt.threads);
    // RecordAndContinue: the per-fault handling above already retires
    // every failure; an exception still reaching the scheduler is recorded
    // and the remaining faults keep their verdicts.
    const batch::SchedulerStats sstats =
        scheduler.run(jobs, run_class, batch::ErrorPolicy::RecordAndContinue);
    res.batch.collapsed = n_faults - classes.size();
    res.batch.scheduled = kernel_runs.load();
    res.batch.steals = sstats.steals;
    res.batch.job_errors = sstats.failed_jobs;
    res.batch.retries = retries.load();
    res.batch.store_errors = store_errors.load();

    for (std::size_t i = 0; i < n_faults; ++i) {
        if (resumed_here[i]) continue;
        const AcFaultResult& r = res.results[i];
        if (r.points_saved > 0) {
            ++res.batch.early_aborts;
            res.batch.freq_points_saved += r.points_saved;
        }
        res.batch.symbolic_cache_hits += r.symbolic_cache_hits;
        res.batch.ordering_seconds += r.ordering_seconds;
        res.batch.numeric_seconds += r.numeric_seconds;
        if (r.quarantined) ++res.batch.quarantined;
    }
    if (obs::events_enabled())
        obs::emit_event(
            "campaign_end",
            {obs::arg("faults", static_cast<std::int64_t>(n_faults)),
             obs::arg("detected",
                      static_cast<std::int64_t>(res.detected())),
             obs::arg("scheduled",
                      static_cast<std::int64_t>(res.batch.scheduled)),
             obs::arg("resumed",
                      static_cast<std::int64_t>(res.batch.resumed)),
             obs::arg("carried_from_store",
                      static_cast<std::int64_t>(
                          res.batch.carried_from_store))});
    return res;
}

} // namespace catlift::anafault
