#include "anafault/ac_campaign.h"

#include <algorithm>
#include <cmath>

namespace catlift::anafault {

using netlist::Circuit;

std::size_t AcCampaignResult::detected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const AcFaultResult& r) { return r.detected; }));
}

double AcCampaignResult::coverage() const {
    if (results.empty()) return 0.0;
    return 100.0 * static_cast<double>(detected()) /
           static_cast<double>(results.size());
}

AcCampaignResult run_ac_campaign(const Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const AcCampaignOptions& opt) {
    AcCampaignResult res;
    {
        spice::Simulator sim(ckt, opt.sim);
        res.nominal = sim.ac(opt.sweep);
    }
    for (const std::string& node : opt.observed)
        require(res.nominal.has(node),
                "ac campaign: observed node missing: " + node);

    for (const lift::Fault& f : faults.faults) {
        AcFaultResult r;
        r.fault_id = f.id;
        r.description = f.describe();
        try {
            const Circuit faulty = inject(ckt, f, opt.injection);
            spice::Simulator sim(faulty, opt.sim);
            const spice::AcResult ac = sim.ac(opt.sweep);
            r.simulated = true;
            for (std::size_t i = 0; i < res.nominal.points(); ++i) {
                const double freq = res.nominal.freq()[i];
                for (const std::string& node : opt.observed) {
                    if (!ac.has(node)) continue;
                    const double dev = std::fabs(ac.mag_db(node, i) -
                                                 res.nominal.mag_db(node, i));
                    r.max_deviation_db = std::max(r.max_deviation_db, dev);
                    if (dev > opt.db_tol && !r.detect_freq)
                        r.detect_freq = freq;
                }
            }
            r.detected = r.detect_freq.has_value();
        } catch (const Error& e) {
            r.simulated = false;
            r.error = e.what();
        }
        res.results.push_back(std::move(r));
    }
    return res;
}

} // namespace catlift::anafault
