#include "anafault/worker.h"

#include "geom/base.h"
#include "obs/obs.h"

#include <map>
#include <memory>

namespace catlift::anafault {

CampaignResult run_worker_campaign(const netlist::Circuit& ckt,
                                   const lift::FaultList& full,
                                   const CampaignOptions& opt,
                                   const WorkerOptions& w) {
    require(!w.shard.empty(), "worker campaign: needs a shard store path");
    require(w.id_lo <= w.id_hi, "worker campaign: empty fault-id range");

    // The shard identifies as the *full* campaign: manifest over the whole
    // fault list, exactly like the incremental engine's subset runs.
    const std::uint64_t manifest = campaign_manifest(ckt, full, opt);

    lift::FaultList sub;
    sub.circuit = full.circuit;
    for (const lift::Fault& f : full.faults)
        if (f.id >= w.id_lo && f.id <= w.id_hi) sub.faults.push_back(f);
    require(!sub.faults.empty(),
            "worker campaign: no faults in the assigned id range");

    CampaignOptions wopt = opt;
    wopt.result_store = w.shard;
    wopt.store_durability = opt.store_durability;
    wopt.resume = true;  // a respawn must skip its predecessor's records
    wopt.manifest_override = manifest;

    std::unique_ptr<batch::HeartbeatEmitter> hb;
    if (w.heartbeat_fd >= 0) {
        hb = std::make_unique<batch::HeartbeatEmitter>(
            w.heartbeat_fd, w.heartbeat_interval_s);
        obs::attach_event_sink(std::make_shared<batch::HeartbeatSink>(*hb));
    }
    CampaignResult res = run_campaign(ckt, sub, wopt);
    if (hb) {
        // The sink holds a reference into `hb`; it must never outlive it.
        // Worker processes attach no other sinks, so a full detach is the
        // whole story.
        obs::detach_event_sinks();
        hb.reset();
    }
    return res;
}

CampaignResult load_campaign_result(const netlist::Circuit& ckt,
                                    const lift::FaultList& faults,
                                    const CampaignOptions& opt,
                                    const std::string& store_path) {
    const std::uint64_t manifest =
        opt.manifest_override ? *opt.manifest_override
                              : campaign_manifest(ckt, faults, opt);
    auto snap = batch::load_store(store_path);
    require(snap.has_value(),
            "fabric: merged store unreadable or not a store: " + store_path);
    require(snap->manifest == manifest,
            "fabric: merged store " + store_path +
                " identifies as a different campaign");

    std::map<int, const batch::FaultSimResult*> by_id;
    for (const batch::FaultSimResult& r : snap->records)
        by_id.emplace(r.fault_id, &r);

    CampaignResult res;
    if (opt.tran)
        res.tstop = opt.tran->tstop;
    else if (ckt.tran)
        res.tstop = ckt.tran->tstop;
    res.results.reserve(faults.faults.size());
    for (const lift::Fault& f : faults.faults) {
        const auto it = by_id.find(f.id);
        if (it != by_id.end()) {
            res.results.push_back(*it->second);
            ++res.batch.resumed;
            res.total_seconds += it->second->sim_seconds;
        } else {
            batch::FaultSimResult miss;
            miss.fault_id = f.id;
            miss.description = f.describe();
            miss.probability = f.probability;
            miss.simulated = false;
            miss.error = "missing from merged store (worker range "
                         "abandoned?)";
            res.results.push_back(std::move(miss));
        }
    }
    res.batch.threads = 1;
    return res;
}

batch::FaultSimResult quarantine_record(const lift::FaultList& faults,
                                        int fault_id, int attempts,
                                        const std::string& retry_log) {
    batch::FaultSimResult r;
    r.fault_id = fault_id;
    for (const lift::Fault& f : faults.faults)
        if (f.id == fault_id) {
            r.description = f.describe();
            r.probability = f.probability;
            break;
        }
    r.simulated = false;
    r.quarantined = true;
    r.attempts = static_cast<std::uint32_t>(attempts > 0 ? attempts : 1);
    r.error = "poison fault: killed its worker process at two consecutive "
              "deaths";
    r.retry_log = retry_log;
    return r;
}

} // namespace catlift::anafault
