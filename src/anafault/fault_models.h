// catlift/anafault/fault_models.h
//
// Fault injection: turning a lift::Fault into a mutated circuit for the
// kernel simulator.  "Analogue circuit simulators lack the capability to
// alter the topology of a circuit" (paper, ch. II) -- AnaFAULT supplies it
// by preprocessing the input netlist.  Two simulation models for hard
// faults are supported, exactly as in ch. VI:
//
//  * resistor model -- a short becomes a 0.01 Ohm resistor between the
//    nets, an open a 100 MOhm resistor in the broken path.  Matrix size is
//    unchanged; the resistor values are the knob Fig. 6 studies.
//  * source model -- a short becomes an ideal 0 V voltage source (one
//    extra MNA branch unknown, hence the 43% runtime premium measured in
//    ch. VI), an open an ideal 0 A current source (a true disconnection).
//
// Split nodes "split nodes of order n into two new nodes of order k<n and
// n-k" (ch. V): the terminals of group B move to a fresh node, and the
// open element bridges old and new node.

#pragma once

#include "lift/fault.h"
#include "netlist/netlist.h"

#include <string>

namespace catlift::anafault {

enum class HardFaultModel { Resistor, Source };

const char* to_string(HardFaultModel m);

struct InjectionOptions {
    HardFaultModel model = HardFaultModel::Resistor;
    double short_resistance = 0.01;  ///< paper: 0.01 Ohm
    double open_resistance = 100e6;  ///< paper: 100 MOhm
};

/// Name prefix of every injected element ("FLT..."), so reports and tests
/// can identify them.
inline constexpr const char* kInjectPrefix = "FLT";

/// Inject a short between two nets.
void inject_short(netlist::Circuit& ckt, const std::string& net_a,
                  const std::string& net_b, const InjectionOptions& opt = {});

/// Open one device terminal: the terminal is moved to a fresh node which
/// is tied back to the original net through the open element.
void inject_terminal_open(netlist::Circuit& ckt, const lift::TerminalRef& t,
                          const InjectionOptions& opt = {});

/// Split a node: move every terminal of `group_b` to a fresh node, bridged
/// to the original net by the open element.  Returns the new node name.
std::string inject_split(netlist::Circuit& ckt, const std::string& net,
                         const std::vector<lift::TerminalRef>& group_b,
                         const InjectionOptions& opt = {});

/// Dispatch on the fault kind.  Returns the mutated copy.
netlist::Circuit inject(const netlist::Circuit& ckt, const lift::Fault& f,
                        const InjectionOptions& opt = {});

// ---------------------------------------------------------------------------
// Parametric ("soft") faults: AnaFAULT "can handle arbitrary catastrophic
// and parametric faults" (abstract).  A parametric fault scales one device
// parameter; deviations beyond the test tolerance are detected exactly like
// hard faults.

struct ParametricFault {
    std::string device;  ///< device name
    std::string param;   ///< "value" (R/C), "w", "l" (MOS)
    double factor = 1.0; ///< multiplier applied to the nominal value

    std::string describe() const;
};

/// Apply a parametric fault (returns a mutated copy).
netlist::Circuit inject_parametric(const netlist::Circuit& ckt,
                                   const ParametricFault& f);

/// Deterministic Monte-Carlo deviations: `n` single-parameter faults over
/// the fault-capable devices with log-normal-ish factors of the given
/// relative sigma.
std::vector<ParametricFault> monte_carlo_faults(const netlist::Circuit& ckt,
                                                unsigned n, double sigma,
                                                std::uint64_t seed = 1);

} // namespace catlift::anafault
