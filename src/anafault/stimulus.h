// catlift/anafault/stimulus.h
//
// Stimulus refinement.  The paper closes ch. III with: "Depending on the
// result the stimulus can be refined.  Currently the system does not
// generate the stimulus by itself, this will be a topic of future work."
// This module implements that future work in its simplest useful form: a
// candidate-based refinement loop.  Each candidate rewrites one stimulus
// source and the analysis window; the full campaign scores it by fault
// coverage first and by test time (instant of the last detection) second.

#pragma once

#include "anafault/campaign.h"

#include <string>
#include <vector>

namespace catlift::anafault {

/// One proposed stimulus: a replacement waveform for `source` plus the
/// transient window to test with.
struct StimulusCandidate {
    std::string name;            ///< label for reports
    std::string source;          ///< stimulus source device to rewrite
    netlist::SourceSpec spec;    ///< its new waveform
    netlist::TranSpec tran;      ///< analysis window
};

struct RefinementEntry {
    StimulusCandidate candidate;
    double coverage = 0.0;           ///< final fault coverage [%]
    double weighted_coverage = 0.0;  ///< probability-weighted [%]
    double last_detection = 0.0;     ///< latest detection instant [s]
    double test_time = 0.0;          ///< proposed (truncated) test length
};

struct RefinementResult {
    std::vector<RefinementEntry> entries;
    std::size_t best = 0;  ///< index of the winning candidate

    const RefinementEntry& winner() const { return entries.at(best); }
};

/// Evaluate every candidate with a full campaign and rank them: highest
/// coverage wins; ties break on the shorter test time.  The proposed
/// test_time is the last detection instant plus one time tolerance.
RefinementResult refine_stimulus(const netlist::Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const std::vector<StimulusCandidate>& cands,
                                 const CampaignOptions& opt = {});

/// Default candidate set for a VCO-style circuit: hold the control source
/// at several levels and one two-level step profile (exercising two
/// oscillation frequencies in one test).
std::vector<StimulusCandidate> vco_stimulus_candidates(
    const std::string& source = "VCTRL");

} // namespace catlift::anafault
