// catlift/anafault/report.h
//
// Result presentation: "Results are presented in tabular form or in form
// of fault coverage plots displaying the progress of the fault coverage
// versus time" (paper, ch. V).  The CAT system "supports the development
// of tests providing detailed reports, clearly arranged overview tables
// and comprehensive fault coverage plots" (ch. III).

#pragma once

#include "anafault/campaign.h"

#include <string>

namespace catlift::anafault {

/// Per-fault table: id, description, probability, detection.
std::string campaign_table(const CampaignResult& res);

/// One-paragraph totals: counts, coverage, runtimes.
std::string campaign_summary(const CampaignResult& res);

/// Fig. 5 style ASCII plot: fault coverage (%) versus % of total test time.
std::string coverage_plot_ascii(const CampaignResult& res, int width = 72,
                                int height = 20);

/// CSV rows "time_s,time_pct,coverage_pct" for external plotting.
std::string coverage_csv(const CampaignResult& res, std::size_t points = 100);

/// Per-fault-class breakdown: the campaign result joined back against the
/// fault list it ran (counts, detection rate and mean detection time per
/// FaultKind).  The "overview tables" of the paper's ch. III.
std::string class_breakdown(const CampaignResult& res,
                            const lift::FaultList& faults);

} // namespace catlift::anafault
