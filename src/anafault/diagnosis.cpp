#include "anafault/diagnosis.h"

#include <algorithm>
#include <cmath>

namespace catlift::anafault {

using netlist::Circuit;
using spice::Simulator;
using spice::Waveforms;

FaultDictionary FaultDictionary::build(const Circuit& ckt,
                                       const lift::FaultList& faults,
                                       const DictionaryOptions& opt) {
    require(!opt.observed.empty(), "dictionary: no observed nodes");
    require(opt.samples >= 2, "dictionary: need at least 2 samples");
    netlist::TranSpec ts;
    if (opt.tran) {
        ts = *opt.tran;
    } else {
        require(ckt.tran.has_value(),
                "dictionary: no .tran card and no explicit TranSpec");
        ts = *ckt.tran;
    }

    FaultDictionary dict;
    dict.observed_ = opt.observed;
    for (std::size_t i = 0; i < opt.samples; ++i) {
        dict.sample_times_.push_back(
            ts.tstart + (ts.tstop - ts.tstart) *
                            static_cast<double>(i + 1) /
                            static_cast<double>(opt.samples));
    }

    // Fault-free signature.
    {
        Simulator sim(ckt, opt.sim);
        dict.nominal_signature_ = dict.signature_of(sim.tran(ts));
    }

    for (const lift::Fault& f : faults.faults) {
        try {
            const Circuit faulty = inject(ckt, f, opt.injection);
            Simulator sim(faulty, opt.sim);
            DictionaryEntry e;
            e.fault = f;
            e.signature = dict.signature_of(sim.tran(ts));
            dict.entries_.push_back(std::move(e));
        } catch (const Error&) {
            // Unsimulatable fault: skip (cannot be diagnosed by response).
        }
    }
    return dict;
}

std::vector<double> FaultDictionary::signature_of(const Waveforms& wf) const {
    std::vector<double> sig;
    sig.reserve(observed_.size() * sample_times_.size());
    for (const std::string& node : observed_) {
        require(wf.has(node), "dictionary: response lacks node " + node);
        for (double t : sample_times_) sig.push_back(wf.at(node, t));
    }
    return sig;
}

namespace {

double rms_distance(const std::vector<double>& a,
                    const std::vector<double>& b) {
    require(a.size() == b.size() && !a.empty(),
            "dictionary: signature size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

} // namespace

std::vector<DiagnosisMatch> FaultDictionary::diagnose(
    const Waveforms& observed, std::size_t top_k) const {
    const std::vector<double> sig = signature_of(observed);
    std::vector<DiagnosisMatch> matches;
    matches.reserve(entries_.size());
    for (const DictionaryEntry& e : entries_)
        matches.push_back({&e, rms_distance(sig, e.signature)});
    std::sort(matches.begin(), matches.end(),
              [](const DiagnosisMatch& a, const DiagnosisMatch& b) {
                  return a.distance < b.distance;
              });
    if (matches.size() > top_k) matches.resize(top_k);
    return matches;
}

double FaultDictionary::distance_to_nominal(const Waveforms& observed) const {
    return rms_distance(signature_of(observed), nominal_signature_);
}

} // namespace catlift::anafault
