// catlift/anafault/retry.h
//
// The retry/degradation ladder of the failure-containment layer: a fault
// whose simulation fails (non-convergence, singular pivot, exhausted
// budget, injected failure) is re-attempted with progressively more
// conservative solver configurations before the campaign gives up on it.
// The rungs trade speed for robustness in the order the speed was added:
//
//   attempt 0  the campaign's own configuration
//   attempt 1  modified-Newton bypass off (every solve factors fresh)
//   attempt 2  + fixed-grid transient (no LTE stride growth)
//   attempt 3  + dense kernel (full-pivot dense LU, no shared ordering)
//   attempt 4+ + gmin raised x10 per further attempt
//
// A fault that exhausts every allowed attempt retires with the
// `quarantined` verdict -- recorded, persisted (store v6), carried across
// revisions, and reported separately from `failed` (see
// docs/robustness.md for the taxonomy).  Each attempt is recorded in
// FaultSimResult::retry_log so the escalation is auditable per fault.

#pragma once

#include "spice/engine.h"

#include <string>

namespace catlift::anafault {

/// Degraded re-attempts allowed after the first failure.  4 walks the
/// whole ladder above; 0 disables retries (a failure retires `failed`
/// immediately, the pre-containment behavior).
inline constexpr int kDefaultMaxRetries = 4;

/// Solver configuration of the given attempt (0 = `base` unchanged).
/// Rungs accumulate: attempt 3 is no-bypass + fixed-grid + dense.
spice::SimOptions degrade_sim(const spice::SimOptions& base, int attempt);

/// Human-readable rung name for logs/events: "base", "no-bypass",
/// "fixed-grid", "dense", "gmin-x10", "gmin-x100", ...
std::string attempt_label(int attempt);

/// Append one failed attempt to a retry log ("attempt K [rung]: error").
void log_attempt(std::string& retry_log, int attempt,
                 const std::string& error);

} // namespace catlift::anafault
