#include "anafault/dc_campaign.h"

#include "batch/collapse.h"
#include "batch/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace catlift::anafault {

using netlist::Circuit;

std::size_t DcScreenResult::detected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const DcFaultResult& r) { return r.detected; }));
}

double DcScreenResult::coverage() const {
    if (results.empty()) return 0.0;
    return 100.0 * static_cast<double>(detected()) /
           static_cast<double>(results.size());
}

std::vector<int> DcScreenResult::undetected_ids() const {
    std::vector<int> out;
    for (const DcFaultResult& r : results)
        if (!r.detected) out.push_back(r.fault_id);
    return out;
}

DcScreenResult run_dc_screen(const Circuit& ckt,
                             const lift::FaultList& faults,
                             const DcScreenOptions& opt) {
    DcScreenResult res;

    spice::Simulator nominal(ckt, opt.sim);
    const spice::DcResult nom_op = nominal.dc_op();
    require(nom_op.converged, "dc screen: nominal operating point failed");
    res.nominal_op = nom_op.voltages;
    res.nominal_iterations = nom_op.iterations;
    for (const std::string& n : opt.observed)
        require(res.nominal_op.count(n) > 0,
                "dc screen: observed node missing: " + n);

    const std::size_t n_faults = faults.size();
    res.results.resize(n_faults);
    res.batch.threads = std::max(1u, opt.threads);

    // One solve per electrical-effect class, verdict fanned out.
    const std::vector<batch::CollapsedClass> classes =
        opt.collapse ? batch::collapse(faults.faults)
                     : batch::singleton_classes(n_faults);
    const std::vector<batch::Job> jobs = batch::class_jobs(
        classes,
        [&](std::size_t m) { return faults.faults[m].probability; });

    const std::vector<char> is_rep =
        batch::representative_mask(classes, n_faults);
    std::atomic<std::size_t> warm_hits{0}, nr_saved{0};
    const batch::SchedulerStats sstats = batch::run_classes(
        batch::Scheduler(opt.threads), classes, jobs, res.results,
        [&](std::size_t rep) {
            const lift::Fault& f = faults.faults[rep];
            DcFaultResult r;
            try {
                const Circuit faulty = inject(ckt, f, opt.injection);
                spice::Simulator sim(faulty, opt.sim);
                const spice::DcResult op = opt.warm_start
                                               ? sim.dc_op(res.nominal_op)
                                               : sim.dc_op();
                r.converged = op.converged;
                r.nr_iterations = op.iterations;
                r.strategy = op.strategy;
                if (op.strategy == "warm") {
                    warm_hits.fetch_add(1, std::memory_order_relaxed);
                    // Saved vs the nominal circuit's own cold cost -- the
                    // best available baseline for a one-shot faulty solve.
                    if (res.nominal_iterations > op.iterations)
                        nr_saved.fetch_add(
                            static_cast<std::size_t>(res.nominal_iterations -
                                                     op.iterations),
                            std::memory_order_relaxed);
                }
                if (op.converged) {
                    for (const std::string& n : opt.observed) {
                        const double dv = std::fabs(op.voltages.at(n) -
                                                    res.nominal_op.at(n));
                        r.max_deviation = std::max(r.max_deviation, dv);
                    }
                    r.detected = r.max_deviation > opt.v_tol;
                }
            } catch (const Error&) {
                r.converged = false;
            }
            return r;
        },
        [&](const DcFaultResult& verdict, std::size_t m) {
            DcFaultResult copy = verdict;
            copy.fault_id = faults.faults[m].id;
            copy.description = faults.faults[m].describe();
            // Kernel cost stays attributed to the class representative.
            if (!is_rep[m]) copy.nr_iterations = 0;
            return copy;
        });
    res.batch.classes = classes.size();
    res.batch.collapsed = n_faults - classes.size();
    res.batch.scheduled = sstats.executed;
    res.batch.steals = sstats.steals;
    res.batch.warm_start_solves = warm_hits.load();
    res.batch.nr_saved_warm = nr_saved.load();
    return res;
}

} // namespace catlift::anafault
