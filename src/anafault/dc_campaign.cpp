#include "anafault/dc_campaign.h"

#include "anafault/campaign.h"
#include "batch/collapse.h"
#include "batch/scheduler.h"
#include "netlist/writer.h"
#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>

namespace catlift::anafault {

using netlist::Circuit;

namespace {

const char* dc_verdict(const DcFaultResult& r) {
    if (r.detected) return "detected";
    if (r.converged) return "undetected";
    return r.quarantined ? "quarantined" : "failed";
}

/// DC counterpart of the transient runner's publish_fault_obs: span args
/// mirror the registry increments exactly.
void publish_dc_fault_obs(obs::Span& sp, const DcFaultResult& r,
                          const std::string& signature) {
    const unsigned mask = obs::enabled_mask();
    const bool ev = obs::events_enabled();
    if (mask == 0 && !ev) {
        sp.end();
        return;
    }
    const auto i64 = [](auto v) { return static_cast<std::int64_t>(v); };
    if (mask & obs::kTracingBit) {
        sp.arg("fault_id", i64(r.fault_id));
        sp.arg("signature", signature);
        sp.arg("verdict", std::string(dc_verdict(r)));
        sp.arg("max_deviation_v", r.max_deviation);
        sp.arg("strategy", r.strategy);
        sp.arg("nr_iterations", i64(std::max(0, r.nr_iterations)));
        sp.arg("symbolic_cache_hits", i64(r.symbolic_cache_hits));
        sp.arg("attempts", i64(r.attempts));
    }
    sp.end();
    if (mask & obs::kMetricsBit) {
        obs::Registry& reg = obs::Registry::global();
        reg.counter("campaign.retired").add(1);
        if (r.detected) reg.counter("campaign.detected").add(1);
        reg.counter("campaign.nr_iterations")
            .add(static_cast<std::uint64_t>(std::max(0, r.nr_iterations)));
        reg.counter("campaign.symbolic_cache_hits")
            .add(r.symbolic_cache_hits);
    }
    if (ev)
        obs::emit_event(
            "fault_retired",
            {obs::arg("fault_id", i64(r.fault_id)),
             obs::arg("verdict", std::string(dc_verdict(r)))});
}

/// DC twin of the transient runner's simulate_with_retries: run one
/// faulty operating point through the retry/degradation ladder
/// (anafault/retry.h) until an attempt converges or the ladder is
/// exhausted (-> quarantined).
///
/// The deviation measurement validates the faulty operating point's node
/// set up front instead of indexing it blind: injection can legitimately
/// leave an observed node out of the faulty circuit (an open that
/// isolates it, a short that merges it away), and the historical
/// `op.voltages.at(n)` threw std::out_of_range -- which the old
/// `catch (const Error&)` did not catch, so one such fault killed the
/// whole campaign.  A missing node is a deterministic measurement gap,
/// not a solver failure: the fault retires `failed` without burning
/// ladder attempts.
DcFaultResult solve_with_retries(const Circuit& faulty,
                                 const DcScreenOptions& opt,
                                 const spice::SimOptions& base_sim,
                                 const std::map<std::string, double>& nom_op,
                                 int nominal_iterations, int fault_id,
                                 std::atomic<std::size_t>& retries,
                                 std::atomic<std::size_t>& warm_hits,
                                 std::atomic<std::size_t>& nr_saved) {
    const int attempts_allowed = 1 + std::max(0, opt.max_retries);
    DcFaultResult r;
    std::string retry_log;
    bool retryable = true;
    for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
        const spice::SimOptions asim =
            attempt == 0 ? base_sim : degrade_sim(base_sim, attempt);
        if (attempt > 0) {
            retries.fetch_add(1, std::memory_order_relaxed);
            if (obs::metrics_enabled())
                obs::Registry::global().counter("campaign.retries").add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_retry",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(fault_id)),
                     obs::arg("attempt",
                              static_cast<std::int64_t>(attempt)),
                     obs::arg("config", attempt_label(attempt)),
                     obs::arg("error", r.error)});
        }
        r.converged = false;
        r.detected = false;
        r.max_deviation = 0.0;
        r.error.clear();
        try {
            spice::Simulator sim(faulty, asim);
            const spice::DcResult op =
                opt.warm_start ? sim.dc_op(nom_op) : sim.dc_op();
            r.converged = op.converged;
            r.nr_iterations = op.iterations;
            r.strategy = op.strategy;
            r.symbolic_cache_hits = sim.stats().symbolic_cache_hits;
            r.ordering_seconds = sim.stats().ordering_seconds;
            r.numeric_seconds = sim.stats().numeric_seconds;
            if (op.converged) {
                if (op.strategy == "warm") {
                    warm_hits.fetch_add(1, std::memory_order_relaxed);
                    // Saved vs the nominal circuit's own cold cost -- the
                    // best available baseline for a one-shot faulty solve.
                    if (nominal_iterations > op.iterations)
                        nr_saved.fetch_add(
                            static_cast<std::size_t>(nominal_iterations -
                                                     op.iterations),
                            std::memory_order_relaxed);
                }
                for (const std::string& n : opt.observed)
                    if (op.voltages.find(n) == op.voltages.end()) {
                        r.converged = false;
                        r.error = "observed node missing from faulty "
                                  "operating point: " + n;
                        retryable = false;
                    }
                if (r.converged) {
                    for (const std::string& n : opt.observed) {
                        const double dv = std::fabs(op.voltages.at(n) -
                                                    nom_op.at(n));
                        r.max_deviation = std::max(r.max_deviation, dv);
                    }
                    r.detected = r.max_deviation > opt.v_tol;
                }
            } else {
                r.error = "operating point did not converge";
            }
        } catch (const std::exception& e) {
            r.error = e.what();
        }
        r.attempts = static_cast<std::uint32_t>(attempt + 1);
        if (r.converged || !retryable) break;
        log_attempt(retry_log, attempt, r.error);
    }
    r.retry_log = std::move(retry_log);
    if (!r.converged && retryable && opt.max_retries > 0) {
        r.quarantined = true;
        if (obs::metrics_enabled())
            obs::Registry::global().counter("campaign.quarantined").add(1);
        if (obs::events_enabled())
            obs::emit_event(
                "fault_quarantined",
                {obs::arg("fault_id", static_cast<std::int64_t>(fault_id)),
                 obs::arg("attempts",
                          static_cast<std::int64_t>(r.attempts)),
                 obs::arg("error", r.error)});
    }
    return r;
}

} // namespace

std::size_t DcScreenResult::detected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const DcFaultResult& r) { return r.detected; }));
}

double DcScreenResult::coverage() const {
    if (results.empty()) return 0.0;
    return 100.0 * static_cast<double>(detected()) /
           static_cast<double>(results.size());
}

std::vector<int> DcScreenResult::undetected_ids() const {
    std::vector<int> out;
    for (const DcFaultResult& r : results)
        if (!r.detected) out.push_back(r.fault_id);
    return out;
}

std::size_t DcScreenResult::failed() const {
    return static_cast<std::size_t>(std::count_if(
        results.begin(), results.end(), [](const DcFaultResult& r) {
            return !r.converged && !r.quarantined;
        }));
}

std::size_t DcScreenResult::quarantined() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const DcFaultResult& r) { return r.quarantined; }));
}

std::uint64_t dc_screen_manifest(const Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const DcScreenOptions& opt) {
    std::uint64_t h =
        chain_fault_manifest(batch::fnv1a(netlist::write_spice(ckt)), faults);
    std::string o = "dc";
    const auto field = [&o](const std::string& v) {
        o += '|';
        o += v;
    };
    field(to_string(opt.injection.model));
    field(manifest_double(opt.injection.short_resistance));
    field(manifest_double(opt.injection.open_resistance));
    field(manifest_double(opt.v_tol));
    for (const std::string& n : opt.observed) field(n);
    o += sim_knob_signature(opt.sim);
    o += opt.share_symbolic ? "|sharesym" : "|nosharesym";
    o += opt.collapse ? "|collapse" : "|nocollapse";
    o += opt.warm_start ? "|warm" : "|cold";
    // The retry ladder can converge a fault the base config fails, so a
    // store written under a different retry depth is foreign.
    o += "|retries:" + std::to_string(opt.max_retries);
    return batch::fnv1a(o, h);
}

batch::FaultSimResult dc_to_record(const DcFaultResult& r) {
    batch::FaultSimResult rec;
    rec.fault_id = r.fault_id;
    rec.description = r.description;
    rec.probability = r.probability;
    rec.simulated = r.converged;
    if (r.detected) rec.detect_time = 0.0;
    rec.metric = r.max_deviation;
    rec.nr_iterations = static_cast<std::size_t>(
        std::max(0, r.nr_iterations));
    rec.symbolic_cache_hits = r.symbolic_cache_hits;
    rec.ordering_seconds = r.ordering_seconds;
    rec.numeric_seconds = r.numeric_seconds;
    rec.carried = r.carried;
    rec.error = r.error;
    rec.attempts = r.attempts;
    rec.quarantined = r.quarantined;
    rec.retry_log = r.retry_log;
    return rec;
}

DcFaultResult dc_from_record(const batch::FaultSimResult& rec) {
    DcFaultResult r;
    r.fault_id = rec.fault_id;
    r.description = rec.description;
    r.probability = rec.probability;
    r.converged = rec.simulated;
    r.detected = rec.detect_time.has_value();
    r.max_deviation = rec.metric;
    r.nr_iterations = static_cast<int>(rec.nr_iterations);
    r.strategy = rec.simulated ? "stored" : "";
    r.symbolic_cache_hits = rec.symbolic_cache_hits;
    r.ordering_seconds = rec.ordering_seconds;
    r.numeric_seconds = rec.numeric_seconds;
    r.carried = rec.carried;
    r.error = rec.error;
    r.attempts = rec.attempts;
    r.quarantined = rec.quarantined;
    r.retry_log = rec.retry_log;
    return r;
}

DcScreenResult run_dc_screen(const Circuit& ckt,
                             const lift::FaultList& faults,
                             const DcScreenOptions& opt) {
    DcScreenResult res;
    if (obs::events_enabled())
        obs::emit_event(
            "campaign_start",
            {obs::arg("analysis", std::string("dc")),
             obs::arg("faults", static_cast<std::int64_t>(faults.size())),
             obs::arg("threads", static_cast<std::int64_t>(
                                     std::max(1u, opt.threads)))});

    spice::SimOptions fault_sim = opt.sim;
    obs::Span nsp(obs::Phase::Nominal);
    spice::Simulator nominal(ckt, opt.sim);
    const spice::DcResult nom_op = nominal.dc_op();
    require(nom_op.converged, "dc screen: nominal operating point failed");
    res.nominal_op = nom_op.voltages;
    res.nominal_iterations = nom_op.iterations;
    res.batch.ordering_seconds = nominal.stats().ordering_seconds;
    res.batch.numeric_seconds = nominal.stats().numeric_seconds;
    // The nominal solve's kernel carries the campaign-shared symbolic
    // analysis (null on the dense path).
    if (opt.share_symbolic)
        fault_sim.symbolic_cache = nominal.symbolic_cache();
    nsp.end();
    for (const std::string& n : opt.observed)
        require(res.nominal_op.count(n) > 0,
                "dc screen: observed node missing: " + n);

    const std::size_t n_faults = faults.size();
    res.results.resize(n_faults);
    res.batch.threads = std::max(1u, opt.threads);
    std::vector<char> done(n_faults, 0);

    // Result store: records of a previous run of this exact screen.
    std::unique_ptr<batch::ResultStore> store;
    if (!opt.result_store.empty()) {
        const std::uint64_t manifest =
            opt.manifest_override ? *opt.manifest_override
                                  : dc_screen_manifest(ckt, faults, opt);
        if (!opt.resume) {
            std::error_code ec;
            std::filesystem::remove(opt.result_store, ec);
        }
        store = std::make_unique<batch::ResultStore>(
            opt.result_store, manifest, opt.store_durability);
        std::map<int, std::size_t> by_id;
        for (std::size_t i = 0; i < n_faults; ++i)
            by_id[faults.faults[i].id] = i;
        for (const batch::FaultSimResult& rec : store->loaded()) {
            const auto it = by_id.find(rec.fault_id);
            if (it == by_id.end() || done[it->second]) continue;
            res.results[it->second] = dc_from_record(rec);
            done[it->second] = 1;
            // Same provenance split as the transient runner: carried
            // records are not prior-run work of this screen.
            if (rec.carried)
                ++res.batch.carried_from_store;
            else
                ++res.batch.resumed;
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_resumed",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(rec.fault_id)),
                     obs::arg("carried",
                              static_cast<std::int64_t>(rec.carried))});
        }
    }
    const std::vector<char> resumed_here = done;

    // One solve per electrical-effect class, verdict fanned out.
    const std::vector<batch::CollapsedClass> classes =
        opt.collapse ? batch::collapse(faults.faults)
                     : batch::singleton_classes(n_faults);
    res.batch.classes = classes.size();
    std::vector<batch::Job> jobs = batch::class_jobs(
        classes,
        [&](std::size_t m) { return faults.faults[m].probability; });
    std::erase_if(jobs, [&](const batch::Job& j) {
        const auto& members = classes[j.index].members;
        return std::all_of(members.begin(), members.end(),
                           [&](std::size_t m) { return done[m] != 0; });
    });

    std::atomic<std::size_t> kernel_runs{0};
    std::atomic<std::size_t> warm_hits{0}, nr_saved{0};
    std::atomic<std::size_t> retries{0};
    std::atomic<std::size_t> store_errors{0};
    // Contained store append: an I/O failure must not fail the fault --
    // its verdict is already computed and stays in memory; a later resume
    // re-simulates it.  Counted and published, never rethrown.
    auto safe_append = [&](const DcFaultResult& r) {
        if (!store) return;
        try {
            store->append(dc_to_record(r));
        } catch (const std::exception& e) {
            store_errors.fetch_add(1, std::memory_order_relaxed);
            if (obs::metrics_enabled())
                obs::Registry::global()
                    .counter("store.append_errors")
                    .add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "store_error",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(r.fault_id)),
                     obs::arg("error", std::string(e.what()))});
        }
    };
    auto run_class = [&](std::size_t c) {
        const std::vector<std::size_t>& members = classes[c].members;
        const DcFaultResult* verdict = nullptr;
        for (std::size_t m : members)
            if (done[m]) {
                verdict = &res.results[m];
                break;
            }
        if (!verdict) {
            const std::size_t rep =
                *std::find_if(members.begin(), members.end(),
                              [&](std::size_t m) { return !done[m]; });
            const lift::Fault& f = faults.faults[rep];
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_started",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(f.id))});
            obs::Span sp(obs::Phase::FaultSim);
            DcFaultResult r;
            try {
                const Circuit faulty = inject(ckt, f, opt.injection);
                kernel_runs.fetch_add(1, std::memory_order_relaxed);
                r = solve_with_retries(faulty, opt, fault_sim,
                                       res.nominal_op,
                                       res.nominal_iterations, f.id,
                                       retries, warm_hits, nr_saved);
            } catch (const std::exception& e) {
                // Injection failure (or any exception the ladder did not
                // already contain): injection is deterministic, so the
                // retry ladder has nothing to offer -- retire `failed`.
                r.converged = false;
                r.error = e.what();
            }
            r.fault_id = f.id;
            r.description = f.describe();
            r.probability = f.probability;
            res.results[rep] = std::move(r);
            done[rep] = 1;
            safe_append(res.results[rep]);
            publish_dc_fault_obs(sp, res.results[rep],
                                 batch::effect_signature(f));
            verdict = &res.results[rep];
        }
        for (std::size_t m : members) {
            if (done[m]) continue;
            DcFaultResult copy = *verdict;
            copy.fault_id = faults.faults[m].id;
            copy.description = faults.faults[m].describe();
            copy.probability = faults.faults[m].probability;
            // Kernel cost -- and retry cost -- stays attributed to the
            // class representative; the verdict (quarantined included)
            // fans out.
            copy.nr_iterations = 0;
            copy.symbolic_cache_hits = 0;
            copy.ordering_seconds = 0.0;
            copy.numeric_seconds = 0.0;
            copy.attempts = 1;
            copy.retry_log.clear();
            res.results[m] = std::move(copy);
            done[m] = 1;
            safe_append(res.results[m]);
            if (obs::metrics_enabled())
                obs::Registry::global()
                    .counter("campaign.fanned_out")
                    .add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_retired",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(
                                  faults.faults[m].id)),
                     obs::arg("verdict",
                              std::string(dc_verdict(res.results[m]))),
                     obs::arg("via", std::string("collapse"))});
        }
    };

    const batch::Scheduler scheduler(opt.threads);
    // RecordAndContinue: the per-fault handling above already retires
    // every failure; an exception still reaching the scheduler is recorded
    // and the remaining faults keep their verdicts.
    const batch::SchedulerStats sstats =
        scheduler.run(jobs, run_class, batch::ErrorPolicy::RecordAndContinue);
    res.batch.collapsed = n_faults - classes.size();
    res.batch.scheduled = kernel_runs.load();
    res.batch.steals = sstats.steals;
    res.batch.warm_start_solves = warm_hits.load();
    res.batch.nr_saved_warm = nr_saved.load();
    res.batch.job_errors = sstats.failed_jobs;
    res.batch.retries = retries.load();
    res.batch.store_errors = store_errors.load();

    for (std::size_t i = 0; i < n_faults; ++i) {
        if (resumed_here[i]) continue;
        const DcFaultResult& r = res.results[i];
        res.batch.symbolic_cache_hits += r.symbolic_cache_hits;
        res.batch.ordering_seconds += r.ordering_seconds;
        res.batch.numeric_seconds += r.numeric_seconds;
        if (r.quarantined) ++res.batch.quarantined;
    }
    if (obs::events_enabled())
        obs::emit_event(
            "campaign_end",
            {obs::arg("faults", static_cast<std::int64_t>(n_faults)),
             obs::arg("detected",
                      static_cast<std::int64_t>(res.detected())),
             obs::arg("scheduled",
                      static_cast<std::int64_t>(res.batch.scheduled)),
             obs::arg("resumed",
                      static_cast<std::int64_t>(res.batch.resumed)),
             obs::arg("carried_from_store",
                      static_cast<std::int64_t>(
                          res.batch.carried_from_store))});
    return res;
}

} // namespace catlift::anafault
