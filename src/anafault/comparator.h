// catlift/anafault/comparator.h
//
// Post-processing phase of the fault simulation cycle: compare the faulty
// response against the fault-free (nominal) one and decide when -- if ever
// -- the fault becomes detectable.
//
// Detection criterion (Fig. 5 caption: "a tolerance of 2V for the
// amplitude and 0.2 us for the time"): the faulty response is compared
// point-wise against the nominal one; amplitude deviations beyond v_tol
// are mismatches, and the fault is detected at the instant the cumulative
// mismatch duration exceeds t_tol.  Sub-t_tol phase wobble is forgiven;
// frequency shifts and stuck outputs accumulate mismatch every cycle.
// (See comparator.cpp for why the alternative tolerance-window reading is
// inconsistent with the paper's Fig. 5 coverage.)

#pragma once

#include "spice/waveform.h"

#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct DetectionSpec {
    double v_tol = 2.0;      ///< amplitude tolerance [V] (paper: 2 V)
    double t_tol = 0.2e-6;   ///< time tolerance [s]     (paper: 0.2 us)
    std::vector<std::string> observed = {"11"};  ///< monitored nodes

    /// Optional supply-current observation (IDDQ style): names of voltage
    /// sources whose branch current is monitored with `i_tol`.  Catches
    /// shorts that ideal supplies would otherwise mask (e.g. a VDD-GND
    /// bridge holds every node voltage nominal while drawing amperes).
    std::vector<std::string> observed_supplies;
    double i_tol = 10e-3;    ///< current tolerance [A]
};

/// Earliest detection time over all observed nodes, or nullopt if the
/// fault stays within tolerance for the whole run.
std::optional<double> detect_time(const spice::Waveforms& nominal,
                                  const spice::Waveforms& faulty,
                                  const DetectionSpec& spec);

/// Detection time on a single node.
std::optional<double> detect_time_on(const spice::Waveforms& nominal,
                                     const spice::Waveforms& faulty,
                                     const std::string& node,
                                     const DetectionSpec& spec);

} // namespace catlift::anafault
