// catlift/anafault/comparator.h
//
// Post-processing phase of the fault simulation cycle: compare the faulty
// response against the fault-free (nominal) one and decide when -- if ever
// -- the fault becomes detectable.
//
// Detection criterion (Fig. 5 caption: "a tolerance of 2V for the
// amplitude and 0.2 us for the time"): the faulty response is compared
// point-wise against the nominal one; amplitude deviations beyond v_tol
// are mismatches, and the fault is detected at the instant the cumulative
// mismatch duration exceeds t_tol.  Sub-t_tol phase wobble is forgiven;
// frequency shifts and stuck outputs accumulate mismatch every cycle.
// (See comparator.cpp for why the alternative tolerance-window reading is
// inconsistent with the paper's Fig. 5 coverage.)

#pragma once

#include "spice/ac.h"
#include "spice/waveform.h"

#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct DetectionSpec {
    double v_tol = 2.0;      ///< amplitude tolerance [V] (paper: 2 V)
    double t_tol = 0.2e-6;   ///< time tolerance [s]     (paper: 0.2 us)
    std::vector<std::string> observed = {"11"};  ///< monitored nodes

    /// Optional supply-current observation (IDDQ style): names of voltage
    /// sources whose branch current is monitored with `i_tol`.  Catches
    /// shorts that ideal supplies would otherwise mask (e.g. a VDD-GND
    /// bridge holds every node voltage nominal while drawing amperes).
    std::vector<std::string> observed_supplies;
    double i_tol = 10e-3;    ///< current tolerance [A]
};

/// Earliest detection time over all observed nodes, or nullopt if the
/// fault stays within tolerance for the whole run.
std::optional<double> detect_time(const spice::Waveforms& nominal,
                                  const spice::Waveforms& faulty,
                                  const DetectionSpec& spec);

/// Detection time on a single node.
std::optional<double> detect_time_on(const spice::Waveforms& nominal,
                                     const spice::Waveforms& faulty,
                                     const std::string& node,
                                     const DetectionSpec& spec);

/// Incremental form of detect_time(): fed one accepted sample at a time
/// while the faulty transient is still running, it reports detection the
/// instant the cumulative mismatch duration first exceeds t_tol on any
/// observed channel.  This is what lets the batch engine abort a faulty
/// run early (ERASER-style) -- the verdict and detection instant are
/// identical to the post-hoc detect_time() over the full run (tested).
///
/// The detector holds a reference to the nominal waveforms; keep them
/// alive for its lifetime.
class StreamingDetector {
public:
    StreamingDetector(const spice::Waveforms& nominal,
                      const DetectionSpec& spec);

    /// Consume every sample appended to `faulty` since the last call.
    /// Returns detected(); once true, further feeds are no-ops.
    bool feed(const spice::Waveforms& faulty);

    bool detected() const { return detect_time_.has_value(); }
    std::optional<double> detect_time() const { return detect_time_; }

private:
    struct Channel {
        std::string trace;         ///< waveform trace name
        double tol = 0.0;          ///< amplitude tolerance (V or A)
        bool required = true;      ///< missing trace is an error
        bool present = true;       ///< trace exists in the faulty run
        bool checked = false;      ///< presence verified on first feed
        double accumulated = 0.0;  ///< mismatch duration so far [s]
    };

    const spice::Waveforms* nominal_;
    double t_tol_;
    std::vector<Channel> channels_;
    std::size_t next_ = 1;  ///< first unprocessed faulty sample index
    std::optional<double> detect_time_;
};

/// Frequency-domain counterpart of StreamingDetector: fed the partial
/// AcResult of a faulty sweep one (or more) frequency points at a time, it
/// reports detection the instant the magnitude response first deviates
/// from the nominal one by more than `db_tol` on any observed node.  Both
/// sweeps must share the AcSpec (point-aligned frequency axes).  The AC
/// fault campaign hooks this into spice::AcPointObserver so a faulty sweep
/// stops mid-axis at its first violation; the verdict and first-violation
/// frequency are identical to scanning the full sweep post hoc.
///
/// The detector holds a reference to the nominal result; keep it alive
/// for the detector's lifetime.
class AcStreamingDetector {
public:
    AcStreamingDetector(const spice::AcResult& nominal,
                        std::vector<std::string> observed, double db_tol);

    /// Consume every frequency point appended to `faulty` since the last
    /// call.  Returns detected().
    bool feed(const spice::AcResult& faulty);

    bool detected() const { return detect_freq_.has_value(); }
    std::optional<double> detect_freq() const { return detect_freq_; }
    /// Worst magnitude deviation over the points fed so far [dB] (with an
    /// early-aborted sweep, over the points before the abort).
    double max_deviation_db() const { return max_dev_; }

private:
    const spice::AcResult* nominal_;
    std::vector<std::string> observed_;
    double db_tol_;
    std::size_t next_ = 0;  ///< first unprocessed frequency point index
    std::optional<double> detect_freq_;
    double max_dev_ = 0.0;
};

} // namespace catlift::anafault
