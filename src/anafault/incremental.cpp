#include "anafault/incremental.h"

#include "batch/result_store.h"
#include "obs/obs.h"

#include <filesystem>
#include <map>
#include <set>
#include <sstream>

namespace catlift::anafault {

using netlist::Circuit;

namespace {

/// Baseline verdicts keyed by electrical signature.  The store records
/// carry fault ids, the baseline fault list maps ids to signatures; the
/// first record per id wins, mirroring the resume path of run_campaign.
std::map<std::string, const batch::FaultSimResult*> baseline_by_signature(
    const lift::FaultList& baseline, const batch::StoreSnapshot& snap) {
    std::map<int, const batch::FaultSimResult*> by_id;
    for (const batch::FaultSimResult& r : snap.records)
        by_id.emplace(r.fault_id, &r);
    std::map<std::string, const batch::FaultSimResult*> by_sig;
    for (const lift::Fault& f : baseline.faults) {
        const auto it = by_id.find(f.id);
        if (it != by_id.end())
            by_sig[lift::electrical_signature(f)] = it->second;
    }
    return by_sig;
}

/// Rebind a baseline record to the revision fault it is carried for: the
/// identity (id, description, probability) becomes the revision's, the
/// verdict and its original kernel cost stay with the record.
batch::FaultSimResult carry(const batch::FaultSimResult& baseline_record,
                            const lift::Fault& f) {
    batch::FaultSimResult r = baseline_record;
    r.fault_id = f.id;
    r.description = f.describe();
    r.probability = f.probability;
    r.carried = true;
    return r;
}

/// The analysis-independent core: classify the revision against the
/// baseline, validate the baseline store against `baseline_manifest`, and
/// split the revision into carried records and the subset to simulate.
struct CarrySplit {
    std::map<int, batch::FaultSimResult> carried_by_id;
    lift::FaultList subset;
    IncrementalStats inc;
};

CarrySplit split_for_carry(const lift::FaultList& baseline,
                           const lift::FaultList& revision, double rel_tol,
                           const std::string& baseline_store,
                           std::uint64_t baseline_manifest) {
    CarrySplit out;

    // Classify the revision against the baseline.  The diff's carried
    // pair list is the single source of truth for the carry/resimulate
    // split: everything not in it (added, probability-changed) is
    // resimulated.
    const lift::FaultListDiff diff =
        lift::diff_faultlists(baseline, revision, rel_tol);
    out.inc.removed = diff.only_a.size();
    out.inc.added = diff.only_b.size();
    out.inc.probability_changed = diff.probability_changed.size();
    std::set<std::string> carried_sigs;
    for (const auto& [a, b] : diff.carried)
        carried_sigs.insert(lift::electrical_signature(b));

    // The baseline store is only trusted when its manifest proves it was
    // written by this circuit + baseline fault list + knob set.
    std::map<std::string, const batch::FaultSimResult*> by_sig;
    const std::optional<batch::StoreSnapshot> snap =
        batch::load_store(baseline_store);
    if (!snap) {
        out.inc.carry_block_reason = baseline_store.empty()
                                         ? "no baseline store given"
                                         : "baseline store missing or not a "
                                           "current-version store";
    } else if (snap->manifest != baseline_manifest) {
        out.inc.carry_block_reason =
            "baseline store manifest does not match this circuit / baseline "
            "fault list / numeric+kernel knobs";
    } else {
        out.inc.baseline_manifest_matched = true;
        by_sig = baseline_by_signature(baseline, *snap);
    }

    // Split the revision: carried verdicts vs the subset to simulate.
    out.subset.circuit = revision.circuit;
    for (const lift::Fault& f : revision.faults) {
        const std::string sig = lift::electrical_signature(f);
        const batch::FaultSimResult* rec = nullptr;
        if (carried_sigs.count(sig)) {
            const auto it = by_sig.find(sig);
            if (it != by_sig.end()) rec = it->second;
        }
        if (rec)
            out.carried_by_id.emplace(f.id, carry(*rec, f));
        else
            out.subset.faults.push_back(f);
    }
    out.inc.carried = out.carried_by_id.size();
    out.inc.resimulated = out.subset.faults.size();
    if (obs::metrics_enabled())
        obs::Registry::global()
            .counter("campaign.carried_from_baseline")
            .add(out.inc.carried);
    if (obs::events_enabled()) {
        for (const auto& [id, r] : out.carried_by_id)
            obs::emit_event(
                "fault_carried",
                {obs::arg("fault_id", static_cast<std::int64_t>(id)),
                 obs::arg("verdict",
                          std::string(r.detect_time    ? "detected"
                                      : r.simulated   ? "undetected"
                                      : r.quarantined ? "quarantined"
                                                      : "failed"))});
        obs::emit_event(
            "incremental_carry",
            {obs::arg("carried",
                      static_cast<std::int64_t>(out.inc.carried)),
             obs::arg("resimulated",
                      static_cast<std::int64_t>(out.inc.resimulated)),
             obs::arg("added", static_cast<std::int64_t>(out.inc.added)),
             obs::arg("removed",
                      static_cast<std::int64_t>(out.inc.removed)),
             obs::arg("probability_changed",
                      static_cast<std::int64_t>(
                          out.inc.probability_changed)),
             obs::arg("carry_block_reason", out.inc.carry_block_reason)});
    }
    return out;
}

/// Seed the merged store with the carried records, bound to the revision
/// manifest, so a crash mid-subset never costs them and the merged store
/// resumes -- and serves as the next revision's baseline -- as if a cold
/// full campaign had written it.
void seed_merged_store(const std::string& path, std::uint64_t manifest,
                       bool resume,
                       const std::map<int, batch::FaultSimResult>& carried,
                       batch::Durability durability) {
    if (!resume) {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    batch::ResultStore store(path, manifest, durability);
    std::set<int> present;
    for (const batch::FaultSimResult& r : store.loaded())
        present.insert(r.fault_id);
    for (const auto& [id, r] : carried)
        if (!present.count(id)) store.append(r);
}

} // namespace

IncrementalResult run_incremental_campaign(const Circuit& ckt,
                                           const lift::FaultList& baseline,
                                           const lift::FaultList& revision,
                                           const IncrementalOptions& opt) {
    IncrementalResult res;
    require(!(opt.campaign.resume && opt.campaign.result_store.empty()),
            "incremental campaign: resume needs a merged result store path");

    CarrySplit split =
        split_for_carry(baseline, revision, opt.rel_tol, opt.baseline_store,
                        campaign_manifest(ckt, baseline, opt.campaign));
    res.inc = split.inc;

    CampaignOptions copt = opt.campaign;
    if (!copt.result_store.empty()) {
        const std::uint64_t manifest =
            campaign_manifest(ckt, revision, opt.campaign);
        seed_merged_store(copt.result_store, manifest, opt.campaign.resume,
                          split.carried_by_id, copt.store_durability);
        // The subset campaign reopens the merged store under the revision
        // manifest: its own finished records resume, carried ids (not in
        // the subset) pass through untouched.
        copt.resume = true;
        copt.manifest_override = manifest;
    }

    CampaignResult sub = run_campaign(ckt, split.subset, copt);

    // Merge in revision order.  Nominal run, kernel-cost aggregates and
    // batch counters describe the work this run actually performed.
    std::map<int, const FaultSimResult*> sub_by_id;
    for (const FaultSimResult& r : sub.results)
        sub_by_id.emplace(r.fault_id, &r);
    std::vector<FaultSimResult> merged;
    merged.reserve(revision.size());
    for (const lift::Fault& f : revision.faults) {
        const auto carried_it = split.carried_by_id.find(f.id);
        if (carried_it != split.carried_by_id.end()) {
            merged.push_back(carried_it->second);
            continue;
        }
        const auto it = sub_by_id.find(f.id);
        require(it != sub_by_id.end(),
                "incremental campaign: missing result for fault " +
                    std::to_string(f.id));
        merged.push_back(*it->second);
    }
    res.campaign = std::move(sub);
    res.campaign.results = std::move(merged);
    // The merged result carries the baseline's verdicts for untouched
    // faults; report them under the cross-revision figure, never as
    // current-process work (see BatchStats' counter-reset contract).
    res.campaign.batch.carried_from_store += split.inc.carried;
    return res;
}

IncrementalAcResult run_incremental_ac_campaign(
    const Circuit& ckt, const lift::FaultList& baseline,
    const lift::FaultList& revision, const IncrementalAcOptions& opt) {
    IncrementalAcResult res;
    require(!(opt.campaign.resume && opt.campaign.result_store.empty()),
            "incremental ac campaign: resume needs a merged store path");

    CarrySplit split =
        split_for_carry(baseline, revision, opt.rel_tol, opt.baseline_store,
                        ac_campaign_manifest(ckt, baseline, opt.campaign));
    res.inc = split.inc;

    AcCampaignOptions copt = opt.campaign;
    if (!copt.result_store.empty()) {
        const std::uint64_t manifest =
            ac_campaign_manifest(ckt, revision, opt.campaign);
        seed_merged_store(copt.result_store, manifest, opt.campaign.resume,
                          split.carried_by_id, copt.store_durability);
        copt.resume = true;
        copt.manifest_override = manifest;
    }

    AcCampaignResult sub = run_ac_campaign(ckt, split.subset, copt);

    std::map<int, const AcFaultResult*> sub_by_id;
    for (const AcFaultResult& r : sub.results)
        sub_by_id.emplace(r.fault_id, &r);
    std::vector<AcFaultResult> merged;
    merged.reserve(revision.size());
    for (const lift::Fault& f : revision.faults) {
        const auto carried_it = split.carried_by_id.find(f.id);
        if (carried_it != split.carried_by_id.end()) {
            merged.push_back(ac_from_record(carried_it->second));
            continue;
        }
        const auto it = sub_by_id.find(f.id);
        require(it != sub_by_id.end(),
                "incremental ac campaign: missing result for fault " +
                    std::to_string(f.id));
        merged.push_back(*it->second);
    }
    res.campaign = std::move(sub);
    res.campaign.results = std::move(merged);
    res.campaign.batch.carried_from_store += split.inc.carried;
    return res;
}

IncrementalDcResult run_incremental_dc_screen(const Circuit& ckt,
                                              const lift::FaultList& baseline,
                                              const lift::FaultList& revision,
                                              const IncrementalDcOptions& opt) {
    IncrementalDcResult res;
    require(!(opt.campaign.resume && opt.campaign.result_store.empty()),
            "incremental dc screen: resume needs a merged store path");

    CarrySplit split =
        split_for_carry(baseline, revision, opt.rel_tol, opt.baseline_store,
                        dc_screen_manifest(ckt, baseline, opt.campaign));
    res.inc = split.inc;

    DcScreenOptions copt = opt.campaign;
    if (!copt.result_store.empty()) {
        const std::uint64_t manifest =
            dc_screen_manifest(ckt, revision, opt.campaign);
        seed_merged_store(copt.result_store, manifest, opt.campaign.resume,
                          split.carried_by_id, copt.store_durability);
        copt.resume = true;
        copt.manifest_override = manifest;
    }

    DcScreenResult sub = run_dc_screen(ckt, split.subset, copt);

    std::map<int, const DcFaultResult*> sub_by_id;
    for (const DcFaultResult& r : sub.results)
        sub_by_id.emplace(r.fault_id, &r);
    std::vector<DcFaultResult> merged;
    merged.reserve(revision.size());
    for (const lift::Fault& f : revision.faults) {
        const auto carried_it = split.carried_by_id.find(f.id);
        if (carried_it != split.carried_by_id.end()) {
            merged.push_back(dc_from_record(carried_it->second));
            continue;
        }
        const auto it = sub_by_id.find(f.id);
        require(it != sub_by_id.end(),
                "incremental dc screen: missing result for fault " +
                    std::to_string(f.id));
        merged.push_back(*it->second);
    }
    res.campaign = std::move(sub);
    res.campaign.results = std::move(merged);
    res.campaign.batch.carried_from_store += split.inc.carried;
    return res;
}

std::string incremental_summary(const IncrementalStats& inc,
                                std::size_t total) {
    std::ostringstream os;
    os << "incremental: carried " << inc.carried << "/" << total
       << ", resimulated " << inc.resimulated << " (added " << inc.added
       << ", changed " << inc.probability_changed << "), removed "
       << inc.removed;
    if (!inc.carry_block_reason.empty())
        os << " [carry disabled: " << inc.carry_block_reason << "]";
    os << "\n";
    return os.str();
}

std::string incremental_summary(const IncrementalResult& res) {
    return incremental_summary(res.inc, res.campaign.results.size());
}

} // namespace catlift::anafault
