// catlift/anafault/ac_campaign.h
//
// AC fault simulation: the classical frequency-domain detection path of
// AnaFAULT's ancestors (ISPICE AC fault simulation [30][31], linear fault
// recognition from AC measurements [6]).  Each fault is injected, the
// small-signal response is swept, and the fault counts as detected when
// its magnitude response deviates from the nominal one by more than the
// dB tolerance anywhere in the sweep.
//
// The sweep is streamed through an AcStreamingDetector wired into the
// kernel's per-frequency-point observer: with early abort on (default) a
// faulty sweep stops at its first dB violation instead of computing the
// rest of the axis -- the frequency-domain twin of the transient
// campaign's ERASER-style abort.  Verdict and first-violation frequency
// are identical either way; only max_deviation_db is then reported up to
// the abort point.
//
// Like the transient campaign, the runner persists per-fault records into
// a crash-resumable result store (batch/result_store.h) bound to
// ac_campaign_manifest(), and shares the nominal kernel's symbolic
// analysis with every faulty variant; that makes it a drop-in backend for
// the incremental cross-revision engine (anafault/incremental.h).  In a
// store record detect_time carries the detection *frequency* [Hz] and
// metric the worst dB deviation; the solve strategy of a resumed record
// is not persisted.

#pragma once

#include "anafault/fault_models.h"
#include "anafault/retry.h"
#include "batch/result_store.h"
#include "batch/scheduler.h"
#include "lift/fault.h"
#include "netlist/netlist.h"
#include "spice/engine.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct AcCampaignOptions {
    InjectionOptions injection;
    spice::AcSpec sweep;
    std::vector<std::string> observed = {"out"};
    double db_tol = 3.0;  ///< magnitude deviation tolerance [dB]
    spice::SimOptions sim;
    /// Worker threads for the batch scheduler (1 = serial).
    // manifest-exempt: parallelism only changes wall-clock, never
    // which verdict a fault retires with.
    unsigned threads = 1;
    /// Sweep each electrical-effect equivalence class once.
    bool collapse = true;
    /// Stop each faulty sweep at its first dB-tolerance violation instead
    /// of computing every frequency point (verdicts are unchanged).
    bool early_abort = true;
    /// Share the nominal kernel's symbolic analysis (elimination order)
    /// with every faulty sweep; see CampaignOptions::share_symbolic.
    bool share_symbolic = true;
    /// Retry/degradation ladder (anafault/retry.h); see
    /// CampaignOptions::max_retries.  Verdict-affecting, in the manifest.
    int max_retries = kDefaultMaxRetries;
    /// Path of the append-only result store ("" disables persistence).
    // manifest-exempt: where results land, not what they are.
    std::string result_store;
    /// Durability of each store append (batch::Durability); not
    /// verdict-affecting, hence not in the manifest.
    // manifest-exempt: crash-durability of the store file only.
    batch::Durability store_durability = batch::Durability::Flush;
    /// Reuse results already in `result_store` from a previous (possibly
    /// crashed) run of the *same* campaign.
    // manifest-exempt: replays already-verified same-manifest records.
    bool resume = false;
    /// Bind the result store to this manifest instead of the campaign's
    /// own hash (set only by the incremental cross-revision engine).
    // manifest-exempt: IS the manifest binding; hashing it into the
    // hash it overrides would be circular.
    std::optional<std::uint64_t> manifest_override;
};

struct AcFaultResult {
    int fault_id = 0;
    std::string description;
    double probability = 0.0;
    bool simulated = false;
    std::string error;
    bool detected = false;
    double max_deviation_db = 0.0;       ///< worst deviation over the swept
                                         ///< points (up to the abort, if any)
    std::optional<double> detect_freq;   ///< frequency of first violation
    std::size_t points_saved = 0;        ///< sweep points skipped by abort
    double sim_seconds = 0.0;            ///< kernel wall time of the sweep
    std::size_t nr_iterations = 0;       ///< NR cost of the operating point
    std::size_t symbolic_cache_hits = 0; ///< kernel adopted the shared order
    double ordering_seconds = 0.0;       ///< sparse one-time analysis time
    double numeric_seconds = 0.0;        ///< sparse refactor time
    /// Verdict carried from a baseline store by the incremental engine.
    bool carried = false;
    std::uint32_t attempts = 1;  ///< simulation attempts (1 = no retry)
    /// The retry ladder was exhausted: every attempt failed.  Disjoint
    /// from plain `failed` (!simulated && !quarantined).
    bool quarantined = false;
    std::string retry_log;  ///< one entry per failed attempt
};

struct AcCampaignResult {
    spice::AcResult nominal;
    std::vector<AcFaultResult> results;
    batch::BatchStats batch;  ///< scheduler / collapse / abort counters

    std::size_t detected() const;
    double coverage() const;  ///< percent
    /// Faults that failed without exhausting the retry ladder.
    std::size_t failed() const;
    /// Faults retired by the retry ladder: every rung failed.
    std::size_t quarantined() const;
};

/// Run the AC campaign over a fault list.
AcCampaignResult run_ac_campaign(const netlist::Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const AcCampaignOptions& opt = {});

/// Manifest hash of the AC campaign (ckt, faults, opt): circuit text,
/// per-fault identity, sweep axis, detection knobs and every
/// verdict-determining numeric/kernel knob.  Same contract as
/// campaign_manifest() for the transient runner.
std::uint64_t ac_campaign_manifest(const netlist::Circuit& ckt,
                                   const lift::FaultList& faults,
                                   const AcCampaignOptions& opt = {});

/// Store-record round trip for one AC fault verdict (the incremental
/// engine carries these across layout revisions).
batch::FaultSimResult ac_to_record(const AcFaultResult& r);
AcFaultResult ac_from_record(const batch::FaultSimResult& rec);

} // namespace catlift::anafault
