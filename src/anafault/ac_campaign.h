// catlift/anafault/ac_campaign.h
//
// AC fault simulation: the classical frequency-domain detection path of
// AnaFAULT's ancestors (ISPICE AC fault simulation [30][31], linear fault
// recognition from AC measurements [6]).  Each fault is injected, the
// small-signal response is swept, and the fault counts as detected when
// its magnitude response deviates from the nominal one by more than the
// dB tolerance anywhere in the sweep.
//
// The sweep is streamed through an AcStreamingDetector wired into the
// kernel's per-frequency-point observer: with early abort on (default) a
// faulty sweep stops at its first dB violation instead of computing the
// rest of the axis -- the frequency-domain twin of the transient
// campaign's ERASER-style abort.  Verdict and first-violation frequency
// are identical either way; only max_deviation_db is then reported up to
// the abort point.

#pragma once

#include "anafault/fault_models.h"
#include "batch/scheduler.h"
#include "lift/fault.h"
#include "netlist/netlist.h"
#include "spice/engine.h"

#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct AcCampaignOptions {
    InjectionOptions injection;
    spice::AcSpec sweep;
    std::vector<std::string> observed = {"out"};
    double db_tol = 3.0;  ///< magnitude deviation tolerance [dB]
    spice::SimOptions sim;
    /// Worker threads for the batch scheduler (1 = serial).
    unsigned threads = 1;
    /// Sweep each electrical-effect equivalence class once.
    bool collapse = true;
    /// Stop each faulty sweep at its first dB-tolerance violation instead
    /// of computing every frequency point (verdicts are unchanged).
    bool early_abort = true;
};

struct AcFaultResult {
    int fault_id = 0;
    std::string description;
    bool simulated = false;
    std::string error;
    bool detected = false;
    double max_deviation_db = 0.0;       ///< worst deviation over the swept
                                         ///< points (up to the abort, if any)
    std::optional<double> detect_freq;   ///< frequency of first violation
    std::size_t points_saved = 0;        ///< sweep points skipped by abort
};

struct AcCampaignResult {
    spice::AcResult nominal;
    std::vector<AcFaultResult> results;
    batch::BatchStats batch;  ///< scheduler / collapse / abort counters

    std::size_t detected() const;
    double coverage() const;  ///< percent
};

/// Run the AC campaign over a fault list.
AcCampaignResult run_ac_campaign(const netlist::Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const AcCampaignOptions& opt = {});

} // namespace catlift::anafault
