// catlift/anafault/ac_campaign.h
//
// AC fault simulation: the classical frequency-domain detection path of
// AnaFAULT's ancestors (ISPICE AC fault simulation [30][31], linear fault
// recognition from AC measurements [6]).  Each fault is injected, the
// small-signal response is swept, and the fault counts as detected when
// its magnitude response deviates from the nominal one by more than the
// dB tolerance anywhere in the sweep.

#pragma once

#include "anafault/fault_models.h"
#include "lift/fault.h"
#include "netlist/netlist.h"
#include "spice/engine.h"

#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct AcCampaignOptions {
    InjectionOptions injection;
    spice::AcSpec sweep;
    std::vector<std::string> observed = {"out"};
    double db_tol = 3.0;  ///< magnitude deviation tolerance [dB]
    spice::SimOptions sim;
    /// Worker threads for the batch scheduler (1 = serial).
    unsigned threads = 1;
    /// Sweep each electrical-effect equivalence class once.
    bool collapse = true;
};

struct AcFaultResult {
    int fault_id = 0;
    std::string description;
    bool simulated = false;
    std::string error;
    bool detected = false;
    double max_deviation_db = 0.0;       ///< worst magnitude deviation
    std::optional<double> detect_freq;   ///< frequency of first violation
};

struct AcCampaignResult {
    spice::AcResult nominal;
    std::vector<AcFaultResult> results;

    std::size_t detected() const;
    double coverage() const;  ///< percent
};

/// Run the AC campaign over a fault list.
AcCampaignResult run_ac_campaign(const netlist::Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const AcCampaignOptions& opt = {});

} // namespace catlift::anafault
