#include "anafault/comparator.h"

#include <algorithm>
#include <cmath>

namespace catlift::anafault {

using spice::Waveforms;

// Detection criterion (Fig. 5 caption: "a tolerance of 2V for the
// amplitude and 0.2 us for the time"):
//
//   * amplitude tolerance: at each sample instant the faulty response is
//     compared point-wise against the nominal one; a deviation larger than
//     v_tol is a mismatch;
//   * time tolerance: mismatches are integrated over time, and the fault
//     counts as detected at the instant the *cumulative* mismatch duration
//     exceeds t_tol.
//
// The integrated-duration reading makes the tolerance pair behave the way
// the paper's results require: sampling jitter and sub-t_tol phase wobble
// of the oscillator are forgiven (their mismatch time never accumulates),
// while a frequency-shifted oscillation (the #6 bridge) drifts against the
// nominal edges and accumulates mismatch every cycle, and a constant
// high/low output (the #339 bridge) accumulates mismatch during every
// nominal half-period.  A pure tolerance *window* (min distance to the
// nominal curve within +-t_tol) would classify both of those paper-detected
// faults as undetectable whenever the oscillation period is comparable to
// the window -- so that reading cannot be the one behind Fig. 5.

std::optional<double> detect_time_on(const Waveforms& nominal,
                                     const Waveforms& faulty,
                                     const std::string& node,
                                     const DetectionSpec& spec) {
    require(nominal.has(node), "comparator: nominal lacks node " + node);
    require(faulty.has(node), "comparator: faulty run lacks node " + node);
    const auto& tf = faulty.time();
    require(tf.size() >= 2, "comparator: faulty run too short");

    double accumulated = 0.0;
    for (std::size_t i = 1; i < tf.size(); ++i) {
        const double t = tf[i];
        const double dt = tf[i] - tf[i - 1];
        const double dv =
            std::fabs(faulty.trace(node)[i] - nominal.at(node, t));
        if (dv > spec.v_tol) {
            accumulated += dt;
            if (accumulated > spec.t_tol) return t;
        }
    }
    return std::nullopt;
}

StreamingDetector::StreamingDetector(const Waveforms& nominal,
                                     const DetectionSpec& spec)
    : nominal_(&nominal), t_tol_(spec.t_tol) {
    for (const std::string& node : spec.observed) {
        require(nominal.has(node), "comparator: nominal lacks node " + node);
        channels_.push_back(Channel{node, spec.v_tol, /*required=*/true,
                                    true, false, 0.0});
    }
    for (const std::string& src : spec.observed_supplies) {
        const std::string trace = "i(" + src + ")";
        // detect_time() silently skips supply traces absent from either
        // run; mirror that here.
        if (!nominal.has(trace)) continue;
        channels_.push_back(Channel{trace, spec.i_tol, /*required=*/false,
                                    true, false, 0.0});
    }
}

bool StreamingDetector::feed(const Waveforms& faulty) {
    if (detect_time_) return true;
    // Validate every channel up front (not lazily inside the sample loop):
    // detect_time() throws on a missing required node even when another
    // node would have detected first, and the streaming verdict must
    // match it exactly.
    for (Channel& ch : channels_) {
        if (ch.checked) continue;
        ch.present = faulty.has(ch.trace);
        require(ch.present || !ch.required,
                "comparator: faulty run lacks node " + ch.trace);
        ch.checked = true;
    }
    const auto& tf = faulty.time();
    for (std::size_t i = std::max<std::size_t>(next_, 1); i < tf.size();
         ++i) {
        const double t = tf[i];
        const double dt = tf[i] - tf[i - 1];
        for (Channel& ch : channels_) {
            if (!ch.present) continue;
            const double dv =
                std::fabs(faulty.trace(ch.trace)[i] - nominal_->at(ch.trace, t));
            if (dv > ch.tol) {
                ch.accumulated += dt;
                if (ch.accumulated > t_tol_) {
                    detect_time_ = t;
                    next_ = i + 1;
                    return true;
                }
            }
        }
    }
    next_ = tf.size();
    return false;
}

AcStreamingDetector::AcStreamingDetector(const spice::AcResult& nominal,
                                         std::vector<std::string> observed,
                                         double db_tol)
    : nominal_(&nominal), observed_(std::move(observed)), db_tol_(db_tol) {
    for (const std::string& node : observed_)
        require(nominal_->has(node),
                "ac comparator: nominal lacks node " + node);
}

bool AcStreamingDetector::feed(const spice::AcResult& faulty) {
    const std::size_t upto =
        std::min(faulty.points(), nominal_->points());
    for (std::size_t i = next_; i < upto; ++i) {
        for (const std::string& node : observed_) {
            // A node split can rename the observed node out of the faulty
            // circuit; such a channel is simply not comparable.
            if (!faulty.has(node)) continue;
            const double dev = std::fabs(faulty.mag_db(node, i) -
                                         nominal_->mag_db(node, i));
            max_dev_ = std::max(max_dev_, dev);
            if (dev > db_tol_ && !detect_freq_)
                detect_freq_ = nominal_->freq()[i];
        }
    }
    next_ = upto;
    return detected();
}

std::optional<double> detect_time(const Waveforms& nominal,
                                  const Waveforms& faulty,
                                  const DetectionSpec& spec) {
    std::optional<double> best;
    for (const std::string& node : spec.observed) {
        const auto t = detect_time_on(nominal, faulty, node, spec);
        if (t && (!best || *t < *best)) best = t;
    }
    // Supply-current observation: same integrated-mismatch criterion with
    // the current tolerance.
    for (const std::string& src : spec.observed_supplies) {
        DetectionSpec ispec = spec;
        ispec.v_tol = spec.i_tol;
        const std::string trace = "i(" + src + ")";
        if (!nominal.has(trace) || !faulty.has(trace)) continue;
        const auto t = detect_time_on(nominal, faulty, trace, ispec);
        if (t && (!best || *t < *best)) best = t;
    }
    return best;
}

} // namespace catlift::anafault
