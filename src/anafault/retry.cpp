#include "anafault/retry.h"

#include <cmath>
#include <limits>

namespace catlift::anafault {

spice::SimOptions degrade_sim(const spice::SimOptions& base, int attempt) {
    spice::SimOptions o = base;
    if (attempt >= 1) {
        // The bypass replays cached linearizations; a marginal circuit is
        // better served by an exact Jacobian every iteration.
        o.bypass = false;
        o.device_bypass_tol = 0.0;
    }
    if (attempt >= 2) {
        // LTE stride growth can step a barely-stable circuit over its own
        // dynamics; the fixed grid is the paper's original regime.
        o.adaptive = false;
    }
    if (attempt >= 3) {
        // Dense partial-pivot LU with no order restriction: immune to the
        // order-restricted singular pivots the sparse path can hit on
        // pathological injected topologies.
        o.sparse_threshold = std::numeric_limits<std::size_t>::max();
        o.symbolic_cache = nullptr;
    }
    if (attempt >= 4) {
        // Classic last resort: swamp the near-singularity with gmin.  One
        // decade per further attempt.
        o.gmin = base.gmin * std::pow(10.0, attempt - 3);
    }
    return o;
}

std::string attempt_label(int attempt) {
    switch (attempt) {
        case 0: return "base";
        case 1: return "no-bypass";
        case 2: return "fixed-grid";
        case 3: return "dense";
        default: {
            std::string s = "gmin-x1";
            for (int k = 3; k < attempt; ++k) s += "0";
            return s;
        }
    }
}

void log_attempt(std::string& retry_log, int attempt,
                 const std::string& error) {
    if (!retry_log.empty()) retry_log += "; ";
    retry_log += "attempt " + std::to_string(attempt + 1) + " [" +
                 attempt_label(attempt) + "]: " +
                 (error.empty() ? "failed" : error);
}

} // namespace catlift::anafault
