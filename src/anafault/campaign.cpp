#include "anafault/campaign.h"

#include "batch/collapse.h"
#include "batch/result_store.h"
#include "netlist/writer.h"
#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>

namespace catlift::anafault {

using netlist::Circuit;
using netlist::TranSpec;
using spice::Simulator;
using spice::Waveforms;

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

TranSpec resolve_tran(const Circuit& ckt, const CampaignOptions& opt) {
    if (opt.tran) return *opt.tran;
    require(ckt.tran.has_value(),
            "campaign: no .tran card and no explicit TranSpec");
    return *ckt.tran;
}

/// Static identity of one fault in the batch queue: everything that is
/// known before the kernel runs.
struct JobMeta {
    int fault_id = 0;
    std::string description;
    double probability = 0.0;
    /// Electrical-effect signature; jobs sharing one are simulated once.
    std::string signature;
};

std::string hexd(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

} // namespace

std::string manifest_double(double v) { return hexd(v); }

std::uint64_t chain_fault_manifest(std::uint64_t h,
                                   const lift::FaultList& faults) {
    for (const lift::Fault& f : faults.faults) {
        // Delimited: without separators, distinct identity tuples could
        // chain to the same bytes.
        h = batch::fnv1a(std::to_string(f.id) + "|" + f.describe() + "|" +
                             hexd(f.probability) + "|" +
                             batch::effect_signature(f) + "\n",
                         h);
    }
    return h;
}

std::string sim_knob_signature(const spice::SimOptions& sim) {
    std::string o;
    o += sim.method == spice::Method::Trapezoidal ? "|trap" : "|be";
    o += sim.uic ? "|uic" : "|op";
    // Every solver knob alters waveforms (and hence verdicts) -- a store
    // written under different numerics must never be resumed.
    o += "|" + hexd(sim.gmin) + "|" + hexd(sim.cmin);
    o += "|" + hexd(sim.abstol) + "|" + hexd(sim.vntol);
    o += "|" + hexd(sim.reltol) + "|" + hexd(sim.dv_limit);
    o += "|" + std::to_string(sim.max_nr);
    o += "|" + std::to_string(sim.max_step_cuts);
    // Adaptive stepping changes the waveforms (within LTE tolerance, but
    // changed is changed): a store written under the other stepping mode
    // or a different LTE knob must not be resumed.
    o += sim.adaptive ? "|adaptive" : "|fixedgrid";
    o += "|" + hexd(sim.lte_tol);
    o += "|" + std::to_string(sim.max_stride);
    // Kernel selection changes waveform rounding (and the bypass mode may
    // perturb within its tolerance): a store written under a different
    // kernel configuration must never be resumed.
    o += "|sparse:" + std::to_string(sim.sparse_threshold);
    if (sim.bypass) {
        o += "|bypass:" + hexd(sim.bypass_tol);
        o += ":" + hexd(sim.device_bypass_tol);
    } else {
        o += "|nobypass";
    }
    o += sim.ordering == spice::SparseOrdering::Amd ? "|amd" : "|mark";
    // Execution budgets fail slow faults instead of waiting them out --
    // verdict-affecting, so a store written under different budgets is
    // foreign.
    o += "|wall:" + hexd(sim.max_wall_seconds);
    o += "|nrb:" + std::to_string(sim.max_nr_total);
    o += "|stb:" + std::to_string(sim.max_tran_steps);
    return o;
}

namespace {

/// Campaign manifest: hashes everything that determines the per-fault
/// verdicts, so a result store is only ever resumed against the campaign
/// that wrote it.
std::uint64_t manifest_hash(const Circuit& ckt,
                            const std::vector<JobMeta>& metas,
                            const TranSpec& ts, const CampaignOptions& opt) {
    std::uint64_t h = batch::fnv1a(netlist::write_spice(ckt));
    for (const JobMeta& m : metas) {
        // Delimited: without separators, distinct (id, description,
        // probability, signature) tuples could chain to the same bytes.
        h = batch::fnv1a(std::to_string(m.fault_id) + "|" + m.description +
                             "|" + hexd(m.probability) + "|" + m.signature +
                             "\n",
                         h);
    }
    std::string o;
    o += to_string(opt.injection.model);
    o += "|" + hexd(opt.injection.short_resistance);
    o += "|" + hexd(opt.injection.open_resistance);
    o += "|" + hexd(opt.detection.v_tol) + "|" + hexd(opt.detection.t_tol);
    o += "|" + hexd(opt.detection.i_tol);
    for (const std::string& n : opt.detection.observed) o += "|" + n;
    for (const std::string& s : opt.detection.observed_supplies)
        o += "|i:" + s;
    o += "|" + hexd(ts.tstep) + "|" + hexd(ts.tstop) + "|" + hexd(ts.tstart);
    o += sim_knob_signature(opt.sim);
    o += opt.share_symbolic ? "|sharesym" : "|nosharesym";
    // Engine shortcuts do not change verdicts, but a user toggling them
    // (e.g. --no-collapse to rule out a collapse bug) wants faults
    // actually re-simulated -- treat the store as foreign.
    o += opt.collapse ? "|collapse" : "|nocollapse";
    o += opt.early_abort ? "|abort" : "|noabort";
    // The retry ladder can converge a fault the base config fails, so a
    // store written under a different retry depth is foreign.
    o += "|retries:" + std::to_string(opt.max_retries);
    return batch::fnv1a(o, h);
}

/// Run one mutated circuit against the shared nominal baseline, streaming
/// every accepted step into the detector so the run can stop at the first
/// confirmed detection.
FaultSimResult simulate_one(const Circuit& faulty, const Waveforms& nominal,
                            const TranSpec& ts, const CampaignOptions& opt) {
    FaultSimResult r;
    const auto t0 = std::chrono::steady_clock::now();
    std::optional<StreamingDetector> detector;
    try {
        detector.emplace(nominal, opt.detection);
        Simulator sim(faulty, opt.sim);
        r.matrix_size = sim.unknowns();
        const spice::StepObserver observer =
            [&](double, const Waveforms& wf) {
                return !(detector->feed(wf) && opt.early_abort);
            };
        sim.tran(ts, observer);
        r.sim_seconds = seconds_since(t0);
        r.nr_iterations = sim.stats().nr_iterations;
        r.steps_saved = sim.stats().steps_saved;
        r.steps_integrated = sim.stats().tran_steps;
        r.steps_interpolated = sim.stats().grid_points_interpolated;
        r.bypass_solves = sim.stats().bypass_solves;
        r.sparse_refactors = sim.stats().sparse_refactors;
        r.device_stamp_skips = sim.stats().device_stamp_skips;
        r.symbolic_cache_hits = sim.stats().symbolic_cache_hits;
        r.ordering_seconds = sim.stats().ordering_seconds;
        r.numeric_seconds = sim.stats().numeric_seconds;
        r.simulated = true;
        r.detect_time = detector->detect_time();
    } catch (const std::exception& e) {
        // std::exception, not just catlift::Error: a stray
        // std::out_of_range (or any library exception) must retire this
        // fault, never escape to the scheduler and kill the campaign.
        r.sim_seconds = seconds_since(t0);
        r.error = e.what();
        // Detection is confirmed the instant the cumulative mismatch
        // crosses t_tol; a solver failure later in the run cannot
        // un-detect it.  Keeping the verdict makes early-abort on/off
        // agree even when the faulty circuit stops converging after the
        // detection instant (with early abort the failure is never
        // reached at all).
        if (detector && detector->detected()) {
            r.detect_time = detector->detect_time();
            r.simulated = true;
        }
    }
    return r;
}

const char* verdict_of(const FaultSimResult& r) {
    if (r.detect_time) return "detected";
    if (r.simulated) return "undetected";
    return r.quarantined ? "quarantined" : "failed";
}

/// Run one fault through the retry/degradation ladder: the campaign's own
/// configuration first, then each rung of anafault/retry.h until an
/// attempt simulates or the ladder is exhausted (-> quarantined).  Every
/// failed attempt lands in the retry log; every re-attempt is counted and
/// published.
FaultSimResult simulate_with_retries(const Circuit& faulty,
                                     const Waveforms& nominal,
                                     const TranSpec& ts,
                                     const CampaignOptions& opt,
                                     int fault_id,
                                     std::atomic<std::size_t>& retries) {
    const int attempts_allowed = 1 + std::max(0, opt.max_retries);
    FaultSimResult r;
    std::string retry_log;
    for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
        CampaignOptions aopt = opt;
        if (attempt > 0) {
            aopt.sim = degrade_sim(opt.sim, attempt);
            retries.fetch_add(1, std::memory_order_relaxed);
            if (obs::metrics_enabled())
                obs::Registry::global().counter("campaign.retries").add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_retry",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(fault_id)),
                     obs::arg("attempt",
                              static_cast<std::int64_t>(attempt + 1)),
                     obs::arg("config", attempt_label(attempt)),
                     obs::arg("error", r.error)});
        }
        r = simulate_one(faulty, nominal, ts, aopt);
        r.attempts = static_cast<std::uint32_t>(attempt + 1);
        if (r.simulated) break;
        log_attempt(retry_log, attempt, r.error);
    }
    r.retry_log = std::move(retry_log);
    if (!r.simulated && opt.max_retries > 0) {
        r.quarantined = true;
        if (obs::metrics_enabled())
            obs::Registry::global().counter("campaign.quarantined").add(1);
        if (obs::events_enabled())
            obs::emit_event(
                "fault_quarantined",
                {obs::arg("fault_id", static_cast<std::int64_t>(fault_id)),
                 obs::arg("attempts",
                          static_cast<std::int64_t>(r.attempts)),
                 obs::arg("error", r.error)});
    }
    return r;
}

/// Close a fault-simulation span and publish the per-fault observability
/// record: span args (the per-fault slice of the campaign counters, so a
/// trace viewer -- or the aggregation test -- can reconstruct the batch
/// totals from the spans alone), registry counters incremented by exactly
/// the same values, and the retirement event.
void publish_fault_obs(obs::Span& sp, const FaultSimResult& r,
                       const std::string& signature) {
    const unsigned mask = obs::enabled_mask();
    const bool ev = obs::events_enabled();
    if (mask == 0 && !ev) {
        sp.end();
        return;
    }
    const auto i64 = [](auto v) { return static_cast<std::int64_t>(v); };
    if (mask & obs::kTracingBit) {
        sp.arg("fault_id", i64(r.fault_id));
        sp.arg("signature", signature);
        sp.arg("verdict", std::string(verdict_of(r)));
        if (r.detect_time) sp.arg("detect_time_s", *r.detect_time);
        sp.arg("steps_saved", i64(r.steps_saved));
        sp.arg("nr_iterations", i64(r.nr_iterations));
        sp.arg("steps_integrated", i64(r.steps_integrated));
        sp.arg("bypass_solves", i64(r.bypass_solves));
        sp.arg("device_stamp_skips", i64(r.device_stamp_skips));
        sp.arg("symbolic_cache_hits", i64(r.symbolic_cache_hits));
        sp.arg("sim_seconds", r.sim_seconds);
        sp.arg("attempts", i64(r.attempts));
    }
    sp.end();
    if (mask & obs::kMetricsBit) {
        struct Counters {
            obs::Counter& retired;
            obs::Counter& detected;
            obs::Counter& nr_iterations;
            obs::Counter& steps_integrated;
            obs::Counter& steps_saved;
            obs::Counter& bypass_solves;
            obs::Counter& device_stamp_skips;
            obs::Counter& symbolic_cache_hits;
        };
        obs::Registry& reg = obs::Registry::global();
        static Counters c{reg.counter("campaign.retired"),
                          reg.counter("campaign.detected"),
                          reg.counter("campaign.nr_iterations"),
                          reg.counter("campaign.steps_integrated"),
                          reg.counter("campaign.steps_saved"),
                          reg.counter("campaign.bypass_solves"),
                          reg.counter("campaign.device_stamp_skips"),
                          reg.counter("campaign.symbolic_cache_hits")};
        c.retired.add(1);
        if (r.detect_time) c.detected.add(1);
        c.nr_iterations.add(r.nr_iterations);
        c.steps_integrated.add(r.steps_integrated);
        c.steps_saved.add(r.steps_saved);
        c.bypass_solves.add(r.bypass_solves);
        c.device_stamp_skips.add(r.device_stamp_skips);
        c.symbolic_cache_hits.add(r.symbolic_cache_hits);
    }
    if (ev) {
        std::vector<obs::TraceArg> fields{
            obs::arg("fault_id", i64(r.fault_id)),
            obs::arg("verdict", std::string(verdict_of(r))),
            obs::arg("sim_seconds", r.sim_seconds)};
        if (r.detect_time)
            fields.push_back(obs::arg("detect_time_s", *r.detect_time));
        obs::emit_event("fault_retired", fields);
    }
}

/// Copy a class representative's verdict to another member of the same
/// equivalence class: identity fields come from the member, kernel cost
/// stays attributed to the representative alone.
FaultSimResult fan_out(const FaultSimResult& rep, const JobMeta& meta) {
    FaultSimResult c = rep;
    c.fault_id = meta.fault_id;
    c.description = meta.description;
    c.probability = meta.probability;
    // Retry cost, like kernel cost, stays attributed to the
    // representative; the verdict (quarantined included) fans out.
    c.attempts = 1;
    c.retry_log.clear();
    c.sim_seconds = 0.0;
    c.nr_iterations = 0;
    c.steps_saved = 0;
    c.steps_integrated = 0;
    c.steps_interpolated = 0;
    c.bypass_solves = 0;
    c.sparse_refactors = 0;
    c.device_stamp_skips = 0;
    c.symbolic_cache_hits = 0;
    c.ordering_seconds = 0.0;
    c.numeric_seconds = 0.0;
    return c;
}

template <typename MakeCircuit>
CampaignResult run_generic(const Circuit& ckt, std::vector<JobMeta> metas,
                           MakeCircuit make, const CampaignOptions& opt) {
    CampaignResult res;
    const TranSpec ts = resolve_tran(ckt, opt);
    res.tstop = ts.tstop;
    const std::size_t n = metas.size();
    res.batch.threads = std::max(1u, opt.threads);
    if (obs::events_enabled())
        obs::emit_event(
            "campaign_start",
            {obs::arg("analysis", std::string("tran")),
             obs::arg("faults", static_cast<std::int64_t>(n)),
             obs::arg("threads",
                      static_cast<std::int64_t>(res.batch.threads))});

    // Nominal simulation first (paper, ch. V); the baseline Waveforms are
    // shared read-only by every worker.  Its kernel's elimination order is
    // the campaign-shared symbolic analysis: every faulty variant adopts
    // it (patched with its injected unknowns) instead of re-running the
    // one-time ordering -- null when the nominal kernel is dense, in which
    // case every variant simply analyzes itself as before.
    CampaignOptions wopt = opt;
    {
        obs::Span nsp(obs::Phase::Nominal);
        const auto t0 = std::chrono::steady_clock::now();
        Simulator sim(ckt, opt.sim);
        nsp.arg("unknowns", static_cast<std::int64_t>(sim.unknowns()));
        res.nominal = sim.tran(ts);
        res.nominal_seconds = seconds_since(t0);
        res.batch.steps_integrated = sim.stats().tran_steps;
        res.batch.steps_interpolated = sim.stats().grid_points_interpolated;
        res.batch.bypass_solves = sim.stats().bypass_solves;
        res.batch.sparse_refactors = sim.stats().sparse_refactors;
        res.batch.device_stamp_skips = sim.stats().device_stamp_skips;
        res.batch.ordering_seconds = sim.stats().ordering_seconds;
        res.batch.numeric_seconds = sim.stats().numeric_seconds;
        if (opt.share_symbolic)
            wopt.sim.symbolic_cache = sim.symbolic_cache();
    }

    res.results.resize(n);
    std::vector<char> done(n, 0);

    // Result store: load whatever a previous run of this exact campaign
    // already finished.
    std::unique_ptr<batch::ResultStore> store;
    if (!opt.result_store.empty()) {
        const std::uint64_t manifest =
            opt.manifest_override ? *opt.manifest_override
                                  : manifest_hash(ckt, metas, ts, opt);
        if (!opt.resume) {
            std::error_code ec;
            std::filesystem::remove(opt.result_store, ec);
        }
        store = std::make_unique<batch::ResultStore>(opt.result_store,
                                                     manifest,
                                                     opt.store_durability);
        std::map<int, std::size_t> by_id;
        for (std::size_t i = 0; i < n; ++i) by_id[metas[i].fault_id] = i;
        for (const FaultSimResult& r : store->loaded()) {
            const auto it = by_id.find(r.fault_id);
            if (it == by_id.end() || done[it->second]) continue;
            res.results[it->second] = r;
            done[it->second] = 1;
            // Provenance split: a record the incremental engine carried
            // across a layout revision is not prior-run work of *this*
            // campaign, and is reported separately.
            if (r.carried)
                ++res.batch.carried_from_store;
            else
                ++res.batch.resumed;
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_resumed",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(r.fault_id)),
                     obs::arg("carried",
                              static_cast<std::int64_t>(r.carried)),
                     obs::arg("verdict", std::string(verdict_of(r)))});
        }
    }

    // Snapshot of which slots were filled from the store, before workers
    // start marking their own slots done.
    const std::vector<char> resumed_here = done;

    // Equivalence classes over the *whole* list (so a resumed member can
    // still donate its verdict to unfinished members of its class).
    std::vector<batch::CollapsedClass> classes;
    if (opt.collapse) {
        std::vector<std::string> sigs;
        sigs.reserve(n);
        for (const JobMeta& m : metas) sigs.push_back(m.signature);
        classes = batch::collapse_by_signature(sigs);
    } else {
        classes = batch::singleton_classes(n);
    }
    res.batch.classes = classes.size();

    // One job per class that still has unfinished members; the scheduler
    // simulates the likeliest faults first so weighted coverage converges
    // early.
    std::vector<batch::Job> jobs = batch::class_jobs(
        classes, [&](std::size_t m) { return metas[m].probability; });
    std::erase_if(jobs, [&](const batch::Job& j) {
        const auto& members = classes[j.index].members;
        return std::all_of(members.begin(), members.end(),
                           [&](std::size_t m) { return done[m] != 0; });
    });
    if (obs::events_enabled())
        for (const batch::Job& j : jobs) {
            const auto& members = classes[j.index].members;
            const auto rep =
                std::find_if(members.begin(), members.end(),
                             [&](std::size_t m) { return !done[m]; });
            if (rep == members.end()) continue;
            obs::emit_event(
                "fault_scheduled",
                {obs::arg("fault_id", static_cast<std::int64_t>(
                                          metas[*rep].fault_id)),
                 obs::arg("priority", j.priority),
                 obs::arg("class_size",
                          static_cast<std::int64_t>(members.size()))});
        }

    std::atomic<std::size_t> kernel_runs{0};
    std::atomic<std::size_t> retries{0};
    std::atomic<std::size_t> store_errors{0};
    // Contained store append: an I/O failure (disk full, injected torn
    // write) must not fail the fault -- its verdict is already computed
    // and stays in memory; it is merely not persisted, so a later resume
    // re-simulates it.  The failure is counted and published.
    auto safe_append = [&](const FaultSimResult& r) {
        if (!store) return;
        try {
            store->append(r);
        } catch (const std::exception& e) {
            store_errors.fetch_add(1, std::memory_order_relaxed);
            if (obs::metrics_enabled())
                obs::Registry::global()
                    .counter("store.append_errors")
                    .add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "store_error",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(r.fault_id)),
                     obs::arg("error", std::string(e.what()))});
        }
    };
    auto run_class = [&](std::size_t c) {
        const std::vector<std::size_t>& members = classes[c].members;

        // A member finished by a previous run seeds the class verdict.
        const FaultSimResult* verdict = nullptr;
        for (std::size_t m : members)
            if (done[m]) {
                verdict = &res.results[m];
                break;
            }

        if (!verdict) {
            const std::size_t rep =
                *std::find_if(members.begin(), members.end(),
                              [&](std::size_t m) { return !done[m]; });
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_started",
                    {obs::arg("fault_id", static_cast<std::int64_t>(
                                              metas[rep].fault_id))});
            // The fault span brackets injection, simulation and the
            // store append, so the store_append child span nests inside.
            obs::Span sp(obs::Phase::FaultSim);
            FaultSimResult base;
            base.fault_id = metas[rep].fault_id;
            base.description = metas[rep].description;
            base.probability = metas[rep].probability;
            FaultSimResult r;
            try {
                const Circuit faulty = make(rep);
                // Counted only once injection succeeded: a fault that
                // cannot even be injected never reaches the kernel.
                kernel_runs.fetch_add(1, std::memory_order_relaxed);
                r = simulate_with_retries(faulty, res.nominal, ts, wopt,
                                          base.fault_id, retries);
            } catch (const std::exception& e) {
                // Injection failure (or any exception the kernel path did
                // not already contain): the fault retires `failed` --
                // injection is deterministic, so the retry ladder has
                // nothing to offer.
                r.simulated = false;
                r.error = e.what();
            }
            r.fault_id = base.fault_id;
            r.description = base.description;
            r.probability = base.probability;
            res.results[rep] = std::move(r);
            done[rep] = 1;
            safe_append(res.results[rep]);
            publish_fault_obs(sp, res.results[rep], metas[rep].signature);
            verdict = &res.results[rep];
        }

        for (std::size_t m : members) {
            if (done[m]) continue;
            res.results[m] = fan_out(*verdict, metas[m]);
            done[m] = 1;
            safe_append(res.results[m]);
            if (obs::metrics_enabled())
                obs::Registry::global()
                    .counter("campaign.fanned_out")
                    .add(1);
            if (obs::events_enabled())
                obs::emit_event(
                    "fault_retired",
                    {obs::arg("fault_id",
                              static_cast<std::int64_t>(
                                  metas[m].fault_id)),
                     obs::arg("verdict",
                              std::string(verdict_of(res.results[m]))),
                     obs::arg("via", std::string("collapse"))});
        }
    };

    const batch::Scheduler scheduler(opt.threads);
    // RecordAndContinue: the per-fault handling above already retires
    // every failure; an exception still reaching the scheduler (an
    // injected worker fault, an allocation failure between faults) is
    // recorded and the remaining faults keep their verdicts.
    const batch::SchedulerStats sstats =
        scheduler.run(jobs, run_class, batch::ErrorPolicy::RecordAndContinue);
    res.batch.steals = sstats.steals;
    res.batch.job_errors = sstats.failed_jobs;
    res.batch.retries = retries.load();
    res.batch.store_errors = store_errors.load();
    // Kernel simulations actually run -- a class completed purely by
    // fanning out a resumed member's verdict does not count.
    res.batch.scheduled = kernel_runs.load();

    // Aggregate kernel cost over *this run's* work only: records loaded
    // from the store carry their original sim_seconds/steps_saved in the
    // per-fault results, but a warm resume must not re-report them as
    // kernel time spent now.
    for (std::size_t i = 0; i < n; ++i) {
        if (resumed_here[i]) continue;
        const FaultSimResult& r = res.results[i];
        res.total_seconds += r.sim_seconds;
        res.batch.steps_integrated += r.steps_integrated;
        res.batch.steps_interpolated += r.steps_interpolated;
        res.batch.bypass_solves += r.bypass_solves;
        res.batch.sparse_refactors += r.sparse_refactors;
        res.batch.device_stamp_skips += r.device_stamp_skips;
        res.batch.symbolic_cache_hits += r.symbolic_cache_hits;
        res.batch.ordering_seconds += r.ordering_seconds;
        res.batch.numeric_seconds += r.numeric_seconds;
        if (r.steps_saved > 0) {
            ++res.batch.early_aborts;
            res.batch.steps_saved += r.steps_saved;
        }
        if (r.quarantined) ++res.batch.quarantined;
    }
    res.batch.collapsed = n - classes.size();
    if (obs::events_enabled())
        obs::emit_event(
            "campaign_end",
            {obs::arg("faults", static_cast<std::int64_t>(n)),
             obs::arg("detected",
                      static_cast<std::int64_t>(res.detected())),
             obs::arg("scheduled",
                      static_cast<std::int64_t>(res.batch.scheduled)),
             obs::arg("resumed",
                      static_cast<std::int64_t>(res.batch.resumed)),
             obs::arg("carried_from_store",
                      static_cast<std::int64_t>(
                          res.batch.carried_from_store))});
    return res;
}

std::vector<JobMeta> fault_metas(const lift::FaultList& faults) {
    std::vector<JobMeta> metas;
    metas.reserve(faults.size());
    for (const lift::Fault& f : faults.faults) {
        JobMeta m;
        m.fault_id = f.id;
        m.description = f.describe();
        m.probability = f.probability;
        m.signature = batch::effect_signature(f);
        metas.push_back(std::move(m));
    }
    return metas;
}

} // namespace

CampaignResult run_campaign(const Circuit& ckt, const lift::FaultList& faults,
                            const CampaignOptions& opt) {
    return run_generic(
        ckt, fault_metas(faults),
        [&](std::size_t i) {
            return inject(ckt, faults.faults[i], opt.injection);
        },
        opt);
}

std::uint64_t campaign_manifest(const Circuit& ckt,
                                const lift::FaultList& faults,
                                const CampaignOptions& opt) {
    return manifest_hash(ckt, fault_metas(faults), resolve_tran(ckt, opt),
                         opt);
}

CampaignResult run_parametric_campaign(
    const Circuit& ckt, const std::vector<ParametricFault>& faults,
    const CampaignOptions& opt) {
    std::vector<JobMeta> metas;
    metas.reserve(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        JobMeta m;
        m.fault_id = static_cast<int>(i) + 1;
        m.description = faults[i].describe();
        m.probability = 1.0;
        m.signature = "PAR:" + faults[i].device + ":" + faults[i].param +
                      ":" + hexd(faults[i].factor);
        metas.push_back(std::move(m));
    }
    return run_generic(
        ckt, std::move(metas),
        [&](std::size_t i) { return inject_parametric(ckt, faults[i]); },
        opt);
}

// ---------------------------------------------------------------------------
// CampaignResult

std::size_t CampaignResult::detected() const {
    return static_cast<std::size_t>(std::count_if(
        results.begin(), results.end(),
        [](const FaultSimResult& r) { return r.detect_time.has_value(); }));
}

std::size_t CampaignResult::undetected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const FaultSimResult& r) {
                          return r.simulated && !r.detect_time;
                      }));
}

std::size_t CampaignResult::failed() const {
    return static_cast<std::size_t>(std::count_if(
        results.begin(), results.end(), [](const FaultSimResult& r) {
            return !r.simulated && !r.quarantined;
        }));
}

std::size_t CampaignResult::quarantined() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const FaultSimResult& r) { return r.quarantined; }));
}

std::size_t CampaignResult::retries() const {
    std::size_t n = 0;
    for (const FaultSimResult& r : results)
        if (r.attempts > 1) n += r.attempts - 1;
    return n;
}

double CampaignResult::coverage_at(double t) const {
    if (results.empty()) return 0.0;
    std::size_t det = 0;
    for (const FaultSimResult& r : results)
        if (r.detect_time && *r.detect_time <= t) ++det;
    return 100.0 * static_cast<double>(det) /
           static_cast<double>(results.size());
}

double CampaignResult::weighted_coverage() const {
    double total = 0.0, det = 0.0;
    for (const FaultSimResult& r : results) {
        total += r.probability;
        if (r.detect_time) det += r.probability;
    }
    return total > 0 ? 100.0 * det / total : 0.0;
}

std::optional<double> CampaignResult::time_of_last_detection() const {
    std::optional<double> last;
    for (const FaultSimResult& r : results)
        if (r.detect_time && (!last || *r.detect_time > *last))
            last = r.detect_time;
    return last;
}

std::vector<std::pair<double, double>> CampaignResult::coverage_curve(
    std::size_t points) const {
    std::vector<std::pair<double, double>> out;
    out.reserve(points + 1);
    for (std::size_t i = 0; i <= points; ++i) {
        const double t = tstop * static_cast<double>(i) /
                         static_cast<double>(points);
        out.emplace_back(t, coverage_at(t));
    }
    return out;
}

} // namespace catlift::anafault
