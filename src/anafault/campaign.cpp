#include "anafault/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace catlift::anafault {

using netlist::Circuit;
using netlist::TranSpec;
using spice::Simulator;
using spice::Waveforms;

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

TranSpec resolve_tran(const Circuit& ckt, const CampaignOptions& opt) {
    if (opt.tran) return *opt.tran;
    require(ckt.tran.has_value(),
            "campaign: no .tran card and no explicit TranSpec");
    return *ckt.tran;
}

/// Run one mutated circuit; fills everything except id/description.
FaultSimResult simulate_one(const Circuit& faulty, const Waveforms& nominal,
                            const TranSpec& ts, const CampaignOptions& opt) {
    FaultSimResult r;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        Simulator sim(faulty, opt.sim);
        r.matrix_size = sim.unknowns();
        const Waveforms wf = sim.tran(ts);
        r.sim_seconds = seconds_since(t0);
        r.nr_iterations = sim.stats().nr_iterations;
        r.simulated = true;
        r.detect_time = detect_time(nominal, wf, opt.detection);
    } catch (const Error& e) {
        r.sim_seconds = seconds_since(t0);
        r.simulated = false;
        r.error = e.what();
    }
    return r;
}

template <typename MakeCircuit>
CampaignResult run_generic(const Circuit& ckt, std::size_t n_faults,
                           MakeCircuit make, const CampaignOptions& opt) {
    CampaignResult res;
    const TranSpec ts = resolve_tran(ckt, opt);
    res.tstop = ts.tstop;

    // Nominal simulation first (paper, ch. V).
    {
        const auto t0 = std::chrono::steady_clock::now();
        Simulator sim(ckt, opt.sim);
        res.nominal = sim.tran(ts);
        res.nominal_seconds = seconds_since(t0);
    }

    res.results.resize(n_faults);
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = cursor.fetch_add(1);
            if (i >= n_faults) break;
            // make() fills id/description/probability and returns the
            // mutated circuit (or an error string).
            FaultSimResult base;
            try {
                const Circuit faulty = make(i, base);
                FaultSimResult r = simulate_one(faulty, res.nominal, ts, opt);
                r.fault_id = base.fault_id;
                r.description = base.description;
                r.probability = base.probability;
                res.results[i] = std::move(r);
            } catch (const Error& e) {
                base.simulated = false;
                base.error = e.what();
                res.results[i] = std::move(base);
            }
        }
    };

    const unsigned n_threads = std::max(1u, opt.threads);
    if (n_threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
        for (auto& th : pool) th.join();
    }

    for (const FaultSimResult& r : res.results)
        res.total_seconds += r.sim_seconds;
    return res;
}

} // namespace

CampaignResult run_campaign(const Circuit& ckt, const lift::FaultList& faults,
                            const CampaignOptions& opt) {
    return run_generic(
        ckt, faults.size(),
        [&](std::size_t i, FaultSimResult& base) {
            const lift::Fault& f = faults.faults[i];
            base.fault_id = f.id;
            base.description = f.describe();
            base.probability = f.probability;
            return inject(ckt, f, opt.injection);
        },
        opt);
}

CampaignResult run_parametric_campaign(
    const Circuit& ckt, const std::vector<ParametricFault>& faults,
    const CampaignOptions& opt) {
    return run_generic(
        ckt, faults.size(),
        [&](std::size_t i, FaultSimResult& base) {
            base.fault_id = static_cast<int>(i) + 1;
            base.description = faults[i].describe();
            base.probability = 1.0;
            return inject_parametric(ckt, faults[i]);
        },
        opt);
}

// ---------------------------------------------------------------------------
// CampaignResult

std::size_t CampaignResult::detected() const {
    return static_cast<std::size_t>(std::count_if(
        results.begin(), results.end(),
        [](const FaultSimResult& r) { return r.detect_time.has_value(); }));
}

std::size_t CampaignResult::undetected() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const FaultSimResult& r) {
                          return r.simulated && !r.detect_time;
                      }));
}

std::size_t CampaignResult::failed() const {
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const FaultSimResult& r) { return !r.simulated; }));
}

double CampaignResult::coverage_at(double t) const {
    if (results.empty()) return 0.0;
    std::size_t det = 0;
    for (const FaultSimResult& r : results)
        if (r.detect_time && *r.detect_time <= t) ++det;
    return 100.0 * static_cast<double>(det) /
           static_cast<double>(results.size());
}

double CampaignResult::weighted_coverage() const {
    double total = 0.0, det = 0.0;
    for (const FaultSimResult& r : results) {
        total += r.probability;
        if (r.detect_time) det += r.probability;
    }
    return total > 0 ? 100.0 * det / total : 0.0;
}

std::optional<double> CampaignResult::time_of_last_detection() const {
    std::optional<double> last;
    for (const FaultSimResult& r : results)
        if (r.detect_time && (!last || *r.detect_time > *last))
            last = r.detect_time;
    return last;
}

std::vector<std::pair<double, double>> CampaignResult::coverage_curve(
    std::size_t points) const {
    std::vector<std::pair<double, double>> out;
    out.reserve(points + 1);
    for (std::size_t i = 0; i <= points; ++i) {
        const double t = tstop * static_cast<double>(i) /
                         static_cast<double>(points);
        out.emplace_back(t, coverage_at(t));
    }
    return out;
}

} // namespace catlift::anafault
