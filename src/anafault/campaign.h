// catlift/anafault/campaign.h
//
// The automatic fault simulation loop (paper, ch. V): "After the execution
// of the nominal simulation, the automatic analogue fault simulation is
// performed in a repetitive cycle of three main phases: the preprocessing
// of the original input file, the call of the kernel simulator and a
// post-processing phase that compares results and generates statistics."
//
// The runner executes that cycle for every fault in a lift::FaultList,
// serially or on a thread pool (the paper's follow-up work [21] ran
// AnaFAULT in parallel on a workstation cluster; a shared-memory pool is
// the laptop equivalent).

#pragma once

#include "anafault/comparator.h"
#include "anafault/fault_models.h"
#include "anafault/retry.h"
#include "batch/result_store.h"
#include "batch/scheduler.h"
#include "lift/fault.h"
#include "netlist/netlist.h"
#include "spice/engine.h"

#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct CampaignOptions {
    InjectionOptions injection;
    DetectionSpec detection;
    spice::SimOptions sim;
    /// Analysis grid; falls back to the circuit's own .tran card.
    std::optional<netlist::TranSpec> tran;
    /// Worker threads (1 = serial).
    // manifest-exempt: parallelism only changes wall-clock; the
    // work-stealing scheduler retires identical verdicts at any
    // worker count (pinned by batch_test.cpp determinism cases).
    unsigned threads = 1;

    // -- batch engine knobs --------------------------------------------------
    /// Stop each faulty run at the first confirmed detection instead of
    /// integrating to tstop (verdicts are unchanged; see
    /// StreamingDetector).
    bool early_abort = true;
    /// Collapse faults with identical electrical effect and simulate each
    /// equivalence class once (batch/collapse.h).
    bool collapse = true;
    /// Campaign-shared symbolic kernel: harvest the nominal simulation's
    /// sparse elimination order (spice::SymbolicCache) and hand it to
    /// every faulty variant, so the one-time fill-reducing analysis runs
    /// once per campaign instead of once per fault.  Only effective when
    /// the kernel is sparse (>= sim.sparse_threshold unknowns) on the Amd
    /// ordering; verdict-affecting (the pivot order steers rounding), so
    /// it is part of the campaign manifest.
    bool share_symbolic = true;
    /// Retry/degradation ladder (anafault/retry.h): degraded re-attempts
    /// allowed after a fault's first simulation failure.  A fault that
    /// exhausts every attempt retires `quarantined`; 0 restores the
    /// pre-containment behavior (first failure retires `failed`).
    /// Verdict-affecting (a retried fault may converge on a lower rung),
    /// so it is part of the campaign manifest.
    int max_retries = kDefaultMaxRetries;
    /// Path of the append-only result store ("" disables persistence).
    // manifest-exempt: where results land, not what they are; the
    // store binds to the campaign via the manifest hash, not its path.
    std::string result_store;
    /// Durability of each store append (batch::Durability): Flush
    /// survives process death, Fsync survives power loss.  Not
    /// verdict-affecting, hence not in the manifest.
    // manifest-exempt: crash-durability of the store file only.
    batch::Durability store_durability = batch::Durability::Flush;
    /// Reuse results already in `result_store` from a previous (possibly
    /// crashed) run of the *same* campaign; without this flag an existing
    /// store is restarted.
    // manifest-exempt: resume replays *already-verified* records of
    // the same manifest; it cannot change what a fault retires as.
    bool resume = false;
    /// Bind the result store to this manifest instead of the campaign's
    /// own hash.  Set only by the incremental cross-revision engine, which
    /// runs a *subset* campaign against the full revision's store (the
    /// carried records must survive the subset run and the merged store
    /// must identify as the full revision campaign).
    // manifest-exempt: IS the manifest binding (hashing the override
    // into the hash it overrides would be circular); only the
    // incremental engine sets it, to a hash it computed itself.
    std::optional<std::uint64_t> manifest_override;

    CampaignOptions() {
        sim.uic = true;       // paper: start at supply activation
        // LTE-controlled adaptive stepping is the campaign default: an
        // undetected fault's quiescent tail integrates in a handful of
        // solves instead of a full fixed grid, multiplying with early
        // abort.  anafaultc exposes --no-adaptive / --lte-tol.
        sim.adaptive = true;
        // Campaigns replay a device stamp only when its terminals are
        // bitwise unchanged: detection verdicts of margin-rider faults on
        // autonomous oscillators flip under any nonzero device staleness
        // (see SimOptions::device_bypass_tol), and campaign verdicts are
        // the product being sold.  anafaultc exposes --device-bypass-tol.
        sim.device_bypass_tol = 0.0;
    }
};

/// Outcome of one fault simulation (defined beside the result store that
/// persists it).
using FaultSimResult = batch::FaultSimResult;

/// Aggregated campaign outcome with the coverage computations behind the
/// paper's Fig. 5.
struct CampaignResult {
    spice::Waveforms nominal;
    double nominal_seconds = 0.0;
    double total_seconds = 0.0;  ///< kernel time this run spent on faults
                                 ///< (store-resumed results excluded; their
                                 ///< original cost stays on each result)
    double tstop = 0.0;
    std::vector<FaultSimResult> results;
    batch::BatchStats batch;     ///< scheduler / collapse / abort counters

    std::size_t detected() const;
    std::size_t undetected() const;
    /// Faults that failed without exhausting the retry ladder (injection
    /// errors, contained exceptions); disjoint from quarantined().
    std::size_t failed() const;
    /// Faults retired by the retry ladder: every rung failed.
    std::size_t quarantined() const;
    /// Degraded re-attempts this run spent across all faults.
    std::size_t retries() const;

    /// Fault coverage (%) counting faults detected by time t.
    double coverage_at(double t) const;
    /// Final fault coverage (%).
    double final_coverage() const { return coverage_at(tstop); }
    /// Probability-weighted coverage (%): detected probability mass over
    /// total probability mass -- the weighted fault list is "used to
    /// evaluate the effectiveness of the test" (ch. IV).
    double weighted_coverage() const;
    /// Earliest time at which every detectable fault has been detected.
    std::optional<double> time_of_last_detection() const;
    /// Coverage curve sampled at `points` instants (Fig. 5 series).
    std::vector<std::pair<double, double>> coverage_curve(
        std::size_t points = 100) const;
};

/// Run the campaign for every fault in the list.
CampaignResult run_campaign(const netlist::Circuit& ckt,
                            const lift::FaultList& faults,
                            const CampaignOptions& opt = {});

/// Manifest hash of the campaign (ckt, faults, opt) would run: circuit
/// text, per-fault identity, analysis grid and every verdict-determining
/// numeric/kernel knob.  A result store is resumable against a campaign
/// iff the manifests match; the incremental engine likewise only carries
/// baseline verdicts whose store manifest reproduces this hash for the
/// baseline fault list.  Threads, store path/resume and manifest_override
/// itself are deliberately excluded (they do not change verdicts).
std::uint64_t campaign_manifest(const netlist::Circuit& ckt,
                                const lift::FaultList& faults,
                                const CampaignOptions& opt = {});

/// Canonical text of every verdict-determining numeric/kernel knob of a
/// SimOptions -- the block shared by the tran, AC and DC campaign
/// manifests.
std::string sim_knob_signature(const spice::SimOptions& sim);

/// Chain every fault's identity (id | description | probability |
/// electrical-effect signature) into a manifest hash -- the fault-list
/// block shared by the AC and DC campaign manifests.
std::uint64_t chain_fault_manifest(std::uint64_t h,
                                   const lift::FaultList& faults);

/// Exact (hex-float) text of a double for manifest hashing.
std::string manifest_double(double v);

/// Run a parametric (soft) fault set through the same cycle.
CampaignResult run_parametric_campaign(
    const netlist::Circuit& ckt, const std::vector<ParametricFault>& faults,
    const CampaignOptions& opt = {});

} // namespace catlift::anafault
