// catlift/anafault/dc_campaign.h
//
// DC fault screening.  AnaFAULT's lineage (ISPICE-era fault simulators
// [30][31][12], referenced in ch. II) covered AC and DC fault simulation;
// a DC operating-point screen is the cheapest first pass: one nonlinear
// solve per fault instead of a full transient.  Faults whose operating
// point deviates beyond tolerance are detectable with a static test;
// the rest (frequency shifts, dynamic faults) need the transient
// campaign -- which is precisely the paper's motivation for transient
// fault simulation on the VCO.

#pragma once

#include "anafault/fault_models.h"
#include "batch/scheduler.h"
#include "lift/fault.h"
#include "netlist/netlist.h"
#include "spice/engine.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct DcScreenOptions {
    InjectionOptions injection;
    /// Observed nodes; DC deviation beyond v_tol on any of them detects.
    std::vector<std::string> observed = {"11"};
    double v_tol = 2.0;
    spice::SimOptions sim;
    /// Worker threads for the batch scheduler (1 = serial).
    unsigned threads = 1;
    /// Solve each electrical-effect equivalence class once.
    bool collapse = true;
    /// Warm-start each faulty operating point from the nominal one (most
    /// faults perturb the circuit locally, so plain NR from the nominal
    /// solution converges in a few iterations; the cold strategy ladder
    /// stays as the fallback).  Caveat: on a faulty circuit that remains
    /// multistable, the warm solve settles in the nominal basin while a
    /// cold solve may pick another operating point -- for a screen that
    /// measures deviation *from nominal* the warm answer is the
    /// conservative one, but set this to false to reproduce cold-start
    /// verdicts exactly.
    bool warm_start = true;
};

struct DcFaultResult {
    int fault_id = 0;
    std::string description;
    bool converged = false;      ///< operating point found
    bool detected = false;       ///< deviation beyond tolerance
    double max_deviation = 0.0;  ///< largest |dV| over observed nodes [V]
    int nr_iterations = 0;       ///< NR cost of the solve
    std::string strategy;        ///< "warm", "nr", "gmin", "source"
};

struct DcScreenResult {
    std::map<std::string, double> nominal_op;  ///< fault-free node voltages
    int nominal_iterations = 0;  ///< NR cost of the nominal (cold) solve
    std::vector<DcFaultResult> results;
    batch::BatchStats batch;     ///< scheduler / collapse / warm-start stats

    std::size_t detected() const;
    /// DC fault coverage in percent.
    double coverage() const;
    /// Faults a static test cannot see (candidates for the transient run).
    std::vector<int> undetected_ids() const;
};

/// Run the DC screen over a fault list.
DcScreenResult run_dc_screen(const netlist::Circuit& ckt,
                             const lift::FaultList& faults,
                             const DcScreenOptions& opt = {});

} // namespace catlift::anafault
