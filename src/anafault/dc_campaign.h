// catlift/anafault/dc_campaign.h
//
// DC fault screening.  AnaFAULT's lineage (ISPICE-era fault simulators
// [30][31][12], referenced in ch. II) covered AC and DC fault simulation;
// a DC operating-point screen is the cheapest first pass: one nonlinear
// solve per fault instead of a full transient.  Faults whose operating
// point deviates beyond tolerance are detectable with a static test;
// the rest (frequency shifts, dynamic faults) need the transient
// campaign -- which is precisely the paper's motivation for transient
// fault simulation on the VCO.
//
// Like the transient campaign, the screen persists per-fault records into
// a crash-resumable result store bound to dc_screen_manifest(), and
// shares the nominal kernel's symbolic analysis with every faulty solve;
// that makes it a drop-in backend for the incremental cross-revision
// engine (anafault/incremental.h).  In a store record detect_time is 0
// when the fault was detected (a DC screen has no sweep coordinate) and
// metric carries the worst |dV|; the solve strategy of a resumed record
// is not persisted (it reports as "stored").

#pragma once

#include "anafault/fault_models.h"
#include "anafault/retry.h"
#include "batch/result_store.h"
#include "batch/scheduler.h"
#include "lift/fault.h"
#include "netlist/netlist.h"
#include "spice/engine.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace catlift::anafault {

struct DcScreenOptions {
    InjectionOptions injection;
    /// Observed nodes; DC deviation beyond v_tol on any of them detects.
    std::vector<std::string> observed = {"11"};
    double v_tol = 2.0;
    spice::SimOptions sim;
    /// Worker threads for the batch scheduler (1 = serial).
    // manifest-exempt: parallelism only changes wall-clock, never
    // which verdict a fault retires with.
    unsigned threads = 1;
    /// Solve each electrical-effect equivalence class once.
    bool collapse = true;
    /// Warm-start each faulty operating point from the nominal one (most
    /// faults perturb the circuit locally, so plain NR from the nominal
    /// solution converges in a few iterations; the cold strategy ladder
    /// stays as the fallback).  Caveat: on a faulty circuit that remains
    /// multistable, the warm solve settles in the nominal basin while a
    /// cold solve may pick another operating point -- for a screen that
    /// measures deviation *from nominal* the warm answer is the
    /// conservative one, but set this to false to reproduce cold-start
    /// verdicts exactly.
    bool warm_start = true;
    /// Share the nominal kernel's symbolic analysis (elimination order)
    /// with every faulty solve; see CampaignOptions::share_symbolic.
    bool share_symbolic = true;
    /// Retry/degradation ladder (anafault/retry.h); see
    /// CampaignOptions::max_retries.  Verdict-affecting, in the manifest.
    int max_retries = kDefaultMaxRetries;
    /// Path of the append-only result store ("" disables persistence).
    // manifest-exempt: where results land, not what they are.
    std::string result_store;
    /// Durability of each store append (batch::Durability); not
    /// verdict-affecting, hence not in the manifest.
    // manifest-exempt: crash-durability of the store file only.
    batch::Durability store_durability = batch::Durability::Flush;
    /// Reuse results already in `result_store` from a previous (possibly
    /// crashed) run of the *same* screen.
    // manifest-exempt: replays already-verified same-manifest records.
    bool resume = false;
    /// Bind the result store to this manifest instead of the screen's own
    /// hash (set only by the incremental cross-revision engine).
    // manifest-exempt: IS the manifest binding; hashing it into the
    // hash it overrides would be circular.
    std::optional<std::uint64_t> manifest_override;
};

struct DcFaultResult {
    int fault_id = 0;
    std::string description;
    double probability = 0.0;
    bool converged = false;      ///< operating point found
    bool detected = false;       ///< deviation beyond tolerance
    double max_deviation = 0.0;  ///< largest |dV| over observed nodes [V]
    int nr_iterations = 0;       ///< NR cost of the solve
    std::string strategy;        ///< "warm", "nr", "gmin", "source";
                                 ///< "stored" on a store-resumed or
                                 ///< carried record
    std::size_t symbolic_cache_hits = 0; ///< kernel adopted the shared order
    double ordering_seconds = 0.0;       ///< sparse one-time analysis time
    double numeric_seconds = 0.0;        ///< sparse refactor time
    /// Verdict carried from a baseline store by the incremental engine.
    bool carried = false;
    /// Why the solve (or the deviation measurement) failed; empty when
    /// converged.
    std::string error;
    std::uint32_t attempts = 1;  ///< solve attempts (1 = no retry)
    /// The retry ladder was exhausted: every attempt failed.  Disjoint
    /// from plain `failed` (!converged && !quarantined).
    bool quarantined = false;
    std::string retry_log;  ///< one entry per failed attempt
};

struct DcScreenResult {
    std::map<std::string, double> nominal_op;  ///< fault-free node voltages
    int nominal_iterations = 0;  ///< NR cost of the nominal (cold) solve
    std::vector<DcFaultResult> results;
    batch::BatchStats batch;     ///< scheduler / collapse / warm-start stats

    std::size_t detected() const;
    /// DC fault coverage in percent.
    double coverage() const;
    /// Faults a static test cannot see (candidates for the transient run).
    std::vector<int> undetected_ids() const;
    /// Faults that failed without exhausting the retry ladder.
    std::size_t failed() const;
    /// Faults retired by the retry ladder: every rung failed.
    std::size_t quarantined() const;
};

/// Run the DC screen over a fault list.
DcScreenResult run_dc_screen(const netlist::Circuit& ckt,
                             const lift::FaultList& faults,
                             const DcScreenOptions& opt = {});

/// Manifest hash of the DC screen (ckt, faults, opt); same contract as
/// campaign_manifest() for the transient runner.
std::uint64_t dc_screen_manifest(const netlist::Circuit& ckt,
                                 const lift::FaultList& faults,
                                 const DcScreenOptions& opt = {});

/// Store-record round trip for one DC fault verdict (the incremental
/// engine carries these across layout revisions).
batch::FaultSimResult dc_to_record(const DcFaultResult& r);
DcFaultResult dc_from_record(const batch::FaultSimResult& rec);

} // namespace catlift::anafault
