// catlift/robust/failpoint.h
//
// Deterministic failpoint framework: named fault-injection sites compiled
// into the production binaries, off by default, armed by tests / CI / the
// CLI to prove the campaign's failure-containment behavior byte for byte.
// Follows the src/obs/ discipline: a disarmed site costs one relaxed
// atomic load and a branch, so the hot paths keep their <2% overhead
// guarantee with the framework compiled in.
//
// A site is a named call:
//
//     if (auto fp = robust::hit("store.append")) { ...site-specific... }
//
// Arming binds a site name to an action, an optional parameter and a hit
// window.  Spec grammar (env CATLIFT_FAILPOINTS or `anafaultc
// --failpoints`):
//
//     name=action[:param][@first[+count]] [;,] ...
//
//   action  error       throw catlift::Error        (handled in hit())
//           throw       throw std::runtime_error    (handled in hit())
//           oor         throw std::out_of_range     (handled in hit())
//           crash       std::_Exit(137)             (handled in hit())
//           sleep:MS    sleep MS milliseconds       (handled in hit())
//           torn        signal: site tears the operation (store.append)
//           torn_crash  signal: tear, then _Exit(137)    (store.append)
//           singular    signal: force factor failure     (kernel.factor)
//           nan         signal: poison the solution      (kernel.solve)
//           poison:ID   signal: fault ID crashes the worker (worker.fault)
//   first   1-based hit index the window opens at (default 1)
//   count   number of hits that fire (default: every hit from `first`)
//
// e.g. "store.append=torn@3" tears the 3rd append and every later one is
// normal; "kernel.factor=singular@1+2" forces the first two
// factorizations singular.  Hit counters are per-name atomics, so with a
// single worker thread the firing sequence is fully deterministic; tests
// that need cross-thread determinism pin threads=1 or use wide windows.
//
// Generic actions (error/throw/oor/crash/sleep) are executed inside
// hit() itself -- any site can exercise them.  Signal actions are
// returned to the site, which implements the named misbehavior; a signal
// a site does not understand is ignored.  Every firing increments the
// obs counter `failpoint.fired` and emits a `failpoint_hit` event when
// observability is on.  The site catalog lives in docs/robustness.md.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace catlift::robust {

enum class FailAction : std::uint8_t {
    Error,       ///< throw catlift::Error (generic)
    Runtime,     ///< throw std::runtime_error (generic)
    OutOfRange,  ///< throw std::out_of_range (generic)
    Crash,       ///< std::_Exit(137) (generic)
    Sleep,       ///< sleep param milliseconds (generic)
    Torn,        ///< signal: tear the operation mid-way
    TornCrash,   ///< signal: tear, then _Exit(137)
    Singular,    ///< signal: force a factorization failure
    Nan,         ///< signal: poison the solution vector
    Poison,      ///< signal: the fault id in `param` kills the worker
};

/// One firing, as returned to a site for signal actions.
struct FailHit {
    FailAction action = FailAction::Error;
    double param = 0.0;
};

/// Introspection row for --stats and tests.
struct FailpointStatus {
    std::string name;
    FailAction action = FailAction::Error;
    std::uint64_t hits = 0;   ///< times the site was reached while armed
    std::uint64_t fired = 0;  ///< times the hit window matched
};

namespace detail {
extern std::atomic<int> g_armed;
std::optional<FailHit> hit_slow(const char* site);
}  // namespace detail

/// True when any failpoint is armed (one relaxed load).
inline bool armed() noexcept {
    return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

/// The failpoint site: no-op (nullopt) unless `site` is armed and its hit
/// window matches.  Generic actions throw / crash / sleep from inside;
/// signal actions are returned for the site to interpret.
inline std::optional<FailHit> hit(const char* site) {
    if (!armed()) return std::nullopt;
    return detail::hit_slow(site);
}

/// Arm failpoints from a spec string (grammar above).  Specs accumulate;
/// re-arming a name replaces its entry.  Throws catlift::Error on a
/// malformed spec.
void arm(const std::string& spec);

/// Arm from the CATLIFT_FAILPOINTS environment variable (no-op when
/// unset or empty).
void arm_from_env();

/// Disarm everything and reset all hit counters.
void disarm_all();

/// Snapshot of every armed failpoint's counters.
std::vector<FailpointStatus> status();

/// Total firings across all failpoints since the last disarm_all().
std::uint64_t total_fired();

}  // namespace catlift::robust
