#include "robust/failpoint.h"

#include "core/thread_annotations.h"
#include "geom/base.h"
#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace catlift::robust {

namespace detail {
std::atomic<int> g_armed{0};
}  // namespace detail

namespace {

struct Entry {
    FailAction action = FailAction::Error;
    double param = 0.0;
    std::uint64_t first = 1;                ///< 1-based hit the window opens at
    std::uint64_t count = ~std::uint64_t{0};  ///< hits that fire
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
};

/// The armed-failpoint registry: entries (and their hit counters, which
/// every armed `hit()` bumps) are guarded by `mu`; `detail::g_armed`
/// mirrors the entry count so the disarmed fast path stays lock-free.
struct FailTable {
    Mutex mu;
    std::vector<std::pair<std::string, Entry>> entries
        CATLIFT_GUARDED_BY(mu);
};

FailTable& table() {
    static FailTable* t = new FailTable;  // outlives worker threads
    return *t;
}

FailAction parse_action(const std::string& word, double& param) {
    const auto colon = word.find(':');
    const std::string name = word.substr(0, colon);
    if (colon != std::string::npos) param = std::stod(word.substr(colon + 1));
    if (name == "error") return FailAction::Error;
    if (name == "throw") return FailAction::Runtime;
    if (name == "oor") return FailAction::OutOfRange;
    if (name == "crash") return FailAction::Crash;
    if (name == "sleep") return FailAction::Sleep;
    if (name == "torn") return FailAction::Torn;
    if (name == "torn_crash") return FailAction::TornCrash;
    if (name == "singular") return FailAction::Singular;
    if (name == "nan") return FailAction::Nan;
    if (name == "poison") return FailAction::Poison;
    throw Error("failpoint: unknown action '" + name + "'");
}

void arm_one(const std::string& item) {
    const auto eq = item.find('=');
    require(eq != std::string::npos && eq > 0,
            "failpoint: spec item '" + item + "' is not name=action");
    const std::string name = item.substr(0, eq);
    std::string rhs = item.substr(eq + 1);

    Entry e;
    const auto at = rhs.find('@');
    if (at != std::string::npos) {
        std::string window = rhs.substr(at + 1);
        rhs = rhs.substr(0, at);
        const auto plus = window.find('+');
        try {
            if (plus != std::string::npos) {
                e.first = std::stoull(window.substr(0, plus));
                e.count = std::stoull(window.substr(plus + 1));
            } else {
                e.first = std::stoull(window);
            }
        } catch (const std::exception&) {
            throw Error("failpoint: bad hit window in '" + item + "'");
        }
        require(e.first >= 1, "failpoint: hit index is 1-based: " + item);
    }
    try {
        e.action = parse_action(rhs, e.param);
    } catch (const Error&) {
        throw;
    } catch (const std::exception&) {
        throw Error("failpoint: bad action/param in '" + item + "'");
    }

    FailTable& t = table();
    MutexLock lk(t.mu);
    for (auto& [n, old] : t.entries)
        if (n == name) {
            old = e;
            return;
        }
    t.entries.emplace_back(name, e);
    detail::g_armed.store(static_cast<int>(t.entries.size()),
                          std::memory_order_relaxed);
}

}  // namespace

void arm(const std::string& spec) {
    std::string item;
    for (std::size_t i = 0; i <= spec.size(); ++i) {
        const char c = i < spec.size() ? spec[i] : ';';
        if (c == ';' || c == ',') {
            // Trim surrounding whitespace.
            const auto b = item.find_first_not_of(" \t");
            const auto e = item.find_last_not_of(" \t");
            if (b != std::string::npos) arm_one(item.substr(b, e - b + 1));
            item.clear();
        } else {
            item.push_back(c);
        }
    }
}

void arm_from_env() {
    const char* spec = std::getenv("CATLIFT_FAILPOINTS");
    if (spec && *spec) arm(spec);
}

void disarm_all() {
    FailTable& t = table();
    MutexLock lk(t.mu);
    t.entries.clear();
    detail::g_armed.store(0, std::memory_order_relaxed);
}

std::vector<FailpointStatus> status() {
    FailTable& t = table();
    MutexLock lk(t.mu);
    std::vector<FailpointStatus> out;
    for (const auto& [name, e] : t.entries)
        out.push_back({name, e.action, e.hits, e.fired});
    return out;
}

std::uint64_t total_fired() {
    FailTable& t = table();
    MutexLock lk(t.mu);
    std::uint64_t n = 0;
    for (const auto& [name, e] : t.entries) n += e.fired;
    return n;
}

namespace detail {

std::optional<FailHit> hit_slow(const char* site) {
    FailHit h;
    {
        FailTable& t = table();
        MutexLock lk(t.mu);
        Entry* e = nullptr;
        for (auto& [name, entry] : t.entries)
            if (name == site) {
                e = &entry;
                break;
            }
        if (!e) return std::nullopt;
        const std::uint64_t n = ++e->hits;
        if (n < e->first || n - e->first >= e->count) return std::nullopt;
        ++e->fired;
        h.action = e->action;
        h.param = e->param;
    }
    if (obs::metrics_enabled())
        obs::Registry::global().counter("failpoint.fired").add(1);
    if (obs::events_enabled())
        obs::emit_event("failpoint_hit",
                        {obs::arg("site", std::string(site)),
                         obs::arg("action",
                                  static_cast<std::int64_t>(h.action))});
    switch (h.action) {
        case FailAction::Error:
            throw Error(std::string("failpoint '") + site +
                        "': injected error");
        case FailAction::Runtime:
            throw std::runtime_error(std::string("failpoint '") + site +
                                     "': injected exception");
        case FailAction::OutOfRange:
            throw std::out_of_range(std::string("failpoint '") + site +
                                    "': injected out_of_range");
        case FailAction::Crash:
            std::_Exit(137);
        case FailAction::Sleep:
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(h.param));
            return std::nullopt;
        default:
            return h;  // signal actions: the site interprets them
    }
}

}  // namespace detail

}  // namespace catlift::robust
