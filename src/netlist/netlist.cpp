#include "netlist/netlist.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

namespace catlift::netlist {

const char* to_string(DeviceKind k) {
    switch (k) {
        case DeviceKind::Resistor: return "resistor";
        case DeviceKind::Capacitor: return "capacitor";
        case DeviceKind::VSource: return "vsource";
        case DeviceKind::ISource: return "isource";
        case DeviceKind::Mosfet: return "mosfet";
    }
    return "?";
}

std::string canon_node(std::string n) {
    std::transform(n.begin(), n.end(), n.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (n == "gnd" || n == "vss!" || n == "0") return "0";
    return n;
}

// ---------------------------------------------------------------------------
// SourceSpec

double SourceSpec::dc_value() const {
    switch (kind) {
        case Kind::Dc: return dc;
        case Kind::Pulse: return v1;
        case Kind::Pwl: return pwl.empty() ? 0.0 : pwl.front().second;
        case Kind::Sin: return vo;
    }
    return 0.0;
}

double SourceSpec::value_at(double t) const {
    switch (kind) {
        case Kind::Dc: return dc;
        case Kind::Pulse: {
            if (t < td) return v1;
            // Position within the period.
            double tp = t - td;
            if (per > 0) tp = std::fmod(tp, per);
            if (tp < tr) return v1 + (v2 - v1) * (tp / tr);
            tp -= tr;
            if (tp < pw) return v2;
            tp -= pw;
            if (tp < tf) return v2 + (v1 - v2) * (tp / tf);
            return v1;
        }
        case Kind::Pwl: {
            if (pwl.empty()) return 0.0;
            if (t <= pwl.front().first) return pwl.front().second;
            for (std::size_t i = 1; i < pwl.size(); ++i) {
                if (t <= pwl[i].first) {
                    const auto& [t0, y0] = pwl[i - 1];
                    const auto& [t1, y1] = pwl[i];
                    if (t1 == t0) return y1;
                    return y0 + (y1 - y0) * (t - t0) / (t1 - t0);
                }
            }
            return pwl.back().second;
        }
        case Kind::Sin: {
            if (t < sin_td) return vo;
            const double arg = 2.0 * M_PI * freq * (t - sin_td);
            const double damp = std::exp(-(t - sin_td) * theta);
            return vo + va * damp * std::sin(arg);
        }
    }
    return 0.0;
}

SourceSpec SourceSpec::make_pulse(double v1, double v2, double td, double tr,
                                  double tf, double pw, double per) {
    SourceSpec s;
    s.kind = Kind::Pulse;
    s.v1 = v1;
    s.v2 = v2;
    s.td = td;
    s.tr = tr;
    s.tf = tf;
    s.pw = pw;
    s.per = per;
    return s;
}

// ---------------------------------------------------------------------------
// MosModel

double MosModel::cox_per_area() const {
    constexpr double kEpsOx = 3.9 * 8.854e-12;  // F/m
    require(tox > 0, "MosModel: tox must be positive");
    return kEpsOx / tox;
}

// ---------------------------------------------------------------------------
// Circuit

std::size_t Circuit::terminal_count(DeviceKind k) {
    switch (k) {
        case DeviceKind::Resistor:
        case DeviceKind::Capacitor:
        case DeviceKind::VSource:
        case DeviceKind::ISource: return 2;
        case DeviceKind::Mosfet: return 4;
    }
    return 0;
}

Device& Circuit::add(Device d) {
    require(!d.name.empty(), "Circuit::add: device must have a name");
    require(!has_device(d.name), "Circuit::add: duplicate device " + d.name);
    require(d.nodes.size() == terminal_count(d.kind),
            "Circuit::add: wrong terminal count on " + d.name);
    for (auto& n : d.nodes) n = canon_node(n);
    devices.push_back(std::move(d));
    return devices.back();
}

Device& Circuit::add_resistor(const std::string& name, const std::string& n1,
                              const std::string& n2, double ohms) {
    require(ohms > 0, "resistor " + name + " must have positive resistance");
    Device d;
    d.name = name;
    d.kind = DeviceKind::Resistor;
    d.nodes = {n1, n2};
    d.value = ohms;
    return add(std::move(d));
}

Device& Circuit::add_capacitor(const std::string& name, const std::string& n1,
                               const std::string& n2, double farads,
                               std::optional<double> ic) {
    require(farads > 0, "capacitor " + name + " must have positive value");
    Device d;
    d.name = name;
    d.kind = DeviceKind::Capacitor;
    d.nodes = {n1, n2};
    d.value = farads;
    d.ic = ic;
    return add(std::move(d));
}

Device& Circuit::add_vsource(const std::string& name, const std::string& np,
                             const std::string& nm, SourceSpec spec) {
    Device d;
    d.name = name;
    d.kind = DeviceKind::VSource;
    d.nodes = {np, nm};
    d.source = spec;
    return add(std::move(d));
}

Device& Circuit::add_isource(const std::string& name, const std::string& np,
                             const std::string& nm, SourceSpec spec) {
    Device d;
    d.name = name;
    d.kind = DeviceKind::ISource;
    d.nodes = {np, nm};
    d.source = spec;
    return add(std::move(d));
}

Device& Circuit::add_mosfet(const std::string& name, const std::string& dn,
                            const std::string& g, const std::string& s,
                            const std::string& b, const std::string& model,
                            double w, double l) {
    require(w > 0 && l > 0, "mosfet " + name + " needs positive W and L");
    Device d;
    d.name = name;
    d.kind = DeviceKind::Mosfet;
    d.nodes = {dn, g, s, b};
    d.model = model;
    d.w = w;
    d.l = l;
    return add(std::move(d));
}

void Circuit::add_model(MosModel m) {
    require(!m.name.empty(), "model card must have a name");
    models[m.name] = std::move(m);
}

std::vector<std::string> Circuit::node_names() const {
    std::set<std::string> s;
    for (const Device& d : devices)
        for (const std::string& n : d.nodes) s.insert(n);
    return {s.begin(), s.end()};
}

bool Circuit::has_device(const std::string& name) const {
    return std::any_of(devices.begin(), devices.end(),
                       [&](const Device& d) { return d.name == name; });
}

const Device& Circuit::device(const std::string& name) const {
    for (const Device& d : devices)
        if (d.name == name) return d;
    throw Error("Circuit: no device named " + name);
}

Device& Circuit::device(const std::string& name) {
    for (Device& d : devices)
        if (d.name == name) return d;
    throw Error("Circuit: no device named " + name);
}

const MosModel& Circuit::model_of(const Device& d) const {
    auto it = models.find(d.model);
    require(it != models.end(),
            "Circuit: missing .model card '" + d.model + "' for " + d.name);
    return it->second;
}

std::size_t Circuit::count(DeviceKind k) const {
    return static_cast<std::size_t>(
        std::count_if(devices.begin(), devices.end(),
                      [&](const Device& d) { return d.kind == k; }));
}

void Circuit::rename_node(const std::string& from, const std::string& to) {
    const std::string f = canon_node(from), t = canon_node(to);
    for (Device& d : devices)
        for (std::string& n : d.nodes)
            if (n == f) n = t;
}

void Circuit::rename_node_on(
    const std::vector<std::pair<std::string, int>>& terminals,
    const std::string& to) {
    const std::string t = canon_node(to);
    for (const auto& [dev, term] : terminals) {
        Device& d = device(dev);
        require(term >= 0 && static_cast<std::size_t>(term) < d.nodes.size(),
                "rename_node_on: bad terminal index on " + dev);
        d.nodes[static_cast<std::size_t>(term)] = t;
    }
}

void Circuit::remove_device(const std::string& name) {
    auto it = std::find_if(devices.begin(), devices.end(),
                           [&](const Device& d) { return d.name == name; });
    require(it != devices.end(), "remove_device: no device named " + name);
    devices.erase(it);
}

std::string Circuit::fresh_node(const std::string& prefix) const {
    const auto nodes = node_names();
    std::set<std::string> used(nodes.begin(), nodes.end());
    for (int i = 1;; ++i) {
        std::string cand = canon_node(prefix + std::to_string(i));
        if (!used.count(cand)) return cand;
    }
}

std::string Circuit::fresh_device(const std::string& prefix) const {
    for (int i = 1;; ++i) {
        std::string cand = prefix + std::to_string(i);
        if (!has_device(cand)) return cand;
    }
}

void Circuit::validate() const {
    std::set<std::string> names;
    for (const Device& d : devices) {
        require(names.insert(d.name).second, "duplicate device " + d.name);
        require(d.nodes.size() == terminal_count(d.kind),
                "wrong terminal count on " + d.name);
        switch (d.kind) {
            case DeviceKind::Resistor:
                require(d.value > 0, "non-positive resistor " + d.name);
                break;
            case DeviceKind::Capacitor:
                require(d.value > 0, "non-positive capacitor " + d.name);
                break;
            case DeviceKind::Mosfet:
                require(models.count(d.model) > 0,
                        "missing model for " + d.name);
                require(d.w > 0 && d.l > 0, "bad W/L on " + d.name);
                break;
            default: break;
        }
    }
}

} // namespace catlift::netlist
