// catlift/netlist/units.h
//
// SPICE numeric literals: value parsing with engineering suffixes
// (f p n u m k meg g t) and compact engineering-notation printing.

#pragma once

#include <string>
#include <string_view>

namespace catlift::netlist {

/// Parse a SPICE number such as "2p", "4.7k", "1MEG", "10u", "1e-8".
/// Trailing unit letters after the suffix are ignored (SPICE tradition:
/// "10uF" == "10u").  Throws catlift::Error on garbage.
double parse_value(std::string_view text);

/// True if `text` parses as a SPICE number.
bool is_value(std::string_view text);

/// Render a value with an engineering suffix, e.g. 2e-12 -> "2p",
/// 4700 -> "4.7k".  Round-trips through parse_value.
std::string format_value(double v);

} // namespace catlift::netlist
