#include "netlist/parser.h"

#include "netlist/units.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace catlift::netlist {

namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

/// Logical line after continuation-joining, with its starting line number.
struct LogicalLine {
    std::string text;
    int line_no = 0;
};

[[noreturn]] void fail(int line_no, const std::string& msg) {
    throw Error("spice parse error (line " + std::to_string(line_no) +
                "): " + msg);
}

/// Strip in-line comments introduced by ';' or '$ '.
std::string strip_comment(const std::string& s) {
    std::size_t cut = s.size();
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == ';') {
            cut = i;
            break;
        }
        if (s[i] == '$' && (i + 1 == s.size() || std::isspace(static_cast<unsigned char>(s[i + 1])))) {
            cut = i;
            break;
        }
    }
    return s.substr(0, cut);
}

/// Tokenise one logical line.  Parentheses and '=' become separators so that
/// "PULSE(0 5 0 10n)" and "W=10u" split cleanly; the '(' of "V(3)" likewise.
std::vector<std::string> tokenize(const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            out.push_back(cur);
            cur.clear();
        }
    };
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
            c == ')' || c == '=' || c == ',') {
            flush();
        } else {
            cur.push_back(c);
        }
    }
    flush();
    return out;
}

/// Parse the trailing portion of a V/I card into a SourceSpec.
/// `toks` holds the tokens after the two node names.
SourceSpec parse_source(const std::vector<std::string>& toks, int line_no) {
    SourceSpec spec;
    if (toks.empty()) return spec;  // defaults to DC 0

    std::size_t i = 0;
    // Optional leading "DC <value>" or bare value.
    if (lower(toks[i]) == "dc") {
        ++i;
        if (i >= toks.size()) fail(line_no, "DC needs a value");
        spec.dc = parse_value(toks[i++]);
    } else if (is_value(toks[i])) {
        spec.dc = parse_value(toks[i++]);
    }
    if (i < toks.size() && lower(toks[i]) == "ac") {
        ++i;
        if (i >= toks.size()) fail(line_no, "AC needs a magnitude");
        spec.ac_mag = parse_value(toks[i++]);
    }
    if (i >= toks.size()) return spec;

    const std::string kw = lower(toks[i]);
    auto num = [&](std::size_t k, double dflt) {
        return (i + 1 + k < toks.size() + 0u && i + 1 + k < toks.size())
                   ? parse_value(toks[i + 1 + k])
                   : dflt;
    };
    auto have = [&](std::size_t k) { return i + 1 + k < toks.size(); };

    if (kw == "pulse") {
        if (!have(1)) fail(line_no, "PULSE needs at least v1 v2");
        spec.kind = SourceSpec::Kind::Pulse;
        spec.v1 = num(0, 0);
        spec.v2 = num(1, 0);
        spec.td = num(2, 0);
        spec.tr = num(3, 1e-9);
        spec.tf = num(4, 1e-9);
        spec.pw = num(5, 1e-3);
        spec.per = num(6, 2e-3);
        spec.dc = spec.v1;
    } else if (kw == "pwl") {
        spec.kind = SourceSpec::Kind::Pwl;
        std::size_t k = 0;
        while (have(k) && have(k + 1)) {
            const double t = parse_value(toks[i + 1 + k]);
            const double v = parse_value(toks[i + 2 + k]);
            if (!spec.pwl.empty() && t <= spec.pwl.back().first)
                fail(line_no, "PWL times must increase");
            spec.pwl.emplace_back(t, v);
            k += 2;
        }
        if (spec.pwl.empty()) fail(line_no, "PWL needs (t,v) pairs");
        spec.dc = spec.pwl.front().second;
    } else if (kw == "sin") {
        if (!have(2)) fail(line_no, "SIN needs vo va freq");
        spec.kind = SourceSpec::Kind::Sin;
        spec.vo = num(0, 0);
        spec.va = num(1, 0);
        spec.freq = num(2, 1e6);
        spec.sin_td = num(3, 0);
        spec.theta = num(4, 0);
        spec.dc = spec.vo;
    } else {
        fail(line_no, "unknown source spec '" + toks[i] + "'");
    }
    return spec;
}

/// Parse "key value key value ..." pairs (tokenizer removed '=').
void parse_model_params(MosModel& m, const std::vector<std::string>& toks,
                        std::size_t start, int line_no) {
    for (std::size_t i = start; i + 1 < toks.size(); i += 2) {
        const std::string key = lower(toks[i]);
        const double v = parse_value(toks[i + 1]);
        if (key == "vto" || key == "vt0")
            m.vto = v;
        else if (key == "kp")
            m.kp = v;
        else if (key == "lambda")
            m.lambda = v;
        else if (key == "tox")
            m.tox = v;
        else if (key == "cgso")
            m.cgso = v;
        else if (key == "cgdo")
            m.cgdo = v;
        else if (key == "cj")
            m.cj_bottom = v;
        else
            fail(line_no, "unknown model parameter '" + key + "'");
    }
}

} // namespace

Circuit parse_spice(std::istream& in) {
    // Phase 1: raw lines -> logical lines (handle '+' continuations).
    std::vector<LogicalLine> lines;
    std::string raw;
    int line_no = 0;
    bool first = true;
    std::string title;
    while (std::getline(in, raw)) {
        ++line_no;
        if (first) {
            title = raw;
            first = false;
            continue;
        }
        if (raw.empty()) continue;
        if (raw[0] == '*') continue;  // comment card
        raw = strip_comment(raw);
        // Trim trailing whitespace.
        while (!raw.empty() && std::isspace(static_cast<unsigned char>(raw.back())))
            raw.pop_back();
        if (raw.empty()) continue;
        if (raw[0] == '+') {
            if (lines.empty()) fail(line_no, "continuation without a card");
            lines.back().text += " " + raw.substr(1);
        } else {
            lines.push_back({raw, line_no});
        }
    }

    Circuit ckt;
    ckt.title = title;

    // Phase 2: interpret each card.
    for (const LogicalLine& ll : lines) {
        const auto toks = tokenize(ll.text);
        if (toks.empty()) continue;
        const std::string head = lower(toks[0]);

        if (head[0] == '.') {
            if (head == ".end") break;
            if (head == ".model") {
                if (toks.size() < 3) fail(ll.line_no, ".model needs name+type");
                MosModel m;
                m.name = toks[1];
                const std::string type = lower(toks[2]);
                if (type == "nmos")
                    m.is_nmos = true;
                else if (type == "pmos")
                    m.is_nmos = false;
                else
                    fail(ll.line_no, "unsupported model type " + type);
                parse_model_params(m, toks, 3, ll.line_no);
                ckt.add_model(std::move(m));
            } else if (head == ".tran") {
                if (toks.size() < 3) fail(ll.line_no, ".tran tstep tstop");
                TranSpec t;
                t.tstep = parse_value(toks[1]);
                t.tstop = parse_value(toks[2]);
                if (toks.size() > 3) t.tstart = parse_value(toks[3]);
                ckt.tran = t;
            } else if (head == ".ac") {
                // .ac dec N fstart fstop  (only the decade sweep form)
                if (toks.size() < 5 || lower(toks[1]) != "dec")
                    fail(ll.line_no, ".ac dec N fstart fstop");
                AcCard a;
                a.points_per_decade =
                    static_cast<int>(parse_value(toks[2]));
                a.fstart = parse_value(toks[3]);
                a.fstop = parse_value(toks[4]);
                if (a.points_per_decade < 1 || a.fstart <= 0 ||
                    a.fstop <= a.fstart)
                    fail(ll.line_no, "bad .ac parameters");
                ckt.ac = a;
            } else if (head == ".save" || head == ".print" ||
                       head == ".plot") {
                // Accept forms: .save V(3) V(out) ... ; tokens arrive as
                // "v" "3" "v" "out" after tokenisation, or "tran" first.
                for (std::size_t i = 1; i + 1 <= toks.size(); ++i) {
                    const std::string t = lower(toks[i]);
                    if (t == "tran" || t == "v") continue;
                    ckt.save_nodes.push_back(canon_node(toks[i]));
                }
            } else if (head == ".ic") {
                // ".ic V(node) value ..." -- tokens arrive as: v node value.
                // Initial conditions are carried on capacitor IC= fields in
                // this subset; the card is validated but otherwise ignored.
                if ((toks.size() - 1) % 3 != 0)
                    fail(ll.line_no, ".ic expects V(node)=value groups");
                for (std::size_t i = 1; i + 3 <= toks.size(); i += 3) {
                    if (lower(toks[i]) != "v")
                        fail(ll.line_no, ".ic expects V(node)=value");
                    parse_value(toks[i + 2]);
                }
            } else if (head == ".options" || head == ".option" || head == ".temp") {
                // accepted and ignored (documented subset)
            } else {
                fail(ll.line_no, "unsupported card " + head);
            }
            continue;
        }

        // Element card.
        const char kind = head[0];
        Device d;
        d.name = toks[0];
        switch (kind) {
            case 'r': {
                if (toks.size() < 4) fail(ll.line_no, "R card: Rx n1 n2 val");
                d.kind = DeviceKind::Resistor;
                d.nodes = {toks[1], toks[2]};
                d.value = parse_value(toks[3]);
                if (d.value <= 0) fail(ll.line_no, "non-positive resistance");
                break;
            }
            case 'c': {
                if (toks.size() < 4) fail(ll.line_no, "C card: Cx n1 n2 val");
                d.kind = DeviceKind::Capacitor;
                d.nodes = {toks[1], toks[2]};
                d.value = parse_value(toks[3]);
                if (d.value <= 0) fail(ll.line_no, "non-positive capacitance");
                for (std::size_t i = 4; i + 1 < toks.size() + 1; i += 2) {
                    if (i + 1 < toks.size() && lower(toks[i]) == "ic")
                        d.ic = parse_value(toks[i + 1]);
                }
                break;
            }
            case 'v':
            case 'i': {
                if (toks.size() < 3) fail(ll.line_no, "source: Xx n+ n- spec");
                d.kind = (kind == 'v') ? DeviceKind::VSource
                                       : DeviceKind::ISource;
                d.nodes = {toks[1], toks[2]};
                d.source = parse_source(
                    std::vector<std::string>(toks.begin() + 3, toks.end()),
                    ll.line_no);
                break;
            }
            case 'm': {
                if (toks.size() < 6)
                    fail(ll.line_no, "M card: Mx nd ng ns nb model [W= L=]");
                d.kind = DeviceKind::Mosfet;
                d.nodes = {toks[1], toks[2], toks[3], toks[4]};
                d.model = toks[5];
                for (std::size_t i = 6; i + 1 < toks.size(); i += 2) {
                    const std::string key = lower(toks[i]);
                    const double v = parse_value(toks[i + 1]);
                    if (key == "w")
                        d.w = v;
                    else if (key == "l")
                        d.l = v;
                    else
                        fail(ll.line_no, "unknown M parameter " + key);
                }
                break;
            }
            default:
                fail(ll.line_no, "unsupported element '" + toks[0] + "'");
        }
        try {
            ckt.add(std::move(d));
        } catch (const Error& e) {
            fail(ll.line_no, e.what());
        }
    }

    // Validate model references now that all cards are read.
    for (const Device& d : ckt.devices) {
        if (d.kind == DeviceKind::Mosfet)
            require(ckt.models.count(d.model) > 0,
                    "deck references missing model '" + d.model + "' on " +
                        d.name);
    }
    return ckt;
}

Circuit parse_spice(const std::string& text) {
    std::istringstream is(text);
    return parse_spice(is);
}

Circuit parse_spice_file(const std::string& path) {
    std::ifstream f(path);
    require(f.good(), "cannot open spice deck: " + path);
    return parse_spice(f);
}

} // namespace catlift::netlist
