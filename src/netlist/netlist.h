// catlift/netlist/netlist.h
//
// Circuit representation shared by the whole tool chain: the schematic
// entry, the layout extractor's output, AnaFAULT's fault-injection
// transforms and the SPICE engine all operate on this structure.
//
// The model deliberately mirrors a flat SPICE deck: a list of devices over
// string-named nodes, a set of .model cards, and the analysis requests.
// Node "0" (alias "gnd") is ground.

#pragma once

#include "geom/base.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace catlift::netlist {

/// Ground node name.  "gnd" is accepted on input and canonicalised to "0".
inline constexpr const char* kGround = "0";

/// Device classes supported by the kernel simulator.
enum class DeviceKind {
    Resistor,   ///< R<name> n1 n2 value
    Capacitor,  ///< C<name> n1 n2 value [ic=v]
    VSource,    ///< V<name> n+ n- spec
    ISource,    ///< I<name> n+ n- spec
    Mosfet,     ///< M<name> nd ng ns nb model W= L=
};

const char* to_string(DeviceKind k);

/// Independent source waveform description (DC / PULSE / PWL / SIN).
struct SourceSpec {
    enum class Kind { Dc, Pulse, Pwl, Sin };
    Kind kind = Kind::Dc;

    double dc = 0.0;      ///< DC level (also the t<0 value for transient).
    double ac_mag = 0.0;  ///< small-signal amplitude for AC analysis

    // PULSE(v1 v2 td tr tf pw per)
    double v1 = 0.0, v2 = 0.0, td = 0.0, tr = 1e-9, tf = 1e-9, pw = 1e-6,
           per = 2e-6;

    // PWL(t1 v1 t2 v2 ...), times strictly increasing.
    std::vector<std::pair<double, double>> pwl;

    // SIN(vo va freq [td] [theta])
    double vo = 0.0, va = 0.0, freq = 1e6, sin_td = 0.0, theta = 0.0;

    /// Instantaneous value at time t (t in seconds).
    double value_at(double t) const;

    /// Value used for DC operating-point analysis.
    double dc_value() const;

    static SourceSpec make_dc(double v) {
        SourceSpec s;
        s.kind = Kind::Dc;
        s.dc = v;
        return s;
    }
    static SourceSpec make_pulse(double v1, double v2, double td, double tr,
                                 double tf, double pw, double per);
};

/// MOS level-1 (Shichman-Hodges) model card.
///
/// Only the parameters the level-1 equations consume are stored; gate
/// capacitances are derived from tox (area term) plus the overlap terms so
/// that every digital node in a netlist has a capacitive path to ground --
/// a requirement for well-posed transient analysis of regenerative circuits
/// such as the paper's Schmitt trigger.
struct MosModel {
    std::string name;
    bool is_nmos = true;
    double vto = 0.8;       ///< threshold voltage [V] (negative for PMOS card value |vto| applied with sign internally)
    double kp = 50e-6;      ///< transconductance parameter [A/V^2]
    double lambda = 0.02;   ///< channel-length modulation [1/V]
    double tox = 20e-9;     ///< gate oxide thickness [m] -> Cox' = eps_ox/tox
    double cgso = 0.3e-9;   ///< gate-source overlap cap [F/m of width]
    double cgdo = 0.3e-9;   ///< gate-drain overlap cap [F/m of width]
    double cj_bottom = 0.0; ///< junction cap per area [F/m^2] (optional)

    /// Gate oxide capacitance per area [F/m^2].
    double cox_per_area() const;
};

/// One circuit element.
struct Device {
    std::string name;                ///< full SPICE name, e.g. "M11", "C1"
    DeviceKind kind = DeviceKind::Resistor;
    std::vector<std::string> nodes;  ///< terminals, SPICE order
    double value = 0.0;              ///< R [ohm] / C [farad]
    std::optional<double> ic;        ///< capacitor initial condition [V]
    SourceSpec source;               ///< V/I sources
    std::string model;               ///< MOS model name
    double w = 10e-6;                ///< MOS width [m]
    double l = 2e-6;                 ///< MOS length [m]

    // Terminal index aliases for MOS devices.
    static constexpr int kDrain = 0, kGate = 1, kSource = 2, kBulk = 3;

    const std::string& drain() const { return nodes[kDrain]; }
    const std::string& gate() const { return nodes[kGate]; }
    const std::string& source_node() const { return nodes[kSource]; }
};

/// Transient analysis request (.tran tstep tstop [tstart]).
struct TranSpec {
    double tstep = 1e-8;
    double tstop = 4e-6;
    double tstart = 0.0;
};

/// AC analysis request (.ac dec N fstart fstop).
struct AcCard {
    int points_per_decade = 10;
    double fstart = 1e3;
    double fstop = 1e9;
};

/// A flat circuit: devices + models + analysis cards.
class Circuit {
public:
    std::string title;
    std::vector<Device> devices;
    std::map<std::string, MosModel> models;
    std::optional<TranSpec> tran;
    std::optional<AcCard> ac;
    std::vector<std::string> save_nodes;  ///< .save/.print V(node) requests

    /// Add a device; throws on duplicate name or bad terminal count.
    Device& add(Device d);

    // -- convenience builders ------------------------------------------------
    Device& add_resistor(const std::string& name, const std::string& n1,
                         const std::string& n2, double ohms);
    Device& add_capacitor(const std::string& name, const std::string& n1,
                          const std::string& n2, double farads,
                          std::optional<double> ic = std::nullopt);
    Device& add_vsource(const std::string& name, const std::string& np,
                        const std::string& nm, SourceSpec spec);
    Device& add_isource(const std::string& name, const std::string& np,
                        const std::string& nm, SourceSpec spec);
    Device& add_mosfet(const std::string& name, const std::string& d,
                       const std::string& g, const std::string& s,
                       const std::string& b, const std::string& model,
                       double w, double l);
    void add_model(MosModel m);

    // -- queries -------------------------------------------------------------
    /// All node names (ground included if referenced), sorted.
    std::vector<std::string> node_names() const;

    /// Device by name; throws if absent.
    const Device& device(const std::string& name) const;
    Device& device(const std::string& name);
    bool has_device(const std::string& name) const;

    /// Model for a MOS device; throws if the card is missing.
    const MosModel& model_of(const Device& d) const;

    /// Number of devices of a given kind.
    std::size_t count(DeviceKind k) const;

    // -- transformations (used by AnaFAULT fault injection) ------------------
    /// Rename every occurrence of node `from` to `to`.
    void rename_node(const std::string& from, const std::string& to);

    /// Rename node `from` to `to` only on the listed device terminals
    /// (device name, terminal index).  This is the split-node primitive.
    void rename_node_on(
        const std::vector<std::pair<std::string, int>>& terminals,
        const std::string& to);

    /// Remove a device by name; throws if absent.
    void remove_device(const std::string& name);

    /// A node name of the form `prefix` not yet used in the circuit.
    std::string fresh_node(const std::string& prefix) const;

    /// A device name of the form `prefix...` not yet used.
    std::string fresh_device(const std::string& prefix) const;

    /// Validate structural invariants (terminal counts, model references,
    /// value sanity).  Throws catlift::Error on violation.
    void validate() const;

    /// Required terminal count for a device kind.
    static std::size_t terminal_count(DeviceKind k);
};

/// Canonicalise a node name ("gnd"/"GND" -> "0", otherwise lowercase).
std::string canon_node(std::string n);

} // namespace catlift::netlist
