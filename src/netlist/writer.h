// catlift/netlist/writer.h
//
// SPICE-deck writer: renders a Circuit back to standard SPICE text.
// write_spice(parse_spice(deck)) is semantically idempotent (tested), which
// is what lets AnaFAULT exchange mutated netlists with any external
// SPICE-compatible kernel, exactly as the paper's tool does with ELDO.

#pragma once

#include "netlist/netlist.h"

#include <iosfwd>
#include <string>

namespace catlift::netlist {

/// Render the circuit as a SPICE deck (with title and .end).
std::string write_spice(const Circuit& ckt);

void write_spice(std::ostream& os, const Circuit& ckt);

/// Write to a file; throws on I/O failure.
void write_spice_file(const std::string& path, const Circuit& ckt);

} // namespace catlift::netlist
