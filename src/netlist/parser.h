// catlift/netlist/parser.h
//
// SPICE-deck reader.  Understands the subset the paper's flow needs:
//
//   * title line (first line of the deck)
//   * comment lines (*) and in-line comments (; or $)
//   * continuation lines (+)
//   * R/C/V/I/M element cards with engineering-suffix values
//   * V/I source transients: DC, PULSE(...), PWL(...), SIN(...)
//   * .model <name> NMOS|PMOS (param=value ...)
//   * .tran tstep tstop [tstart]
//   * .save / .print / .plot  V(node) lists
//   * .ic V(node)=value
//   * .end
//
// The fault-injection algorithm of AnaFAULT "has been proven to work with
// standard SPICE netlists" (paper, section V); this parser plus the writer
// in writer.h give the same property to this reproduction: decks round-trip
// through text.

#pragma once

#include "netlist/netlist.h"

#include <iosfwd>
#include <string>

namespace catlift::netlist {

/// Parse a SPICE deck from text.  Throws catlift::Error with a line number
/// on malformed input.
Circuit parse_spice(const std::string& text);

/// Parse a deck from a stream.
Circuit parse_spice(std::istream& in);

/// Parse a deck from a file path.
Circuit parse_spice_file(const std::string& path);

} // namespace catlift::netlist
