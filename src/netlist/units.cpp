#include "netlist/units.h"

#include "geom/base.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace catlift::netlist {

namespace {

// Returns multiplier for the suffix starting at `s`, or 0 if not a suffix.
double suffix_multiplier(std::string_view s) {
    if (s.empty()) return 1.0;
    // Case-insensitive comparison on the first characters.
    auto lower = [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    };
    const char c0 = lower(s[0]);
    // "meg" must be checked before "m".
    if (s.size() >= 3 && c0 == 'm' && lower(s[1]) == 'e' && lower(s[2]) == 'g')
        return 1e6;
    switch (c0) {
        case 'f': return 1e-15;
        case 'p': return 1e-12;
        case 'n': return 1e-9;
        case 'u': return 1e-6;
        case 'm': return 1e-3;
        case 'k': return 1e3;
        case 'g': return 1e9;
        case 't': return 1e12;
        default: break;
    }
    // Unknown alpha suffix (e.g. unit letters like "V", "F") -> neutral.
    if (std::isalpha(static_cast<unsigned char>(s[0]))) return 1.0;
    return 0.0;  // trailing garbage that is not alphabetic
}

} // namespace

double parse_value(std::string_view text) {
    if (text.empty()) throw Error("parse_value: empty numeric field");
    std::string buf(text);
    char* end = nullptr;
    const double base = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str())
        throw Error("parse_value: not a number: '" + buf + "'");
    std::string_view rest(end);
    const double mult = suffix_multiplier(rest);
    if (mult == 0.0)
        throw Error("parse_value: bad suffix on '" + buf + "'");
    return base * mult;
}

bool is_value(std::string_view text) {
    try {
        parse_value(text);
        return true;
    } catch (const Error&) {
        return false;
    }
}

std::string format_value(double v) {
    if (v == 0.0) return "0";
    struct Suffix {
        double scale;
        const char* tag;
    };
    static constexpr Suffix table[] = {
        {1e12, "t"}, {1e9, "g"},  {1e6, "meg"}, {1e3, "k"},   {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},  {1e-12, "p"}, {1e-15, "f"},
    };
    const double mag = std::fabs(v);
    for (const auto& s : table) {
        if (mag >= s.scale * 0.9999999) {
            std::ostringstream os;
            os << v / s.scale << s.tag;
            return os.str();
        }
    }
    std::ostringstream os;
    os << v;
    return os.str();
}

} // namespace catlift::netlist
