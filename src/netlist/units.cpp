#include "netlist/units.h"

#include "geom/base.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>

namespace catlift::netlist {

namespace {

bool is_alpha(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0;
}

char lower(char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

/// Letters that may *lead* a dimension-unit tail ("V", "A", "s", "ohm",
/// "Hz", and after a multiplier also "F" as in "10uF").  Anything else
/// starting the tail -- "10x5", "3q", "3mq" -- is garbage, not a unit,
/// and must be rejected rather than silently parsed as a neutral
/// multiplier.  A *leading* "F" never reaches this set (it is femto, as
/// SPICE has always read it).
bool is_unit_letter(char c) {
    switch (lower(c)) {
        case 'v':  // volt
        case 'a':  // ampere
        case 's':  // second / siemens
        case 'o':  // ohm
        case 'h':  // henry / hertz
        case 'f':  // farad (after a multiplier; leading 'f' is femto)
        case 'm':  // meter, as in "W=2um" (leading 'm' is milli)
            return true;
        default:
            return false;
    }
}

/// Multiplier of the engineering suffix starting the string, and how many
/// characters it consumed; consumed == 0 when the first character is not
/// a multiplier letter.
std::pair<double, std::size_t> suffix_multiplier(std::string_view s) {
    if (s.empty()) return {1.0, 0};
    const char c0 = lower(s[0]);
    // "meg" must be checked before "m".
    if (s.size() >= 3 && c0 == 'm' && lower(s[1]) == 'e' && lower(s[2]) == 'g')
        return {1e6, 3};
    switch (c0) {
        case 'f': return {1e-15, 1};
        case 'p': return {1e-12, 1};
        case 'n': return {1e-9, 1};
        case 'u': return {1e-6, 1};
        case 'm': return {1e-3, 1};
        case 'k': return {1e3, 1};
        case 'g': return {1e9, 1};
        case 't': return {1e12, 1};
        default: return {1.0, 0};
    }
}

} // namespace

double parse_value(std::string_view text) {
    if (text.empty()) throw Error("parse_value: empty numeric field");
    std::string buf(text);
    char* end = nullptr;
    const double base = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str())
        throw Error("parse_value: not a number: '" + buf + "'");
    // strtod is more liberal than a SPICE value field: it accepts "inf",
    // "nan" and hex floats ("0x1p4"), none of which belong in a netlist.
    if (!std::isfinite(base))
        throw Error("parse_value: non-finite value: '" + buf + "'");
    for (const char* p = buf.c_str(); p != end; ++p)
        if (*p == 'x' || *p == 'X')
            throw Error("parse_value: hex literal rejected: '" + buf + "'");

    std::string_view rest(end);
    const auto [mult, consumed] = suffix_multiplier(rest);
    std::string_view tail = rest.substr(consumed);
    // Whatever follows the (optional) multiplier must be a purely
    // alphabetic unit annotation starting with a known unit letter.
    // "10uF", "5V", "1mohm" pass; "10x5", "3q", "3mq", "10k9" do not.
    if (!tail.empty()) {
        if (!is_unit_letter(tail[0]))
            throw Error("parse_value: bad suffix on '" + buf + "'");
        for (char c : tail)
            if (!is_alpha(c))
                throw Error("parse_value: bad suffix on '" + buf + "'");
    }
    // The multiplier can push a finite mantissa over the double range
    // ("2e305meg"); the scaled value must be finite too.
    const double scaled = base * mult;
    if (!std::isfinite(scaled))
        throw Error("parse_value: non-finite value: '" + buf + "'");
    return scaled;
}

bool is_value(std::string_view text) {
    try {
        parse_value(text);
        return true;
    } catch (const Error&) {
        return false;
    }
}

std::string format_value(double v) {
    if (v == 0.0) return std::signbit(v) ? "-0" : "0";
    if (!std::isfinite(v))
        throw Error("format_value: non-finite value");
    struct Suffix {
        double scale;
        const char* tag;
    };
    static constexpr Suffix table[] = {
        {1e12, "t"}, {1e9, "g"},  {1e6, "meg"}, {1e3, "k"},   {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},  {1e-12, "p"}, {1e-15, "f"},
    };
    // Emit the shortest engineering form that parses back to exactly `v`
    // (scaling divides by a power of ten, which is not always exactly
    // invertible, and the old fixed 6-digit precision silently rounded) --
    // falling back to plain max_digits10 scientific, which round-trips by
    // definition.
    const double mag = std::fabs(v);
    auto try_precision = [&](double scaled, const char* tag) -> std::string {
        for (int prec = 6; prec <= std::numeric_limits<double>::max_digits10;
             ++prec) {
            std::ostringstream os;
            os << std::setprecision(prec) << scaled << tag;
            std::string s = os.str();
            // A rounded-up intermediate can overflow past DBL_MAX and be
            // rejected as non-finite; treat that like any other mismatch.
            try {
                if (parse_value(s) == v) return s;
            } catch (const Error&) {
            }
        }
        return {};
    };
    for (const auto& s : table) {
        if (mag >= s.scale * 0.9999999) {
            std::string out = try_precision(v / s.scale, s.tag);
            if (!out.empty()) return out;
            break;
        }
    }
    std::string out = try_precision(v, "");
    if (!out.empty()) return out;
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    return os.str();
}

} // namespace catlift::netlist
