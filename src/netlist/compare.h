// catlift/netlist/compare.h
//
// Netlist equivalence checking (the LVS core).  The extractor re-derives a
// transistor-level netlist from the layout; compare_netlists() verifies it
// against the schematic before any fault list is trusted -- LIFT performs
// fault extraction *simultaneously with circuit extraction* (paper, ch. IV),
// so a mismatching extraction would invalidate the fault mapping.
//
// The comparison is name-agnostic: nets are matched by iterative
// Weisfeiler-Leman style refinement over the bipartite device/net graph,
// with device signatures (kind, model, W/L, value class) as seeds.  MOS
// drain/source symmetry and R/C terminal symmetry are honoured.

#pragma once

#include "netlist/netlist.h"

#include <map>
#include <string>
#include <vector>

namespace catlift::netlist {

struct CompareResult {
    bool equivalent = false;
    /// Human-readable differences (empty when equivalent).
    std::vector<std::string> diffs;
    /// Net correspondence found (schematic net -> layout net), best effort.
    std::map<std::string, std::string> net_map;
};

/// Structurally compare two circuits.  `value_rel_tol` controls how close
/// component values / W/L must be to be considered identical (extracted
/// geometry snaps to the grid, so exact equality is too strict).
CompareResult compare_netlists(const Circuit& golden, const Circuit& candidate,
                               double value_rel_tol = 1e-3);

} // namespace catlift::netlist
