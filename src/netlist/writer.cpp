#include "netlist/writer.h"

#include "netlist/units.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace catlift::netlist {

namespace {

void write_source(std::ostream& os, const SourceSpec& s) {
    switch (s.kind) {
        case SourceSpec::Kind::Dc: os << "DC " << format_value(s.dc); break;
        case SourceSpec::Kind::Pulse:
            os << "PULSE(" << format_value(s.v1) << ' ' << format_value(s.v2)
               << ' ' << format_value(s.td) << ' ' << format_value(s.tr) << ' '
               << format_value(s.tf) << ' ' << format_value(s.pw) << ' '
               << format_value(s.per) << ')';
            break;
        case SourceSpec::Kind::Pwl: {
            os << "PWL(";
            bool first = true;
            for (const auto& [t, v] : s.pwl) {
                if (!first) os << ' ';
                os << format_value(t) << ' ' << format_value(v);
                first = false;
            }
            os << ')';
            break;
        }
        case SourceSpec::Kind::Sin:
            os << "SIN(" << format_value(s.vo) << ' ' << format_value(s.va)
               << ' ' << format_value(s.freq) << ' ' << format_value(s.sin_td)
               << ' ' << format_value(s.theta) << ')';
            break;
    }
    if (s.ac_mag != 0.0) os << " AC " << format_value(s.ac_mag);
}

} // namespace

void write_spice(std::ostream& os, const Circuit& ckt) {
    os << (ckt.title.empty() ? "* catlift deck" : ckt.title) << '\n';
    for (const auto& [name, m] : ckt.models) {
        os << ".model " << name << ' ' << (m.is_nmos ? "NMOS" : "PMOS")
           << " (VTO=" << format_value(m.vto) << " KP=" << format_value(m.kp)
           << " LAMBDA=" << format_value(m.lambda)
           << " TOX=" << format_value(m.tox)
           << " CGSO=" << format_value(m.cgso)
           << " CGDO=" << format_value(m.cgdo) << ")\n";
    }
    for (const Device& d : ckt.devices) {
        switch (d.kind) {
            case DeviceKind::Resistor:
                os << d.name << ' ' << d.nodes[0] << ' ' << d.nodes[1] << ' '
                   << format_value(d.value) << '\n';
                break;
            case DeviceKind::Capacitor:
                os << d.name << ' ' << d.nodes[0] << ' ' << d.nodes[1] << ' '
                   << format_value(d.value);
                if (d.ic) os << " IC=" << format_value(*d.ic);
                os << '\n';
                break;
            case DeviceKind::VSource:
            case DeviceKind::ISource:
                os << d.name << ' ' << d.nodes[0] << ' ' << d.nodes[1] << ' ';
                write_source(os, d.source);
                os << '\n';
                break;
            case DeviceKind::Mosfet:
                os << d.name << ' ' << d.nodes[0] << ' ' << d.nodes[1] << ' '
                   << d.nodes[2] << ' ' << d.nodes[3] << ' ' << d.model
                   << " W=" << format_value(d.w) << " L=" << format_value(d.l)
                   << '\n';
                break;
        }
    }
    if (ckt.tran) {
        os << ".tran " << format_value(ckt.tran->tstep) << ' '
           << format_value(ckt.tran->tstop);
        if (ckt.tran->tstart != 0.0) os << ' ' << format_value(ckt.tran->tstart);
        os << '\n';
    }
    if (ckt.ac) {
        os << ".ac dec " << ckt.ac->points_per_decade << ' '
           << format_value(ckt.ac->fstart) << ' '
           << format_value(ckt.ac->fstop) << '\n';
    }
    if (!ckt.save_nodes.empty()) {
        os << ".save";
        for (const std::string& n : ckt.save_nodes) os << " V(" << n << ')';
        os << '\n';
    }
    os << ".end\n";
}

std::string write_spice(const Circuit& ckt) {
    std::ostringstream os;
    write_spice(os, ckt);
    return os.str();
}

void write_spice_file(const std::string& path, const Circuit& ckt) {
    std::ofstream f(path);
    require(f.good(), "cannot open for write: " + path);
    write_spice(f, ckt);
    require(f.good(), "write failed: " + path);
}

} // namespace catlift::netlist
