#include "netlist/compare.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>

namespace catlift::netlist {

namespace {

// Quantise a value to a tolerance bucket so nearly-equal values hash alike.
std::int64_t bucket(double v, double rel_tol) {
    if (v == 0.0) return 0;
    // log-scale buckets of width rel_tol
    const double lg = std::log(std::fabs(v));
    return static_cast<std::int64_t>(std::llround(lg / std::max(rel_tol, 1e-12)));
}

/// Static part of a device signature (everything except net colours).
std::string device_seed(const Circuit& c, const Device& d, double tol) {
    std::ostringstream os;
    os << to_string(d.kind);
    switch (d.kind) {
        case DeviceKind::Resistor:
        case DeviceKind::Capacitor:
            os << ':' << bucket(d.value, tol);
            break;
        case DeviceKind::Mosfet: {
            const MosModel& m = c.model_of(d);
            os << ':' << (m.is_nmos ? 'n' : 'p') << ':' << bucket(d.w, tol)
               << 'x' << bucket(d.l, tol);
            break;
        }
        case DeviceKind::VSource:
        case DeviceKind::ISource:
            os << ':' << bucket(d.source.dc_value(), tol);
            break;
    }
    return os.str();
}

struct Graph {
    const Circuit* ckt;
    std::vector<std::string> nets;                 // index -> name
    std::map<std::string, std::size_t> net_index;  // name -> index
    std::vector<std::size_t> net_colour;
    std::vector<std::size_t> dev_colour;
    std::vector<std::string> dev_seed;

    explicit Graph(const Circuit& c, double tol) : ckt(&c) {
        for (const std::string& n : c.node_names()) {
            net_index[n] = nets.size();
            nets.push_back(n);
        }
        net_colour.assign(nets.size(), 0);
        // Ground is globally distinguishable; give it a reserved colour.
        auto g = net_index.find(kGround);
        if (g != net_index.end()) net_colour[g->second] = 1;
        dev_colour.assign(c.devices.size(), 0);
        dev_seed.reserve(c.devices.size());
        for (const Device& d : c.devices) dev_seed.push_back(device_seed(c, d, tol));
    }

    /// Terminal role tag honouring device symmetries: R/C terminals are
    /// interchangeable, MOS drain/source are interchangeable.
    static int role(const Device& d, int term) {
        switch (d.kind) {
            case DeviceKind::Resistor:
            case DeviceKind::Capacitor: return 0;
            case DeviceKind::VSource:
            case DeviceKind::ISource: return term;  // polarity matters
            case DeviceKind::Mosfet:
                if (term == Device::kGate) return 1;
                if (term == Device::kBulk) return 2;
                return 0;  // drain/source symmetric
        }
        return term;
    }
};

/// One refinement round; returns true if any colour changed.
bool refine(Graph& g, std::map<std::string, std::size_t>& palette) {
    // Devices: seed + multiset of (role, net colour).
    std::vector<std::string> dev_sig(g.ckt->devices.size());
    for (std::size_t i = 0; i < g.ckt->devices.size(); ++i) {
        const Device& d = g.ckt->devices[i];
        std::vector<std::pair<int, std::size_t>> terms;
        for (std::size_t t = 0; t < d.nodes.size(); ++t)
            terms.emplace_back(Graph::role(d, static_cast<int>(t)),
                               g.net_colour[g.net_index.at(d.nodes[t])]);
        std::sort(terms.begin(), terms.end());
        std::ostringstream os;
        os << 'D' << g.dev_seed[i] << '|' << g.dev_colour[i];
        for (auto& [r, c] : terms) os << '/' << r << ':' << c;
        dev_sig[i] = os.str();
    }
    // Nets: old colour + multiset of (device colour, role).
    std::vector<std::vector<std::pair<std::size_t, int>>> net_adj(g.nets.size());
    for (std::size_t i = 0; i < g.ckt->devices.size(); ++i) {
        const Device& d = g.ckt->devices[i];
        for (std::size_t t = 0; t < d.nodes.size(); ++t)
            net_adj[g.net_index.at(d.nodes[t])].emplace_back(
                g.dev_colour[i], Graph::role(d, static_cast<int>(t)));
    }
    std::vector<std::string> net_sig(g.nets.size());
    for (std::size_t n = 0; n < g.nets.size(); ++n) {
        auto& adj = net_adj[n];
        std::sort(adj.begin(), adj.end());
        std::ostringstream os;
        os << 'N' << g.net_colour[n];
        for (auto& [c, r] : adj) os << '/' << c << ':' << r;
        net_sig[n] = os.str();
    }
    bool changed = false;
    auto intern = [&](const std::string& s) {
        auto [it, inserted] = palette.emplace(s, palette.size() + 2);
        (void)inserted;
        return it->second;
    };
    for (std::size_t i = 0; i < dev_sig.size(); ++i) {
        const std::size_t c = intern(dev_sig[i]);
        if (c != g.dev_colour[i]) {
            g.dev_colour[i] = c;
            changed = true;
        }
    }
    for (std::size_t n = 0; n < net_sig.size(); ++n) {
        const std::size_t c = intern(net_sig[n]);
        if (c != g.net_colour[n]) {
            g.net_colour[n] = c;
            changed = true;
        }
    }
    return changed;
}

std::multiset<std::size_t> colour_multiset(const std::vector<std::size_t>& v) {
    return {v.begin(), v.end()};
}

} // namespace

CompareResult compare_netlists(const Circuit& golden, const Circuit& candidate,
                               double value_rel_tol) {
    CompareResult res;

    if (golden.devices.size() != candidate.devices.size()) {
        std::ostringstream os;
        os << "device count mismatch: golden=" << golden.devices.size()
           << " candidate=" << candidate.devices.size();
        res.diffs.push_back(os.str());
    }

    Graph ga(golden, value_rel_tol), gb(candidate, value_rel_tol);

    // Shared palette so identical signatures get identical colours across
    // the two graphs.
    std::map<std::string, std::size_t> palette;
    bool more = true;
    int rounds = 0;
    while (more && rounds < 64) {
        const bool ca = refine(ga, palette);
        const bool cb = refine(gb, palette);
        more = ca || cb;
        ++rounds;
    }

    const auto da = colour_multiset(ga.dev_colour);
    const auto db = colour_multiset(gb.dev_colour);
    if (da != db) {
        // Report devices whose colour has no partner on the other side.
        std::multiset<std::size_t> only_a, only_b;
        std::set_difference(da.begin(), da.end(), db.begin(), db.end(),
                            std::inserter(only_a, only_a.begin()));
        std::set_difference(db.begin(), db.end(), da.begin(), da.end(),
                            std::inserter(only_b, only_b.begin()));
        for (std::size_t i = 0; i < golden.devices.size(); ++i) {
            if (only_a.count(ga.dev_colour[i])) {
                res.diffs.push_back("golden-only device class: " +
                                    golden.devices[i].name);
                only_a.erase(only_a.find(ga.dev_colour[i]));
            }
        }
        for (std::size_t i = 0; i < candidate.devices.size(); ++i) {
            if (only_b.count(gb.dev_colour[i])) {
                res.diffs.push_back("candidate-only device class: " +
                                    candidate.devices[i].name);
                only_b.erase(only_b.find(gb.dev_colour[i]));
            }
        }
    }

    const auto na = colour_multiset(ga.net_colour);
    const auto nb = colour_multiset(gb.net_colour);
    if (na != nb) res.diffs.push_back("net colour classes differ");

    // Build a best-effort net map from unique colours.
    std::map<std::size_t, std::vector<std::size_t>> by_colour_a, by_colour_b;
    for (std::size_t n = 0; n < ga.nets.size(); ++n)
        by_colour_a[ga.net_colour[n]].push_back(n);
    for (std::size_t n = 0; n < gb.nets.size(); ++n)
        by_colour_b[gb.net_colour[n]].push_back(n);
    for (const auto& [colour, list_a] : by_colour_a) {
        auto itb = by_colour_b.find(colour);
        if (itb == by_colour_b.end()) continue;
        if (list_a.size() == 1 && itb->second.size() == 1)
            res.net_map[ga.nets[list_a[0]]] = gb.nets[itb->second[0]];
    }

    res.equivalent = res.diffs.empty();
    return res;
}

} // namespace catlift::netlist
