#include "extract/extractor.h"

#include "circuits/vco.h"
#include "geom/region.h"
#include "geom/spatial_index.h"

#include <algorithm>
#include <map>
#include <set>

namespace catlift::extract {

using geom::Rect;
using layout::Layer;
using layout::Layout;
using layout::Technology;

namespace {

/// Disjoint-set over fragment indices.
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n) {
        for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
    }
    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
    std::vector<std::size_t> parent_;
};

/// A recognised gate region: poly over diffusion.
struct GateRegion {
    Rect rect;
    std::size_t poly_shape;
    std::size_t chan_shape;  ///< the diffusion shape the channel came from
    bool is_nmos;
    std::string owner;       ///< provenance of the channel diffusion
};

std::string owner_device(const std::string& owner) {
    const auto colon = owner.find(':');
    return colon == std::string::npos ? owner : owner.substr(0, colon);
}

char owner_terminal(const std::string& owner) {
    const auto colon = owner.find(':');
    return (colon == std::string::npos || colon + 1 >= owner.size())
               ? '?'
               : owner[colon + 1];
}

} // namespace

ExtractOptions::ExtractOptions()
    : nmos_card(circuits::standard_nmos()), pmos_card(circuits::standard_pmos()) {}

int Extraction::net_id(const std::string& name) const {
    for (std::size_t i = 0; i < net_names.size(); ++i)
        if (net_names[i] == name) return static_cast<int>(i);
    throw Error("Extraction: no net named " + name);
}

std::vector<std::size_t> Extraction::net_fragments(int net) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < fragments.size(); ++i)
        if (fragments[i].net == net) out.push_back(i);
    return out;
}

Extraction extract(const Layout& lo, const Technology& tech,
                   const ExtractOptions& opt) {
    Extraction ex;

    // ---- 1. Gate regions -------------------------------------------------
    std::vector<GateRegion> gates;
    const auto poly_ids = lo.on_layer(Layer::Poly);
    for (Layer diff : {Layer::NDiff, Layer::PDiff}) {
        for (std::size_t di : lo.on_layer(diff)) {
            for (std::size_t pi : poly_ids) {
                const auto ov =
                    geom::intersection(lo.shapes[di].rect, lo.shapes[pi].rect);
                if (!ov || ov->empty()) continue;
                gates.push_back(GateRegion{*ov, pi, di, diff == Layer::NDiff,
                                           lo.shapes[di].owner});
            }
        }
    }

    // ---- 2. Fragmentation -------------------------------------------------
    for (std::size_t si = 0; si < lo.shapes.size(); ++si) {
        const layout::Shape& s = lo.shapes[si];
        if (!layout::is_conducting(s.layer)) continue;
        if (s.layer == Layer::NDiff || s.layer == Layer::PDiff) {
            // Clip the gate areas out of the diffusion.
            std::vector<Rect> parts{s.rect};
            for (const GateRegion& g : gates) {
                if (!g.rect.overlaps(s.rect)) continue;
                std::vector<Rect> next;
                for (const Rect& p : parts) {
                    auto cut = geom::subtract(p, g.rect);
                    next.insert(next.end(), cut.begin(), cut.end());
                }
                parts = std::move(next);
            }
            for (const Rect& p : parts)
                ex.fragments.push_back(Fragment{s.layer, p, si, s.owner, -1});
        } else {
            ex.fragments.push_back(Fragment{s.layer, s.rect, si, s.owner, -1});
        }
    }

    // ---- 3. Connectivity ---------------------------------------------------
    UnionFind uf(ex.fragments.size());

    // Same-layer touching fragments.
    for (int li = 0; li < static_cast<int>(layout::kLayerCount); ++li) {
        const Layer layer = static_cast<Layer>(li);
        if (!layout::is_conducting(layer)) continue;
        std::vector<std::size_t> ids;
        for (std::size_t i = 0; i < ex.fragments.size(); ++i)
            if (ex.fragments[i].layer == layer) ids.push_back(i);
        if (ids.empty()) continue;
        geom::SpatialIndex idx(20 * 1000);
        for (std::size_t i : ids) idx.insert(i, ex.fragments[i].rect);
        for (std::size_t i : ids) {
            for (std::size_t j : idx.neighbours(ex.fragments[i].rect, 0)) {
                if (j <= i) continue;
                if (ex.fragments[j].layer != layer) continue;
                if (ex.fragments[i].rect.touches(ex.fragments[j].rect))
                    uf.unite(i, j);
            }
        }
    }

    // Cut stitches (and cluster bookkeeping).
    struct RawCut {
        std::size_t shape;
        Layer layer;
        std::size_t upper;  // metal1 (contact) / metal2 (via) fragment
        std::size_t lower;  // poly-or-diff (contact) / metal1 (via) fragment
    };
    std::vector<RawCut> raw_cuts;
    auto frag_on = [&](const Rect& r, std::initializer_list<Layer> layers)
        -> std::vector<std::size_t> {
        std::vector<std::size_t> out;
        for (std::size_t i = 0; i < ex.fragments.size(); ++i) {
            const Fragment& f = ex.fragments[i];
            for (Layer l : layers)
                if (f.layer == l && f.rect.overlaps(r)) out.push_back(i);
        }
        return out;
    };
    for (std::size_t si = 0; si < lo.shapes.size(); ++si) {
        const layout::Shape& s = lo.shapes[si];
        if (s.layer == Layer::Contact) {
            const auto uppers = frag_on(s.rect, {Layer::Metal1});
            const auto lowers =
                frag_on(s.rect, {Layer::Poly, Layer::NDiff, Layer::PDiff});
            require(!uppers.empty() && !lowers.empty(),
                    "extract: contact not joining metal1 to poly/diffusion "
                    "(owner " + s.owner + ")");
            // A contact bridging both poly and diffusion is a layout bug.
            std::set<Layer> lower_layers;
            for (std::size_t f : lowers)
                lower_layers.insert(ex.fragments[f].layer);
            require(!(lower_layers.count(Layer::Poly) &&
                      (lower_layers.count(Layer::NDiff) ||
                       lower_layers.count(Layer::PDiff))),
                    "extract: contact bridges poly and diffusion (owner " +
                        s.owner + ")");
            for (std::size_t u : uppers)
                for (std::size_t l : lowers) uf.unite(u, l);
            raw_cuts.push_back(RawCut{si, Layer::Contact, uppers.front(),
                                      lowers.front()});
        } else if (s.layer == Layer::Via) {
            const auto uppers = frag_on(s.rect, {Layer::Metal2});
            const auto lowers = frag_on(s.rect, {Layer::Metal1});
            require(!uppers.empty() && !lowers.empty(),
                    "extract: via not joining metal1 to metal2 (owner " +
                        s.owner + ")");
            for (std::size_t u : uppers)
                for (std::size_t l : lowers) uf.unite(u, l);
            raw_cuts.push_back(
                RawCut{si, Layer::Via, uppers.front(), lowers.front()});
        }
    }

    // ---- 4. Net numbering + labels -----------------------------------------
    std::map<std::size_t, int> root_to_net;
    for (std::size_t i = 0; i < ex.fragments.size(); ++i) {
        const std::size_t r = uf.find(i);
        auto [it, inserted] =
            root_to_net.emplace(r, static_cast<int>(root_to_net.size()));
        ex.fragments[i].net = it->second;
        (void)inserted;
    }
    ex.net_names.assign(root_to_net.size(), "");
    for (const layout::Label& lb : lo.labels) {
        bool hit = false;
        for (const Fragment& f : ex.fragments) {
            if (f.layer != lb.layer || !f.rect.contains(lb.at)) continue;
            std::string& name =
                ex.net_names[static_cast<std::size_t>(f.net)];
            require(name.empty() || name == lb.text,
                    "extract: conflicting labels '" + name + "' and '" +
                        lb.text + "' on one net");
            name = lb.text;
            hit = true;
            break;
        }
        require(hit, "extract: label '" + lb.text + "' touches no conductor");
    }
    {
        int anon = 0;
        std::set<std::string> used(ex.net_names.begin(), ex.net_names.end());
        for (std::string& n : ex.net_names) {
            if (!n.empty()) continue;
            do {
                n = "n$" + std::to_string(anon++);
            } while (used.count(n));
            used.insert(n);
        }
    }

    // ---- 5. Cut clusters -----------------------------------------------------
    // Redundant cuts implementing the same junction are grouped: same cut
    // layer, same joined layers, and within one defect diameter of each
    // other.  A cluster can only be opened by a defect spanning its whole
    // bounding box.
    {
        constexpr geom::Coord kClusterDist = 6 * 1000;  // 6 um
        UnionFind cuf(raw_cuts.size());
        for (std::size_t i = 0; i < raw_cuts.size(); ++i) {
            for (std::size_t j = i + 1; j < raw_cuts.size(); ++j) {
                const RawCut& a = raw_cuts[i];
                const RawCut& b = raw_cuts[j];
                if (a.layer != b.layer) continue;
                if (ex.fragments[a.upper].net != ex.fragments[b.upper].net ||
                    ex.fragments[a.lower].net != ex.fragments[b.lower].net)
                    continue;
                if (ex.fragments[a.lower].layer != ex.fragments[b.lower].layer)
                    continue;
                if (geom::separation(lo.shapes[a.shape].rect,
                                     lo.shapes[b.shape].rect) <= kClusterDist)
                    cuf.unite(i, j);
            }
        }
        std::map<std::size_t, std::size_t> root_to_cluster;
        for (std::size_t i = 0; i < raw_cuts.size(); ++i) {
            const RawCut& rc = raw_cuts[i];
            const std::size_t root = cuf.find(i);
            auto [it, inserted] = root_to_cluster.emplace(root, ex.cuts.size());
            if (inserted) {
                CutCluster cc;
                cc.layer = rc.layer;
                cc.frag_a = rc.upper;
                cc.frag_b = rc.lower;
                cc.bbox = lo.shapes[rc.shape].rect;
                cc.owner = lo.shapes[rc.shape].owner;
                cc.cuts.push_back(rc.shape);
                ex.cuts.push_back(std::move(cc));
            } else {
                CutCluster& cc = ex.cuts[it->second];
                cc.cuts.push_back(rc.shape);
                cc.bbox = cc.bbox.united(lo.shapes[rc.shape].rect);
            }
        }
    }

    // ---- 6. Device recognition ------------------------------------------------
    int anon_dev = 0;
    for (const GateRegion& g : gates) {
        ExtractedMos m;
        m.is_nmos = g.is_nmos;
        m.gate = g.rect;
        const std::string dev = owner_device(g.owner);
        m.name = !dev.empty() ? dev : ("MX" + std::to_string(anon_dev++));

        // Gate fragment: the poly fragment of the gate strip.
        bool found_gate = false;
        for (std::size_t i = 0; i < ex.fragments.size(); ++i) {
            const Fragment& f = ex.fragments[i];
            if (f.layer == Layer::Poly && f.shape == g.poly_shape) {
                m.frag_gate = i;
                m.net_gate = f.net;
                found_gate = true;
                break;
            }
        }
        require(found_gate, "extract: gate fragment missing for " + m.name);

        // Source/drain: diffusion fragments sharing a full edge with the
        // channel.  Left/right if the diffusion abuts in x, else top/bottom.
        const Layer diff = g.is_nmos ? Layer::NDiff : Layer::PDiff;
        std::vector<std::size_t> left, right, below, above;
        for (std::size_t i = 0; i < ex.fragments.size(); ++i) {
            const Fragment& f = ex.fragments[i];
            if (f.layer != diff || !f.rect.touches(g.rect)) continue;
            if (f.rect.overlaps(g.rect)) continue;  // residual sliver
            if (f.rect.hi.x == g.rect.lo.x && geom::y_overlap(f.rect, g.rect) > 0)
                left.push_back(i);
            else if (f.rect.lo.x == g.rect.hi.x &&
                     geom::y_overlap(f.rect, g.rect) > 0)
                right.push_back(i);
            else if (f.rect.hi.y == g.rect.lo.y &&
                     geom::x_overlap(f.rect, g.rect) > 0)
                below.push_back(i);
            else if (f.rect.lo.y == g.rect.hi.y &&
                     geom::x_overlap(f.rect, g.rect) > 0)
                above.push_back(i);
        }
        bool horizontal;  // current flow along x (gate splits left/right)
        std::size_t fa, fb;
        if (!left.empty() && !right.empty()) {
            horizontal = true;
            fa = left.front();
            fb = right.front();
        } else if (!below.empty() && !above.empty()) {
            horizontal = false;
            fa = below.front();
            fb = above.front();
        } else {
            throw Error("extract: gate of " + m.name +
                        " lacks source/drain diffusion on opposite sides");
        }
        m.l = geom::to_um(horizontal ? g.rect.width() : g.rect.height()) * 1e-6;
        m.w = geom::to_um(horizontal ? g.rect.height() : g.rect.width()) * 1e-6;

        // Assign source/drain by provenance when available.
        const Fragment& A = ex.fragments[fa];
        if (owner_terminal(A.owner) == 's') {
            m.frag_source = fa;
            m.frag_drain = fb;
        } else if (owner_terminal(A.owner) == 'd') {
            m.frag_source = fb;
            m.frag_drain = fa;
        } else {
            m.frag_drain = fa;
            m.frag_source = fb;
        }
        m.net_source = ex.fragments[m.frag_source].net;
        m.net_drain = ex.fragments[m.frag_drain].net;
        ex.mosfets.push_back(std::move(m));
    }

    // ---- 7. Capacitor recognition ------------------------------------------
    for (std::size_t si : lo.on_layer(Layer::CapMark)) {
        const layout::Shape& mark = lo.shapes[si];
        ExtractedCap cap;
        cap.name = owner_device(mark.owner);
        if (cap.name.empty()) cap.name = "CX" + std::to_string(anon_dev++);
        // The plates are whatever metal1 / poly conductors overlap the
        // recognition box; the electrode fragment with the largest marker
        // overlap defines each plate's net, and the capacitance integrates
        // the union of all metal1-over-poly overlap inside the marker.
        double best_top = 0.0, best_bot = 0.0;
        std::vector<std::size_t> tops, bots;
        for (std::size_t i = 0; i < ex.fragments.size(); ++i) {
            const Fragment& f = ex.fragments[i];
            auto ov = geom::intersection(f.rect, mark.rect);
            if (!ov || ov->empty()) continue;
            if (f.layer == Layer::Metal1) {
                tops.push_back(i);
                if (ov->area() > best_top) {
                    best_top = ov->area();
                    cap.frag_top = i;
                    cap.net_top = f.net;
                }
            } else if (f.layer == Layer::Poly) {
                bots.push_back(i);
                if (ov->area() > best_bot) {
                    best_bot = ov->area();
                    cap.frag_bottom = i;
                    cap.net_bottom = f.net;
                }
            }
        }
        require(best_top > 0 && best_bot > 0,
                "extract: capacitor marker without both plates: " + cap.name);
        geom::Region overlap;
        for (std::size_t ti : tops) {
            if (ex.fragments[ti].net != cap.net_top) continue;
            for (std::size_t bi : bots) {
                if (ex.fragments[bi].net != cap.net_bottom) continue;
                auto o1 = geom::intersection(ex.fragments[ti].rect,
                                             ex.fragments[bi].rect);
                if (!o1) continue;
                auto o2 = geom::intersection(*o1, mark.rect);
                if (o2 && !o2->empty()) overlap.add(*o2);
            }
        }
        require(!overlap.empty(),
                "extract: capacitor plates do not overlap inside marker");
        const double area_m2 = geom::to_um2(overlap.union_area()) * 1e-12;
        cap.value = area_m2 * tech.cap_per_area;
        ex.caps.push_back(std::move(cap));
    }

    // ---- 8. Netlist construction ---------------------------------------------
    ex.circuit.title = "extracted from " + lo.name;
    {
        netlist::MosModel nm = opt.nmos_card;
        nm.name = opt.nmos_model;
        netlist::MosModel pm = opt.pmos_card;
        pm.name = opt.pmos_model;
        pm.is_nmos = false;
        nm.is_nmos = true;
        ex.circuit.add_model(nm);
        ex.circuit.add_model(pm);
    }
    for (const ExtractedMos& m : ex.mosfets) {
        ex.circuit.add_mosfet(
            m.name, ex.net_name(m.net_drain), ex.net_name(m.net_gate),
            ex.net_name(m.net_source),
            m.is_nmos ? opt.nmos_bulk : opt.pmos_bulk,
            m.is_nmos ? opt.nmos_model : opt.pmos_model, m.w, m.l);
    }
    for (const ExtractedCap& c : ex.caps) {
        ex.circuit.add_capacitor(c.name, ex.net_name(c.net_bottom),
                                 ex.net_name(c.net_top), c.value);
    }
    return ex;
}

netlist::CompareResult lvs(const Layout& lo, const Technology& tech,
                           const netlist::Circuit& schematic,
                           const ExtractOptions& opt) {
    Extraction ex = extract(lo, tech, opt);
    // Strip off-chip sources from the golden schematic.
    netlist::Circuit golden;
    golden.title = schematic.title;
    golden.models = schematic.models;
    for (const netlist::Device& d : schematic.devices) {
        if (d.kind == netlist::DeviceKind::VSource ||
            d.kind == netlist::DeviceKind::ISource)
            continue;
        golden.add(d);
    }
    return netlist::compare_netlists(golden, ex.circuit, 1e-2);
}

} // namespace catlift::extract
