// catlift/extract/extractor.h
//
// Layout-to-netlist extraction.  LIFT performs fault extraction
// "simultaneously with the transistor-level circuit extraction" (paper,
// ch. IV): this module provides that circuit extraction and exposes the
// intermediate geometric artefacts (conducting fragments, cut clusters,
// device anchors) that the fault extractor reuses for its critical-area
// sites and open/split analysis.
//
// Pipeline:
//   1. Fragmentation: conducting shapes are copied; diffusion shapes are
//      clipped against gate regions (poly over diffusion), which breaks
//      source/drain connectivity through the channel.
//   2. Connectivity: union-find over same-layer touching fragments plus
//      contact/via stitches -> nets; labels name them.
//   3. Device recognition: each gate region (poly x diffusion) becomes a
//      MOSFET; W/L from the gate geometry, terminals from the adjacent
//      fragments.  CapMark regions become capacitors (plate overlap area
//      times the technology capacitance).
//   4. Netlist construction + LVS against a golden schematic.

#pragma once

#include "layout/cellgen.h"
#include "layout/layout.h"
#include "netlist/compare.h"
#include "netlist/netlist.h"

#include <map>
#include <string>
#include <vector>

namespace catlift::extract {

/// A conducting rectangle after fragmentation.
struct Fragment {
    layout::Layer layer;
    geom::Rect rect;
    std::size_t shape;   ///< originating Layout::shapes index
    std::string owner;   ///< provenance copied from the shape
    int net = -1;        ///< net id after connectivity
};

/// A cluster of cut shapes (contacts or vias) joining the same pair of
/// fragments.  Redundant double contacts/vias form one cluster of size 2:
/// only a defect covering the whole cluster creates an open.
struct CutCluster {
    layout::Layer layer;             ///< Contact or Via
    std::vector<std::size_t> cuts;   ///< Layout::shapes indices
    std::size_t frag_a = 0;          ///< joined fragments (indices)
    std::size_t frag_b = 0;
    geom::Rect bbox;                 ///< bounding box of the cluster
    std::string owner;
};

/// One recognised MOSFET.
struct ExtractedMos {
    std::string name;        ///< from provenance ("M11") or synthesised
    bool is_nmos = true;
    geom::Rect gate;         ///< channel rectangle
    double w = 0, l = 0;     ///< metres
    int net_gate = -1, net_source = -1, net_drain = -1;
    std::size_t frag_gate = 0, frag_source = 0, frag_drain = 0;  ///< anchors
};

/// One recognised capacitor.
struct ExtractedCap {
    std::string name;
    double value = 0;  ///< farads
    int net_top = -1, net_bottom = -1;
    std::size_t frag_top = 0, frag_bottom = 0;
};

struct ExtractOptions {
    std::string nmos_model = "nm";
    std::string pmos_model = "pm";
    std::string nmos_bulk = "0";
    std::string pmos_bulk = "1";
    netlist::MosModel nmos_card;  ///< model cards attached to the netlist
    netlist::MosModel pmos_card;

    ExtractOptions();
};

/// Full extraction result.
struct Extraction {
    std::vector<Fragment> fragments;
    std::vector<CutCluster> cuts;
    std::vector<ExtractedMos> mosfets;
    std::vector<ExtractedCap> caps;
    std::vector<std::string> net_names;   ///< net id -> name
    netlist::Circuit circuit;             ///< extracted netlist

    int net_id(const std::string& name) const;
    const std::string& net_name(int id) const {
        return net_names.at(static_cast<std::size_t>(id));
    }

    /// Fragment indices belonging to one net.
    std::vector<std::size_t> net_fragments(int net) const;
};

/// Run the extraction.  Throws catlift::Error on inconsistent layouts
/// (conflicting labels, contacts bridging three conductors, gates without
/// source/drain).
Extraction extract(const layout::Layout& lo, const layout::Technology& tech,
                   const ExtractOptions& opt = {});

/// LVS: extract + structural compare against the golden schematic (power
/// sources in the schematic are ignored).
netlist::CompareResult lvs(const layout::Layout& lo,
                           const layout::Technology& tech,
                           const netlist::Circuit& schematic,
                           const ExtractOptions& opt = {});

} // namespace catlift::extract
