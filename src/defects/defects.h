// catlift/defects/defects.h
//
// Process defect statistics and spot-defect geometry kernels -- the physics
// behind LIFT's fault probabilities (paper, ch. IV):
//
//  * Tab. 1: likely failure mechanisms per layer with relative defect
//    densities, normalised to the metal1 short density (whose typical
//    absolute value is 1 defect/cm^2, after Feltham/Maly [9]).
//  * The defect-size probability density function after Ferris-Prabhu [10]:
//    rising linearly up to the peak size x0, falling as 1/x^3 beyond it:
//        pdf(x) = x / x0^2          for 0 <= x <= x0
//        pdf(x) = x0^2 / x^3        for x >= x0
//    (continuous at x0, integrates to 1 over [0, inf)).
//  * Critical-area kernels for the three site classes LIFT evaluates:
//    bridges between facing conductors, line opens, and cut-cluster
//    (contact/via) opens.  Weighted critical areas integrate the kernel
//    against the size pdf up to a maximum defect size.

#pragma once

#include "geom/base.h"
#include "layout/tech.h"

#include <optional>
#include <string>
#include <vector>

namespace catlift::defects {

enum class FailureMode { Short, Open };

const char* to_string(FailureMode m);

/// One failure mechanism of Tab. 1.
struct Mechanism {
    std::string name;            ///< e.g. "metal1_short"
    layout::Layer layer;         ///< the layer the defect lands on
    FailureMode mode;
    /// For Contact mechanisms: the bottom layer that distinguishes
    /// Al/diffusion contacts (acd) from metal1/poly contacts (acp).
    std::optional<layout::Layer> lower;
    double rel_density = 0.0;    ///< relative to metal1 short
};

/// The full statistics table.
struct DefectStatistics {
    std::vector<Mechanism> mechanisms;
    /// Absolute anchor: metal1 short defect density [defects/cm^2].
    double metal1_short_per_cm2 = 1.0;

    /// Tab. 1 of the paper, verbatim.
    static DefectStatistics date95_table1();

    /// Lookup by mode and layer (+ lower layer for contacts); nullptr if
    /// the table has no such mechanism.
    const Mechanism* find(layout::Layer layer, FailureMode mode,
                          std::optional<layout::Layer> lower =
                              std::nullopt) const;

    /// Absolute density of one mechanism [defects/cm^2].
    double density_per_cm2(const Mechanism& m) const {
        return m.rel_density * metal1_short_per_cm2;
    }
};

/// Ferris-Prabhu defect size distribution.
class SizeDistribution {
public:
    /// `x0_nm`: peak defect size in nm (typically around the minimum
    /// feature size of the process).
    explicit SizeDistribution(double x0_nm);

    double x0() const { return x0_; }
    double pdf(double x_nm) const;
    double cdf(double x_nm) const;
    /// P(size > x).
    double survival(double x_nm) const { return 1.0 - cdf(x_nm); }

private:
    double x0_;
};

/// Critical-area kernels + weighted integration.
class DefectModel {
public:
    DefectModel(DefectStatistics stats, SizeDistribution dist,
                double max_defect_nm = 25000.0)
        : stats_(std::move(stats)), dist_(dist), xmax_(max_defect_nm) {}

    const DefectStatistics& stats() const { return stats_; }
    const SizeDistribution& dist() const { return dist_; }
    double max_defect() const { return xmax_; }

    /// Weighted critical area [nm^2] of a bridge site: two conductors with
    /// facing length `facing_nm` separated by `spacing_nm`; a defect of
    /// diameter x shorts them over A(x) = facing * (x - s), x > s.
    double bridge_wca(double facing_nm, double spacing_nm) const;

    /// Weighted critical area of a line-open site: a wire segment of
    /// length `len_nm` and width `width_nm`; A(x) = len * (x - w), x > w.
    double open_wca(double len_nm, double width_nm) const;

    /// Weighted critical area of a cut-cluster open: the defect must cover
    /// the whole cluster bounding box (w x h);
    /// A(x) = (x - w) * (x - h), x > max(w, h).
    double cut_wca(double w_nm, double h_nm) const;

    /// Probabilities: WCA x absolute mechanism density (nm^2 -> cm^2).
    double bridge_probability(const Mechanism& m, double facing_nm,
                              double spacing_nm) const;
    double open_probability(const Mechanism& m, double len_nm,
                            double width_nm) const;
    double cut_probability(const Mechanism& m, double w_nm,
                           double h_nm) const;

    /// The default model used by the paper reproduction: Tab. 1 statistics,
    /// x0 = 1 um, xmax = 25 um.
    static DefectModel date95();

private:
    /// Integrate kernel(x) * pdf(x) dx over [lo, xmax] (Simpson).
    template <typename F>
    double integrate(F kernel, double lo) const;

    DefectStatistics stats_;
    SizeDistribution dist_;
    double xmax_;
};

/// nm^2 -> cm^2.
inline double nm2_to_cm2(double nm2) { return nm2 * 1e-14; }

} // namespace catlift::defects
