#include "defects/defects.h"

#include <algorithm>
#include <cmath>

namespace catlift::defects {

using layout::Layer;

const char* to_string(FailureMode m) {
    return m == FailureMode::Short ? "short" : "open";
}

DefectStatistics DefectStatistics::date95_table1() {
    DefectStatistics s;
    s.metal1_short_per_cm2 = 1.0;  // Feltham/Maly, 1 defect/cm^2
    // Diffusion applies to both implant flavours; LIFT looks the mechanism
    // up by layer, so the table carries one entry per drawn layer.
    s.mechanisms = {
        {"diff_open", Layer::NDiff, FailureMode::Open, std::nullopt, 0.01},
        {"diff_short", Layer::NDiff, FailureMode::Short, std::nullopt, 1.00},
        {"diff_open", Layer::PDiff, FailureMode::Open, std::nullopt, 0.01},
        {"diff_short", Layer::PDiff, FailureMode::Short, std::nullopt, 1.00},
        {"poly_open", Layer::Poly, FailureMode::Open, std::nullopt, 0.25},
        {"poly_short", Layer::Poly, FailureMode::Short, std::nullopt, 1.25},
        {"metal1_open", Layer::Metal1, FailureMode::Open, std::nullopt, 0.01},
        {"metal1_short", Layer::Metal1, FailureMode::Short, std::nullopt, 1.0},
        {"metal2_open", Layer::Metal2, FailureMode::Open, std::nullopt, 0.02},
        {"metal2_short", Layer::Metal2, FailureMode::Short, std::nullopt, 1.50},
        {"contact_diff_open", Layer::Contact, FailureMode::Open, Layer::NDiff,
         0.66},
        {"contact_diff_open", Layer::Contact, FailureMode::Open, Layer::PDiff,
         0.66},
        {"contact_poly_open", Layer::Contact, FailureMode::Open, Layer::Poly,
         0.67},
        {"via_open", Layer::Via, FailureMode::Open, std::nullopt, 0.8},
    };
    return s;
}

const Mechanism* DefectStatistics::find(
    Layer layer, FailureMode mode, std::optional<Layer> lower) const {
    for (const Mechanism& m : mechanisms) {
        if (m.layer != layer || m.mode != mode) continue;
        if (m.lower.has_value() != lower.has_value()) continue;
        if (m.lower && lower && *m.lower != *lower) continue;
        return &m;
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// SizeDistribution

SizeDistribution::SizeDistribution(double x0_nm) : x0_(x0_nm) {
    require(x0_nm > 0, "SizeDistribution: x0 must be positive");
}

double SizeDistribution::pdf(double x) const {
    if (x <= 0) return 0.0;
    if (x <= x0_) return x / (x0_ * x0_);
    return (x0_ * x0_) / (x * x * x);
}

double SizeDistribution::cdf(double x) const {
    if (x <= 0) return 0.0;
    if (x <= x0_) return 0.5 * (x / x0_) * (x / x0_);
    return 1.0 - 0.5 * (x0_ / x) * (x0_ / x);
}

// ---------------------------------------------------------------------------
// DefectModel

template <typename F>
double DefectModel::integrate(F kernel, double lo) const {
    if (lo >= xmax_) return 0.0;
    // Composite Simpson with a panel count scaled to the span; the
    // integrand is smooth (piecewise C1 with one knee at x0), so splitting
    // at x0 keeps the rule accurate.
    auto simpson = [&](double a, double b) {
        if (b <= a) return 0.0;
        const int n = 256;  // even
        const double h = (b - a) / n;
        double acc = kernel(a) * dist_.pdf(a) + kernel(b) * dist_.pdf(b);
        for (int i = 1; i < n; ++i) {
            const double x = a + h * i;
            acc += kernel(x) * dist_.pdf(x) * ((i % 2) ? 4.0 : 2.0);
        }
        return acc * h / 3.0;
    };
    const double knee = dist_.x0();
    if (lo < knee && knee < xmax_)
        return simpson(lo, knee) + simpson(knee, xmax_);
    return simpson(lo, xmax_);
}

double DefectModel::bridge_wca(double facing_nm, double spacing_nm) const {
    require(facing_nm >= 0 && spacing_nm > 0, "bridge_wca: bad geometry");
    return integrate(
        [&](double x) { return facing_nm * std::max(0.0, x - spacing_nm); },
        spacing_nm);
}

double DefectModel::open_wca(double len_nm, double width_nm) const {
    require(len_nm >= 0 && width_nm > 0, "open_wca: bad geometry");
    return integrate(
        [&](double x) { return len_nm * std::max(0.0, x - width_nm); },
        width_nm);
}

double DefectModel::cut_wca(double w_nm, double h_nm) const {
    require(w_nm > 0 && h_nm > 0, "cut_wca: bad geometry");
    const double lo = std::max(w_nm, h_nm);
    return integrate(
        [&](double x) {
            return std::max(0.0, x - w_nm) * std::max(0.0, x - h_nm);
        },
        lo);
}

double DefectModel::bridge_probability(const Mechanism& m, double facing_nm,
                                       double spacing_nm) const {
    return stats_.density_per_cm2(m) *
           nm2_to_cm2(bridge_wca(facing_nm, spacing_nm));
}

double DefectModel::open_probability(const Mechanism& m, double len_nm,
                                     double width_nm) const {
    return stats_.density_per_cm2(m) *
           nm2_to_cm2(open_wca(len_nm, width_nm));
}

double DefectModel::cut_probability(const Mechanism& m, double w_nm,
                                    double h_nm) const {
    return stats_.density_per_cm2(m) * nm2_to_cm2(cut_wca(w_nm, h_nm));
}

DefectModel DefectModel::date95() {
    return DefectModel(DefectStatistics::date95_table1(),
                       SizeDistribution(1000.0), 25000.0);
}

} // namespace catlift::defects
