// catlift/defects/montecarlo.h
//
// Monte-Carlo spot-defect injection -- the original Inductive Fault
// Analysis methodology (Shen/Maly/Ferguson [25], referenced in ch. II):
// "Based on random spot defects introduced on the layout according to
// statistics, defects large enough to modify the circuit topology ... are
// identified and translated into realistic faults."
//
// LIFT replaces the sampling with analytic critical-area integrals; this
// module keeps the sampling path alive as a *validation oracle*: sample
// defects (layer ~ relative density, diameter ~ Ferris-Prabhu, position
// uniform), translate each into its electrical effect, and compare the
// empirical bridge frequencies against LIFT's analytic probabilities.

#pragma once

#include "defects/defects.h"
#include "extract/extractor.h"
#include "geom/rect.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace catlift::defects {

/// One sampled spot defect (modelled as a square of side `size`).
struct DefectSample {
    layout::Layer layer = layout::Layer::Metal1;
    FailureMode mode = FailureMode::Short;
    geom::Rect square;
};

/// Deterministic sampler over the defect statistics.
class DefectSampler {
public:
    DefectSampler(const DefectStatistics& stats, const SizeDistribution& dist,
                  double max_defect_nm, std::uint64_t seed);

    /// Draw one defect over (a margin-expanded) chip window.
    DefectSample sample(const geom::Rect& chip);

    /// Inverse-CDF draw from the (xmax-truncated) size distribution [nm].
    double sample_size();

private:
    double uniform();  // (0,1)

    const DefectStatistics* stats_;
    SizeDistribution dist_;
    double xmax_;
    std::uint64_t state_;
    std::vector<double> cum_density_;  // mechanism selection CDF
};

/// Empirical bridge census: net-pair -> hit count.
using BridgeCensus = std::map<std::pair<std::string, std::string>, long>;

/// Sample `n` defects on the extracted layout and count which net pairs
/// each *short* defect bridges (a defect bridges a pair when its square
/// touches conductors of both nets on its layer).  Open-mode samples are
/// drawn but produce no census entries; `shorts_sampled` reports how many
/// short defects were drawn.
BridgeCensus monte_carlo_bridges(const extract::Extraction& ex,
                                 const DefectStatistics& stats,
                                 const SizeDistribution& dist,
                                 double max_defect_nm, long n,
                                 std::uint64_t seed,
                                 long* shorts_sampled = nullptr);

} // namespace catlift::defects
