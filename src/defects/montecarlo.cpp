#include "defects/montecarlo.h"

#include "geom/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace catlift::defects {

using geom::Coord;
using geom::Rect;

DefectSampler::DefectSampler(const DefectStatistics& stats,
                             const SizeDistribution& dist,
                             double max_defect_nm, std::uint64_t seed)
    : stats_(&stats), dist_(dist), xmax_(max_defect_nm),
      state_(seed ? seed : 0x9E3779B97F4A7C15ull) {
    require(!stats.mechanisms.empty(), "DefectSampler: empty statistics");
    double acc = 0.0;
    for (const Mechanism& m : stats.mechanisms) {
        acc += m.rel_density;
        cum_density_.push_back(acc);
    }
    require(acc > 0, "DefectSampler: zero total density");
}

double DefectSampler::uniform() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t r = state_ * 0x2545F4914F6CDD1Dull;
    return (static_cast<double>(r >> 11) + 0.5) / 9007199254740992.0;
}

double DefectSampler::sample_size() {
    // Inverse CDF of the Ferris-Prabhu distribution, truncated at xmax:
    //   u <= 1/2           : x = x0 sqrt(2u)          (linear part)
    //   u >  1/2           : x = x0 / sqrt(2 (1-u))   (1/x^3 tail)
    const double cap = dist_.cdf(xmax_);
    const double u = uniform() * cap;
    const double x0 = dist_.x0();
    if (u <= 0.5) return x0 * std::sqrt(2.0 * u);
    return x0 / std::sqrt(2.0 * (1.0 - u));
}

DefectSample DefectSampler::sample(const Rect& chip) {
    DefectSample d;
    // Mechanism ~ relative density.
    const double pick = uniform() * cum_density_.back();
    std::size_t mi = 0;
    while (mi + 1 < cum_density_.size() && cum_density_[mi] < pick) ++mi;
    const Mechanism& mech = stats_->mechanisms[mi];
    d.layer = mech.layer;
    d.mode = mech.mode;

    // Size and position (centres may fall half a defect outside the chip).
    const double size = sample_size();
    const auto h = static_cast<Coord>(size / 2.0 + 0.5);
    const Rect window = chip.expanded(static_cast<Coord>(xmax_ / 2.0));
    const auto cx = static_cast<Coord>(
        window.lo.x + uniform() * static_cast<double>(window.width()));
    const auto cy = static_cast<Coord>(
        window.lo.y + uniform() * static_cast<double>(window.height()));
    d.square = Rect(cx - h, cy - h, cx + h, cy + h);
    return d;
}

BridgeCensus monte_carlo_bridges(const extract::Extraction& ex,
                                 const DefectStatistics& stats,
                                 const SizeDistribution& dist,
                                 double max_defect_nm, long n,
                                 std::uint64_t seed, long* shorts_sampled) {
    // Spatial indices per conducting layer.
    std::map<layout::Layer, geom::SpatialIndex> index;
    Rect chip;
    bool first = true;
    for (std::size_t i = 0; i < ex.fragments.size(); ++i) {
        const auto& f = ex.fragments[i];
        chip = first ? f.rect : chip.united(f.rect);
        first = false;
        auto it = index.find(f.layer);
        if (it == index.end())
            it = index.emplace(f.layer, geom::SpatialIndex(20000)).first;
        it->second.insert(i, f.rect);
    }
    require(!first, "monte_carlo_bridges: empty extraction");

    DefectSampler sampler(stats, dist, max_defect_nm, seed);
    BridgeCensus census;
    long shorts = 0;
    for (long k = 0; k < n; ++k) {
        const DefectSample d = sampler.sample(chip);
        if (d.mode != FailureMode::Short) continue;
        ++shorts;
        auto it = index.find(d.layer);
        if (it == index.end()) continue;
        // Nets whose conductors the defect square touches.
        std::set<int> nets;
        for (std::size_t fi : it->second.query(d.square)) {
            if (ex.fragments[fi].rect.touches(d.square))
                nets.insert(ex.fragments[fi].net);
        }
        if (nets.size() < 2) continue;  // harmless speck
        // Count each bridged pair (a multi-net defect hits several pairs).
        for (auto a = nets.begin(); a != nets.end(); ++a) {
            for (auto b = std::next(a); b != nets.end(); ++b) {
                std::string na = ex.net_name(*a);
                std::string nb = ex.net_name(*b);
                if (na > nb) std::swap(na, nb);
                ++census[{na, nb}];
            }
        }
    }
    if (shorts_sampled) *shorts_sampled = shorts;
    return census;
}

} // namespace catlift::defects
