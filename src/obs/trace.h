// catlift/obs/trace.h
//
// Scoped span timers feeding (a) the per-phase histograms of the global
// metrics registry and (b) an in-memory trace buffer exported as Chrome
// `trace_event` JSON ("X" complete events), loadable in Perfetto or
// chrome://tracing.  Every thread owns a lane (tid) that survives the
// thread itself; campaign worker threads name their lane "worker-N" so a
// fault simulation shows up as a span on the worker that ran it, with the
// kernel phases (analyze/factor/refactor/solve/newton/store_append)
// nested underneath by start/duration containment.
//
// Everything is compiled in but off by default.  The entire off path of
// a `Span` is one relaxed atomic load and a branch -- no clock read, no
// allocation -- which is what keeps traced-off campaign overhead inside
// the <2% guard band.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace catlift::obs {

// ---------------------------------------------------------------------------
// Runtime enable mask.

enum : unsigned {
    kMetricsBit = 1u,  ///< spans feed phase histograms in Registry::global()
    kTracingBit = 2u,  ///< spans append Chrome trace events to their lane
};

namespace detail {
extern std::atomic<unsigned> g_enabled_mask;
} // namespace detail

inline unsigned enabled_mask() noexcept {
    return detail::g_enabled_mask.load(std::memory_order_relaxed);
}
inline bool metrics_enabled() noexcept {
    return (enabled_mask() & kMetricsBit) != 0;
}
inline bool tracing_enabled() noexcept {
    return (enabled_mask() & kTracingBit) != 0;
}
void enable_metrics(bool on) noexcept;
void enable_tracing(bool on) noexcept;

/// Nanoseconds since the process trace epoch (steady clock).
std::uint64_t now_ns() noexcept;

// ---------------------------------------------------------------------------
// Phases -- the stable span vocabulary (see docs/trace-schema.md).

enum class Phase : std::uint8_t {
    FaultSim,     ///< one fault simulation (injection + nominal-vs-faulty run)
    Nominal,      ///< the campaign's fault-free reference simulation
    Analyze,      ///< sparse symbolic analysis / ordering
    Factor,       ///< full LU factorization (dense, or sparse with fill pass)
    Refactor,     ///< sparse numeric refactorization on the known pattern
    Solve,        ///< forward/backward substitution
    Newton,       ///< one Newton-Raphson solve to convergence
    StoreAppend,  ///< result-store record encode + append + flush
    kCount
};

const char* phase_name(Phase p) noexcept;      // e.g. "fault", "newton"
const char* phase_category(Phase p) noexcept;  // "fault" | "kernel" | "store"

// ---------------------------------------------------------------------------
// Trace events.

struct TraceArg {
    const char* key = "";
    enum class Kind : std::uint8_t { I64, F64, Str } kind = Kind::I64;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
};

inline TraceArg arg(const char* key, std::int64_t v) {
    TraceArg a;
    a.key = key;
    a.kind = TraceArg::Kind::I64;
    a.i = v;
    return a;
}
inline TraceArg arg(const char* key, double v) {
    TraceArg a;
    a.key = key;
    a.kind = TraceArg::Kind::F64;
    a.d = v;
    return a;
}
inline TraceArg arg(const char* key, std::string v) {
    TraceArg a;
    a.key = key;
    a.kind = TraceArg::Kind::Str;
    a.s = std::move(v);
    return a;
}

struct TraceEvent {
    const char* name = "";
    const char* cat = "";
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
    std::vector<TraceArg> args;
};

// ---------------------------------------------------------------------------
// Span -- RAII scoped timer.  Construct with the phase; on destruction
// (or explicit end()) it records the duration into the phase histogram
// when metrics are on and appends a complete event to the calling
// thread's lane when tracing is on.  Args attach only when tracing is on.

class Span {
public:
    explicit Span(Phase p) noexcept : mask_(enabled_mask()) {
        if (mask_ != 0) {
            phase_ = p;
            t0_ = now_ns();
            live_ = true;
        }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() {
        if (live_) finish();
    }

    /// Re-classify a live span (e.g. Factor that turned out a Refactor).
    void set_phase(Phase p) noexcept {
        if (live_) phase_ = p;
    }
    void arg(const char* key, std::int64_t v);
    void arg(const char* key, double v);
    void arg(const char* key, std::string v);
    /// Close early (idempotent; the destructor becomes a no-op).
    void end() {
        if (live_) {
            finish();
            live_ = false;
        }
    }

private:
    void finish();

    unsigned mask_ = 0;
    bool live_ = false;
    Phase phase_ = Phase::FaultSim;
    std::uint64_t t0_ = 0;
    std::vector<TraceArg> args_;
};

/// The phase histogram a span records into ("phase.<name>.seconds" in
/// Registry::global()); exposed so reports can read p50/p95/max.
class Histogram;
Histogram& phase_histogram(Phase p);

// ---------------------------------------------------------------------------
// Lanes and export.

/// Name the calling thread's trace lane ("main", "worker-3", ...).
void set_lane_name(const std::string& name);

/// Append a pre-built event to the calling thread's lane (tracing must be
/// checked by the caller; used by Span and the event bridge).
void append_event(TraceEvent ev);

/// All buffered events, every lane, sorted by (tid, ts).
std::vector<TraceEvent> trace_snapshot();
std::size_t trace_event_count();
/// Drop all buffered events (lanes and names survive).
void trace_reset();

/// Chrome trace_event JSON: {"traceEvents":[...]} with one "M" metadata
/// event per named lane and all spans as "X" complete events sorted by
/// (tid, ts) so every lane's timestamps are monotonic in file order.
void write_chrome_trace(std::ostream& os);
/// Convenience: write to `path`, returns false if the file can't open.
bool write_chrome_trace_file(const std::string& path);

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

} // namespace catlift::obs
