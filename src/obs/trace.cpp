#include "obs/trace.h"

#include "core/thread_annotations.h"
#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>

namespace catlift::obs {

namespace detail {
std::atomic<unsigned> g_enabled_mask{0};
} // namespace detail

void enable_metrics(bool on) noexcept {
    if (on)
        detail::g_enabled_mask.fetch_or(kMetricsBit,
                                        std::memory_order_relaxed);
    else
        detail::g_enabled_mask.fetch_and(~kMetricsBit,
                                         std::memory_order_relaxed);
}

void enable_tracing(bool on) noexcept {
    if (on)
        detail::g_enabled_mask.fetch_or(kTracingBit,
                                        std::memory_order_relaxed);
    else
        detail::g_enabled_mask.fetch_and(~kTracingBit,
                                         std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

// ---------------------------------------------------------------------------
// Phases

const char* phase_name(Phase p) noexcept {
    switch (p) {
    case Phase::FaultSim: return "fault";
    case Phase::Nominal: return "nominal";
    case Phase::Analyze: return "analyze";
    case Phase::Factor: return "factor";
    case Phase::Refactor: return "refactor";
    case Phase::Solve: return "solve";
    case Phase::Newton: return "newton";
    case Phase::StoreAppend: return "store_append";
    case Phase::kCount: break;
    }
    return "unknown";
}

const char* phase_category(Phase p) noexcept {
    switch (p) {
    case Phase::FaultSim:
    case Phase::Nominal: return "fault";
    case Phase::StoreAppend: return "store";
    default: return "kernel";
    }
}

Histogram& phase_histogram(Phase p) {
    struct Table {
        Histogram* h[static_cast<std::size_t>(Phase::kCount)];
        Table() {
            Registry& reg = Registry::global();
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(Phase::kCount); ++i) {
                const std::string name =
                    std::string("phase.") +
                    phase_name(static_cast<Phase>(i)) + ".seconds";
                h[i] = &reg.histogram(name);
            }
        }
    };
    static Table table;
    return *table.h[static_cast<std::size_t>(p)];
}

// ---------------------------------------------------------------------------
// Lanes

namespace {

struct Lane {
    std::uint32_t tid = 0;  ///< immutable after construction (no guard)
    Mutex mu;
    std::string name CATLIFT_GUARDED_BY(mu);
    std::vector<TraceEvent> events CATLIFT_GUARDED_BY(mu);
};

struct LaneRegistry {
    Mutex mu;
    // unique_ptr indirection: a Lane's address is stable while the vector
    // grows, so owners append to their lane without the registry lock.
    std::vector<std::unique_ptr<Lane>> lanes CATLIFT_GUARDED_BY(mu);
};

LaneRegistry& lane_registry() {
    static LaneRegistry* reg = new LaneRegistry;  // outlives worker threads
    return *reg;
}

Lane& this_lane() {
    thread_local Lane* lane = [] {
        LaneRegistry& reg = lane_registry();
        MutexLock lock(reg.mu);
        auto owned = std::make_unique<Lane>();
        owned->tid = static_cast<std::uint32_t>(reg.lanes.size());
        Lane* raw = owned.get();
        reg.lanes.push_back(std::move(owned));
        return raw;
    }();
    return *lane;
}

} // namespace

void set_lane_name(const std::string& name) {
    Lane& lane = this_lane();
    MutexLock lock(lane.mu);
    lane.name = name;
}

void append_event(TraceEvent ev) {
    Lane& lane = this_lane();
    ev.tid = lane.tid;
    MutexLock lock(lane.mu);
    lane.events.push_back(std::move(ev));
}

// ---------------------------------------------------------------------------
// Span

void Span::arg(const char* key, std::int64_t v) {
    if (live_ && (mask_ & kTracingBit)) args_.push_back(obs::arg(key, v));
}
void Span::arg(const char* key, double v) {
    if (live_ && (mask_ & kTracingBit)) args_.push_back(obs::arg(key, v));
}
void Span::arg(const char* key, std::string v) {
    if (live_ && (mask_ & kTracingBit))
        args_.push_back(obs::arg(key, std::move(v)));
}

void Span::finish() {
    const std::uint64_t t1 = now_ns();
    const std::uint64_t dur = t1 > t0_ ? t1 - t0_ : 0;
    if (mask_ & kMetricsBit)
        phase_histogram(phase_).record(static_cast<double>(dur) * 1e-9);
    if (mask_ & kTracingBit) {
        TraceEvent ev;
        ev.name = phase_name(phase_);
        ev.cat = phase_category(phase_);
        ev.ts_ns = t0_;
        ev.dur_ns = dur;
        ev.args = std::move(args_);
        append_event(std::move(ev));
    }
}

// ---------------------------------------------------------------------------
// Export

std::vector<TraceEvent> trace_snapshot() {
    std::vector<TraceEvent> out;
    LaneRegistry& reg = lane_registry();
    MutexLock lock(reg.mu);
    for (auto& lane : reg.lanes) {
        MutexLock ll(lane->mu);
        out.insert(out.end(), lane->events.begin(), lane->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.tid != b.tid ? a.tid < b.tid
                                               : a.ts_ns < b.ts_ns;
                     });
    return out;
}

std::size_t trace_event_count() {
    std::size_t n = 0;
    LaneRegistry& reg = lane_registry();
    MutexLock lock(reg.mu);
    for (auto& lane : reg.lanes) {
        MutexLock ll(lane->mu);
        n += lane->events.size();
    }
    return n;
}

void trace_reset() {
    LaneRegistry& reg = lane_registry();
    MutexLock lock(reg.mu);
    for (auto& lane : reg.lanes) {
        MutexLock ll(lane->mu);
        lane->events.clear();
    }
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void write_args(std::ostream& os, const std::vector<TraceArg>& args) {
    os << "{";
    bool first = true;
    for (const TraceArg& a : args) {
        if (!first) os << ",";
        first = false;
        os << "\"" << json_escape(a.key) << "\":";
        switch (a.kind) {
        case TraceArg::Kind::I64: os << a.i; break;
        case TraceArg::Kind::F64: {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.9g", a.d);
            os << buf;
            break;
        }
        case TraceArg::Kind::Str:
            os << "\"" << json_escape(a.s) << "\"";
            break;
        }
    }
    os << "}";
}

void write_ts_us(std::ostream& os, std::uint64_t ns) {
    // Microseconds with nanosecond precision, printed without float
    // rounding: Chrome's ts/dur unit is the microsecond.
    os << ns / 1000 << "." << static_cast<char>('0' + (ns / 100) % 10)
       << static_cast<char>('0' + (ns / 10) % 10)
       << static_cast<char>('0' + ns % 10);
}

} // namespace

void write_chrome_trace(std::ostream& os) {
    os << "{\"traceEvents\":[\n";
    bool first = true;
    {
        LaneRegistry& reg = lane_registry();
        MutexLock lock(reg.mu);
        for (auto& lane : reg.lanes) {
            MutexLock ll(lane->mu);
            if (lane->name.empty()) continue;
            if (!first) os << ",\n";
            first = false;
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               << "\"tid\":" << lane->tid << ",\"args\":{\"name\":\""
               << json_escape(lane->name) << "\"}}";
        }
    }
    for (const TraceEvent& ev : trace_snapshot()) {
        if (!first) os << ",\n";
        first = false;
        os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
           << json_escape(ev.cat) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << ev.tid << ",\"ts\":";
        write_ts_us(os, ev.ts_ns);
        os << ",\"dur\":";
        write_ts_us(os, ev.dur_ns);
        if (!ev.args.empty()) {
            os << ",\"args\":";
            write_args(os, ev.args);
        }
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool write_chrome_trace_file(const std::string& path) {
    std::ofstream f(path);
    if (!f.good()) return false;
    write_chrome_trace(f);
    return f.good();
}

} // namespace catlift::obs
