// catlift/obs/events.h
//
// Campaign event log: a tiny publish/subscribe bus carrying discrete
// campaign lifecycle events (fault scheduled/started/retired/carried,
// store flush, symbolic-cache hit/miss, campaign start/end) to attached
// sinks.  The JSONL sink is the streaming hook a long-lived campaign
// service will subscribe to; the progress sink renders a live [k/n]
// line; `NullSink` documents (and tests) the contract that a sink may
// discard everything.
//
// When no sink is attached -- the default -- `events_enabled()` is false
// and `emit_event` callers skip field construction entirely, so the off
// path is one relaxed load and a branch, same as spans.

#pragma once

#include "core/thread_annotations.h"
#include "obs/trace.h"  // TraceArg doubles as the event field type

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace catlift::obs {

class EventSink {
public:
    virtual ~EventSink() = default;
    virtual void on_event(const char* name, std::uint64_t ts_ns,
                          const std::vector<TraceArg>& fields) = 0;
};

/// Discards every event -- the documented fast path when observation is
/// wired in but nobody is listening.
class NullSink : public EventSink {
public:
    void on_event(const char*, std::uint64_t,
                  const std::vector<TraceArg>&) override {}
};

/// One JSON object per line: {"ev":<name>,"ts_us":<t>,...fields}.
class JsonlSink : public EventSink {
public:
    explicit JsonlSink(const std::string& path);
    ~JsonlSink() override;
    bool good() const { return file_ != nullptr; }
    void on_event(const char* name, std::uint64_t ts_ns,
                  const std::vector<TraceArg>& fields) override;

private:
    std::FILE* file_ = nullptr;
};

/// Live campaign progress on a FILE* (default stderr): consumes
/// campaign_start for the total, prints a carriage-return [k/n] line per
/// retired fault and a final newline at campaign_end.
class ProgressSink : public EventSink {
public:
    explicit ProgressSink(std::FILE* out = stderr) : out_(out) {}
    void on_event(const char* name, std::uint64_t ts_ns,
                  const std::vector<TraceArg>& fields) override;

private:
    std::FILE* out_;
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::size_t detected_ = 0;
};

/// Buffers events in memory; for tests.
class CaptureSink : public EventSink {
public:
    struct Captured {
        std::string name;
        std::uint64_t ts_ns = 0;
        std::vector<TraceArg> fields;
    };
    void on_event(const char* name, std::uint64_t ts_ns,
                  const std::vector<TraceArg>& fields) override;
    std::vector<Captured> take();
    std::size_t count_of(const std::string& name);

private:
    Mutex mu_;
    std::vector<Captured> events_ CATLIFT_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// Bus

namespace detail {
extern std::atomic<bool> g_events_enabled;
} // namespace detail

inline bool events_enabled() noexcept {
    return detail::g_events_enabled.load(std::memory_order_relaxed);
}

void attach_event_sink(std::shared_ptr<EventSink> sink);
void detach_event_sinks();

/// Deliver an event to every attached sink.  Callers on hot paths must
/// guard with `events_enabled()` so the field list is never built when
/// nobody listens:
///
///   if (obs::events_enabled())
///       obs::emit_event("fault_retired", {obs::arg("fault_id", id)});
void emit_event(const char* name, std::initializer_list<TraceArg> fields);
void emit_event(const char* name, const std::vector<TraceArg>& fields);

} // namespace catlift::obs
