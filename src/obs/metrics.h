// catlift/obs/metrics.h
//
// Low-overhead metrics registry: counters, gauges and histograms with
// fixed log-scale buckets.  Writers touch per-thread sharded slots
// (cache-line padded atomics keyed by a thread-local shard index), so a
// campaign's worker threads never contend on a metric; readers aggregate
// the shards on demand.  Metric objects returned by the registry are
// stable for the process lifetime -- `reset()` zeroes values in place, it
// never invalidates references -- so hot paths can cache `Counter&`.
//
// The registry is always usable (benches write to it directly); the
// *instrumentation* that feeds it from the kernel and campaign layers is
// gated by the obs enable mask (see trace.h) so the off path costs one
// relaxed load and a branch per event.

#pragma once

#include "core/thread_annotations.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace catlift::obs {

/// Number of independent write slots per metric.  Threads hash onto a
/// slot by a thread-local index; 8 slots cover the campaign scheduler's
/// typical worker counts without measurable contention.
inline constexpr std::size_t kShards = 8;

/// Shard index of the calling thread (assigned once per thread).
std::size_t this_thread_shard() noexcept;

// ---------------------------------------------------------------------------
// Counter -- monotonically increasing 64-bit sum.

class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        shards_[this_thread_shard()].v.fetch_add(delta,
                                                 std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        std::uint64_t total = 0;
        for (const Shard& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }
    void reset() noexcept {
        for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Shard, kShards> shards_{};
};

// ---------------------------------------------------------------------------
// Gauge -- last-set value (one slot; gauges are set, not accumulated).

class Gauge {
public:
    void set(double v) noexcept {
        bits_.store(encode(v), std::memory_order_relaxed);
    }
    double value() const noexcept {
        return decode(bits_.load(std::memory_order_relaxed));
    }
    void reset() noexcept { bits_.store(encode(0.0)); }

private:
    static std::uint64_t encode(double v) noexcept {
        std::uint64_t b = 0;
        static_assert(sizeof(b) == sizeof(v));
        __builtin_memcpy(&b, &v, sizeof(b));
        return b;
    }
    static double decode(std::uint64_t b) noexcept {
        double v = 0;
        __builtin_memcpy(&v, &b, sizeof(v));
        return v;
    }
    std::atomic<std::uint64_t> bits_{0};
};

// ---------------------------------------------------------------------------
// Histogram -- fixed log-scale buckets, 5 per decade over [1e-9, 1e6),
// plus an underflow and an overflow bucket.  The range covers both span
// durations in seconds (1 ns .. 11 days) and discrete counts (iterations,
// steps) up to a million.  Exact count/sum/max are kept alongside the
// buckets so means and maxima never suffer bucket quantisation;
// percentiles interpolate geometrically inside their bucket.

inline constexpr double kHistMin = 1e-9;
inline constexpr int kHistPerDecade = 5;
inline constexpr int kHistDecades = 15;
inline constexpr std::size_t kHistBuckets =
    static_cast<std::size_t>(kHistPerDecade * kHistDecades) + 2;

/// Bucket index of a sample (0 = underflow, kHistBuckets-1 = overflow).
std::size_t histogram_bucket(double v) noexcept;
/// Upper bound of bucket `i` (lower bound of `i+1`).
double histogram_bucket_upper(std::size_t i) noexcept;

struct HistogramSnapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kHistBuckets> buckets{};

    double mean() const noexcept {
        return count ? sum / static_cast<double>(count) : 0.0;
    }
    /// Percentile in [0,1] by cumulative bucket walk with geometric
    /// interpolation; clamped to the exact max.
    double percentile(double p) const noexcept;
    double p50() const noexcept { return percentile(0.50); }
    double p95() const noexcept { return percentile(0.95); }
};

class Histogram {
public:
    void record(double v) noexcept;
    HistogramSnapshot snapshot() const noexcept;
    void reset() noexcept;

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum_bits{0};  // double, CAS-accumulated
        std::atomic<std::uint64_t> max_bits{0};  // double, CAS-maxed
        std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    };
    std::array<Shard, kShards> shards_{};
};

// ---------------------------------------------------------------------------
// Registry -- name -> metric.  Lookup takes a mutex; hot paths look a
// metric up once and cache the reference (stable for process lifetime).

class Registry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Zero every metric's value in place (references stay valid).
    void reset();

    /// Snapshot as a JSON object: {"counters":{...},"gauges":{...},
    /// "histograms":{name:{count,sum,mean,max,p50,p95}}}.  `indent`
    /// prefixes every line for embedding into larger documents.
    std::string to_json(const std::string& indent = "") const;

    /// The process-wide registry used by the instrumentation layer.
    static Registry& global();

private:
    // The maps are guarded; the *metrics* they own are not -- a returned
    // Counter& is written lock-free through its sharded atomics, and the
    // unique_ptr indirection keeps those shards at a stable address
    // across concurrent registrations.
    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        CATLIFT_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        CATLIFT_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        CATLIFT_GUARDED_BY(mu_);
};

} // namespace catlift::obs
