// catlift/obs/obs.h
//
// Umbrella header for the observability subsystem:
//
//   metrics.h  sharded counters/gauges/log-bucket histograms + registry
//   trace.h    enable mask, scoped Span timers, Chrome trace exporter
//   events.h   campaign event bus (JSONL / progress / null sinks)
//
// Everything is compiled in and off by default; the disabled path of
// every instrumentation point is one relaxed atomic load and a branch.

#pragma once

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
