#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace catlift::obs {

std::size_t this_thread_shard() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shard;
}

// ---------------------------------------------------------------------------
// Histogram

std::size_t histogram_bucket(double v) noexcept {
    if (!(v > kHistMin)) return 0;  // underflow (and NaN)
    const double lg = std::log10(v / kHistMin) *
                      static_cast<double>(kHistPerDecade);
    const std::size_t idx = 1 + static_cast<std::size_t>(lg);
    const std::size_t last = kHistPerDecade * kHistDecades;
    return idx > last ? last + 1 : idx;
}

double histogram_bucket_upper(std::size_t i) noexcept {
    if (i + 1 >= kHistBuckets) return HUGE_VAL;
    return kHistMin * std::pow(10.0, static_cast<double>(i) /
                                         static_cast<double>(kHistPerDecade));
}

namespace {

double bits_to_double(std::uint64_t b) noexcept {
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

std::uint64_t double_to_bits(double v) noexcept {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

void atomic_add_double(std::atomic<std::uint64_t>& bits, double d) noexcept {
    std::uint64_t cur = bits.load(std::memory_order_relaxed);
    while (!bits.compare_exchange_weak(
        cur, double_to_bits(bits_to_double(cur) + d),
        std::memory_order_relaxed)) {
    }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double d) noexcept {
    std::uint64_t cur = bits.load(std::memory_order_relaxed);
    while (bits_to_double(cur) < d &&
           !bits.compare_exchange_weak(cur, double_to_bits(d),
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

void Histogram::record(double v) noexcept {
    Shard& s = shards_[this_thread_shard()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    atomic_add_double(s.sum_bits, v);
    atomic_max_double(s.max_bits, v);
    s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
    HistogramSnapshot out;
    for (const Shard& s : shards_) {
        out.count += s.count.load(std::memory_order_relaxed);
        out.sum += bits_to_double(s.sum_bits.load(std::memory_order_relaxed));
        out.max = std::max(
            out.max,
            bits_to_double(s.max_bits.load(std::memory_order_relaxed)));
        for (std::size_t i = 0; i < kHistBuckets; ++i)
            out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    return out;
}

void Histogram::reset() noexcept {
    for (Shard& s : shards_) {
        s.count.store(0, std::memory_order_relaxed);
        s.sum_bits.store(0, std::memory_order_relaxed);
        s.max_bits.store(0, std::memory_order_relaxed);
        for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
}

double HistogramSnapshot::percentile(double p) const noexcept {
    if (count == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
        cum += buckets[i];
        if (static_cast<double>(cum) >= target && buckets[i] > 0) {
            if (i == 0) return std::min(kHistMin, max);
            if (i + 1 == kHistBuckets) return max;
            const double lo = histogram_bucket_upper(i - 1);
            const double hi = histogram_bucket_upper(i);
            return std::min(std::sqrt(lo * hi), max);  // geometric midpoint
        }
    }
    return max;
}

// ---------------------------------------------------------------------------
// Registry

Counter& Registry::counter(const std::string& name) {
    MutexLock lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
    MutexLock lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
    MutexLock lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

void Registry::reset() {
    MutexLock lock(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

namespace {

std::string json_number(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string Registry::to_json(const std::string& indent) const {
    MutexLock lock(mu_);
    std::string js;
    const std::string i1 = indent + "  ";
    const std::string i2 = i1 + "  ";
    js += "{\n" + i1 + "\"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        js += first ? "\n" : ",\n";
        first = false;
        js += i2 + "\"" + name + "\": " + std::to_string(c->value());
    }
    js += first ? "},\n" : "\n" + i1 + "},\n";
    js += i1 + "\"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        js += first ? "\n" : ",\n";
        first = false;
        js += i2 + "\"" + name + "\": " + json_number(g->value());
    }
    js += first ? "},\n" : "\n" + i1 + "},\n";
    js += i1 + "\"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        const HistogramSnapshot s = h->snapshot();
        js += first ? "\n" : ",\n";
        first = false;
        js += i2 + "\"" + name + "\": {\"count\": " + std::to_string(s.count) +
              ", \"sum\": " + json_number(s.sum) +
              ", \"mean\": " + json_number(s.mean()) +
              ", \"p50\": " + json_number(s.p50()) +
              ", \"p95\": " + json_number(s.p95()) +
              ", \"max\": " + json_number(s.max) + "}";
    }
    js += first ? "}\n" : "\n" + i1 + "}\n";
    js += indent + "}";
    return js;
}

Registry& Registry::global() {
    static Registry reg;
    return reg;
}

} // namespace catlift::obs
