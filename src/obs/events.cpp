#include "obs/events.h"

#include <algorithm>
#include <cstring>

namespace catlift::obs {

namespace detail {
std::atomic<bool> g_events_enabled{false};
} // namespace detail

// ---------------------------------------------------------------------------
// JsonlSink

JsonlSink::JsonlSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

JsonlSink::~JsonlSink() {
    if (file_) std::fclose(file_);
}

void JsonlSink::on_event(const char* name, std::uint64_t ts_ns,
                         const std::vector<TraceArg>& fields) {
    if (!file_) return;
    std::string line = "{\"ev\":\"";
    line += json_escape(name);
    line += "\",\"ts_us\":";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ts_ns) * 1e-3);
    line += buf;
    for (const TraceArg& f : fields) {
        line += ",\"";
        line += json_escape(f.key);
        line += "\":";
        switch (f.kind) {
        case TraceArg::Kind::I64: line += std::to_string(f.i); break;
        case TraceArg::Kind::F64:
            std::snprintf(buf, sizeof(buf), "%.9g", f.d);
            line += buf;
            break;
        case TraceArg::Kind::Str:
            line += "\"";
            line += json_escape(f.s);
            line += "\"";
            break;
        }
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);  // the log is a crash-forensics artifact
}

// ---------------------------------------------------------------------------
// ProgressSink (serialized by the bus mutex)

void ProgressSink::on_event(const char* name, std::uint64_t,
                            const std::vector<TraceArg>& fields) {
    auto field_i64 = [&](const char* key) -> std::int64_t {
        for (const TraceArg& f : fields)
            if (std::strcmp(f.key, key) == 0) return f.i;
        return 0;
    };
    auto field_str = [&](const char* key) -> const std::string* {
        for (const TraceArg& f : fields)
            if (std::strcmp(f.key, key) == 0 &&
                f.kind == TraceArg::Kind::Str)
                return &f.s;
        return nullptr;
    };
    if (std::strcmp(name, "campaign_start") == 0) {
        total_ = static_cast<std::size_t>(field_i64("faults"));
        done_ = detected_ = 0;
        std::fprintf(out_, "campaign: %zu faults\n", total_);
    } else if (std::strcmp(name, "fault_retired") == 0) {
        ++done_;
        const std::string* verdict = field_str("verdict");
        if (verdict && *verdict == "detected") ++detected_;
        std::fprintf(out_, "\r[%zu/%zu] fault %lld %s (%zu detected)   ",
                     done_, total_,
                     static_cast<long long>(field_i64("fault_id")),
                     verdict ? verdict->c_str() : "?", detected_);
        std::fflush(out_);
    } else if (std::strcmp(name, "campaign_end") == 0) {
        std::fprintf(out_, "\ncampaign done: %lld/%lld detected\n",
                     static_cast<long long>(field_i64("detected")),
                     static_cast<long long>(field_i64("faults")));
    }
}

// ---------------------------------------------------------------------------
// CaptureSink

void CaptureSink::on_event(const char* name, std::uint64_t ts_ns,
                           const std::vector<TraceArg>& fields) {
    MutexLock lock(mu_);
    events_.push_back(Captured{name, ts_ns, fields});
}

std::vector<CaptureSink::Captured> CaptureSink::take() {
    MutexLock lock(mu_);
    return std::move(events_);
}

std::size_t CaptureSink::count_of(const std::string& name) {
    MutexLock lock(mu_);
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [&](const Captured& c) { return c.name == name; }));
}

// ---------------------------------------------------------------------------
// Bus

namespace {

struct Bus {
    Mutex mu;
    // The sink list AND every sink's delivery are serialized by `mu`:
    // on_event implementations (ProgressSink's counters in particular)
    // rely on the bus calling them one event at a time.
    std::vector<std::shared_ptr<EventSink>> sinks CATLIFT_GUARDED_BY(mu);
};

Bus& bus() {
    static Bus* b = new Bus;  // outlives worker threads
    return *b;
}

} // namespace

void attach_event_sink(std::shared_ptr<EventSink> sink) {
    if (!sink) return;
    Bus& b = bus();
    MutexLock lock(b.mu);
    b.sinks.push_back(std::move(sink));
    detail::g_events_enabled.store(true, std::memory_order_relaxed);
}

void detach_event_sinks() {
    Bus& b = bus();
    MutexLock lock(b.mu);
    b.sinks.clear();
    detail::g_events_enabled.store(false, std::memory_order_relaxed);
}

namespace {

// Re-entrancy depth of emit_event on this thread.  A sink's on_event can
// itself emit -- the canonical case is a failpoint site firing inside a
// sink (batch::HeartbeatSink hits `worker.fault`, whose hit path emits
// `failpoint_hit`).  The nested emit runs on the thread that already
// holds the bus mutex, so re-acquiring would self-deadlock; instead it
// dispatches directly, which also preserves the one-event-at-a-time
// delivery contract the sinks rely on.
thread_local int g_emit_depth = 0;

// Nested-dispatch path: the caller's frame below us holds bus().mu on
// this very thread, which the static analysis cannot see.
void emit_nested(Bus& b, const char* name, std::uint64_t ts,
                 const std::vector<TraceArg>& fields)
    CATLIFT_NO_THREAD_SAFETY_ANALYSIS {
    for (auto& sink : b.sinks) sink->on_event(name, ts, fields);
}

} // namespace

void emit_event(const char* name, const std::vector<TraceArg>& fields) {
    Bus& b = bus();
    const std::uint64_t ts = now_ns();
    if (g_emit_depth > 0) {
        emit_nested(b, name, ts, fields);
        return;
    }
    MutexLock lock(b.mu);
    struct Depth {
        Depth() { ++g_emit_depth; }
        ~Depth() { --g_emit_depth; }
    } depth;
    for (auto& sink : b.sinks) sink->on_event(name, ts, fields);
}

void emit_event(const char* name, std::initializer_list<TraceArg> fields) {
    emit_event(name, std::vector<TraceArg>(fields));
}

} // namespace catlift::obs
