// catlift/spice/mos1.h
//
// MOS level-1 (Shichman-Hodges) large-signal evaluation with channel-length
// modulation.  The core evaluator works in *model space*: NMOS polarity with
// vds >= 0.  The engine maps terminal voltages into model space (sign
// reflection for PMOS, drain/source swap for reverse operation), stamps the
// linearised companion, and maps the resulting current back.

#pragma once

#include "netlist/netlist.h"

namespace catlift::spice {

/// Operating point in model space (NMOS polarity, vds >= 0).
struct Mos1Point {
    double id = 0.0;   ///< channel current, effective-drain to effective-source
    double gm = 0.0;   ///< d id / d vgs, >= 0
    double gds = 0.0;  ///< d id / d vds, >= 0
    int region = 0;    ///< 0 cutoff, 1 linear, 2 saturation
};

/// Evaluate the level-1 equations at model-space voltages.
/// Precondition: vds >= 0.
Mos1Point mos1_eval_normalized(const netlist::MosModel& m, double w, double l,
                               double vgs, double vds);

/// Convenience terminal-level evaluation: given real node voltages at
/// drain/gate/source, returns the current flowing *into the drain terminal*
/// (signed, PMOS and reverse operation handled).  Used by tests and the
/// measurement utilities.
double mos1_drain_current(const netlist::MosModel& m, double w, double l,
                          double vd, double vg, double vs);

/// Linear gate capacitances for transient analysis: constant-split Meyer
/// approximation, Cgs = Cgd = W*L*Cox/2 + overlap.  Constant capacitors keep
/// the Jacobian exact and the integration charge-conserving, which matters
/// for the regenerative Schmitt stage of the paper's VCO.
struct MosCaps {
    double cgs = 0.0;
    double cgd = 0.0;
};
MosCaps mos1_caps(const netlist::MosModel& m, double w, double l);

} // namespace catlift::spice
