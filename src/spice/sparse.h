// catlift/spice/sparse.h
//
// Sparse LU for the MNA system, generic over the scalar (double for the
// DC/transient path, complex<double> for the AC sweep).  The design is the
// classic circuit-simulator split pioneered by Sparse 1.3 / KLU:
//
//   * analyze()      -- one-time: dedup the stamp positions into a CSC
//                       pattern and hand every stamp site a value slot.
//   * full factor    -- first numeric factorization: right-looking
//                       elimination with Markowitz ordering under threshold
//                       partial pivoting.  Records the row/column pivot
//                       sequence and the complete fill pattern of L and U.
//   * refactor       -- every later factorization of the *same pattern*
//                       replays the recorded pivot order left-looking over
//                       the fixed fill pattern: no searching, no ordering,
//                       no allocation -- just the O(flops) arithmetic.
//                       A pivot falling below the floor (the values drifted
//                       far from the ones that chose the ordering) falls
//                       back to a fresh full factorization transparently.
//
// MNA matrices carry structural zero diagonals on every voltage-source
// branch row, so the ordering must pivot; Markowitz keeps the fill small
// while the tau-threshold keeps the pivots sound.  The engine drives this
// through engine.cpp's stamp-pointer lists: the Newton hot path memcpys
// the static value array, adds the per-iteration device stamps, and calls
// factor() -- which lands in the cheap refactor path every time after the
// first solve of a given topology.

#pragma once

#include "geom/base.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

namespace catlift::spice {

template <typename T>
class SparseLu {
public:
    /// Define the n x n pattern from stamp positions (duplicates allowed
    /// and expected -- every device terminal pair stamps independently).
    /// Returns one value-slot index per input entry; duplicate positions
    /// share a slot.  Value arrays passed to factor() hold nnz() values in
    /// the slot order defined here.  Invalidates any previous
    /// factorization.
    std::vector<int> analyze(std::size_t n,
                             const std::vector<std::pair<int, int>>& entries) {
        require(n > 0, "SparseLu::analyze: empty system");
        n_ = n;
        have_pattern_ = false;
        have_factor_ = false;

        // Dedup into column-major order.
        std::vector<std::pair<int, int>> uniq = entries;  // (col, row)
        for (auto& e : uniq) std::swap(e.first, e.second);
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

        col_ptr_.assign(n_ + 1, 0);
        row_ind_.clear();
        row_ind_.reserve(uniq.size());
        std::map<std::pair<int, int>, int> slot_of;
        for (const auto& [c, r] : uniq) {
            require(r >= 0 && c >= 0 && static_cast<std::size_t>(r) < n_ &&
                        static_cast<std::size_t>(c) < n_,
                    "SparseLu::analyze: entry out of range");
            slot_of[{c, r}] = static_cast<int>(row_ind_.size());
            row_ind_.push_back(r);
            ++col_ptr_[static_cast<std::size_t>(c) + 1];
        }
        for (std::size_t c = 0; c < n_; ++c) col_ptr_[c + 1] += col_ptr_[c];

        std::vector<int> slots;
        slots.reserve(entries.size());
        for (const auto& [r, c] : entries) slots.push_back(slot_of.at({c, r}));
        have_pattern_ = true;
        return slots;
    }

    std::size_t size() const { return n_; }
    std::size_t nnz() const { return row_ind_.size(); }

    /// Numeric factorization of `vals` (slot order from analyze()).
    /// Reuses the recorded pivot order and fill pattern when one exists;
    /// falls back to a full Markowitz factorization the first time or when
    /// a reused pivot degrades below `pivot_floor`.  Returns false only if
    /// the matrix is singular beyond the floor.
    bool factor(const std::vector<T>& vals, double pivot_floor = 1e-18) {
        require(have_pattern_, "SparseLu::factor before analyze()");
        require(vals.size() == nnz(), "SparseLu::factor: value count mismatch");
        if (have_factor_ && refactor(vals, pivot_floor)) {
            ++refactors_;
            return true;
        }
        have_factor_ = false;
        if (!full_factor(vals, pivot_floor)) return false;
        have_factor_ = true;
        ++full_factors_;
        return true;
    }

    /// In-place solve Ax=b (b becomes x); factor() must have succeeded.
    void solve(std::vector<T>& b) const {
        require(have_factor_, "SparseLu::solve without a successful factor()");
        require(b.size() == n_, "SparseLu::solve: rhs size mismatch");
        scratch_.resize(n_);
        // Forward substitution, L unit-diagonal, column-oriented.
        for (std::size_t k = 0; k < n_; ++k)
            scratch_[k] = b[static_cast<std::size_t>(pr_[k])];
        for (std::size_t k = 0; k < n_; ++k) {
            const T yk = scratch_[k];
            if (yk == T{}) continue;
            for (int p = l_ptr_[k]; p < l_ptr_[k + 1]; ++p)
                scratch_[static_cast<std::size_t>(l_row_[p])] -= yk * l_val_[p];
        }
        // Back substitution, column-oriented.
        for (std::size_t j = n_; j-- > 0;) {
            const T xj = scratch_[j] / diag_[j];
            scratch_[j] = xj;
            if (xj == T{}) continue;
            for (int p = u_ptr_[j]; p < u_ptr_[j + 1]; ++p)
                scratch_[static_cast<std::size_t>(u_row_[p])] -= xj * u_val_[p];
        }
        for (std::size_t j = 0; j < n_; ++j)
            b[static_cast<std::size_t>(pc_[j])] = scratch_[j];
    }

    /// Convenience for tests: out-of-place solve.
    std::vector<T> solve_copy(const std::vector<T>& b) const {
        std::vector<T> x = b;
        solve(x);
        return x;
    }

    /// Full (ordering + pivoting) factorizations performed.
    std::size_t full_factors() const { return full_factors_; }
    /// Numeric refactorizations that reused the recorded pattern.
    std::size_t refactors() const { return refactors_; }
    /// Nonzeros in L + U (fill included); 0 before the first factor.
    std::size_t factor_nnz() const {
        return l_row_.size() + u_row_.size() + (have_factor_ ? n_ : 0);
    }

private:
    static double mag(const T& v) { return std::abs(v); }

    /// Right-looking Markowitz elimination with threshold partial
    /// pivoting.  Records pr_/pc_ and the L/U fill pattern + values.
    bool full_factor(const std::vector<T>& vals, double pivot_floor) {
        constexpr double kTau = 1e-3;  // pivot threshold vs column max

        // Dynamic rows: col -> value maps (fill inserts are cheap).
        std::vector<std::map<int, T>> rows(n_);
        std::vector<int> row_cnt(n_, 0), col_cnt(n_, 0);
        for (std::size_t c = 0; c < n_; ++c)
            for (int p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
                rows[static_cast<std::size_t>(row_ind_[p])][static_cast<int>(
                    c)] = vals[static_cast<std::size_t>(p)];
                ++row_cnt[static_cast<std::size_t>(row_ind_[p])];
                ++col_cnt[c];
            }

        pr_.assign(n_, -1);
        pc_.assign(n_, -1);
        std::vector<char> row_done(n_, 0), col_done(n_, 0);
        // Raw factor entries in original (row, col) ids; remapped to pivot
        // step space once every row/column has its step.
        std::vector<std::vector<std::pair<int, T>>> u_raw(n_);  // step -> (col, v)
        std::vector<std::vector<std::pair<int, T>>> l_raw(n_);  // step -> (row, f)
        std::vector<double> col_max(n_);

        for (std::size_t k = 0; k < n_; ++k) {
            // Column maxima over the active submatrix, then the Markowitz
            // search among threshold-admissible entries.
            std::fill(col_max.begin(), col_max.end(), 0.0);
            for (std::size_t i = 0; i < n_; ++i) {
                if (row_done[i]) continue;
                for (const auto& [c, v] : rows[i])
                    col_max[static_cast<std::size_t>(c)] =
                        std::max(col_max[static_cast<std::size_t>(c)], mag(v));
            }
            long best_cost = -1;
            double best_mag = 0.0;
            int best_r = -1, best_c = -1;
            for (std::size_t i = 0; i < n_; ++i) {
                if (row_done[i]) continue;
                for (const auto& [c, v] : rows[i]) {
                    const double m = mag(v);
                    if (m < pivot_floor ||
                        m < kTau * col_max[static_cast<std::size_t>(c)])
                        continue;
                    const long cost =
                        static_cast<long>(row_cnt[i] - 1) *
                        static_cast<long>(col_cnt[static_cast<std::size_t>(c)] -
                                          1);
                    if (best_cost < 0 || cost < best_cost ||
                        (cost == best_cost && m > best_mag)) {
                        best_cost = cost;
                        best_mag = m;
                        best_r = static_cast<int>(i);
                        best_c = c;
                    }
                }
            }
            if (best_r < 0) return false;  // singular beyond the floor
            pr_[k] = best_r;
            pc_[k] = best_c;
            row_done[static_cast<std::size_t>(best_r)] = 1;
            col_done[static_cast<std::size_t>(best_c)] = 1;

            auto& prow = rows[static_cast<std::size_t>(best_r)];
            const T d = prow.at(best_c);
            u_raw[k].emplace_back(best_c, d);
            for (const auto& [c, v] : prow) {
                if (c == best_c) continue;
                u_raw[k].emplace_back(c, v);
            }
            for (const auto& [c, v] : prow) {
                (void)v;
                --col_cnt[static_cast<std::size_t>(c)];
            }

            // Eliminate the pivot column from every other active row.
            for (std::size_t i = 0; i < n_; ++i) {
                if (row_done[i]) continue;
                auto it = rows[i].find(best_c);
                if (it == rows[i].end()) continue;
                const T f = it->second / d;
                rows[i].erase(it);
                --row_cnt[i];
                --col_cnt[static_cast<std::size_t>(best_c)];
                l_raw[k].emplace_back(static_cast<int>(i), f);
                for (const auto& [c, v] : prow) {
                    if (c == best_c) continue;
                    auto [jt, fresh] = rows[i].emplace(c, T{});
                    if (fresh) {
                        ++row_cnt[i];
                        ++col_cnt[static_cast<std::size_t>(c)];
                    }
                    jt->second -= f * v;
                }
            }
        }

        // Remap to pivot-step space and pack column-wise CSC storage.
        std::vector<int> col_step(n_), row_step(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            col_step[static_cast<std::size_t>(pc_[k])] = static_cast<int>(k);
            row_step[static_cast<std::size_t>(pr_[k])] = static_cast<int>(k);
        }
        diag_.assign(n_, T{});
        std::vector<std::vector<std::pair<int, T>>> u_cols(n_), l_cols(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            for (const auto& [c, v] : u_raw[k]) {
                const int j = col_step[static_cast<std::size_t>(c)];
                if (j == static_cast<int>(k))
                    diag_[k] = v;
                else
                    u_cols[static_cast<std::size_t>(j)].emplace_back(
                        static_cast<int>(k), v);
            }
            for (const auto& [r, f] : l_raw[k])
                l_cols[k].emplace_back(row_step[static_cast<std::size_t>(r)],
                                       f);
        }
        pack(u_cols, u_ptr_, u_row_, u_val_, /*sort_rows=*/true);
        pack(l_cols, l_ptr_, l_row_, l_val_, /*sort_rows=*/false);

        // Scatter positions of the original pattern in pivot-step space,
        // precomputed for the refactor loop.
        scatter_step_.resize(nnz());
        csc_col_step_.resize(n_);
        for (std::size_t c = 0; c < n_; ++c) {
            csc_col_step_[static_cast<std::size_t>(
                col_step[c])] = static_cast<int>(c);
            for (int p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p)
                scatter_step_[static_cast<std::size_t>(p)] =
                    row_step[static_cast<std::size_t>(row_ind_[p])];
        }
        work_.assign(n_, T{});
        return true;
    }

    /// Left-looking numeric replay over the recorded pattern and pivot
    /// order.  No searching, no fill discovery, no allocation.
    bool refactor(const std::vector<T>& vals, double pivot_floor) {
        for (std::size_t j = 0; j < n_; ++j) {
            // Scatter original column pc_[j] into pivot-step space.
            const auto c = static_cast<std::size_t>(csc_col_step_[j]);
            for (int p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p)
                work_[static_cast<std::size_t>(scatter_step_[p])] =
                    vals[static_cast<std::size_t>(p)];
            // Apply updates from earlier columns (U pattern is ascending).
            for (int p = u_ptr_[j]; p < u_ptr_[j + 1]; ++p) {
                const auto i = static_cast<std::size_t>(u_row_[p]);
                const T u = work_[i];
                u_val_[p] = u;
                work_[i] = T{};
                if (u == T{}) continue;
                for (int q = l_ptr_[i]; q < l_ptr_[i + 1]; ++q)
                    work_[static_cast<std::size_t>(l_row_[q])] -=
                        u * l_val_[q];
            }
            const T d = work_[j];
            work_[j] = T{};
            if (mag(d) < pivot_floor) {
                // Clear the remaining touched entries before bailing out.
                for (int p = l_ptr_[j]; p < l_ptr_[j + 1]; ++p)
                    work_[static_cast<std::size_t>(l_row_[p])] = T{};
                return false;
            }
            diag_[j] = d;
            for (int p = l_ptr_[j]; p < l_ptr_[j + 1]; ++p) {
                const auto r = static_cast<std::size_t>(l_row_[p]);
                l_val_[p] = work_[r] / d;
                work_[r] = T{};
            }
        }
        return true;
    }

    static void pack(std::vector<std::vector<std::pair<int, T>>>& cols,
                     std::vector<int>& ptr, std::vector<int>& row,
                     std::vector<T>& val, bool sort_rows) {
        const std::size_t n = cols.size();
        ptr.assign(n + 1, 0);
        std::size_t total = 0;
        for (std::size_t j = 0; j < n; ++j) total += cols[j].size();
        row.clear();
        val.clear();
        row.reserve(total);
        val.reserve(total);
        for (std::size_t j = 0; j < n; ++j) {
            if (sort_rows)
                std::sort(cols[j].begin(), cols[j].end(),
                          [](const auto& a, const auto& b) {
                              return a.first < b.first;
                          });
            for (const auto& [r, v] : cols[j]) {
                row.push_back(r);
                val.push_back(v);
            }
            ptr[j + 1] = static_cast<int>(row.size());
        }
    }

    std::size_t n_ = 0;
    bool have_pattern_ = false;
    bool have_factor_ = false;

    // Original pattern, CSC.
    std::vector<int> col_ptr_, row_ind_;

    // Pivot order: pr_[k]/pc_[k] = original row/column eliminated at step k.
    std::vector<int> pr_, pc_;
    // csc_col_step_[j] = original column handled at step j;
    // scatter_step_[p] = pivot-step row of original CSC position p.
    std::vector<int> csc_col_step_, scatter_step_;

    // Factor storage in pivot-step space, column-wise.  U rows ascending
    // (required by the left-looking replay); L row order free but fixed.
    std::vector<int> u_ptr_, u_row_, l_ptr_, l_row_;
    std::vector<T> u_val_, l_val_, diag_;

    std::vector<T> work_;           // refactor scatter workspace
    mutable std::vector<T> scratch_;  // solve workspace

    std::size_t full_factors_ = 0;
    std::size_t refactors_ = 0;
};

using SparseSolver = SparseLu<double>;
using CSparseSolver = SparseLu<std::complex<double>>;

} // namespace catlift::spice
