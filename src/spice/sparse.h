// catlift/spice/sparse.h
//
// Sparse LU for the MNA system, generic over the scalar (double for the
// DC/transient path, complex<double> for the AC sweep).  The design is the
// classic circuit-simulator split pioneered by Sparse 1.3 / KLU:
//
//   * analyze()      -- one-time: dedup the stamp positions into a CSC
//                       pattern and hand every stamp site a value slot.
//   * full factor    -- first numeric factorization.  Two orderings:
//                         - Markowitz: right-looking elimination with
//                           dynamic Markowitz ordering under threshold
//                           partial pivoting (the historical path; its
//                           per-step global pivot search is O(n^2)-ish and
//                           becomes the bottleneck past ~1k unknowns).
//                         - Amd: a fill-reducing minimum-degree preordering
//                           (quotient-graph MD with element absorption and
//                           a dense-row cutoff -- the AMD family) computed
//                           once on the symmetrized pattern, then a
//                           Gilbert-Peierls left-looking factorization
//                           with row partial pivoting along that column
//                           order: symbolic reach by DFS, O(flops) total.
//                           The MD run can be skipped entirely by handing
//                           in a precomputed column order (set_preorder)
//                           -- the campaign-shared symbolic cache: faulty
//                           variants of a nominal circuit perturb the
//                           pattern only locally, so the nominal ordering
//                           patched with the injected unknowns at the end
//                           is reused across the whole campaign.
//                       Both record the row/column pivot sequence and the
//                       complete fill pattern of L and U in the same
//                       storage, so everything downstream is shared.
//   * refactor       -- every later factorization of the *same pattern*
//                       replays the recorded pivot order left-looking over
//                       the fixed fill pattern: no searching, no ordering,
//                       no allocation -- just the O(flops) arithmetic.
//                       Consecutive pivot columns with nested L patterns
//                       are grouped into column supernodes at record time;
//                       the replay applies each supernode's updates through
//                       dense inner loops (a small dense triangular solve
//                       plus a dense accumulate over the shared row list,
//                       scattered once) instead of one scatter per column.
//                       A pivot falling below the floor (the values drifted
//                       far from the ones that chose the ordering) falls
//                       back to a fresh full factorization transparently.
//
// MNA matrices carry structural zero diagonals on every voltage-source
// branch row, so the ordering must pivot; threshold pivoting keeps the
// pivots sound while preferring the diagonal (Amd) or the Markowitz-
// cheapest entry (Markowitz) to keep the fill small.  The engine drives
// this through engine.cpp's stamp-pointer lists: the Newton hot path
// memcpys the static value array, adds the per-iteration device stamps,
// and calls factor() -- which lands in the cheap refactor path every time
// after the first solve of a given topology.

#pragma once

#include "geom/base.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

namespace catlift::spice {

/// First-factorization strategy (see file header).  Markowitz is the
/// historical path; Amd is the scalable one (and the only one that can
/// adopt a campaign-shared preordering).
enum class SparseOrdering { Markowitz, Amd };

template <typename T>
class SparseLu {
public:
    /// Define the n x n pattern from stamp positions (duplicates allowed
    /// and expected -- every device terminal pair stamps independently).
    /// Returns one value-slot index per input entry; duplicate positions
    /// share a slot.  Value arrays passed to factor() hold nnz() values in
    /// the slot order defined here.  Invalidates any previous
    /// factorization.
    std::vector<int> analyze(std::size_t n,
                             const std::vector<std::pair<int, int>>& entries) {
        require(n > 0, "SparseLu::analyze: empty system");
        n_ = n;
        have_pattern_ = false;
        have_factor_ = false;

        // Dedup into column-major order.
        std::vector<std::pair<int, int>> uniq = entries;  // (col, row)
        for (auto& e : uniq) std::swap(e.first, e.second);
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

        col_ptr_.assign(n_ + 1, 0);
        row_ind_.clear();
        row_ind_.reserve(uniq.size());
        for (const auto& [c, r] : uniq) {
            require(r >= 0 && c >= 0 && static_cast<std::size_t>(r) < n_ &&
                        static_cast<std::size_t>(c) < n_,
                    "SparseLu::analyze: entry out of range");
            row_ind_.push_back(r);
            ++col_ptr_[static_cast<std::size_t>(c) + 1];
        }
        for (std::size_t c = 0; c < n_; ++c) col_ptr_[c + 1] += col_ptr_[c];

        // Slot of an entry = its rank in the dedup'd column-major order.
        std::vector<int> slots;
        slots.reserve(entries.size());
        for (const auto& [r, c] : entries) {
            const auto it = std::lower_bound(uniq.begin(), uniq.end(),
                                             std::make_pair(c, r));
            slots.push_back(static_cast<int>(it - uniq.begin()));
        }
        have_pattern_ = true;
        return slots;
    }

    std::size_t size() const { return n_; }
    std::size_t nnz() const { return row_ind_.size(); }

    /// Select the first-factorization strategy.  Invalidates any recorded
    /// factorization (the pivot order is about to change).
    void set_ordering(SparseOrdering o) {
        ordering_ = o;
        have_factor_ = false;
    }
    SparseOrdering ordering() const { return ordering_; }

    /// Hand the Amd path a precomputed column elimination order (the
    /// campaign-shared symbolic cache) instead of running minimum degree.
    /// `cols[k]` is the original column eliminated at step k; must be a
    /// permutation of 0..n-1 matching the analyzed pattern.  Ignored by
    /// the Markowitz path.  An empty vector clears the preorder.
    void set_preorder(std::vector<int> cols) {
        if (!cols.empty()) {
            require(cols.size() == n_,
                    "SparseLu::set_preorder: order size mismatch");
            std::vector<char> seen(n_, 0);
            for (int c : cols) {
                require(c >= 0 && static_cast<std::size_t>(c) < n_ &&
                            !seen[static_cast<std::size_t>(c)],
                        "SparseLu::set_preorder: not a permutation");
                seen[static_cast<std::size_t>(c)] = 1;
            }
        }
        preorder_ = std::move(cols);
        have_factor_ = false;
    }

    /// Numeric factorization of `vals` (slot order from analyze()).
    /// Reuses the recorded pivot order and fill pattern when one exists;
    /// falls back to a full factorization the first time or when a reused
    /// pivot degrades below `pivot_floor`.  Returns false only if the
    /// matrix is singular beyond the floor.
    bool factor(const std::vector<T>& vals, double pivot_floor = 1e-18) {
        require(have_pattern_, "SparseLu::factor before analyze()");
        require(vals.size() == nnz(), "SparseLu::factor: value count mismatch");
        if (have_factor_) {
            const auto t0 = std::chrono::steady_clock::now();
            const bool ok = refactor(vals, pivot_floor);
            numeric_seconds_ += seconds_since(t0);
            if (ok) {
                ++refactors_;
                return true;
            }
        }
        have_factor_ = false;
        const auto t0 = std::chrono::steady_clock::now();
        bool ok = false;
        if (ordering_ == SparseOrdering::Amd) {
            ok = full_factor_ordered(vals, pivot_floor);
            // An order-restricted column can be exactly singular where a
            // global Markowitz search still finds a pivot; fall through.
            if (!ok) ok = full_factor_markowitz(vals, pivot_floor);
        } else {
            ok = full_factor_markowitz(vals, pivot_floor);
        }
        ordering_seconds_ += seconds_since(t0);
        if (!ok) return false;
        build_supernodes();
        have_factor_ = true;
        ++full_factors_;
        return true;
    }

    /// In-place solve Ax=b (b becomes x); factor() must have succeeded.
    void solve(std::vector<T>& b) const {
        require(have_factor_, "SparseLu::solve without a successful factor()");
        require(b.size() == n_, "SparseLu::solve: rhs size mismatch");
        scratch_.resize(n_);
        // Forward substitution, L unit-diagonal, column-oriented.
        for (std::size_t k = 0; k < n_; ++k)
            scratch_[k] = b[static_cast<std::size_t>(pr_[k])];
        for (std::size_t k = 0; k < n_; ++k) {
            const T yk = scratch_[k];
            if (yk == T{}) continue;
            for (int p = l_ptr_[k]; p < l_ptr_[k + 1]; ++p)
                scratch_[static_cast<std::size_t>(l_row_[p])] -= yk * l_val_[p];
        }
        // Back substitution, column-oriented.
        for (std::size_t j = n_; j-- > 0;) {
            const T xj = scratch_[j] / diag_[j];
            scratch_[j] = xj;
            if (xj == T{}) continue;
            for (int p = u_ptr_[j]; p < u_ptr_[j + 1]; ++p)
                scratch_[static_cast<std::size_t>(u_row_[p])] -= xj * u_val_[p];
        }
        for (std::size_t j = 0; j < n_; ++j)
            b[static_cast<std::size_t>(pc_[j])] = scratch_[j];
    }

    /// Convenience for tests: out-of-place solve.
    std::vector<T> solve_copy(const std::vector<T>& b) const {
        std::vector<T> x = b;
        solve(x);
        return x;
    }

    /// Full (ordering + pivoting) factorizations performed.
    std::size_t full_factors() const { return full_factors_; }
    /// Numeric refactorizations that reused the recorded pattern.
    std::size_t refactors() const { return refactors_; }
    /// Nonzeros in L + U (fill included); 0 before the first factor.
    std::size_t factor_nnz() const {
        return l_row_.size() + u_row_.size() + (have_factor_ ? n_ : 0);
    }
    /// Column supernodes of the recorded factor (0 before the first one).
    std::size_t supernodes() const { return sn_end_.size(); }
    /// Original column eliminated at each pivot step (empty before the
    /// first factor) -- the ordering a SymbolicCache shares across a
    /// campaign.
    std::vector<int> column_order() const {
        return have_factor_ ? pc_ : std::vector<int>{};
    }
    /// Wall time spent in one-time analyses (ordering + fill discovery,
    /// i.e. every full factorization) vs in pattern-reused numeric
    /// refactorizations.
    double ordering_seconds() const { return ordering_seconds_; }
    double numeric_seconds() const { return numeric_seconds_; }

private:
    static double mag(const T& v) { return std::abs(v); }
    static double seconds_since(
        const std::chrono::steady_clock::time_point& t0) {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

    /// Right-looking Markowitz elimination with threshold partial
    /// pivoting.  Records pr_/pc_ and the L/U fill pattern + values.
    bool full_factor_markowitz(const std::vector<T>& vals,
                               double pivot_floor) {
        constexpr double kTau = 1e-3;  // pivot threshold vs column max

        // Dynamic rows: col -> value maps (fill inserts are cheap).
        std::vector<std::map<int, T>> rows(n_);
        std::vector<int> row_cnt(n_, 0), col_cnt(n_, 0);
        for (std::size_t c = 0; c < n_; ++c)
            for (int p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
                rows[static_cast<std::size_t>(row_ind_[p])][static_cast<int>(
                    c)] = vals[static_cast<std::size_t>(p)];
                ++row_cnt[static_cast<std::size_t>(row_ind_[p])];
                ++col_cnt[c];
            }

        pr_.assign(n_, -1);
        pc_.assign(n_, -1);
        std::vector<char> row_done(n_, 0), col_done(n_, 0);
        // Raw factor entries in original (row, col) ids; remapped to pivot
        // step space once every row/column has its step.
        std::vector<std::vector<std::pair<int, T>>> u_raw(n_);  // step -> (col, v)
        std::vector<std::vector<std::pair<int, T>>> l_raw(n_);  // step -> (row, f)
        std::vector<double> col_max(n_);

        for (std::size_t k = 0; k < n_; ++k) {
            // Column maxima over the active submatrix, then the Markowitz
            // search among threshold-admissible entries.
            std::fill(col_max.begin(), col_max.end(), 0.0);
            for (std::size_t i = 0; i < n_; ++i) {
                if (row_done[i]) continue;
                for (const auto& [c, v] : rows[i])
                    col_max[static_cast<std::size_t>(c)] =
                        std::max(col_max[static_cast<std::size_t>(c)], mag(v));
            }
            long best_cost = -1;
            double best_mag = 0.0;
            int best_r = -1, best_c = -1;
            for (std::size_t i = 0; i < n_; ++i) {
                if (row_done[i]) continue;
                for (const auto& [c, v] : rows[i]) {
                    const double m = mag(v);
                    if (m < pivot_floor ||
                        m < kTau * col_max[static_cast<std::size_t>(c)])
                        continue;
                    const long cost =
                        static_cast<long>(row_cnt[i] - 1) *
                        static_cast<long>(col_cnt[static_cast<std::size_t>(c)] -
                                          1);
                    if (best_cost < 0 || cost < best_cost ||
                        (cost == best_cost && m > best_mag)) {
                        best_cost = cost;
                        best_mag = m;
                        best_r = static_cast<int>(i);
                        best_c = c;
                    }
                }
            }
            if (best_r < 0) return false;  // singular beyond the floor
            pr_[k] = best_r;
            pc_[k] = best_c;
            row_done[static_cast<std::size_t>(best_r)] = 1;
            col_done[static_cast<std::size_t>(best_c)] = 1;

            auto& prow = rows[static_cast<std::size_t>(best_r)];
            const T d = prow.at(best_c);
            u_raw[k].emplace_back(best_c, d);
            for (const auto& [c, v] : prow) {
                if (c == best_c) continue;
                u_raw[k].emplace_back(c, v);
            }
            for (const auto& [c, v] : prow) {
                (void)v;
                --col_cnt[static_cast<std::size_t>(c)];
            }

            // Eliminate the pivot column from every other active row.
            for (std::size_t i = 0; i < n_; ++i) {
                if (row_done[i]) continue;
                auto it = rows[i].find(best_c);
                if (it == rows[i].end()) continue;
                const T f = it->second / d;
                rows[i].erase(it);
                --row_cnt[i];
                --col_cnt[static_cast<std::size_t>(best_c)];
                l_raw[k].emplace_back(static_cast<int>(i), f);
                for (const auto& [c, v] : prow) {
                    if (c == best_c) continue;
                    auto [jt, fresh] = rows[i].emplace(c, T{});
                    if (fresh) {
                        ++row_cnt[i];
                        ++col_cnt[static_cast<std::size_t>(c)];
                    }
                    jt->second -= f * v;
                }
            }
        }

        // Remap to pivot-step space and pack column-wise CSC storage.
        std::vector<int> col_step(n_), row_step(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            col_step[static_cast<std::size_t>(pc_[k])] = static_cast<int>(k);
            row_step[static_cast<std::size_t>(pr_[k])] = static_cast<int>(k);
        }
        diag_.assign(n_, T{});
        std::vector<std::vector<std::pair<int, T>>> u_cols(n_), l_cols(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            for (const auto& [c, v] : u_raw[k]) {
                const int j = col_step[static_cast<std::size_t>(c)];
                if (j == static_cast<int>(k))
                    diag_[k] = v;
                else
                    u_cols[static_cast<std::size_t>(j)].emplace_back(
                        static_cast<int>(k), v);
            }
            for (const auto& [r, f] : l_raw[k])
                l_cols[k].emplace_back(row_step[static_cast<std::size_t>(r)],
                                       f);
        }
        finish_factor(u_cols, l_cols, col_step, row_step);
        return true;
    }

    /// Minimum-degree ordering on the symmetrized pattern: quotient graph
    /// with element absorption (the AMD family, without supervariable
    /// compression).  Variables whose initial degree exceeds a dense-row
    /// cutoff (supply rails touch every cell) are postponed and appended
    /// last -- the standard dense-row treatment that keeps the update loop
    /// near-linear for circuit graphs.
    std::vector<int> min_degree_order() const {
        const int n = static_cast<int>(n_);
        std::vector<std::vector<int>> adj(n_);
        for (std::size_t c = 0; c < n_; ++c)
            for (int p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
                const int r = row_ind_[p];
                if (r == static_cast<int>(c)) continue;
                adj[static_cast<std::size_t>(r)].push_back(
                    static_cast<int>(c));
                adj[c].push_back(r);
            }
        for (auto& a : adj) {
            std::sort(a.begin(), a.end());
            a.erase(std::unique(a.begin(), a.end()), a.end());
        }

        const std::size_t cutoff = std::max<std::size_t>(
            16, 10 * static_cast<std::size_t>(std::sqrt(
                         static_cast<double>(n_))));
        // state: 0 = active, 1 = eliminated, 2 = postponed (dense).
        std::vector<char> state(n_, 0);
        std::vector<int> postponed;
        for (int v = 0; v < n; ++v)
            if (adj[static_cast<std::size_t>(v)].size() >= cutoff) {
                state[static_cast<std::size_t>(v)] = 2;
                postponed.push_back(v);
            }
        for (auto& a : adj)
            a.erase(std::remove_if(a.begin(), a.end(),
                                   [&](int u) {
                                       return state[static_cast<std::size_t>(
                                                  u)] == 2;
                                   }),
                    a.end());

        // Buckets keyed by (approximate) degree, with intrusive lists.
        std::vector<int> head(n_ + 1, -1), nxt(n_, -1), prv(n_, -1),
            deg(n_, 0);
        auto bucket_remove = [&](int v) {
            const auto vi = static_cast<std::size_t>(v);
            if (prv[vi] >= 0)
                nxt[static_cast<std::size_t>(prv[vi])] = nxt[vi];
            else
                head[static_cast<std::size_t>(deg[vi])] = nxt[vi];
            if (nxt[vi] >= 0)
                prv[static_cast<std::size_t>(nxt[vi])] = prv[vi];
            nxt[vi] = prv[vi] = -1;
        };
        auto bucket_insert = [&](int v, int d) {
            const auto vi = static_cast<std::size_t>(v);
            deg[vi] = d;
            prv[vi] = -1;
            nxt[vi] = head[static_cast<std::size_t>(d)];
            if (nxt[vi] >= 0)
                prv[static_cast<std::size_t>(nxt[vi])] = v;
            head[static_cast<std::size_t>(d)] = v;
        };
        int active = 0;
        for (int v = 0; v < n; ++v)
            if (state[static_cast<std::size_t>(v)] == 0) {
                bucket_insert(v,
                              static_cast<int>(
                                  adj[static_cast<std::size_t>(v)].size()));
                ++active;
            }

        // Quotient graph: element id = its pivot variable.
        std::vector<std::vector<int>> elem(n_);   // element -> boundary
        std::vector<std::vector<int>> velem(n_);  // variable -> elements
        std::vector<char> elem_alive(n_, 0);
        std::vector<int> mark(n_, -1);
        int stamp = 0;

        std::vector<int> order;
        order.reserve(n_);
        std::vector<int> boundary;
        int mindeg = 0;
        for (int k = 0; k < active; ++k) {
            while (mindeg <= n && head[static_cast<std::size_t>(mindeg)] < 0)
                ++mindeg;
            const int p = head[static_cast<std::size_t>(mindeg)];
            bucket_remove(p);
            const auto pi = static_cast<std::size_t>(p);
            state[pi] = 1;
            order.push_back(p);

            // Boundary of the new element: adj(p) plus the boundaries of
            // every element p touches, minus eliminated variables.
            ++stamp;
            mark[pi] = stamp;
            boundary.clear();
            auto absorb = [&](int v) {
                const auto vi = static_cast<std::size_t>(v);
                if (state[vi] == 0 && mark[vi] != stamp) {
                    mark[vi] = stamp;
                    boundary.push_back(v);
                }
            };
            for (int v : adj[pi]) absorb(v);
            for (int e : velem[pi]) {
                const auto ei = static_cast<std::size_t>(e);
                if (!elem_alive[ei]) continue;
                for (int v : elem[ei]) absorb(v);
                elem_alive[ei] = 0;  // absorbed into the new element
                elem[ei].clear();
                elem[ei].shrink_to_fit();
            }
            adj[pi].clear();
            adj[pi].shrink_to_fit();
            velem[pi].clear();
            elem[pi] = boundary;
            elem_alive[pi] = !boundary.empty();

            for (int v : boundary) {
                const auto vi = static_cast<std::size_t>(v);
                // Original edges now covered by the element are pruned, as
                // are edges to the pivot itself (mark covers both).
                auto& av = adj[vi];
                av.erase(std::remove_if(av.begin(), av.end(),
                                        [&](int u) {
                                            const auto ui =
                                                static_cast<std::size_t>(u);
                                            return mark[ui] == stamp ||
                                                   state[ui] != 0;
                                        }),
                         av.end());
                auto& ev = velem[vi];
                ev.erase(std::remove_if(ev.begin(), ev.end(),
                                        [&](int e) {
                                            return !elem_alive
                                                [static_cast<std::size_t>(e)];
                                        }),
                         ev.end());
                ev.push_back(p);
                // Approximate external degree (AMD-style upper bound).
                std::size_t d = av.size();
                for (int e : ev)
                    d += elem[static_cast<std::size_t>(e)].size() - 1;
                const int dn = static_cast<int>(
                    std::min<std::size_t>(d, n_ - order.size()));
                bucket_remove(v);
                bucket_insert(v, dn);
                if (dn < mindeg) mindeg = dn;
            }
        }
        for (int v : postponed) order.push_back(v);
        return order;
    }

    /// Gilbert-Peierls left-looking factorization along a fixed column
    /// order (the preorder when set, minimum degree otherwise) with row
    /// partial pivoting: per column a DFS through the L pattern discovers
    /// the fill, a sparse triangular solve computes the values, and the
    /// pivot row is the diagonal when it is within threshold of the
    /// column max.  O(flops + symbolic), no dynamic structures.
    bool full_factor_ordered(const std::vector<T>& vals, double pivot_floor) {
        constexpr double kDiagTau = 0.1;  // diagonal preference threshold
        const std::vector<int>& corder =
            preorder_.empty() ? (md_order_ = min_degree_order()) : preorder_;
        diag_scratch_.clear();  // may hold a failed attempt's partial pivots

        std::vector<int> pinv(n_, -1);  // row -> pivot step
        pr_.assign(n_, -1);
        pc_.assign(n_, -1);
        std::vector<std::vector<int>> lrows(n_);         // step -> orig rows
        std::vector<std::vector<T>> lvals(n_);           // step -> values
        std::vector<std::vector<std::pair<int, T>>> u_cols(n_);

        std::vector<T> x(n_, T{});
        std::vector<int> visited(n_, -1);
        std::vector<int> stack, cursor, topo;
        stack.reserve(n_);
        cursor.reserve(n_);
        topo.reserve(n_);

        for (std::size_t k = 0; k < n_; ++k) {
            const int c = corder[k];
            const auto cu = static_cast<std::size_t>(c);

            // Symbolic: reach of the column's pattern in the L graph,
            // emitted in postorder (reverse topological).
            topo.clear();
            for (int p = col_ptr_[cu]; p < col_ptr_[cu + 1]; ++p) {
                int r = row_ind_[p];
                if (visited[static_cast<std::size_t>(r)] ==
                    static_cast<int>(k))
                    continue;
                stack.clear();
                cursor.clear();
                visited[static_cast<std::size_t>(r)] = static_cast<int>(k);
                stack.push_back(r);
                cursor.push_back(0);
                while (!stack.empty()) {
                    const int node = stack.back();
                    const int step = pinv[static_cast<std::size_t>(node)];
                    bool descended = false;
                    if (step >= 0) {
                        const auto& lr = lrows[static_cast<std::size_t>(step)];
                        int& cur = cursor.back();
                        while (cur < static_cast<int>(lr.size())) {
                            const int child =
                                lr[static_cast<std::size_t>(cur++)];
                            if (visited[static_cast<std::size_t>(child)] !=
                                static_cast<int>(k)) {
                                visited[static_cast<std::size_t>(child)] =
                                    static_cast<int>(k);
                                stack.push_back(child);
                                cursor.push_back(0);
                                descended = true;
                                break;
                            }
                        }
                    }
                    if (!descended) {
                        topo.push_back(node);
                        stack.pop_back();
                        cursor.pop_back();
                    }
                }
            }

            // Numeric: scatter the column, then the sparse triangular
            // solve in topological (reverse postorder) order.
            for (int p = col_ptr_[cu]; p < col_ptr_[cu + 1]; ++p)
                x[static_cast<std::size_t>(row_ind_[p])] =
                    vals[static_cast<std::size_t>(p)];
            for (std::size_t t = topo.size(); t-- > 0;) {
                const int r = topo[t];
                const int step = pinv[static_cast<std::size_t>(r)];
                if (step < 0) continue;
                const T xi = x[static_cast<std::size_t>(r)];
                u_cols[k].emplace_back(step, xi);
                if (xi == T{}) continue;
                const auto& lr = lrows[static_cast<std::size_t>(step)];
                const auto& lv = lvals[static_cast<std::size_t>(step)];
                for (std::size_t q = 0; q < lr.size(); ++q)
                    x[static_cast<std::size_t>(lr[q])] -= xi * lv[q];
            }

            // Pivot: the diagonal row when it is sound, the column max
            // otherwise.
            double maxmag = 0.0;
            int prow = -1;
            for (const int r : topo) {
                if (pinv[static_cast<std::size_t>(r)] >= 0) continue;
                const double m = mag(x[static_cast<std::size_t>(r)]);
                if (m > maxmag) {
                    maxmag = m;
                    prow = r;
                }
            }
            if (prow < 0 || maxmag < pivot_floor) {
                for (const int r : topo) x[static_cast<std::size_t>(r)] = T{};
                return false;
            }
            if (pinv[cu] < 0 && mag(x[cu]) >= kDiagTau * maxmag &&
                mag(x[cu]) >= pivot_floor)
                prow = c;

            const T d = x[static_cast<std::size_t>(prow)];
            pr_[k] = prow;
            pc_[k] = c;
            pinv[static_cast<std::size_t>(prow)] = static_cast<int>(k);
            diag_scratch_.push_back(d);
            for (const int r : topo) {
                const auto ru = static_cast<std::size_t>(r);
                if (pinv[ru] >= 0 || r == prow) {
                    // U entries were consumed above; pivot handled here.
                    if (pinv[ru] >= 0) x[ru] = T{};
                    continue;
                }
                lrows[k].push_back(r);
                lvals[k].push_back(x[ru] / d);
                x[ru] = T{};
            }
            x[static_cast<std::size_t>(prow)] = T{};
        }

        // Remap to pivot-step space and pack the shared storage.
        std::vector<int> col_step(n_), row_step(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            col_step[static_cast<std::size_t>(pc_[k])] = static_cast<int>(k);
            row_step[static_cast<std::size_t>(pr_[k])] = static_cast<int>(k);
        }
        diag_.assign(n_, T{});
        for (std::size_t k = 0; k < n_; ++k)
            diag_[k] = diag_scratch_[k];
        diag_scratch_.clear();
        std::vector<std::vector<std::pair<int, T>>> l_cols(n_);
        for (std::size_t k = 0; k < n_; ++k) {
            l_cols[k].reserve(lrows[k].size());
            for (std::size_t q = 0; q < lrows[k].size(); ++q)
                l_cols[k].emplace_back(
                    row_step[static_cast<std::size_t>(lrows[k][q])],
                    lvals[k][q]);
        }
        finish_factor(u_cols, l_cols, col_step, row_step);
        return true;
    }

    /// Shared tail of both full factorizations: pack U/L column storage
    /// (rows ascending -- the replay and the supernode detection both
    /// rely on it) and precompute the refactor scatter maps.
    void finish_factor(std::vector<std::vector<std::pair<int, T>>>& u_cols,
                       std::vector<std::vector<std::pair<int, T>>>& l_cols,
                       const std::vector<int>& col_step,
                       const std::vector<int>& row_step) {
        pack(u_cols, u_ptr_, u_row_, u_val_);
        pack(l_cols, l_ptr_, l_row_, l_val_);

        scatter_step_.resize(nnz());
        csc_col_step_.resize(n_);
        for (std::size_t c = 0; c < n_; ++c) {
            csc_col_step_[static_cast<std::size_t>(
                col_step[c])] = static_cast<int>(c);
            for (int p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p)
                scatter_step_[static_cast<std::size_t>(p)] =
                    row_step[static_cast<std::size_t>(row_ind_[p])];
        }
        work_.assign(n_, T{});
    }

    /// Group consecutive pivot columns with nested L patterns into column
    /// supernodes: columns [s, e) form one when each column's pattern is
    /// the next pivot row plus the following column's pattern -- i.e. a
    /// full dense triangle over [s, e) on top of one shared below-row
    /// list.  The refactor replays a supernode's updates through dense
    /// inner loops.
    void build_supernodes() {
        sn_of_.assign(n_, 0);
        sn_end_.clear();
        std::size_t max_below = 0;
        std::size_t s = 0;
        while (s < n_) {
            std::size_t e = s + 1;
            while (e < n_ && columns_merge(e - 1, e)) ++e;
            const int id = static_cast<int>(sn_end_.size());
            for (std::size_t j = s; j < e; ++j) sn_of_[j] = id;
            sn_end_.push_back(static_cast<int>(e));
            max_below = std::max(
                max_below,
                static_cast<std::size_t>(l_ptr_[e] - l_ptr_[e - 1]));
            s = e;
        }
        acc_.assign(max_below, T{});
    }

    bool columns_merge(std::size_t j, std::size_t j1) const {
        const int cj = l_ptr_[j + 1] - l_ptr_[j];
        const int cj1 = l_ptr_[j1 + 1] - l_ptr_[j1];
        if (cj != cj1 + 1) return false;
        if (l_row_[l_ptr_[j]] != static_cast<int>(j1)) return false;
        return std::equal(l_row_.begin() + l_ptr_[j] + 1,
                          l_row_.begin() + l_ptr_[j + 1],
                          l_row_.begin() + l_ptr_[j1]);
    }

    /// Left-looking numeric replay over the recorded pattern and pivot
    /// order.  No searching, no fill discovery, no allocation.  Updates
    /// from the columns of one supernode are applied through dense inner
    /// loops: the structural suffix property (an update entering a
    /// supernode fills every later column of it) makes the group's U
    /// entries consecutive, so the triangle runs as a small dense forward
    /// solve and the shared below-rows accumulate densely and scatter
    /// once.
    bool refactor(const std::vector<T>& vals, double pivot_floor) {
        for (std::size_t j = 0; j < n_; ++j) {
            // Scatter original column pc_[j] into pivot-step space.
            const auto c = static_cast<std::size_t>(csc_col_step_[j]);
            for (int p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p)
                work_[static_cast<std::size_t>(scatter_step_[p])] =
                    vals[static_cast<std::size_t>(p)];
            // Apply updates from earlier columns (U pattern is ascending).
            const int pend = u_ptr_[j + 1];
            int p = u_ptr_[j];
            while (p < pend) {
                const int i = u_row_[p];
                const int e = sn_end_[static_cast<std::size_t>(
                    sn_of_[static_cast<std::size_t>(i)])];
                int g = e - i;  // supernode suffix length
                if (g > pend - p) g = pend - p;
                bool contiguous = g > 1;
                for (int t = 1; contiguous && t < g; ++t)
                    contiguous = u_row_[p + t] == i + t;
                if (!contiguous) {
                    // Scalar column update.
                    const auto iu = static_cast<std::size_t>(i);
                    const T u = work_[iu];
                    u_val_[p] = u;
                    work_[iu] = T{};
                    if (u != T{})
                        for (int q = l_ptr_[iu]; q < l_ptr_[iu + 1]; ++q)
                            work_[static_cast<std::size_t>(l_row_[q])] -=
                                u * l_val_[q];
                    ++p;
                    continue;
                }
                // Supernode block: dense triangle solve + dense
                // accumulate over the shared below rows, one scatter.
                const int lpe = l_ptr_[e - 1];
                const int m = l_ptr_[e] - lpe;  // shared below rows
                for (int r = 0; r < m; ++r) acc_[static_cast<std::size_t>(r)] =
                    T{};
                for (int t = 0; t < g; ++t) {
                    const auto it = static_cast<std::size_t>(i + t);
                    const T u = work_[it];
                    u_val_[p + t] = u;
                    work_[it] = T{};
                    if (u == T{}) continue;
                    const int lp = l_ptr_[it];
                    const int tri = e - 1 - static_cast<int>(it);
                    for (int q = 0; q < tri; ++q)
                        work_[static_cast<std::size_t>(l_row_[lp + q])] -=
                            u * l_val_[lp + q];
                    const int base = lp + tri;
                    for (int r = 0; r < m; ++r)
                        acc_[static_cast<std::size_t>(r)] +=
                            u * l_val_[base + r];
                }
                for (int r = 0; r < m; ++r)
                    work_[static_cast<std::size_t>(l_row_[lpe + r])] -=
                        acc_[static_cast<std::size_t>(r)];
                p += g;
            }
            const T d = work_[j];
            work_[j] = T{};
            if (mag(d) < pivot_floor) {
                // Clear the remaining touched entries before bailing out.
                for (int q = l_ptr_[j]; q < l_ptr_[j + 1]; ++q)
                    work_[static_cast<std::size_t>(l_row_[q])] = T{};
                return false;
            }
            diag_[j] = d;
            for (int q = l_ptr_[j]; q < l_ptr_[j + 1]; ++q) {
                const auto r = static_cast<std::size_t>(l_row_[q]);
                l_val_[q] = work_[r] / d;
                work_[r] = T{};
            }
        }
        return true;
    }

    static void pack(std::vector<std::vector<std::pair<int, T>>>& cols,
                     std::vector<int>& ptr, std::vector<int>& row,
                     std::vector<T>& val) {
        const std::size_t n = cols.size();
        ptr.assign(n + 1, 0);
        std::size_t total = 0;
        for (std::size_t j = 0; j < n; ++j) total += cols[j].size();
        row.clear();
        val.clear();
        row.reserve(total);
        val.reserve(total);
        for (std::size_t j = 0; j < n; ++j) {
            std::sort(cols[j].begin(), cols[j].end(),
                      [](const auto& a, const auto& b) {
                          return a.first < b.first;
                      });
            for (const auto& [r, v] : cols[j]) {
                row.push_back(r);
                val.push_back(v);
            }
            ptr[j + 1] = static_cast<int>(row.size());
        }
    }

    std::size_t n_ = 0;
    bool have_pattern_ = false;
    bool have_factor_ = false;
    SparseOrdering ordering_ = SparseOrdering::Markowitz;
    std::vector<int> preorder_;  ///< caller-supplied column order (Amd path)
    std::vector<int> md_order_;  ///< last minimum-degree order computed

    // Original pattern, CSC.
    std::vector<int> col_ptr_, row_ind_;

    // Pivot order: pr_[k]/pc_[k] = original row/column eliminated at step k.
    std::vector<int> pr_, pc_;
    // csc_col_step_[j] = original column handled at step j;
    // scatter_step_[p] = pivot-step row of original CSC position p.
    std::vector<int> csc_col_step_, scatter_step_;

    // Factor storage in pivot-step space, column-wise, rows ascending
    // (required by the left-looking replay and the supernode detection).
    std::vector<int> u_ptr_, u_row_, l_ptr_, l_row_;
    std::vector<T> u_val_, l_val_, diag_;

    // Column supernodes of the recorded pattern: sn_of_[step] -> id,
    // sn_end_[id] -> one past its last step.
    std::vector<int> sn_of_, sn_end_;

    std::vector<T> work_;             // refactor scatter workspace
    std::vector<T> acc_;              // supernode below-row accumulator
    std::vector<T> diag_scratch_;     // ordered-path pivot values
    mutable std::vector<T> scratch_;  // solve workspace

    std::size_t full_factors_ = 0;
    std::size_t refactors_ = 0;
    double ordering_seconds_ = 0.0;
    double numeric_seconds_ = 0.0;
};

using SparseSolver = SparseLu<double>;
using CSparseSolver = SparseLu<std::complex<double>>;

} // namespace catlift::spice
