// catlift/spice/ac.h
//
// Small-signal AC analysis.  The fault simulators AnaFAULT descends from
// (ISPICE [30][31], FSPICE [22], the linear-circuit work of [6]) detected
// faults from AC measurements; this module supplies that capability:
// linearise every device at the DC operating point, stamp complex
// admittances (jwC for capacitors), and sweep the frequency axis.
//
// Sources: a voltage/current source participates in the AC analysis with
// its `ac_mag` amplitude (SPICE's "AC 1" card field); every other source
// is quiet (0).

#pragma once

#include "netlist/netlist.h"

#include <complex>
#include <map>
#include <string>
#include <vector>

namespace catlift::spice {

/// Logarithmic frequency sweep description (.ac dec N fstart fstop).
struct AcSpec {
    int points_per_decade = 10;
    double fstart = 1e3;
    double fstop = 1e9;
};

/// Complex frequency response per node.
class AcResult {
public:
    void add_node(const std::string& name);
    void append(double freq,
                const std::vector<std::complex<double>>& values);

    const std::vector<double>& freq() const { return freq_; }
    std::size_t points() const { return freq_.size(); }
    bool has(const std::string& node) const { return index_.count(node) > 0; }
    const std::vector<std::complex<double>>& response(
        const std::string& node) const;

    /// Magnitude in dB at one sweep point.
    double mag_db(const std::string& node, std::size_t i) const;
    /// Phase in degrees at one sweep point.
    double phase_deg(const std::string& node, std::size_t i) const;

    /// Interpolated magnitude (dB) at an arbitrary frequency.
    double mag_db_at(const std::string& node, double f) const;

    /// -3dB corner relative to the lowest-frequency magnitude; nullopt if
    /// the response never drops 3 dB inside the sweep.
    std::optional<double> corner_frequency(const std::string& node) const;

private:
    std::vector<double> freq_;
    std::vector<std::string> names_;
    std::map<std::string, std::size_t> index_;
    std::vector<std::vector<std::complex<double>>> data_;  // per node
};

} // namespace catlift::spice
