#include "spice/ac.h"

#include <algorithm>
#include <cmath>

namespace catlift::spice {

void AcResult::add_node(const std::string& name) {
    require(index_.count(name) == 0, "AcResult: duplicate node " + name);
    index_[name] = names_.size();
    names_.push_back(name);
    data_.emplace_back();
}

void AcResult::append(double freq,
                      const std::vector<std::complex<double>>& values) {
    require(values.size() == names_.size(), "AcResult: value count mismatch");
    require(freq_.empty() || freq > freq_.back(),
            "AcResult: frequencies must increase");
    freq_.push_back(freq);
    for (std::size_t i = 0; i < values.size(); ++i)
        data_[i].push_back(values[i]);
}

const std::vector<std::complex<double>>& AcResult::response(
    const std::string& node) const {
    auto it = index_.find(node);
    require(it != index_.end(), "AcResult: no node " + node);
    return data_[it->second];
}

double AcResult::mag_db(const std::string& node, std::size_t i) const {
    const auto& r = response(node);
    require(i < r.size(), "AcResult: index out of range");
    const double mag = std::abs(r[i]);
    return 20.0 * std::log10(std::max(mag, 1e-30));
}

double AcResult::phase_deg(const std::string& node, std::size_t i) const {
    const auto& r = response(node);
    require(i < r.size(), "AcResult: index out of range");
    return std::arg(r[i]) * 180.0 / M_PI;
}

double AcResult::mag_db_at(const std::string& node, double f) const {
    require(!freq_.empty(), "AcResult: empty sweep");
    if (f <= freq_.front()) return mag_db(node, 0);
    if (f >= freq_.back()) return mag_db(node, freq_.size() - 1);
    auto it = std::upper_bound(freq_.begin(), freq_.end(), f);
    const std::size_t i = static_cast<std::size_t>(it - freq_.begin());
    // Log-frequency linear interpolation of the dB magnitude.
    const double f0 = freq_[i - 1], f1 = freq_[i];
    const double y0 = mag_db(node, i - 1), y1 = mag_db(node, i);
    const double a =
        (std::log10(f) - std::log10(f0)) / (std::log10(f1) - std::log10(f0));
    return y0 + (y1 - y0) * a;
}

std::optional<double> AcResult::corner_frequency(
    const std::string& node) const {
    require(points() >= 2, "AcResult: sweep too short");
    const double ref = mag_db(node, 0);
    for (std::size_t i = 1; i < points(); ++i) {
        if (mag_db(node, i) <= ref - 3.0) {
            // Linear interpolation in log-f for the crossing.
            const double y0 = mag_db(node, i - 1);
            const double y1 = mag_db(node, i);
            const double target = ref - 3.0;
            const double a = (y0 - target) / (y0 - y1);
            const double lf = std::log10(freq_[i - 1]) +
                              a * (std::log10(freq_[i]) -
                                   std::log10(freq_[i - 1]));
            return std::pow(10.0, lf);
        }
    }
    return std::nullopt;
}

} // namespace catlift::spice
