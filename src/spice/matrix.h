// catlift/spice/matrix.h
//
// Dense linear algebra for the MNA system, generic over the scalar so the
// same LU serves the real transient/DC path and the complex AC path.
// Fault-simulation circuits in this flow are tens of nodes (the paper's
// VCO builds a ~40x40 system), so dense LU with partial pivoting beats
// sparse machinery on both robustness and constant factors at that size;
// spice/sparse.h takes over above SimOptions::sparse_threshold.
//
// Everything here is allocation-free after warm-up: factor() reuses the
// LU buffer's capacity and solve() has an in-place overload, so the Newton
// hot path of the engine never touches the heap.

#pragma once

#include "geom/base.h"

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

namespace catlift::spice {

/// Dense square matrix with row-major storage.
template <typename T>
class BasicMatrix {
public:
    BasicMatrix() = default;
    explicit BasicMatrix(std::size_t n) : n_(n), a_(n * n, T{}) {}

    std::size_t size() const { return n_; }

    T& operator()(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
    const T& operator()(std::size_t r, std::size_t c) const {
        return a_[r * n_ + c];
    }

    void clear() { std::fill(a_.begin(), a_.end(), T{}); }

    /// Resize to n x n (reusing capacity) and zero every entry.
    void reset(std::size_t n) {
        n_ = n;
        a_.assign(n * n, T{});
    }

    /// Raw row-major storage (n*n values); the engine's stamp-pointer
    /// lists index straight into it.
    T* data() { return a_.data(); }
    const T* data() const { return a_.data(); }

private:
    std::size_t n_ = 0;
    std::vector<T> a_;
};

/// LU solver: factorises A (with partial pivoting) and solves Ax=b.
template <typename T>
class BasicLu {
public:
    /// Factorise a copy of `a`.  Returns false if the matrix is singular
    /// beyond `pivot_floor`.
    bool factor(const BasicMatrix<T>& a, double pivot_floor = 1e-18) {
        n_ = a.size();
        // Copy (not assign): reuses the buffer's capacity, so repeated
        // factorizations of the same size never reallocate.
        lu_.resize(n_ * n_);
        std::copy(a.data(), a.data() + n_ * n_, lu_.begin());
        perm_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
        ok_ = false;

        for (std::size_t k = 0; k < n_; ++k) {
            std::size_t piv = k;
            double best = std::abs(lu_[k * n_ + k]);
            for (std::size_t r = k + 1; r < n_; ++r) {
                const double v = std::abs(lu_[r * n_ + k]);
                if (v > best) {
                    best = v;
                    piv = r;
                }
            }
            if (best < pivot_floor) return false;  // singular
            if (piv != k) {
                for (std::size_t c = 0; c < n_; ++c)
                    std::swap(lu_[k * n_ + c], lu_[piv * n_ + c]);
                std::swap(perm_[k], perm_[piv]);
            }
            const T d = lu_[k * n_ + k];
            for (std::size_t r = k + 1; r < n_; ++r) {
                const T f = lu_[r * n_ + k] / d;
                lu_[r * n_ + k] = f;
                if (f == T{}) continue;
                for (std::size_t c = k + 1; c < n_; ++c)
                    lu_[r * n_ + c] -= f * lu_[k * n_ + c];
            }
        }
        ok_ = true;
        ++factor_count_;
        return true;
    }

    /// Solve for one right-hand side; factor() must have succeeded.
    std::vector<T> solve(const std::vector<T>& b) const {
        std::vector<T> x(b.size());
        solve(b, x);
        return x;
    }

    /// In-place solve: writes the solution into `x` (sized to n, reusing
    /// capacity).  `x` and `b` may be the same vector only when the
    /// permutation is identity, so the engine keeps them distinct.
    void solve(const std::vector<T>& b, std::vector<T>& x) const {
        require(ok_, "LuSolver::solve called without a successful factor()");
        require(b.size() == n_, "LuSolver::solve: rhs size mismatch");
        x.resize(n_);
        for (std::size_t r = 0; r < n_; ++r) {
            T s = b[perm_[r]];
            for (std::size_t c = 0; c < r; ++c) s -= lu_[r * n_ + c] * x[c];
            x[r] = s;
        }
        for (std::size_t ri = n_; ri-- > 0;) {
            T s = x[ri];
            for (std::size_t c = ri + 1; c < n_; ++c)
                s -= lu_[ri * n_ + c] * x[c];
            x[ri] = s / lu_[ri * n_ + ri];
        }
    }

    std::size_t factor_count() const { return factor_count_; }

private:
    std::size_t n_ = 0;
    std::vector<T> lu_;
    std::vector<std::size_t> perm_;
    bool ok_ = false;
    std::size_t factor_count_ = 0;
};

using Matrix = BasicMatrix<double>;
using LuSolver = BasicLu<double>;
using CMatrix = BasicMatrix<std::complex<double>>;
using CLuSolver = BasicLu<std::complex<double>>;

} // namespace catlift::spice
