// catlift/spice/waveform.h
//
// Simulation results: a shared time axis plus named voltage traces.
// AnaFAULT's comparator interpolates into these when applying its
// amplitude/time tolerance test, so interpolation lives here.

#pragma once

#include "geom/base.h"

#include <map>
#include <string>
#include <vector>

namespace catlift::spice {

/// Time-series results of one analysis.
class Waveforms {
public:
    /// Append a time point with a full vector of values (one per trace,
    /// order of trace registration).
    void add_trace(const std::string& name);

    /// Record one sample row; `values` order must match trace registration.
    void append(double t, const std::vector<double>& values);

    const std::vector<double>& time() const { return time_; }
    std::size_t points() const { return time_.size(); }

    bool has(const std::string& name) const { return index_.count(name) > 0; }
    const std::vector<double>& trace(const std::string& name) const;
    std::vector<std::string> trace_names() const;

    /// Linear interpolation of trace `name` at time t (clamped to range).
    double at(const std::string& name, double t) const;

    /// Minimum / maximum of a trace over the full run.
    double min_of(const std::string& name) const;
    double max_of(const std::string& name) const;

    /// CSV rendering: header "time,<traces...>" then one row per point.
    std::string to_csv(const std::vector<std::string>& names = {}) const;

private:
    std::vector<double> time_;
    std::vector<std::string> names_;
    std::map<std::string, std::size_t> index_;
    std::vector<std::vector<double>> data_;  // per trace
};

} // namespace catlift::spice
