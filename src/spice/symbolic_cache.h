// catlift/spice/symbolic_cache.h
//
// Campaign-shared symbolic analysis.  Every faulty circuit of a fault
// campaign shares almost all structure with the nominal one: a bridge adds
// one 2x2 coupling block between two existing nodes, an open splits a net
// into the original node plus one fresh "flt*" node hanging off it.  The
// expensive part of a kernel build at scale is the fill-reducing ordering
// (minimum degree over the whole pattern); the ordering of the nominal
// circuit is therefore computed once per campaign and *patched* for each
// faulty variant instead of being recomputed: unknowns the nominal circuit
// already had keep their nominal elimination rank, unknowns the injection
// created (split nodes, injected source branches) are appended at the end
// of the order, where their couple of extra entries cost bounded fill.
// Fill discovery under the patched order is a cheap O(flops) replay inside
// SparseLu::factor -- the one-time global analysis is amortized across the
// whole campaign (SimStats::symbolic_cache_hits counts the adoptions).
//
// The cache is keyed by unknown *names* (node names plus "b:<source>" for
// voltage-source branch currents), so it survives the renumbering a
// mutated netlist implies.  It is immutable after construction and shared
// read-only across worker threads.

#pragma once

#include <map>
#include <string>

namespace catlift::spice {

struct SymbolicCache {
    /// Unknown name -> elimination rank in the nominal pivot order.
    /// Node unknowns are keyed by node name, branch unknowns by
    /// "b:" + the voltage source's device name.
    std::map<std::string, int> rank;
};

} // namespace catlift::spice
