// catlift/spice/measure.h
//
// Waveform measurements used by the examples, tests and the AnaFAULT
// post-processing phase: threshold crossings, period/frequency estimation,
// swing, and simple norms between traces.

#pragma once

#include "spice/waveform.h"

#include <optional>
#include <string>
#include <vector>

namespace catlift::spice {

/// Times at which the trace crosses `level` with the given direction
/// (+1 rising, -1 falling, 0 both), linearly interpolated.
std::vector<double> crossings(const Waveforms& wf, const std::string& trace,
                              double level, int direction = 0);

/// Estimated oscillation period from rising-edge crossings of `level` over
/// the window [t0, t1]; nullopt if fewer than `min_edges` edges are found.
std::optional<double> estimate_period(const Waveforms& wf,
                                      const std::string& trace, double level,
                                      double t0, double t1,
                                      std::size_t min_edges = 3);

/// Peak-to-peak swing of a trace over [t0, t1].
double swing(const Waveforms& wf, const std::string& trace, double t0,
             double t1);

/// Maximum absolute difference between the same-named trace of two runs,
/// comparing at the union of their sample times over [t0, t1].
double max_abs_diff(const Waveforms& a, const Waveforms& b,
                    const std::string& trace, double t0, double t1);

/// Render a trace as a compact ASCII plot (rows = samples subsampled to
/// `width` columns, amplitude scaled into `height` rows).  Used by the bench
/// harnesses to show the Fig. 4/6 waveforms in the report output.
std::string ascii_plot(const Waveforms& wf, const std::string& trace,
                       int width = 72, int height = 16);

} // namespace catlift::spice
