#include "spice/measure.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace catlift::spice {

std::vector<double> crossings(const Waveforms& wf, const std::string& trace,
                              double level, int direction) {
    const auto& t = wf.time();
    const auto& y = wf.trace(trace);
    std::vector<double> out;
    for (std::size_t i = 1; i < t.size(); ++i) {
        const double a = y[i - 1] - level;
        const double b = y[i] - level;
        if (a == b) continue;
        const bool rising = a < 0 && b >= 0;
        const bool falling = a > 0 && b <= 0;
        if ((direction > 0 && !rising) || (direction < 0 && !falling)) continue;
        if (!rising && !falling) continue;
        const double frac = -a / (b - a);
        out.push_back(t[i - 1] + frac * (t[i] - t[i - 1]));
    }
    return out;
}

std::optional<double> estimate_period(const Waveforms& wf,
                                      const std::string& trace, double level,
                                      double t0, double t1,
                                      std::size_t min_edges) {
    auto edges = crossings(wf, trace, level, +1);
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [&](double t) { return t < t0 || t > t1; }),
                edges.end());
    if (edges.size() < min_edges) return std::nullopt;
    // Mean inter-edge spacing.
    return (edges.back() - edges.front()) /
           static_cast<double>(edges.size() - 1);
}

double swing(const Waveforms& wf, const std::string& trace, double t0,
             double t1) {
    const auto& t = wf.time();
    const auto& y = wf.trace(trace);
    double lo = 0, hi = 0;
    bool any = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i] < t0 || t[i] > t1) continue;
        if (!any) {
            lo = hi = y[i];
            any = true;
        } else {
            lo = std::min(lo, y[i]);
            hi = std::max(hi, y[i]);
        }
    }
    return any ? hi - lo : 0.0;
}

double max_abs_diff(const Waveforms& a, const Waveforms& b,
                    const std::string& trace, double t0, double t1) {
    double m = 0.0;
    for (double t : a.time()) {
        if (t < t0 || t > t1) continue;
        m = std::max(m, std::fabs(a.at(trace, t) - b.at(trace, t)));
    }
    for (double t : b.time()) {
        if (t < t0 || t > t1) continue;
        m = std::max(m, std::fabs(a.at(trace, t) - b.at(trace, t)));
    }
    return m;
}

std::string ascii_plot(const Waveforms& wf, const std::string& trace,
                       int width, int height) {
    const auto& t = wf.time();
    if (t.size() < 2 || width < 2 || height < 2) return "";
    const double ymin = wf.min_of(trace);
    const double ymax = wf.max_of(trace);
    const double span = (ymax - ymin) > 1e-12 ? (ymax - ymin) : 1.0;

    std::vector<std::string> grid(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
    const double t0 = t.front(), t1 = t.back();
    for (int c = 0; c < width; ++c) {
        const double tc = t0 + (t1 - t0) * c / (width - 1);
        const double v = wf.at(trace, tc);
        int r = static_cast<int>(std::lround((v - ymin) / span * (height - 1)));
        r = std::clamp(r, 0, height - 1);
        grid[static_cast<std::size_t>(height - 1 - r)]
            [static_cast<std::size_t>(c)] = '*';
    }
    std::ostringstream os;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%8.3g +", ymax);
    os << buf << grid[0] << "\n";
    for (int r = 1; r + 1 < height; ++r)
        os << "         |" << grid[static_cast<std::size_t>(r)] << "\n";
    std::snprintf(buf, sizeof buf, "%8.3g +", ymin);
    os << buf << grid[static_cast<std::size_t>(height - 1)] << "\n";
    std::snprintf(buf, sizeof buf, "          t: %.3g .. %.3g s  [%s]", t0, t1,
                  trace.c_str());
    os << buf << "\n";
    return os.str();
}

} // namespace catlift::spice
