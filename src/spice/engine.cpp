#include "spice/engine.h"

#include "spice/mos1.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

namespace catlift::spice {

using netlist::Device;
using netlist::DeviceKind;

Simulator::Simulator(netlist::Circuit ckt, SimOptions opt)
    : ckt_(std::move(ckt)), opt_(opt) {
    ckt_.validate();

    // Node table (ground excluded from unknowns).
    for (const std::string& n : ckt_.node_names()) {
        if (n == netlist::kGround) continue;
        node_index_[n] = node_names_.size();
        node_names_.push_back(n);
    }
    n_nodes_ = node_names_.size();

    // Branch currents: one per voltage source.
    for (std::size_t i = 0; i < ckt_.devices.size(); ++i)
        if (ckt_.devices[i].kind == DeviceKind::VSource)
            vsource_devs_.push_back(i);
    n_branches_ = vsource_devs_.size();
    stats_.matrix_size = n_nodes_ + n_branches_;

    // MOS instances with resolved nodes.
    for (std::size_t i = 0; i < ckt_.devices.size(); ++i) {
        const Device& d = ckt_.devices[i];
        if (d.kind != DeviceKind::Mosfet) continue;
        MosInstance m;
        m.dev = i;
        m.d = node_id(d.nodes[Device::kDrain]);
        m.g = node_id(d.nodes[Device::kGate]);
        m.s = node_id(d.nodes[Device::kSource]);
        m.w = d.w;
        m.l = d.l;
        m.model = &ckt_.model_of(d);
        mos_.push_back(m);
    }

    // Capacitive elements: explicit capacitors, MOS gate caps, cmin.
    for (const Device& d : ckt_.devices) {
        if (d.kind != DeviceKind::Capacitor) continue;
        CapInstance c;
        c.n1 = node_id(d.nodes[0]);
        c.n2 = node_id(d.nodes[1]);
        c.c = d.value;
        c.v_prev = d.ic.value_or(0.0);
        caps_.push_back(c);
    }
    for (const MosInstance& m : mos_) {
        const MosCaps mc =
            mos1_caps(*m.model, m.w, m.l);
        caps_.push_back(CapInstance{m.g, m.s, mc.cgs, 0.0, 0.0});
        caps_.push_back(CapInstance{m.g, m.d, mc.cgd, 0.0, 0.0});
    }
    if (opt_.cmin > 0.0) {
        for (std::size_t n = 0; n < n_nodes_; ++n)
            caps_.push_back(
                CapInstance{static_cast<int>(n), -1, opt_.cmin, 0.0, 0.0});
    }
}

int Simulator::node_id(const std::string& name) const {
    if (name == netlist::kGround) return -1;
    auto it = node_index_.find(name);
    require(it != node_index_.end(), "unknown node " + name);
    return static_cast<int>(it->second);
}

void Simulator::set_source_dc(const std::string& name, double value) {
    Device& d = ckt_.device(name);
    require(d.kind == DeviceKind::VSource || d.kind == DeviceKind::ISource,
            "set_source_dc: " + name + " is not a source");
    d.source = netlist::SourceSpec::make_dc(value);
}

void Simulator::assemble(const std::vector<double>& x, double h, double t,
                         bool dc, double src_scale, double extra_gmin,
                         Matrix& a, std::vector<double>& rhs) const {
    a.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    auto stamp_g = [&](int n1, int n2, double g) {
        if (n1 >= 0) a(static_cast<std::size_t>(n1), static_cast<std::size_t>(n1)) += g;
        if (n2 >= 0) a(static_cast<std::size_t>(n2), static_cast<std::size_t>(n2)) += g;
        if (n1 >= 0 && n2 >= 0) {
            a(static_cast<std::size_t>(n1), static_cast<std::size_t>(n2)) -= g;
            a(static_cast<std::size_t>(n2), static_cast<std::size_t>(n1)) -= g;
        }
    };
    auto stamp_i = [&](int n_from, int n_to, double i) {
        // Current i flows out of n_from into n_to (through the element).
        if (n_from >= 0) rhs[static_cast<std::size_t>(n_from)] -= i;
        if (n_to >= 0) rhs[static_cast<std::size_t>(n_to)] += i;
    };

    // gmin on every node.
    const double g_floor = opt_.gmin + extra_gmin;
    for (std::size_t n = 0; n < n_nodes_; ++n) a(n, n) += g_floor;

    std::size_t branch = 0;
    for (const Device& d : ckt_.devices) {
        switch (d.kind) {
            case DeviceKind::Resistor: {
                stamp_g(node_id(d.nodes[0]), node_id(d.nodes[1]),
                        1.0 / d.value);
                break;
            }
            case DeviceKind::Capacitor:
                break;  // handled via caps_ below
            case DeviceKind::ISource: {
                const double i =
                    src_scale *
                    (dc ? d.source.dc_value() : d.source.value_at(t));
                // SPICE convention: positive current flows from node+ through
                // the source to node-.
                stamp_i(node_id(d.nodes[0]), node_id(d.nodes[1]), i);
                break;
            }
            case DeviceKind::VSource: {
                const std::size_t br = n_nodes_ + branch;
                const int np = node_id(d.nodes[0]);
                const int nm = node_id(d.nodes[1]);
                if (np >= 0) {
                    a(static_cast<std::size_t>(np), br) += 1.0;
                    a(br, static_cast<std::size_t>(np)) += 1.0;
                }
                if (nm >= 0) {
                    a(static_cast<std::size_t>(nm), br) -= 1.0;
                    a(br, static_cast<std::size_t>(nm)) -= 1.0;
                }
                rhs[br] = src_scale *
                          (dc ? d.source.dc_value() : d.source.value_at(t));
                ++branch;
                break;
            }
            case DeviceKind::Mosfet:
                break;  // below
        }
    }

    // Capacitor companions (transient only).
    if (!dc) {
        for (const CapInstance& c : caps_) {
            double geq, ihist;
            if (opt_.method == Method::Trapezoidal) {
                geq = 2.0 * c.c / h;
                ihist = geq * c.v_prev + c.i_prev;
            } else {
                geq = c.c / h;
                ihist = geq * c.v_prev;
            }
            stamp_g(c.n1, c.n2, geq);
            // Companion current source from n1 to n2 of value -ihist
            // (i_cap = geq*v - ihist), i.e. ihist *into* n1.
            stamp_i(c.n1, c.n2, -ihist);
        }
    }

    // MOSFETs: linearised companion at candidate x.
    for (const MosInstance& m : mos_) {
        const double sign = m.model->is_nmos ? 1.0 : -1.0;
        const double vd = volt(x, m.d), vg = volt(x, m.g), vs = volt(x, m.s);
        double vdn = sign * vd, vgn = sign * vg, vsn = sign * vs;
        int ed = m.d, es = m.s;
        if (vdn < vsn) {
            std::swap(vdn, vsn);
            std::swap(ed, es);
        }
        const Mos1Point p =
            mos1_eval_normalized(*m.model, m.w, m.l, vgn - vsn, vdn - vsn);
        // Real-space quantities referenced to the *effective* source.
        const double i0 = sign * p.id;  // current into effective drain
        const double v_es = volt(x, es);
        const double vgs_r = volt(x, m.g) - v_es;
        const double vds_r = volt(x, ed) - v_es;
        const double ieq = i0 - p.gm * vgs_r - p.gds * vds_r;

        // i(ed) = gds*V(ed) + gm*V(g) - (gds+gm)*V(es) + ieq
        if (ed >= 0) {
            a(static_cast<std::size_t>(ed), static_cast<std::size_t>(ed)) += p.gds;
            if (m.g >= 0)
                a(static_cast<std::size_t>(ed), static_cast<std::size_t>(m.g)) += p.gm;
            if (es >= 0)
                a(static_cast<std::size_t>(ed), static_cast<std::size_t>(es)) -=
                    p.gds + p.gm;
            rhs[static_cast<std::size_t>(ed)] -= ieq;
        }
        if (es >= 0) {
            a(static_cast<std::size_t>(es), static_cast<std::size_t>(es)) +=
                p.gds + p.gm;
            if (m.g >= 0)
                a(static_cast<std::size_t>(es), static_cast<std::size_t>(m.g)) -= p.gm;
            if (ed >= 0)
                a(static_cast<std::size_t>(es), static_cast<std::size_t>(ed)) -= p.gds;
            rhs[static_cast<std::size_t>(es)] += ieq;
        }
        // Weak drain-source leakage keeps switched-off stacks well-posed.
        stamp_g(m.d, m.s, opt_.gmin);
    }
}

bool Simulator::newton(std::vector<double>& x, double h, double t, bool dc,
                       double src_scale, double extra_gmin, int max_iter) {
    const std::size_t n = n_nodes_ + n_branches_;
    Matrix a(n);
    std::vector<double> rhs(n);
    LuSolver lu;

    for (int it = 0; it < max_iter; ++it) {
        assemble(x, h, t, dc, src_scale, extra_gmin, a, rhs);
        if (!lu.factor(a)) return false;
        ++stats_.lu_factorizations;
        const std::vector<double> xn = lu.solve(rhs);
        ++stats_.nr_iterations;

        // Damped update with voltage limiting on node unknowns.
        double max_rel = 0.0;
        bool limited = false;
        for (std::size_t i = 0; i < n; ++i) {
            double dv = xn[i] - x[i];
            if (i < n_nodes_ && std::fabs(dv) > opt_.dv_limit) {
                dv = std::copysign(opt_.dv_limit, dv);
                limited = true;
            }
            x[i] += dv;
            const double tol = (i < n_nodes_)
                                   ? opt_.vntol + opt_.reltol * std::fabs(x[i])
                                   : opt_.abstol + opt_.reltol * std::fabs(x[i]);
            max_rel = std::max(max_rel, std::fabs(dv) / tol);
            if (!std::isfinite(x[i]) || std::fabs(x[i]) > 1e9) return false;
        }
        if (!limited && max_rel < 1.0 && it >= 1) return true;
    }
    return false;
}

DcResult Simulator::dc_op() { return dc_op_impl(nullptr); }

DcResult Simulator::dc_op(const std::map<std::string, double>& initial) {
    std::vector<double> x0(n_nodes_ + n_branches_, 0.0);
    for (std::size_t i = 0; i < n_nodes_; ++i) {
        const auto it = initial.find(node_names_[i]);
        if (it != initial.end()) x0[i] = it->second;
    }
    return dc_op_impl(&x0);
}

DcResult Simulator::dc_op_impl(const std::vector<double>* warm) {
    DcResult res;
    const std::size_t n = n_nodes_ + n_branches_;
    std::vector<double> x(n, 0.0);
    const std::size_t it_entry = stats_.nr_iterations;

    // Warm start: plain Newton from the supplied solution.  A nearby
    // operating point (the previous sweep level, the nominal circuit of a
    // fault screen) usually converges in a couple of iterations; the cold
    // ladder below stays as the fallback.
    if (warm) {
        x = *warm;
        if (newton(x, 0.0, 0.0, /*dc=*/true, 1.0, 0.0, opt_.max_nr)) {
            res.converged = true;
            res.strategy = "warm";
            const std::size_t spent = stats_.nr_iterations - it_entry;
            ++stats_.warm_start_solves;
            if (last_cold_nr_ > spent)
                stats_.nr_saved_warm += last_cold_nr_ - spent;
        }
    }

    const std::size_t it_cold = stats_.nr_iterations;
    if (!res.converged) {
        // Each strategy is retried over a damping ladder: regenerative
        // circuits (the VCO's Schmitt trigger) limit-cycle under a generous
        // voltage step but converge cleanly once the per-iteration update is
        // clamped harder.
        const double dv_ladder[] = {opt_.dv_limit, 0.5, 0.2};
        const double dv_saved = opt_.dv_limit;

        for (double dv : dv_ladder) {
            if (res.converged) break;
            if (dv > dv_saved) continue;
            opt_.dv_limit = dv;

            // Strategy 1: plain Newton.
            x.assign(n, 0.0);
            if (newton(x, 0.0, 0.0, /*dc=*/true, 1.0, 0.0, opt_.max_nr)) {
                res.converged = true;
                res.strategy = "nr";
                break;
            }

            // Strategy 2: gmin stepping.
            x.assign(n, 0.0);
            bool ok = true;
            for (double g = 1e-2; g >= 1e-13; g *= 0.1) {
                if (!newton(x, 0.0, 0.0, true, 1.0, g, opt_.max_nr)) {
                    ok = false;
                    break;
                }
            }
            if (ok && newton(x, 0.0, 0.0, true, 1.0, 0.0, opt_.max_nr)) {
                res.converged = true;
                res.strategy = "gmin";
                break;
            }

            // Strategy 3: source stepping.
            x.assign(n, 0.0);
            ok = true;
            for (double s = 0.05; s <= 1.0 + 1e-12; s += 0.05) {
                if (!newton(x, 0.0, 0.0, true, std::min(s, 1.0), 0.0,
                            opt_.max_nr)) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                res.converged = true;
                res.strategy = "source";
                break;
            }
        }
        opt_.dv_limit = dv_saved;
        // The cold cost baselines future warm starts of this simulator.
        if (res.converged) last_cold_nr_ = stats_.nr_iterations - it_cold;
    }

    res.iterations = static_cast<int>(stats_.nr_iterations - it_entry);
    if (res.converged) {
        for (std::size_t i = 0; i < n_nodes_; ++i)
            res.voltages[node_names_[i]] = x[i];
        res.voltages[netlist::kGround] = 0.0;
    }
    return res;
}

void Simulator::update_cap_history(const std::vector<double>& x, double h) {
    for (CapInstance& c : caps_) {
        const double v = volt(x, c.n1) - volt(x, c.n2);
        double i;
        if (opt_.method == Method::Trapezoidal)
            i = (2.0 * c.c / h) * (v - c.v_prev) - c.i_prev;
        else
            i = (c.c / h) * (v - c.v_prev);
        c.v_prev = v;
        c.i_prev = i;
    }
}

double Simulator::lte_ratio(const std::vector<double>& x_prev, double h_prev,
                            const std::vector<double>& x_old,
                            const std::vector<double>& x_new,
                            double dt) const {
    if (h_prev <= 0.0) return std::numeric_limits<double>::infinity();
    const double slope_scale = dt / h_prev;
    double worst = 0.0;
    for (std::size_t i = 0; i < n_nodes_; ++i) {
        const double pred = x_old[i] + (x_old[i] - x_prev[i]) * slope_scale;
        const double err = std::fabs(x_new[i] - pred);
        const double tol = opt_.lte_tol * std::max(1.0, std::fabs(x_new[i]));
        worst = std::max(worst, err / tol);
    }
    return worst;
}

Waveforms Simulator::tran() {
    require(ckt_.tran.has_value(), "circuit has no .tran card");
    return tran(*ckt_.tran);
}

std::vector<DcResult> dc_sweep(const netlist::Circuit& ckt,
                               const std::string& source,
                               const std::vector<double>& levels,
                               const SimOptions& opt,
                               const DcSweepObserver& observer,
                               SimStats* stats) {
    require(!levels.empty(), "dc_sweep: no levels");
    const Device& d = ckt.device(source);
    require(d.kind == DeviceKind::VSource || d.kind == DeviceKind::ISource,
            "dc_sweep: " + source + " is not a source");

    // One simulator for the whole sweep: each level after the first is
    // warm-started from the previous level's solution.
    Simulator sim(ckt, opt);
    std::vector<DcResult> out;
    out.reserve(levels.size());
    std::map<std::string, double> warm;
    for (double v : levels) {
        sim.set_source_dc(source, v);
        DcResult r = warm.empty() ? sim.dc_op() : sim.dc_op(warm);
        if (r.converged) warm = r.voltages;
        const bool stop = observer && !observer(v, r);
        out.push_back(std::move(r));
        if (stop) break;
    }
    if (stats) *stats = sim.stats();
    return out;
}

AcResult Simulator::ac() {
    require(ckt_.ac.has_value(), "circuit has no .ac card");
    AcSpec spec;
    spec.points_per_decade = ckt_.ac->points_per_decade;
    spec.fstart = ckt_.ac->fstart;
    spec.fstop = ckt_.ac->fstop;
    return ac(spec);
}

AcResult Simulator::ac(const AcSpec& spec) { return ac(spec, AcPointObserver{}); }

AcResult Simulator::ac(const AcSpec& spec, const AcPointObserver& observer) {
    require(spec.fstart > 0 && spec.fstop > spec.fstart &&
                spec.points_per_decade > 0,
            "bad .ac parameters");

    // Operating point.
    const DcResult op = dc_op();
    require(op.converged, "ac: DC operating point failed");
    const std::size_t n = n_nodes_ + n_branches_;
    std::vector<double> x0(n, 0.0);
    for (std::size_t i = 0; i < n_nodes_; ++i)
        x0[i] = op.voltages.at(node_names_[i]);

    // Small-signal real part: resistors, MOS gm/gds at the OP, gmin, and
    // the voltage-source branch pattern.  Complex part: jwC per capacitor.
    Matrix g(n);
    std::vector<std::complex<double>> rhs(n, 0.0);

    auto stamp_g = [&](int n1, int n2, double gg) {
        if (n1 >= 0) g(static_cast<std::size_t>(n1), static_cast<std::size_t>(n1)) += gg;
        if (n2 >= 0) g(static_cast<std::size_t>(n2), static_cast<std::size_t>(n2)) += gg;
        if (n1 >= 0 && n2 >= 0) {
            g(static_cast<std::size_t>(n1), static_cast<std::size_t>(n2)) -= gg;
            g(static_cast<std::size_t>(n2), static_cast<std::size_t>(n1)) -= gg;
        }
    };
    for (std::size_t i = 0; i < n_nodes_; ++i) g(i, i) += opt_.gmin;

    std::size_t branch = 0;
    for (const Device& d : ckt_.devices) {
        switch (d.kind) {
            case DeviceKind::Resistor:
                stamp_g(node_id(d.nodes[0]), node_id(d.nodes[1]),
                        1.0 / d.value);
                break;
            case DeviceKind::ISource: {
                const int np = node_id(d.nodes[0]);
                const int nm = node_id(d.nodes[1]);
                if (np >= 0) rhs[static_cast<std::size_t>(np)] -= d.source.ac_mag;
                if (nm >= 0) rhs[static_cast<std::size_t>(nm)] += d.source.ac_mag;
                break;
            }
            case DeviceKind::VSource: {
                const std::size_t br = n_nodes_ + branch;
                const int np = node_id(d.nodes[0]);
                const int nm = node_id(d.nodes[1]);
                if (np >= 0) {
                    g(static_cast<std::size_t>(np), br) += 1.0;
                    g(br, static_cast<std::size_t>(np)) += 1.0;
                }
                if (nm >= 0) {
                    g(static_cast<std::size_t>(nm), br) -= 1.0;
                    g(br, static_cast<std::size_t>(nm)) -= 1.0;
                }
                rhs[br] = d.source.ac_mag;
                ++branch;
                break;
            }
            default: break;
        }
    }
    // MOS small-signal transconductances at the operating point.
    for (const MosInstance& m : mos_) {
        const double sign = m.model->is_nmos ? 1.0 : -1.0;
        double vdn = sign * volt(x0, m.d);
        double vgn = sign * volt(x0, m.g);
        double vsn = sign * volt(x0, m.s);
        int ed = m.d, es = m.s;
        if (vdn < vsn) {
            std::swap(vdn, vsn);
            std::swap(ed, es);
        }
        const Mos1Point p =
            mos1_eval_normalized(*m.model, m.w, m.l, vgn - vsn, vdn - vsn);
        if (ed >= 0) {
            g(static_cast<std::size_t>(ed), static_cast<std::size_t>(ed)) += p.gds;
            if (m.g >= 0)
                g(static_cast<std::size_t>(ed), static_cast<std::size_t>(m.g)) += p.gm;
            if (es >= 0)
                g(static_cast<std::size_t>(ed), static_cast<std::size_t>(es)) -=
                    p.gds + p.gm;
        }
        if (es >= 0) {
            g(static_cast<std::size_t>(es), static_cast<std::size_t>(es)) +=
                p.gds + p.gm;
            if (m.g >= 0)
                g(static_cast<std::size_t>(es), static_cast<std::size_t>(m.g)) -= p.gm;
            if (ed >= 0)
                g(static_cast<std::size_t>(es), static_cast<std::size_t>(ed)) -= p.gds;
        }
        stamp_g(m.d, m.s, opt_.gmin);
    }

    AcResult res;
    for (const std::string& nn : node_names_) res.add_node(nn);

    // Sweep.  The G part is frequency-independent: it is stamped into the
    // complex matrix once, and per point only the cells touched by a
    // capacitor are reset before jwC is added (the loop used to rebuild
    // all n^2 entries from scratch at every frequency).
    const double decades = std::log10(spec.fstop / spec.fstart);
    const int total = std::max(
        2, static_cast<int>(decades * spec.points_per_decade + 0.5) + 1);
    CMatrix a(n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a(r, c) = std::complex<double>(g(r, c), 0.0);
    std::set<std::pair<std::size_t, std::size_t>> cap_cell_set;
    for (const CapInstance& cp : caps_) {
        const auto r1 = static_cast<std::size_t>(cp.n1);
        const auto r2 = static_cast<std::size_t>(cp.n2);
        if (cp.n1 >= 0) cap_cell_set.emplace(r1, r1);
        if (cp.n2 >= 0) cap_cell_set.emplace(r2, r2);
        if (cp.n1 >= 0 && cp.n2 >= 0) {
            cap_cell_set.emplace(r1, r2);
            cap_cell_set.emplace(r2, r1);
        }
    }
    const std::vector<std::pair<std::size_t, std::size_t>> cap_cells(
        cap_cell_set.begin(), cap_cell_set.end());

    CLuSolver lu;
    for (int k = 0; k < total; ++k) {
        const double f =
            spec.fstart * std::pow(10.0, decades * k / (total - 1));
        const double w = 2.0 * M_PI * f;
        for (const auto& [r, c] : cap_cells)
            a(r, c) = std::complex<double>(g(r, c), 0.0);
        for (const CapInstance& cp : caps_) {
            const std::complex<double> jwc(0.0, w * cp.c);
            if (cp.n1 >= 0)
                a(static_cast<std::size_t>(cp.n1), static_cast<std::size_t>(cp.n1)) += jwc;
            if (cp.n2 >= 0)
                a(static_cast<std::size_t>(cp.n2), static_cast<std::size_t>(cp.n2)) += jwc;
            if (cp.n1 >= 0 && cp.n2 >= 0) {
                a(static_cast<std::size_t>(cp.n1), static_cast<std::size_t>(cp.n2)) -= jwc;
                a(static_cast<std::size_t>(cp.n2), static_cast<std::size_t>(cp.n1)) -= jwc;
            }
        }
        require(lu.factor(a), "ac: singular system at f=" + std::to_string(f));
        const auto sol = lu.solve(rhs);
        res.append(f, std::vector<std::complex<double>>(
                          sol.begin(),
                          sol.begin() + static_cast<long>(n_nodes_)));
        ++stats_.ac_points;
        if (observer && !observer(f, res)) {
            stats_.ac_points_saved += static_cast<std::size_t>(total - k - 1);
            break;
        }
    }
    return res;
}

Waveforms Simulator::tran(const netlist::TranSpec& spec) {
    return tran(spec, StepObserver{});
}

Waveforms Simulator::tran(const netlist::TranSpec& spec,
                          const StepObserver& observer) {
    require(spec.tstep > 0 && spec.tstop > spec.tstart,
            "bad .tran parameters");
    const std::size_t n = n_nodes_ + n_branches_;
    std::vector<double> x(n, 0.0);

    // Reset capacitor history (the same Simulator can be reused).
    for (CapInstance& c : caps_) {
        c.v_prev = 0.0;
        c.i_prev = 0.0;
    }
    for (std::size_t i = 0, ci = 0; i < ckt_.devices.size(); ++i) {
        const Device& d = ckt_.devices[i];
        if (d.kind != DeviceKind::Capacitor) continue;
        caps_[ci].v_prev = d.ic.value_or(0.0);
        ++ci;
    }

    // Initial point.
    if (opt_.uic) {
        // Start from all-zero node voltages (plus capacitor ICs recorded in
        // history).  Consistent for supply-ramp decks, which is how the
        // paper's experiment begins ("after the activation of the supply
        // voltage the simulation started").
    } else {
        // Solve the DC operating point (sources at their dc_value(), which
        // for PULSE/PWL/SIN equals the t=0 level on standard decks).
        DcResult dc = dc_op();
        require(dc.converged, "transient: initial operating point failed");
        for (std::size_t i = 0; i < n_nodes_; ++i)
            x[i] = dc.voltages.at(node_names_[i]);
        // Seed capacitor history with the operating point.
        for (CapInstance& c : caps_) {
            c.v_prev = volt(x, c.n1) - volt(x, c.n2);
            c.i_prev = 0.0;
        }
    }

    Waveforms wf;
    for (const std::string& nn : node_names_) wf.add_trace(nn);
    // Branch currents of the voltage sources, for supply-current (IDDQ
    // style) observation: trace "i(<source name>)".
    for (std::size_t b = 0; b < n_branches_; ++b)
        wf.add_trace("i(" + ckt_.devices[vsource_devs_[b]].name + ")");

    auto record = [&](double t) {
        std::vector<double> row(n_nodes_ + n_branches_);
        for (std::size_t i = 0; i < n_nodes_ + n_branches_; ++i) row[i] = x[i];
        wf.append(t, row);
    };

    record(spec.tstart);

    const auto steps = static_cast<std::size_t>(
        std::llround((spec.tstop - spec.tstart) / spec.tstep));
    require(steps > 0, "transient: zero steps");

    if (observer && !observer(spec.tstart, wf)) {
        stats_.steps_saved += steps;
        return wf;
    }

    // Save method so the first sub-step can use BE bootstrap under TRAP.
    const Method user_method = opt_.method;
    bool first_substep = true;

    // Integrate exactly one grid interval ending at t_target with the
    // fixed-grid cut loop: the full interval first, halved internally when
    // NR fails.  Commits x and the capacitor history.
    auto advance_interval = [&](double tc, double t_target) {
        while (tc < t_target - 1e-18 * std::max(1.0, t_target)) {
            double dt = t_target - tc;
            int cuts = 0;
            for (;;) {
                if (first_substep && user_method == Method::Trapezoidal)
                    opt_.method = Method::BackwardEuler;
                std::vector<double> x_try = x;
                const bool ok = newton(x_try, dt, tc + dt, /*dc=*/false, 1.0,
                                       0.0, opt_.max_nr);
                if (ok) {
                    x = x_try;
                    update_cap_history(x, dt);
                    opt_.method = user_method;
                    first_substep = false;
                    tc += dt;
                    ++stats_.tran_steps;
                    break;
                }
                opt_.method = user_method;
                ++cuts;
                ++stats_.step_cuts;
                require(cuts <= opt_.max_step_cuts,
                        "transient failed to converge at t=" +
                            std::to_string(tc + dt));
                dt *= 0.5;
            }
        }
    };

    // A macro step samples every source only at its endpoint, so it is
    // valid only when each independent source is linear across the whole
    // stride -- otherwise a stimulus feature (a pulse edge inside the
    // stride) would be silently integrated away even though the LTE test
    // on the endpoint passes.  Checked *before* the Newton solve: source
    // evaluation is cheap, a wasted macro solve is not.
    auto sources_linear = [&](double t0, double t1, std::size_t s) {
        for (const Device& d : ckt_.devices) {
            if (d.kind != DeviceKind::VSource &&
                d.kind != DeviceKind::ISource)
                continue;
            const double v0 = d.source.value_at(t0);
            const double v1 = d.source.value_at(t1);
            const double tol =
                opt_.lte_tol *
                std::max({1.0, std::fabs(v0), std::fabs(v1)});
            for (std::size_t j = 1; j < s; ++j) {
                const double tj =
                    t0 + (t1 - t0) * static_cast<double>(j) /
                             static_cast<double>(s);
                const double lin = v0 + (v1 - v0) *
                                            static_cast<double>(j) /
                                            static_cast<double>(s);
                if (std::fabs(d.source.value_at(tj) - lin) > tol)
                    return false;
            }
        }
        return true;
    };

    // Adaptive predictor state: the previous accepted grid solution and the
    // spacing to it.  The first interval always runs fixed-grid (there is
    // no history to predict from, and it carries the BE bootstrap).
    std::vector<double> x_prev;
    double h_prev = 0.0;
    bool have_prev = false;
    std::size_t stride = 1;
    const std::size_t max_stride =
        (opt_.adaptive && opt_.max_stride > 1)
            ? static_cast<std::size_t>(opt_.max_stride)
            : 1;

    std::size_t k = 0;          // completed grid intervals
    double t_k = spec.tstart;   // time of the last recorded grid sample
    while (k < steps) {
        std::size_t s = std::min(stride, steps - k);
        double ratio = -1.0;  // LTE ratio of the accepted step, if known
        bool macro_done = false;
        std::vector<double> x_old = x;  // solution at t_k (predictor history)

        // Multi-interval candidate steps, halved on NR failure or LTE
        // rejection; s == 1 falls through to the fixed-grid path below.
        while (s > 1 && have_prev) {
            const double t_target =
                spec.tstart + static_cast<double>(k + s) * spec.tstep;
            const double dt = t_target - t_k;
            if (!sources_linear(t_k, t_target, s)) {
                s /= 2;
                continue;
            }
            // Seed Newton with the linear predictor: on the quiescent
            // stretches where large strides are attempted it is already
            // near the solution, so the macro solve converges in a couple
            // of iterations.
            std::vector<double> x_try = x;
            const double slope = dt / h_prev;
            for (std::size_t i = 0; i < n; ++i)
                x_try[i] += (x[i] - x_prev[i]) * slope;
            if (newton(x_try, dt, t_target, /*dc=*/false, 1.0, 0.0,
                       opt_.max_nr)) {
                ratio = lte_ratio(x_prev, h_prev, x, x_try, dt);
                if (ratio <= 1.0) {
                    // Accepted: the LTE bound certifies the solution is
                    // linear across the stride within tolerance, so the
                    // interior grid samples are filled by interpolation.
                    for (std::size_t j = 1; j < s; ++j) {
                        const double tj = spec.tstart +
                                          static_cast<double>(k + j) *
                                              spec.tstep;
                        const double frac = static_cast<double>(j) /
                                            static_cast<double>(s);
                        std::vector<double> row(n);
                        for (std::size_t i = 0; i < n; ++i)
                            row[i] = x[i] + frac * (x_try[i] - x[i]);
                        wf.append(tj, row);
                        ++stats_.grid_points_interpolated;
                        if (observer && !observer(tj, wf)) {
                            stats_.steps_saved += steps - (k + j);
                            return wf;
                        }
                    }
                    x = x_try;
                    update_cap_history(x, dt);
                    ++stats_.tran_steps;
                    macro_done = true;
                    break;
                }
                ++stats_.lte_rejections;
            } else {
                ++stats_.step_cuts;
            }
            s /= 2;
        }

        double t_target;
        if (macro_done) {
            t_target = spec.tstart + static_cast<double>(k + s) * spec.tstep;
        } else {
            s = 1;
            t_target = spec.tstart + static_cast<double>(k + 1) * spec.tstep;
            advance_interval(t_k, t_target);
            // A-posteriori LTE of the fixed-grid step: lets the stride grow
            // out of quiescence without speculative (wasted) macro solves.
            if (opt_.adaptive && have_prev)
                ratio = lte_ratio(x_prev, h_prev, x_old, x, t_target - t_k);
        }

        record(t_target);
        if (observer && !observer(t_target, wf)) {
            stats_.steps_saved += steps - (k + s);
            return wf;
        }

        // Predictor history and stride control for the next step.
        x_prev = std::move(x_old);
        h_prev = t_target - t_k;
        have_prev = true;
        t_k = t_target;
        k += s;
        if (opt_.adaptive) {
            if (ratio >= 0.0 && ratio < 0.25)
                stride = std::min(s * 2, max_stride);
            else
                stride = std::max<std::size_t>(s, 1);
        }
    }
    return wf;
}

} // namespace catlift::spice
